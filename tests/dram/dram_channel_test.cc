/** Tests for the DDR4 channel timing model. */

#include <gtest/gtest.h>

#include "dram/dram_channel.hh"
#include "dram/dram_system.hh"

namespace tmcc
{
namespace
{

DramCoordinates
at(unsigned rank, unsigned bank, std::uint64_t row,
   std::uint64_t col = 0)
{
    DramCoordinates c;
    c.rank = rank;
    c.bank = bank;
    c.row = row;
    c.column = col;
    return c;
}

TEST(DramChannel, ColdReadPaysActivate)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    const Tick done = ch.read(at(0, 0, 5), 0);
    // tRCD + tCL + burst = 13.75 + 13.75 + 2.5 = 30ns.
    EXPECT_NEAR(ticksToNs(done), 30.0, 0.1);
}

TEST(DramChannel, RowHitIsFaster)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    const Tick first = ch.read(at(0, 0, 5), 0);
    const Tick second = ch.read(at(0, 0, 5, 1), first);
    // Row hit: tCL + burst = 16.25ns.
    EXPECT_NEAR(ticksToNs(second - first), 16.25, 0.1);
    EXPECT_EQ(ch.rowHits().value(), 1u);
}

TEST(DramChannel, RowConflictPaysPrecharge)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    const Tick first = ch.read(at(0, 0, 5), 0);
    const Tick second = ch.read(at(0, 0, 9), first);
    // Conflict: tRP + tRCD + tCL + burst = 43.75ns.
    EXPECT_NEAR(ticksToNs(second - first), 43.75, 0.1);
}

TEST(DramChannel, RowAccessCapForcesClosure)
{
    // FR-FCFS-Capped (Table III): after 4 back-to-back hits the row
    // closes; the 5th access to the same row pays an activate again.
    DramConfig cfg;
    ASSERT_EQ(cfg.rowAccessCap, 4u);
    DramChannel ch(cfg);

    Tick t = ch.read(at(0, 0, 5), 0); // opens (miss)
    for (int i = 0; i < 3; ++i)
        t = ch.read(at(0, 0, 5), t); // hits 2..4
    const Tick before = t;
    t = ch.read(at(0, 0, 5), t); // capped: activate again
    EXPECT_GT(ticksToNs(t - before), 25.0);
    StatDump d;
    ch.dumpStats(d, "ch");
    EXPECT_GE(d.get("ch.cap_closures"), 1.0);
}

TEST(DramChannel, IndependentBanksOverlap)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    // Two cold reads to different banks at the same arrival: the
    // second is delayed only by the shared data bus, not the full
    // bank access.
    const Tick a = ch.read(at(0, 0, 1), 0);
    const Tick b = ch.read(at(0, 1, 1), 0);
    EXPECT_NEAR(ticksToNs(a), 30.0, 0.1);
    EXPECT_NEAR(ticksToNs(b), 32.5, 0.1); // + one burst slot
}

TEST(DramChannel, QueueingDelaysBackToBackSameBank)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    const Tick a = ch.read(at(0, 0, 1), 0);
    const Tick b = ch.read(at(0, 0, 2), 0); // same bank, conflict
    EXPECT_GT(b, a);
    EXPECT_GT(ticksToNs(b - a), 40.0);
}

TEST(DramChannel, WritesArePostedAndDrainLater)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    for (unsigned i = 0; i < cfg.writeDrainHigh - 1; ++i)
        ch.write(at(0, i % 16, i), 0);
    EXPECT_EQ(ch.writes().value(), cfg.writeDrainHigh - 1);
    EXPECT_EQ(ch.busBusyWrites(), 0u); // nothing drained yet

    // Crossing the high watermark forces a drain on the next read.
    ch.write(at(0, 0, 99), 0);
    const Tick r = ch.read(at(1, 0, 1), 0);
    EXPECT_GT(ch.busBusyWrites(), 0u);
    EXPECT_GT(ticksToNs(r), 30.0); // read delayed behind the drain
}

TEST(DramChannel, DrainAllEmptiesQueue)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    for (int i = 0; i < 10; ++i)
        ch.write(at(0, 0, i), 0);
    ch.drainAll(0);
    EXPECT_GT(ch.busBusyWrites(), 0u);
    StatDump d;
    ch.dumpStats(d, "ch");
    EXPECT_GE(d.get("ch.write_drains"), 1.0);
}

TEST(DramChannel, UtilizationAccounting)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    Tick t = 0;
    for (int i = 0; i < 100; ++i)
        t = ch.read(at(0, i % 16, i), t);
    const double util = ch.busUtilization(0, t);
    EXPECT_GT(util, 0.02);
    EXPECT_LE(util, 1.0);
}

TEST(DramSystem, RoutesAcrossChannels)
{
    DramConfig dram;
    InterleaveConfig il;
    il.numMcs = 2;
    il.channelsPerMc = 2;
    il.mcGranularity = 4096;
    il.channelGranularity = 256;
    DramSystem sys(dram, il);

    sys.read(0, 0);
    sys.read(256, 0);     // other channel, same MC
    sys.read(4096, 0);    // other MC
    EXPECT_EQ(sys.channel(0, 0).reads().value(), 1u);
    EXPECT_EQ(sys.channel(0, 1).reads().value(), 1u);
    EXPECT_EQ(sys.channel(1, 0).reads().value(), 1u);
}

TEST(DramSystem, CapacityAggregates)
{
    DramConfig dram;
    InterleaveConfig il;
    il.numMcs = 2;
    il.channelsPerMc = 2;
    DramSystem sys(dram, il);
    EXPECT_EQ(sys.capacityBytes(), dram.channelBytes * 4);
}

} // namespace
} // namespace tmcc
