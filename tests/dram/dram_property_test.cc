/** Property tests: DRAM timing invariants under random traffic. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/dram_system.hh"

namespace tmcc
{
namespace
{

class DramPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(DramPropertyTest, CompletionNeverPrecedesArrival)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    AddressMap map(cfg, InterleaveConfig{});
    Rng rng(GetParam());

    Tick when = 0;
    for (int i = 0; i < 5000; ++i) {
        when += rng.below(50000); // ps
        const Addr addr = rng.below(1ULL << 30);
        const DramCoordinates c = map.decode(addr);
        if (rng.chance(0.3)) {
            ch.write(c, when);
        } else {
            const Tick done = ch.read(c, when);
            ASSERT_GE(done, when + nsToTicks(cfg.tBurstNs));
            // A single access can never take longer than a full
            // conflict plus the whole write queue draining.
            ASSERT_LT(ticksToNs(done - when), 4000.0);
        }
    }
}

TEST_P(DramPropertyTest, LatencyBoundsRespectTimingClasses)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    AddressMap map(cfg, InterleaveConfig{});
    Rng rng(GetParam() + 50);

    // Issue widely spaced reads (no queueing): every latency must be
    // one of the three row-buffer outcomes.
    Tick when = 0;
    for (int i = 0; i < 2000; ++i) {
        when += nsToTicks(500.0);
        const DramCoordinates c = map.decode(rng.below(1ULL << 28));
        const double lat = ticksToNs(ch.read(c, when) - when);
        const bool hit = std::abs(lat - 16.25) < 0.01;
        const bool miss = std::abs(lat - 30.0) < 0.01;
        const bool conflict = std::abs(lat - 43.75) < 0.01;
        ASSERT_TRUE(hit || miss || conflict) << "odd latency " << lat;
    }
}

TEST_P(DramPropertyTest, BusyTimeNeverExceedsWallClock)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    AddressMap map(cfg, InterleaveConfig{});
    Rng rng(GetParam() + 99);

    Tick when = 0;
    Tick last_done = 0;
    for (int i = 0; i < 4000; ++i) {
        when += rng.below(3000);
        const DramCoordinates c = map.decode(rng.below(1ULL << 26));
        last_done = std::max(last_done, ch.read(c, when));
    }
    ch.drainAll(last_done);
    EXPECT_LE(ch.busBusyReads() + ch.busBusyWrites(), last_done * 2);
    EXPECT_LE(ch.busUtilization(0, last_done), 1.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramPropertyTest,
                         ::testing::Range(0, 10));

TEST(DramSaturation, ClosedLoopReachesPeakBandwidth)
{
    // Back-to-back row hits from one bank stream at the burst rate; the
    // model's peak must approach the configured channel bandwidth.
    DramConfig cfg;
    DramChannel ch(cfg);
    DramCoordinates c;
    c.rank = 0;
    c.bank = 0;
    c.row = 1;

    // Open-loop: all requests available at t=0, row hits rotating
    // across banks so the shared data bus is the only bottleneck.
    Tick last = 0;
    constexpr int n = 4000;
    for (int i = 0; i < n; ++i) {
        c.bank = static_cast<unsigned>(i) % 16;
        c.row = 1;
        last = std::max(last, ch.read(c, 0));
    }
    const double gbs = n * 64.0 / ticksToNs(last);
    EXPECT_GT(gbs, cfg.peakGBs() * 0.5);
    EXPECT_LE(gbs, cfg.peakGBs() * 1.01);
}

} // namespace
} // namespace tmcc
