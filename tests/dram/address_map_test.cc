/** Tests for the DRAM address map and interleaving policies. */

#include <gtest/gtest.h>

#include "dram/address_map.hh"

namespace tmcc
{
namespace
{

TEST(AddressMap, SingleChannelDecodesFields)
{
    DramConfig dram;
    InterleaveConfig il;
    AddressMap map(dram, il);

    const DramCoordinates c0 = map.decode(0);
    EXPECT_EQ(c0.mc, 0u);
    EXPECT_EQ(c0.channel, 0u);
    EXPECT_EQ(c0.column, 0u);

    // Next block advances the column.
    const DramCoordinates c1 = map.decode(blockSize);
    EXPECT_EQ(c1.column, 1u);
    EXPECT_EQ(c1.rank, c0.rank);
    EXPECT_EQ(c1.row, c0.row);
}

TEST(AddressMap, RowBytesSpanOneRow)
{
    DramConfig dram;
    InterleaveConfig il;
    AddressMap map(dram, il);

    // All blocks within one row-buffer's worth share (rank,bank,row).
    const DramCoordinates first = map.decode(0);
    for (Addr a = 0; a < dram.rowBytes; a += blockSize) {
        const DramCoordinates c = map.decode(a);
        EXPECT_EQ(c.row, first.row);
        EXPECT_EQ(c.rank, first.rank);
        EXPECT_EQ(c.bank, first.bank);
    }
    // The next row-sized chunk moves somewhere else.
    const DramCoordinates next = map.decode(dram.rowBytes);
    EXPECT_TRUE(next.bank != first.bank || next.rank != first.rank ||
                next.row != first.row);
}

TEST(AddressMap, McInterleaveGranularity)
{
    DramConfig dram;
    InterleaveConfig il;
    il.numMcs = 2;
    il.mcGranularity = 512;
    AddressMap map(dram, il);

    EXPECT_EQ(map.decode(0).mc, 0u);
    EXPECT_EQ(map.decode(511).mc, 0u);
    EXPECT_EQ(map.decode(512).mc, 1u);
    EXPECT_EQ(map.decode(1024).mc, 0u);
}

TEST(AddressMap, PageGranularMcInterleaveForTmcc)
{
    // §VIII: TMCC needs >= 4KB interleaving across MCs so a page stays
    // within one MC.
    DramConfig dram;
    InterleaveConfig il;
    il.numMcs = 2;
    il.mcGranularity = 4096;
    AddressMap map(dram, il);

    for (Addr a = 0; a < pageSize; a += blockSize)
        EXPECT_EQ(map.decode(a).mc, 0u);
    for (Addr a = pageSize; a < 2 * pageSize; a += blockSize)
        EXPECT_EQ(map.decode(a).mc, 1u);
}

TEST(AddressMap, ChannelInterleave256B)
{
    DramConfig dram;
    InterleaveConfig il;
    il.channelsPerMc = 2;
    il.channelGranularity = 256;
    AddressMap map(dram, il);

    EXPECT_EQ(map.decode(0).channel, 0u);
    EXPECT_EQ(map.decode(256).channel, 1u);
    EXPECT_EQ(map.decode(512).channel, 0u);
}

TEST(AddressMap, SequentialStreamsSpreadOverBanks)
{
    DramConfig dram;
    InterleaveConfig il;
    AddressMap map(dram, il);

    // Row-sized strides with the XOR hash should not all land in the
    // same bank.
    std::set<unsigned> banks;
    for (int i = 0; i < 64; ++i)
        banks.insert(map.decode(static_cast<Addr>(i) *
                                dram.rowBytes).bank);
    EXPECT_GT(banks.size(), 4u);
}

TEST(AddressMap, CoordinatesWithinBounds)
{
    DramConfig dram;
    InterleaveConfig il;
    il.numMcs = 2;
    il.channelsPerMc = 2;
    AddressMap map(dram, il);

    for (Addr a = 0; a < (64ULL << 20); a += 4093 * blockSize) {
        const DramCoordinates c = map.decode(a);
        EXPECT_LT(c.mc, il.numMcs);
        EXPECT_LT(c.channel, il.channelsPerMc);
        EXPECT_LT(c.rank, dram.ranks);
        EXPECT_LT(c.bank, dram.bankGroups * dram.banksPerGroup);
    }
}

} // namespace
} // namespace tmcc
