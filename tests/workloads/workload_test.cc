/** Tests for workload engines and the profile library. */

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "workloads/graph.hh"
#include "workloads/profile_library.hh"
#include "workloads/synthetic.hh"
#include "workloads/workload.hh"

namespace tmcc
{
namespace
{

TEST(Factory, AllNamedWorkloadsConstruct)
{
    for (const auto &name : largeWorkloadNames()) {
        auto wl = makeWorkload(name, 0, 4, 0.02, 1);
        ASSERT_NE(wl, nullptr) << name;
        EXPECT_EQ(wl->name(), name);
        EXPECT_GT(wl->footprintBytes(), 0u);
    }
    for (const auto &name : smallWorkloadNames())
        EXPECT_NE(makeWorkload(name, 0, 4, 0.02, 1), nullptr) << name;
    for (const auto &name : bandwidthWorkloadNames())
        EXPECT_NE(makeWorkload(name, 0, 4, 0.02, 1), nullptr) << name;
}

TEST(Factory, AccessesStayInsideRegions)
{
    for (const auto &name : largeWorkloadNames()) {
        auto wl = makeWorkload(name, 1, 4, 0.02, 3);
        const auto &regions = wl->regions();
        for (int i = 0; i < 5000; ++i) {
            const MemAccess a = wl->next();
            bool inside = false;
            for (const auto &r : regions)
                inside |= a.vaddr >= r.base && a.vaddr < r.base + r.bytes;
            ASSERT_TRUE(inside)
                << name << " vaddr outside regions: " << a.vaddr;
        }
    }
}

TEST(Factory, DeterministicGivenSeed)
{
    auto a = makeWorkload("pageRank", 0, 4, 0.02, 7);
    auto b = makeWorkload("pageRank", 0, 4, 0.02, 7);
    for (int i = 0; i < 1000; ++i) {
        const MemAccess x = a->next();
        const MemAccess y = b->next();
        ASSERT_EQ(x.vaddr, y.vaddr);
        ASSERT_EQ(x.isWrite, y.isWrite);
    }
}

TEST(Graph, DegreesAreHeavyTailed)
{
    GraphParams p;
    p.vertices = 100000;
    GraphWorkload g(GraphKernel::PageRank, p, 0, 1, 1);
    unsigned hubs = 0;
    double total = 0;
    for (std::uint64_t v = 0; v < p.vertices; ++v) {
        const unsigned d = g.degree(v);
        total += d;
        hubs += d >= 48;
    }
    const double avg = total / static_cast<double>(p.vertices);
    EXPECT_GT(avg, 4.0);
    EXPECT_LT(avg, 14.0);
    // ~2% hubs.
    EXPECT_NEAR(static_cast<double>(hubs) /
                    static_cast<double>(p.vertices),
                0.02, 0.01);
}

TEST(Graph, NeighborsAreSkewedTowardLowIds)
{
    GraphParams p;
    p.vertices = 1 << 20;
    GraphWorkload g(GraphKernel::PageRank, p, 0, 1, 1);
    std::uint64_t low = 0, total = 0;
    for (std::uint64_t u = 0; u < 2000; ++u) {
        for (unsigned i = 0; i < g.degree(u); ++i) {
            ++total;
            low += g.neighbor(u, i) < p.vertices / 10;
        }
    }
    // Far more than 10% of endpoints land in the low-id (hub) tenth.
    EXPECT_GT(static_cast<double>(low) / static_cast<double>(total),
              0.4);
}

TEST(Graph, WritesPresentForWritingKernels)
{
    GraphParams p;
    p.vertices = 1 << 16;
    GraphWorkload g(GraphKernel::ShortestPath, p, 0, 1, 1);
    unsigned writes = 0;
    for (int i = 0; i < 20000; ++i)
        writes += g.next().isWrite;
    EXPECT_GT(writes, 500u);
}

TEST(Graph, DegCentrHasCompactPageFootprint)
{
    // degCentr does pure CSR scans: a window of accesses touches very
    // few distinct pages (regular), unlike pointer-chasing kernels.
    GraphParams p;
    p.vertices = 1 << 20;
    GraphWorkload reg(GraphKernel::DegreeCentrality, p, 0, 1, 1);
    GraphWorkload irr(GraphKernel::PageRank, p, 0, 1, 1);
    std::unordered_set<Addr> reg_pages, irr_pages;
    for (int i = 0; i < 20000; ++i) {
        reg_pages.insert(pageNumber(reg.next().vaddr));
        irr_pages.insert(pageNumber(irr.next().vaddr));
    }
    EXPECT_LT(reg_pages.size(), 500u);
    EXPECT_GT(irr_pages.size(), reg_pages.size() * 2);
}

TEST(Synthetic, HotColdModelConcentrates)
{
    SyntheticParams p;
    p.name = "t";
    WlRegion r;
    r.name = "r";
    r.base = 1 << 30;
    r.bytes = 64ULL << 20;
    r.content = {ContentFamily::IntArray, 0.5};
    p.regions = {r};
    p.sequentialFraction = 0.0;
    p.hotFraction = 0.2;
    p.coldP = 0.02;
    SyntheticWorkload wl(p, 0, 1, 1);

    std::uint64_t hot = 0, total = 20000;
    const Addr hot_end =
        r.base + static_cast<Addr>(r.bytes * p.hotFraction);
    for (std::uint64_t i = 0; i < total; ++i)
        hot += wl.next().vaddr < hot_end;
    EXPECT_NEAR(static_cast<double>(hot) / total, 0.98, 0.01);
}

TEST(Synthetic, SequentialRunsWrapWithinTheirOwnRegion)
{
    // Two regions separated by an unmapped gap, with region 1 BELOW
    // region 0 so a run started there never trips a region-0 bounds
    // check: before the fix, such runs streamed past region 1's end
    // into the gap.  With sequentialFraction=1 every access belongs to
    // a run of exactly 1+runBlocks accesses, so run boundaries are
    // known and each run must stay inside the region it started in.
    SyntheticParams p;
    p.name = "t";
    WlRegion hi, lo;
    hi.name = "hi";
    hi.base = (1ULL << 30) + (8ULL << 20);
    hi.bytes = 1ULL << 20;
    lo.name = "lo";
    lo.base = 1ULL << 30;
    lo.bytes = 1ULL << 20;
    p.regions = {hi, lo};
    p.sequentialFraction = 1.0;
    p.runBlocks = 512;
    SyntheticWorkload wl(p, 0, 1, 7);

    const auto regionIndex = [&](Addr v) {
        for (int i = 0; i < 2; ++i) {
            const WlRegion &r = p.regions[i];
            if (v >= r.base && v < r.base + r.bytes)
                return i;
        }
        return -1;
    };

    bool saw_lo_run = false;
    for (int run = 0; run < 400; ++run) {
        const int region = regionIndex(wl.next().vaddr);
        ASSERT_GE(region, 0) << "run started outside both regions";
        saw_lo_run |= region == 1;
        for (unsigned i = 0; i < p.runBlocks; ++i) {
            const Addr v = wl.next().vaddr;
            ASSERT_EQ(regionIndex(v), region)
                << "sequential run left its region at " << v;
        }
    }
    EXPECT_TRUE(saw_lo_run);
}

TEST(Synthetic, ChaseProducesDependentJumps)
{
    SyntheticParams p;
    p.name = "t";
    WlRegion r;
    r.base = 1 << 30;
    r.bytes = 16ULL << 20;
    p.regions = {r};
    p.sequentialFraction = 0.0;
    p.chaseDepth = 4;
    SyntheticWorkload wl(p, 0, 1, 1);
    // Determinism of the chase: two engines with the same seed agree.
    SyntheticWorkload wl2(p, 0, 1, 1);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(wl.next().vaddr, wl2.next().vaddr);
}

TEST(ProfileLibrary, MeasuresAndServesProfiles)
{
    ProfileLibrary lib(3);
    ContentMix mix;
    mix.parts.push_back({{ContentFamily::Text, 0.5}, 1.0});
    const unsigned id = lib.registerMix(mix);
    lib.assignPage(77, id);

    const PageProfile &p = lib.profile(77);
    EXPECT_LT(p.deflateBytes, pageSize / 2); // text compresses
    EXPECT_GT(p.lzTokens, 0u);

    // Unassigned pages get the default.
    const PageProfile &d = lib.profile(99999);
    EXPECT_GT(d.deflateBytes, 0u);
}

TEST(ProfileLibrary, SummaryOrdersRatiosSanely)
{
    ProfileLibrary lib(3);
    ContentMix mix;
    mix.parts.push_back({{ContentFamily::GraphCsr, 0.5, 3.0}, 1.0});
    const unsigned id = lib.registerMix(mix);
    const auto s = lib.summarize(id);
    // Fig. 15 ordering: block < our Deflate <= gzip.
    EXPECT_LT(s.blockRatio, s.deflateRatio);
    EXPECT_LE(s.deflateRatio, s.rfcRatio * 1.05);
    // Skip never hurts.
    EXPECT_GE(s.deflateRatio, s.deflateNoSkipRatio - 1e-9);
}

TEST(ProfileLibrary, WeightedPartsAssignDeterministically)
{
    ProfileLibrary lib(2);
    ContentMix mix;
    mix.parts.push_back({{ContentFamily::Zero, 0}, 1.0});
    mix.parts.push_back({{ContentFamily::Random, 0}, 1.0});
    const unsigned id = lib.registerMix(mix);
    for (Ppn p = 0; p < 200; ++p)
        lib.assignPage(p, id);
    unsigned zero_pages = 0;
    for (Ppn p = 0; p < 200; ++p)
        zero_pages += lib.profile(p).deflateBytes < 100;
    // Roughly half the pages draw the zero part.
    EXPECT_GT(zero_pages, 60u);
    EXPECT_LT(zero_pages, 140u);
    // Same PPN always maps to the same part.
    const auto before = lib.profile(5).deflateBytes;
    EXPECT_EQ(lib.profile(5).deflateBytes, before);
}

} // namespace
} // namespace tmcc
