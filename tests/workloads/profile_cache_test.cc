/**
 * @file
 * ProfileLibrary's process-wide measurement cache: identical (spec,
 * samples, seed) keys must be measured exactly once, the cached result
 * must be independent of registration order, and distinct keys must not
 * alias.
 */

#include <gtest/gtest.h>

#include "workloads/profile_library.hh"

namespace tmcc
{
namespace
{

ContentMix
mixA()
{
    ContentMix mix;
    mix.parts.push_back({{ContentFamily::Text, 0.5, 1.0}, 2.0});
    mix.parts.push_back({{ContentFamily::IntArray, 0.5, 3.0}, 1.0});
    return mix;
}

ContentMix
mixB()
{
    ContentMix mix;
    mix.parts.push_back({{ContentFamily::PointerHeap, 0.5, 3.0}, 1.0});
    mix.parts.push_back({{ContentFamily::FloatArray, 0.5, 3.0}, 1.0});
    return mix;
}

void
expectSameProfile(const PageProfile &a, const PageProfile &b)
{
    EXPECT_EQ(a.blockBytes, b.blockBytes);
    EXPECT_EQ(a.deflateBytes, b.deflateBytes);
    EXPECT_EQ(a.rfcBytes, b.rfcBytes);
    EXPECT_EQ(a.lzTokens, b.lzTokens);
    EXPECT_EQ(a.huffmanUsed, b.huffmanUsed);
    EXPECT_EQ(a.overflowP, b.overflowP);
}

TEST(ProfileCache, SecondRegistrationCompressesNothing)
{
    ProfileLibrary::clearCache();

    ProfileLibrary first(6);
    first.registerMix(mixA());
    const auto cold = ProfileLibrary::cacheStats();
    EXPECT_EQ(cold.hits, 0u);
    EXPECT_EQ(cold.misses, 2u); // one per part
    EXPECT_EQ(cold.pagesCompressed, 2u * 6u);

    // A fresh library with the same samples/seed re-registers the same
    // mix: every part must come from the cache, zero codec work.
    ProfileLibrary second(6);
    second.registerMix(mixA());
    const auto warm = ProfileLibrary::cacheStats();
    EXPECT_EQ(warm.hits, 2u);
    EXPECT_EQ(warm.misses, cold.misses);
    EXPECT_EQ(warm.pagesCompressed, cold.pagesCompressed);
}

TEST(ProfileCache, CachedProfilesMatchColdMeasurement)
{
    ProfileLibrary::clearCache();

    ProfileLibrary cold(6);
    const unsigned idc = cold.registerMix(mixA());

    ProfileLibrary warm(6);
    const unsigned idw = warm.registerMix(mixA());

    const auto &pc = cold.partProfiles(idc);
    const auto &pw = warm.partProfiles(idw);
    ASSERT_EQ(pc.size(), pw.size());
    for (std::size_t i = 0; i < pc.size(); ++i) {
        SCOPED_TRACE("part " + std::to_string(i));
        expectSameProfile(pc[i], pw[i]);
    }
}

TEST(ProfileCache, ProfilesIndependentOfRegistrationOrder)
{
    // Each part's RNG stream derives from its own key, so measuring
    // mixA before mixB must give the same numbers as B before A.
    ProfileLibrary::clearCache();
    ProfileLibrary ab(6);
    const unsigned a1 = ab.registerMix(mixA());
    const unsigned b1 = ab.registerMix(mixB());
    const std::vector<PageProfile> profA = ab.partProfiles(a1);
    const std::vector<PageProfile> profB = ab.partProfiles(b1);

    ProfileLibrary::clearCache();
    ProfileLibrary ba(6);
    const unsigned b2 = ba.registerMix(mixB());
    const unsigned a2 = ba.registerMix(mixA());

    ASSERT_EQ(profA.size(), ba.partProfiles(a2).size());
    for (std::size_t i = 0; i < profA.size(); ++i)
        expectSameProfile(profA[i], ba.partProfiles(a2)[i]);
    for (std::size_t i = 0; i < profB.size(); ++i)
        expectSameProfile(profB[i], ba.partProfiles(b2)[i]);
}

TEST(ProfileCache, DistinctKeysDoNotAlias)
{
    ProfileLibrary::clearCache();

    ProfileLibrary lib(6);
    lib.registerMix(mixA());
    const auto base = ProfileLibrary::cacheStats();

    // Same specs, different sample count -> new cache entries.
    ProfileLibrary more(8);
    more.registerMix(mixA());
    const auto after_samples = ProfileLibrary::cacheStats();
    EXPECT_EQ(after_samples.hits, base.hits);
    EXPECT_EQ(after_samples.misses, base.misses + 2);

    // Same specs and samples, different seed -> new cache entries.
    ProfileLibrary reseeded(6, 0xbeef);
    reseeded.registerMix(mixA());
    const auto after_seed = ProfileLibrary::cacheStats();
    EXPECT_EQ(after_seed.hits, after_samples.hits);
    EXPECT_EQ(after_seed.misses, after_samples.misses + 2);
}

TEST(ProfileCache, DuplicatePartsWithinOneMixMeasuredOnce)
{
    ProfileLibrary::clearCache();

    // The same (spec) twice in one mix at different weights: one
    // measurement, one miss, one hit.
    ContentMix mix;
    mix.parts.push_back({{ContentFamily::Text, 0.5, 1.0}, 3.0});
    mix.parts.push_back({{ContentFamily::Text, 0.5, 1.0}, 1.0});

    ProfileLibrary lib(6);
    const unsigned id = lib.registerMix(mix);
    const auto s = ProfileLibrary::cacheStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.pagesCompressed, 6u);
    expectSameProfile(lib.partProfiles(id)[0], lib.partProfiles(id)[1]);
}

TEST(ProfileCache, ClearCacheResetsStats)
{
    ProfileLibrary lib(6);
    lib.registerMix(mixA());
    ProfileLibrary::clearCache();
    const auto s = ProfileLibrary::cacheStats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.pagesCompressed, 0u);
}

} // namespace
} // namespace tmcc
