/** Tests for the content generators and their compressibility knobs. */

#include <gtest/gtest.h>

#include "compress/block_compressor.hh"
#include "compress/mem_deflate.hh"
#include "workloads/content.hh"

namespace tmcc
{
namespace
{

TEST(Content, EveryFamilyGeneratesFullPages)
{
    Rng rng(1);
    const ContentFamily families[] = {
        ContentFamily::Zero,        ContentFamily::Text,
        ContentFamily::PointerHeap, ContentFamily::IntArray,
        ContentFamily::FloatArray,  ContentFamily::GraphCsr,
        ContentFamily::KeyValue,    ContentFamily::Random,
    };
    for (ContentFamily f : families) {
        const auto p = generateContent({f, 0.5, 2.0}, rng);
        EXPECT_EQ(p.size(), pageSize) << contentFamilyName(f);
    }
}

TEST(Content, DeterministicGivenRngState)
{
    Rng a(42), b(42);
    const ContentSpec spec{ContentFamily::GraphCsr, 0.6, 3.0};
    EXPECT_EQ(generateContent(spec, a), generateContent(spec, b));
}

TEST(Content, StructureKnobOrdersDeflateRatio)
{
    MemDeflate codec;
    auto avg_size = [&](double structure) {
        Rng rng(7);
        std::size_t total = 0;
        for (int i = 0; i < 6; ++i) {
            const auto p = generateContent(
                {ContentFamily::Text, structure, 1.0}, rng);
            total += codec.compress(p.data(), p.size()).sizeBytes();
        }
        return total;
    };
    // More structure => smaller output.
    EXPECT_LT(avg_size(0.9), avg_size(0.1));
}

TEST(Content, RepetitionKnobHelpsDeflateNotBlock)
{
    // The Fig. 15 mechanism: page-scale repetition is visible to LZ
    // (1KB window) but invisible to per-64B block compressors.
    MemDeflate deflate;
    BlockCompressor block;
    Rng rng(9);
    std::size_t d1 = 0, d3 = 0, b1 = 0, b3 = 0;
    for (int i = 0; i < 6; ++i) {
        const auto p1 = generateContent(
            {ContentFamily::PointerHeap, 0.5, 1.0}, rng);
        const auto p3 = generateContent(
            {ContentFamily::PointerHeap, 0.5, 3.0}, rng);
        d1 += deflate.compress(p1.data(), p1.size()).sizeBytes();
        d3 += deflate.compress(p3.data(), p3.size()).sizeBytes();
        b1 += block.compressPage(p1.data());
        b3 += block.compressPage(p3.data());
    }
    // Deflate gains a lot from repetition...
    EXPECT_LT(static_cast<double>(d3), 0.75 * static_cast<double>(d1));
    // ...block-level compression barely moves.
    EXPECT_GT(static_cast<double>(b3), 0.75 * static_cast<double>(b1));
}

TEST(Content, ZeroPagesAreAllZero)
{
    Rng rng(3);
    const auto p = generateContent({ContentFamily::Zero, 0, 1.0}, rng);
    for (auto b : p)
        ASSERT_EQ(b, 0u);
}

TEST(Content, RandomPagesAreIncompressible)
{
    Rng rng(4);
    MemDeflate codec;
    const auto p = generateContent({ContentFamily::Random, 0, 1.0}, rng);
    EXPECT_TRUE(codec.compress(p.data(), p.size()).incompressible());
}

TEST(Content, FamilyNamesRoundTrip)
{
    EXPECT_STREQ(contentFamilyName(ContentFamily::GraphCsr),
                 "graph-csr");
    EXPECT_STREQ(contentFamilyName(ContentFamily::KeyValue),
                 "key-value");
}

} // namespace
} // namespace tmcc
