/** Tests for trace capture and replay. */

#include <cstdio>

#include <gtest/gtest.h>

#include "workloads/trace.hh"

namespace tmcc
{
namespace
{

class TraceTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::string path_ = "trace_test.tmcctrc";
};

TEST_F(TraceTest, RecordReplayRoundTrip)
{
    auto source = makeWorkload("pageRank", 0, 4, 0.02, 5);
    auto reference = makeWorkload("pageRank", 0, 4, 0.02, 5);

    TraceRecorder::record(*source, path_, 5000);
    TraceWorkload replay(path_);

    EXPECT_EQ(replay.accessCount(), 5000u);
    EXPECT_EQ(replay.regions().size(), reference->regions().size());
    for (std::size_t i = 0; i < replay.regions().size(); ++i) {
        EXPECT_EQ(replay.regions()[i].base,
                  reference->regions()[i].base);
        EXPECT_EQ(replay.regions()[i].bytes,
                  reference->regions()[i].bytes);
        EXPECT_EQ(replay.regions()[i].name,
                  reference->regions()[i].name);
    }
    for (int i = 0; i < 5000; ++i) {
        const MemAccess want = reference->next();
        const MemAccess got = replay.next();
        ASSERT_EQ(got.vaddr, want.vaddr);
        ASSERT_EQ(got.isWrite, want.isWrite);
    }
}

TEST_F(TraceTest, ReplayLoopsAtEnd)
{
    auto source = makeWorkload("mcf", 1, 4, 0.05, 3);
    TraceRecorder::record(*source, path_, 100);
    TraceWorkload replay(path_);
    std::vector<Addr> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(replay.next().vaddr);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(replay.next().vaddr, first[i]);
}

TEST_F(TraceTest, ThinkCyclesSaturateAt255)
{
    auto source = makeWorkload("swaptions", 0, 1, 0.05, 1);
    TraceRecorder::record(*source, path_, 500);
    TraceWorkload replay(path_);
    for (int i = 0; i < 500; ++i)
        ASSERT_LE(replay.next().thinkCycles, 255u);
}

} // namespace
} // namespace tmcc
