/** Tests for the multi-tenant "memcloud" workload engine. */

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/serial.hh"
#include "workloads/multi_tenant.hh"

namespace tmcc
{
namespace
{

MultiTenantParams
smallParams()
{
    MultiTenantParams p;
    p.tenants = 6;
    p.tenantBytes = 4ULL << 20;
    return p;
}

TEST(MultiTenant, RegionsAreGapSeparatedAndOrdered)
{
    const MultiTenantParams p = smallParams();
    MultiTenantWorkload wl(p, 0, 4, 1);
    const auto &regions = wl.regions();
    ASSERT_EQ(regions.size(), p.tenants);
    for (unsigned t = 0; t < p.tenants; ++t) {
        EXPECT_EQ(regions[t].name, "tenant" + std::to_string(t));
        EXPECT_GT(regions[t].bytes, 0u);
        if (t > 0)
            // Strictly separated: a run escaping region t-1 cannot
            // silently land in region t.
            EXPECT_GT(regions[t].base,
                      regions[t - 1].base + regions[t - 1].bytes);
    }
}

TEST(MultiTenant, AccessTenantMatchesItsRegion)
{
    const MultiTenantParams p = smallParams();
    MultiTenantWorkload wl(p, 0, 4, 2);
    const auto &regions = wl.regions();
    for (int i = 0; i < 200'000; ++i) {
        const MemAccess a = wl.next();
        ASSERT_LT(a.tenant, p.tenants);
        const WlRegion &r = regions[a.tenant];
        ASSERT_GE(a.vaddr, r.base)
            << "access " << i << " below tenant " << a.tenant;
        ASSERT_LT(a.vaddr, r.base + r.bytes)
            << "access " << i << " beyond tenant " << a.tenant;
    }
}

TEST(MultiTenant, EveryTenantGetsTraffic)
{
    // Regression companion to Rng.ZipfReachesEveryRank at the engine
    // level: with the zipf off-by-one, the last tenant starved.
    const MultiTenantParams p = smallParams();
    MultiTenantWorkload wl(p, 0, 4, 3);
    std::vector<std::uint64_t> perTenant(p.tenants, 0);
    for (int i = 0; i < 400'000; ++i)
        ++perTenant[wl.next().tenant];
    for (unsigned t = 0; t < p.tenants; ++t)
        EXPECT_GT(perTenant[t], 0u) << "tenant " << t << " starved";
    // Zipf popularity: the most popular tenant clearly dominates the
    // least popular one.
    EXPECT_GT(perTenant[0], 2 * perTenant[p.tenants - 1]);
}

TEST(MultiTenant, DeterministicGivenSeed)
{
    const MultiTenantParams p = smallParams();
    MultiTenantWorkload a(p, 1, 4, 9), b(p, 1, 4, 9);
    for (int i = 0; i < 50'000; ++i) {
        const MemAccess x = a.next();
        const MemAccess y = b.next();
        ASSERT_EQ(x.vaddr, y.vaddr);
        ASSERT_EQ(x.isWrite, y.isWrite);
        ASSERT_EQ(x.tenant, y.tenant);
        ASSERT_EQ(x.thinkCycles, y.thinkCycles);
    }
}

TEST(MultiTenant, ChurnBumpsGenerationsAndRecolonizes)
{
    MultiTenantParams p = smallParams();
    p.churn = 0.2; // every ~5th burst respawns its tenant
    MultiTenantWorkload wl(p, 0, 4, 5);
    std::uint64_t seqWrites = 0;
    for (int i = 0; i < 300'000; ++i)
        seqWrites += wl.next().isWrite;
    std::uint32_t generations = 0;
    for (unsigned t = 0; t < p.tenants; ++t)
        generations += wl.generation(t);
    EXPECT_GT(generations, 10u) << "churn never respawned a guest";
    // Respawn image-rewrites push the write fraction well above the
    // steady-state 25%.
    EXPECT_GT(seqWrites, 300'000 * 0.35);
}

TEST(MultiTenant, ZeroChurnKeepsGenerationZero)
{
    MultiTenantParams p = smallParams();
    p.churn = 0.0;
    MultiTenantWorkload wl(p, 0, 4, 6);
    for (int i = 0; i < 100'000; ++i)
        wl.next();
    for (unsigned t = 0; t < p.tenants; ++t)
        EXPECT_EQ(wl.generation(t), 0u);
}

TEST(MultiTenant, StormWindowTouchesAllTenantsUniformly)
{
    MultiTenantParams p = smallParams();
    p.stormPeriod = 10'000;
    p.stormAccesses = 2'000;
    MultiTenantWorkload wl(p, 0, 4, 7);
    // Count tenants over exactly the storm windows (deterministic in
    // the access index, which starts at 1).
    std::map<std::uint16_t, std::uint64_t> stormTenants;
    for (std::uint64_t i = 1; i <= 100'000; ++i) {
        const MemAccess a = wl.next();
        if (i % p.stormPeriod >= p.stormPeriod - p.stormAccesses)
            ++stormTenants[a.tenant];
    }
    ASSERT_EQ(stormTenants.size(), p.tenants)
        << "storm should spray every tenant";
    // Uniform scheduling: no tenant more than 2x any other.
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (const auto &[t, c] : stormTenants) {
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    EXPECT_LT(hi, 2 * lo);
}

TEST(MultiTenant, SaveLoadContinuesBitIdentically)
{
    MultiTenantParams p = smallParams();
    p.churn = 0.05; // exercise per-tenant recolonize state too
    MultiTenantWorkload a(p, 2, 4, 11);
    for (int i = 0; i < 70'000; ++i)
        a.next();

    ByteWriter w;
    a.saveState(w);
    MultiTenantWorkload b(p, 2, 4, 11);
    ByteReader r(w.buffer());
    ASSERT_TRUE(b.loadState(r).ok());

    for (int i = 0; i < 50'000; ++i) {
        const MemAccess x = a.next();
        const MemAccess y = b.next();
        ASSERT_EQ(x.vaddr, y.vaddr);
        ASSERT_EQ(x.isWrite, y.isWrite);
        ASSERT_EQ(x.tenant, y.tenant);
        ASSERT_EQ(x.thinkCycles, y.thinkCycles);
    }
}

TEST(MultiTenant, LoadRejectsTruncatedAndCorruptState)
{
    const MultiTenantParams p = smallParams();
    MultiTenantWorkload a(p, 0, 4, 13);
    for (int i = 0; i < 1000; ++i)
        a.next();
    ByteWriter w;
    a.saveState(w);

    std::vector<std::uint8_t> bytes = w.buffer();
    bytes.resize(bytes.size() / 2);
    MultiTenantWorkload b(p, 0, 4, 13);
    ByteReader r(bytes);
    EXPECT_FALSE(b.loadState(r).ok());

    // A state saved for more tenants than this engine has must be
    // rejected, not partially applied.
    MultiTenantParams fewer = p;
    fewer.tenants = 2;
    MultiTenantWorkload c(fewer, 0, 4, 13);
    ByteReader r2(w.buffer());
    EXPECT_FALSE(c.loadState(r2).ok());
}

TEST(MultiTenantDeath, RejectsSillyParams)
{
    MultiTenantParams zero = smallParams();
    zero.tenants = 0;
    EXPECT_DEATH(MultiTenantWorkload(zero, 0, 4, 1), "1..1024");

    MultiTenantParams churny = smallParams();
    churny.churn = 1.5;
    EXPECT_DEATH(MultiTenantWorkload(churny, 0, 4, 1), "churn");

    MultiTenantParams stormy = smallParams();
    stormy.stormAccesses = stormy.stormPeriod;
    EXPECT_DEATH(MultiTenantWorkload(stormy, 0, 4, 1), "storm");
}

} // namespace
} // namespace tmcc
