/** Tests for the TLB, page-walk cache and walker. */

#include <gtest/gtest.h>

#include "vm/tlb.hh"
#include "vm/walker.hh"

namespace tmcc
{
namespace
{

TEST(Tlb, MissInsertHit)
{
    Tlb tlb(64, 4);
    Ppn ppn = 0;
    EXPECT_FALSE(tlb.lookup(0x1234000, ppn));
    tlb.insert(0x1234, 0x42);
    ASSERT_TRUE(tlb.lookup(0x1234000, ppn));
    EXPECT_EQ(ppn, 0x42u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, OffsetsWithinPageHit)
{
    Tlb tlb(64, 4);
    tlb.insert(0x1, 0x9);
    Ppn ppn = 0;
    EXPECT_TRUE(tlb.lookup(0x1fff, ppn));
    EXPECT_FALSE(tlb.lookup(0x2000, ppn));
}

TEST(Tlb, LruEvictionWithinSet)
{
    Tlb tlb(8, 2); // 4 sets x 2 ways
    // Three VPNs in the same set (stride = sets = 4).
    tlb.insert(0x0, 1);
    tlb.insert(0x4, 2);
    Ppn ppn;
    EXPECT_TRUE(tlb.lookup(0x0ULL << pageShift, ppn)); // refresh 0x0
    tlb.insert(0x8, 3); // evicts 0x4
    EXPECT_TRUE(tlb.lookup(0x0ULL << pageShift, ppn));
    EXPECT_FALSE(tlb.lookup(0x4ULL << pageShift, ppn));
    EXPECT_TRUE(tlb.lookup(0x8ULL << pageShift, ppn));
}

TEST(Tlb, HugeEntryCoversWholeRegion)
{
    Tlb tlb(64, 4);
    constexpr Vpn huge_pages = hugePageSize / pageSize;
    tlb.insertHuge(huge_pages * 3, 0x1000);
    Ppn ppn = 0;
    ASSERT_TRUE(tlb.lookup((huge_pages * 3 + 17) << pageShift, ppn));
    EXPECT_EQ(ppn, 0x1000u + 17);
}

TEST(Tlb, FlushClearsEverything)
{
    Tlb tlb(64, 4);
    tlb.insert(0x7, 0x8);
    tlb.flush();
    Ppn ppn;
    EXPECT_FALSE(tlb.lookup(0x7ULL << pageShift, ppn));
}

TEST(Pwc, LookupAfterInsert)
{
    PageWalkCache pwc(32, 4);
    const Addr vaddr = 0x7fULL << 30;
    Ppn table = 0;
    EXPECT_FALSE(pwc.lookup(3, vaddr, table));
    pwc.insert(3, vaddr, 0x1234);
    ASSERT_TRUE(pwc.lookup(3, vaddr, table));
    EXPECT_EQ(table, 0x1234u);
}

TEST(Pwc, LevelsAreIndependent)
{
    PageWalkCache pwc(32, 4);
    const Addr vaddr = 0x40000000;
    pwc.insert(2, vaddr, 0xaaa);
    Ppn table = 0;
    EXPECT_FALSE(pwc.lookup(3, vaddr, table));
    EXPECT_TRUE(pwc.lookup(2, vaddr, table));
}

TEST(Walker, FullWalkWithoutPwc)
{
    PhysMem mem(10000);
    PageTable pt(mem);
    PteFlags f;
    pt.map(0x5000, 0x77, f);

    Walker w(pt);
    const WalkPlan plan = w.plan(0x5000ULL << pageShift);
    ASSERT_TRUE(plan.valid);
    EXPECT_EQ(plan.ppn, 0x77u);
    EXPECT_EQ(plan.fetches.size(), 4u);
    EXPECT_EQ(plan.pwcHitLevel, 0u);
}

TEST(Walker, PwcSkipsUpperLevels)
{
    PhysMem mem(10000);
    PageTable pt(mem);
    PteFlags f;
    pt.map(0x5000, 0x77, f);
    pt.map(0x5001, 0x78, f);

    Walker w(pt);
    w.plan(0x5000ULL << pageShift); // warms the PWC
    const WalkPlan plan = w.plan(0x5001ULL << pageShift);
    ASSERT_TRUE(plan.valid);
    // Level-2 PWC entry gives the L1 table: only the leaf PTB fetch.
    EXPECT_EQ(plan.pwcHitLevel, 2u);
    EXPECT_EQ(plan.fetches.size(), 1u);
    EXPECT_EQ(plan.fetches[0].level, 1u);
}

TEST(Walker, DistantAddressPartialPwcHit)
{
    PhysMem mem(20000);
    PageTable pt(mem);
    PteFlags f;
    pt.map(0x5000, 0x77, f);
    // Same L3 region (within 1GB), different L2 region (2MB apart).
    pt.map(0x5000 + 512, 0x79, f);

    Walker w(pt);
    w.plan(0x5000ULL << pageShift);
    const WalkPlan plan = w.plan((0x5000ULL + 512) << pageShift);
    ASSERT_TRUE(plan.valid);
    // L2 entry differs, L3 entry matches: fetch L2-PTB and L1-PTB.
    EXPECT_EQ(plan.pwcHitLevel, 3u);
    EXPECT_EQ(plan.fetches.size(), 2u);
}

TEST(Walker, HugeWalkPlansThreeFetches)
{
    PhysMem mem(20000);
    PageTable pt(mem);
    PteFlags f;
    pt.mapHuge(0x40000, 0x1000, f);

    Walker w(pt);
    const WalkPlan plan = w.plan(0x40005ULL << pageShift);
    ASSERT_TRUE(plan.valid);
    EXPECT_TRUE(plan.huge);
    EXPECT_EQ(plan.fetches.size(), 3u);
    EXPECT_EQ(plan.ppn, 0x1005u);
}

} // namespace
} // namespace tmcc
