/** Tests for PTE encoding, the 4-level page table, and PhysMem. */

#include <gtest/gtest.h>

#include "vm/page_table.hh"
#include "vm/phys_mem.hh"
#include "vm/pte.hh"

namespace tmcc
{
namespace
{

TEST(Pte, EncodeDecodeFields)
{
    PteFlags f;
    f.present = true;
    f.writable = true;
    f.accessed = true;
    f.dirty = true;
    const std::uint64_t pte = makePte(0x123456, f);
    EXPECT_TRUE(ptePresent(pte));
    EXPECT_TRUE(pteWritable(pte));
    EXPECT_TRUE(pteAccessed(pte));
    EXPECT_TRUE(pteDirty(pte));
    EXPECT_FALSE(pteHuge(pte));
    EXPECT_EQ(ptePpn(pte), 0x123456u);
}

TEST(Pte, StatusBitsIgnorePpn)
{
    PteFlags f;
    f.accessed = true;
    f.dirty = true;
    // Same flags, different PPNs: identical status bits (Fig. 6).
    EXPECT_EQ(pteStatusBits(makePte(1, f)), pteStatusBits(makePte(999, f)));
    PteFlags g = f;
    g.dirty = false;
    EXPECT_NE(pteStatusBits(makePte(1, f)), pteStatusBits(makePte(1, g)));
}

TEST(Pte, IndexExtraction)
{
    // vaddr = L4:3, L3:5, L2:7, L1:9, offset 0.
    const Addr vaddr = (3ULL << 39) | (5ULL << 30) | (7ULL << 21) |
                       (9ULL << 12);
    EXPECT_EQ(pteIndex(vaddr, 4), 3u);
    EXPECT_EQ(pteIndex(vaddr, 3), 5u);
    EXPECT_EQ(pteIndex(vaddr, 2), 7u);
    EXPECT_EQ(pteIndex(vaddr, 1), 9u);
}

TEST(PhysMem, FrameAllocation)
{
    PhysMem mem(100);
    const Ppn a = mem.allocFrame();
    const Ppn b = mem.allocFrame();
    EXPECT_NE(a, b);
    mem.freeFrame(a);
    EXPECT_EQ(mem.allocFrame(), a); // LIFO reuse
}

TEST(PhysMem, HugeFrameAlignment)
{
    PhysMem mem(4096);
    mem.allocFrame(); // misalign the bump pointer
    const Ppn huge = mem.allocHugeFrame();
    EXPECT_EQ(huge % (hugePageSize / pageSize), 0u);
}

TEST(PhysMem, PtPageReadWrite)
{
    PhysMem mem(100);
    const Ppn pt = mem.allocPageTablePage();
    EXPECT_TRUE(mem.isPageTablePage(pt));
    const Addr paddr = (pt << pageShift) + 8 * 17;
    mem.writeQword(paddr, 0xdeadbeefULL);
    EXPECT_EQ(mem.readQword(paddr), 0xdeadbeefULL);
    EXPECT_EQ(mem.ptPage(pt)[17], 0xdeadbeefULL);
}

TEST(PageTable, MapAndWalk)
{
    PhysMem mem(10000);
    PageTable pt(mem);
    PteFlags f;
    pt.map(0x12345, 0x777, f);

    const WalkResult r = pt.walk(0x12345ULL << pageShift);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.ppn, 0x777u);
    EXPECT_FALSE(r.huge);
    EXPECT_EQ(r.steps.size(), 4u); // 4-level walk
    EXPECT_EQ(r.steps[0].level, 4u);
    EXPECT_EQ(r.steps[3].level, 1u);
}

TEST(PageTable, WalkStepsPointToRealPtbs)
{
    PhysMem mem(10000);
    PageTable pt(mem);
    PteFlags f;
    pt.map(0x1000, 0x42, f);

    const WalkResult r = pt.walk(0x1000ULL << pageShift);
    for (const WalkStep &s : r.steps) {
        // Every fetched PTB belongs to a registered page-table page.
        EXPECT_TRUE(mem.isPageTablePage(pageNumber(s.ptbAddr)));
        EXPECT_EQ(s.ptbAddr % blockSize, 0u);
        // The used PTE lives inside that PTB.
        EXPECT_EQ(blockAlign(s.pteAddr), s.ptbAddr);
    }
}

TEST(PageTable, UnmappedWalkIsInvalid)
{
    PhysMem mem(10000);
    PageTable pt(mem);
    const WalkResult r = pt.walk(0xdead000ULL << pageShift);
    EXPECT_FALSE(r.valid);
}

TEST(PageTable, AdjacentPagesShareLeafPtb)
{
    PhysMem mem(10000);
    PageTable pt(mem);
    PteFlags f;
    for (Vpn v = 0x2000; v < 0x2008; ++v)
        pt.map(v, 0x100 + v, f);

    const WalkResult a = pt.walk(0x2000ULL << pageShift);
    const WalkResult b = pt.walk(0x2007ULL << pageShift);
    EXPECT_EQ(a.steps[3].ptbAddr, b.steps[3].ptbAddr);
}

TEST(PageTable, HugePageWalkStopsAtL2)
{
    PhysMem mem(10000);
    PageTable pt(mem);
    PteFlags f;
    const Vpn vbase = 0x40000; // 2MB aligned in pages (0x200 multiple)
    pt.mapHuge(vbase, 0x200, f);

    const Addr vaddr = (vbase + 5) << pageShift;
    const WalkResult r = pt.walk(vaddr);
    ASSERT_TRUE(r.valid);
    EXPECT_TRUE(r.huge);
    EXPECT_EQ(r.ppn, 0x205u);       // base + in-huge-page offset
    EXPECT_EQ(r.steps.size(), 3u);  // stops at level 2
}

TEST(PageTable, SetAccessedDirty)
{
    PhysMem mem(10000);
    PageTable pt(mem);
    PteFlags f;
    f.accessed = false;
    f.dirty = false;
    pt.map(0x3000, 0x99, f);

    pt.setAccessedDirty(0x3000ULL << pageShift, true);
    const WalkResult r = pt.walk(0x3000ULL << pageShift);
    const PtPage &leaf =
        mem.ptPage(pageNumber(r.steps[3].ptbAddr));
    const std::uint64_t pte =
        leaf[(r.steps[3].pteAddr & (pageSize - 1)) / pteSize];
    EXPECT_TRUE(pteAccessed(pte));
    EXPECT_TRUE(pteDirty(pte));
}

TEST(PageTable, UnmapRemovesTranslation)
{
    PhysMem mem(10000);
    PageTable pt(mem);
    PteFlags f;
    pt.map(0x4000, 0x55, f);
    ASSERT_TRUE(pt.walk(0x4000ULL << pageShift).valid);
    pt.unmap(0x4000);
    EXPECT_FALSE(pt.walk(0x4000ULL << pageShift).valid);
}

TEST(PageTable, ForEachPtbVisitsLeafBlocks)
{
    PhysMem mem(10000);
    PageTable pt(mem);
    PteFlags f;
    for (Vpn v = 0; v < 64; ++v)
        pt.map(v, 0x1000 + v, f);

    unsigned l1_ptbs = 0;
    pt.forEachPtb(1, [&](const std::uint64_t *ptes) {
        ++l1_ptbs;
        for (unsigned i = 0; i < ptesPerPtb; ++i)
            EXPECT_TRUE(ptePresent(ptes[i]));
    });
    EXPECT_EQ(l1_ptbs, 64u / ptesPerPtb);

    unsigned l2_ptbs = 0;
    pt.forEachPtb(2, [&](const std::uint64_t *) { ++l2_ptbs; });
    EXPECT_EQ(l2_ptbs, 1u);
}

} // namespace
} // namespace tmcc
