/** Property tests: page table + TLB + walker under random map/unmap. */

#include <unordered_map>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "vm/tlb.hh"
#include "vm/walker.hh"

namespace tmcc
{
namespace
{

class VmFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(VmFuzz, WalkAlwaysAgreesWithShadowMap)
{
    PhysMem mem(1 << 18);
    PageTable pt(mem);
    Rng rng(GetParam());
    std::unordered_map<Vpn, Ppn> shadow;

    for (int i = 0; i < 4000; ++i) {
        // Clustered VPNs so PTBs get shared and overwritten.
        const Vpn vpn = rng.below(64) * 512 + rng.below(64);
        if (rng.chance(0.7)) {
            const Ppn ppn = mem.allocFrame();
            PteFlags f;
            f.dirty = rng.chance(0.9);
            pt.map(vpn, ppn, f);
            shadow[vpn] = ppn;
        } else if (!shadow.empty() && rng.chance(0.5)) {
            const Vpn victim = shadow.begin()->first;
            pt.unmap(victim);
            shadow.erase(victim);
        }

        // Validate a few random lookups.
        for (int k = 0; k < 3; ++k) {
            const Vpn probe = rng.below(64) * 512 + rng.below(64);
            const WalkResult r = pt.walk(probe << pageShift);
            auto it = shadow.find(probe);
            if (it == shadow.end()) {
                ASSERT_FALSE(r.valid);
            } else {
                ASSERT_TRUE(r.valid);
                ASSERT_EQ(r.ppn, it->second);
            }
        }
    }
}

TEST_P(VmFuzz, WalkerPlanMatchesFullWalk)
{
    PhysMem mem(1 << 18);
    PageTable pt(mem);
    Rng rng(GetParam() + 7);
    std::vector<Vpn> mapped;

    for (int i = 0; i < 800; ++i) {
        const Vpn vpn = rng.below(1 << 22);
        pt.map(vpn, mem.allocFrame(), PteFlags{});
        mapped.push_back(vpn);
    }

    Walker walker(pt);
    for (int i = 0; i < 4000; ++i) {
        const Vpn vpn = mapped[rng.below(mapped.size())];
        const WalkPlan plan = walker.plan(vpn << pageShift);
        const WalkResult full = pt.walk(vpn << pageShift);
        ASSERT_TRUE(plan.valid);
        ASSERT_EQ(plan.ppn, full.ppn);
        // The PWC can only skip fetches, never add or corrupt them:
        // planned fetches must be a suffix of the full walk.
        ASSERT_LE(plan.fetches.size(), full.steps.size());
        const std::size_t skip =
            full.steps.size() - plan.fetches.size();
        for (std::size_t s = 0; s < plan.fetches.size(); ++s) {
            ASSERT_EQ(plan.fetches[s].ptbAddr,
                      full.steps[skip + s].ptbAddr);
            ASSERT_EQ(plan.fetches[s].level,
                      full.steps[skip + s].level);
        }
    }
}

TEST_P(VmFuzz, TlbNeverReturnsWrongTranslation)
{
    PhysMem mem(1 << 18);
    PageTable pt(mem);
    Tlb tlb(128, 4);
    Rng rng(GetParam() + 13);
    std::unordered_map<Vpn, Ppn> shadow;

    for (int i = 0; i < 8000; ++i) {
        const Vpn vpn = rng.below(4096);
        Ppn ppn = 0;
        if (tlb.lookup(vpn << pageShift, ppn)) {
            ASSERT_TRUE(shadow.count(vpn));
            ASSERT_EQ(ppn, shadow[vpn]);
        } else {
            auto it = shadow.find(vpn);
            if (it == shadow.end()) {
                const Ppn fresh = mem.allocFrame();
                pt.map(vpn, fresh, PteFlags{});
                shadow[vpn] = fresh;
                it = shadow.find(vpn);
            }
            tlb.insert(vpn, it->second);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzz, ::testing::Range(0, 8));

} // namespace
} // namespace tmcc
