/** Property tests for the ASIC timing models. */

#include <gtest/gtest.h>

#include "compress/deflate_timing.hh"
#include "tests/compress/test_patterns.hh"

namespace tmcc
{
namespace
{

class TimingPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(TimingPropertyTest, LatenciesPositiveAndOrdered)
{
    Rng rng(GetParam() + 500);
    MemDeflate codec;
    MemDeflateTiming model;

    std::vector<std::uint8_t> page;
    switch (GetParam() % 3) {
      case 0: page = test::textPage(rng); break;
      case 1: page = test::pointerPage(rng); break;
      default: page = test::randomPage(rng, pageSize, 32); break;
    }
    const CompressedPage cp = codec.compress(page.data(), page.size());
    const DeflateTiming t = model.timing(cp);

    EXPECT_GT(t.decompressLatency, 0u);
    EXPECT_GT(t.compressLatency, t.decompressLatency);
    EXPECT_LT(t.halfPageLatency, t.decompressLatency);
    EXPECT_GT(t.compressGBs, 1.0);
    EXPECT_GT(t.decompressGBs, 1.0);
}

TEST_P(TimingPropertyTest, OffsetLatencyMonotoneAndBounded)
{
    Rng rng(GetParam() + 900);
    MemDeflate codec;
    MemDeflateTiming model;
    const auto page = test::textPage(rng);
    const CompressedPage cp = codec.compress(page.data(), page.size());

    Tick prev = 0;
    for (std::size_t off = 0; off < pageSize; off += 256) {
        const Tick t = model.decompressLatencyToOffset(cp, off);
        ASSERT_GE(t, prev);
        ASSERT_LE(t, model.timing(cp).decompressLatency);
        prev = t;
    }
}

TEST_P(TimingPropertyTest, OurAsicAlwaysBeatsIbmOnPages)
{
    Rng rng(GetParam() + 1300);
    MemDeflate codec;
    MemDeflateTiming ours;
    IbmDeflateTiming ibm;

    const auto page = (GetParam() % 2) ? test::textPage(rng)
                                       : test::pointerPage(rng);
    const CompressedPage cp = codec.compress(page.data(), page.size());
    EXPECT_LT(ours.timing(cp).decompressLatency,
              ibm.decompressLatency(pageSize));
    EXPECT_LT(ours.timing(cp).compressLatency,
              ibm.compressLatency(pageSize));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingPropertyTest,
                         ::testing::Range(0, 9));

TEST(IbmTiming, OffsetLatencyMatchesStreamRate)
{
    IbmDeflateTiming ibm;
    const Tick quarter =
        ibm.decompressLatencyToOffset(pageSize, pageSize / 4);
    const Tick half =
        ibm.decompressLatencyToOffset(pageSize, pageSize / 2);
    // The second quarter streams at the published 15 GB/s.
    const double delta_ns = ticksToNs(half - quarter);
    EXPECT_NEAR(delta_ns, (pageSize / 4) / 15.0, 2.0);
}

} // namespace
} // namespace tmcc
