/** Tests for the RFC 1951 reference codec (the "gzip" series). */

#include <gtest/gtest.h>

#include "compress/mem_deflate.hh"
#include "compress/rfc_deflate.hh"
#include "tests/compress/test_patterns.hh"

namespace tmcc
{
namespace
{

void
expectRoundTrip(const RfcDeflate &codec,
                const std::vector<std::uint8_t> &in)
{
    const RfcCompressed enc = codec.compress(in.data(), in.size());
    const auto out = codec.decompress(enc);
    ASSERT_TRUE(out.ok()) << out.status().toString();
    ASSERT_EQ(out.value(), in);
}

TEST(RfcDeflate, TextRoundTripAndRatio)
{
    Rng rng(60);
    RfcDeflate codec;
    const auto page = test::textPage(rng);
    const auto enc = codec.compress(page.data(), page.size());
    EXPECT_LT(enc.sizeBytes(), pageSize / 3);
    expectRoundTrip(codec, page);
}

TEST(RfcDeflate, ZeroPage)
{
    RfcDeflate codec;
    const std::vector<std::uint8_t> page(pageSize, 0);
    const auto enc = codec.compress(page.data(), page.size());
    EXPECT_LT(enc.sizeBytes(), 64u);
    expectRoundTrip(codec, page);
}

TEST(RfcDeflate, EmptyInput)
{
    RfcDeflate codec;
    const std::vector<std::uint8_t> empty;
    const auto enc = codec.compress(empty.data(), 0);
    EXPECT_TRUE(codec.decompress(enc).value().empty());
}

TEST(RfcDeflate, SingleByte)
{
    RfcDeflate codec;
    const std::vector<std::uint8_t> one = {0x42};
    expectRoundTrip(codec, one);
}

TEST(RfcDeflate, RandomPagesRoundTrip)
{
    Rng rng(61);
    RfcDeflate codec;
    for (int i = 0; i < 10; ++i)
        expectRoundTrip(codec, test::randomPage(rng));
}

TEST(RfcDeflate, BeatsOrMatchesReducedTreeOnAverage)
{
    // Fig. 15: gzip's full trees buy ~12% ratio over the reduced tree.
    Rng rng(62);
    RfcDeflate gzip_like;
    MemDeflate ours;

    std::size_t gzip_total = 0, ours_total = 0;
    for (int i = 0; i < 20; ++i) {
        std::vector<std::uint8_t> page;
        switch (i % 3) {
          case 0: page = test::textPage(rng); break;
          case 1: page = test::pointerPage(rng); break;
          default: page = test::randomPage(rng, pageSize, 40); break;
        }
        gzip_total += gzip_like.compress(page.data(),
                                         page.size()).sizeBytes();
        ours_total += ours.compress(page.data(), page.size()).sizeBytes();
    }
    // The reference codec should be no more than ~25% behind and
    // typically ahead.
    EXPECT_LT(static_cast<double>(gzip_total),
              static_cast<double>(ours_total) * 1.10);
}

/** Property sweep. */
class RfcDeflatePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(RfcDeflatePropertyTest, RoundTrip)
{
    const auto [seed, alphabet] = GetParam();
    Rng rng(seed + 700);
    RfcDeflate codec;
    expectRoundTrip(codec,
                    test::randomPage(rng, pageSize,
                                     static_cast<unsigned>(alphabet)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RfcDeflatePropertyTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(2, 5, 32, 256)));

} // namespace
} // namespace tmcc
