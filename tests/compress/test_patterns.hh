/** Shared generators of 64B blocks and 4KB pages for compressor tests. */

#ifndef TMCC_TESTS_COMPRESS_TEST_PATTERNS_HH
#define TMCC_TESTS_COMPRESS_TEST_PATTERNS_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace tmcc::test
{

using Block = std::array<std::uint8_t, blockSize>;
using Page = std::vector<std::uint8_t>;

inline Block
zeroBlock()
{
    Block b{};
    return b;
}

inline Block
repeatedQwordBlock(std::uint64_t v)
{
    Block b;
    for (std::size_t i = 0; i < blockSize; i += 8)
        std::memcpy(b.data() + i, &v, 8);
    return b;
}

/** 8B words: base plus small deltas (BDI's sweet spot). */
inline Block
baseDeltaBlock(std::uint64_t base, int spread, Rng &rng)
{
    Block b;
    for (std::size_t i = 0; i < blockSize; i += 8) {
        const std::uint64_t v = base + rng.below(spread);
        std::memcpy(b.data() + i, &v, 8);
    }
    return b;
}

/** 4B ints counting up (BPC's sweet spot). */
inline Block
strideBlock(std::uint32_t start, std::uint32_t stride)
{
    Block b;
    for (std::size_t i = 0; i < blockSize / 4; ++i) {
        const std::uint32_t v = start + stride * static_cast<uint32_t>(i);
        std::memcpy(b.data() + i * 4, &v, 4);
    }
    return b;
}

inline Block
randomBlock(Rng &rng)
{
    Block b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.below(256));
    return b;
}

/** Random page of given byte-alphabet size (entropy knob). */
inline Page
randomPage(Rng &rng, std::size_t size = pageSize, unsigned alphabet = 256)
{
    Page p(size);
    for (auto &byte : p)
        byte = static_cast<std::uint8_t>(rng.below(alphabet));
    return p;
}

/** Page of text-like content with repeats (LZ-friendly). */
inline Page
textPage(Rng &rng, std::size_t size = pageSize)
{
    static const char words[] =
        "the quick brown fox jumps over lazy dogs while memory "
        "compression hides translation latency in the controller ";
    Page p;
    while (p.size() < size) {
        const std::size_t start = rng.below(sizeof(words) - 16);
        const std::size_t len = 4 + rng.below(12);
        for (std::size_t i = 0; i < len && p.size() < size; ++i)
            p.push_back(static_cast<std::uint8_t>(words[start + i]));
    }
    return p;
}

/** Pointer-heavy page: 8B values sharing high bits (heap-like). */
inline Page
pointerPage(Rng &rng, std::size_t size = pageSize)
{
    Page p(size);
    const std::uint64_t heap_base = 0x00007f3a'00000000ULL;
    for (std::size_t i = 0; i + 8 <= size; i += 8) {
        const std::uint64_t v = heap_base + (rng.below(1 << 20) << 4);
        std::memcpy(p.data() + i, &v, 8);
    }
    return p;
}

} // namespace tmcc::test

#endif // TMCC_TESTS_COMPRESS_TEST_PATTERNS_HH
