/** Unit and property tests for the LZ stage. */

#include <gtest/gtest.h>

#include "compress/lz.hh"
#include "tests/compress/test_patterns.hh"

namespace tmcc
{
namespace
{

void
expectRoundTrip(const Lz &lz, const std::vector<std::uint8_t> &in)
{
    const auto tokens = lz.compress(in.data(), in.size());
    const auto out = lz.decompress(tokens);
    ASSERT_TRUE(out.ok()) << out.status().toString();
    ASSERT_EQ(out.value(), in);
}

TEST(Lz, EmptyInput)
{
    Lz lz;
    const auto tokens = lz.compress(nullptr, 0);
    EXPECT_TRUE(tokens.empty());
    EXPECT_TRUE(lz.decompress(tokens).value().empty());
}

TEST(Lz, AllLiteralsWhenNoRepeats)
{
    Lz lz;
    std::vector<std::uint8_t> in;
    for (int i = 0; i < 200; ++i)
        in.push_back(static_cast<std::uint8_t>(i));
    const auto tokens = lz.compress(in.data(), in.size());
    // A strictly increasing byte ramp has no 3-byte repeats.
    for (const auto &t : tokens)
        EXPECT_FALSE(t.isMatch);
    expectRoundTrip(lz, in);
}

TEST(Lz, RepeatedRunBecomesMatch)
{
    Lz lz;
    std::vector<std::uint8_t> in(256, 0x41);
    const auto tokens = lz.compress(in.data(), in.size());
    // First literal, then overlapping matches.
    ASSERT_GE(tokens.size(), 2u);
    EXPECT_FALSE(tokens[0].isMatch);
    EXPECT_TRUE(tokens[1].isMatch);
    EXPECT_EQ(tokens[1].distance, 1u);
    expectRoundTrip(lz, in);
}

TEST(Lz, MatchRespectsWindow)
{
    LzConfig cfg;
    cfg.windowSize = 64;
    Lz lz(cfg);
    // Pattern, then > window of noise, then the pattern again: the
    // second copy must NOT reference the first.
    std::vector<std::uint8_t> in;
    const std::string pat = "abcdefgh";
    for (char c : pat)
        in.push_back(static_cast<std::uint8_t>(c));
    Rng rng(20);
    for (int i = 0; i < 128; ++i)
        in.push_back(static_cast<std::uint8_t>(rng.below(256)));
    for (char c : pat)
        in.push_back(static_cast<std::uint8_t>(c));

    const auto tokens = lz.compress(in.data(), in.size());
    for (const auto &t : tokens)
        if (t.isMatch)
            EXPECT_LE(t.distance, cfg.windowSize);
    expectRoundTrip(lz, in);
}

TEST(Lz, MaxMatchLengthRespected)
{
    Lz lz;
    std::vector<std::uint8_t> in(2048, 0x55);
    const auto tokens = lz.compress(in.data(), in.size());
    for (const auto &t : tokens)
        if (t.isMatch)
            EXPECT_LE(t.length, lz.config().maxMatch);
    expectRoundTrip(lz, in);
}

TEST(Lz, TokenBitsAccounting)
{
    Lz lz; // 1KB window -> 11 distance bits
    EXPECT_EQ(lz.distanceBits(), 11u);
    std::vector<LzToken> tokens;
    tokens.push_back({false, 'x', 0, 0});
    tokens.push_back({true, 0, 10, 5});
    EXPECT_EQ(lz.tokenBits(tokens), (1u + 8u) + (1u + 8u + 11u));
}

TEST(Lz, SmallerWindowNeverBeatsLarger)
{
    Rng rng(21);
    const auto page = test::textPage(rng);

    std::size_t prev_bits = SIZE_MAX;
    for (std::size_t window : {256u, 1024u, 4096u}) {
        LzConfig cfg;
        cfg.windowSize = window;
        Lz lz(cfg);
        const auto tokens = lz.compress(page.data(), page.size());
        // Compare token count as a window-quality proxy; bits would
        // conflate the longer distance fields.
        const std::size_t n = tokens.size();
        EXPECT_LE(n, prev_bits);
        prev_bits = n;
        expectRoundTrip(lz, page);
    }
}

TEST(Lz, LazyMatchingRoundTripsAndHelps)
{
    Rng rng(22);
    LzConfig greedy_cfg;
    LzConfig lazy_cfg;
    lazy_cfg.lazyMatch = true;
    Lz greedy(greedy_cfg);
    Lz lazy(lazy_cfg);

    std::size_t greedy_tokens = 0, lazy_tokens = 0;
    for (int i = 0; i < 10; ++i) {
        const auto page = test::textPage(rng);
        greedy_tokens += greedy.compress(page.data(), page.size()).size();
        lazy_tokens += lazy.compress(page.data(), page.size()).size();
        expectRoundTrip(lazy, page);
    }
    // Lazy matching should be at least competitive on text.
    EXPECT_LE(lazy_tokens, greedy_tokens * 11 / 10);
}

/** Property sweep: random content of varying entropy round-trips. */
class LzPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(LzPropertyTest, RoundTrip)
{
    const auto [seed, alphabet] = GetParam();
    Rng rng(seed);
    Lz lz;
    const auto page =
        test::randomPage(rng, pageSize, static_cast<unsigned>(alphabet));
    expectRoundTrip(lz, page);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LzPropertyTest,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(2, 4, 16, 64, 256)));

} // namespace
} // namespace tmcc
