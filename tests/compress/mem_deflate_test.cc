/** Tests for the memory-specialized Deflate codec. */

#include <gtest/gtest.h>

#include "compress/mem_deflate.hh"
#include "tests/compress/test_patterns.hh"

namespace tmcc
{
namespace
{

void
expectRoundTrip(const MemDeflate &codec,
                const std::vector<std::uint8_t> &in)
{
    const CompressedPage enc = codec.compress(in.data(), in.size());
    const auto out = codec.decompress(enc);
    ASSERT_TRUE(out.ok()) << out.status().toString();
    ASSERT_EQ(out.value(), in);
}

TEST(MemDeflate, TextPageCompressesWell)
{
    Rng rng(50);
    MemDeflate codec;
    const auto page = test::textPage(rng);
    const CompressedPage enc = codec.compress(page.data(), page.size());
    EXPECT_LT(enc.sizeBytes(), pageSize / 3); // > 3x on text
    expectRoundTrip(codec, page);
}

TEST(MemDeflate, PointerPageCompresses)
{
    Rng rng(51);
    MemDeflate codec;
    const auto page = test::pointerPage(rng);
    const CompressedPage enc = codec.compress(page.data(), page.size());
    // Pointer pages carry ~2.5 random bytes per 8B pointer; ~1.7x.
    EXPECT_LT(enc.sizeBytes(), pageSize * 7 / 10);
    expectRoundTrip(codec, page);
}

TEST(MemDeflate, RandomPageIsIncompressible)
{
    Rng rng(52);
    MemDeflate codec;
    const auto page = test::randomPage(rng);
    const CompressedPage enc = codec.compress(page.data(), page.size());
    EXPECT_TRUE(enc.incompressible());
    expectRoundTrip(codec, page);
}

TEST(MemDeflate, DynamicSkipNeverLosesToHuffman)
{
    Rng rng(53);
    MemDeflateConfig with_skip;
    with_skip.dynamicHuffmanSkip = true;
    MemDeflateConfig no_skip;
    no_skip.dynamicHuffmanSkip = false;
    MemDeflate a(with_skip), b(no_skip);

    for (int i = 0; i < 10; ++i) {
        const auto page = test::randomPage(rng, pageSize, 256);
        const auto ea = a.compress(page.data(), page.size());
        const auto eb = b.compress(page.data(), page.size());
        // Dynamic skip picks the smaller encoding.
        EXPECT_LE(ea.sizeBits, eb.sizeBits);
        expectRoundTrip(a, page);
        expectRoundTrip(b, page);
    }
}

TEST(MemDeflate, SkipKicksInOnHighEntropyPages)
{
    Rng rng(54);
    MemDeflate codec;
    const auto page = test::randomPage(rng); // uniform bytes
    const auto enc = codec.compress(page.data(), page.size());
    // With 256 uniform symbols, escape-prefixing inflates: skip.
    EXPECT_FALSE(enc.huffmanUsed);
}

TEST(MemDeflate, HuffmanUsedOnSkewedPages)
{
    // Literal-rich, byte-skewed content (text) is where the reduced
    // tree pays for its header.
    Rng rng(55);
    MemDeflate codec;
    const auto page = test::textPage(rng);
    const auto enc = codec.compress(page.data(), page.size());
    EXPECT_TRUE(enc.huffmanUsed);
    EXPECT_LT(enc.sizeBytes(), pageSize / 2);
    expectRoundTrip(codec, page);
}

TEST(MemDeflate, ZeroPageNearlyVanishes)
{
    MemDeflate codec;
    const std::vector<std::uint8_t> page(pageSize, 0);
    const auto enc = codec.compress(page.data(), page.size());
    EXPECT_LT(enc.sizeBytes(), 64u);
    expectRoundTrip(codec, page);
}

TEST(MemDeflate, TokenAccountingConsistent)
{
    Rng rng(56);
    MemDeflate codec;
    const auto page = test::textPage(rng);
    const auto enc = codec.compress(page.data(), page.size());
    EXPECT_GT(enc.lzTokens, 0u);
    EXPECT_LE(enc.lzLiterals, enc.lzTokens);
    EXPECT_EQ(enc.originalSize, pageSize);
}

TEST(MemDeflate, SmallerCamDegradesRatioOnlyMildly)
{
    // §V-B2: 1KB CAM costs ~1.6% ratio vs 4KB; 256B costs much more.
    Rng rng(57);
    auto ratio_with_window = [&](std::size_t window) {
        MemDeflateConfig cfg;
        cfg.lz.windowSize = window;
        MemDeflate codec(cfg);
        Rng local(58);
        std::size_t raw = 0, comp = 0;
        for (int i = 0; i < 12; ++i) {
            const auto page = (i % 2) ? test::textPage(local)
                                      : test::pointerPage(local);
            raw += page.size();
            comp += codec.compress(page.data(), page.size()).sizeBytes();
        }
        return static_cast<double>(raw) / static_cast<double>(comp);
    };

    const double r4k = ratio_with_window(4096);
    const double r1k = ratio_with_window(1024);
    const double r256 = ratio_with_window(256);
    // With fixed-width distance fields, 1KB is the knee the paper
    // selects: bigger windows pay wider distances for little gain,
    // smaller windows lose matches (§V-B2).
    EXPECT_GT(r1k / r4k, 0.95);
    EXPECT_LT(r256, r1k);
    EXPECT_GT(r1k / r4k, r256 / r1k); // degradation accelerates below 1KB
}

/** Property sweep over entropy levels and seeds. */
class MemDeflatePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(MemDeflatePropertyTest, RoundTrip)
{
    const auto [seed, alphabet] = GetParam();
    Rng rng(seed + 300);
    MemDeflate codec;
    expectRoundTrip(codec,
                    test::randomPage(rng, pageSize,
                                     static_cast<unsigned>(alphabet)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MemDeflatePropertyTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(2, 3, 16, 100, 256)));

} // namespace
} // namespace tmcc
