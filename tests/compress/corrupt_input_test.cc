/**
 * Fuzz-style corruption tests: every decoder in the repository must
 * survive truncated, bit-flipped, and spliced inputs by returning an
 * error or a byte-exact round trip — never crashing (run these under
 * TMCC_SANITIZE=address,undefined) and never returning silently-wrong
 * page data.
 */

#include <gtest/gtest.h>

#include "common/crc32.hh"
#include "compress/huffman.hh"
#include "compress/lz.hh"
#include "compress/mem_deflate.hh"
#include "compress/rfc_deflate.hh"
#include "tests/compress/test_patterns.hh"
#include "tmcc/ptb_codec.hh"
#include "vm/pte.hh"

namespace tmcc
{
namespace
{

/** Cut the byte stream at a random point. */
void
truncate(std::vector<std::uint8_t> &bytes, Rng &rng)
{
    if (!bytes.empty())
        bytes.resize(rng.below(bytes.size()));
}

/** Flip 1..8 random bits. */
void
bitFlip(std::vector<std::uint8_t> &bytes, Rng &rng)
{
    if (bytes.empty())
        return;
    const unsigned flips = 1 + static_cast<unsigned>(rng.below(8));
    for (unsigned i = 0; i < flips; ++i) {
        const std::uint64_t bit = rng.below(bytes.size() * 8);
        bytes[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
    }
}

/** Replace a random span with a span from another valid stream. */
void
splice(std::vector<std::uint8_t> &bytes,
       const std::vector<std::uint8_t> &donor, Rng &rng)
{
    if (bytes.empty() || donor.empty())
        return;
    const std::size_t at = rng.below(bytes.size());
    const std::size_t from = rng.below(donor.size());
    const std::size_t len = std::min(
        {1 + rng.below(64), bytes.size() - at, donor.size() - from});
    std::copy_n(donor.begin() + static_cast<std::ptrdiff_t>(from), len,
                bytes.begin() + static_cast<std::ptrdiff_t>(at));
}

/** Apply one of the three mutations, chosen by the rng. */
void
mutate(std::vector<std::uint8_t> &bytes,
       const std::vector<std::uint8_t> &donor, Rng &rng)
{
    switch (rng.below(3)) {
      case 0: truncate(bytes, rng); break;
      case 1: bitFlip(bytes, rng); break;
      default: splice(bytes, donor, rng); break;
    }
}

/** Error, or byte-exact: the one acceptable pair of outcomes. */
void
expectErrorOrExact(const StatusOr<std::vector<std::uint8_t>> &got,
                   const std::vector<std::uint8_t> &original)
{
    if (got.ok())
        EXPECT_EQ(got.value(), original);
}

TEST(CorruptInput, MemDeflateMutatedPayloads)
{
    Rng rng(1001);
    MemDeflate codec;
    const auto page = test::textPage(rng);
    const auto donor_page = test::pointerPage(rng);
    const CompressedPage valid = codec.compress(page.data(), page.size());
    const CompressedPage donor =
        codec.compress(donor_page.data(), donor_page.size());

    unsigned rejected = 0;
    constexpr unsigned trials = 300;
    for (unsigned i = 0; i < trials; ++i) {
        CompressedPage bad = valid;
        mutate(bad.payload, donor.payload, rng);
        const auto got = codec.decompress(bad);
        expectErrorOrExact(got, page);
        rejected += !got.ok();
    }
    // Most mutations must actually be detected, not accidentally lost.
    EXPECT_GT(rejected, trials / 2);
}

TEST(CorruptInput, MemDeflateHuffmanPathMutations)
{
    // Low-entropy pages keep the Huffman stage on, so mutations also
    // land in the reduced-tree header.
    Rng rng(1002);
    MemDeflate codec;
    const auto page = test::randomPage(rng, pageSize, 5);
    const CompressedPage valid = codec.compress(page.data(), page.size());
    ASSERT_TRUE(valid.huffmanUsed);

    for (unsigned i = 0; i < 300; ++i) {
        CompressedPage bad = valid;
        mutate(bad.payload, valid.payload, rng);
        expectErrorOrExact(codec.decompress(bad), page);
    }
}

TEST(CorruptInput, MemDeflateEveryPrefixTruncation)
{
    Rng rng(1003);
    MemDeflate codec;
    const auto page = test::textPage(rng);
    const CompressedPage valid = codec.compress(page.data(), page.size());

    for (std::size_t n = 0; n < valid.payload.size();
         n += 1 + valid.payload.size() / 128) {
        CompressedPage bad = valid;
        bad.payload.resize(n);
        const auto got = codec.decompress(bad);
        EXPECT_FALSE(got.ok()) << "prefix " << n << " decoded";
    }
}

TEST(CorruptInput, MemDeflateMetadataMutations)
{
    Rng rng(1004);
    MemDeflate codec;
    const auto page = test::textPage(rng);
    const CompressedPage valid = codec.compress(page.data(), page.size());

    CompressedPage shrunk = valid;
    shrunk.originalSize = page.size() / 2;
    expectErrorOrExact(codec.decompress(shrunk), page);

    CompressedPage grown = valid;
    grown.originalSize = page.size() + 64;
    expectErrorOrExact(codec.decompress(grown), page);

    CompressedPage bad_crc = valid;
    bad_crc.crc ^= 0x1;
    EXPECT_FALSE(codec.decompress(bad_crc).ok());
}

TEST(CorruptInput, RfcDeflateMutatedPayloads)
{
    Rng rng(1005);
    RfcDeflate codec;
    const auto page = test::textPage(rng);
    const auto donor_page = test::randomPage(rng, pageSize, 40);
    const RfcCompressed valid = codec.compress(page.data(), page.size());
    const RfcCompressed donor =
        codec.compress(donor_page.data(), donor_page.size());

    unsigned rejected = 0;
    constexpr unsigned trials = 300;
    for (unsigned i = 0; i < trials; ++i) {
        RfcCompressed bad = valid;
        mutate(bad.payload, donor.payload, rng);
        const auto got = codec.decompress(bad);
        expectErrorOrExact(got, page);
        rejected += !got.ok();
    }
    EXPECT_GT(rejected, trials / 2);
}

TEST(CorruptInput, RfcDeflateHeaderBitFlips)
{
    // The dynamic-Huffman header (HLIT/HDIST/CL tree) is the most
    // structurally fragile region; hammer its first bytes specifically.
    Rng rng(1006);
    RfcDeflate codec;
    const auto page = test::textPage(rng);
    const RfcCompressed valid = codec.compress(page.data(), page.size());

    for (unsigned bit = 0; bit < 256 && bit < valid.payload.size() * 8;
         ++bit) {
        RfcCompressed bad = valid;
        bad.payload[bit >> 3] ^=
            static_cast<std::uint8_t>(1u << (bit & 7));
        expectErrorOrExact(codec.decompress(bad), page);
    }
}

TEST(CorruptInput, RfcDeflateEveryPrefixTruncation)
{
    Rng rng(1007);
    RfcDeflate codec;
    const auto page = test::textPage(rng);
    const RfcCompressed valid = codec.compress(page.data(), page.size());

    for (std::size_t n = 0; n < valid.payload.size();
         n += 1 + valid.payload.size() / 128) {
        RfcCompressed bad = valid;
        bad.payload.resize(n);
        EXPECT_FALSE(codec.decompress(bad).ok()) << "prefix " << n;
    }
}

TEST(CorruptInput, LzMutatedTokenStreams)
{
    Rng rng(1008);
    Lz lz;
    const auto page = test::textPage(rng);
    auto tokens = lz.compress(page.data(), page.size());

    for (unsigned i = 0; i < 500; ++i) {
        auto bad = tokens;
        LzToken &t = bad[rng.below(bad.size())];
        switch (rng.below(4)) {
          case 0: t.distance = 0; break;
          case 1:
            t.distance = static_cast<std::uint16_t>(rng.next());
            t.isMatch = true;
            break;
          case 2:
            t.length = static_cast<std::uint16_t>(rng.next());
            t.isMatch = true;
            break;
          default: t.isMatch = !t.isMatch; break;
        }
        // Mutated tokens are a different (possibly valid) stream, so a
        // successful decode is fine; what must never happen is an
        // out-of-bounds copy, which ASan enforces here and the explicit
        // bounds test below checks functionally.
        (void)lz.decompress(bad);
    }
}

TEST(CorruptInput, LzRejectsOutOfWindowAndZeroDistance)
{
    Lz lz;
    std::vector<LzToken> tokens;
    LzToken lit;
    lit.literal = 0x41;
    tokens.push_back(lit);
    LzToken match;
    match.isMatch = true;
    match.length = 3;
    match.distance = 2; // only 1 byte produced so far
    tokens.push_back(match);
    EXPECT_FALSE(lz.decompress(tokens).ok());

    tokens[1].distance = 0;
    EXPECT_FALSE(lz.decompress(tokens).ok());

    tokens[1].distance = 1;
    tokens[1].length = static_cast<std::uint16_t>(
        lz.config().maxMatch + 1);
    EXPECT_FALSE(lz.decompress(tokens).ok());
}

TEST(CorruptInput, ReducedTreeGarbageHeaders)
{
    // Arbitrary byte soup fed to the tree reader: must error or yield a
    // tree whose decodeByte stays within bounds, never crash.
    Rng rng(1009);
    for (unsigned i = 0; i < 500; ++i) {
        std::vector<std::uint8_t> junk(1 + rng.below(64));
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.below(256));
        BitReader br(junk);
        auto tree = ReducedTree::read(br);
        if (!tree.ok())
            continue;
        for (unsigned n = 0; n < 64; ++n)
            if (!tree.value().decodeByte(br).ok())
                break;
    }
}

TEST(CorruptInput, CanonicalCodeRejectsInvalidLengthSets)
{
    // Over-full Kraft sums and empty codebooks must be rejected up
    // front instead of building an ambiguous decoder.
    EXPECT_FALSE(
        CanonicalCode::validateLengths({1, 1, 1}).ok()); // over-full
    EXPECT_FALSE(CanonicalCode::validateLengths({}).ok());
    EXPECT_FALSE(CanonicalCode::validateLengths({0, 0, 0}).ok());
    EXPECT_FALSE(CanonicalCode::validateLengths({40}).ok()); // depth
    EXPECT_TRUE(CanonicalCode::validateLengths({1, 2, 2}).ok());

    // Fuzzed length vectors: validate must agree with constructibility.
    Rng rng(1010);
    for (unsigned i = 0; i < 300; ++i) {
        std::vector<unsigned> lens(1 + rng.below(20));
        for (auto &l : lens)
            l = static_cast<unsigned>(rng.below(18));
        if (CanonicalCode::validateLengths(lens).ok())
            CanonicalCode code(lens); // must not panic
    }
}

TEST(CorruptInput, PtbImageMutations)
{
    PtbCodec codec;
    PteFlags flags;
    std::uint64_t ptes[ptesPerPtb];
    for (unsigned i = 0; i < ptesPerPtb; ++i)
        ptes[i] = makePte(0x1000 + i * 7, flags);
    std::array<bool, ptesPerPtb> has_cte{};
    std::array<std::uint64_t, ptesPerPtb> cte{};
    for (unsigned i = 0; i < codec.maxSlots(); ++i) {
        has_cte[i] = true;
        cte[i] = 0x42 + i;
    }
    const auto valid = codec.encode(ptes, has_cte, cte);

    // The untouched image round-trips exactly.
    const auto back = codec.decode(valid);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back.value().statusBits, pteStatusBits(ptes[0]));
    for (unsigned i = 0; i < ptesPerPtb; ++i) {
        EXPECT_EQ(back.value().ppns[i], ptePpn(ptes[i]));
        EXPECT_EQ(back.value().hasCte[i], has_cte[i]);
        if (has_cte[i])
            EXPECT_EQ(back.value().cte[i], cte[i]);
    }

    // Single-bit flips: the 8-bit CRC catches the overwhelming
    // majority; the occasional escape must still produce in-range
    // fields (the §V-A verification fetch handles wrong-but-plausible
    // CTEs downstream).
    unsigned rejected = 0;
    const std::uint64_t phys_pages = codec.config().physPages;
    for (unsigned bit = 0; bit < ptbBytes * 8; ++bit) {
        auto bad = valid;
        bad[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
        const auto got = codec.decode(bad);
        if (!got.ok()) {
            ++rejected;
            continue;
        }
        for (unsigned i = 0; i < ptesPerPtb; ++i)
            EXPECT_LT(got.value().ppns[i], phys_pages);
    }
    EXPECT_GT(rejected, ptbBytes * 8 * 9 / 10);

    // Random multi-bit damage never crashes the decoder.
    Rng rng(1011);
    for (unsigned i = 0; i < 500; ++i) {
        auto bad = valid;
        const unsigned flips = 1 + static_cast<unsigned>(rng.below(32));
        for (unsigned f = 0; f < flips; ++f) {
            const auto bit = rng.below(ptbBytes * 8);
            bad[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
        }
        (void)codec.decode(bad);
    }
}

} // namespace
} // namespace tmcc
