/** Tests for canonical codes, package-merge, and the reduced tree. */

#include <gtest/gtest.h>

#include "compress/huffman.hh"
#include "common/rng.hh"

namespace tmcc
{
namespace
{

TEST(PackageMerge, SingleSymbolGetsLengthOne)
{
    std::vector<std::uint64_t> freqs(10, 0);
    freqs[3] = 100;
    const auto lens = CanonicalCode::limitedLengths(freqs, 15);
    EXPECT_EQ(lens[3], 1u);
    for (unsigned s = 0; s < 10; ++s)
        if (s != 3)
            EXPECT_EQ(lens[s], 0u);
}

TEST(PackageMerge, UniformFreqsGiveBalancedTree)
{
    std::vector<std::uint64_t> freqs(8, 5);
    const auto lens = CanonicalCode::limitedLengths(freqs, 15);
    for (auto l : lens)
        EXPECT_EQ(l, 3u);
}

TEST(PackageMerge, SkewedFreqsGiveShortHotCodes)
{
    std::vector<std::uint64_t> freqs = {1000, 100, 10, 1};
    const auto lens = CanonicalCode::limitedLengths(freqs, 15);
    EXPECT_LE(lens[0], lens[1]);
    EXPECT_LE(lens[1], lens[2]);
    EXPECT_LE(lens[2], lens[3]);
    EXPECT_EQ(lens[0], 1u);
}

TEST(PackageMerge, DepthLimitHolds)
{
    // Fibonacci-like frequencies force maximal unconstrained depth.
    std::vector<std::uint64_t> freqs = {1, 1, 2, 3, 5, 8, 13, 21, 34,
                                        55, 89, 144, 233, 377, 610, 987};
    for (unsigned limit : {4u, 5u, 8u, 15u}) {
        const auto lens = CanonicalCode::limitedLengths(freqs, limit);
        for (auto l : lens) {
            EXPECT_GT(l, 0u);
            EXPECT_LE(l, limit);
        }
        // Kraft sum must not exceed 1.
        double kraft = 0;
        for (auto l : lens)
            kraft += 1.0 / static_cast<double>(1ULL << l);
        EXPECT_LE(kraft, 1.0 + 1e-12);
    }
}

TEST(PackageMerge, KraftCompleteness)
{
    Rng rng(40);
    for (int iter = 0; iter < 30; ++iter) {
        const unsigned n = 2 + static_cast<unsigned>(rng.below(30));
        std::vector<std::uint64_t> freqs(n);
        for (auto &f : freqs)
            f = 1 + rng.below(10000);
        const auto lens = CanonicalCode::limitedLengths(freqs, 15);
        double kraft = 0;
        for (auto l : lens)
            kraft += 1.0 / static_cast<double>(1ULL << l);
        // Optimal prefix codes over all-used symbols are complete.
        EXPECT_NEAR(kraft, 1.0, 1e-12);
    }
}

TEST(CanonicalCode, EncodeDecodeAllSymbols)
{
    std::vector<std::uint64_t> freqs = {50, 30, 10, 5, 3, 2};
    const auto lens = CanonicalCode::limitedLengths(freqs, 15);
    CanonicalCode code(lens);

    BitWriter bw;
    for (unsigned s = 0; s < freqs.size(); ++s)
        code.encode(bw, s);
    auto bytes = bw.finish();
    BitReader br(bytes);
    for (unsigned s = 0; s < freqs.size(); ++s)
        ASSERT_EQ(code.decode(br).value(), s);
}

TEST(CanonicalCode, RandomStreamsRoundTrip)
{
    Rng rng(41);
    for (int iter = 0; iter < 20; ++iter) {
        const unsigned n = 2 + static_cast<unsigned>(rng.below(60));
        std::vector<std::uint64_t> freqs(n);
        for (auto &f : freqs)
            f = 1 + rng.below(1000);
        CanonicalCode code(CanonicalCode::limitedLengths(freqs, 15));

        std::vector<unsigned> syms;
        BitWriter bw;
        for (int i = 0; i < 500; ++i) {
            const auto s = static_cast<unsigned>(rng.below(n));
            syms.push_back(s);
            code.encode(bw, s);
        }
        auto bytes = bw.finish();
        BitReader br(bytes);
        for (unsigned s : syms)
            ASSERT_EQ(code.decode(br).value(), s);
    }
}

TEST(ReducedTree, SelectsHottestChars)
{
    std::uint64_t freqs[256] = {};
    // 20 distinct chars; the 15 hottest should be in the tree.
    for (int c = 0; c < 20; ++c)
        freqs[c] = static_cast<std::uint64_t>(1000 - c * 40);
    ReducedTree tree(freqs, ReducedTreeConfig{});
    EXPECT_EQ(tree.hotCount(), 15u);
    // Hot chars get codes at most as long as escape+8.
    for (int c = 0; c < 15; ++c)
        EXPECT_LT(tree.costBits(static_cast<std::uint8_t>(c)), 8u + 1u);
    // Cold chars pay the escape.
    EXPECT_GE(tree.costBits(19), 9u);
}

TEST(ReducedTree, FewDistinctCharsShrinkTree)
{
    std::uint64_t freqs[256] = {};
    freqs['a'] = 100;
    freqs['b'] = 50;
    ReducedTree tree(freqs, ReducedTreeConfig{});
    EXPECT_EQ(tree.hotCount(), 2u);
}

TEST(ReducedTree, HeaderRoundTrip)
{
    Rng rng(42);
    std::uint64_t freqs[256] = {};
    for (int i = 0; i < 64; ++i)
        freqs[rng.below(256)] += 1 + rng.below(500);

    ReducedTree tree(freqs, ReducedTreeConfig{});
    BitWriter bw;
    tree.write(bw);
    // Encode a byte sequence after the header.
    std::vector<std::uint8_t> data;
    for (int i = 0; i < 300; ++i)
        data.push_back(static_cast<std::uint8_t>(rng.below(256)));
    for (auto b : data)
        tree.encodeByte(bw, b);

    auto bytes = bw.finish();
    BitReader br(bytes);
    ReducedTree read_back = ReducedTree::read(br).value();
    EXPECT_EQ(read_back.hotCount(), tree.hotCount());
    for (auto b : data)
        ASSERT_EQ(read_back.decodeByte(br).value(), b);
}

TEST(ReducedTree, HeaderBitsMatchesSerializedSize)
{
    std::uint64_t freqs[256] = {};
    for (int c = 0; c < 30; ++c)
        freqs[c * 7] = 100 + c;
    ReducedTree tree(freqs, ReducedTreeConfig{});
    BitWriter bw;
    tree.write(bw);
    EXPECT_EQ(bw.sizeBits(), tree.headerBits());
}

TEST(ReducedTree, DepthLimitEnforced)
{
    // Extremely skewed frequencies with a tight depth budget.
    std::uint64_t freqs[256] = {};
    std::uint64_t f = 1;
    for (int c = 0; c < 15; ++c) {
        freqs[c] = f;
        f *= 3;
    }
    ReducedTreeConfig cfg;
    cfg.maxDepth = 5;
    ReducedTree tree(freqs, cfg);
    for (int c = 0; c < 15; ++c)
        EXPECT_LE(tree.costBits(static_cast<std::uint8_t>(c)), 5u);
}

TEST(ReducedTree, SixteenLeavesVsFullTreeCostGap)
{
    // On a page with few distinct hot bytes the reduced tree is nearly
    // as good as entropy; with many uniform bytes the escape hurts --
    // exactly the trade-off §V-B1 quantifies at ~1%.
    Rng rng(43);
    std::uint64_t freqs[256] = {};
    for (int i = 0; i < 4096; ++i)
        ++freqs[rng.zipf(256, 1.3)];
    ReducedTree tree(freqs, ReducedTreeConfig{});
    std::uint64_t total = 0, bits = 0;
    for (int c = 0; c < 256; ++c) {
        total += freqs[c];
        bits += freqs[c] * tree.costBits(static_cast<std::uint8_t>(c));
    }
    const double bits_per_byte =
        static_cast<double>(bits) / static_cast<double>(total);
    EXPECT_LT(bits_per_byte, 8.0); // beats raw storage on skewed bytes
}

} // namespace
} // namespace tmcc
