/** Tests for the ASIC timing models against Table II's envelope. */

#include <gtest/gtest.h>

#include "compress/deflate_timing.hh"
#include "tests/compress/test_patterns.hh"

namespace tmcc
{
namespace
{

CompressedPage
typicalPage()
{
    Rng rng(70);
    MemDeflate codec;
    const auto page = test::textPage(rng);
    return codec.compress(page.data(), page.size());
}

TEST(MemDeflateTiming, DecompressLatencyNearTable2)
{
    MemDeflateTiming model;
    const DeflateTiming t = model.timing(typicalPage());
    // Paper: 277ns full page, 140ns half page, 14.8 GB/s.
    EXPECT_NEAR(ticksToNs(t.decompressLatency), 277.0, 277.0 * 0.15);
    EXPECT_NEAR(ticksToNs(t.halfPageLatency), 140.0, 140.0 * 0.15);
    EXPECT_NEAR(t.decompressGBs, 14.8, 14.8 * 0.2);
}

TEST(MemDeflateTiming, CompressLatencyNearTable2)
{
    MemDeflateTiming model;
    const DeflateTiming t = model.timing(typicalPage());
    // Paper: 662ns latency, 17.2 GB/s.
    EXPECT_NEAR(ticksToNs(t.compressLatency), 662.0, 662.0 * 0.2);
    EXPECT_NEAR(t.compressGBs, 17.2, 17.2 * 0.25);
}

TEST(MemDeflateTiming, OffsetLatencyMonotonic)
{
    MemDeflateTiming model;
    const CompressedPage page = typicalPage();
    Tick prev = 0;
    for (std::size_t off = 0; off < pageSize; off += 512) {
        const Tick t = model.decompressLatencyToOffset(page, off);
        EXPECT_GE(t, prev);
        prev = t;
    }
    EXPECT_EQ(model.decompressLatencyToOffset(page, pageSize - blockSize),
              model.timing(page).decompressLatency);
}

TEST(MemDeflateTiming, FirstBlockMuchFasterThanFullPage)
{
    MemDeflateTiming model;
    const CompressedPage page = typicalPage();
    const Tick first = model.decompressLatencyToOffset(page, 0);
    const Tick full = model.timing(page).decompressLatency;
    EXPECT_LT(first, full / 8);
}

TEST(IbmDeflateTiming, MatchesPublishedNumbers)
{
    IbmDeflateTiming ibm;
    // Paper Table II: 1100ns decompress, 1050ns compress, 3.7/3.9 GB/s.
    EXPECT_NEAR(ticksToNs(ibm.decompressLatency(pageSize)), 1100, 25);
    EXPECT_NEAR(ticksToNs(ibm.compressLatency(pageSize)), 1050, 25);
    EXPECT_NEAR(ibm.decompressGBs(pageSize), 3.7, 0.2);
    EXPECT_NEAR(ibm.compressGBs(pageSize), 3.9, 0.2);
}

TEST(IbmDeflateTiming, OursIs4xFasterOnPages)
{
    // The headline claim: ~4x faster decompression for 4KB pages.
    MemDeflateTiming ours;
    IbmDeflateTiming ibm;
    const DeflateTiming t = ours.timing(typicalPage());
    const double speedup =
        ticksToNs(ibm.decompressLatency(pageSize)) /
        ticksToNs(t.decompressLatency);
    EXPECT_GT(speedup, 3.3);
    EXPECT_LT(speedup, 5.0);
}

TEST(IbmDeflateTiming, HalfPageSpeedupAround6x)
{
    MemDeflateTiming ours;
    IbmDeflateTiming ibm;
    const DeflateTiming t = ours.timing(typicalPage());
    const double speedup =
        ticksToNs(ibm.decompressLatencyToOffset(pageSize, pageSize / 2)) /
        ticksToNs(t.halfPageLatency);
    EXPECT_GT(speedup, 4.5);
    EXPECT_LT(speedup, 8.0);
}

TEST(AsicArea, Table1ConstantsAddUp)
{
    AsicArea a;
    EXPECT_NEAR(a.lzDecompressorMm2 + a.lzCompressorMm2 +
                    a.huffDecompressorMm2 + a.huffCompressorMm2,
                a.totalMm2, 0.01);
}

TEST(MemDeflateTiming, ThroughputExceedsDdr4Channel)
{
    // §V-B5: combined throughput (32 GB/s) exceeds a DDR4-3200 channel
    // (25.6 GB/s).
    MemDeflateTiming model;
    const DeflateTiming t = model.timing(typicalPage());
    EXPECT_GT(t.compressGBs + t.decompressGBs, 25.6);
}

} // namespace
} // namespace tmcc
