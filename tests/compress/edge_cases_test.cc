/** Adversarial edge cases across the compression stack. */

#include <gtest/gtest.h>

#include "compress/block_compressor.hh"
#include "compress/mem_deflate.hh"
#include "compress/rfc_deflate.hh"
#include "tests/compress/test_patterns.hh"

namespace tmcc
{
namespace
{

TEST(EdgeCases, SingleByteAlternationMaxesLzMatches)
{
    // "ababab..." produces one literal pair then maximal overlapping
    // matches; every codec must round-trip it.
    std::vector<std::uint8_t> p(pageSize);
    for (std::size_t i = 0; i < p.size(); ++i)
        p[i] = (i % 2) ? 0xAB : 0xCD;

    MemDeflate ours;
    const auto enc = ours.compress(p.data(), p.size());
    EXPECT_LT(enc.sizeBytes(), 200u); // nearly free
    EXPECT_EQ(ours.decompress(enc).value(), p);

    RfcDeflate rfc;
    EXPECT_EQ(rfc.decompress(rfc.compress(p.data(), p.size())).value(), p);
}

TEST(EdgeCases, MaxMatchLengthBoundary)
{
    // A run longer than maxMatch forces back-to-back maximal matches.
    Lz lz;
    std::vector<std::uint8_t> p(lz.config().maxMatch * 3 + 7, 0x77);
    const auto tokens = lz.compress(p.data(), p.size());
    unsigned maximal = 0;
    for (const auto &t : tokens)
        maximal += t.isMatch && t.length == lz.config().maxMatch;
    EXPECT_GE(maximal, 2u);
    EXPECT_EQ(lz.decompress(tokens).value(), p);
}

TEST(EdgeCases, EveryByteValueOnce)
{
    // All 256 byte values: the reduced tree must escape ~241 of them.
    std::vector<std::uint8_t> p;
    for (int rep = 0; rep < 16; ++rep)
        for (int b = 0; b < 256; ++b)
            p.push_back(static_cast<std::uint8_t>(b));

    MemDeflate ours;
    const auto enc = ours.compress(p.data(), p.size());
    EXPECT_EQ(ours.decompress(enc).value(), p);
}

TEST(EdgeCases, TinyInputs)
{
    MemDeflate ours;
    RfcDeflate rfc;
    for (std::size_t n : {1u, 2u, 3u, 7u, 63u, 64u, 65u}) {
        std::vector<std::uint8_t> p(n);
        for (std::size_t i = 0; i < n; ++i)
            p[i] = static_cast<std::uint8_t>(i * 37);
        EXPECT_EQ(ours.decompress(ours.compress(p.data(), n)).value(), p)
            << "mem deflate n=" << n;
        EXPECT_EQ(rfc.decompress(rfc.compress(p.data(), n)).value(), p)
            << "rfc n=" << n;
    }
}

TEST(EdgeCases, MinimumWindowStillRoundTrips)
{
    LzConfig cfg;
    cfg.windowSize = 16;
    MemDeflateConfig mcfg;
    mcfg.lz = cfg;
    MemDeflate codec(mcfg);
    Rng rng(5);
    const auto p = test::textPage(rng);
    EXPECT_EQ(codec.decompress(codec.compress(p.data(),
                                              p.size())).value(), p);
}

TEST(EdgeCases, TwoLeafTree)
{
    MemDeflateConfig cfg;
    cfg.tree.leaves = 2; // one hot char + escape
    MemDeflate codec(cfg);
    Rng rng(6);
    const auto p = test::randomPage(rng, pageSize, 3);
    EXPECT_EQ(codec.decompress(codec.compress(p.data(),
                                              p.size())).value(), p);
}

TEST(EdgeCases, ShallowDepthLimit)
{
    MemDeflateConfig cfg;
    cfg.tree.maxDepth = 4; // 16 leaves need exactly depth 4
    MemDeflate codec(cfg);
    Rng rng(7);
    const auto p = test::textPage(rng);
    EXPECT_EQ(codec.decompress(codec.compress(p.data(),
                                              p.size())).value(), p);
}

TEST(EdgeCases, BlockCompressorOnPageTableLikeData)
{
    // 8B entries with identical high bytes: the pattern PTBs show.
    BlockCompressor bc;
    std::uint8_t block[blockSize];
    for (unsigned i = 0; i < 8; ++i) {
        const std::uint64_t pte =
            0x8000000000000067ULL | (static_cast<std::uint64_t>(
                                         0x1234 + i)
                                     << 12);
        std::memcpy(block + i * 8, &pte, 8);
    }
    const auto enc = bc.compress(block);
    EXPECT_TRUE(enc.result.sizeBits < blockSize * 8);
    std::uint8_t out[blockSize];
    ASSERT_TRUE(bc.decompress(enc, out).ok());
    EXPECT_EQ(std::memcmp(block, out, blockSize), 0);
}

TEST(EdgeCases, IncompressibleNeverExpandsBeyondTag)
{
    // Best-of selection caps expansion at the 3-bit selector.
    BlockCompressor bc;
    Rng rng(8);
    for (int i = 0; i < 50; ++i) {
        const auto b = test::randomBlock(rng);
        const auto enc = bc.compress(b.data());
        EXPECT_LE(enc.sizeBits(), blockSize * 8 + 3);
    }
}

TEST(EdgeCases, CompressedPageAccountingOnAllZero)
{
    MemDeflate codec;
    std::vector<std::uint8_t> p(pageSize, 0);
    const auto enc = codec.compress(p.data(), p.size());
    EXPECT_FALSE(enc.incompressible());
    EXPECT_GT(enc.lzTokens, 0u);
    EXPECT_LE(enc.lzLiterals, 8u); // a literal seed then matches
}

} // namespace
} // namespace tmcc
