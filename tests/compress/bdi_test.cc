/** Unit and property tests for Base-Delta-Immediate compression. */

#include <gtest/gtest.h>

#include "compress/bdi.hh"
#include "tests/compress/test_patterns.hh"

namespace tmcc
{
namespace
{

using test::Block;

void
expectRoundTrip(const Bdi &bdi, const Block &in)
{
    const BlockResult enc = bdi.compress(in.data());
    Block out{};
    ASSERT_TRUE(bdi.decompress(enc, out.data()).ok());
    ASSERT_EQ(std::memcmp(in.data(), out.data(), blockSize), 0);
}

TEST(Bdi, ZeroBlockIsTiny)
{
    Bdi bdi;
    const Block b = test::zeroBlock();
    const BlockResult enc = bdi.compress(b.data());
    EXPECT_EQ(Bdi::scheme(enc), BdiScheme::Zeros);
    EXPECT_LE(enc.sizeBits, 8u);
    expectRoundTrip(bdi, b);
}

TEST(Bdi, RepeatedQword)
{
    Bdi bdi;
    const Block b = test::repeatedQwordBlock(0x0123456789abcdefULL);
    const BlockResult enc = bdi.compress(b.data());
    EXPECT_EQ(Bdi::scheme(enc), BdiScheme::Repeat8);
    EXPECT_LE(enc.sizeBits, 4u + 64u);
    expectRoundTrip(bdi, b);
}

TEST(Bdi, SmallDeltasPickB8D1)
{
    Bdi bdi;
    Rng rng(1);
    const Block b = test::baseDeltaBlock(0x7fff00000000ULL, 100, rng);
    const BlockResult enc = bdi.compress(b.data());
    EXPECT_EQ(Bdi::scheme(enc), BdiScheme::B8D1);
    // 4b tag + 64b base + 8 x 8b deltas = 132 bits.
    EXPECT_LE(enc.sizeBits, 132u);
    expectRoundTrip(bdi, b);
}

TEST(Bdi, MediumDeltasPickB8D2)
{
    Bdi bdi;
    Rng rng(2);
    const Block b = test::baseDeltaBlock(1ULL << 40, 40000, rng);
    const BlockResult enc = bdi.compress(b.data());
    EXPECT_EQ(Bdi::scheme(enc), BdiScheme::B8D2);
    expectRoundTrip(bdi, b);
}

TEST(Bdi, StrideOfIntsCompresses)
{
    Bdi bdi;
    const Block b = test::strideBlock(1000, 4);
    const BlockResult enc = bdi.compress(b.data());
    EXPECT_TRUE(enc.compressed());
    expectRoundTrip(bdi, b);
}

TEST(Bdi, RandomBlockFallsBackUncompressed)
{
    Bdi bdi;
    Rng rng(3);
    const Block b = test::randomBlock(rng);
    const BlockResult enc = bdi.compress(b.data());
    EXPECT_EQ(Bdi::scheme(enc), BdiScheme::Uncompressed);
    EXPECT_EQ(enc.sizeBits, 4u + blockSize * 8);
    expectRoundTrip(bdi, b);
}

TEST(Bdi, NegativeDeltasRoundTrip)
{
    Bdi bdi;
    Block b;
    for (std::size_t i = 0; i < blockSize; i += 8) {
        const std::uint64_t v =
            0x100000ULL - (i / 8) * 3; // descending values
        std::memcpy(b.data() + i, &v, 8);
    }
    const BlockResult enc = bdi.compress(b.data());
    EXPECT_EQ(Bdi::scheme(enc), BdiScheme::B8D1);
    expectRoundTrip(bdi, b);
}

/** Property sweep: every pattern family round-trips at every seed. */
class BdiPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(BdiPropertyTest, RoundTripAllFamilies)
{
    Bdi bdi;
    Rng rng(GetParam());
    expectRoundTrip(bdi, test::zeroBlock());
    expectRoundTrip(bdi, test::repeatedQwordBlock(rng.next()));
    expectRoundTrip(bdi, test::baseDeltaBlock(rng.next() >> 8, 50, rng));
    expectRoundTrip(bdi, test::baseDeltaBlock(rng.next() >> 8, 5000, rng));
    expectRoundTrip(bdi,
                    test::strideBlock(static_cast<std::uint32_t>(
                                          rng.next()),
                                      static_cast<std::uint32_t>(
                                          rng.below(64))));
    expectRoundTrip(bdi, test::randomBlock(rng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BdiPropertyTest,
                         ::testing::Range(0, 50));

} // namespace
} // namespace tmcc
