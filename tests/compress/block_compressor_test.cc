/** Tests for the best-of-four block compressor (Compresso's scheme). */

#include <gtest/gtest.h>

#include "compress/block_compressor.hh"
#include "tests/compress/test_patterns.hh"

namespace tmcc
{
namespace
{

using test::Block;

void
expectRoundTrip(const BlockCompressor &bc, const Block &in)
{
    const BestBlockResult enc = bc.compress(in.data());
    Block out{};
    ASSERT_TRUE(bc.decompress(enc, out.data()).ok());
    ASSERT_EQ(std::memcmp(in.data(), out.data(), blockSize), 0);
}

TEST(BlockCompressor, ZeroBlockSelectsZeroAlgo)
{
    BlockCompressor bc;
    const Block b = test::zeroBlock();
    const BestBlockResult enc = bc.compress(b.data());
    EXPECT_EQ(enc.algo, BlockAlgo::Zero);
    EXPECT_EQ(enc.sizeBits(), 3u); // selector only
    expectRoundTrip(bc, b);
}

TEST(BlockCompressor, RandomBlockSelectsUncompressed)
{
    BlockCompressor bc;
    Rng rng(10);
    const Block b = test::randomBlock(rng);
    const BestBlockResult enc = bc.compress(b.data());
    EXPECT_EQ(enc.algo, BlockAlgo::Uncompressed);
    EXPECT_EQ(enc.sizeBits(), 3u + blockSize * 8);
    expectRoundTrip(bc, b);
}

TEST(BlockCompressor, PicksSmallestOfCandidates)
{
    BlockCompressor bc;
    Bdi bdi;
    Bpc bpc;
    Cpack cpack;
    Rng rng(11);

    for (int i = 0; i < 200; ++i) {
        Block b;
        switch (i % 4) {
          case 0:
            b = test::baseDeltaBlock(rng.next() >> 4, 300, rng);
            break;
          case 1:
            b = test::strideBlock(
                static_cast<std::uint32_t>(rng.next()),
                static_cast<std::uint32_t>(rng.below(32)));
            break;
          case 2:
            b = test::repeatedQwordBlock(rng.next());
            break;
          default:
            b = test::randomBlock(rng);
        }
        const BestBlockResult enc = bc.compress(b.data());
        const std::size_t best_candidate =
            std::min({bdi.compress(b.data()).sizeBits,
                      bpc.compress(b.data()).sizeBits,
                      cpack.compress(b.data()).sizeBits,
                      blockSize * std::size_t{8}});
        ASSERT_LE(enc.result.sizeBits, best_candidate);
        expectRoundTrip(bc, b);
    }
}

TEST(BlockCompressor, PageCompressionSumsBlocks)
{
    BlockCompressor bc;
    Rng rng(12);
    const auto page = test::pointerPage(rng);
    const std::size_t total = bc.compressPage(page.data());
    EXPECT_GT(total, 0u);
    EXPECT_LT(total, pageSize); // pointer pages compress

    std::size_t manual = 0;
    for (std::size_t b = 0; b < blocksPerPage; ++b)
        manual += bc.compress(page.data() + b * blockSize).sizeBytes();
    EXPECT_EQ(total, manual);
}

TEST(BlockCompressor, TypicalBlockRatioIsModest)
{
    // The paper's point: block-level compression only reaches ~1.5x
    // geomean on memory dumps.  Mixed content should land well short of
    // Deflate-class ratios.
    BlockCompressor bc;
    Rng rng(13);
    std::size_t raw = 0, comp = 0;
    for (int i = 0; i < 64; ++i) {
        const auto page =
            (i % 2) ? test::pointerPage(rng) : test::textPage(rng);
        raw += pageSize;
        comp += bc.compressPage(page.data());
    }
    const double ratio =
        static_cast<double>(raw) / static_cast<double>(comp);
    EXPECT_GT(ratio, 1.1);
    EXPECT_LT(ratio, 3.0);
}

} // namespace
} // namespace tmcc
