/** Unit and property tests for CPack. */

#include <gtest/gtest.h>

#include "compress/cpack.hh"
#include "tests/compress/test_patterns.hh"

namespace tmcc
{
namespace
{

using test::Block;

void
expectRoundTrip(const Cpack &cpack, const Block &in)
{
    const BlockResult enc = cpack.compress(in.data());
    Block out{};
    ASSERT_TRUE(cpack.decompress(enc, out.data()).ok());
    ASSERT_EQ(std::memcmp(in.data(), out.data(), blockSize), 0);
}

TEST(Cpack, ZeroBlockUsesZzzz)
{
    Cpack cpack;
    const Block b = test::zeroBlock();
    const BlockResult enc = cpack.compress(b.data());
    // 16 words x 2 bits.
    EXPECT_EQ(enc.sizeBits, 32u);
    expectRoundTrip(cpack, b);
}

TEST(Cpack, RepeatedWordHitsDictionary)
{
    Cpack cpack;
    Block b;
    const std::uint32_t v = 0xcafebabe;
    for (std::size_t i = 0; i < blockSize / 4; ++i)
        std::memcpy(b.data() + i * 4, &v, 4);
    const BlockResult enc = cpack.compress(b.data());
    // First word raw (34b) + 15 x mmmm (6b) = 124 bits.
    EXPECT_EQ(enc.sizeBits, 34u + 15u * 6u);
    expectRoundTrip(cpack, b);
}

TEST(Cpack, LowByteOnlyWordsUseZzzx)
{
    Cpack cpack;
    Block b{};
    for (std::size_t i = 0; i < blockSize / 4; ++i)
        b[i * 4] = static_cast<std::uint8_t>(i + 1);
    const BlockResult enc = cpack.compress(b.data());
    // 16 x zzzx (12 bits).
    EXPECT_EQ(enc.sizeBits, 16u * 12u);
    expectRoundTrip(cpack, b);
}

TEST(Cpack, SharedUpperBytesUseMmmx)
{
    Cpack cpack;
    Block b;
    for (std::size_t i = 0; i < blockSize / 4; ++i) {
        const std::uint32_t v =
            0xabcd1200u | static_cast<std::uint32_t>(i);
        std::memcpy(b.data() + i * 4, &v, 4);
    }
    const BlockResult enc = cpack.compress(b.data());
    // Word 0 raw, rest mmmx (16 bits).
    EXPECT_EQ(enc.sizeBits, 34u + 15u * 16u);
    expectRoundTrip(cpack, b);
}

TEST(Cpack, RandomBlockRoundTrips)
{
    Cpack cpack;
    Rng rng(6);
    for (int i = 0; i < 20; ++i)
        expectRoundTrip(cpack, test::randomBlock(rng));
}

TEST(Cpack, PointerLikeDataCompresses)
{
    Cpack cpack;
    Rng rng(8);
    Block b;
    // 8B pointers into a small heap share their upper bytes.
    for (std::size_t i = 0; i < blockSize; i += 8) {
        const std::uint64_t ptr =
            0x00007f0012340000ULL + (rng.below(1 << 12) << 3);
        std::memcpy(b.data() + i, &ptr, 8);
    }
    const BlockResult enc = cpack.compress(b.data());
    EXPECT_TRUE(enc.compressed());
    expectRoundTrip(cpack, b);
}

/** Property sweep. */
class CpackPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(CpackPropertyTest, RoundTripAllFamilies)
{
    Cpack cpack;
    Rng rng(GetParam() + 2000);
    expectRoundTrip(cpack, test::zeroBlock());
    expectRoundTrip(cpack, test::repeatedQwordBlock(rng.next()));
    expectRoundTrip(cpack, test::baseDeltaBlock(rng.next(), 256, rng));
    expectRoundTrip(cpack,
                    test::strideBlock(static_cast<std::uint32_t>(
                                          rng.next()),
                                      1));
    expectRoundTrip(cpack, test::randomBlock(rng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpackPropertyTest,
                         ::testing::Range(0, 50));

} // namespace
} // namespace tmcc
