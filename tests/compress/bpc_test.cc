/** Unit and property tests for Bit-Plane Compression. */

#include <gtest/gtest.h>

#include "compress/bpc.hh"
#include "tests/compress/test_patterns.hh"

namespace tmcc
{
namespace
{

using test::Block;

void
expectRoundTrip(const Bpc &bpc, const Block &in)
{
    const BlockResult enc = bpc.compress(in.data());
    Block out{};
    ASSERT_TRUE(bpc.decompress(enc, out.data()).ok());
    ASSERT_EQ(std::memcmp(in.data(), out.data(), blockSize), 0);
}

TEST(Bpc, ZeroBlockCompressesHard)
{
    Bpc bpc;
    const Block b = test::zeroBlock();
    const BlockResult enc = bpc.compress(b.data());
    // Base word (32) + a handful of zero-run codes.
    EXPECT_LT(enc.sizeBits, 64u);
    expectRoundTrip(bpc, b);
}

TEST(Bpc, ConstantStrideIsNearlyFree)
{
    // Words with constant stride have constant deltas: all DBX planes
    // except a couple collapse to zero.
    Bpc bpc;
    const Block b = test::strideBlock(1 << 20, 8);
    const BlockResult enc = bpc.compress(b.data());
    EXPECT_LT(enc.sizeBits, 128u);
    expectRoundTrip(bpc, b);
}

TEST(Bpc, DescendingStrideRoundTrips)
{
    Bpc bpc;
    Block b;
    for (std::size_t i = 0; i < blockSize / 4; ++i) {
        const std::uint32_t v =
            1000000u - static_cast<std::uint32_t>(i) * 12;
        std::memcpy(b.data() + i * 4, &v, 4);
    }
    expectRoundTrip(bpc, b);
}

TEST(Bpc, WrapAroundDeltasRoundTrip)
{
    Bpc bpc;
    Block b;
    // Alternate near-min and near-max 32-bit values: deltas need the
    // full 33-bit range.
    for (std::size_t i = 0; i < blockSize / 4; ++i) {
        const std::uint32_t v = (i % 2) ? 0xfffffff0u : 0x10u;
        std::memcpy(b.data() + i * 4, &v, 4);
    }
    expectRoundTrip(bpc, b);
}

TEST(Bpc, RandomBlockMayExpandButRoundTrips)
{
    Bpc bpc;
    Rng rng(4);
    for (int i = 0; i < 20; ++i)
        expectRoundTrip(bpc, test::randomBlock(rng));
}

/** Property sweep over many random seeds and pattern families. */
class BpcPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(BpcPropertyTest, RoundTripAllFamilies)
{
    Bpc bpc;
    Rng rng(GetParam() + 1000);
    expectRoundTrip(bpc, test::zeroBlock());
    expectRoundTrip(bpc,
                    test::strideBlock(static_cast<std::uint32_t>(
                                          rng.next()),
                                      static_cast<std::uint32_t>(
                                          rng.below(1 << 16))));
    expectRoundTrip(bpc, test::repeatedQwordBlock(rng.next()));
    expectRoundTrip(bpc, test::baseDeltaBlock(rng.next(), 1000, rng));
    expectRoundTrip(bpc, test::randomBlock(rng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BpcPropertyTest,
                         ::testing::Range(0, 50));

} // namespace
} // namespace tmcc
