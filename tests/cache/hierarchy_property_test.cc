/** Property tests: hierarchy invariants under random traffic. */

#include <unordered_map>

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "common/rng.hh"

namespace tmcc
{
namespace
{

HierarchyConfig
tinyConfig()
{
    HierarchyConfig cfg;
    cfg.l1Bytes = 512;
    cfg.l1Assoc = 2;
    cfg.l2Bytes = 2048;
    cfg.l2Assoc = 4;
    cfg.l3Bytes = 8192;
    cfg.l3Assoc = 4;
    cfg.prefetchers = false;
    return cfg;
}

class HierarchyPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(HierarchyPropertyTest, InclusionAndExclusionInvariants)
{
    Hierarchy h(tinyConfig(), 2);
    Rng rng(GetParam());

    for (int i = 0; i < 3000; ++i) {
        const unsigned core = static_cast<unsigned>(rng.below(2));
        const Addr addr = rng.below(256) * blockSize;
        const bool write = rng.chance(0.3);
        const bool walker = rng.chance(0.1);

        const auto out = h.access(core, addr, write, walker);
        if (out.level == HitLevel::Memory)
            h.fill(core, addr, write, rng.chance(0.2), walker);

        // Invariant 1: L2 is inclusive of L1.
        for (unsigned c = 0; c < 2; ++c) {
            for (Addr a = 0; a < 256 * blockSize; a += blockSize) {
                if (h.l1(c).probe(a))
                    ASSERT_TRUE(h.l2(c).probe(a))
                        << "L1 line not in inclusive L2";
            }
        }
        // Invariant 2: L3 is exclusive of both L2s.
        for (Addr a = 0; a < 256 * blockSize; a += blockSize) {
            if (h.l3().probe(a))
                ASSERT_FALSE(h.l2(0).probe(a) || h.l2(1).probe(a))
                    << "line in both L2 and exclusive L3";
        }
    }
}

TEST_P(HierarchyPropertyTest, DirtyDataIsNeverSilentlyDropped)
{
    // Every address written must either still be dirty somewhere in
    // the hierarchy or have appeared in a memory writeback.
    Hierarchy h(tinyConfig(), 1);
    Rng rng(GetParam() + 100);

    std::unordered_map<Addr, bool> written; // addr -> wb seen
    auto note_wbs = [&](const std::vector<CacheLine> &wbs) {
        for (const auto &wb : wbs)
            if (wb.dirty && written.count(wb.addr))
                written[wb.addr] = true;
    };

    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.below(128) * blockSize;
        const bool write = rng.chance(0.4);
        auto out = h.access(0, addr, write);
        note_wbs(out.memWritebacks);
        if (out.level == HitLevel::Memory) {
            auto fill = h.fill(0, addr, write, false);
            note_wbs(fill.memWritebacks);
        }
        if (write)
            written.emplace(blockAlign(addr), false);
    }

    for (const auto &[addr, wb_seen] : written) {
        if (wb_seen)
            continue;
        // Must still be resident (dirty state merged somewhere).
        const bool resident = h.l1(0).probe(addr) ||
                              h.l2(0).probe(addr) || h.l3().probe(addr);
        ASSERT_TRUE(resident)
            << "dirty line vanished without a writeback: " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyPropertyTest,
                         ::testing::Range(0, 12));

} // namespace
} // namespace tmcc
