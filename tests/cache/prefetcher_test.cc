/** Tests for the next-line and stride prefetchers. */

#include <gtest/gtest.h>

#include "cache/prefetcher.hh"

namespace tmcc
{
namespace
{

TEST(NextLine, IssuesOnMiss)
{
    NextLinePrefetcher pf;
    std::vector<Addr> out;
    pf.observe(0x1000, true, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1040u);
}

TEST(NextLine, SilentOnHit)
{
    NextLinePrefetcher pf;
    std::vector<Addr> out;
    pf.observe(0x1000, false, out);
    EXPECT_TRUE(out.empty());
}

TEST(NextLine, AutoTurnOffOnUselessness)
{
    NextLinePrefetcher pf(/*check_window=*/64, /*min_accuracy=*/0.2);
    std::vector<Addr> out;
    // Many misses, never mark useful: accuracy 0 -> turn off.
    for (int i = 0; i < 100; ++i)
        pf.observe(static_cast<Addr>(i) * 0x10000, true, out);
    EXPECT_FALSE(pf.enabled());
    const std::size_t issued_when_off = out.size();
    for (int i = 0; i < 10; ++i)
        pf.observe(static_cast<Addr>(i) * 0x20000 + 7, true, out);
    EXPECT_EQ(out.size(), issued_when_off); // no issues while off
}

TEST(NextLine, ReenablesAfterCooldown)
{
    NextLinePrefetcher pf(32, 0.2);
    std::vector<Addr> out;
    for (int i = 0; i < 40; ++i)
        pf.observe(static_cast<Addr>(i) * 0x10000, true, out);
    EXPECT_FALSE(pf.enabled());
    // Cool-down: 4 windows of observations.
    for (int i = 0; i < 4 * 32 + 1; ++i)
        pf.observe(static_cast<Addr>(i) * 0x10000, true, out);
    EXPECT_TRUE(pf.enabled());
}

TEST(NextLine, StaysOnWhenUseful)
{
    NextLinePrefetcher pf(64, 0.2);
    std::vector<Addr> out;
    for (int i = 0; i < 200; ++i) {
        pf.observe(static_cast<Addr>(i) * blockSize, true, out);
        pf.markUseful(); // sequential stream: everything useful
    }
    EXPECT_TRUE(pf.enabled());
}

TEST(Stride, DetectsConstantStride)
{
    StridePrefetcher pf(/*degree=*/2);
    std::vector<Addr> out;
    const Addr page = 0x100000;
    // Two accesses establish the stride; the third (a miss) issues.
    pf.observe(page + 0 * 128, true, out);
    pf.observe(page + 1 * 128, true, out);
    out.clear();
    pf.observe(page + 2 * 128, true, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], page + 3 * 128);
    EXPECT_EQ(out[1], page + 4 * 128);
}

TEST(Stride, NoIssueWithoutConfidence)
{
    StridePrefetcher pf(2);
    std::vector<Addr> out;
    pf.observe(0x100000, true, out);
    pf.observe(0x100400, true, out); // stride 0x400 (first sighting)
    EXPECT_TRUE(out.empty());
}

TEST(Stride, NoIssueOnHits)
{
    StridePrefetcher pf(2);
    std::vector<Addr> out;
    const Addr page = 0x200000;
    pf.observe(page + 0 * 64, true, out);
    pf.observe(page + 1 * 64, true, out);
    out.clear();
    pf.observe(page + 2 * 64, false, out); // hit: already covered
    EXPECT_TRUE(out.empty());
}

TEST(Stride, TracksMultipleStreams)
{
    StridePrefetcher pf(1);
    std::vector<Addr> out;
    const Addr p1 = 0x100000, p2 = 0x900000;
    pf.observe(p1, true, out);
    pf.observe(p2, true, out);
    pf.observe(p1 + 64, true, out);
    pf.observe(p2 + 128, true, out);
    out.clear();
    pf.observe(p1 + 128, true, out);
    pf.observe(p2 + 256, true, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], p1 + 192);
    EXPECT_EQ(out[1], p2 + 384);
}

TEST(Stride, NegativeStride)
{
    StridePrefetcher pf(1);
    std::vector<Addr> out;
    const Addr page = 0x500000;
    pf.observe(page + 512, true, out);
    pf.observe(page + 448, true, out);
    out.clear();
    pf.observe(page + 384, true, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], page + 320);
}

} // namespace
} // namespace tmcc
