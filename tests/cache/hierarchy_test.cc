/** Tests for the 3-level hierarchy: inclusion, exclusion, walker path. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace tmcc
{
namespace
{

HierarchyConfig
smallConfig()
{
    HierarchyConfig cfg;
    cfg.l1Bytes = 1024;
    cfg.l1Assoc = 2;
    cfg.l2Bytes = 4096;
    cfg.l2Assoc = 4;
    cfg.l3Bytes = 16384;
    cfg.l3Assoc = 4;
    cfg.prefetchers = false;
    return cfg;
}

TEST(Hierarchy, MissThenHitAtL1)
{
    Hierarchy h(smallConfig(), 1);
    auto out = h.access(0, 0x1000, false);
    EXPECT_EQ(out.level, HitLevel::Memory);
    h.fill(0, 0x1000, false, false);
    out = h.access(0, 0x1000, false);
    EXPECT_EQ(out.level, HitLevel::L1);
}

TEST(Hierarchy, FillPopulatesL2Inclusive)
{
    Hierarchy h(smallConfig(), 1);
    h.access(0, 0x1000, false);
    h.fill(0, 0x1000, false, false);
    EXPECT_TRUE(h.l1(0).probe(0x1000));
    EXPECT_TRUE(h.l2(0).probe(0x1000)); // inclusive
    EXPECT_FALSE(h.l3().probe(0x1000)); // exclusive: bypassed on fill
}

TEST(Hierarchy, L2EvictionGoesToL3)
{
    Hierarchy h(smallConfig(), 1);
    // Fill more lines than L2 holds in one set; evictions land in L3.
    // L2: 16 sets... walk one set: stride = 4096 (sets*64... L2 has 16
    // sets, so stride 16*64=1024).
    for (int i = 0; i < 6; ++i) {
        const Addr a = 0x10000 + static_cast<Addr>(i) * 1024;
        h.access(0, a, false);
        h.fill(0, a, false, false);
    }
    // The oldest lines must have spilled into L3.
    bool any_in_l3 = false;
    for (int i = 0; i < 6; ++i)
        any_in_l3 |= h.l3().probe(0x10000 + static_cast<Addr>(i) * 1024);
    EXPECT_TRUE(any_in_l3);
}

TEST(Hierarchy, L3HitPromotesAndRemoves)
{
    Hierarchy h(smallConfig(), 1);
    for (int i = 0; i < 6; ++i) {
        const Addr a = 0x10000 + static_cast<Addr>(i) * 1024;
        h.access(0, a, false);
        h.fill(0, a, false, false);
    }
    // Find a line in L3 and access it: exclusive promotion.
    Addr victim = invalidAddr;
    for (int i = 0; i < 6; ++i) {
        const Addr a = 0x10000 + static_cast<Addr>(i) * 1024;
        if (h.l3().probe(a)) {
            victim = a;
            break;
        }
    }
    ASSERT_NE(victim, invalidAddr);
    const auto out = h.access(0, victim, false);
    EXPECT_EQ(out.level, HitLevel::L3);
    EXPECT_FALSE(h.l3().probe(victim)); // removed from L3
    EXPECT_TRUE(h.l2(0).probe(victim)); // now in L2
}

TEST(Hierarchy, DirtyDataReachesMemoryEventually)
{
    Hierarchy h(smallConfig(), 1);
    // Write a line, then stream enough conflicting lines through the
    // same sets to push it out of L2 and then out of L3.
    h.access(0, 0x0, true);
    h.fill(0, 0x0, true, false);

    std::vector<CacheLine> writebacks;
    for (int i = 1; i < 40; ++i) {
        const Addr a = static_cast<Addr>(i) * 1024;
        h.access(0, a, false);
        auto out = h.fill(0, a, false, false);
        for (const auto &wb : out.memWritebacks)
            writebacks.push_back(wb);
    }
    bool found = false;
    for (const auto &wb : writebacks)
        found |= wb.addr == 0x0 && wb.dirty;
    EXPECT_TRUE(found);
}

TEST(Hierarchy, WalkerAccessSkipsL1)
{
    Hierarchy h(smallConfig(), 1);
    h.access(0, 0x2000, false, /*from_walker=*/true);
    h.fill(0, 0x2000, false, false, /*from_walker=*/true);
    EXPECT_FALSE(h.l1(0).probe(0x2000));
    EXPECT_TRUE(h.l2(0).probe(0x2000));
    const auto out = h.access(0, 0x2000, false, true);
    EXPECT_EQ(out.level, HitLevel::L2);
}

TEST(Hierarchy, WalkerFillKeepsCompressedBit)
{
    Hierarchy h(smallConfig(), 1);
    h.access(0, 0x2000, false, true);
    h.fill(0, 0x2000, false, /*compressed=*/true, true);
    EXPECT_TRUE(h.l2CompressedCopy(0, 0x2000));
    // A walker re-access reports the compressed copy.
    const auto out = h.access(0, 0x2000, false, true);
    EXPECT_TRUE(out.compressedCopy);
}

TEST(Hierarchy, L1FillIsAlwaysDecompressed)
{
    // §V-A4: software-visible L1 copies are decompressed.
    Hierarchy h(smallConfig(), 1);
    h.access(0, 0x3000, false);
    h.fill(0, 0x3000, false, /*compressed=*/true);
    EXPECT_FALSE(h.l1(0).isCompressed(0x3000));
    EXPECT_TRUE(h.l2(0).isCompressed(0x3000));
}

TEST(Hierarchy, PerCoreL1L2SharedL3)
{
    Hierarchy h(smallConfig(), 2);
    h.access(0, 0x4000, false);
    h.fill(0, 0x4000, false, false);
    // Core 1 misses its own L1/L2.
    const auto out = h.access(1, 0x4000, false);
    EXPECT_EQ(out.level, HitLevel::Memory);
}

TEST(Hierarchy, PrefetchLookupFiltersResident)
{
    HierarchyConfig cfg = smallConfig();
    Hierarchy h(cfg, 1);
    std::vector<CacheLine> wbs;
    EXPECT_TRUE(h.prefetchLookup(0, 0x5000, wbs));
    h.fill(0, 0x5000, false, false);
    EXPECT_FALSE(h.prefetchLookup(0, 0x5000, wbs));
}

TEST(Hierarchy, TouchL2DirtyForLazyPtbUpdate)
{
    Hierarchy h(smallConfig(), 1);
    h.access(0, 0x6000, false, true);
    h.fill(0, 0x6000, false, true, true);
    h.touchL2Dirty(0, 0x6000);
    const auto line = h.l2(0).extract(0x6000);
    ASSERT_TRUE(line.has_value());
    EXPECT_TRUE(line->dirty);
}

} // namespace
} // namespace tmcc
