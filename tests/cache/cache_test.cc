/** Tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace tmcc
{
namespace
{

TEST(Cache, MissThenHit)
{
    Cache c("t", 4096, 4);
    EXPECT_FALSE(c.access(0x1000, false));
    c.insert(CacheLine{0x1000, false, false});
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SubBlockAddressesAlias)
{
    Cache c("t", 4096, 4);
    c.insert(CacheLine{0x1000, false, false});
    EXPECT_TRUE(c.access(0x1004, false));
    EXPECT_TRUE(c.access(0x103f, true));
}

TEST(Cache, LruEviction)
{
    // 4 sets x 2 ways of 64B = 512B cache.
    Cache c("t", 512, 2);
    // Fill one set (set stride = 4 * 64 = 256B).
    c.insert(CacheLine{0x0, false, false});
    c.insert(CacheLine{0x100, false, false});
    // Touch the first to make the second LRU.
    EXPECT_TRUE(c.access(0x0, false));
    const auto victim = c.insert(CacheLine{0x200, false, false});
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x100u);
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x100));
}

TEST(Cache, DirtyBitTracksWrites)
{
    Cache c("t", 512, 2);
    c.insert(CacheLine{0x0, false, false});
    c.access(0x0, true); // write marks dirty
    const auto line = c.extract(0x0);
    ASSERT_TRUE(line.has_value());
    EXPECT_TRUE(line->dirty);
}

TEST(Cache, EvictionReportsDirtiness)
{
    Cache c("t", 512, 2);
    c.insert(CacheLine{0x0, true, false}); // dirty on insert
    c.insert(CacheLine{0x100, false, false});
    const auto victim = c.insert(CacheLine{0x200, false, false});
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x0u);
    EXPECT_TRUE(victim->dirty);
}

TEST(Cache, CompressedBitRoundTrips)
{
    Cache c("t", 4096, 4);
    c.insert(CacheLine{0x40, false, true});
    EXPECT_TRUE(c.isCompressed(0x40));
    c.setCompressed(0x40, false);
    EXPECT_FALSE(c.isCompressed(0x40));
    // Absent lines report uncompressed.
    EXPECT_FALSE(c.isCompressed(0x9000));
}

TEST(Cache, ExtractRemovesLine)
{
    Cache c("t", 4096, 4);
    c.insert(CacheLine{0x80, true, true});
    const auto line = c.extract(0x80);
    ASSERT_TRUE(line.has_value());
    EXPECT_TRUE(line->dirty);
    EXPECT_TRUE(line->compressed);
    EXPECT_FALSE(c.probe(0x80));
    EXPECT_FALSE(c.extract(0x80).has_value());
}

TEST(Cache, InsertExistingRefreshes)
{
    Cache c("t", 512, 2);
    c.insert(CacheLine{0x0, false, false});
    c.insert(CacheLine{0x100, false, false});
    // Re-insert 0x0 (refresh); inserting a third line now evicts 0x100.
    EXPECT_FALSE(c.insert(CacheLine{0x0, true, false}).has_value());
    const auto victim = c.insert(CacheLine{0x200, false, false});
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x100u);
    // The refresh merged the dirty bit.
    const auto line = c.extract(0x0);
    ASSERT_TRUE(line.has_value());
    EXPECT_TRUE(line->dirty);
}

TEST(Cache, MarkDirtyOnResident)
{
    Cache c("t", 4096, 4);
    c.insert(CacheLine{0xc0, false, false});
    c.markDirty(0xc0);
    const auto line = c.extract(0xc0);
    ASSERT_TRUE(line.has_value());
    EXPECT_TRUE(line->dirty);
}

TEST(Cache, StatsDump)
{
    Cache c("t", 4096, 4);
    c.access(0, false);
    c.insert(CacheLine{0, false, false});
    c.access(0, false);
    StatDump d;
    c.dumpStats(d, "c");
    EXPECT_EQ(d.get("c.hits"), 1.0);
    EXPECT_EQ(d.get("c.misses"), 1.0);
    EXPECT_DOUBLE_EQ(d.get("c.miss_rate"), 0.5);
}

} // namespace
} // namespace tmcc
