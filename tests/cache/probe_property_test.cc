/**
 * @file
 * Structure-level probe properties: randomized op streams driven
 * through Cache, CteCache and Tlb at every legal associativity shape
 * (including non-power-of-two way counts, which exercise the padded
 * tail lanes) are compared way-for-way against reference models that
 * replicate the historical scalar scan loops verbatim — same match
 * order, same victim tie-breaks, same stale state after invalidation.
 * Any divergence in the SIMD probe engine's decisions shows up as a
 * metadata mismatch within one operation of the bug.
 *
 * Unsupported geometry (more ways than the 64-bit way mask can hold)
 * must be rejected at construction: death tests pin that contract for
 * every structure built on the probe engine.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "cache/cache.hh"
#include "cache/prefetcher.hh"
#include "common/simd.hh"
#include "common/types.hh"
#include "mc/cte_cache.hh"
#include "vm/tlb.hh"

namespace tmcc
{
namespace
{

constexpr std::size_t npos = ~static_cast<std::size_t>(0);

/** Associativities under test; non-powers-of-two stress pad lanes. */
const unsigned kAssocs[] = {1, 2, 3, 4, 5, 7, 8, 12, 16, 24, 33, 64};

// ---------------------------------------------------------------------
// Cache vs the historical scalar loops.
// ---------------------------------------------------------------------

/** Way-for-way replica of Cache built from the old scalar scans. */
class RefCache
{
  public:
    struct Way
    {
        Addr tag = invalidAddr;
        std::uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
        bool compressed = false;
    };

    RefCache(std::size_t sets, unsigned assoc)
        : sets_(sets), assoc_(assoc), ways_(sets * assoc)
    {}

    bool
    access(Addr addr, bool is_write)
    {
        const std::size_t w = find(addr);
        if (w == npos)
            return false;
        ways_[w].lru = ++clock_;
        ways_[w].dirty |= is_write;
        return true;
    }

    void
    insert(const CacheLine &line, CacheLine &evicted)
    {
        const Addr tag = blockAlign(line.addr);
        const std::size_t base = setOf(tag) * assoc_;
        evicted.addr = invalidAddr;
        for (unsigned w = 0; w < assoc_; ++w) {
            Way &way = ways_[base + w];
            if (way.valid && way.tag == tag) {
                way.lru = ++clock_;
                way.dirty |= line.dirty;
                way.compressed = line.compressed;
                return;
            }
        }
        // Historical victim order: first invalid way among 1..N-1,
        // else way 0 when invalid, else the unique LRU minimum.
        std::size_t victim = npos;
        for (unsigned w = 1; w < assoc_; ++w)
            if (!ways_[base + w].valid) {
                victim = base + w;
                break;
            }
        if (victim == npos && !ways_[base].valid)
            victim = base;
        if (victim == npos) {
            victim = base;
            for (unsigned w = 1; w < assoc_; ++w)
                if (ways_[base + w].lru < ways_[victim].lru)
                    victim = base + w;
        }
        if (ways_[victim].valid)
            evicted = CacheLine{ways_[victim].tag, ways_[victim].dirty,
                                ways_[victim].compressed};
        ways_[victim] = Way{tag, ++clock_, true, line.dirty,
                            line.compressed};
    }

    bool
    touch(const CacheLine &line, CacheLine &evicted)
    {
        const Addr tag = blockAlign(line.addr);
        const std::size_t base = setOf(tag) * assoc_;
        evicted.addr = invalidAddr;
        for (unsigned w = 0; w < assoc_; ++w) {
            Way &way = ways_[base + w];
            if (way.valid && way.tag == tag) {
                way.lru = ++clock_;
                way.dirty |= line.dirty;
                return true;
            }
        }
        // Earliest way minimizing (invalid ? 0 : lru).
        std::size_t victim = base;
        std::uint64_t best = score(ways_[base]);
        for (unsigned w = 1; w < assoc_; ++w)
            if (score(ways_[base + w]) < best) {
                best = score(ways_[base + w]);
                victim = base + w;
            }
        if (ways_[victim].valid)
            evicted = CacheLine{ways_[victim].tag, ways_[victim].dirty,
                                ways_[victim].compressed};
        ways_[victim] = Way{tag, ++clock_, true, line.dirty,
                            line.compressed};
        return false;
    }

    void
    extract(Addr addr)
    {
        if (const std::size_t w = find(addr); w != npos) {
            // The real structure clears Valid|Dirty and the tag but
            // leaves the compressed bit and LRU stamp stale.
            ways_[w].valid = false;
            ways_[w].dirty = false;
            ways_[w].tag = invalidAddr;
        }
    }

    void
    setCompressed(Addr addr, bool compressed)
    {
        if (const std::size_t w = find(addr); w != npos)
            ways_[w].compressed = compressed;
    }

    void
    markDirty(Addr addr)
    {
        if (const std::size_t w = find(addr); w != npos)
            ways_[w].dirty = true;
    }

    const Way &way(std::size_t set, unsigned w) const
    {
        return ways_[set * assoc_ + w];
    }

  private:
    static std::uint64_t
    score(const Way &w)
    {
        return w.valid ? w.lru : 0;
    }

    std::size_t
    setOf(Addr addr) const
    {
        return static_cast<std::size_t>(blockNumber(addr)) % sets_;
    }

    std::size_t
    find(Addr addr) const
    {
        const Addr tag = blockAlign(addr);
        const std::size_t base = setOf(addr) * assoc_;
        for (unsigned w = 0; w < assoc_; ++w)
            if (ways_[base + w].valid && ways_[base + w].tag == tag)
                return base + w;
        return npos;
    }

    std::size_t sets_;
    unsigned assoc_;
    std::vector<Way> ways_;
    std::uint64_t clock_ = 0;
};

void
expectCacheMatches(const Cache &dut, const RefCache &ref,
                   std::size_t sets, unsigned assoc)
{
    for (std::size_t s = 0; s < sets; ++s)
        for (unsigned w = 0; w < assoc; ++w) {
            const auto v = dut.wayView(s, w);
            const auto &r = ref.way(s, w);
            ASSERT_EQ(v.valid, r.valid) << "set " << s << " way " << w;
            ASSERT_EQ(v.lru, r.lru) << "set " << s << " way " << w;
            if (v.valid) {
                ASSERT_EQ(v.tag, r.tag) << "set " << s << " way " << w;
                ASSERT_EQ(v.dirty, r.dirty)
                    << "set " << s << " way " << w;
                ASSERT_EQ(v.compressed, r.compressed)
                    << "set " << s << " way " << w;
            }
        }
}

void
driveCache(std::size_t sets, unsigned assoc)
{
    SCOPED_TRACE("sets=" + std::to_string(sets) +
                 " assoc=" + std::to_string(assoc));
    Cache dut("dut", sets * assoc * blockSize, assoc);
    RefCache ref(sets, assoc);
    std::mt19937_64 rng(1000 + sets * 100 + assoc);

    // ~3x the capacity in distinct blocks forces constant eviction.
    const std::uint64_t blocks = sets * assoc * 3 + 1;
    for (int op = 0; op < 4000; ++op) {
        const Addr addr = (rng() % blocks) * blockSize + rng() % 64;
        const bool dirty = rng() % 2;
        const bool comp = rng() % 2;
        switch (rng() % 8) {
        case 0:
        case 1:
            ASSERT_EQ(dut.access(addr, dirty),
                      ref.access(addr, dirty));
            break;
        case 2:
        case 3: {
            CacheLine rev;
            const auto dev = dut.insert({addr, dirty, comp});
            ref.insert({addr, dirty, comp}, rev);
            ASSERT_EQ(dev.has_value(), rev.addr != invalidAddr);
            if (dev) {
                ASSERT_EQ(dev->addr, rev.addr);
                ASSERT_EQ(dev->dirty, rev.dirty);
                ASSERT_EQ(dev->compressed, rev.compressed);
            }
            break;
        }
        case 4:
        case 5: {
            CacheLine dev, rev;
            ASSERT_EQ(dut.touch({addr, dirty, comp}, dev),
                      ref.touch({addr, dirty, comp}, rev));
            ASSERT_EQ(dev.addr, rev.addr);
            if (dev.addr != invalidAddr) {
                ASSERT_EQ(dev.dirty, rev.dirty);
                ASSERT_EQ(dev.compressed, rev.compressed);
            }
            break;
        }
        case 6:
            dut.invalidate(addr);
            ref.extract(addr);
            break;
        default:
            if (rng() % 2) {
                dut.setCompressed(addr, comp);
                ref.setCompressed(addr, comp);
            } else {
                dut.markDirty(addr);
                ref.markDirty(addr);
            }
            break;
        }
        expectCacheMatches(dut, ref, sets, assoc);
    }
}

TEST(ProbeProperty, CacheMatchesScalarReferenceAtEveryAssoc)
{
    for (unsigned assoc : kAssocs)
        driveCache(4, assoc);
}

TEST(ProbeProperty, CacheMatchesScalarReferenceNonPow2Sets)
{
    driveCache(3, 5);
    driveCache(7, 8);
}

// ---------------------------------------------------------------------
// CteCache vs the historical scalar loops.
// ---------------------------------------------------------------------

/** Replica of CteCache's old first-match-or-invalid install scan. */
class RefCteCache
{
  public:
    RefCteCache(std::size_t sets, unsigned assoc,
                unsigned pages_per_block)
        : sets_(sets), assoc_(assoc), ppb_(pages_per_block),
          tags_(sets * assoc, ~std::uint64_t{0}),
          lru_(sets * assoc, 0)
    {}

    bool
    lookup(Ppn ppn)
    {
        const std::uint64_t tag = ppn / ppb_;
        const std::size_t base = (tag % sets_) * assoc_;
        for (unsigned w = 0; w < assoc_; ++w)
            if (tags_[base + w] == tag) {
                lru_[base + w] = ++clock_;
                return true;
            }
        return false;
    }

    void
    insert(Ppn ppn)
    {
        const std::uint64_t tag = ppn / ppb_;
        const std::size_t base = (tag % sets_) * assoc_;
        // Stop at the first way that matches (refresh) or is invalid
        // (victim), in way order; else the unique LRU minimum.
        for (unsigned w = 0; w < assoc_; ++w) {
            if (tags_[base + w] == tag) {
                lru_[base + w] = ++clock_;
                return;
            }
            if (tags_[base + w] == ~std::uint64_t{0}) {
                tags_[base + w] = tag;
                lru_[base + w] = ++clock_;
                return;
            }
        }
        std::size_t victim = base;
        for (unsigned w = 1; w < assoc_; ++w)
            if (lru_[base + w] < lru_[victim])
                victim = base + w;
        tags_[victim] = tag;
        lru_[victim] = ++clock_;
    }

    void
    invalidate(Ppn ppn)
    {
        const std::uint64_t tag = ppn / ppb_;
        const std::size_t base = (tag % sets_) * assoc_;
        for (unsigned w = 0; w < assoc_; ++w)
            if (tags_[base + w] == tag)
                tags_[base + w] = ~std::uint64_t{0};
    }

    std::uint64_t tag(std::size_t s, unsigned w) const
    {
        return tags_[s * assoc_ + w];
    }
    std::uint64_t lru(std::size_t s, unsigned w) const
    {
        return lru_[s * assoc_ + w];
    }

  private:
    std::size_t sets_;
    unsigned assoc_;
    unsigned ppb_;
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint64_t> lru_;
    std::uint64_t clock_ = 0;
};

TEST(ProbeProperty, CteCacheMatchesScalarReferenceAtEveryAssoc)
{
    constexpr std::size_t sets = 4;
    constexpr unsigned ppb = 8;
    for (unsigned assoc : kAssocs) {
        SCOPED_TRACE("assoc=" + std::to_string(assoc));
        CteCache dut(sets * assoc * blockSize, ppb, assoc);
        ASSERT_EQ(dut.numSets(), sets);
        RefCteCache ref(sets, assoc, ppb);
        std::mt19937_64 rng(2000 + assoc);

        const std::uint64_t pages = sets * assoc * ppb * 3 + 1;
        for (int op = 0; op < 4000; ++op) {
            const Ppn ppn = rng() % pages;
            switch (rng() % 4) {
            case 0:
            case 1:
                ASSERT_EQ(dut.lookup(ppn), ref.lookup(ppn));
                break;
            case 2:
                dut.insert(ppn);
                ref.insert(ppn);
                break;
            default:
                dut.invalidate(ppn);
                ref.invalidate(ppn);
                break;
            }
            for (std::size_t s = 0; s < sets; ++s)
                for (unsigned w = 0; w < assoc; ++w) {
                    const auto v = dut.wayView(s, w);
                    ASSERT_EQ(v.valid,
                              ref.tag(s, w) != ~std::uint64_t{0});
                    if (v.valid) {
                        ASSERT_EQ(v.tag, ref.tag(s, w));
                    }
                    ASSERT_EQ(v.lru, ref.lru(s, w));
                }
        }
    }
}

// ---------------------------------------------------------------------
// Tlb vs the historical scalar loops.
// ---------------------------------------------------------------------

/** Replica of the TLB's old per-way flag/tag scan. */
class RefTlb
{
  public:
    struct Way
    {
        Vpn vpn = 0;
        Ppn ppn = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        bool huge = false;
    };

    RefTlb(std::size_t sets, unsigned assoc)
        : sets_(sets), assoc_(assoc), ways_(sets * assoc)
    {}

    bool
    lookup(Addr vaddr, Ppn &ppn)
    {
        const Vpn vpn = pageNumber(vaddr);
        if (const std::size_t e = find(vpn, false); e != npos) {
            ways_[e].lru = ++clock_;
            ppn = ways_[e].ppn;
            return true;
        }
        if (const std::size_t e = find(vpn, true); e != npos) {
            ways_[e].lru = ++clock_;
            ppn = ways_[e].ppn +
                  (vpn & ((hugePageSize / pageSize) - 1));
            return true;
        }
        return false;
    }

    void insert(Vpn vpn, Ppn ppn) { install(vpn, ppn, false); }
    void insertHuge(Vpn vpn, Ppn ppn) { install(vpn, ppn, true); }

    void
    flush()
    {
        // The real structure clears the flag bits only: VPN, PPN and
        // LRU stamps stay stale in place.
        for (auto &w : ways_) {
            w.valid = false;
            w.huge = false;
        }
    }

    const Way &way(std::size_t set, unsigned w) const
    {
        return ways_[set * assoc_ + w];
    }

  private:
    std::size_t
    find(Vpn vpn, bool huge) const
    {
        const Vpn key =
            huge ? (vpn & ~((hugePageSize / pageSize) - 1)) : vpn;
        const std::size_t base = (key & (sets_ - 1)) * assoc_;
        for (unsigned w = 0; w < assoc_; ++w) {
            const Way &way = ways_[base + w];
            if (way.valid && way.huge == huge && way.vpn == key)
                return base + w;
        }
        return npos;
    }

    void
    install(Vpn vpn, Ppn ppn, bool huge)
    {
        const std::size_t base = (vpn & (sets_ - 1)) * assoc_;
        // First way that matches the wanted (vpn, flags) key exactly
        // or is invalid, in way order; else the unique LRU minimum.
        std::size_t victim = npos;
        for (unsigned w = 0; w < assoc_; ++w) {
            const Way &way = ways_[base + w];
            if (!way.valid ||
                (way.huge == huge && way.vpn == vpn)) {
                victim = base + w;
                break;
            }
        }
        if (victim == npos) {
            victim = base;
            for (unsigned w = 1; w < assoc_; ++w)
                if (ways_[base + w].lru < ways_[victim].lru)
                    victim = base + w;
        }
        ways_[victim] = Way{vpn, ppn, ++clock_, true, huge};
    }

    std::size_t sets_;
    unsigned assoc_;
    std::vector<Way> ways_;
    std::uint64_t clock_ = 0;
};

TEST(ProbeProperty, TlbMatchesScalarReferenceAtEveryAssoc)
{
    constexpr std::size_t sets = 8;
    constexpr Vpn hugePages = hugePageSize / pageSize;
    for (unsigned assoc : kAssocs) {
        SCOPED_TRACE("assoc=" + std::to_string(assoc));
        Tlb dut(sets * assoc, assoc);
        RefTlb ref(sets, assoc);
        std::mt19937_64 rng(3000 + assoc);

        const Vpn vpns = sets * assoc * 3 + 1;
        for (int op = 0; op < 4000; ++op) {
            const Vpn vpn = rng() % vpns;
            switch (rng() % 8) {
            case 0:
            case 1:
            case 2: {
                const Addr vaddr = vpn * pageSize + rng() % pageSize;
                Ppn dp = 0, rp = 0;
                ASSERT_EQ(dut.lookup(vaddr, dp),
                          ref.lookup(vaddr, rp));
                ASSERT_EQ(dp, rp);
                break;
            }
            case 3:
            case 4:
            case 5:
                dut.insert(vpn, vpn + 7);
                ref.insert(vpn, vpn + 7);
                break;
            case 6: {
                const Vpn base = (rng() % 4) * hugePages;
                dut.insertHuge(base, base + 9);
                ref.insertHuge(base, base + 9);
                break;
            }
            default:
                if (rng() % 8 == 0) {
                    dut.flush();
                    ref.flush();
                }
                break;
            }
            for (std::size_t s = 0; s < sets; ++s)
                for (unsigned w = 0; w < assoc; ++w) {
                    const auto v = dut.wayView(s, w);
                    const auto &r = ref.way(s, w);
                    ASSERT_EQ(v.valid, r.valid)
                        << "set " << s << " way " << w;
                    if (v.valid) {
                        ASSERT_EQ(v.vpn, r.vpn);
                        ASSERT_EQ(v.ppn, r.ppn);
                        ASSERT_EQ(v.huge, r.huge);
                        ASSERT_EQ(v.lru, r.lru);
                    }
                }
        }
    }
}

// ---------------------------------------------------------------------
// Unsupported geometry is rejected at construction.
// ---------------------------------------------------------------------

using ProbeGeometryDeathTest = ::testing::Test;

TEST(ProbeGeometryDeathTest, CacheRejectsMoreWaysThanMaskBits)
{
    EXPECT_EXIT(Cache("wide", (simd::maxWays + 1) * blockSize,
                      simd::maxWays + 1),
                ::testing::ExitedWithCode(1), "probe engine");
}

TEST(ProbeGeometryDeathTest, CteCacheRejectsMoreWaysThanMaskBits)
{
    EXPECT_EXIT(CteCache((simd::maxWays + 1) * blockSize, 8,
                         simd::maxWays + 1),
                ::testing::ExitedWithCode(1), "probe engine");
}

TEST(ProbeGeometryDeathTest, TlbRejectsMoreWaysThanMaskBits)
{
    EXPECT_EXIT(Tlb(2 * (simd::maxWays + 1), simd::maxWays + 1),
                ::testing::ExitedWithCode(1), "probe engine");
}

TEST(ProbeGeometryDeathTest, StridePrefetcherRejectsTooManyStreams)
{
    EXPECT_EXIT(StridePrefetcher(2, simd::maxWays + 1),
                ::testing::ExitedWithCode(1), "stream count");
    EXPECT_EXIT(StridePrefetcher(2, 0),
                ::testing::ExitedWithCode(1), "stream count");
}

} // namespace
} // namespace tmcc
