/** Tests for the deterministic fault-injection harness. */

#include <gtest/gtest.h>

#include "fault/fault_injector.hh"

namespace tmcc
{
namespace
{

TEST(FaultInjector, DisabledByDefault)
{
    FaultConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    FaultInjector inj(cfg);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(inj.ml2ImageCorrupted(1 << 20));
        EXPECT_EQ(inj.corruptCte(0x1234, 30), 0x1234u);
    }
    std::uint8_t image[64] = {};
    inj.corruptPtbImage(image, sizeof(image));
    for (auto b : image)
        EXPECT_EQ(b, 0);
}

TEST(FaultInjector, DeterministicFromSeed)
{
    FaultConfig cfg;
    cfg.ml2BitFlipRate = 1e-5;
    cfg.cteBitFlipRate = 1e-3;
    cfg.seed = 77;
    FaultInjector a(cfg), b(cfg);
    for (int i = 0; i < 5000; ++i) {
        EXPECT_EQ(a.ml2ImageCorrupted(8192), b.ml2ImageCorrupted(8192));
        EXPECT_EQ(a.corruptCte(i, 28), b.corruptCte(i, 28));
    }
}

TEST(FaultInjector, RateOneAlwaysFires)
{
    FaultConfig cfg;
    cfg.ml2BitFlipRate = 1.0;
    cfg.transientFraction = 1.0;
    FaultInjector inj(cfg);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(inj.ml2ImageCorrupted(1));
        EXPECT_TRUE(inj.ml2CorruptionTransient());
    }
}

TEST(FaultInjector, Ml2RateMatchesBernoulliModel)
{
    // p = 1-(1-r)^n with r=1e-4, n=8192 gives ~0.56; the empirical
    // rate over 10k draws must land near it.
    FaultConfig cfg;
    cfg.ml2BitFlipRate = 1e-4;
    FaultInjector inj(cfg);
    unsigned hits = 0;
    constexpr unsigned trials = 10000;
    for (unsigned i = 0; i < trials; ++i)
        hits += inj.ml2ImageCorrupted(8192);
    const double p = static_cast<double>(hits) / trials;
    EXPECT_NEAR(p, 0.5596, 0.03);
}

TEST(FaultInjector, CorruptCteFlipsWithinWidth)
{
    FaultConfig cfg;
    cfg.cteBitFlipRate = 0.05; // per bit; 28-bit field flips often
    FaultInjector inj(cfg);
    unsigned changed = 0;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = 0x0ABCDEF;
        const std::uint64_t got = inj.corruptCte(v, 28);
        if (got != v) {
            ++changed;
            // Exactly one bit, inside the field.
            const std::uint64_t diff = got ^ v;
            EXPECT_EQ(diff & (diff - 1), 0u);
            EXPECT_LT(diff, 1ULL << 28);
        }
    }
    EXPECT_GT(changed, 100u);
    EXPECT_LT(changed, 1900u);
}

TEST(FaultInjector, PtbImageDamageIsCounted)
{
    FaultConfig cfg;
    cfg.ptbBitFlipRate = 0.01;
    FaultInjector inj(cfg);
    unsigned damaged = 0;
    for (int i = 0; i < 500; ++i) {
        std::uint8_t image[64] = {};
        inj.corruptPtbImage(image, sizeof(image));
        bool any = false;
        for (auto b : image)
            any |= b != 0;
        damaged += any;
    }
    EXPECT_GT(damaged, 0u);

    StatDump dump;
    inj.dumpStats(dump, "faults");
    EXPECT_EQ(dump.get("faults.ptb_injected"),
              static_cast<double>(damaged));
    EXPECT_GE(dump.get("faults.ptb_bits_flipped"),
              dump.get("faults.ptb_injected"));
}

} // namespace
} // namespace tmcc
