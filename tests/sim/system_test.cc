/** Integration tests: the assembled system end to end. */

#include <gtest/gtest.h>

#include "sim/system.hh"

namespace tmcc
{
namespace
{

SimConfig
tinyConfig(Arch arch, const std::string &workload = "pageRank")
{
    SimConfig cfg = SimConfig::scaledDefault();
    cfg.workload = workload;
    cfg.scale = 0.02;
    cfg.arch = arch;
    cfg.placementAccesses = 20'000;
    cfg.warmAccesses = 10'000;
    cfg.measureAccesses = 20'000;
    return cfg;
}

TEST(System, NoCompressionRuns)
{
    System sys(tinyConfig(Arch::NoCompression));
    const SimResult r = sys.run();
    EXPECT_GT(r.accesses, 0u);
    EXPECT_GT(r.elapsed, 0u);
    EXPECT_GT(r.accessesPerNs(), 0.0);
    EXPECT_DOUBLE_EQ(r.compressionRatio(), 1.0);
    EXPECT_EQ(r.cteMisses + r.cteHits, 0u); // no CTE machinery
}

TEST(System, CompressoSavesMemoryAndPaysLatency)
{
    System base(tinyConfig(Arch::NoCompression));
    const SimResult rb = base.run();
    System comp(tinyConfig(Arch::Compresso));
    const SimResult rc = comp.run();

    EXPECT_GT(rc.compressionRatio(), 1.02);
    EXPECT_GT(rc.avgL3MissLatencyNs, rb.avgL3MissLatencyNs);
    EXPECT_LT(rc.accessesPerNs(), rb.accessesPerNs() * 1.02);
}

TEST(System, TmccBeatsCompressoAtIsoSavings)
{
    // TMCC's placement/CTE machinery needs a longer window than the
    // other smoke tests to amortize; 20k accesses sits on a knife edge.
    SimConfig cfg = tinyConfig(Arch::Compresso);
    cfg.placementAccesses = 40'000;
    cfg.warmAccesses = 20'000;
    cfg.measureAccesses = 40'000;
    System comp(cfg);
    const SimResult rc = comp.run();
    cfg.arch = Arch::Tmcc;
    System tmcc(cfg);
    const SimResult rt = tmcc.run();

    // Iso-savings (Fig. 17): similar DRAM usage, higher performance.
    EXPECT_NEAR(rt.compressionRatio(), rc.compressionRatio(),
                rc.compressionRatio() * 0.25);
    EXPECT_GT(rt.accessesPerNs(), rc.accessesPerNs());
    EXPECT_LT(rt.avgL3MissLatencyNs, rc.avgL3MissLatencyNs);
}

TEST(System, TmccNoSlowerThanBarebone)
{
    System bb(tinyConfig(Arch::Barebone));
    const SimResult r1 = bb.run();
    System tm(tinyConfig(Arch::Tmcc));
    const SimResult r2 = tm.run();
    EXPECT_GE(r2.accessesPerNs(), r1.accessesPerNs() * 0.98);
}

TEST(System, TlbAndWalksHappen)
{
    System sys(tinyConfig(Arch::Tmcc));
    const SimResult r = sys.run();
    EXPECT_GT(r.tlbMisses, 0u);
    EXPECT_GT(r.stats.get("core0.walker.walks"), 0.0);
    EXPECT_GT(r.stats.get("core0.walker.pwc.hits"), 0.0);
}

TEST(System, CteMissesFollowTlbMisses)
{
    // §V-A1 / Fig. 5: most CTE misses follow TLB misses.
    System sys(tinyConfig(Arch::Tmcc, "mcf"));
    const SimResult r = sys.run();
    ASSERT_GT(r.cteMisses, 0u);
    EXPECT_GT(static_cast<double>(r.cteMissesAfterTlbMiss) /
                  static_cast<double>(r.cteMisses),
              0.5);
}

TEST(System, EmbeddedCtesProduceParallelAccesses)
{
    System sys(tinyConfig(Arch::Tmcc, "mcf"));
    const SimResult r = sys.run();
    EXPECT_GT(r.ml1Parallel, 0u);
    // Barebone never uses the parallel path.
    System bb(tinyConfig(Arch::Barebone, "mcf"));
    const SimResult rb = bb.run();
    EXPECT_EQ(rb.ml1Parallel, 0u);
}

TEST(System, DeterministicAcrossRuns)
{
    System a(tinyConfig(Arch::Tmcc));
    System b(tinyConfig(Arch::Tmcc));
    const SimResult ra = a.run();
    const SimResult rb = b.run();
    EXPECT_EQ(ra.accesses, rb.accesses);
    EXPECT_EQ(ra.elapsed, rb.elapsed);
    EXPECT_EQ(ra.llcMisses, rb.llcMisses);
    EXPECT_EQ(ra.cteMisses, rb.cteMisses);
}

TEST(System, HugePagesReduceTlbMisses)
{
    SimConfig small = tinyConfig(Arch::NoCompression, "mcf");
    System sys4k(small);
    const SimResult r4k = sys4k.run();

    SimConfig huge = small;
    huge.hugePages = true;
    System sys2m(huge);
    const SimResult r2m = sys2m.run();

    EXPECT_LT(r2m.tlbMisses, r4k.tlbMisses / 2 + 1);
}

TEST(System, HugePagesDisableMl1Embedding)
{
    // §VIII: PTBs for huge pages cover 16MB; CTEs don't fit, so the
    // parallel-access path disappears while ML2 still works.
    SimConfig cfg = tinyConfig(Arch::Tmcc, "mcf");
    cfg.hugePages = true;
    System sys(cfg);
    const SimResult r = sys.run();
    EXPECT_EQ(r.ml1Parallel, 0u);
}

TEST(System, BudgetFractionControlsCapacity)
{
    SimConfig loose = tinyConfig(Arch::Tmcc);
    loose.dramBudgetFraction = 0.9;
    System a(loose);
    const SimResult ra = a.run();

    SimConfig tight = tinyConfig(Arch::Tmcc);
    tight.dramBudgetFraction = 0.55;
    System b(tight);
    const SimResult rb = b.run();

    EXPECT_GT(rb.compressionRatio(), ra.compressionRatio());
    EXPECT_GT(rb.ml2Accesses, ra.ml2Accesses);
}

TEST(System, StorePerformanceMetricPopulated)
{
    System sys(tinyConfig(Arch::NoCompression, "canneal"));
    const SimResult r = sys.run();
    EXPECT_GT(r.storeAccesses, 0u);
    EXPECT_GT(r.storesPerCycle(), 0.0);
}

TEST(System, BandwidthUtilizationBounded)
{
    System sys(tinyConfig(Arch::NoCompression, "stream"));
    const SimResult r = sys.run();
    EXPECT_GT(r.readBusUtil + r.writeBusUtil, 0.005);
    EXPECT_LT(r.readBusUtil + r.writeBusUtil, 1.2);
}

} // namespace
} // namespace tmcc
