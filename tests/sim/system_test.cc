/** Integration tests: the assembled system end to end. */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/trace.hh"
#include "sim/system.hh"

namespace tmcc
{
namespace
{

SimConfig
tinyConfig(Arch arch, const std::string &workload = "pageRank")
{
    SimConfig cfg = SimConfig::scaledDefault();
    cfg.workload = workload;
    cfg.scale = 0.02;
    cfg.arch = arch;
    cfg.placementAccesses = 20'000;
    cfg.warmAccesses = 10'000;
    cfg.measureAccesses = 20'000;
    return cfg;
}

TEST(System, NoCompressionRuns)
{
    System sys(tinyConfig(Arch::NoCompression));
    const SimResult r = sys.run();
    EXPECT_GT(r.accesses, 0u);
    EXPECT_GT(r.elapsed, 0u);
    EXPECT_GT(r.accessesPerNs(), 0.0);
    EXPECT_DOUBLE_EQ(r.compressionRatio(), 1.0);
    EXPECT_EQ(r.cteMisses + r.cteHits, 0u); // no CTE machinery
}

TEST(System, CompressoSavesMemoryAndPaysLatency)
{
    System base(tinyConfig(Arch::NoCompression));
    const SimResult rb = base.run();
    System comp(tinyConfig(Arch::Compresso));
    const SimResult rc = comp.run();

    EXPECT_GT(rc.compressionRatio(), 1.02);
    EXPECT_GT(rc.avgL3MissLatencyNs, rb.avgL3MissLatencyNs);
    EXPECT_LT(rc.accessesPerNs(), rb.accessesPerNs() * 1.02);
}

TEST(System, TmccBeatsCompressoAtIsoSavings)
{
    // TMCC's placement/CTE machinery needs a longer window than the
    // other smoke tests to amortize; 20k accesses sits on a knife edge.
    SimConfig cfg = tinyConfig(Arch::Compresso);
    cfg.placementAccesses = 40'000;
    cfg.warmAccesses = 20'000;
    cfg.measureAccesses = 40'000;
    System comp(cfg);
    const SimResult rc = comp.run();
    cfg.arch = Arch::Tmcc;
    System tmcc(cfg);
    const SimResult rt = tmcc.run();

    // Iso-savings (Fig. 17): similar DRAM usage, higher performance.
    EXPECT_NEAR(rt.compressionRatio(), rc.compressionRatio(),
                rc.compressionRatio() * 0.25);
    EXPECT_GT(rt.accessesPerNs(), rc.accessesPerNs());
    EXPECT_LT(rt.avgL3MissLatencyNs, rc.avgL3MissLatencyNs);
}

TEST(System, TmccNoSlowerThanBarebone)
{
    System bb(tinyConfig(Arch::Barebone));
    const SimResult r1 = bb.run();
    System tm(tinyConfig(Arch::Tmcc));
    const SimResult r2 = tm.run();
    EXPECT_GE(r2.accessesPerNs(), r1.accessesPerNs() * 0.98);
}

TEST(System, TlbAndWalksHappen)
{
    System sys(tinyConfig(Arch::Tmcc));
    const SimResult r = sys.run();
    EXPECT_GT(r.tlbMisses, 0u);
    EXPECT_GT(r.stats.get("core0.walker.walks"), 0.0);
    EXPECT_GT(r.stats.get("core0.walker.pwc.hits"), 0.0);
}

TEST(System, CteMissesFollowTlbMisses)
{
    // §V-A1 / Fig. 5: most CTE misses follow TLB misses.
    System sys(tinyConfig(Arch::Tmcc, "mcf"));
    const SimResult r = sys.run();
    ASSERT_GT(r.cteMisses, 0u);
    EXPECT_GT(static_cast<double>(r.cteMissesAfterTlbMiss) /
                  static_cast<double>(r.cteMisses),
              0.5);
}

TEST(System, EmbeddedCtesProduceParallelAccesses)
{
    System sys(tinyConfig(Arch::Tmcc, "mcf"));
    const SimResult r = sys.run();
    EXPECT_GT(r.ml1Parallel, 0u);
    // Barebone never uses the parallel path.
    System bb(tinyConfig(Arch::Barebone, "mcf"));
    const SimResult rb = bb.run();
    EXPECT_EQ(rb.ml1Parallel, 0u);
}

TEST(System, DeterministicAcrossRuns)
{
    System a(tinyConfig(Arch::Tmcc));
    System b(tinyConfig(Arch::Tmcc));
    const SimResult ra = a.run();
    const SimResult rb = b.run();
    EXPECT_EQ(ra.accesses, rb.accesses);
    EXPECT_EQ(ra.elapsed, rb.elapsed);
    EXPECT_EQ(ra.llcMisses, rb.llcMisses);
    EXPECT_EQ(ra.cteMisses, rb.cteMisses);
}

TEST(System, HugePagesReduceTlbMisses)
{
    SimConfig small = tinyConfig(Arch::NoCompression, "mcf");
    System sys4k(small);
    const SimResult r4k = sys4k.run();

    SimConfig huge = small;
    huge.hugePages = true;
    System sys2m(huge);
    const SimResult r2m = sys2m.run();

    EXPECT_LT(r2m.tlbMisses, r4k.tlbMisses / 2 + 1);
}

TEST(System, HugePagesDisableMl1Embedding)
{
    // §VIII: PTBs for huge pages cover 16MB; CTEs don't fit, so the
    // parallel-access path disappears while ML2 still works.
    SimConfig cfg = tinyConfig(Arch::Tmcc, "mcf");
    cfg.hugePages = true;
    System sys(cfg);
    const SimResult r = sys.run();
    EXPECT_EQ(r.ml1Parallel, 0u);
}

TEST(System, BudgetFractionControlsCapacity)
{
    SimConfig loose = tinyConfig(Arch::Tmcc);
    loose.dramBudgetFraction = 0.9;
    System a(loose);
    const SimResult ra = a.run();

    SimConfig tight = tinyConfig(Arch::Tmcc);
    tight.dramBudgetFraction = 0.55;
    System b(tight);
    const SimResult rb = b.run();

    EXPECT_GT(rb.compressionRatio(), ra.compressionRatio());
    EXPECT_GT(rb.ml2Accesses, ra.ml2Accesses);
}

TEST(System, StorePerformanceMetricPopulated)
{
    System sys(tinyConfig(Arch::NoCompression, "canneal"));
    const SimResult r = sys.run();
    EXPECT_GT(r.storeAccesses, 0u);
    EXPECT_GT(r.storesPerCycle(), 0.0);
}

TEST(System, BandwidthUtilizationBounded)
{
    System sys(tinyConfig(Arch::NoCompression, "stream"));
    const SimResult r = sys.run();
    EXPECT_GT(r.readBusUtil + r.writeBusUtil, 0.005);
    EXPECT_LT(r.readBusUtil + r.writeBusUtil, 1.2);
}

TEST(System, SysStatsMatchHeadlineCounters)
{
    System sys(tinyConfig(Arch::Tmcc));
    const SimResult r = sys.run();
    EXPECT_DOUBLE_EQ(r.stats.getRequired("sys.accesses"),
                     static_cast<double>(r.accesses));
    EXPECT_DOUBLE_EQ(r.stats.getRequired("sys.llc_misses"),
                     static_cast<double>(r.llcMisses));
    EXPECT_DOUBLE_EQ(r.stats.getRequired("sys.cte_misses"),
                     static_cast<double>(r.cteMisses));
    EXPECT_DOUBLE_EQ(r.stats.getRequired("sys.dram_used_bytes"),
                     static_cast<double>(r.dramUsedBytes));
    // The latency histograms export through the same dump.
    EXPECT_GT(r.stats.getRequired("sys.l3_miss_latency.count"), 0.0);
    EXPECT_GT(r.stats.getRequired("sys.page_walk_latency.count"), 0.0);
}

TEST(System, EpochsDisabledByDefault)
{
    System sys(tinyConfig(Arch::Tmcc));
    EXPECT_TRUE(sys.run().epochs.empty());
}

TEST(System, EpochDeltasSumToRunTotals)
{
    SimConfig cfg = tinyConfig(Arch::Tmcc);
    cfg.statsInterval = 5'000;
    System sys(cfg);
    const SimResult r = sys.run();

    ASSERT_GT(r.epochs.size(), 2u);
    std::uint64_t acc = 0;
    double llc = 0.0, ml2 = 0.0, walks = 0.0;
    Tick prev_end = 0;
    for (const EpochStat &e : r.epochs) {
        acc += e.deltaAccesses;
        llc += e.delta.getRequired("sys.llc_misses");
        ml2 += e.delta.getRequired("sys.ml2_accesses");
        walks += e.delta.getRequired("core0.walker.walks");
        EXPECT_GE(e.endTick, prev_end); // monotonic epoch boundaries
        prev_end = e.endTick;
        EXPECT_GE(e.cteHitRate, 0.0);
        EXPECT_LE(e.cteHitRate, 1.0);
    }
    // The final (partial) epoch is flushed after the drain, so the
    // per-epoch deltas reproduce the end-of-run totals exactly.
    EXPECT_EQ(acc, r.accesses);
    EXPECT_EQ(r.epochs.back().accesses, r.accesses);
    EXPECT_DOUBLE_EQ(llc, static_cast<double>(r.llcMisses));
    EXPECT_DOUBLE_EQ(ml2, static_cast<double>(r.ml2Accesses));
    // Component counters run from process start, so their epoch sum
    // covers only the measured window: positive, bounded by the total.
    EXPECT_GT(walks, 0.0);
    EXPECT_LE(walks, r.stats.getRequired("core0.walker.walks"));
    // The absolute gauge tracks the final usage.
    EXPECT_DOUBLE_EQ(r.epochs.back().dramUsedBytes,
                     static_cast<double>(r.dramUsedBytes));
}

TEST(System, TracingDoesNotPerturbResults)
{
    // Tracing only reads simulator state: a traced run must produce
    // exactly the same timing and counters as an untraced one.
    System plain(tinyConfig(Arch::Tmcc));
    const SimResult rp = plain.run();

    const std::string path =
        ::testing::TempDir() + "system_trace_test.json";
    std::remove(path.c_str());
    SimResult rt;
    {
        Tracer tracer(path);
        Tracer::setActive(&tracer);
        System traced(tinyConfig(Arch::Tmcc));
        rt = traced.run();
        Tracer::setActive(nullptr);
        EXPECT_TRUE(tracer.finish());
        EXPECT_GT(tracer.eventCount(), 0u);
    }
    std::remove(path.c_str());

    EXPECT_EQ(rp.accesses, rt.accesses);
    EXPECT_EQ(rp.elapsed, rt.elapsed);
    EXPECT_EQ(rp.llcMisses, rt.llcMisses);
    EXPECT_EQ(rp.tlbMisses, rt.tlbMisses);
    EXPECT_EQ(rp.cteMisses, rt.cteMisses);
    EXPECT_EQ(rp.ml2Accesses, rt.ml2Accesses);
    EXPECT_EQ(rp.dramUsedBytes, rt.dramUsedBytes);
    ASSERT_EQ(rp.stats.all().size(), rt.stats.all().size());
    for (const auto &[name, v] : rp.stats.all())
        EXPECT_DOUBLE_EQ(v, rt.stats.getRequired(name)) << name;
}

TEST(System, MemcloudReportsPerTenantStats)
{
    SimConfig cfg = tinyConfig(Arch::Tmcc, "memcloud");
    cfg.tenants = 4;
    System sys(cfg);
    const SimResult r = sys.run();
    ASSERT_EQ(r.tenants.size(), cfg.tenants);

    // Per-tenant attribution covers the measured window exactly.
    std::uint64_t tenantAccesses = 0, tenantFaults = 0;
    for (const TenantStat &ts : r.tenants) {
        tenantAccesses += ts.accesses;
        tenantFaults += ts.ml2Faults;
        EXPECT_GT(ts.footprintBytes, 0u);
        EXPECT_EQ(ts.ml2FaultLatency.count() +
                      ts.ml2FaultLatency.underflow() +
                      ts.ml2FaultLatency.overflow(),
                  ts.ml2Faults);
    }
    EXPECT_EQ(tenantAccesses, r.accesses);
    EXPECT_EQ(tenantFaults,
              r.ml2FaultLatency.count() + r.ml2FaultLatency.underflow() +
                  r.ml2FaultLatency.overflow());
    // The zipf scheduler must feed every guest (regression for the
    // sampler's last-rank starvation).
    for (std::size_t t = 0; t < r.tenants.size(); ++t)
        EXPECT_GT(r.tenants[t].accesses, 0u) << "tenant " << t;

    // Exported stats carry the per-tenant keys the benches consume.
    for (std::size_t t = 0; t < r.tenants.size(); ++t) {
        const std::string prefix = "sys.tenant" + std::to_string(t);
        EXPECT_EQ(r.stats.getRequired(prefix + ".accesses"),
                  static_cast<double>(r.tenants[t].accesses));
        EXPECT_GE(r.stats.getRequired(prefix + ".ml2_fault_p99_ns"),
                  r.stats.getRequired(prefix + ".ml2_fault_p50_ns"));
    }
}

TEST(System, MemcloudSingleTenantWorkloadsStayTenantFree)
{
    // Non-memcloud runs must not grow tenant stats (the guard in the
    // access path keys off the empty vector).
    System sys(tinyConfig(Arch::Tmcc));
    const SimResult r = sys.run();
    EXPECT_TRUE(r.tenants.empty());
    for (const auto &[name, v] : r.stats.all())
        EXPECT_EQ(name.find("sys.tenant"), std::string::npos) << name;
}

TEST(System, MemcloudDeterministicAcrossRuns)
{
    SimConfig cfg = tinyConfig(Arch::Tmcc, "memcloud");
    cfg.tenants = 3;
    System a(cfg), b(cfg);
    const SimResult ra = a.run();
    const SimResult rb = b.run();
    EXPECT_EQ(ra.accesses, rb.accesses);
    EXPECT_EQ(ra.elapsed, rb.elapsed);
    ASSERT_EQ(ra.tenants.size(), rb.tenants.size());
    for (std::size_t t = 0; t < ra.tenants.size(); ++t) {
        EXPECT_EQ(ra.tenants[t].accesses, rb.tenants[t].accesses);
        EXPECT_EQ(ra.tenants[t].ml2Faults, rb.tenants[t].ml2Faults);
        EXPECT_EQ(ra.tenants[t].ml2FaultLatency.sampleSum(),
                  rb.tenants[t].ml2FaultLatency.sampleSum());
    }
}

} // namespace
} // namespace tmcc
