/**
 * @file
 * Setup-phase checkpointing: a restored System must reproduce a cold
 * run bit-for-bit (in-process and through the disk format), corrupt or
 * mismatched checkpoint files must be rejected with a cold-build
 * fallback, and concurrent restores from one shared checkpoint must be
 * race-free (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/runner.hh"
#include "sim/system.hh"

namespace tmcc
{
namespace
{

SimConfig
tinyConfig(Arch arch, const std::string &workload = "pageRank",
           double scale = 0.02)
{
    SimConfig cfg = SimConfig::scaledDefault();
    cfg.workload = workload;
    cfg.scale = scale;
    cfg.arch = arch;
    cfg.placementAccesses = 10'000;
    cfg.warmAccesses = 5'000;
    cfg.measureAccesses = 10'000;
    return cfg;
}

constexpr Arch allArchs[] = {
    Arch::NoCompression,    Arch::Compresso,
    Arch::Barebone,         Arch::BarebonePlusMl1,
    Arch::BarebonePlusMl2,  Arch::Tmcc,
};

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.storeAccesses, b.storeAccesses);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.tlbHits, b.tlbHits);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.llcWritebacks, b.llcWritebacks);
    EXPECT_EQ(a.cteHits, b.cteHits);
    EXPECT_EQ(a.cteMisses, b.cteMisses);
    EXPECT_EQ(a.ml1CteHit, b.ml1CteHit);
    EXPECT_EQ(a.ml1Parallel, b.ml1Parallel);
    EXPECT_EQ(a.ml1Mismatch, b.ml1Mismatch);
    EXPECT_EQ(a.ml1Serial, b.ml1Serial);
    EXPECT_EQ(a.ml2Accesses, b.ml2Accesses);
    EXPECT_EQ(a.footprintBytes, b.footprintBytes);
    EXPECT_EQ(a.dramUsedBytes, b.dramUsedBytes);
    EXPECT_EQ(a.avgL3MissLatencyNs, b.avgL3MissLatencyNs);
    EXPECT_EQ(a.readBusUtil, b.readBusUtil);
    EXPECT_EQ(a.writeBusUtil, b.writeBusUtil);
    // The full counter dump: every component, every stat.
    EXPECT_EQ(a.stats.all(), b.stats.all());
}

/** Build the (arch-invariant) checkpoint for `cfg` directly. */
std::shared_ptr<const SetupCheckpoint>
buildCheckpoint(const SimConfig &cfg)
{
    System sys(cfg);
    sys.setup(/*capture=*/true);
    return sys.captureCheckpoint();
}

/** Isolate each test from the process-wide store. */
class CheckpointStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CheckpointStore::global().clear();
        CheckpointStore::global().setDiskDir("");
    }
    void
    TearDown() override
    {
        CheckpointStore::global().clear();
        CheckpointStore::global().setDiskDir("");
    }
};

TEST(Checkpoint, RestoreBitIdenticalAcrossAllArchs)
{
    // One checkpoint serves every architecture: the key is the
    // arch-invariant config subset.
    const auto ckpt = buildCheckpoint(tinyConfig(Arch::NoCompression));

    const std::string path = ::testing::TempDir() + "/arch_sweep.ckpt";
    ASSERT_TRUE(ckpt->saveFile(path).ok());
    auto loaded = SetupCheckpoint::loadFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded.value()->key, ckpt->key);

    for (const Arch arch : allArchs) {
        SCOPED_TRACE(std::string("arch ") + archName(arch));
        const SimConfig cfg = tinyConfig(arch);

        System cold(cfg);
        const SimResult r_cold = cold.run();
        EXPECT_FALSE(r_cold.restoredFromCheckpoint);

        System warm(cfg, ckpt);
        const SimResult r_warm = warm.run();
        EXPECT_TRUE(r_warm.restoredFromCheckpoint);
        expectIdentical(r_cold, r_warm);

        System disk(cfg, loaded.value());
        const SimResult r_disk = disk.run();
        EXPECT_TRUE(r_disk.restoredFromCheckpoint);
        expectIdentical(r_cold, r_disk);
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, CaptureRunMatchesColdRun)
{
    // The capturing run itself must not perturb the simulation.
    const SimConfig cfg = tinyConfig(Arch::Tmcc);
    System cold(cfg);
    const SimResult r_cold = cold.run();

    System cap(cfg);
    cap.setup(/*capture=*/true);
    ASSERT_NE(cap.captureCheckpoint(), nullptr);
    expectIdentical(r_cold, cap.measure());
}

TEST(Checkpoint, NestedAndHugePageConfigsRoundTrip)
{
    for (const bool nested : {false, true}) {
        for (const bool huge : {false, true}) {
            SCOPED_TRACE("nested=" + std::to_string(nested) +
                         " huge=" + std::to_string(huge));
            SimConfig cfg = tinyConfig(Arch::Tmcc);
            cfg.nestedPaging = nested;
            cfg.hugePages = huge;

            System cold(cfg);
            const SimResult r_cold = cold.run();

            const auto ckpt = buildCheckpoint(cfg);
            const std::string path =
                ::testing::TempDir() + "/nested_huge.ckpt";
            ASSERT_TRUE(ckpt->saveFile(path).ok());
            auto loaded = SetupCheckpoint::loadFile(path);
            ASSERT_TRUE(loaded.ok()) << loaded.status().toString();

            System disk(cfg, loaded.value());
            expectIdentical(r_cold, disk.run());
            std::remove(path.c_str());
        }
    }
}

TEST(Checkpoint, KeyCoversInvariantSubsetOnly)
{
    const SimConfig base = tinyConfig(Arch::Tmcc);
    const std::string key = SetupCheckpoint::keyFor(base);

    // Arch and measured-phase knobs don't change the key...
    SimConfig same = base;
    same.arch = Arch::Compresso;
    same.measureAccesses *= 2;
    same.warmAccesses *= 2;
    same.tlbEntries = 32;
    EXPECT_EQ(SetupCheckpoint::keyFor(same), key);

    // ...while every setup-relevant knob does.
    SimConfig other = base;
    other.seed += 1;
    EXPECT_NE(SetupCheckpoint::keyFor(other), key);
    other = base;
    other.scale = 0.03;
    EXPECT_NE(SetupCheckpoint::keyFor(other), key);
    other = base;
    other.cores += 1;
    EXPECT_NE(SetupCheckpoint::keyFor(other), key);
    other = base;
    other.workload = "mcf";
    EXPECT_NE(SetupCheckpoint::keyFor(other), key);
    other = base;
    other.hugePages = true;
    EXPECT_NE(SetupCheckpoint::keyFor(other), key);
    other = base;
    other.nestedPaging = true;
    EXPECT_NE(SetupCheckpoint::keyFor(other), key);
    other = base;
    other.placementAccesses += 1;
    EXPECT_NE(SetupCheckpoint::keyFor(other), key);
}

// --- Disk-format rejection taxonomy -------------------------------

class CheckpointFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "/reject.ckpt";
        ckpt_ = buildCheckpoint(tinyConfig(Arch::NoCompression));
        ASSERT_TRUE(ckpt_->saveFile(path_).ok());
        std::FILE *f = std::fopen(path_.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        bytes_.resize(static_cast<std::size_t>(std::ftell(f)));
        std::fseek(f, 0, SEEK_SET);
        ASSERT_EQ(std::fread(bytes_.data(), 1, bytes_.size(), f),
                  bytes_.size());
        std::fclose(f);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    void
    rewrite(const std::vector<unsigned char> &bytes)
    {
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);
    }

    StatusCode
    loadCode()
    {
        auto loaded = SetupCheckpoint::loadFile(path_);
        EXPECT_FALSE(loaded.ok());
        return loaded.status().code();
    }

    std::string path_;
    std::shared_ptr<const SetupCheckpoint> ckpt_;
    std::vector<unsigned char> bytes_;
};

TEST_F(CheckpointFileTest, ValidFileLoads)
{
    auto loaded = SetupCheckpoint::loadFile(path_);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded.value()->key, ckpt_->key);
    EXPECT_EQ(loaded.value()->touchedFrames, ckpt_->touchedFrames);
    EXPECT_EQ(loaded.value()->regionFrames, ckpt_->regionFrames);
    EXPECT_EQ(loaded.value()->workloadStates, ckpt_->workloadStates);
}

TEST_F(CheckpointFileTest, BadMagicIsCorruption)
{
    auto bad = bytes_;
    bad[0] ^= 0xff;
    rewrite(bad);
    EXPECT_EQ(loadCode(), StatusCode::Corruption);
}

TEST_F(CheckpointFileTest, VersionMismatchIsCorruption)
{
    auto bad = bytes_;
    bad[8] += 1; // little-endian format version straight after magic
    rewrite(bad);
    auto loaded = SetupCheckpoint::loadFile(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::Corruption);
    EXPECT_NE(loaded.status().toString().find("version mismatch"),
              std::string::npos);
}

TEST_F(CheckpointFileTest, TruncationIsDetected)
{
    auto bad = bytes_;
    bad.resize(bad.size() / 2);
    rewrite(bad);
    EXPECT_EQ(loadCode(), StatusCode::Truncated);

    rewrite(std::vector<unsigned char>(bytes_.begin(),
                                       bytes_.begin() + 6));
    EXPECT_EQ(loadCode(), StatusCode::Truncated);
}

TEST_F(CheckpointFileTest, PayloadCorruptionFailsCrc)
{
    auto bad = bytes_;
    bad.back() ^= 0x01;
    rewrite(bad);
    EXPECT_EQ(loadCode(), StatusCode::ChecksumMismatch);
}

TEST_F(CheckpointFileTest, MissingFileIsAnError)
{
    auto loaded =
        SetupCheckpoint::loadFile(path_ + ".does-not-exist");
    EXPECT_FALSE(loaded.ok());
}

// --- Store behaviour ----------------------------------------------

TEST_F(CheckpointStoreTest, GridBuildsOnceThenRestores)
{
    CheckpointStore &store = CheckpointStore::global();

    std::vector<SimConfig> configs;
    for (const Arch arch : allArchs)
        configs.push_back(tinyConfig(arch));

    const auto results = SimRunner(1).run(configs);
    const auto s = store.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.memoryHits, configs.size() - 1);
    EXPECT_EQ(s.diskHits, 0u);

    unsigned restored = 0;
    for (const auto &r : results)
        restored += r.restoredFromCheckpoint ? 1 : 0;
    EXPECT_EQ(restored, configs.size() - 1);
}

TEST_F(CheckpointStoreTest, ConcurrentRestoresShareOneBuild)
{
    // Same-key grid over 4 worker threads: exactly one build, five
    // concurrent restores of the shared in-memory checkpoint.  The
    // payoff assertion is running this under TSan (CI).
    CheckpointStore &store = CheckpointStore::global();

    std::vector<SimConfig> configs;
    for (const Arch arch : allArchs)
        configs.push_back(tinyConfig(arch));

    std::vector<SimResult> serial;
    for (const auto &cfg : configs) {
        System sys(cfg);
        serial.push_back(sys.run());
    }

    const auto results = SimRunner(4).run(configs);
    const auto s = store.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.memoryHits, configs.size() - 1);

    ASSERT_EQ(results.size(), serial.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        expectIdentical(serial[i], results[i]);
    }
}

TEST_F(CheckpointStoreTest, DiskPersistenceAcrossClears)
{
    CheckpointStore &store = CheckpointStore::global();
    const std::string dir = ::testing::TempDir() + "/ckpt_store";
    store.setDiskDir(dir);

    const SimConfig cfg = tinyConfig(Arch::Tmcc);
    (void)SimRunner(1).run({cfg});
    EXPECT_EQ(store.stats().misses, 1u);

    // A cleared store simulates a new process: the checkpoint now
    // comes off disk.
    store.clear();
    const auto results = SimRunner(1).run({cfg});
    const auto s = store.stats();
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.diskHits, 1u);
    EXPECT_TRUE(results[0].restoredFromCheckpoint);

    std::filesystem::remove_all(dir);
}

TEST_F(CheckpointStoreTest, CorruptDiskFileFallsBackToColdBuild)
{
    CheckpointStore &store = CheckpointStore::global();
    const std::string dir = ::testing::TempDir() + "/ckpt_corrupt";
    std::filesystem::create_directories(dir);
    store.setDiskDir(dir);

    const SimConfig cfg = tinyConfig(Arch::Tmcc);
    const std::string path =
        dir + "/" +
        SetupCheckpoint::fileNameFor(SetupCheckpoint::keyFor(cfg));
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("definitely not a checkpoint", f);
        std::fclose(f);
    }

    const auto results = SimRunner(1).run({cfg});
    const auto s = store.stats();
    EXPECT_EQ(s.rejectedFiles, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.diskHits, 0u);
    EXPECT_FALSE(results[0].restoredFromCheckpoint);

    // The cold build republishes a good file over the corrupt one.
    store.clear();
    (void)SimRunner(1).run({cfg});
    EXPECT_EQ(store.stats().diskHits, 1u);

    std::filesystem::remove_all(dir);
}

TEST_F(CheckpointStoreTest, ResultsIdenticalWithStoreDisabledPath)
{
    // Direct System construction bypasses the store entirely; the
    // runner path restores.  Both must agree (the TMCC_CKPT=0 A/B).
    const SimConfig cfg = tinyConfig(Arch::Compresso);
    System direct(cfg);
    const SimResult r_direct = direct.run();

    (void)SimRunner(1).run({cfg}); // builds the checkpoint
    const auto restored = SimRunner(1).run({cfg});
    EXPECT_TRUE(restored[0].restoredFromCheckpoint);
    expectIdentical(r_direct, restored[0]);
}

TEST(CheckpointDeathTest, RejectsMalformedEnvironment)
{
    // threadsafe style re-executes the binary, so the store singleton
    // is constructed (and validates the environment) inside the child.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            setenv("TMCC_CKPT", "2", 1);
            CheckpointStore::global();
        },
        "TMCC_CKPT");
    EXPECT_DEATH(
        {
            setenv("TMCC_CKPT", "banana", 1);
            CheckpointStore::global();
        },
        "TMCC_CKPT");
    EXPECT_DEATH(
        {
            setenv("TMCC_CKPT_DIR", "", 1);
            CheckpointStore::global();
        },
        "TMCC_CKPT_DIR");
}

} // namespace
} // namespace tmcc
