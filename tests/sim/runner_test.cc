/**
 * @file
 * SimRunner: the parallel batch runner must be bit-identical to running
 * each System serially, return results in submission order, and handle
 * degenerate batches.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/system.hh"

namespace tmcc
{
namespace
{

SimConfig
tinyConfig(Arch arch, const std::string &workload, double scale = 0.02)
{
    SimConfig cfg = SimConfig::scaledDefault();
    cfg.workload = workload;
    cfg.scale = scale;
    cfg.arch = arch;
    cfg.placementAccesses = 10'000;
    cfg.warmAccesses = 5'000;
    cfg.measureAccesses = 10'000;
    return cfg;
}

/** A small grid mixing workloads and architectures. */
std::vector<SimConfig>
grid()
{
    return {
        tinyConfig(Arch::NoCompression, "pageRank"),
        tinyConfig(Arch::Compresso, "pageRank"),
        tinyConfig(Arch::Tmcc, "pageRank"),
        tinyConfig(Arch::Tmcc, "mcf"),
        tinyConfig(Arch::Barebone, "stream"),
        tinyConfig(Arch::Tmcc, "blackscholes", 0.1),
    };
}

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.storeAccesses, b.storeAccesses);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.tlbHits, b.tlbHits);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.llcWritebacks, b.llcWritebacks);
    EXPECT_EQ(a.cteHits, b.cteHits);
    EXPECT_EQ(a.cteMisses, b.cteMisses);
    EXPECT_EQ(a.cteMissesAfterTlbMiss, b.cteMissesAfterTlbMiss);
    EXPECT_EQ(a.ml1CteHit, b.ml1CteHit);
    EXPECT_EQ(a.ml1Parallel, b.ml1Parallel);
    EXPECT_EQ(a.ml1Mismatch, b.ml1Mismatch);
    EXPECT_EQ(a.ml1Serial, b.ml1Serial);
    EXPECT_EQ(a.ml2Accesses, b.ml2Accesses);
    EXPECT_EQ(a.footprintBytes, b.footprintBytes);
    EXPECT_EQ(a.dramUsedBytes, b.dramUsedBytes);
    // Bit-identical, not approximately equal: the parallel run must not
    // perturb any arithmetic.
    EXPECT_EQ(a.avgL3MissLatencyNs, b.avgL3MissLatencyNs);
    EXPECT_EQ(a.readBusUtil, b.readBusUtil);
    EXPECT_EQ(a.writeBusUtil, b.writeBusUtil);
    EXPECT_EQ(a.stats.all(), b.stats.all());
}

TEST(SimRunner, ParallelMatchesSerialBitIdentically)
{
    const std::vector<SimConfig> configs = grid();

    std::vector<SimResult> serial;
    for (const auto &cfg : configs) {
        System sys(cfg);
        serial.push_back(sys.run());
    }

    const std::vector<SimResult> par = SimRunner(4).run(configs);

    ASSERT_EQ(par.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i) + " (" +
                     configs[i].workload + ")");
        expectIdentical(serial[i], par[i]);
    }
}

TEST(SimRunner, ResultsInSubmissionOrder)
{
    // Distinguishable configs: different workloads leave different
    // footprints, so a reordering would be visible.
    std::vector<SimConfig> configs = {
        tinyConfig(Arch::NoCompression, "pageRank"),
        tinyConfig(Arch::NoCompression, "mcf"),
        tinyConfig(Arch::NoCompression, "stream"),
    };
    const auto results = SimRunner(3).run(configs);
    ASSERT_EQ(results.size(), 3u);

    for (std::size_t i = 0; i < configs.size(); ++i) {
        System sys(configs[i]);
        const SimResult want = sys.run();
        EXPECT_EQ(results[i].footprintBytes, want.footprintBytes)
            << "result " << i << " out of submission order";
        EXPECT_EQ(results[i].accesses, want.accesses);
    }
}

TEST(SimRunner, EmptyBatch)
{
    EXPECT_TRUE(SimRunner(4).run({}).empty());
}

TEST(SimRunner, SingleConfigRunsInline)
{
    const std::vector<SimConfig> one = {
        tinyConfig(Arch::Tmcc, "pageRank")};
    const auto results = SimRunner(8).run(one);
    ASSERT_EQ(results.size(), 1u);

    System sys(one[0]);
    expectIdentical(sys.run(), results[0]);
}

TEST(SimRunner, MoreJobsThanConfigs)
{
    const std::vector<SimConfig> two = {
        tinyConfig(Arch::NoCompression, "pageRank"),
        tinyConfig(Arch::Compresso, "pageRank"),
    };
    const auto results = SimRunner(16).run(two);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_GT(results[0].accesses, 0u);
    EXPECT_GT(results[1].accesses, 0u);
}

TEST(SimRunner, RunConfigsConvenience)
{
    const std::vector<SimConfig> one = {
        tinyConfig(Arch::NoCompression, "pageRank")};
    const auto results = runConfigs(one, 2);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].accesses, 0u);
}

TEST(SimRunner, JobsAccessor)
{
    EXPECT_EQ(SimRunner(3).jobs(), 3u);
    // jobs = 0 resolves to the environment/hardware default.
    EXPECT_GE(SimRunner(0).jobs(), 1u);
    EXPECT_GE(SimRunner::defaultJobs(), 1u);
}

TEST(SimRunnerDeathTest, RejectsMalformedTmccJobs)
{
    EXPECT_DEATH(
        {
            setenv("TMCC_JOBS", "banana", 1);
            SimRunner::defaultJobs();
        },
        "TMCC_JOBS");
    EXPECT_DEATH(
        {
            setenv("TMCC_JOBS", "0", 1);
            SimRunner::defaultJobs();
        },
        "TMCC_JOBS");
    EXPECT_DEATH(
        {
            setenv("TMCC_JOBS", "-3", 1);
            SimRunner::defaultJobs();
        },
        "TMCC_JOBS");
}

} // namespace
} // namespace tmcc
