/**
 * @file
 * ShardRunner supervisor: the multi-process sweep must merge
 * bit-identically with a serial SimRunner run — including across the
 * whole failure taxonomy (worker SIGKILL mid-shard, hung worker reaped
 * by the watchdog, corrupt result file rejected by CRC, retry
 * exhaustion) — and an interrupted sweep must resume by re-running only
 * the missing/failed shards.
 *
 * This binary is its own worker: main() dispatches `--shard-spec FILE`
 * to ShardRunner::workerMain before gtest initialization, and the
 * supervisor under test re-execs /proc/self/exe.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "sim/runner.hh"
#include "sim/shard_runner.hh"
#include "sim/sweep_manifest.hh"

namespace tmcc
{
namespace
{

namespace fs = std::filesystem;

SimConfig
tinyConfig(Arch arch, const std::string &workload, double scale = 0.02)
{
    SimConfig cfg = SimConfig::scaledDefault();
    cfg.workload = workload;
    cfg.scale = scale;
    cfg.arch = arch;
    cfg.placementAccesses = 10'000;
    cfg.warmAccesses = 5'000;
    cfg.measureAccesses = 10'000;
    return cfg;
}

/** A small grid mixing workloads and architectures. */
std::vector<SimConfig>
grid()
{
    return {
        tinyConfig(Arch::NoCompression, "pageRank"),
        tinyConfig(Arch::Tmcc, "pageRank"),
        tinyConfig(Arch::Compresso, "stream"),
        tinyConfig(Arch::Tmcc, "blackscholes", 0.1),
    };
}

/** Serial ground truth, computed once per test binary. */
const std::vector<SimResult> &
serialBaseline()
{
    static const std::vector<SimResult> results =
        SimRunner(1).run(grid());
    return results;
}

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.storeAccesses, b.storeAccesses);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.tlbHits, b.tlbHits);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.llcWritebacks, b.llcWritebacks);
    EXPECT_EQ(a.cteHits, b.cteHits);
    EXPECT_EQ(a.cteMisses, b.cteMisses);
    EXPECT_EQ(a.ml2Accesses, b.ml2Accesses);
    EXPECT_EQ(a.footprintBytes, b.footprintBytes);
    EXPECT_EQ(a.dramUsedBytes, b.dramUsedBytes);
    // Bit-identical, not approximately equal: the process boundary
    // (serialize, publish, CRC, merge) must not perturb a single bit.
    EXPECT_EQ(a.avgL3MissLatencyNs, b.avgL3MissLatencyNs);
    EXPECT_EQ(a.readBusUtil, b.readBusUtil);
    EXPECT_EQ(a.writeBusUtil, b.writeBusUtil);
    EXPECT_EQ(a.stats.all(), b.stats.all());
    EXPECT_EQ(a.l3MissLatency.buckets(), b.l3MissLatency.buckets());
    EXPECT_EQ(a.l3MissLatency.sampleSum(), b.l3MissLatency.sampleSum());
    EXPECT_EQ(a.pageWalkLatency.buckets(), b.pageWalkLatency.buckets());
}

class ShardRunnerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("TMCC_SHARD_TEST_KILL");
        ::unsetenv("TMCC_SHARD_TEST_HANG");
        ::unsetenv("TMCC_SHARD_TEST_CORRUPT");
        dir_ = fs::temp_directory_path() /
               ("tmcc_shard_runner_test_" + std::to_string(::getpid()) +
                "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        ::unsetenv("TMCC_SHARD_TEST_KILL");
        ::unsetenv("TMCC_SHARD_TEST_HANG");
        ::unsetenv("TMCC_SHARD_TEST_CORRUPT");
        fs::remove_all(dir_);
    }

    /** Fast-retry options targeting this test's sweep directory. */
    ShardOptions
    options(unsigned shards = 3) const
    {
        ShardOptions o;
        o.shards = shards;
        o.workerJobs = 1;
        o.maxAttempts = 3;
        o.backoffSeconds = 0.05;
        o.sweepDir = dir_.string();
        o.workerPath = "/proc/self/exe";
        o.verbose = false;
        return o;
    }

    fs::path dir_;
};

void
expectMergedMatchesSerial(const SweepOutcome &out)
{
    const auto &serial = serialBaseline();
    ASSERT_EQ(out.results.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        ASSERT_TRUE(out.resultValid[i]);
        expectIdentical(serial[i], out.results[i]);
    }
}

TEST_F(ShardRunnerTest, MergedResultsBitIdenticalToSerial)
{
    SweepOutcome out = ShardRunner(options()).run(grid());
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.completedShards, 3u);
    EXPECT_EQ(out.failedShards, 0u);
    EXPECT_EQ(out.retries, 0u);
    expectMergedMatchesSerial(out);
}

TEST_F(ShardRunnerTest, MoreShardsThanConfigsClampsPartition)
{
    const std::vector<SimConfig> two = {grid()[0], grid()[1]};
    SweepOutcome out = ShardRunner(options(8)).run(two);
    EXPECT_TRUE(out.ok());
    // Partition clamps to one shard per config.
    EXPECT_EQ(out.shards.size(), 2u);
    EXPECT_TRUE(out.resultValid[0]);
    EXPECT_TRUE(out.resultValid[1]);
    expectIdentical(serialBaseline()[0], out.results[0]);
    expectIdentical(serialBaseline()[1], out.results[1]);
}

TEST_F(ShardRunnerTest, WorkerSigkillMidShardIsRetriedBitIdentically)
{
    // Shard 1's first attempt dies by SIGKILL after finishing its
    // first config (mid-shard, nothing published); the retry runs
    // clean.
    ::setenv("TMCC_SHARD_TEST_KILL", "1@1", 1);
    SweepOutcome out = ShardRunner(options()).run(grid());
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.retries, 1u);
    EXPECT_EQ(out.failedShards, 0u);
    EXPECT_EQ(out.completedShards, 3u);
    ASSERT_EQ(out.shards.size(), 3u);
    EXPECT_EQ(out.shards[1].state, ShardState::Done);
    EXPECT_EQ(out.shards[1].attempts, 2u);
    expectMergedMatchesSerial(out);
}

TEST_F(ShardRunnerTest, HungWorkerIsKilledByWatchdogAndRetried)
{
    // Shard 0's first attempt wedges forever after its first config;
    // the watchdog must SIGKILL it and the retry completes.
    ::setenv("TMCC_SHARD_TEST_HANG", "0@1", 1);
    ShardOptions o = options();
    o.timeoutSeconds = 3.0;
    SweepOutcome out = ShardRunner(o).run(grid());
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.retries, 1u);
    ASSERT_EQ(out.shards.size(), 3u);
    EXPECT_EQ(out.shards[0].state, ShardState::Done);
    EXPECT_EQ(out.shards[0].attempts, 2u);
    expectMergedMatchesSerial(out);
}

TEST_F(ShardRunnerTest, CorruptResultFileIsRejectedAndRetried)
{
    // Shard 0's first attempt publishes a result file whose payload
    // fails its CRC; the supervisor must reject it (not merge garbage)
    // and retry.
    ::setenv("TMCC_SHARD_TEST_CORRUPT", "0@1", 1);
    SweepOutcome out = ShardRunner(options()).run(grid());
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.retries, 1u);
    ASSERT_EQ(out.shards.size(), 3u);
    EXPECT_EQ(out.shards[0].state, ShardState::Done);
    EXPECT_EQ(out.shards[0].attempts, 2u);
    expectMergedMatchesSerial(out);
}

TEST_F(ShardRunnerTest, RetryExhaustionDegradesGracefully)
{
    // Shard 1 dies on every attempt: the sweep must finish everything
    // else, mark shard 1 Failed in the manifest with its attempt count
    // and last error, and report not-ok.
    ::setenv("TMCC_SHARD_TEST_KILL", "1@*", 1);
    ShardOptions o = options();
    o.maxAttempts = 2;
    SweepOutcome out = ShardRunner(o).run(grid());
    EXPECT_FALSE(out.ok());
    EXPECT_EQ(out.failedShards, 1u);
    EXPECT_EQ(out.retries, 1u);
    EXPECT_EQ(out.completedShards, 2u);
    ASSERT_EQ(out.shards.size(), 3u);
    EXPECT_EQ(out.shards[1].state, ShardState::Failed);
    EXPECT_EQ(out.shards[1].attempts, 2u);
    EXPECT_NE(out.shards[1].lastError.find("signal 9"),
              std::string::npos);

    // Every config outside the failed shard merged bit-identically;
    // the failed shard's configs are flagged invalid.
    const auto &serial = serialBaseline();
    for (std::size_t i = 0; i < out.results.size(); ++i) {
        const bool onFailedShard =
            std::find(out.shards[1].configIndices.begin(),
                      out.shards[1].configIndices.end(),
                      i) != out.shards[1].configIndices.end();
        EXPECT_EQ(out.resultValid[i], !onFailedShard);
        if (out.resultValid[i])
            expectIdentical(serial[i], out.results[i]);
    }

    // The durable manifest agrees with the in-memory outcome.
    const auto manifest =
        SweepManifest::load((dir_ / "MANIFEST.tmccsweep").string());
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ(manifest->shards[1].state, ShardState::Failed);
    EXPECT_EQ(manifest->shards[1].attempts, 2u);
}

TEST_F(ShardRunnerTest, ResumeRerunsOnlyMissingShards)
{
    // First pass: shard 2 exhausts one attempt and is marked Failed.
    ::setenv("TMCC_SHARD_TEST_KILL", "2@*", 1);
    ShardOptions o = options();
    o.maxAttempts = 1;
    SweepOutcome first = ShardRunner(o).run(grid());
    EXPECT_FALSE(first.ok());
    EXPECT_EQ(first.completedShards, 2u);

    // Second pass in the same sweep dir, hook removed: the two Done
    // shards resume from their result files (no re-run), only the
    // failed shard gets a fresh attempt budget.
    ::unsetenv("TMCC_SHARD_TEST_KILL");
    SweepOutcome second = ShardRunner(options()).run(grid());
    EXPECT_TRUE(second.ok());
    EXPECT_EQ(second.resumedShards, 2u);
    EXPECT_EQ(second.completedShards, 3u);
    EXPECT_EQ(second.shards[2].attempts, 1u);
    expectMergedMatchesSerial(second);
}

TEST_F(ShardRunnerTest, ResumeRejectsTamperedResultFile)
{
    // Complete a sweep, then damage one published result: resume must
    // re-run that shard rather than merge the damaged file.
    SweepOutcome first = ShardRunner(options()).run(grid());
    ASSERT_TRUE(first.ok());

    const std::string victim = (dir_ / "shard-001.result").string();
    FILE *f = std::fopen(victim.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -3, SEEK_END);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);

    SweepOutcome second = ShardRunner(options()).run(grid());
    EXPECT_TRUE(second.ok());
    EXPECT_EQ(second.resumedShards, 2u); // shard 1 re-ran
    EXPECT_EQ(second.shards[1].attempts, 1u);
    expectMergedMatchesSerial(second);
}

using ShardRunnerDeathTest = ShardRunnerTest;

TEST_F(ShardRunnerDeathTest, SweepDirOwnedByOtherGridIsFatal)
{
    SweepOutcome first = ShardRunner(options()).run(grid());
    ASSERT_TRUE(first.ok());

    std::vector<SimConfig> other = grid();
    other[0].seed ^= 0x5a5a;
    EXPECT_DEATH(ShardRunner(options()).run(other),
                 "different sweep");
}

} // namespace
} // namespace tmcc

int
main(int argc, char **argv)
{
    // Worker re-entry: the supervisor under test re-execs this binary
    // with `--shard-spec FILE`, which must not fall into gtest.
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--shard-spec") == 0)
            return tmcc::ShardRunner::workerMain(argv[i + 1]);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
