/**
 * @file
 * The batched kernel's contract: `--kernel=batch` produces a SimResult
 * byte-identical to the scalar oracle on every architecture, with and
 * without tracing and epoch stats, under native / nested / huge-page
 * translation, and in interval-sampling mode.  Plus the strict
 * validation of the new --kernel / --sample knobs (death tests).
 *
 * Cross-build identity: with TMCC_IDENTITY_DIR set, the suite also
 * writes one fingerprint file per (arch x kernel x mode) combination
 * — or compares against files already present.  CI builds the tree
 * with the SIMD probe engine (generic and -march=native) and with
 * -DTMCC_SIMD=OFF, runs this suite in each pointing at one shared
 * directory, and any probe-engine divergence fails the comparison.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/serial.hh"
#include "common/simd.hh"
#include "common/trace.hh"
#include "sim/sweep_manifest.hh"
#include "sim/system.hh"

namespace tmcc
{
namespace
{

SimConfig
tinyConfig(Arch arch, const std::string &workload = "pageRank")
{
    SimConfig cfg = SimConfig::scaledDefault();
    cfg.workload = workload;
    cfg.scale = 0.02;
    cfg.arch = arch;
    cfg.placementAccesses = 20'000;
    cfg.warmAccesses = 10'000;
    cfg.measureAccesses = 20'000;
    return cfg;
}

constexpr Arch allArchs[] = {
    Arch::NoCompression,    Arch::Compresso,
    Arch::Barebone,         Arch::BarebonePlusMl1,
    Arch::BarebonePlusMl2,  Arch::Tmcc,
};

/**
 * Canonical byte string of a SimResult with the wall-clock-only fields
 * zeroed (they legitimately differ run to run and are documented as
 * excluded from bit-identity comparisons).
 */
std::vector<std::uint8_t>
fingerprint(SimResult res)
{
    res.setupSeconds = 0.0;
    res.measureSeconds = 0.0;
    res.restoredFromCheckpoint = false;
    ByteWriter w;
    serializeSimResult(w, res);
    return w.take();
}

SimResult
runWith(SimConfig cfg, KernelMode kernel)
{
    cfg.kernel = kernel;
    System sys(cfg);
    return sys.measure();
}

/**
 * Cross-build fingerprint exchange (TMCC_IDENTITY_DIR): the first
 * build to run writes `<tag>.fp`; later builds (different SIMD flags,
 * same sources) compare byte for byte.  Files also record which build
 * wrote them so a mismatch message names both sides.
 */
void
checkCrossBuild(const std::string &tag,
                const std::vector<std::uint8_t> &fp)
{
    const char *dir = std::getenv("TMCC_IDENTITY_DIR");
    if (dir == nullptr || *dir == '\0')
        return;
    const std::string path = std::string(dir) + "/" + tag + ".fp";
    std::ifstream in(path, std::ios::binary);
    if (in) {
        std::vector<std::uint8_t> prev(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        EXPECT_EQ(prev, fp)
            << "cross-build fingerprint mismatch for " << tag
            << " (this build: " << simd::Active::name << "): " << path;
        return;
    }
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out.write(reinterpret_cast<const char *>(fp.data()),
              static_cast<std::streamsize>(fp.size()));
}

void
expectKernelIdentity(const SimConfig &cfg, const std::string &tag = "")
{
    const SimResult scalar = runWith(cfg, KernelMode::Scalar);
    const SimResult batch = runWith(cfg, KernelMode::Batch);
    ASSERT_GT(scalar.accesses, 0u);
    const std::vector<std::uint8_t> fp = fingerprint(scalar);
    EXPECT_EQ(fp, fingerprint(batch));
    if (!tag.empty())
        checkCrossBuild(tag, fp);
}

TEST(KernelIdentity, AllSixArchitectures)
{
    for (Arch arch : allArchs) {
        SCOPED_TRACE(archName(arch));
        expectKernelIdentity(tinyConfig(arch),
                             std::string("exact_") + archName(arch));
    }
}

TEST(KernelIdentity, TmccOnIrregularWorkload)
{
    // mcf exercises the embedded-CTE parallel/mismatch paths harder
    // than the graph workload.
    expectKernelIdentity(tinyConfig(Arch::Tmcc, "mcf"));
}

TEST(KernelIdentity, TmccOnMemcloud)
{
    // Multi-tenant streams route the tenant id through System state the
    // scalar and batch kernels share; the fingerprint includes the
    // per-tenant stats, so misattribution in either kernel shows up.
    SimConfig cfg = tinyConfig(Arch::Tmcc, "memcloud");
    cfg.tenants = 4;
    expectKernelIdentity(cfg, "exact_memcloud");
}

TEST(KernelIdentity, WithEpochStats)
{
    for (Arch arch : {Arch::NoCompression, Arch::Tmcc}) {
        SCOPED_TRACE(archName(arch));
        SimConfig cfg = tinyConfig(arch);
        cfg.statsInterval = 5'000;
        expectKernelIdentity(cfg);
    }
}

TEST(KernelIdentity, UnderTracing)
{
    // With a Tracer active the batch kernel selects its Tracing=true
    // instantiation; results must still match the scalar oracle.
    const std::string dir = ::testing::TempDir();
    SimConfig cfg = tinyConfig(Arch::Tmcc);

    Tracer scalar_tr(dir + "/kernel_identity_scalar.json");
    Tracer::setActive(&scalar_tr);
    const SimResult scalar = runWith(cfg, KernelMode::Scalar);
    Tracer::setActive(nullptr);

    Tracer batch_tr(dir + "/kernel_identity_batch.json");
    Tracer::setActive(&batch_tr);
    const SimResult batch = runWith(cfg, KernelMode::Batch);
    Tracer::setActive(nullptr);

    EXPECT_EQ(fingerprint(scalar), fingerprint(batch));
    std::remove((dir + "/kernel_identity_scalar.json").c_str());
    std::remove((dir + "/kernel_identity_batch.json").c_str());
}

TEST(KernelIdentity, NestedPaging)
{
    SimConfig cfg = tinyConfig(Arch::Tmcc);
    cfg.nestedPaging = true;
    expectKernelIdentity(cfg);
}

TEST(KernelIdentity, HugePages)
{
    SimConfig cfg = tinyConfig(Arch::Tmcc);
    cfg.hugePages = true;
    expectKernelIdentity(cfg);
}

SimConfig
sampledConfig(Arch arch)
{
    SimConfig cfg = tinyConfig(arch);
    cfg.sampleWindows = 4;
    cfg.sampleWindowAccesses = 2'000;
    cfg.sampleWarmAccesses = 500;
    return cfg;
}

TEST(KernelIdentity, SampledModeMatchesAcrossKernels)
{
    // Interval sampling fast-forwards between windows; the functional
    // path is shared, so batch must still match scalar byte for byte.
    for (Arch arch : allArchs) {
        SCOPED_TRACE(archName(arch));
        expectKernelIdentity(sampledConfig(arch),
                             std::string("sampled_") + archName(arch));
    }
}

TEST(KernelIdentity, SampledRunProducesCiSummary)
{
    const SimResult r = runWith(sampledConfig(Arch::Tmcc),
                                KernelMode::Batch);
    EXPECT_EQ(r.sample.windows, 4u);
    EXPECT_EQ(r.sample.windowAccesses, 2'000u);
    EXPECT_EQ(r.sample.warmupAccesses, 500u);
    EXPECT_GT(r.sample.ffAccesses, 0u);
    ASSERT_EQ(r.sample.metrics.size(), 10u);
    EXPECT_EQ(r.sample.metrics[0].name, "accesses_per_ns");
    for (const SampleMetric &m : r.sample.metrics) {
        SCOPED_TRACE(m.name);
        EXPECT_GE(m.ci95, 0.0);
        EXPECT_TRUE(r.stats.has("sys.sample." + m.name + ".mean"));
        EXPECT_TRUE(r.stats.has("sys.sample." + m.name + ".ci95"));
    }
    EXPECT_EQ(r.stats.get("sys.sample.windows"), 4.0);
    EXPECT_GT(r.sample.metrics[0].mean, 0.0);
    // Every window measured at least w accesses per core.
    EXPECT_GE(r.accesses, 4u * 2'000u);
    EXPECT_GT(r.elapsed, 0u);
    // Totals accumulate only inside windows, so a sampled run counts
    // fewer measured accesses than the exact run it approximates.
    const SimResult exact = runWith(tinyConfig(Arch::Tmcc),
                                    KernelMode::Batch);
    EXPECT_LT(r.accesses, exact.accesses);
}

TEST(KernelIdentity, ExactRunHasEmptySampleSummary)
{
    const SimResult r = runWith(tinyConfig(Arch::NoCompression),
                                KernelMode::Batch);
    EXPECT_EQ(r.sample.windows, 0u);
    EXPECT_TRUE(r.sample.metrics.empty());
    EXPECT_FALSE(r.stats.has("sys.sample.windows"));
}

// ---- strict validation (death tests) ------------------------------

using KernelValidationDeath = ::testing::Test;

TEST(KernelValidationDeath, RejectsOversubscribedSampling)
{
    SimConfig cfg = tinyConfig(Arch::NoCompression);
    cfg.sampleWindows = 100;
    cfg.sampleWindowAccesses = 1'000; // 100 x 1000 > 20k measured
    EXPECT_EXIT({ System(cfg).measure(); },
                ::testing::ExitedWithCode(1),
                "windows x \\(window \\+ warm-up\\)");
}

TEST(KernelValidationDeath, RejectsEpochsFinerThanWindows)
{
    SimConfig cfg = sampledConfig(Arch::NoCompression);
    cfg.statsInterval = 100; // < window size 2000
    EXPECT_EXIT({ System(cfg).measure(); },
                ::testing::ExitedWithCode(1),
                "--stats-interval must be at least the sample window");
}

TEST(KernelValidationDeath, RejectsSampleSizesWithoutWindowCount)
{
    SimConfig cfg = tinyConfig(Arch::NoCompression);
    cfg.sampleWindowAccesses = 10;
    EXPECT_EXIT({ System(cfg).measure(); },
                ::testing::ExitedWithCode(1),
                "window count is zero");
}

TEST(KernelValidationDeath, ParseKernelModeRejectsGarbage)
{
    EXPECT_EXIT(parseKernelMode("--kernel", "vectorized"),
                ::testing::ExitedWithCode(1),
                "--kernel must be \"scalar\" or \"batch\"");
    EXPECT_EXIT(parseKernelMode("TMCC_KERNEL", ""),
                ::testing::ExitedWithCode(1),
                "TMCC_KERNEL must be \"scalar\" or \"batch\"");
}

TEST(KernelValidationDeath, ParseSampleSpecRejectsGarbage)
{
    SimConfig cfg;
    const char *bad[] = {
        "",  "5",      "0:100", "5:0",   "5:100:0",
        "x", "5:x",    "5:100:100:9",    "5:-3",
        ":", "5:", ":5", "99999999999999999999:5",
    };
    for (const char *s : bad) {
        SCOPED_TRACE(s);
        EXPECT_EXIT(parseSampleSpec("--sample", s, cfg),
                    ::testing::ExitedWithCode(1),
                    "--sample must be k:w\\[:warm\\]");
    }
}

TEST(KernelValidation, ParseAcceptsGoodSpecs)
{
    SimConfig cfg;
    parseSampleSpec("--sample", "30:10000", cfg);
    EXPECT_EQ(cfg.sampleWindows, 30u);
    EXPECT_EQ(cfg.sampleWindowAccesses, 10'000u);
    EXPECT_EQ(cfg.sampleWarmAccesses, 10'000u); // defaults to w
    parseSampleSpec("--sample", "8:500:125", cfg);
    EXPECT_EQ(cfg.sampleWindows, 8u);
    EXPECT_EQ(cfg.sampleWindowAccesses, 500u);
    EXPECT_EQ(cfg.sampleWarmAccesses, 125u);
    EXPECT_EQ(parseKernelMode("--kernel", "scalar"),
              KernelMode::Scalar);
    EXPECT_EQ(parseKernelMode("--kernel", "batch"), KernelMode::Batch);
}

} // namespace
} // namespace tmcc
