/**
 * @file
 * Sweep artifacts: SimConfig/SimResult serialization must round-trip
 * bit-exactly (the sharded-sweep bit-identity invariant rests on it),
 * the grid key must be deterministic and config-sensitive, and damaged
 * files must be rejected with the right Status — never trusted, never
 * fatal.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/serial.hh"
#include "common/status.hh"
#include "common/versioned_file.hh"
#include "sim/sweep_manifest.hh"

namespace tmcc
{
namespace
{

namespace fs = std::filesystem;

class SweepManifestTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("tmcc_sweep_manifest_test_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    fs::path dir_;
};

/** A config with every field nudged off its default. */
SimConfig
fancyConfig()
{
    SimConfig cfg = SimConfig::scaledDefault();
    cfg.workload = "trace:/tmp/some weird päth.trace";
    cfg.scale = 0.137;
    cfg.cores = 7;
    cfg.seed = 0xdeadbeefcafe;
    cfg.arch = Arch::BarebonePlusMl2;
    cfg.cpuGhz = 3.14159;
    cfg.l1Cycles = 4;
    cfg.l2Cycles = 13;
    cfg.l3Cycles = 49;
    cfg.nocToMcNs = 17.25;
    cfg.tlbEntries = 1023;
    cfg.cteBufferEntries = 63;
    cfg.hugePages = true;
    cfg.nestedPaging = true;
    cfg.memOverlapFactor = 1.75;
    cfg.hierarchy.prefetchers = false;
    cfg.hierarchy.l3Bytes = 3 << 20;
    cfg.dram.tClNs = 13.75;
    cfg.dram.writeQueueDepth = 48;
    cfg.interleave.numMcs = 2;
    cfg.compresso.cteCacheBytes = 12345;
    cfg.compresso.repackBlockFraction = 0.11;
    cfg.osMc.cteCacheBytes = 54321;
    cfg.osMc.embedCtes = false;
    cfg.osMc.faults.ml2BitFlipRate = 1e-7;
    cfg.osMc.faults.cteBitFlipRate = 2e-8;
    cfg.osMc.faults.ptbBitFlipRate = 3e-9;
    cfg.osMc.faults.seed = 99;
    cfg.dramBudgetFraction = 0.625;
    cfg.placementAccesses = 111;
    cfg.warmAccesses = 222;
    cfg.measureAccesses = 333;
    cfg.statsInterval = 44;
    cfg.kernel = KernelMode::Batch;
    cfg.sampleWindows = 5;
    cfg.sampleWindowAccesses = 50;
    cfg.sampleWarmAccesses = 10;
    cfg.tenants = 13;
    cfg.tenantChurn = 0.0675;
    cfg.tenantZipf = 1.375;
    return cfg;
}

/** A result with every field (incl. histograms/epochs/stats) nonzero. */
SimResult
fancyResult()
{
    SimResult res;
    res.accesses = 1'000'001;
    res.storeAccesses = 300'000;
    res.elapsed = 123'456'789;
    res.tlbMisses = 42;
    res.tlbHits = 58;
    res.llcMisses = 777;
    res.llcWritebacks = 333;
    res.cteHits = 11;
    res.cteMisses = 22;
    res.cteMissesAfterTlbMiss = 7;
    res.ml1CteHit = 1;
    res.ml1Parallel = 2;
    res.ml1Mismatch = 3;
    res.ml1Serial = 4;
    res.ml2Accesses = 5;
    res.avgL3MissLatencyNs = 55.125;
    // Irrational-ish samples so the running sums exercise low bits.
    res.l3MissLatency.sample(1.0 / 3.0);
    res.l3MissLatency.sample(999.99);
    res.l3MissLatency.sample(-5.0);    // underflow
    res.l3MissLatency.sample(2000.0);  // overflow
    res.pageWalkLatency.sample(100.0 / 7.0);
    res.ml2FaultLatency.sample(19999.0);
    res.readBusUtil = 0.1 + 0.2; // deliberately not 0.3 exactly
    res.writeBusUtil = 1.0 / 7.0;
    res.footprintBytes = 1 << 30;
    res.dramUsedBytes = 987'654'321;
    res.setupSeconds = 1.5;
    res.measureSeconds = 2.25;
    res.restoredFromCheckpoint = true;
    res.stats.set("l3.misses", 777.0);
    res.stats.set("mc.cte_cache.hits", 1.0 / 3.0);
    EpochStat e;
    e.accesses = 500;
    e.deltaAccesses = 250;
    e.endTick = 9999;
    e.ml2AccessRate = 0.125;
    e.cteHitRate = 2.0 / 3.0;
    e.dramUsedBytes = 1e9;
    e.delta.set("l3.misses", 3.0);
    res.epochs.push_back(e);
    res.epochs.push_back(EpochStat{});
    res.sample.windows = 5;
    res.sample.windowAccesses = 50;
    res.sample.warmupAccesses = 10;
    res.sample.ffAccesses = 123'456;
    res.sample.metrics.push_back({"accesses_per_ns", 1.0 / 3.0, 0.01});
    res.sample.metrics.push_back({"tlb_miss_rate", 0.0625, 0.0});
    TenantStat t0;
    t0.accesses = 123'456;
    t0.ml2Faults = 789;
    t0.footprintBytes = 32ULL << 20;
    t0.ml2FaultLatency.sample(100.0 / 3.0);
    t0.ml2FaultLatency.sample(25000.0); // overflow
    res.tenants.push_back(std::move(t0));
    res.tenants.push_back(TenantStat{});
    return res;
}

void
expectConfigEqual(const SimConfig &a, const SimConfig &b)
{
    ByteWriter wa, wb;
    serializeSimConfig(wa, a);
    serializeSimConfig(wb, b);
    EXPECT_EQ(wa.buffer(), wb.buffer());
    // Spot-check a few fields directly so a serializer that drops a
    // field on both sides can't fake the comparison above.
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scale, b.scale);
    EXPECT_EQ(a.arch, b.arch);
    EXPECT_EQ(a.osMc.faults.ml2BitFlipRate, b.osMc.faults.ml2BitFlipRate);
    EXPECT_EQ(a.statsInterval, b.statsInterval);
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.sampleWindows, b.sampleWindows);
    EXPECT_EQ(a.sampleWindowAccesses, b.sampleWindowAccesses);
    EXPECT_EQ(a.sampleWarmAccesses, b.sampleWarmAccesses);
    EXPECT_EQ(a.tenants, b.tenants);
    EXPECT_EQ(a.tenantChurn, b.tenantChurn);
    EXPECT_EQ(a.tenantZipf, b.tenantZipf);
}

void
expectResultEqual(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.storeAccesses, b.storeAccesses);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.tlbHits, b.tlbHits);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.llcWritebacks, b.llcWritebacks);
    EXPECT_EQ(a.cteHits, b.cteHits);
    EXPECT_EQ(a.cteMisses, b.cteMisses);
    EXPECT_EQ(a.cteMissesAfterTlbMiss, b.cteMissesAfterTlbMiss);
    EXPECT_EQ(a.ml1CteHit, b.ml1CteHit);
    EXPECT_EQ(a.ml1Parallel, b.ml1Parallel);
    EXPECT_EQ(a.ml1Mismatch, b.ml1Mismatch);
    EXPECT_EQ(a.ml1Serial, b.ml1Serial);
    EXPECT_EQ(a.ml2Accesses, b.ml2Accesses);
    // Doubles bit-exact, not approximately equal.
    EXPECT_EQ(a.avgL3MissLatencyNs, b.avgL3MissLatencyNs);
    EXPECT_EQ(a.readBusUtil, b.readBusUtil);
    EXPECT_EQ(a.writeBusUtil, b.writeBusUtil);
    EXPECT_EQ(a.footprintBytes, b.footprintBytes);
    EXPECT_EQ(a.dramUsedBytes, b.dramUsedBytes);
    EXPECT_EQ(a.setupSeconds, b.setupSeconds);
    EXPECT_EQ(a.measureSeconds, b.measureSeconds);
    EXPECT_EQ(a.restoredFromCheckpoint, b.restoredFromCheckpoint);
    EXPECT_EQ(a.stats.all(), b.stats.all());
    EXPECT_EQ(a.l3MissLatency.buckets(), b.l3MissLatency.buckets());
    EXPECT_EQ(a.l3MissLatency.underflow(), b.l3MissLatency.underflow());
    EXPECT_EQ(a.l3MissLatency.overflow(), b.l3MissLatency.overflow());
    EXPECT_EQ(a.l3MissLatency.sampleSum(), b.l3MissLatency.sampleSum());
    EXPECT_EQ(a.l3MissLatency.count(), b.l3MissLatency.count());
    EXPECT_EQ(a.l3MissLatency.mean(), b.l3MissLatency.mean());
    EXPECT_EQ(a.pageWalkLatency.sampleSum(),
              b.pageWalkLatency.sampleSum());
    EXPECT_EQ(a.ml2FaultLatency.overflow(), b.ml2FaultLatency.overflow());
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        EXPECT_EQ(a.epochs[i].accesses, b.epochs[i].accesses);
        EXPECT_EQ(a.epochs[i].deltaAccesses, b.epochs[i].deltaAccesses);
        EXPECT_EQ(a.epochs[i].endTick, b.epochs[i].endTick);
        EXPECT_EQ(a.epochs[i].ml2AccessRate, b.epochs[i].ml2AccessRate);
        EXPECT_EQ(a.epochs[i].cteHitRate, b.epochs[i].cteHitRate);
        EXPECT_EQ(a.epochs[i].dramUsedBytes, b.epochs[i].dramUsedBytes);
        EXPECT_EQ(a.epochs[i].delta.all(), b.epochs[i].delta.all());
    }
    EXPECT_EQ(a.sample.windows, b.sample.windows);
    EXPECT_EQ(a.sample.windowAccesses, b.sample.windowAccesses);
    EXPECT_EQ(a.sample.warmupAccesses, b.sample.warmupAccesses);
    EXPECT_EQ(a.sample.ffAccesses, b.sample.ffAccesses);
    ASSERT_EQ(a.sample.metrics.size(), b.sample.metrics.size());
    for (std::size_t i = 0; i < a.sample.metrics.size(); ++i) {
        EXPECT_EQ(a.sample.metrics[i].name, b.sample.metrics[i].name);
        EXPECT_EQ(a.sample.metrics[i].mean, b.sample.metrics[i].mean);
        EXPECT_EQ(a.sample.metrics[i].ci95, b.sample.metrics[i].ci95);
    }
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t i = 0; i < a.tenants.size(); ++i) {
        EXPECT_EQ(a.tenants[i].accesses, b.tenants[i].accesses);
        EXPECT_EQ(a.tenants[i].ml2Faults, b.tenants[i].ml2Faults);
        EXPECT_EQ(a.tenants[i].footprintBytes,
                  b.tenants[i].footprintBytes);
        EXPECT_EQ(a.tenants[i].ml2FaultLatency.buckets(),
                  b.tenants[i].ml2FaultLatency.buckets());
        EXPECT_EQ(a.tenants[i].ml2FaultLatency.overflow(),
                  b.tenants[i].ml2FaultLatency.overflow());
        EXPECT_EQ(a.tenants[i].ml2FaultLatency.sampleSum(),
                  b.tenants[i].ml2FaultLatency.sampleSum());
        EXPECT_EQ(a.tenants[i].ml2FaultLatency.count(),
                  b.tenants[i].ml2FaultLatency.count());
    }
}

TEST_F(SweepManifestTest, SimConfigRoundTripsEveryField)
{
    const SimConfig cfg = fancyConfig();
    ByteWriter w;
    serializeSimConfig(w, cfg);

    ByteReader r(w.buffer());
    SimConfig back;
    ASSERT_TRUE(deserializeSimConfig(r, back).ok());
    ASSERT_TRUE(r.finish("config").ok());
    expectConfigEqual(cfg, back);
}

TEST_F(SweepManifestTest, SimConfigRejectsBadArch)
{
    SimConfig cfg = fancyConfig();
    ByteWriter w;
    serializeSimConfig(w, cfg);
    // The arch byte follows workload (8 + len), scale (8), cores (4),
    // seed (8); flip it to garbage.
    std::vector<std::uint8_t> bytes = w.buffer();
    const std::size_t archOff = 8 + cfg.workload.size() + 8 + 4 + 8;
    bytes[archOff] = 0xee;
    ByteReader r(bytes);
    SimConfig back;
    const Status s = deserializeSimConfig(r, back);
    EXPECT_EQ(s.code(), StatusCode::Corruption);
}

TEST_F(SweepManifestTest, SimResultRoundTripsBitExactly)
{
    const SimResult res = fancyResult();
    ByteWriter w;
    serializeSimResult(w, res);

    ByteReader r(w.buffer());
    SimResult back;
    ASSERT_TRUE(deserializeSimResult(r, back).ok());
    ASSERT_TRUE(r.finish("result").ok());
    expectResultEqual(res, back);
}

TEST_F(SweepManifestTest, SimResultTruncatedPayloadRejected)
{
    ByteWriter w;
    serializeSimResult(w, fancyResult());
    std::vector<std::uint8_t> bytes = w.buffer();
    bytes.resize(bytes.size() / 2);
    ByteReader r(bytes);
    SimResult back;
    EXPECT_FALSE(deserializeSimResult(r, back).ok());
}

TEST_F(SweepManifestTest, GridKeyDeterministicAndSensitive)
{
    const std::vector<SimConfig> grid = {fancyConfig(),
                                         SimConfig::scaledDefault()};
    const std::string key = sweepGridKey(grid);
    EXPECT_EQ(key.size(), 16u);
    EXPECT_EQ(key, sweepGridKey(grid));

    // Any config change must change the key: seed, order, grid size.
    std::vector<SimConfig> reseeded = grid;
    reseeded[1].seed ^= 1;
    EXPECT_NE(key, sweepGridKey(reseeded));

    const std::vector<SimConfig> swapped = {grid[1], grid[0]};
    EXPECT_NE(key, sweepGridKey(swapped));

    EXPECT_NE(key, sweepGridKey({grid[0]}));
}

TEST_F(SweepManifestTest, ShardSpecRoundTrip)
{
    ShardSpec spec;
    spec.gridKey = "0123456789abcdef";
    spec.shardId = 3;
    spec.attempt = 2;
    spec.workerJobs = 4;
    spec.resultPath = path("shard-003.result");
    spec.configIndices = {1, 4, 7};
    spec.configs = {fancyConfig(), SimConfig::scaledDefault(),
                    fancyConfig()};

    ASSERT_TRUE(spec.save(path("shard.spec")).ok());
    const auto loaded = ShardSpec::load(path("shard.spec"));
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded->gridKey, spec.gridKey);
    EXPECT_EQ(loaded->shardId, 3u);
    EXPECT_EQ(loaded->attempt, 2u);
    EXPECT_EQ(loaded->workerJobs, 4u);
    EXPECT_EQ(loaded->resultPath, spec.resultPath);
    EXPECT_EQ(loaded->configIndices, spec.configIndices);
    ASSERT_EQ(loaded->configs.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        expectConfigEqual(loaded->configs[i], spec.configs[i]);
}

TEST_F(SweepManifestTest, ShardResultFileRoundTrip)
{
    ShardResultFile file;
    file.gridKey = "feedfacefeedface";
    file.shardId = 1;
    file.configIndices = {0, 2};
    file.results = {fancyResult(), SimResult{}};

    ASSERT_TRUE(file.save(path("shard.result")).ok());
    const auto loaded = ShardResultFile::load(path("shard.result"));
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded->gridKey, file.gridKey);
    EXPECT_EQ(loaded->shardId, 1u);
    EXPECT_EQ(loaded->configIndices, file.configIndices);
    ASSERT_EQ(loaded->results.size(), 2u);
    expectResultEqual(loaded->results[0], file.results[0]);
    expectResultEqual(loaded->results[1], file.results[1]);
}

TEST_F(SweepManifestTest, ManifestRoundTrip)
{
    SweepManifest m;
    m.gridKey = "00ff00ff00ff00ff";
    m.totalConfigs = 9;
    m.shards.resize(3);
    m.shards[0] = {0, ShardState::Done, 1, "", {0, 3, 6}};
    m.shards[1] = {1, ShardState::Failed, 3,
                   "killed by signal 9 (Killed)", {1, 4, 7}};
    m.shards[2] = {2, ShardState::Pending, 0, "", {2, 5, 8}};

    ASSERT_TRUE(m.save(path("MANIFEST.tmccsweep")).ok());
    const auto loaded = SweepManifest::load(path("MANIFEST.tmccsweep"));
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded->gridKey, m.gridKey);
    EXPECT_EQ(loaded->totalConfigs, 9u);
    ASSERT_EQ(loaded->shards.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(loaded->shards[i].id, m.shards[i].id);
        EXPECT_EQ(loaded->shards[i].state, m.shards[i].state);
        EXPECT_EQ(loaded->shards[i].attempts, m.shards[i].attempts);
        EXPECT_EQ(loaded->shards[i].lastError, m.shards[i].lastError);
        EXPECT_EQ(loaded->shards[i].configIndices,
                  m.shards[i].configIndices);
    }
}

// ---- file-level rejection taxonomy --------------------------------

TEST_F(SweepManifestTest, MissingFileRejected)
{
    EXPECT_FALSE(ShardResultFile::load(path("nope.result")).ok());
    EXPECT_FALSE(SweepManifest::load(path("nope.manifest")).ok());
}

TEST_F(SweepManifestTest, BadMagicIsCorruption)
{
    ShardResultFile file;
    file.gridKey = "k";
    ASSERT_TRUE(file.save(path("f")).ok());
    {
        FILE *f = std::fopen(path("f").c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fputs("WRONGMAG", f);
        std::fclose(f);
    }
    const auto loaded = ShardResultFile::load(path("f"));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::Corruption);
}

TEST_F(SweepManifestTest, ForeignMagicIsCorruption)
{
    // A spec file read back as a result file: same container format,
    // wrong artifact magic.
    ShardSpec spec;
    spec.gridKey = "k";
    ASSERT_TRUE(spec.save(path("f")).ok());
    const auto loaded = ShardResultFile::load(path("f"));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::Corruption);
}

TEST_F(SweepManifestTest, FutureFormatVersionIsCorruption)
{
    ShardResultFile file;
    file.gridKey = "k";
    ASSERT_TRUE(file.save(path("f")).ok());
    // The u32 version sits right after the 8-byte magic and is not
    // covered by the payload CRC, so it can be patched in place.
    FILE *f = std::fopen(path("f").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 8, SEEK_SET);
    const std::uint8_t future[4] = {0xff, 0x00, 0x00, 0x00};
    std::fwrite(future, 1, 4, f);
    std::fclose(f);

    const auto loaded = ShardResultFile::load(path("f"));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::Corruption);
    EXPECT_NE(loaded.status().message().find("version mismatch"),
              std::string::npos);
}

TEST_F(SweepManifestTest, ConfigRejectsBadKernelByte)
{
    SimConfig cfg = fancyConfig();
    ByteWriter w;
    serializeSimConfig(w, cfg);
    // The kernel byte is the first v2 field: 25 bytes (u8 + 3 x u64)
    // of v2 tail plus 20 bytes (u32 + 2 x f64) of v3 tenant knobs from
    // the end of the config payload.
    std::vector<std::uint8_t> bytes = w.buffer();
    bytes[bytes.size() - 45] = 0x7f;
    ByteReader r(bytes);
    SimConfig back;
    const Status s = deserializeSimConfig(r, back);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    EXPECT_NE(s.message().find("kernel mode"), std::string::npos);
}

TEST_F(SweepManifestTest, OldFormatVersionIsRejectedClearly)
{
    // A v1-era file (before the kernel/sampling fields) must be
    // rejected by the version gate with a clear message — not parsed
    // as garbage.
    ShardResultFile file;
    file.gridKey = "k";
    ASSERT_TRUE(file.save(path("f")).ok());
    FILE *f = std::fopen(path("f").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 8, SEEK_SET);
    const std::uint8_t v1[4] = {0x01, 0x00, 0x00, 0x00};
    std::fwrite(v1, 1, 4, f);
    std::fclose(f);

    const auto loaded = ShardResultFile::load(path("f"));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::Corruption);
    EXPECT_NE(loaded.status().message().find(
                  "format version mismatch (file v1, expected v4)"),
              std::string::npos);
}

TEST_F(SweepManifestTest, TruncatedFileRejected)
{
    ShardResultFile file;
    file.gridKey = "k";
    file.shardId = 0;
    file.configIndices = {0};
    file.results = {fancyResult()};
    ASSERT_TRUE(file.save(path("f")).ok());

    const auto size = fs::file_size(path("f"));
    fs::resize_file(path("f"), size - 7);
    const auto loaded = ShardResultFile::load(path("f"));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::Truncated);
}

TEST_F(SweepManifestTest, CorruptPayloadIsChecksumMismatch)
{
    ShardResultFile file;
    file.gridKey = "k";
    file.shardId = 0;
    file.configIndices = {0};
    file.results = {fancyResult()};
    ASSERT_TRUE(file.save(path("f")).ok());

    // Flip one payload byte (past the header) in place.
    FILE *f = std::fopen(path("f").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(versionedFileHeaderBytes) + 11,
               SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);

    const auto loaded = ShardResultFile::load(path("f"));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::ChecksumMismatch);
}

TEST_F(SweepManifestTest, ConfigIndexCountMismatchRejected)
{
    ShardResultFile file;
    file.gridKey = "k";
    file.shardId = 0;
    file.configIndices = {0, 1}; // two indices, one result
    file.results = {SimResult{}};
    ASSERT_TRUE(file.save(path("f")).ok());
    const auto loaded = ShardResultFile::load(path("f"));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::Corruption);
}

} // namespace
} // namespace tmcc
