/** Tests for configuration presets and remaining workload sets. */

#include <unordered_set>

#include <gtest/gtest.h>

#include "sim/system.hh"

namespace tmcc
{
namespace
{

TEST(ScaledDefault, PreservesReachHierarchy)
{
    const SimConfig cfg = SimConfig::scaledDefault();

    // TLB reach ~ LLC; Compresso CTE reach above both; TMCC CTE reach
    // largest (the §III/IV structure).
    const double tlb_reach = cfg.tlbEntries * double(pageSize);
    const double l3 = double(cfg.hierarchy.l3Bytes);
    const double compresso_reach =
        double(cfg.compresso.cteCacheBytes) / blockCteBytes * pageSize;
    const double tmcc_reach = double(cfg.osMc.cteCacheBytes) /
                              pageCteBytes * pageSize;

    EXPECT_GE(tlb_reach, l3);
    EXPECT_GE(compresso_reach, tlb_reach);
    EXPECT_GT(tmcc_reach, compresso_reach);

    // A default graph workload footprint dwarfs every reach.
    auto wl = makeWorkload("pageRank", 0, 4, cfg.scale, 1);
    EXPECT_GT(static_cast<double>(wl->footprintBytes()),
              3.0 * tmcc_reach);
}

TEST(ScaledDefault, TimingStaysFullScale)
{
    const SimConfig cfg = SimConfig::scaledDefault();
    // Latency parameters must not be scaled (Table III values).
    EXPECT_DOUBLE_EQ(cfg.cpuGhz, 2.8);
    EXPECT_EQ(cfg.l1Cycles, 3u);
    EXPECT_EQ(cfg.l2Cycles, 11u);
    EXPECT_EQ(cfg.l3Cycles, 50u);
    EXPECT_DOUBLE_EQ(cfg.nocToMcNs, 18.0);
    EXPECT_DOUBLE_EQ(cfg.dram.tClNs, 13.75);
}

TEST(Workloads, SmallAndBandwidthSetsStayInRegions)
{
    std::vector<std::string> names = smallWorkloadNames();
    for (const auto &n : bandwidthWorkloadNames())
        names.push_back(n);
    for (const auto &name : names) {
        auto wl = makeWorkload(name, 2, 4, 0.05, 9);
        const auto &regions = wl->regions();
        for (int i = 0; i < 3000; ++i) {
            const MemAccess a = wl->next();
            bool inside = false;
            for (const auto &r : regions)
                inside |= a.vaddr >= r.base &&
                          a.vaddr < r.base + r.bytes;
            ASSERT_TRUE(inside) << name;
        }
    }
}

TEST(Workloads, StreamIsSequential)
{
    auto wl = makeWorkload("stream", 0, 1, 0.05, 1);
    unsigned sequential = 0;
    Addr prev = wl->next().vaddr;
    for (int i = 0; i < 5000; ++i) {
        const Addr cur = wl->next().vaddr;
        sequential += cur == prev + blockSize;
        prev = cur;
    }
    EXPECT_GT(sequential, 4500u);
}

TEST(Workloads, GupsIsUniformRandom)
{
    auto wl = makeWorkload("gups", 0, 1, 0.05, 1);
    std::unordered_set<Addr> pages;
    unsigned writes = 0;
    for (int i = 0; i < 5000; ++i) {
        const MemAccess a = wl->next();
        pages.insert(pageNumber(a.vaddr));
        writes += a.isWrite;
    }
    EXPECT_GT(pages.size(), 600u); // scattered
    EXPECT_NEAR(writes / 5000.0, 0.5, 0.05);
}

TEST(System, SixteenCoreTwoMcConfigRuns)
{
    SimConfig cfg = SimConfig::scaledDefault();
    cfg.workload = "hpcg";
    cfg.scale = 0.05;
    cfg.cores = 16;
    cfg.interleave.numMcs = 2;
    cfg.interleave.channelsPerMc = 2;
    cfg.interleave.mcGranularity = 4096;
    cfg.placementAccesses = 4000;
    cfg.warmAccesses = 2000;
    cfg.measureAccesses = 4000;
    cfg.arch = Arch::NoCompression;
    System sys(cfg);
    const SimResult r = sys.run();
    EXPECT_GT(r.accesses, 0u);
    // Traffic must reach every channel of both MCs.
    EXPECT_GT(r.stats.get("dram.mc0.ch0.reads"), 0.0);
    EXPECT_GT(r.stats.get("dram.mc0.ch1.reads"), 0.0);
    EXPECT_GT(r.stats.get("dram.mc1.ch0.reads"), 0.0);
    EXPECT_GT(r.stats.get("dram.mc1.ch1.reads"), 0.0);
}

TEST(System, PrefetchersOffStillCorrect)
{
    SimConfig cfg = SimConfig::scaledDefault();
    cfg.workload = "pageRank";
    cfg.scale = 0.02;
    cfg.hierarchy.prefetchers = false;
    cfg.placementAccesses = 10000;
    cfg.warmAccesses = 5000;
    cfg.measureAccesses = 10000;
    cfg.arch = Arch::Tmcc;
    System sys(cfg);
    const SimResult r = sys.run();
    EXPECT_GT(r.accesses, 0u);
    EXPECT_EQ(r.stats.get("hier.pf.nl1.0.issued"), 0.0);
}

TEST(NestedPaging, TwoDWalksFetchMorePtbs)
{
    SimConfig cfg = SimConfig::scaledDefault();
    cfg.workload = "mcf";
    cfg.scale = 0.1;
    cfg.arch = Arch::NoCompression;
    cfg.placementAccesses = 8000;
    cfg.warmAccesses = 4000;
    cfg.measureAccesses = 8000;

    System native(cfg);
    const SimResult rn = native.run();

    cfg.nestedPaging = true;
    System nested(cfg);
    const SimResult rv = nested.run();

    const double native_fetches =
        rn.stats.get("hier.walker_accesses") /
        std::max(1.0, rn.stats.get("core0.walker.walks") * 4.0);
    const double nested_fetches =
        rv.stats.get("hier.walker_accesses") /
        std::max(1.0, rv.stats.get("core0.walker.walks") * 4.0);
    // A 2D walk needs several times the PTB fetches of a native walk
    // (up to 24 vs 4; PWCs absorb part of it).
    EXPECT_GT(nested_fetches, native_fetches * 1.8);
}

TEST(NestedPaging, TmccStillWorksUnderVms)
{
    SimConfig cfg = SimConfig::scaledDefault();
    cfg.workload = "mcf";
    cfg.scale = 0.1;
    cfg.nestedPaging = true;
    cfg.placementAccesses = 8000;
    cfg.warmAccesses = 4000;
    cfg.measureAccesses = 8000;

    cfg.arch = Arch::Barebone;
    System bb(cfg);
    const SimResult rb = bb.run();

    cfg.arch = Arch::Tmcc;
    System tm(cfg);
    const SimResult rt = tm.run();

    // Host PTBs still embed CTEs: the parallel path must exist and
    // TMCC must not lose to barebone.
    EXPECT_GE(rt.accessesPerNs(), rb.accessesPerNs() * 0.98);
    EXPECT_GT(rt.ml1Parallel + rt.ml1CteHit, 0u);
}

TEST(NestedPaging, DeterministicAndConsistent)
{
    SimConfig cfg = SimConfig::scaledDefault();
    cfg.workload = "canneal";
    cfg.scale = 0.1;
    cfg.nestedPaging = true;
    cfg.arch = Arch::Tmcc;
    cfg.placementAccesses = 5000;
    cfg.warmAccesses = 2000;
    cfg.measureAccesses = 5000;
    System a(cfg);
    System b(cfg);
    const SimResult ra = a.run();
    const SimResult rb = b.run();
    EXPECT_EQ(ra.elapsed, rb.elapsed);
    EXPECT_EQ(ra.llcMisses, rb.llcMisses);
}

} // namespace
} // namespace tmcc
