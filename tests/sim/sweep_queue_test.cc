/**
 * @file
 * Lease-based sweep work queue (sim/sweep_queue.hh, sim/sweep_daemon.hh):
 * the claim/renew/release protocol must hand every shard to exactly one
 * live worker — across stale-lease reclaim after a worker SIGKILL,
 * N-way claim races, heartbeat renewal under a slow shard, and corrupt
 * claim files — and a queue-dispatched sweep must merge bit-identically
 * with a serial SimRunner run.
 *
 * This binary is its own worker daemon: main() dispatches
 * `--daemon-serve DIR LEASE` to a drain-once SweepDaemon before gtest
 * initialization, so tests can fork+exec /proc/self/exe as a victim
 * daemon and SIGKILL it (via TMCC_QUEUE_TEST_KILL) mid-shard.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/checkpoint.hh"
#include "sim/runner.hh"
#include "sim/sweep_daemon.hh"
#include "sim/sweep_manifest.hh"
#include "sim/sweep_queue.hh"

namespace tmcc
{
namespace
{

namespace fs = std::filesystem;

SimConfig
tinyConfig(Arch arch, const std::string &workload, double scale = 0.02)
{
    SimConfig cfg = SimConfig::scaledDefault();
    cfg.workload = workload;
    cfg.scale = scale;
    cfg.arch = arch;
    cfg.placementAccesses = 10'000;
    cfg.warmAccesses = 5'000;
    cfg.measureAccesses = 10'000;
    return cfg;
}

std::vector<SimConfig>
grid()
{
    return {
        tinyConfig(Arch::NoCompression, "pageRank"),
        tinyConfig(Arch::Tmcc, "pageRank"),
        tinyConfig(Arch::Compresso, "stream"),
        tinyConfig(Arch::Tmcc, "blackscholes", 0.1),
    };
}

/** Serial ground truth, computed once per test binary. */
const std::vector<SimResult> &
serialBaseline()
{
    static const std::vector<SimResult> results =
        SimRunner(1).run(grid());
    return results;
}

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.cteHits, b.cteHits);
    EXPECT_EQ(a.ml2Accesses, b.ml2Accesses);
    EXPECT_EQ(a.dramUsedBytes, b.dramUsedBytes);
    // Bit-identical, not approximately equal: the queue round trip
    // (serialize, publish, CRC, merge) must not perturb a single bit.
    EXPECT_EQ(a.avgL3MissLatencyNs, b.avgL3MissLatencyNs);
    EXPECT_EQ(a.readBusUtil, b.readBusUtil);
    EXPECT_EQ(a.writeBusUtil, b.writeBusUtil);
    EXPECT_EQ(a.stats.all(), b.stats.all());
}

class SweepQueueTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("TMCC_QUEUE_TEST_KILL");
        QueueClient::resetTotals();
        dir_ = fs::temp_directory_path() /
               ("tmcc_sweep_queue_test_" + std::to_string(::getpid()) +
                "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        ::unsetenv("TMCC_QUEUE_TEST_KILL");
        fs::remove_all(dir_);
    }

    std::string
    queueDir() const
    {
        return (dir_ / "queue").string();
    }

    QueueOptions
    clientOptions() const
    {
        QueueOptions o;
        o.queueDir = queueDir();
        o.sweepName = "sweep-under-test";
        o.shards = 2;
        o.workerJobs = 1;
        o.pollSeconds = 0.05;
        o.timeoutSeconds = 120.0; // never hit; bounds a deadlock
        o.verbose = false;
        return o;
    }

    DaemonOptions
    daemonOptions(double lease = 5.0) const
    {
        DaemonOptions o;
        o.queueDir = queueDir();
        o.workerId = "test-daemon";
        o.jobs = 1;
        o.leaseSeconds = lease;
        o.pollSeconds = 0.05;
        o.once = true;
        o.defaultCkptDir = false; // keep the global store's disk dir
        o.verbose = false;
        return o;
    }

    fs::path dir_;
};

// ---------------------------------------------------------------------
// Claim protocol.

TEST_F(SweepQueueTest, ClaimLifecycle)
{
    const std::string dir = dir_.string();
    ClaimAttempt first = tryClaimShard(dir, "grid-a", 0, "w1", 5.0);
    ASSERT_TRUE(first.claimed);
    EXPECT_FALSE(first.reclaimed);
    EXPECT_EQ(first.claim.attempt, 1u);
    EXPECT_EQ(first.claim.owner, "w1");

    // A live claim repels other workers, with a reason naming the
    // holder.
    ClaimAttempt second = tryClaimShard(dir, "grid-a", 0, "w2", 5.0);
    EXPECT_FALSE(second.claimed);
    EXPECT_NE(second.reason.find("held by w1"), std::string::npos);

    // Renewal bumps the heartbeat sequence and keeps ownership.
    ASSERT_TRUE(renewShardClaim(dir, first.claim).ok());
    EXPECT_EQ(first.claim.heartbeatSeq, 1u);
    auto onDisk = ShardClaim::load(sweepShardFile(dir, 0, "claim"));
    ASSERT_TRUE(onDisk.ok());
    EXPECT_EQ(onDisk->heartbeatSeq, 1u);
    EXPECT_EQ(onDisk->owner, "w1");

    // Release drops the file; the next claim starts fresh at attempt 1.
    releaseShardClaim(dir, first.claim);
    EXPECT_FALSE(fs::exists(sweepShardFile(dir, 0, "claim")));
    ClaimAttempt third = tryClaimShard(dir, "grid-a", 0, "w2", 5.0);
    ASSERT_TRUE(third.claimed);
    EXPECT_EQ(third.claim.attempt, 1u);
}

TEST_F(SweepQueueTest, StaleLeaseIsReclaimedWithAttemptBump)
{
    const std::string dir = dir_.string();
    ClaimAttempt dead = tryClaimShard(dir, "grid-a", 3, "dead", 0.2);
    ASSERT_TRUE(dead.claimed);
    std::this_thread::sleep_for(std::chrono::milliseconds(500));

    // 0.5s > the 0.2s lease: any worker may displace the claim, and
    // the new claim inherits the attempt count.
    ClaimAttempt taken = tryClaimShard(dir, "grid-a", 3, "w2", 5.0);
    ASSERT_TRUE(taken.claimed);
    EXPECT_TRUE(taken.reclaimed);
    EXPECT_EQ(taken.claim.attempt, 2u);
    EXPECT_EQ(taken.claim.owner, "w2");
}

TEST_F(SweepQueueTest, CorruptClaimFileIsNeverTrusted)
{
    const std::string dir = dir_.string();
    const std::string path = sweepShardFile(dir, 1, "claim");
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a claim file", f);
    std::fclose(f);

    // Corrupt claims are reclaimed immediately (no lease wait) and the
    // attempt count resets: a forged/torn attempt is never inherited.
    ClaimAttempt taken = tryClaimShard(dir, "grid-a", 1, "w1", 5.0);
    ASSERT_TRUE(taken.claimed);
    EXPECT_TRUE(taken.reclaimed);
    EXPECT_EQ(taken.claim.attempt, 1u);
}

TEST_F(SweepQueueTest, RenewDetectsTheftAfterLeaseExpiry)
{
    const std::string dir = dir_.string();
    ClaimAttempt slow = tryClaimShard(dir, "grid-a", 0, "slow", 0.2);
    ASSERT_TRUE(slow.claimed);
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    ClaimAttempt thief = tryClaimShard(dir, "grid-a", 0, "fast", 5.0);
    ASSERT_TRUE(thief.claimed);

    // The stalled owner's renewal must fail (its lease was reclaimed),
    // and its release must leave the thief's claim untouched.
    EXPECT_FALSE(renewShardClaim(dir, slow.claim).ok());
    releaseShardClaim(dir, slow.claim);
    auto onDisk = ShardClaim::load(sweepShardFile(dir, 0, "claim"));
    ASSERT_TRUE(onDisk.ok());
    EXPECT_EQ(onDisk->owner, "fast");
}

TEST_F(SweepQueueTest, HeartbeatRenewalKeepsSlowShardClaimed)
{
    // A shard running much longer than its lease stays claimed as long
    // as the heartbeat renews: competitors must be repelled throughout
    // 3x the lease duration.
    const std::string dir = dir_.string();
    ClaimAttempt slow = tryClaimShard(dir, "grid-a", 0, "slow", 0.5);
    ASSERT_TRUE(slow.claimed);
    for (int i = 0; i < 12; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(125));
        ASSERT_TRUE(renewShardClaim(dir, slow.claim).ok());
        ClaimAttempt rival =
            tryClaimShard(dir, "grid-a", 0, "rival", 0.5);
        ASSERT_FALSE(rival.claimed) << "iteration " << i;
        EXPECT_NE(rival.reason.find("held by slow"),
                  std::string::npos);
    }
    EXPECT_EQ(slow.claim.heartbeatSeq, 12u);
    releaseShardClaim(dir, slow.claim);
}

TEST_F(SweepQueueTest, NWayClaimRaceHasExactlyOneWinner)
{
    // 8 processes race to exclusive-create the same claim file; the
    // link(2) protocol guarantees exactly one winner.
    const std::string dir = dir_.string();
    constexpr int racers = 8;
    std::vector<pid_t> pids;
    for (int i = 0; i < racers; ++i) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ClaimAttempt a = tryClaimShard(
                dir, "grid-a", 0, "racer-" + std::to_string(i), 5.0);
            ::_exit(a.claimed ? 10 : 20);
        }
        pids.push_back(pid);
    }
    int winners = 0, losers = 0;
    for (const pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        if (WEXITSTATUS(status) == 10)
            ++winners;
        else if (WEXITSTATUS(status) == 20)
            ++losers;
    }
    EXPECT_EQ(winners, 1);
    EXPECT_EQ(losers, racers - 1);
    EXPECT_TRUE(fs::exists(sweepShardFile(dir, 0, "claim")));
}

TEST_F(SweepQueueTest, ExclusiveSaveRefusesExistingFile)
{
    ShardClaim c;
    c.gridKey = "grid-a";
    c.owner = "w1";
    const std::string path = sweepShardFile(dir_.string(), 7, "claim");
    ASSERT_TRUE(c.saveExclusive(path).ok());
    EXPECT_FALSE(c.saveExclusive(path).ok());
}

TEST_F(SweepQueueTest, QueueRequestRejectsZeroShards)
{
    QueueRequest req;
    req.gridKey = "grid-a";
    req.shardCount = 0;
    const std::string path = sweepRequestPath(dir_.string());
    ASSERT_TRUE(req.save(path).ok());
    EXPECT_FALSE(QueueRequest::load(path).ok());
}

TEST_F(SweepQueueTest, TestHookMatchesShardAndAttempt)
{
    ::setenv("TMCC_QUEUE_TEST_KILL", "1@2", 1);
    EXPECT_TRUE(sweepTestHookFires("TMCC_QUEUE_TEST_KILL", 1, 2));
    EXPECT_FALSE(sweepTestHookFires("TMCC_QUEUE_TEST_KILL", 1, 1));
    EXPECT_FALSE(sweepTestHookFires("TMCC_QUEUE_TEST_KILL", 0, 2));
    ::setenv("TMCC_QUEUE_TEST_KILL", "1@*", 1);
    EXPECT_TRUE(sweepTestHookFires("TMCC_QUEUE_TEST_KILL", 1, 7));
    ::unsetenv("TMCC_QUEUE_TEST_KILL");
    EXPECT_FALSE(sweepTestHookFires("TMCC_QUEUE_TEST_KILL", 1, 1));
}

TEST_F(SweepQueueTest, DefaultShardCountIsClamped)
{
    const unsigned n = defaultShardCount();
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, 64u);
}

// ---------------------------------------------------------------------
// Daemon end to end.

TEST_F(SweepQueueTest, QueueSweepBitIdenticalToSerial)
{
    // Client enqueues on one thread; an in-process daemon drains the
    // queue; the merged outcome must be indistinguishable from serial.
    QueueClient client(clientOptions());
    SweepDaemon daemon(daemonOptions());
    std::thread server([&] {
        // Poll until the request appears, then drain it.
        while (daemon.serve() == 0 &&
               !fs::exists(sweepRequestPath(queueDir() +
                                            "/sweep-under-test")))
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    SweepOutcome out = client.run(grid());
    server.join();

    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.completedShards, 2u);
    EXPECT_EQ(out.failedShards, 0u);
    const auto &serial = serialBaseline();
    ASSERT_EQ(out.results.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        ASSERT_TRUE(out.resultValid[i]);
        expectIdentical(serial[i], out.results[i]);
    }
    EXPECT_GE(daemon.stats().shardsServed, 2u);
    EXPECT_EQ(daemon.stats().configsRun, 4u);

    // The client retired the request marker; results stay for resume.
    EXPECT_FALSE(fs::exists(
        sweepRequestPath(queueDir() + "/sweep-under-test")));

    // A re-run of the same grid resumes entirely from disk: no daemon
    // is needed and no shard re-runs.
    QueueClient again(clientOptions());
    SweepOutcome resumed = again.run(grid());
    EXPECT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.resumedShards, 2u);
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], resumed.results[i]);
    EXPECT_EQ(QueueClient::totals().resumedShards, 2u);
}

TEST_F(SweepQueueTest, SigkilledDaemonIsReclaimedBySurvivor)
{
    // A victim daemon (this binary, re-exec'ed) claims shard 0 and is
    // SIGKILLed by the test hook after its first config — publishing
    // nothing, leaving a live-looking claim.  A survivor daemon must
    // wait out the lease, reclaim at attempt 2, and serve the shard;
    // the merged sweep stays bit-identical.
    QueueOptions qopts = clientOptions();
    qopts.shards = 1; // one shard holding all four configs
    QueueClient client(qopts);
    const std::string sweepDir = client.enqueue(grid());

    ::setenv("TMCC_QUEUE_TEST_KILL", "0@1", 1);
    const pid_t victim = ::fork();
    ASSERT_GE(victim, 0);
    if (victim == 0) {
        ::execl("/proc/self/exe", "sweep_queue_test", "--daemon-serve",
                queueDir().c_str(), "0.5", (char *)nullptr);
        ::_exit(127); // exec failed
    }
    ::unsetenv("TMCC_QUEUE_TEST_KILL");

    int status = 0;
    ASSERT_EQ(::waitpid(victim, &status, 0), victim);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    EXPECT_FALSE(fs::exists(sweepShardFile(sweepDir, 0, "result")));
    EXPECT_TRUE(fs::exists(sweepShardFile(sweepDir, 0, "claim")));

    // The survivor's first scans find the orphaned claim still inside
    // its 0.5s lease; it must keep polling, reclaim once stale, and
    // serve the shard at attempt 2.
    SweepDaemon survivor(daemonOptions(/*lease=*/0.5));
    EXPECT_EQ(survivor.serve(), 1u);
    EXPECT_EQ(survivor.stats().reclaims, 1u);

    SweepOutcome out = client.run(grid());
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.retries, 1u); // merged result carries attempt 2
    ASSERT_EQ(out.shards.size(), 1u);
    EXPECT_EQ(out.shards[0].attempts, 2u);
    const auto &serial = serialBaseline();
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        ASSERT_TRUE(out.resultValid[i]);
        expectIdentical(serial[i], out.results[i]);
    }
    EXPECT_EQ(QueueClient::totals().reclaimedShards, 1u);
}

TEST_F(SweepQueueTest, DaemonDefaultsCkptDirIntoSweepDir)
{
    // Serving a shard defaults the disk checkpoint dir to
    // <sweep-dir>/ckpt (unless configured), so every daemon of a sweep
    // shares warm setups through the sweep directory itself.
    CheckpointStore &store = CheckpointStore::global();
    const std::string saved = store.diskDir();
    store.setDiskDir("");
    // Drop memoized setups so the daemon's runs miss and must persist
    // fresh checkpoints into the defaulted directory.
    store.clear();

    QueueOptions qopts = clientOptions();
    qopts.shards = 1;
    QueueClient client(qopts);
    const std::string sweepDir = client.enqueue(grid());

    DaemonOptions dopts = daemonOptions();
    dopts.defaultCkptDir = true;
    SweepDaemon daemon(dopts);
    EXPECT_EQ(daemon.serve(), 1u);
    if (store.enabled()) {
        EXPECT_EQ(store.diskDir(), sweepDir + "/ckpt");
        EXPECT_TRUE(fs::exists(sweepDir + "/ckpt"));
    }
    store.setDiskDir(saved);

    // The published result records the worker's checkpoint traffic
    // (v3 fields) for sweep-wide BENCH accounting.
    auto result = ShardResultFile::load(
        sweepShardFile(sweepDir, 0, "result"));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->attempt, 1u);
    EXPECT_GT(result->ckptMemoryHits + result->ckptDiskHits +
                  result->ckptMisses,
              0u);
}

// ---------------------------------------------------------------------
// Strict validation (fatal -> exit(1), death-testable).

using SweepQueueDeathTest = SweepQueueTest;

TEST_F(SweepQueueDeathTest, QueueOptionsValidation)
{
    QueueOptions o = clientOptions();
    o.queueDir.clear();
    EXPECT_DEATH(o.validate(), "queue directory");

    o = clientOptions();
    o.pollSeconds = 0.0;
    EXPECT_DEATH(o.validate(), "poll interval");

    o = clientOptions();
    o.timeoutSeconds = -1.0;
    EXPECT_DEATH(o.validate(), "timeout");

    o = clientOptions();
    o.workerJobs = 0;
    EXPECT_DEATH(o.validate(), "worker jobs");
}

TEST_F(SweepQueueDeathTest, DaemonOptionsValidation)
{
    DaemonOptions o = daemonOptions();
    o.queueDir.clear();
    EXPECT_DEATH(o.validate(), "queue directory");

    o = daemonOptions();
    o.leaseSeconds = 0.0;
    EXPECT_DEATH(o.validate(), "lease");

    o = daemonOptions();
    o.pollSeconds = -2.0;
    EXPECT_DEATH(o.validate(), "poll interval");
}

TEST_F(SweepQueueDeathTest, MalformedTestHookIsFatal)
{
    ::setenv("TMCC_QUEUE_TEST_KILL", "nonsense", 1);
    EXPECT_DEATH(sweepTestHookFires("TMCC_QUEUE_TEST_KILL", 0, 1),
                 "wants <shard>@<attempt");
}

TEST_F(SweepQueueDeathTest, SweepNameOwnedByOtherGridIsFatal)
{
    QueueClient client(clientOptions());
    client.enqueue(grid());
    std::vector<SimConfig> other = grid();
    other[0].seed ^= 0x5a5a;
    QueueClient second(clientOptions());
    EXPECT_DEATH(second.enqueue(other), "different sweep");
}

} // namespace
} // namespace tmcc

int
main(int argc, char **argv)
{
    // Daemon re-entry: tests fork+exec this binary as a victim worker,
    // which must not fall into gtest.
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--daemon-serve") == 0) {
            tmcc::DaemonOptions o;
            o.queueDir = argv[i + 1];
            o.leaseSeconds =
                (i + 2 < argc) ? std::atof(argv[i + 2]) : 0.5;
            o.pollSeconds = 0.05;
            o.once = true;
            o.defaultCkptDir = false;
            o.verbose = false;
            o.workerId = "victim";
            tmcc::SweepDaemon(o).serve();
            return 0;
        }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
