/** Tests for the ML1/ML2 free lists (Fig. 3) and Compresso chunks. */

#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mc/free_list.hh"

namespace tmcc
{
namespace
{

TEST(Ml1FreeList, SeedPopPush)
{
    Ml1FreeList list;
    list.seed(100, 10);
    EXPECT_EQ(list.size(), 10u);
    EXPECT_EQ(list.pop(), 100u); // ascending pops
    EXPECT_EQ(list.pop(), 101u);
    list.push(100);
    EXPECT_EQ(list.pop(), 100u); // LIFO
}

TEST(SubChunkClasses, FragmentFree)
{
    // (4KB * M) mod N == 0 for every class (§IV-B).
    for (const auto &c : subChunkClasses) {
        EXPECT_EQ((pageSize * c.chunksM) % c.subChunksN, 0u);
        EXPECT_EQ(pageSize * c.chunksM / c.subChunksN, c.bytes);
    }
}

TEST(Ml2FreeLists, ClassForSelectsSmallestFit)
{
    EXPECT_EQ(Ml2FreeLists::classFor(1), 0u);       // 256B
    EXPECT_EQ(Ml2FreeLists::classFor(256), 0u);
    EXPECT_EQ(Ml2FreeLists::classFor(257), 1u);     // 512B
    EXPECT_EQ(Ml2FreeLists::classFor(1500), 4u);    // 1536B
    EXPECT_EQ(Ml2FreeLists::classFor(3072), 6u);
    EXPECT_EQ(Ml2FreeLists::classFor(3073),
              subChunkClasses.size()); // no class fits
}

TEST(Ml2FreeLists, AllocGrowsFromMl1)
{
    Ml1FreeList ml1;
    ml1.seed(0, 16);
    Ml2FreeLists ml2(ml1);

    SubChunk sc;
    ASSERT_TRUE(ml2.alloc(4, sc)); // 1536B class: M=3, N=8
    EXPECT_EQ(ml1.size(), 13u);    // 3 chunks consumed
    EXPECT_EQ(ml2.heldChunks(), 3u);
    EXPECT_EQ(ml2.liveBytes(), 1536u);
}

TEST(Ml2FreeLists, SubChunksDontOverlap)
{
    Ml1FreeList ml1;
    ml1.seed(0, 16);
    Ml2FreeLists ml2(ml1);

    std::vector<SubChunk> subs;
    for (int i = 0; i < 8; ++i) {
        SubChunk sc;
        ASSERT_TRUE(ml2.alloc(4, sc)); // all 8 slots of one super-chunk
        subs.push_back(sc);
    }
    // Addresses must be distinct and 1536B apart within the frames.
    for (std::size_t i = 0; i < subs.size(); ++i)
        for (std::size_t j = i + 1; j < subs.size(); ++j)
            EXPECT_GE(
                std::max(subs[i].dramAddr, subs[j].dramAddr) -
                    std::min(subs[i].dramAddr, subs[j].dramAddr),
                1536u);
    // Still only one super-chunk worth of frames consumed.
    EXPECT_EQ(ml2.heldChunks(), 3u);
}

TEST(Ml2FreeLists, EmptySuperChunkReturnsToMl1)
{
    Ml1FreeList ml1;
    ml1.seed(0, 16);
    Ml2FreeLists ml2(ml1);

    SubChunk a, b;
    ASSERT_TRUE(ml2.alloc(5, a)); // 2048B: M=1, N=2
    ASSERT_TRUE(ml2.alloc(5, b));
    EXPECT_EQ(ml1.size(), 15u);
    ml2.free(a);
    EXPECT_EQ(ml1.size(), 15u); // super-chunk still half used
    ml2.free(b);
    EXPECT_EQ(ml1.size(), 16u); // returned to ML1 (§IV-B)
    EXPECT_EQ(ml2.heldChunks(), 0u);
}

TEST(Ml2FreeLists, AllocFailsWhenMl1Dry)
{
    Ml1FreeList ml1;
    ml1.seed(0, 2);
    Ml2FreeLists ml2(ml1);
    SubChunk sc;
    // 768B class needs M=3 chunks; only 2 available.
    EXPECT_FALSE(ml2.alloc(2, sc));
    // 512B class needs 1 chunk: fine.
    EXPECT_TRUE(ml2.alloc(1, sc));
}

TEST(Ml2FreeLists, FreedSlotTracksAtTop)
{
    Ml1FreeList ml1;
    ml1.seed(0, 16);
    Ml2FreeLists ml2(ml1);

    SubChunk a, b;
    ASSERT_TRUE(ml2.alloc(1, a)); // 512B: N=8
    ASSERT_TRUE(ml2.alloc(1, b));
    ml2.free(a);
    // Next alloc reuses the freed slot (top of list, §IV-B).
    SubChunk c;
    ASSERT_TRUE(ml2.alloc(1, c));
    EXPECT_EQ(c.dramAddr, a.dramAddr);
}

TEST(Ml2FreeLists, PopOrderUnaffectedByReturnedSuperChunks)
{
    // Returning a super-chunk leaves tombstone entries in the class
    // list; allocation must skip them and still honour LIFO order.
    Ml1FreeList ml1;
    ml1.seed(0, 16);
    Ml2FreeLists ml2(ml1);

    std::vector<SubChunk> a(8), b(8);
    for (auto &sc : a)
        ASSERT_TRUE(ml2.alloc(1, sc)); // 512B: M=1, N=8
    for (auto &sc : b)
        ASSERT_TRUE(ml2.alloc(1, sc));
    // Free all of super-chunk A: it returns to ML1 leaving 7 dead
    // entries below the top of the class list.
    for (auto &sc : a)
        ml2.free(sc);
    EXPECT_EQ(ml2.heldChunks(), 1u);
    // Free one B slot; the next alloc must reuse exactly that slot.
    ml2.free(b[3]);
    SubChunk c;
    ASSERT_TRUE(ml2.alloc(1, c));
    EXPECT_EQ(c.dramAddr, b[3].dramAddr);
    EXPECT_EQ(c.superChunk, b[3].superChunk);
    // With no live free slot left, the next alloc discards the
    // tombstones and carves a fresh super-chunk from ML1.
    EXPECT_EQ(ml2.freeSlotCount(1), 0u);
    SubChunk d;
    ASSERT_TRUE(ml2.alloc(1, d));
    EXPECT_EQ(ml2.heldChunks(), 2u);
    EXPECT_NE(d.superChunk, c.superChunk);
}

TEST(Ml2FreeLists, ChurnStormKeepsInvariantsAndStaysLinear)
{
    // Adversarial tenant-exit shape: fully allocate many super-chunks,
    // free slots 1..7 of each (a huge free-slot list), then free the
    // last slot of each so every free returns a super-chunk.  The old
    // implementation scanned the whole class list per return (O(n^2),
    // ~70s at this scale); the lazy-tombstone scheme runs in ~150ms,
    // so the bound holds even under sanitizers.
    const auto start = std::chrono::steady_clock::now();

    constexpr std::uint64_t superChunksN = 150000;
    Ml1FreeList ml1;
    ml1.seed(0, superChunksN);
    Ml2FreeLists ml2(ml1);

    std::vector<SubChunk> subs(superChunksN * 8);
    for (auto &sc : subs)
        ASSERT_TRUE(ml2.alloc(1, sc)); // 512B: M=1, N=8
    EXPECT_EQ(ml2.heldChunks(), superChunksN);
    EXPECT_EQ(ml2.liveBytes(), superChunksN * 8 * 512);
    EXPECT_EQ(ml2.superChunkCount(), superChunksN);

    for (std::uint64_t s = 0; s < superChunksN; ++s)
        for (unsigned slot = 1; slot < 8; ++slot)
            ml2.free(subs[s * 8 + slot]);
    EXPECT_EQ(ml2.freeSlotCount(1), superChunksN * 7);
    for (std::uint64_t s = 0; s < superChunksN; ++s)
        ml2.free(subs[s * 8]);

    // Everything returned: no leaked super-chunks or chunks.
    EXPECT_EQ(ml2.liveBytes(), 0u);
    EXPECT_EQ(ml2.heldChunks(), 0u);
    EXPECT_EQ(ml2.superChunkCount(), 0u);
    EXPECT_EQ(ml2.freeSlotCount(1), 0u);
    EXPECT_EQ(ml1.size(), superChunksN);

    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_LT(secs, 20.0) << "super-chunk return went quadratic";
}

TEST(Ml2FreeLists, RandomChurnConservesChunks)
{
    constexpr std::uint64_t frames = 4096;
    Ml1FreeList ml1;
    ml1.seed(0, frames);
    Ml2FreeLists ml2(ml1);

    Rng rng(71);
    std::vector<SubChunk> live;
    std::uint64_t live_bytes = 0;
    for (int step = 0; step < 200000; ++step) {
        if (live.empty() || rng.chance(0.55)) {
            const auto cls = static_cast<unsigned>(
                rng.below(subChunkClasses.size()));
            SubChunk sc;
            if (!ml2.alloc(cls, sc))
                continue; // ML1 dry: fine under pressure
            live.push_back(sc);
            live_bytes += subChunkClasses[cls].bytes;
        } else {
            const std::size_t i = rng.below(live.size());
            std::swap(live[i], live.back());
            live_bytes -= subChunkClasses[live.back().sizeClass].bytes;
            ml2.free(live.back());
            live.pop_back();
        }
        // Chunks are conserved between ML1 and ML2 at every step.
        ASSERT_EQ(ml1.size() + ml2.heldChunks(), frames);
        ASSERT_EQ(ml2.liveBytes(), live_bytes);
    }
    for (const auto &sc : live)
        ml2.free(sc);
    EXPECT_EQ(ml2.liveBytes(), 0u);
    EXPECT_EQ(ml2.heldChunks(), 0u);
    EXPECT_EQ(ml2.superChunkCount(), 0u);
    for (unsigned c = 0; c < subChunkClasses.size(); ++c)
        EXPECT_EQ(ml2.freeSlotCount(c), 0u);
    EXPECT_EQ(ml1.size(), frames);
}

TEST(Ml2FreeLists, WideClassUses64BitSlotMask)
{
    // A 64-slot class exercises the top mask bit (1ULL << 63); the old
    // 32-bit mask made any class with subChunksN > 32 undefined.
    Ml1FreeList ml1;
    ml1.seed(0, 16);
    // (4KB * 16) / 64 == 1024: fragment-free.
    Ml2FreeLists ml2(ml1, {{1024, 16, 64}});

    std::vector<SubChunk> subs(64);
    for (auto &sc : subs)
        ASSERT_TRUE(ml2.alloc(0, sc));
    EXPECT_EQ(ml2.heldChunks(), 16u);
    EXPECT_EQ(ml2.superChunkCount(), 1u);
    for (std::size_t i = 0; i < subs.size(); ++i)
        for (std::size_t j = i + 1; j < subs.size(); ++j)
            EXPECT_NE(subs[i].dramAddr, subs[j].dramAddr);
    for (auto &sc : subs)
        ml2.free(sc);
    EXPECT_EQ(ml2.heldChunks(), 0u);
    EXPECT_EQ(ml1.size(), 16u);
}

TEST(Ml2FreeListsDeathTest, RejectsClassesExceedingSlotMask)
{
    Ml1FreeList ml1;
    const std::vector<SubChunkClass> tooWide = {{512, 8, 65}};
    const std::vector<SubChunkClass> zeroSlots = {{512, 1, 0}};
    const std::vector<SubChunkClass> empty;
    EXPECT_DEATH(Ml2FreeLists(ml1, tooWide), "slot mask");
    EXPECT_DEATH(Ml2FreeLists(ml1, zeroSlots), "slot mask");
    EXPECT_DEATH(Ml2FreeLists(ml1, empty), "sub-chunk class");
}

TEST(ChunkFreeList, SeedPopPush)
{
    ChunkFreeList list(512);
    list.seed(0x10000, 4);
    EXPECT_EQ(list.size(), 4u);
    const Addr a = list.pop();
    EXPECT_EQ(a, 0x10000u);
    list.push(a);
    EXPECT_EQ(list.pop(), a);
}

} // namespace
} // namespace tmcc
