/** Tests for the ML1/ML2 free lists (Fig. 3) and Compresso chunks. */

#include <gtest/gtest.h>

#include "mc/free_list.hh"

namespace tmcc
{
namespace
{

TEST(Ml1FreeList, SeedPopPush)
{
    Ml1FreeList list;
    list.seed(100, 10);
    EXPECT_EQ(list.size(), 10u);
    EXPECT_EQ(list.pop(), 100u); // ascending pops
    EXPECT_EQ(list.pop(), 101u);
    list.push(100);
    EXPECT_EQ(list.pop(), 100u); // LIFO
}

TEST(SubChunkClasses, FragmentFree)
{
    // (4KB * M) mod N == 0 for every class (§IV-B).
    for (const auto &c : subChunkClasses) {
        EXPECT_EQ((pageSize * c.chunksM) % c.subChunksN, 0u);
        EXPECT_EQ(pageSize * c.chunksM / c.subChunksN, c.bytes);
    }
}

TEST(Ml2FreeLists, ClassForSelectsSmallestFit)
{
    EXPECT_EQ(Ml2FreeLists::classFor(1), 0u);       // 256B
    EXPECT_EQ(Ml2FreeLists::classFor(256), 0u);
    EXPECT_EQ(Ml2FreeLists::classFor(257), 1u);     // 512B
    EXPECT_EQ(Ml2FreeLists::classFor(1500), 4u);    // 1536B
    EXPECT_EQ(Ml2FreeLists::classFor(3072), 6u);
    EXPECT_EQ(Ml2FreeLists::classFor(3073),
              subChunkClasses.size()); // no class fits
}

TEST(Ml2FreeLists, AllocGrowsFromMl1)
{
    Ml1FreeList ml1;
    ml1.seed(0, 16);
    Ml2FreeLists ml2(ml1);

    SubChunk sc;
    ASSERT_TRUE(ml2.alloc(4, sc)); // 1536B class: M=3, N=8
    EXPECT_EQ(ml1.size(), 13u);    // 3 chunks consumed
    EXPECT_EQ(ml2.heldChunks(), 3u);
    EXPECT_EQ(ml2.liveBytes(), 1536u);
}

TEST(Ml2FreeLists, SubChunksDontOverlap)
{
    Ml1FreeList ml1;
    ml1.seed(0, 16);
    Ml2FreeLists ml2(ml1);

    std::vector<SubChunk> subs;
    for (int i = 0; i < 8; ++i) {
        SubChunk sc;
        ASSERT_TRUE(ml2.alloc(4, sc)); // all 8 slots of one super-chunk
        subs.push_back(sc);
    }
    // Addresses must be distinct and 1536B apart within the frames.
    for (std::size_t i = 0; i < subs.size(); ++i)
        for (std::size_t j = i + 1; j < subs.size(); ++j)
            EXPECT_GE(
                std::max(subs[i].dramAddr, subs[j].dramAddr) -
                    std::min(subs[i].dramAddr, subs[j].dramAddr),
                1536u);
    // Still only one super-chunk worth of frames consumed.
    EXPECT_EQ(ml2.heldChunks(), 3u);
}

TEST(Ml2FreeLists, EmptySuperChunkReturnsToMl1)
{
    Ml1FreeList ml1;
    ml1.seed(0, 16);
    Ml2FreeLists ml2(ml1);

    SubChunk a, b;
    ASSERT_TRUE(ml2.alloc(5, a)); // 2048B: M=1, N=2
    ASSERT_TRUE(ml2.alloc(5, b));
    EXPECT_EQ(ml1.size(), 15u);
    ml2.free(a);
    EXPECT_EQ(ml1.size(), 15u); // super-chunk still half used
    ml2.free(b);
    EXPECT_EQ(ml1.size(), 16u); // returned to ML1 (§IV-B)
    EXPECT_EQ(ml2.heldChunks(), 0u);
}

TEST(Ml2FreeLists, AllocFailsWhenMl1Dry)
{
    Ml1FreeList ml1;
    ml1.seed(0, 2);
    Ml2FreeLists ml2(ml1);
    SubChunk sc;
    // 768B class needs M=3 chunks; only 2 available.
    EXPECT_FALSE(ml2.alloc(2, sc));
    // 512B class needs 1 chunk: fine.
    EXPECT_TRUE(ml2.alloc(1, sc));
}

TEST(Ml2FreeLists, FreedSlotTracksAtTop)
{
    Ml1FreeList ml1;
    ml1.seed(0, 16);
    Ml2FreeLists ml2(ml1);

    SubChunk a, b;
    ASSERT_TRUE(ml2.alloc(1, a)); // 512B: N=8
    ASSERT_TRUE(ml2.alloc(1, b));
    ml2.free(a);
    // Next alloc reuses the freed slot (top of list, §IV-B).
    SubChunk c;
    ASSERT_TRUE(ml2.alloc(1, c));
    EXPECT_EQ(c.dramAddr, a.dramAddr);
}

TEST(ChunkFreeList, SeedPopPush)
{
    ChunkFreeList list(512);
    list.seed(0x10000, 4);
    EXPECT_EQ(list.size(), 4u);
    const Addr a = list.pop();
    EXPECT_EQ(a, 0x10000u);
    list.push(a);
    EXPECT_EQ(list.pop(), a);
}

} // namespace
} // namespace tmcc
