/** Tests for the CTE cache: the reach math of §III/IV. */

#include <gtest/gtest.h>

#include "mc/cte.hh"
#include "mc/cte_cache.hh"

namespace tmcc
{
namespace
{

TEST(CteCache, MissInsertHit)
{
    CteCache cache(64 * 1024, 8);
    EXPECT_FALSE(cache.lookup(100));
    cache.insert(100);
    EXPECT_TRUE(cache.lookup(100));
}

TEST(CteCache, PageLevelBlockCoversEightPages)
{
    // TMCC: one 64B CTE block holds 8 page CTEs (Table III).
    CteCache cache(64 * 1024, 8);
    cache.insert(800); // covers pages 800..807
    for (Ppn p = 800; p < 808; ++p)
        EXPECT_TRUE(cache.probe(p));
    EXPECT_FALSE(cache.probe(808));
    EXPECT_FALSE(cache.probe(799));
}

TEST(CteCache, BlockLevelCoversOnePage)
{
    // Compresso: one metadata block per page.
    CteCache cache(128 * 1024, 1);
    cache.insert(800);
    EXPECT_TRUE(cache.probe(800));
    EXPECT_FALSE(cache.probe(801));
}

TEST(CteCache, ReachRatioIsEightToOne)
{
    // 64KB page-level cache reaches 8x as many pages as a 64KB
    // block-level cache -- the §IV argument.
    CteCache page_level(64 * 1024, 8);
    CteCache block_level(64 * 1024, 1);

    // Touch pages until the block-level cache starts evicting.
    const unsigned blocks = 64 * 1024 / 64;
    unsigned page_hits = 0, block_hits = 0;
    for (Ppn p = 0; p < blocks * 4; ++p) {
        page_level.insert(p);
        block_level.insert(p);
    }
    for (Ppn p = 0; p < blocks * 4; ++p) {
        page_hits += page_level.probe(p);
        block_hits += block_level.probe(p);
    }
    EXPECT_GT(page_hits, block_hits * 3u);
}

TEST(CteCache, InvalidateDropsWholeBlock)
{
    CteCache cache(64 * 1024, 8);
    cache.insert(64);
    cache.invalidate(65); // same CTE block
    EXPECT_FALSE(cache.probe(64));
}

TEST(CteCache, LruWithinSet)
{
    // Tiny cache: 2 sets x 2 ways at 1 page per block.
    CteCache cache(4 * 64, 1, 2);
    cache.insert(0);
    cache.insert(2); // same set (stride = sets = 2)
    EXPECT_TRUE(cache.lookup(0)); // refresh
    cache.insert(4); // evicts 2
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(2));
}

TEST(CteCache, StatsTrackHitRate)
{
    CteCache cache(64 * 1024, 8);
    cache.lookup(1); // miss
    cache.insert(1);
    cache.lookup(1); // hit
    StatDump d;
    cache.dumpStats(d, "c");
    EXPECT_DOUBLE_EQ(d.get("c.hit_rate"), 0.5);
}

TEST(CteCacheDeathTest, RejectsBadGeometry)
{
    // Each message must name the actual problem (the original fatal
    // for an undersized cache blamed the associativity instead).
    EXPECT_EXIT(CteCache(64 * 1024, 0),
                ::testing::ExitedWithCode(1), "cover >= 1 page");
    EXPECT_EXIT(CteCache(64 * 1024, 8, 0),
                ::testing::ExitedWithCode(1),
                "associativity must be >= 1");
    // 2 blocks cannot form even one 8-way set.
    EXPECT_EXIT(CteCache(2 * 64, 8, 8),
                ::testing::ExitedWithCode(1),
                "too few for even one 8-way set");
    // 3 blocks at 2 ways: not divisible into whole sets.
    EXPECT_EXIT(CteCache(3 * 64, 1, 2),
                ::testing::ExitedWithCode(1),
                "must divide the block count");
}

TEST(PageCte, TruncationMask)
{
    PageCte cte;
    cte.dramFrame = 0x1ffffffffULL;
    EXPECT_EQ(cte.truncated(28), 0xfffffffULL);
    EXPECT_EQ(cte.truncated(64), 0x1ffffffffULL);
}

} // namespace
} // namespace tmcc
