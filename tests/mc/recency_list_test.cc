/** Tests for the sampled Recency List (§IV-B). */

#include <gtest/gtest.h>

#include "mc/recency_list.hh"

namespace tmcc
{
namespace
{

TEST(RecencyList, InsertAndEvictOrder)
{
    RecencyList list(1.0); // deterministic: every touch promotes
    list.insertHot(1);
    list.insertHot(2);
    list.insertHot(3);
    // 1 is the coldest.
    EXPECT_EQ(list.coldest(), 1u);
    EXPECT_EQ(list.popColdest(), 1u);
    EXPECT_EQ(list.popColdest(), 2u);
    EXPECT_EQ(list.size(), 1u);
}

TEST(RecencyList, TouchPromotes)
{
    RecencyList list(1.0);
    list.insertHot(1);
    list.insertHot(2);
    list.insertHot(3);
    list.touch(1); // promote the coldest
    EXPECT_EQ(list.coldest(), 2u);
}

TEST(RecencyList, SampledTouchPromotesSometimes)
{
    RecencyList list(0.5, 42);
    for (Ppn p = 0; p < 100; ++p)
        list.insertHot(p);
    // Touch page 0 (the coldest) many times; with 50% sampling it must
    // move up quickly.
    for (int i = 0; i < 20; ++i)
        list.touch(0);
    EXPECT_NE(list.coldest(), 0u);
}

TEST(RecencyList, ZeroSamplingNeverPromotes)
{
    RecencyList list(0.0);
    list.insertHot(1);
    list.insertHot(2);
    for (int i = 0; i < 100; ++i)
        list.touch(1);
    EXPECT_EQ(list.coldest(), 1u);
}

TEST(RecencyList, RemoveUntracksPage)
{
    RecencyList list(1.0);
    list.insertHot(1);
    list.insertHot(2);
    list.remove(1);
    EXPECT_FALSE(list.contains(1));
    EXPECT_EQ(list.size(), 1u);
    list.remove(99); // absent: no-op
}

TEST(RecencyList, InsertColdGoesToTail)
{
    RecencyList list(1.0);
    list.insertHot(1);
    list.insertHot(2);
    list.insertCold(3);
    EXPECT_EQ(list.coldest(), 3u);
}

TEST(RecencyList, ReinsertMovesExisting)
{
    RecencyList list(1.0);
    list.insertHot(1);
    list.insertHot(2);
    list.insertHot(1); // move, not duplicate
    EXPECT_EQ(list.size(), 2u);
    EXPECT_EQ(list.coldest(), 2u);
}

TEST(RecencyList, MaybeReadmitIsProbabilistic)
{
    RecencyList list(0.01, 7);
    // ~1% readmission probability (§IV-B): over many writebacks the
    // page re-enters roughly 1% of the time.
    unsigned admitted = 0;
    for (int i = 0; i < 10000; ++i) {
        if (list.maybeReadmit(5)) {
            ++admitted;
            list.remove(5); // simulate re-eviction
        }
    }
    EXPECT_GT(admitted, 50u);
    EXPECT_LT(admitted, 200u);
}

TEST(RecencyList, OverheadBytesTracksSize)
{
    RecencyList list(1.0);
    EXPECT_EQ(list.overheadBytes(), 0u);
    for (Ppn p = 0; p < 10; ++p)
        list.insertHot(p);
    // PPN + two pointers per element.
    EXPECT_EQ(list.overheadBytes(), 10u * 24u);
}

} // namespace
} // namespace tmcc
