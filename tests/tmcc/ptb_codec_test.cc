/** Tests for the PTB compression math of §V-A5 / Fig. 7. */

#include <gtest/gtest.h>

#include "tmcc/ptb_codec.hh"

namespace tmcc
{
namespace
{

std::array<std::uint64_t, ptesPerPtb>
uniformPtb(Ppn base, const PteFlags &f)
{
    std::array<std::uint64_t, ptesPerPtb> ptes;
    for (unsigned i = 0; i < ptesPerPtb; ++i)
        ptes[i] = makePte(base + i, f);
    return ptes;
}

TEST(PtbCodec, PaperSlotCounts)
{
    // §V-A5: 1TB/4TB/16TB managed DRAM with 4x physical pages give
    // 8/7/6 embeddable CTEs.
    for (const auto &[dram_bytes, expected] :
         std::vector<std::pair<std::uint64_t, unsigned>>{
             {1ULL << 40, 8},
             {4ULL << 40, 7},
             {16ULL << 40, 6},
         }) {
        PtbCodecConfig cfg;
        cfg.managedDramBytes = dram_bytes;
        cfg.physPages = 4 * (dram_bytes / pageSize);
        PtbCodec codec(cfg);
        EXPECT_EQ(codec.maxSlots(), expected)
            << "DRAM bytes = " << dram_bytes;
    }
}

TEST(PtbCodec, TruncatedCteWidth)
{
    PtbCodecConfig cfg;
    cfg.managedDramBytes = 1ULL << 40;
    PtbCodec codec(cfg);
    // log2(1TB / 4KB) = 28 bits (§V-A5).
    EXPECT_EQ(codec.truncatedCteBits(), 28u);
}

TEST(PtbCodec, UniformStatusBitsCompressible)
{
    PtbCodec codec;
    PteFlags f;
    f.accessed = true;
    f.dirty = true;
    const auto ptes = uniformPtb(1000, f);
    const PtbAnalysis a = codec.analyze(ptes.data());
    EXPECT_TRUE(a.compressible);
    EXPECT_EQ(a.cteSlots, codec.maxSlots());
    EXPECT_GT(a.freedBits, 0u);
}

TEST(PtbCodec, MixedDirtyBitBlocksCompression)
{
    PtbCodec codec;
    PteFlags f;
    f.dirty = true;
    auto ptes = uniformPtb(1000, f);
    PteFlags g = f;
    g.dirty = false;
    ptes[3] = makePte(1003, g);
    EXPECT_FALSE(codec.analyze(ptes.data()).compressible);
}

TEST(PtbCodec, MixedNxBitBlocksCompression)
{
    PtbCodec codec;
    PteFlags f;
    auto ptes = uniformPtb(2000, f);
    PteFlags g = f;
    g.noExecute = true;
    ptes[7] = makePte(2007, g);
    EXPECT_FALSE(codec.analyze(ptes.data()).compressible);
}

TEST(PtbCodec, PpnDifferencesDontMatter)
{
    // Only status bits gate compressibility; PPNs may be arbitrary.
    PtbCodec codec;
    PteFlags f;
    std::array<std::uint64_t, ptesPerPtb> ptes;
    for (unsigned i = 0; i < ptesPerPtb; ++i)
        ptes[i] = makePte((i * 7919 + 13) & ((1ULL << 30) - 1), f);
    EXPECT_TRUE(codec.analyze(ptes.data()).compressible);
}

TEST(PtbCodec, AllZeroPtbIsCompressible)
{
    // Not-present entries have identical (zero) status bits.
    PtbCodec codec;
    std::array<std::uint64_t, ptesPerPtb> ptes{};
    EXPECT_TRUE(codec.analyze(ptes.data()).compressible);
}

TEST(PtbCodec, FreedBitsFormula)
{
    PtbCodecConfig cfg;
    cfg.managedDramBytes = 1ULL << 40;
    cfg.physPages = 4 * ((1ULL << 40) / pageSize); // 2^30 pages
    PtbCodec codec(cfg);
    PteFlags f;
    const auto ptes = uniformPtb(1, f);
    const PtbAnalysis a = codec.analyze(ptes.data());
    // status: 24 * 7 = 168; PPN: (40 - 30) * 8 = 80.
    EXPECT_EQ(a.freedBits, 168u + 80u);
}

} // namespace
} // namespace tmcc
