/** Tests for the 64-entry CTE Buffer (§V-A3, Fig. 10). */

#include <gtest/gtest.h>

#include "tmcc/cte_buffer.hh"

namespace tmcc
{
namespace
{

TEST(CteBuffer, InsertLookup)
{
    CteBuffer buf(4);
    buf.insert(100, true, 0xaa, 0x5000);
    const auto *e = buf.lookup(100);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->hasCte);
    EXPECT_EQ(e->cte, 0xaau);
    EXPECT_EQ(e->ptbAddr, 0x5000u);
    EXPECT_EQ(buf.lookup(101), nullptr);
}

TEST(CteBuffer, SlotWithoutCte)
{
    // Bigger machines can't embed a CTE for every PTE (§V-A5); the
    // buffer still records the PPN -> PTB association.
    CteBuffer buf(4);
    buf.insert(200, false, 0, 0x6000);
    const auto *e = buf.lookup(200);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->hasCte);
}

TEST(CteBuffer, LruReplacement)
{
    CteBuffer buf(2);
    buf.insert(1, true, 1, 0x100);
    buf.insert(2, true, 2, 0x200);
    buf.lookup(1); // refresh
    buf.insert(3, true, 3, 0x300); // evicts 2
    EXPECT_NE(buf.lookup(1), nullptr);
    EXPECT_EQ(buf.lookup(2), nullptr);
    EXPECT_NE(buf.lookup(3), nullptr);
}

TEST(CteBuffer, ReinsertUpdatesInPlace)
{
    CteBuffer buf(2);
    buf.insert(1, true, 10, 0x100);
    buf.insert(1, true, 20, 0x180);
    const auto *e = buf.lookup(1);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->cte, 20u);
    EXPECT_EQ(e->ptbAddr, 0x180u);
}

TEST(CteBuffer, MatchingResponseNeedsNoUpdate)
{
    CteBuffer buf(4);
    buf.insert(1, true, 42, 0x100);
    EXPECT_EQ(buf.updateOnResponse(1, 42), invalidAddr);
}

TEST(CteBuffer, StaleResponseReturnsPtbForLazyUpdate)
{
    CteBuffer buf(4);
    buf.insert(1, true, 42, 0x100);
    // The page migrated: the correct CTE differs.
    EXPECT_EQ(buf.updateOnResponse(1, 43), 0x100u);
    // The entry now carries the corrected CTE.
    const auto *e = buf.lookup(1);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->cte, 43u);
    // A second identical response no longer reports staleness.
    EXPECT_EQ(buf.updateOnResponse(1, 43), invalidAddr);
}

TEST(CteBuffer, MissingCteTreatedAsStale)
{
    CteBuffer buf(4);
    buf.insert(1, false, 0, 0x100);
    EXPECT_EQ(buf.updateOnResponse(1, 7), 0x100u);
    EXPECT_TRUE(buf.lookup(1)->hasCte);
}

TEST(CteBuffer, ResponseForUntrackedPpnIgnored)
{
    CteBuffer buf(4);
    EXPECT_EQ(buf.updateOnResponse(9, 7), invalidAddr);
}

TEST(CteBuffer, FlushEmpties)
{
    CteBuffer buf(4);
    buf.insert(1, true, 1, 0x100);
    buf.flush();
    EXPECT_EQ(buf.lookup(1), nullptr);
}

} // namespace
} // namespace tmcc
