/** Tests for the OS-inspired / TMCC memory controller. */

#include <gtest/gtest.h>

#include "tmcc/os_mc.hh"
#include "vm/page_table.hh"

namespace tmcc
{
namespace
{

/** Fixed-profile provider. */
class FakeInfo : public PageInfoProvider
{
  public:
    const PageProfile &
    profile(Ppn ppn) const override
    {
        auto it = special_.find(ppn);
        return it == special_.end() ? default_ : it->second;
    }

    PageProfile default_ = [] {
        PageProfile p;
        p.blockBytes = 3000;
        p.deflateBytes = 1400; // 1536B class
        p.lzTokens = 1500;
        return p;
    }();
    std::unordered_map<Ppn, PageProfile> special_;
};

class OsMcTest : public ::testing::Test
{
  protected:
    OsMcTest()
        : dram_(DramConfig{}, InterleaveConfig{}), phys_(100000),
          table_(phys_)
    {
        cfg_.dramBudgetBytes = 40ULL << 20; // 10K frames
        cfg_.freeListLow = 64;
        cfg_.freeListCritical = 32;
        cfg_.ml1TargetPages = 4096;
        mc_ = std::make_unique<OsInspiredMc>(dram_, info_, phys_, cfg_);
    }

    McReadRequest
    readReq(Ppn ppn, Tick when = 1000)
    {
        McReadRequest req;
        req.paddr = ppn << pageShift;
        req.when = when;
        return req;
    }

    DramSystem dram_;
    PhysMem phys_;
    PageTable table_;
    FakeInfo info_;
    OsMcConfig cfg_;
    std::unique_ptr<OsInspiredMc> mc_;
};

TEST_F(OsMcTest, HottestFirstPlacement)
{
    // First pages go to ML1; after the target, pages compress to ML2.
    for (Ppn p = 1; p <= 4096; ++p)
        mc_->placePage(p);
    EXPECT_FALSE(mc_->inMl2(1));
    for (Ppn p = 5000; p < 5010; ++p)
        mc_->placePage(p);
    EXPECT_TRUE(mc_->inMl2(5005));
}

TEST_F(OsMcTest, Ml1ReadCteHitSingleDramAccess)
{
    mc_->placePage(1);
    mc_->cteCache().insert(1);
    const McReadResponse r = mc_->read(readReq(1));
    EXPECT_TRUE(r.cteCacheHit);
    EXPECT_FALSE(r.hitMl2);
    // One DRAM access: ~30-35ns after the request.
    EXPECT_LT(ticksToNs(r.complete - 1000), 40.0);
}

TEST_F(OsMcTest, Ml1CteMissWithoutEmbeddedIsSerial)
{
    mc_->placePage(1);
    const McReadResponse r = mc_->read(readReq(1));
    EXPECT_FALSE(r.cteCacheHit);
    EXPECT_TRUE(r.serializedNoCte);
    // Two serial DRAM accesses: > 50ns.
    EXPECT_GT(ticksToNs(r.complete - 1000), 50.0);
}

TEST_F(OsMcTest, EmbeddedCteEnablesParallelAccess)
{
    // Same page, fresh MCs on fresh channels: serial vs parallel.
    DramSystem serial_dram(DramConfig{}, InterleaveConfig{});
    OsInspiredMc serial_mc(serial_dram, info_, phys_, cfg_);
    serial_mc.placePage(1);
    const McReadResponse rs = serial_mc.read(readReq(1));
    ASSERT_TRUE(rs.serializedNoCte);

    mc_->placePage(1);
    McReadRequest req = readReq(1);
    req.hasEmbeddedCte = true;
    req.embeddedCte = mc_->truncatedCte(1);
    const McReadResponse r = mc_->read(req);
    EXPECT_TRUE(r.parallelAccess);
    EXPECT_FALSE(r.embeddedMismatch);
    // Parallel access completes no later than the serial path and
    // typically much earlier (Fig. 8b vs 8a).
    EXPECT_LE(r.complete, rs.complete);
}

TEST_F(OsMcTest, StaleEmbeddedCteReaccessesSerially)
{
    mc_->placePage(1);
    McReadRequest req = readReq(1);
    req.hasEmbeddedCte = true;
    req.embeddedCte = mc_->truncatedCte(1) + 7; // wrong frame
    const McReadResponse r = mc_->read(req);
    EXPECT_TRUE(r.embeddedMismatch);
    EXPECT_GT(ticksToNs(r.complete - 1000), 55.0);
    // The piggybacked CTE is the correct one.
    EXPECT_TRUE(r.hasCorrectCte);
    EXPECT_EQ(r.correctCte, mc_->truncatedCte(1));
}

TEST_F(OsMcTest, Ml2ReadDecompressesAndMigrates)
{
    for (Ppn p = 1; p <= 4096; ++p)
        mc_->placePage(p);
    mc_->placePage(9000);
    ASSERT_TRUE(mc_->inMl2(9000));

    const McReadResponse r = mc_->read(readReq(9000));
    EXPECT_TRUE(r.hitMl2);
    // Deflate decompression to the requested block dominates: the
    // fast ASIC takes ~30-300ns depending on the offset.
    EXPECT_GT(ticksToNs(r.complete - 1000), 20.0);
    // The page migrated to ML1.
    EXPECT_FALSE(mc_->inMl2(9000));
}

TEST_F(OsMcTest, IbmDeflateIsSlowerForMl2Reads)
{
    OsMcConfig slow = cfg_;
    slow.fastDeflate = false;
    OsInspiredMc ibm_mc(dram_, info_, phys_, slow);
    OsInspiredMc fast_mc(dram_, info_, phys_, cfg_);
    for (Ppn p = 1; p <= 4097; ++p) {
        ibm_mc.placePage(p);
        fast_mc.placePage(p);
    }
    mc_->placePage(9000);
    ibm_mc.placePage(9000);
    fast_mc.placePage(9000);
    McReadRequest req = readReq(9000, 100000);
    req.paddr |= 64; // an early block in the page
    const Tick ibm = ibm_mc.read(req).complete;
    const Tick fast = fast_mc.read(req).complete;
    // IBM pays its >800ns setup; ours is several times faster (§V-B).
    EXPECT_GT(ticksToNs(ibm - 100000), 800.0);
    EXPECT_LT(ticksToNs(fast - 100000),
              ticksToNs(ibm - 100000) / 2.0);
}

TEST_F(OsMcTest, IncompressiblePageRetainedInMl1)
{
    PageProfile incompressible;
    incompressible.deflateBytes = pageSize;
    incompressible.blockBytes = pageSize;
    info_.special_[42] = incompressible;
    mc_->placePage(42);
    EXPECT_FALSE(mc_->inMl2(42));
    // It must not sit on the recency list (never recompressed).
    EXPECT_FALSE(mc_->recency().contains(42));
}

TEST_F(OsMcTest, EvictionMovesColdPagesToMl2)
{
    // Unbounded placement target: ML1 fills to the free-list floor,
    // then ML2 growth drains the floor and eviction kicks in.
    OsMcConfig cfg = cfg_;
    cfg.ml1TargetPages = ~0ULL;
    OsInspiredMc mc(dram_, info_, phys_, cfg);
    const std::uint64_t frames = cfg.dramBudgetBytes / pageSize;
    for (Ppn p = 1; p <= frames + 512; ++p)
        mc.placePage(p);
    // The earliest-placed (coldest) pages must have left for ML2.
    unsigned in_ml2 = 0;
    for (Ppn p = 1; p <= 256; ++p)
        in_ml2 += mc.inMl2(p);
    EXPECT_GT(in_ml2, 0u);
}

TEST_F(OsMcTest, PtbViewEmbedsCurrentCtes)
{
    PteFlags f;
    f.accessed = true;
    f.dirty = true;
    for (Vpn v = 0; v < ptesPerPtb; ++v)
        table_.map(v, 100 + v, f);
    for (Ppn p = 100; p < 100 + ptesPerPtb; ++p)
        mc_->placePage(p);

    const WalkResult w = table_.walk(0);
    const Addr ptb = w.steps.back().ptbAddr;
    const auto view = mc_->ptbView(ptb);
    ASSERT_TRUE(view.compressed);
    for (unsigned i = 0; i < ptesPerPtb; ++i) {
        ASSERT_TRUE(view.present[i]);
        EXPECT_TRUE(view.hasCte[i]);
        EXPECT_EQ(view.cte[i], mc_->truncatedCte(100 + i));
    }
}

TEST_F(OsMcTest, PtbViewGoesStaleAfterMigrationUntilLazyUpdate)
{
    OsMcConfig cfg = cfg_;
    cfg.ml1TargetPages = ~0ULL; // allow the free-list floor to drain
    mc_ = std::make_unique<OsInspiredMc>(dram_, info_, phys_, cfg);

    PteFlags f;
    f.accessed = true;
    f.dirty = true;
    for (Vpn v = 0; v < ptesPerPtb; ++v)
        table_.map(v, 100 + v, f);
    // Fill ML1 so an eviction can happen later.
    for (Ppn p = 100; p < 100 + ptesPerPtb; ++p)
        mc_->placePage(p);

    const WalkResult w = table_.walk(0);
    const Addr ptb = w.steps.back().ptbAddr;
    const auto before = mc_->ptbView(ptb);
    ASSERT_TRUE(before.compressed);
    const std::uint64_t old_cte = before.cte[0];

    // Force page 100 into ML2 and back: its frame changes.
    mc_->recency().remove(100);
    mc_->recency().insertCold(100);
    // Exhaust free frames (ML1 target lifted) to evict page 100.
    const std::uint64_t frames = cfg_.dramBudgetBytes / pageSize;
    for (Ppn p = 10000; p < 10000 + frames + 512; ++p)
        mc_->placePage(p);
    ASSERT_TRUE(mc_->inMl2(100));
    mc_->read(readReq(100, 50000)); // migrates back at a new frame

    const auto after = mc_->ptbView(ptb);
    ASSERT_TRUE(after.compressed);
    // The embedded value was NOT updated at migration time (lazy).
    EXPECT_EQ(after.cte[0], old_cte);
    EXPECT_NE(mc_->truncatedCte(100), old_cte);

    // The lazy update path fixes it.
    mc_->lazyUpdatePtb(ptb, 100, mc_->truncatedCte(100));
    const auto fixed = mc_->ptbView(ptb);
    EXPECT_EQ(fixed.cte[0], mc_->truncatedCte(100));
}

TEST_F(OsMcTest, WritebackMaintainsPtbPairVector)
{
    mc_->placePage(1);
    const Addr block0 = (1ULL << pageShift);
    mc_->writeback(block0, 2000, /*line_compressed=*/true);
    // Bit-vector effects are internal; at minimum the write must not
    // disturb the page's location.
    EXPECT_FALSE(mc_->inMl2(1));
    mc_->writeback(block0, 3000, false);
}

TEST_F(OsMcTest, DramUsageTracksBudgetShape)
{
    for (Ppn p = 1; p <= 2000; ++p)
        mc_->placePage(p);
    const std::uint64_t used = mc_->dramUsedBytes();
    EXPECT_GT(used, 2000ULL * 1024);
    EXPECT_LE(used, cfg_.dramBudgetBytes + (4ULL << 20));
}

TEST_F(OsMcTest, BackgroundReadTouchesOnlyCteCache)
{
    mc_->placePage(1);
    McReadRequest req = readReq(1);
    req.background = true;
    const McReadResponse r = mc_->read(req);
    EXPECT_EQ(r.complete, req.when);
    // The CTE is now cached for subsequent demand reads.
    const McReadResponse r2 = mc_->read(readReq(1, 5000));
    EXPECT_TRUE(r2.cteCacheHit);
}

TEST_F(OsMcTest, Ml2CorruptionAccountingBalances)
{
    cfg_.faults.ml2BitFlipRate = 1e-4; // ~0.67 per 1400B image read
    cfg_.faults.transientFraction = 0.5;
    cfg_.faults.seed = 9;
    OsInspiredMc mc(dram_, info_, phys_, cfg_);
    for (Ppn p = 1; p <= 4096; ++p)
        mc.placePage(p);
    for (Ppn p = 5000; p < 5400; ++p) {
        mc.placePage(p);
        ASSERT_TRUE(mc.inMl2(p));
        const McReadResponse r = mc.read(readReq(p, 1000));
        EXPECT_GT(r.complete, 1000u); // always served, corrupt or not
    }

    StatDump dump;
    mc.dumpStats(dump, "mc");
    const double detected = dump.get("mc.ml2.corruption_detected");
    EXPECT_GT(detected, 0.0);
    EXPECT_GT(dump.get("mc.ml2.corruption_recovered"), 0.0);
    EXPECT_GT(dump.get("mc.ml2.corruption_unrecoverable"), 0.0);
    EXPECT_EQ(detected, dump.get("mc.ml2.corruption_recovered") +
                            dump.get("mc.ml2.corruption_unrecoverable"));
}

TEST_F(OsMcTest, CorruptEmbeddedCteCaughtByVerification)
{
    cfg_.faults.cteBitFlipRate = 0.05; // ~0.8 per 30-bit field
    cfg_.faults.seed = 10;
    OsInspiredMc mc(dram_, info_, phys_, cfg_);
    unsigned mismatches = 0;
    // Stride by the CTE-cache block reach (8 pages/block) so every
    // read misses the CTE cache and takes the speculative path.
    for (Ppn p = 8; p <= 1600; p += 8) {
        mc.placePage(p);
        McReadRequest req = readReq(p);
        req.hasEmbeddedCte = true;
        req.embeddedCte = mc.truncatedCte(p); // correct before the flip
        const McReadResponse r = mc.read(req);
        // A flipped embedded CTE must surface as a verification
        // mismatch (slower re-access), never as wrong data.
        EXPECT_TRUE(r.parallelAccess || r.embeddedMismatch);
        mismatches += r.embeddedMismatch;
    }
    EXPECT_GT(mismatches, 0u);

    StatDump dump;
    mc.dumpStats(dump, "mc");
    EXPECT_EQ(dump.get("mc.cte_mismatch"),
              static_cast<double>(mismatches));
}

TEST_F(OsMcTest, CorruptPtbImageFallsBackToUncompressed)
{
    cfg_.faults.ptbBitFlipRate = 5e-3; // most 64B images take a hit
    cfg_.faults.seed = 11;
    OsInspiredMc mc(dram_, info_, phys_, cfg_);

    PteFlags f;
    f.accessed = true;
    f.dirty = true;
    for (Vpn v = 0; v < ptesPerPtb; ++v)
        table_.map(v, 100 + v, f);
    for (Ppn p = 100; p < 100 + ptesPerPtb; ++p)
        mc.placePage(p);

    const WalkResult w = table_.walk(0);
    const Addr ptb = w.steps.back().ptbAddr;

    unsigned rejected = 0;
    for (int i = 0; i < 200; ++i) {
        const auto view = mc.ptbView(ptb);
        if (!view.compressed) {
            ++rejected;
            continue;
        }
        // Accepted views carry in-range CTE values even when a CRC
        // escape let damage through.
        for (unsigned s = 0; s < ptesPerPtb; ++s)
            if (view.hasCte[s])
                EXPECT_LT(view.cte[s],
                          1ULL << mc.ptbCodec().truncatedCteBits());
    }
    EXPECT_GT(rejected, 0u);

    StatDump dump;
    mc.dumpStats(dump, "mc");
    EXPECT_EQ(dump.get("mc.ptb_decode_rejects"),
              static_cast<double>(rejected));
}

} // namespace
} // namespace tmcc
