/** Property/fuzz tests: ML1/ML2 conservation under random traffic. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tmcc/os_mc.hh"

namespace tmcc
{
namespace
{

class VariedInfo : public PageInfoProvider
{
  public:
    const PageProfile &
    profile(Ppn ppn) const override
    {
        // Deterministic per-page compressibility spanning every
        // sub-chunk class plus incompressible pages.
        static thread_local PageProfile p;
        const std::uint64_t h = ppn * 0x9e3779b97f4a7c15ULL;
        const unsigned bucket = (h >> 33) % 10;
        p = PageProfile{};
        p.deflateBytes =
            bucket == 9 ? pageSize
                        : static_cast<std::uint32_t>(200 + bucket * 330);
        p.blockBytes = 2500 + (h >> 40) % 1500;
        p.lzTokens = 1200;
        return p;
    }
};

class OsMcFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(OsMcFuzz, LocationAndFrameConservation)
{
    DramSystem dram(DramConfig{}, InterleaveConfig{});
    PhysMem phys(1 << 18);
    VariedInfo info;
    OsMcConfig cfg;
    cfg.dramBudgetBytes = 24ULL << 20; // 6K frames: tight
    cfg.freeListLow = 128;
    cfg.freeListCritical = 64;
    cfg.evictBatch = 16;
    OsInspiredMc mc(dram, info, phys, cfg);

    Rng rng(GetParam());
    constexpr Ppn max_page = 7000;
    Tick t = 1000;

    for (int i = 0; i < 20000; ++i) {
        t += 10000 + rng.below(100000);
        const Ppn ppn = 1 + rng.zipf(max_page, 1.2);
        const Addr paddr =
            (ppn << pageShift) | (rng.below(blocksPerPage) * blockSize);
        if (rng.chance(0.25)) {
            mc.writeback(paddr, t, rng.chance(0.05));
        } else {
            McReadRequest req;
            req.paddr = paddr;
            req.when = t;
            if (rng.chance(0.3)) {
                req.hasEmbeddedCte = true;
                // Sometimes correct, sometimes garbage (stale).
                req.embeddedCte = rng.chance(0.5)
                                      ? mc.truncatedCte(ppn)
                                      : rng.below(1 << 20);
            }
            const McReadResponse resp = mc.read(req);
            ASSERT_GE(resp.complete, req.when);
            ASSERT_TRUE(resp.hasCorrectCte);
            // The piggybacked CTE always matches the page's location
            // AFTER the access (ML2 hits migrate the page).
            ASSERT_EQ(resp.correctCte, mc.truncatedCte(ppn));
        }
    }

    // Conservation: used bytes never exceed the seeded budget plus
    // any accounted overruns (the free-list floor and recency-list
    // overhead are the slack).
    EXPECT_LE(mc.dramUsedBytes(),
              cfg.dramBudgetBytes +
                  mc.budgetOverruns() * 64 * pageSize + (1ULL << 20));
}

TEST_P(OsMcFuzz, RepeatedMigrationCyclesStaySane)
{
    DramSystem dram(DramConfig{}, InterleaveConfig{});
    PhysMem phys(1 << 18);
    VariedInfo info;
    OsMcConfig cfg;
    cfg.dramBudgetBytes = 8ULL << 20;
    cfg.freeListLow = 64;
    cfg.freeListCritical = 32;
    OsInspiredMc mc(dram, info, phys, cfg);

    Rng rng(GetParam() + 31);
    Tick t = 1000;
    // Two alternating working sets larger than ML1 force continuous
    // eviction/migration cycles.
    for (int round = 0; round < 6; ++round) {
        const Ppn base = 1 + (round % 2) * 4000;
        for (Ppn p = base; p < base + 2500; ++p) {
            t += 200000;
            McReadRequest req;
            req.paddr = p << pageShift;
            req.when = t;
            const auto resp = mc.read(req);
            ASSERT_GE(resp.complete, t);
        }
    }
    StatDump d;
    mc.dumpStats(d, "mc");
    EXPECT_GT(d.get("mc.migrations_in"), 0.0);
    EXPECT_GT(d.get("mc.migrations_out"), 0.0);
    // Incompressible pages (bucket 9 = 10%) get retained, never cycled;
    // with 6 working sets x 10% pinned, the tight budget must overrun
    // gracefully rather than fail.
    EXPECT_GT(d.get("mc.incompressible_retained"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OsMcFuzz, ::testing::Range(0, 6));

} // namespace
} // namespace tmcc
