/** Tests for the Compresso baseline MC. */

#include <gtest/gtest.h>

#include "compresso/compresso_mc.hh"

namespace tmcc
{
namespace
{

class FixedInfo : public PageInfoProvider
{
  public:
    const PageProfile &
    profile(Ppn) const override
    {
        return prof_;
    }

    PageProfile prof_ = [] {
        PageProfile p;
        p.blockBytes = 2800; // -> 6 chunks of 512B
        p.deflateBytes = 1300;
        p.overflowP = 0.5; // high churn for repack tests
        return p;
    }();
};

class CompressoTest : public ::testing::Test
{
  protected:
    CompressoTest() : dram_(DramConfig{}, InterleaveConfig{})
    {
        mc_ = std::make_unique<CompressoMc>(dram_, info_,
                                            CompressoConfig{});
    }

    McReadRequest
    readReq(Ppn ppn, Tick when = 1000)
    {
        McReadRequest req;
        req.paddr = (ppn << pageShift) | 0x80;
        req.when = when;
        return req;
    }

    DramSystem dram_;
    FixedInfo info_;
    std::unique_ptr<CompressoMc> mc_;
};

TEST_F(CompressoTest, RegistrationAllocatesChunks)
{
    mc_->registerPage(5);
    // 2800B -> 6 chunks -> 3072B.
    EXPECT_EQ(mc_->dramUsedBytes(), 6u * 512u);
    mc_->registerPage(5); // idempotent
    EXPECT_EQ(mc_->dramUsedBytes(), 6u * 512u);
}

TEST_F(CompressoTest, CteHitIsSingleAccess)
{
    mc_->registerPage(5);
    mc_->cteCache().insert(5);
    const McReadResponse r = mc_->read(readReq(5));
    EXPECT_TRUE(r.cteCacheHit);
    EXPECT_LT(ticksToNs(r.complete - 1000), 45.0);
}

TEST_F(CompressoTest, CteMissSerializesMetadataThenData)
{
    mc_->registerPage(5);
    const McReadResponse r = mc_->read(readReq(5));
    EXPECT_FALSE(r.cteCacheHit);
    EXPECT_TRUE(r.serializedNoCte);
    EXPECT_GT(ticksToNs(r.complete - 1000), 55.0);
    // The CTE is cached afterwards.
    const McReadResponse r2 = mc_->read(readReq(5, 10000));
    EXPECT_TRUE(r2.cteCacheHit);
}

TEST_F(CompressoTest, NeverProducesEmbeddedCteMachinery)
{
    mc_->registerPage(5);
    McReadRequest req = readReq(5);
    req.hasEmbeddedCte = true; // Compresso ignores it
    req.embeddedCte = 99;
    const McReadResponse r = mc_->read(req);
    EXPECT_FALSE(r.parallelAccess);
}

TEST_F(CompressoTest, WritebacksTriggerRepacksOverTime)
{
    mc_->registerPage(5);
    for (int i = 0; i < 200; ++i)
        mc_->writeback((5ULL << pageShift) | (i % 64) * 64,
                       1000 + i * 100, false);
    StatDump d;
    mc_->dumpStats(d, "mc");
    EXPECT_GT(d.get("mc.repacks"), 10.0);
    EXPECT_GT(d.get("mc.cte_writes"), 10.0);
    // Usage stays near the profile's packed size.
    EXPECT_NEAR(d.get("mc.dram_used_bytes"), 6.0 * 512, 2 * 512);
}

TEST_F(CompressoTest, LlcVictimModeChangesMissPath)
{
    CompressoConfig cfg;
    cfg.cteVictimInLlc = true;
    CompressoMc mc(dram_, info_, cfg);
    mc.registerPage(7);
    // First miss: victim miss -> DRAM fetch delayed by the LLC probe.
    const McReadResponse r1 = mc.read(readReq(7));
    EXPECT_FALSE(r1.cteCacheHit);
    StatDump d;
    mc.dumpStats(d, "mc");
    EXPECT_EQ(d.get("mc.llc_victim_misses"), 1.0);
}

TEST_F(CompressoTest, BlocksOfPageLandInItsChunks)
{
    // Different blocks of one page must map inside the page's packed
    // allocation (distinct addresses, bounded span).
    mc_->registerPage(9);
    const McReadResponse a = mc_->read(readReq(9));
    (void)a;
    // No crash + bounded usage is the observable contract here.
    EXPECT_EQ(mc_->dramUsedBytes(), 6u * 512u);
}

TEST_F(CompressoTest, BackgroundReadOnlyTouchesCte)
{
    mc_->registerPage(5);
    McReadRequest req = readReq(5);
    req.background = true;
    const McReadResponse r = mc_->read(req);
    EXPECT_EQ(r.complete, req.when);
    EXPECT_TRUE(mc_->read(readReq(5, 9000)).cteCacheHit);
}

} // namespace
} // namespace tmcc
