/** Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace tmcc
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBound)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(5);
    constexpr int buckets = 8;
    int counts[buckets] = {};
    constexpr int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(buckets)];
    for (int c : counts) {
        EXPECT_GT(c, n / buckets * 0.9);
        EXPECT_LT(c, n / buckets * 1.1);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ZipfInBoundsAndSkewed)
{
    Rng rng(23);
    constexpr std::uint64_t n = 1000;
    std::uint64_t low_half = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i) {
        const auto v = rng.zipf(n, 1.2);
        ASSERT_LT(v, n);
        low_half += v < n / 10;
    }
    // A Zipf(1.2) draw should land in the first decile far more often
    // than the uniform 10%.
    EXPECT_GT(low_half, total / 2);
}

TEST(Rng, ZipfAlphaOneFallback)
{
    Rng rng(29);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.zipf(64, 1.0), 64u);
}

TEST(Rng, ZipfRankZeroMassMonotoneInAlpha)
{
    // Same seed for every alpha isolates the skew effect.  Alphas near
    // or below 1.0 share a log-uniform fallback that ignores alpha, so
    // the 0.8 -> 1.0 comparison is non-strict; 1.2 uses the rejection
    // sampler and must put strictly more mass on rank 0.
    constexpr std::uint64_t n = 1000;
    constexpr int draws = 40000;
    const double alphas[] = {0.8, 1.0, 1.2};
    double mass[3];
    for (int i = 0; i < 3; ++i) {
        Rng rng(101);
        int zero = 0;
        for (int d = 0; d < draws; ++d) {
            const auto v = rng.zipf(n, alphas[i]);
            ASSERT_LT(v, n);
            zero += v == 0;
        }
        mass[i] = static_cast<double>(zero) / draws;
    }
    EXPECT_LE(mass[0], mass[1]);
    EXPECT_LT(mass[1], mass[2]);
    // Log-uniform rank-0 mass is ~ln(2)/ln(n) ~= 0.10 at n=1000.
    EXPECT_GT(mass[0], 0.05);
}

TEST(Rng, ZipfReachesEveryRank)
{
    // Regression: both sampler paths returned floor(x) - 1 with x
    // capped below n, so rank n-1 had measure zero -- with a small n
    // (the memcloud tenant count) the last item was never drawn at
    // all.  Every rank must appear, with the tail rank's share in a
    // plausible band around its analytic mass.
    constexpr std::uint64_t n = 6;
    constexpr int draws = 60000;
    for (const double alpha : {0.8, 1.0, 1.2}) {
        Rng rng(37);
        int counts[n] = {};
        for (int d = 0; d < draws; ++d) {
            const auto v = rng.zipf(n, alpha);
            ASSERT_LT(v, n);
            ++counts[v];
        }
        for (std::uint64_t k = 0; k < n; ++k)
            EXPECT_GT(counts[k], 0)
                << "rank " << k << " never drawn at alpha " << alpha;
        // Zipf(6, 1.2) puts ~5.6% on the last rank; log-uniform
        // (alpha <= 1) puts ln(7/6)/ln(7) ~= 7.9% there.  Either way
        // well above 2% -- and exactly 0 before the fix.
        EXPECT_GT(counts[n - 1], draws / 50)
            << "tail rank starved at alpha " << alpha;
    }
}

TEST(Rng, GeometricMean)
{
    Rng rng(31);
    double sum = 0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(10.0));
    const double mean = sum / n;
    EXPECT_GT(mean, 8.5);
    EXPECT_LT(mean, 11.5);
}

} // namespace
} // namespace tmcc
