/** Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace tmcc
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBound)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(5);
    constexpr int buckets = 8;
    int counts[buckets] = {};
    constexpr int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(buckets)];
    for (int c : counts) {
        EXPECT_GT(c, n / buckets * 0.9);
        EXPECT_LT(c, n / buckets * 1.1);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ZipfInBoundsAndSkewed)
{
    Rng rng(23);
    constexpr std::uint64_t n = 1000;
    std::uint64_t low_half = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i) {
        const auto v = rng.zipf(n, 1.2);
        ASSERT_LT(v, n);
        low_half += v < n / 10;
    }
    // A Zipf(1.2) draw should land in the first decile far more often
    // than the uniform 10%.
    EXPECT_GT(low_half, total / 2);
}

TEST(Rng, ZipfAlphaOneFallback)
{
    Rng rng(29);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.zipf(64, 1.0), 64u);
}

TEST(Rng, GeometricMean)
{
    Rng rng(31);
    double sum = 0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(10.0));
    const double mean = sum / n;
    EXPECT_GT(mean, 8.5);
    EXPECT_LT(mean, 11.5);
}

} // namespace
} // namespace tmcc
