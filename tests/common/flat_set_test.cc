#include "common/flat_set.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>

#include "common/rng.hh"
#include "common/types.hh"

namespace tmcc
{
namespace
{

using Set = FlatHashSet<Addr, invalidAddr>;

TEST(FlatHashSet, BasicMembership)
{
    Set s;
    EXPECT_EQ(s.size(), 0u);
    EXPECT_FALSE(s.contains(0));
    EXPECT_TRUE(s.insert(0)); // zero is a legal key
    EXPECT_TRUE(s.insert(64));
    EXPECT_FALSE(s.insert(64)); // duplicate
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.contains(0));
    EXPECT_TRUE(s.contains(64));
    EXPECT_FALSE(s.contains(128));
    EXPECT_TRUE(s.erase(64));
    EXPECT_FALSE(s.erase(64));
    EXPECT_FALSE(s.contains(64));
    EXPECT_EQ(s.size(), 1u);
}

TEST(FlatHashSet, ClearEmptiesEverything)
{
    Set s;
    for (Addr a = 0; a < 1000; ++a)
        s.insert(a * 64);
    EXPECT_EQ(s.size(), 1000u);
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    for (Addr a = 0; a < 1000; ++a)
        EXPECT_FALSE(s.contains(a * 64));
    // Reusable after clear.
    EXPECT_TRUE(s.insert(64));
    EXPECT_TRUE(s.contains(64));
}

TEST(FlatHashSet, GrowsPastInitialCapacity)
{
    Set s(16);
    for (Addr a = 0; a < 100'000; ++a)
        ASSERT_TRUE(s.insert(a * 64));
    EXPECT_EQ(s.size(), 100'000u);
    for (Addr a = 0; a < 100'000; ++a)
        ASSERT_TRUE(s.contains(a * 64));
    EXPECT_FALSE(s.contains(100'000 * 64));
}

/** Randomized differential test against std::unordered_set: the same
 * insert/erase/contains stream must agree operation by operation —
 * backward-shift deletion is the part worth hammering. */
TEST(FlatHashSet, MatchesUnorderedSetUnderChurn)
{
    Set flat(16);
    std::unordered_set<Addr> ref;
    Rng rng(12345);
    for (int op = 0; op < 200'000; ++op) {
        // Small key space so probe chains collide and erases shift.
        const Addr key = (rng.next() % 512) * 64;
        switch (rng.next() % 3) {
          case 0:
            ASSERT_EQ(flat.insert(key), ref.insert(key).second);
            break;
          case 1:
            ASSERT_EQ(flat.erase(key), ref.erase(key) != 0);
            break;
          default:
            ASSERT_EQ(flat.contains(key), ref.count(key) != 0);
        }
        ASSERT_EQ(flat.size(), ref.size());
    }
    for (Addr a = 0; a < 512; ++a)
        ASSERT_EQ(flat.contains(a * 64), ref.count(a * 64) != 0);
}

} // namespace
} // namespace tmcc
