/**
 * @file
 * The shared versioned-file container: every on-disk artifact
 * (checkpoints, shard specs/results, the sweep manifest) inherits its
 * guarantees, so they are tested once here — atomic publication under
 * concurrent multi-process-style writers, rejection taxonomy, and
 * tolerance of partially written files.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/status.hh"
#include "common/versioned_file.hh"

namespace tmcc
{
namespace
{

namespace fs = std::filesystem;

constexpr char magic[8] = {'T', 'M', 'C', 'C', 'T', 'E', 'S', 'T'};

class VersionedFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("tmcc_versioned_file_test_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    fs::path dir_;
};

TEST_F(VersionedFileTest, RoundTrip)
{
    const std::vector<std::uint8_t> payload = {1, 2, 3, 255, 0, 42};
    ASSERT_TRUE(writeVersionedFile(path("f"), magic, 7, payload).ok());
    const auto loaded = readVersionedFile(path("f"), magic, 7);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(*loaded, payload);
}

TEST_F(VersionedFileTest, EmptyPayloadRoundTrips)
{
    ASSERT_TRUE(writeVersionedFile(path("f"), magic, 1, {}).ok());
    const auto loaded = readVersionedFile(path("f"), magic, 1);
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(loaded->empty());
}

TEST_F(VersionedFileTest, NoTempFileSurvivesPublication)
{
    ASSERT_TRUE(
        writeVersionedFile(path("f"), magic, 1, {1, 2, 3}).ok());
    std::size_t entries = 0;
    for (const auto &e : fs::directory_iterator(dir_)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

/**
 * Many writers racing on one path (the multi-process TMCC_CKPT_DIR
 * scenario): every reader must observe some writer's complete payload —
 * unique temp names + rename make interleaved torn writes impossible.
 */
TEST_F(VersionedFileTest, ConcurrentWritersNeverTearTheFile)
{
    constexpr unsigned kWriters = 8;
    constexpr unsigned kRounds = 25;
    std::atomic<unsigned> writersDone{0};
    std::vector<std::thread> writers;
    for (unsigned w = 0; w < kWriters; ++w)
        writers.emplace_back([&, w] {
            // Distinct sizes and contents per writer, so a spliced
            // file could not pass both the length and CRC checks.
            std::vector<std::uint8_t> payload(64 + 64 * w,
                                              static_cast<std::uint8_t>(w));
            for (unsigned r = 0; r < kRounds; ++r)
                ASSERT_TRUE(writeVersionedFile(path("shared"), magic, 1,
                                               payload)
                                .ok());
            writersDone.fetch_add(1);
        });

    // Read concurrently until every writer has finished.
    unsigned observed = 0;
    while (writersDone.load() < kWriters) {
        const auto loaded = readVersionedFile(path("shared"), magic, 1);
        if (!loaded.ok())
            continue; // not yet published at all
        ++observed;
        const std::vector<std::uint8_t> &p = *loaded;
        ASSERT_FALSE(p.empty());
        const std::uint8_t w = p.front();
        ASSERT_LT(w, kWriters);
        EXPECT_EQ(p.size(), 64u + 64u * w);
        for (std::uint8_t byte : p)
            ASSERT_EQ(byte, w);
    }
    for (auto &t : writers)
        t.join();
    EXPECT_GT(observed, 0u);

    // After the dust settles: exactly the final file, no temp litter.
    const auto loaded = readVersionedFile(path("shared"), magic, 1);
    ASSERT_TRUE(loaded.ok());
    std::size_t entries = 0;
    for (const auto &e : fs::directory_iterator(dir_)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

/** A writer killed mid-temp-write leaves the published file intact. */
TEST_F(VersionedFileTest, StaleTempFileDoesNotShadowThePublishedFile)
{
    const std::vector<std::uint8_t> payload = {9, 9, 9};
    ASSERT_TRUE(writeVersionedFile(path("f"), magic, 1, payload).ok());
    // Simulate a crashed writer's leftovers.
    FILE *f = std::fopen(path("f.tmp.1234.0").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage", f);
    std::fclose(f);

    const auto loaded = readVersionedFile(path("f"), magic, 1);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(*loaded, payload);
}

TEST_F(VersionedFileTest, RejectionTaxonomy)
{
    const std::vector<std::uint8_t> payload(100, 0xab);
    ASSERT_TRUE(writeVersionedFile(path("f"), magic, 3, payload).ok());

    // Wrong magic.
    constexpr char other[8] = {'O', 'T', 'H', 'E', 'R', 'M', 'A', 'G'};
    EXPECT_EQ(readVersionedFile(path("f"), other, 3).status().code(),
              StatusCode::Corruption);

    // Wrong version (both directions).
    EXPECT_EQ(readVersionedFile(path("f"), magic, 2).status().code(),
              StatusCode::Corruption);
    EXPECT_EQ(readVersionedFile(path("f"), magic, 4).status().code(),
              StatusCode::Corruption);

    // Truncation: header-only prefix and mid-payload cut.
    fs::copy_file(path("f"), path("cut"));
    fs::resize_file(path("cut"), versionedFileHeaderBytes + 10);
    EXPECT_EQ(readVersionedFile(path("cut"), magic, 3).status().code(),
              StatusCode::Truncated);
    fs::resize_file(path("cut"), 5);
    EXPECT_EQ(readVersionedFile(path("cut"), magic, 3).status().code(),
              StatusCode::Truncated);

    // Payload damage fails the CRC.
    fs::copy_file(path("f"), path("bad"));
    FILE *fp = std::fopen(path("bad").c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    std::fseek(fp, -1, SEEK_END);
    std::fputc(0xcd, fp);
    std::fclose(fp);
    EXPECT_EQ(readVersionedFile(path("bad"), magic, 3).status().code(),
              StatusCode::ChecksumMismatch);

    // Missing file.
    EXPECT_FALSE(readVersionedFile(path("nope"), magic, 3).ok());
}

} // namespace
} // namespace tmcc
