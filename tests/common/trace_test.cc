/** Tests for the Chrome trace-event tracer and JSON escaping. */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/trace.hh"

namespace tmcc
{
namespace
{

std::string
readAll(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Every "ts":<number> in emission order. */
std::vector<double>
timestamps(const std::string &json)
{
    std::vector<double> ts;
    std::size_t pos = 0;
    while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
        pos += 5;
        ts.push_back(std::stod(json.substr(pos)));
    }
    return ts;
}

class TempTrace : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "trace_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".json";
        std::remove(path_.c_str());
    }

    void TearDown() override
    {
        Tracer::setActive(nullptr);
        std::remove(path_.c_str());
    }

    std::string path_;
};

TEST(JsonEscape, PassesPlainStringsThrough)
{
    EXPECT_EQ(jsonEscape("pageRank"), "pageRank");
    EXPECT_EQ(jsonEscape(""), "");
}

TEST(JsonEscape, EscapesSpecials)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape("\r\b\f"), "\\r\\b\\f");
    EXPECT_EQ(jsonEscape(std::string("\x01", 1)), "\\u0001");
    EXPECT_EQ(jsonEscape(std::string("\x1f", 1)), "\\u001f");
}

TEST_F(TempTrace, WritesWellFormedSortedEvents)
{
    Tracer tr(path_);
    // Emit out of timestamp order; the file must come out sorted.
    tr.complete("late", "test", 1, 3000.0, 10.0);
    tr.instant("early", "test", 1, 1000.0);
    tr.counter("gauge", 2000.0, 42.5);
    tr.processName(0, "host");
    EXPECT_EQ(tr.eventCount(), 4u);
    EXPECT_TRUE(tr.finish());

    const std::string json = readAll(path_);
    // Structural spot checks (CI validates with a real JSON parser).
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"early\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"name\":\"host\"}"),
              std::string::npos);
    // Metadata first, then strictly ordered timestamps (in us).
    EXPECT_LT(json.find("\"ph\":\"M\""), json.find("\"name\":\"early\""));
    const std::vector<double> ts = timestamps(json);
    ASSERT_EQ(ts.size(), 3u);
    EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
    EXPECT_DOUBLE_EQ(ts.front(), 1.0); // 1000ns == 1us
}

TEST_F(TempTrace, CapsBufferAndCountsDrops)
{
    Tracer tr(path_, /*max_events=*/3);
    for (int i = 0; i < 10; ++i)
        tr.instant("e", "test", 0, i * 100.0);
    EXPECT_EQ(tr.eventCount(), 3u);
    EXPECT_EQ(tr.droppedEvents(), 7u);
    EXPECT_TRUE(tr.finish());
    EXPECT_NE(readAll(path_).find("\"dropped_events\":7"),
              std::string::npos);
}

TEST_F(TempTrace, ActiveRegistrationAndPidScope)
{
    EXPECT_EQ(Tracer::active(), nullptr); // off by default
    EXPECT_EQ(Tracer::currentPid(), 0u);

    Tracer tr(path_);
    Tracer::setActive(&tr);
    EXPECT_EQ(Tracer::active(), &tr);

    EXPECT_EQ(tr.allocTrack(), 1u);
    EXPECT_EQ(tr.allocTrack(), 2u);
    {
        Tracer::PidScope outer(1);
        EXPECT_EQ(Tracer::currentPid(), 1u);
        {
            Tracer::PidScope inner(2);
            EXPECT_EQ(Tracer::currentPid(), 2u);
            tr.instant("inner", "test", 0, 0.0);
        }
        EXPECT_EQ(Tracer::currentPid(), 1u);
    }
    EXPECT_EQ(Tracer::currentPid(), 0u);

    Tracer::setActive(nullptr);
    EXPECT_EQ(Tracer::active(), nullptr);
    EXPECT_TRUE(tr.finish());
    EXPECT_NE(readAll(path_).find("\"pid\":2"), std::string::npos);
}

TEST_F(TempTrace, FinishIsIdempotentAndDtorWrites)
{
    {
        Tracer tr(path_);
        tr.instant("only", "test", 0, 1.0);
        // No explicit finish(): the destructor must write the file.
    }
    EXPECT_NE(readAll(path_).find("\"name\":\"only\""),
              std::string::npos);
}

TEST_F(TempTrace, ArgsJsonPassThrough)
{
    Tracer tr(path_);
    tr.complete("job", "runner", 3, 0.0, 5.0,
                "\"workload\":\"pageRank\",\"index\":3");
    EXPECT_TRUE(tr.finish());
    EXPECT_NE(readAll(path_).find(
                  "\"args\":{\"workload\":\"pageRank\",\"index\":3}"),
              std::string::npos);
}

} // namespace
} // namespace tmcc
