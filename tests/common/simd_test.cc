/**
 * @file
 * The probe-engine contract (common/simd.hh): every vector ISA
 * compiled into this build returns bit-identical results to ScalarIsa
 * — the oracle — for every primitive, every legal padded width, and
 * adversarial value distributions (heavy ties, sentinel values, keys
 * present / absent / duplicated).  This is what lets the structures
 * built on the engine claim SIMD builds are metric-identical to the
 * scalar fallback.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "common/simd.hh"

namespace tmcc
{
namespace
{

/** Value pools of increasing nastiness. */
std::uint64_t
drawValue(std::mt19937_64 &rng, int regime)
{
    switch (regime) {
    case 0: // wide: ties unlikely
        return rng();
    case 1: // narrow: constant ties everywhere
        return rng() % 4;
    case 2: // sentinel-heavy: ~0, ~0^1, 0 and small values
        switch (rng() % 4) {
        case 0: return ~std::uint64_t{0};
        case 1: return ~std::uint64_t{0} ^ 1;
        case 2: return 0;
        default: return rng() % 8;
        }
    default: // sign-bit straddling: exercises the biased compares
        return (rng() % 2 ? 0x8000000000000000ULL : 0) + rng() % 16;
    }
}

template <class Isa>
void
compareAgainstOracle()
{
    std::mt19937_64 rng(20260808);
    for (unsigned n = Isa::lanes; n <= simd::maxWays;
         n += Isa::lanes) {
        for (int regime = 0; regime < 4; ++regime) {
            for (int iter = 0; iter < 200; ++iter) {
                std::vector<std::uint64_t> vals(n), lru(n);
                for (auto &v : vals)
                    v = drawValue(rng, regime);
                for (auto &v : lru)
                    v = drawValue(rng, regime);
                // Probe for a value that is often present.
                const std::uint64_t key =
                    iter % 2 ? vals[rng() % n] : drawValue(rng, regime);
                const std::uint64_t key2 = drawValue(rng, regime);
                const std::uint64_t mask = drawValue(rng, regime);

                SCOPED_TRACE(std::string(Isa::name) + " n=" +
                             std::to_string(n) + " regime=" +
                             std::to_string(regime));
                EXPECT_EQ(
                    simd::ScalarIsa::eqMask(vals.data(), n, key),
                    Isa::eqMask(vals.data(), n, key));
                std::uint64_t sa, sb, va, vb;
                simd::ScalarIsa::eqMask2(vals.data(), n, key, key2,
                                         sa, sb);
                Isa::eqMask2(vals.data(), n, key, key2, va, vb);
                EXPECT_EQ(sa, va);
                EXPECT_EQ(sb, vb);
                EXPECT_EQ(simd::ScalarIsa::eqMaskAnd(vals.data(), n,
                                                     mask, key & mask),
                          Isa::eqMaskAnd(vals.data(), n, mask,
                                         key & mask));
                EXPECT_EQ(simd::ScalarIsa::minIndex(lru.data(), n),
                          Isa::minIndex(lru.data(), n));
                EXPECT_EQ(
                    simd::ScalarIsa::victimIndex(vals.data(),
                                                 lru.data(), n, key),
                    Isa::victimIndex(vals.data(), lru.data(), n, key));
            }
        }
    }
}

TEST(SimdProbe, ActiveIsaMatchesScalarOracle)
{
    compareAgainstOracle<simd::Active>();
}

#if defined(TMCC_SIMD_X86)
TEST(SimdProbe, Sse2MatchesScalarOracle)
{
    compareAgainstOracle<simd::Sse2Isa>();
}
#endif

#if defined(TMCC_SIMD_X86) && defined(__AVX2__)
TEST(SimdProbe, Avx2MatchesScalarOracle)
{
    compareAgainstOracle<simd::Avx2Isa>();
}
#endif

#if defined(TMCC_SIMD_NEON)
TEST(SimdProbe, NeonMatchesScalarOracle)
{
    compareAgainstOracle<simd::NeonIsa>();
}
#endif

TEST(SimdProbe, FirstWayAndPadWays)
{
    EXPECT_EQ(simd::firstWay(0b1), 0u);
    EXPECT_EQ(simd::firstWay(0b1010), 1u);
    EXPECT_EQ(simd::firstWay(std::uint64_t{1} << 63), 63u);
    for (unsigned a = 1; a <= simd::maxWays; ++a) {
        const unsigned p = simd::padWays(a);
        EXPECT_GE(p, a);
        EXPECT_EQ(p % simd::Active::lanes, 0u);
        EXPECT_LT(p - a, simd::Active::lanes);
    }
}

/** Directed corner cases the random regimes could in principle miss. */
TEST(SimdProbe, DirectedEdgeCases)
{
    using S = simd::Active;
    // All-equal values: earliest index must win.
    std::vector<std::uint64_t> same(simd::maxWays, 7);
    EXPECT_EQ(S::minIndex(same.data(), simd::maxWays), 0u);
    EXPECT_EQ(S::eqMask(same.data(), simd::maxWays, 7),
              ~std::uint64_t{0});
    // Minimum in the last lane of the last vector.
    std::vector<std::uint64_t> tail(8, 100);
    tail[7] = 1;
    EXPECT_EQ(S::minIndex(tail.data(), 8), 7u);
    // Invalid ways outrank every valid way in victimIndex, ties to
    // the earliest invalid.
    std::vector<std::uint64_t> tags = {5, ~0ULL, 9, ~0ULL};
    std::vector<std::uint64_t> lru = {1, 50, 2, 60};
    const unsigned lanes = S::lanes;
    if (4 % lanes == 0) {
        EXPECT_EQ(S::victimIndex(tags.data(), lru.data(), 4, ~0ULL),
                  1u);
    }
}

} // namespace
} // namespace tmcc
