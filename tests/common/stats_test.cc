/** Unit tests for the statistics primitives. */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace tmcc
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, MeanOfSamples)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 100.0, 10);
    h.sample(5);   // bucket 0
    h.sample(95);  // bucket 9
    h.sample(-1);  // underflow
    h.sample(100); // overflow (hi is exclusive)
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[9], 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.bucketLow(1), 10.0);
}

TEST(Histogram, TopEdgeClampRegression)
{
    // (v - lo) / (hi - lo) can round to exactly 1.0 for v just below
    // hi, which used to index one past the bucket array.  The widest
    // trigger: a huge |lo| makes both subtractions round to the same
    // value, so the ratio is exactly 1.0 while v < hi still holds.
    struct Case {
        double lo, hi;
        unsigned buckets;
    };
    const Case cases[] = {
        {-1e16, 1.5, 1},   {-1e16, 1.5, 7},    {-1e16, 1.5, 100},
        {0.0, 1.0, 1},     {0.0, 1e-300, 3},   {-1.0, 1.0, 64},
        {1e15, 1e15 + 2, 2},
    };
    for (const Case &c : cases) {
        Histogram h(c.lo, c.hi, c.buckets);
        const double v = std::nextafter(c.hi, c.lo);
        h.sample(v); // must not write out of bounds
        EXPECT_EQ(h.count(), 1u);
        EXPECT_EQ(h.overflow(), 0u)
            << "lo=" << c.lo << " hi=" << c.hi;
        // The sample lands in-range; with the clamp it is counted in
        // the top bucket whenever rounding pushes the index past it.
        std::uint64_t in_buckets = 0;
        for (auto n : h.buckets())
            in_buckets += n;
        EXPECT_EQ(in_buckets, 1u)
            << "lo=" << c.lo << " hi=" << c.hi;
    }
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-1);
    h.sample(3);
    h.sample(99);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    for (auto n : h.buckets())
        EXPECT_EQ(n, 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, BucketLowEdges)
{
    Histogram h(100.0, 200.0, 4);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 100.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(2), 150.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(4), 200.0); // == hi
}

TEST(Histogram, Percentile)
{
    Histogram h(0.0, 100.0, 10);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0); // empty -> lo
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5); // one sample per unit, 10 per bucket
    EXPECT_NEAR(h.percentile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(0.95), 95.0, 1.0);
    EXPECT_LE(h.percentile(1.0), 100.0);
    EXPECT_GE(h.percentile(0.0), 0.0);
}

TEST(HistogramDeathTest, BadConstruction)
{
    EXPECT_EXIT(Histogram(0.0, 1.0, 0),
                ::testing::ExitedWithCode(1), "at least one bucket");
    EXPECT_EXIT(Histogram(1.0, 1.0, 4),
                ::testing::ExitedWithCode(1), "lo < hi");
    EXPECT_EXIT(Histogram(2.0, 1.0, 4),
                ::testing::ExitedWithCode(1), "lo < hi");
}

TEST(DumpHistogram, ExportsSummaryAndBuckets)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(1.5);
    h.sample(1.6);
    h.sample(7.5);
    h.sample(-5.0);
    StatDump d;
    dumpHistogram(d, "lat", h);
    EXPECT_DOUBLE_EQ(d.getRequired("lat.count"), 4.0);
    EXPECT_DOUBLE_EQ(d.getRequired("lat.underflow"), 1.0);
    EXPECT_DOUBLE_EQ(d.getRequired("lat.overflow"), 0.0);
    EXPECT_DOUBLE_EQ(d.getRequired("lat.lo"), 0.0);
    EXPECT_DOUBLE_EQ(d.getRequired("lat.hi"), 10.0);
    EXPECT_DOUBLE_EQ(d.getRequired("lat.num_buckets"), 10.0);
    EXPECT_DOUBLE_EQ(d.getRequired("lat.bucket001"), 2.0);
    EXPECT_DOUBLE_EQ(d.getRequired("lat.bucket007"), 1.0);
    EXPECT_FALSE(d.has("lat.bucket000")); // empty buckets are omitted
}

TEST(StatDumpDeathTest, GetRequiredMissingIsFatal)
{
    StatDump d;
    d.set("present", 1.0);
    EXPECT_DOUBLE_EQ(d.getRequired("present"), 1.0);
    EXPECT_EXIT(d.getRequired("absent"),
                ::testing::ExitedWithCode(1), "absent.*missing");
}

TEST(StatDump, SetGetPrint)
{
    StatDump d;
    d.set("a.hits", std::uint64_t{7});
    d.set("a.rate", 0.5);
    EXPECT_TRUE(d.has("a.hits"));
    EXPECT_FALSE(d.has("a.misses"));
    EXPECT_DOUBLE_EQ(d.get("a.hits"), 7.0);
    EXPECT_DOUBLE_EQ(d.get("a.rate"), 0.5);
    EXPECT_DOUBLE_EQ(d.get("missing"), 0.0);

    std::ostringstream os;
    d.print(os);
    EXPECT_NE(os.str().find("a.hits"), std::string::npos);
    EXPECT_NE(os.str().find("a.rate"), std::string::npos);
}

TEST(GeoMean, Values)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_DOUBLE_EQ(geoMean({4.0}), 4.0);
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

} // namespace
} // namespace tmcc
