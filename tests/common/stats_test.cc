/** Unit tests for the statistics primitives. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace tmcc
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, MeanOfSamples)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 100.0, 10);
    h.sample(5);   // bucket 0
    h.sample(95);  // bucket 9
    h.sample(-1);  // underflow
    h.sample(100); // overflow (hi is exclusive)
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[9], 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.bucketLow(1), 10.0);
}

TEST(StatDump, SetGetPrint)
{
    StatDump d;
    d.set("a.hits", std::uint64_t{7});
    d.set("a.rate", 0.5);
    EXPECT_TRUE(d.has("a.hits"));
    EXPECT_FALSE(d.has("a.misses"));
    EXPECT_DOUBLE_EQ(d.get("a.hits"), 7.0);
    EXPECT_DOUBLE_EQ(d.get("a.rate"), 0.5);
    EXPECT_DOUBLE_EQ(d.get("missing"), 0.0);

    std::ostringstream os;
    d.print(os);
    EXPECT_NE(os.str().find("a.hits"), std::string::npos);
    EXPECT_NE(os.str().find("a.rate"), std::string::npos);
}

TEST(GeoMean, Values)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_DOUBLE_EQ(geoMean({4.0}), 4.0);
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

} // namespace
} // namespace tmcc
