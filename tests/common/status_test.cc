/** Tests for the Status/StatusOr error-propagation vocabulary. */

#include <gtest/gtest.h>

#include "common/status.hh"

namespace tmcc
{
namespace
{

TEST(Status, OkByDefault)
{
    const Status s = Status::okStatus();
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Ok);
}

TEST(Status, FactoriesCarryCodeAndMessage)
{
    const Status s = Status::corruption("bad tag");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    EXPECT_EQ(s.message(), "bad tag");
    EXPECT_NE(s.toString().find("bad tag"), std::string::npos);

    EXPECT_EQ(Status::truncated("t").code(), StatusCode::Truncated);
    EXPECT_EQ(Status::checksumMismatch("c").code(),
              StatusCode::ChecksumMismatch);
    EXPECT_EQ(Status::invalidArgument("i").code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(Status::internal("x").code(), StatusCode::Internal);
}

TEST(StatusOr, HoldsValueOrStatus)
{
    StatusOr<int> good = 42;
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);

    StatusOr<int> bad = Status::truncated("short");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::Truncated);
}

TEST(StatusOr, MoveOnlyValuesWork)
{
    StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
    ASSERT_TRUE(v.ok());
    const std::vector<int> out = std::move(v).value();
    EXPECT_EQ(out.size(), 3u);
}

StatusOr<int>
half(int v)
{
    if (v % 2)
        return Status::invalidArgument("odd");
    return v / 2;
}

StatusOr<int>
quarter(int v)
{
    TMCC_ASSIGN_OR_RETURN(const int h, half(v));
    return half(h);
}

TEST(StatusOr, AssignOrReturnPropagates)
{
    EXPECT_EQ(quarter(8).value(), 2);
    EXPECT_FALSE(quarter(6).ok()); // 6/2 = 3 is odd
    EXPECT_FALSE(quarter(7).ok());
}

Status
needsEven(int v)
{
    TMCC_RETURN_IF_ERROR(half(v).status());
    return Status::okStatus();
}

TEST(Status, ReturnIfErrorPropagates)
{
    EXPECT_TRUE(needsEven(4).ok());
    EXPECT_FALSE(needsEven(5).ok());
}

} // namespace
} // namespace tmcc
