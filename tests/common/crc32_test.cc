/** Tests for the CRC-32 (IEEE) integrity checksum. */

#include <gtest/gtest.h>

#include "common/crc32.hh"

namespace tmcc
{
namespace
{

TEST(Crc32, KnownAnswer)
{
    // The classic CRC-32/ISO-HDLC check value.
    const std::uint8_t check[] = {'1', '2', '3', '4', '5',
                                  '6', '7', '8', '9'};
    EXPECT_EQ(crc32(check, sizeof(check)), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero)
{
    EXPECT_EQ(crc32(nullptr, 0), 0u);
    EXPECT_EQ(crc32(std::vector<std::uint8_t>{}), 0u);
}

TEST(Crc32, EveryBitMatters)
{
    std::vector<std::uint8_t> data(257);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 31);
    const std::uint32_t base = crc32(data);
    for (std::size_t bit = 0; bit < data.size() * 8; bit += 7) {
        auto mutated = data;
        mutated[bit >> 3] ^=
            static_cast<std::uint8_t>(1u << (bit & 7));
        EXPECT_NE(crc32(mutated), base) << "bit " << bit;
    }
}

TEST(Crc32, ConstexprUsable)
{
    constexpr std::uint8_t b[] = {0x00};
    constexpr std::uint32_t c = crc32(b, 1);
    static_assert(c != 0, "CRC of a zero byte is nonzero");
    EXPECT_EQ(c, 0xD202EF8Du);
}

} // namespace
} // namespace tmcc
