/** Unit tests for bit utilities and the Bit{Writer,Reader} pair. */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/rng.hh"

namespace tmcc
{
namespace
{

TEST(Bits, ExtractAndInsert)
{
    EXPECT_EQ(bits(0xdeadbeefULL, 0, 8), 0xefu);
    EXPECT_EQ(bits(0xdeadbeefULL, 8, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeefULL, 16, 16), 0xdeadu);
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);

    EXPECT_EQ(insertBits(0, 8, 8, 0xab), 0xab00ULL);
    EXPECT_EQ(insertBits(0xffffULL, 4, 8, 0), 0xf00fULL);
}

TEST(Bits, BitsFor)
{
    EXPECT_EQ(bitsFor(1), 0u);
    EXPECT_EQ(bitsFor(2), 1u);
    EXPECT_EQ(bitsFor(3), 2u);
    EXPECT_EQ(bitsFor(256), 8u);
    EXPECT_EQ(bitsFor(257), 9u);
    EXPECT_EQ(bitsFor(1ULL << 40), 40u);
}

TEST(Bits, FloorLog2AndPow2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(4095));
    EXPECT_FALSE(isPowerOf2(0));
}

TEST(BitStream, RoundTripFixedWidths)
{
    BitWriter bw;
    bw.put(0b101, 3);
    bw.put(0xff, 8);
    bw.put(0, 1);
    bw.put(0x12345, 20);
    auto bytes = bw.finish();

    BitReader br(bytes);
    EXPECT_EQ(br.get(3), 0b101u);
    EXPECT_EQ(br.get(8), 0xffu);
    EXPECT_EQ(br.get(1), 0u);
    EXPECT_EQ(br.get(20), 0x12345u);
}

TEST(BitStream, SizeAccounting)
{
    BitWriter bw;
    bw.put(1, 1);
    EXPECT_EQ(bw.sizeBits(), 1u);
    EXPECT_EQ(bw.sizeBytes(), 1u);
    bw.put(0x7f, 7);
    EXPECT_EQ(bw.sizeBits(), 8u);
    EXPECT_EQ(bw.sizeBytes(), 1u);
    bw.put(1, 1);
    EXPECT_EQ(bw.sizeBits(), 9u);
    EXPECT_EQ(bw.sizeBytes(), 2u);
}

TEST(BitStream, PeekSkip)
{
    BitWriter bw;
    bw.put(0b1101, 4);
    bw.put(0xaa, 8);
    auto bytes = bw.finish();

    BitReader br(bytes);
    EXPECT_EQ(br.peek(4), 0b1101u);
    EXPECT_EQ(br.peek(4), 0b1101u); // peek does not consume
    br.skip(4);
    EXPECT_EQ(br.get(8), 0xaau);
}

TEST(BitStream, RandomizedRoundTrip)
{
    Rng rng(7);
    for (int iter = 0; iter < 50; ++iter) {
        std::vector<std::pair<std::uint64_t, unsigned>> fields;
        BitWriter bw;
        const unsigned n = 1 + static_cast<unsigned>(rng.below(200));
        for (unsigned i = 0; i < n; ++i) {
            const unsigned width =
                1 + static_cast<unsigned>(rng.below(57));
            const std::uint64_t v =
                rng.next() & ((width >= 64) ? ~0ULL
                                            : ((1ULL << width) - 1));
            fields.emplace_back(v, width);
            bw.put(v, width);
        }
        auto bytes = bw.finish();
        BitReader br(bytes);
        for (const auto &[v, width] : fields)
            ASSERT_EQ(br.get(width), v);
    }
}

TEST(BitStream, ReadPastEndReturnsZeros)
{
    BitWriter bw;
    bw.put(0xff, 8);
    auto bytes = bw.finish();
    BitReader br(bytes);
    EXPECT_EQ(br.get(8), 0xffu);
    EXPECT_EQ(br.get(16), 0u);
    EXPECT_TRUE(br.exhausted());
}

} // namespace
} // namespace tmcc
