/**
 * @file
 * Capacity planner: the scenario the paper's introduction motivates —
 * a memory-constrained deployment deciding how much effective capacity
 * hardware compression can buy at what performance cost.
 *
 * For one workload, sweeps the TMCC DRAM budget from generous to
 * aggressive and prints the capacity/performance frontier next to the
 * Compresso operating point, i.e. a per-workload slice of Table IV.
 *
 * Usage: capacity_planner [workload] (default shortestPath)
 */

#include <cstdio>
#include <string>

#include "sim/system.hh"

using namespace tmcc;

int
main(int argc, char **argv)
{
    const std::string workload =
        argc > 1 ? argv[1] : "shortestPath";

    SimConfig base = SimConfig::scaledDefault();
    base.workload = workload;
    if (workload == "mcf" || workload == "omnetpp" ||
        workload == "canneal")
        base.scale = 0.8;
    base.measureAccesses /= 2;
    base.warmAccesses /= 2;

    std::printf("capacity/performance frontier for %s\n\n",
                workload.c_str());

    // Reference points.
    SimConfig none = base;
    none.arch = Arch::NoCompression;
    const SimResult rn = System(none).run();

    SimConfig comp = base;
    comp.arch = Arch::Compresso;
    const SimResult rc = System(comp).run();

    std::printf("%-26s %10s %12s %10s\n", "configuration", "ratio",
                "perf(acc/us)", "vs nocomp");
    std::printf("%-26s %10.2f %12.1f %10.2f\n", "no compression", 1.0,
                rn.accessesPerNs() * 1000, 1.0);
    std::printf("%-26s %10.2f %12.1f %10.2f\n", "compresso",
                rc.compressionRatio(), rc.accessesPerNs() * 1000,
                rc.accessesPerNs() / rn.accessesPerNs());

    const double iso = static_cast<double>(rc.dramUsedBytes) /
                       static_cast<double>(rc.footprintBytes);
    for (double frac : {iso, 0.8 * iso, 0.6 * iso, 0.45 * iso,
                        0.35 * iso}) {
        SimConfig cfg = base;
        cfg.arch = Arch::Tmcc;
        cfg.dramBudgetFraction = frac;
        const SimResult r = System(cfg).run();
        char label[64];
        std::snprintf(label, sizeof(label), "tmcc @ %.0f%% of footprint",
                      100.0 * frac);
        std::printf("%-26s %10.2f %12.1f %10.2f%s\n", label,
                    r.compressionRatio(), r.accessesPerNs() * 1000,
                    r.accessesPerNs() / rn.accessesPerNs(),
                    r.accessesPerNs() >= 0.99 * rc.accessesPerNs()
                        ? "   <= still >= Compresso perf"
                        : "");
    }

    std::printf("\nreading: pick the lowest budget whose performance "
                "still beats Compresso's\n(the paper's Table IV finds "
                "2.2x Compresso's effective capacity this way).\n");
    return 0;
}
