/**
 * @file
 * Quickstart: simulate one workload under three memory-compression
 * architectures and print the headline comparison (performance,
 * L3-miss latency, compression ratio) — a miniature of Figs. 17/18.
 *
 * Usage: quickstart [workload] [scale]
 *   workload: any of the paper's names (default pageRank)
 *   scale:    footprint scale factor (default 0.04 for a fast demo)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/system.hh"

using namespace tmcc;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "pageRank";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.04;

    std::printf("TMCC quickstart: workload=%s scale=%.3f\n",
                workload.c_str(), scale);
    std::printf("%-24s %12s %14s %12s\n", "architecture", "perf(acc/us)",
                "L3miss lat(ns)", "comp ratio");

    double base_perf = 0.0;
    for (Arch arch : {Arch::NoCompression, Arch::Compresso, Arch::Tmcc}) {
        SimConfig cfg;
        cfg.workload = workload;
        cfg.scale = scale;
        cfg.arch = arch;
        cfg.placementAccesses = 100'000;
        cfg.warmAccesses = 60'000;
        cfg.measureAccesses = 120'000;

        System system(cfg);
        const SimResult r = system.run();

        const double perf = r.accessesPerNs() * 1000.0;
        if (arch == Arch::NoCompression)
            base_perf = perf;
        std::printf("%-24s %12.1f %14.1f %12.2f%s\n", archName(arch),
                    perf, r.avgL3MissLatencyNs, r.compressionRatio(),
                    arch == Arch::NoCompression
                        ? ""
                        : (std::string("   (perf vs nocomp: ") +
                           std::to_string(perf / base_perf) + ")")
                              .c_str());
    }
    return 0;
}
