/**
 * @file
 * Compression explorer: runs every compressor in the library over a
 * chosen content family and prints what each stage of the
 * memory-specialized Deflate contributes — a hands-on tour of §V-B.
 *
 * Usage: compress_explorer [family] [structure] [repetition]
 *   family: text | pointer-heap | int-array | float-array | graph-csr
 *           | key-value | random   (default graph-csr)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.hh"
#include "compress/block_compressor.hh"
#include "compress/deflate_timing.hh"
#include "compress/rfc_deflate.hh"
#include "workloads/content.hh"

using namespace tmcc;

namespace
{

ContentFamily
familyByName(const std::string &name)
{
    const ContentFamily families[] = {
        ContentFamily::Zero,       ContentFamily::Text,
        ContentFamily::PointerHeap, ContentFamily::IntArray,
        ContentFamily::FloatArray, ContentFamily::GraphCsr,
        ContentFamily::KeyValue,   ContentFamily::Random,
    };
    for (ContentFamily f : families)
        if (name == contentFamilyName(f))
            return f;
    std::fprintf(stderr, "unknown family '%s', using graph-csr\n",
                 name.c_str());
    return ContentFamily::GraphCsr;
}

} // namespace

int
main(int argc, char **argv)
{
    ContentSpec spec;
    spec.family =
        familyByName(argc > 1 ? argv[1] : "graph-csr");
    spec.structure = argc > 2 ? std::atof(argv[2]) : 0.5;
    spec.repetition = argc > 3 ? std::atof(argv[3]) : 3.0;

    std::printf("content: %s (structure %.2f, repetition %.1f)\n\n",
                contentFamilyName(spec.family), spec.structure,
                spec.repetition);

    Rng rng(1);
    constexpr int pages = 16;
    BlockCompressor block;
    MemDeflate ours;
    MemDeflateConfig no_skip_cfg;
    no_skip_cfg.dynamicHuffmanSkip = false;
    MemDeflate no_skip(no_skip_cfg);
    RfcDeflate gzip_like;
    MemDeflateTiming timing;

    std::size_t raw = 0, blk = 0, def = 0, noskip = 0, rfc = 0;
    std::size_t lz_only_bits = 0, tokens = 0, literals = 0;
    double dec_ns = 0, comp_ns = 0;

    for (int i = 0; i < pages; ++i) {
        const auto page = generateContent(spec, rng);
        raw += page.size();
        blk += block.compressPage(page.data());
        const CompressedPage cp = ours.compress(page.data(),
                                                page.size());
        def += cp.sizeBytes();
        noskip +=
            no_skip.compress(page.data(), page.size()).sizeBytes();
        rfc += gzip_like.compress(page.data(), page.size()).sizeBytes();

        const auto lz_tokens =
            ours.lz().compress(page.data(), page.size());
        lz_only_bits += ours.lz().tokenBits(lz_tokens);
        tokens += cp.lzTokens;
        literals += cp.lzLiterals;

        const DeflateTiming t = timing.timing(cp);
        dec_ns += ticksToNs(t.decompressLatency);
        comp_ns += ticksToNs(t.compressLatency);

        // Verify bit-exact round trips while exploring.
        const auto round_trip = ours.decompress(cp);
        if (!round_trip.ok() || round_trip.value() != page) {
            std::fprintf(stderr, "round-trip mismatch!\n");
            return 1;
        }
    }

    auto ratio = [&](std::size_t c) {
        return static_cast<double>(raw) / static_cast<double>(c);
    };
    std::printf("%-38s %8s %8s\n", "codec", "ratio", "bytes/pg");
    std::printf("%-38s %8.3f %8zu\n", "block-level (best of 4, 64B)",
                ratio(blk), blk / pages);
    std::printf("%-38s %8.3f %8zu\n", "LZ stage alone (1KB CAM)",
                ratio(lz_only_bits / 8), lz_only_bits / 8 / pages);
    std::printf("%-38s %8.3f %8zu\n",
                "memory Deflate (no Huffman skip)", ratio(noskip),
                noskip / pages);
    std::printf("%-38s %8.3f %8zu\n", "memory Deflate (dynamic skip)",
                ratio(def), def / pages);
    std::printf("%-38s %8.3f %8zu\n", "RFC 1951 reference (gzip-like)",
                ratio(rfc), rfc / pages);

    std::printf("\nLZ token stream: %.1f tokens/page, %.0f%% literals\n",
                static_cast<double>(tokens) / pages,
                100.0 * static_cast<double>(literals) /
                    static_cast<double>(tokens ? tokens : 1));
    std::printf("modelled ASIC timing: decompress %.0fns, compress "
                "%.0fns per 4KB page (IBM: %.0f / %.0f)\n",
                dec_ns / pages, comp_ns / pages,
                ticksToNs(IbmDeflateTiming().decompressLatency(pageSize)),
                ticksToNs(IbmDeflateTiming().compressLatency(pageSize)));
    return 0;
}
