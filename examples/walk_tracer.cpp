/**
 * @file
 * Page-walk tracer: builds a real 4-level x86-64 page table, performs a
 * walk step by step, and shows exactly what TMCC's hardware sees —
 * which PTBs are fetched, whether each compresses (Fig. 7), which
 * truncated CTEs ride inside, and how a CTE-buffer hit converts the
 * final data access into a speculative parallel DRAM access (Fig. 11).
 *
 * Usage: walk_tracer [vaddr-hex] (default 0x40001234)
 */

#include <cstdio>
#include <cstdlib>

#include "tmcc/cte_buffer.hh"
#include "tmcc/os_mc.hh"
#include "vm/walker.hh"

using namespace tmcc;

namespace
{

class FlatInfo : public PageInfoProvider
{
  public:
    const PageProfile &
    profile(Ppn) const override
    {
        static const PageProfile p = [] {
            PageProfile q;
            q.blockBytes = 3000;
            q.deflateBytes = 1300;
            q.lzTokens = 1400;
            return q;
        }();
        return p;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const Addr vaddr =
        argc > 1 ? std::strtoull(argv[1], nullptr, 16) : 0x40001234ULL;

    PhysMem phys(1 << 20);
    PageTable table(phys);
    FlatInfo info;
    DramSystem dram(DramConfig{}, InterleaveConfig{});
    OsMcConfig cfg;
    cfg.dramBudgetBytes = 256ULL << 20;
    OsInspiredMc mc(dram, info, phys, cfg);

    // Map a small region around the target.
    PteFlags flags;
    flags.accessed = true;
    flags.dirty = true;
    const Vpn base_vpn = pageNumber(vaddr) & ~7ULL;
    for (Vpn v = base_vpn; v < base_vpn + 8; ++v) {
        const Ppn ppn = phys.allocFrame();
        table.map(v, ppn, flags);
        mc.placePage(ppn);
    }
    // Place the page-table pages too.
    phys.forEachPtPage([&](Ppn ppn, const PtPage &) {
        mc.placePage(ppn);
    });

    std::printf("tracing walk for vaddr 0x%llx\n\n",
                static_cast<unsigned long long>(vaddr));
    std::printf("PTB truncated-CTE geometry: %u-bit CTEs, up to %u per "
                "compressed PTB (§V-A5)\n\n",
                mc.ptbCodec().truncatedCteBits(),
                mc.ptbCodec().maxSlots());

    Walker walker(table);
    const WalkPlan plan = walker.plan(vaddr);
    if (!plan.valid) {
        std::printf("page fault: vaddr not mapped\n");
        return 1;
    }

    CteBuffer buffer;
    for (const WalkStep &step : plan.fetches) {
        std::printf("L%u PTB fetch @ paddr 0x%llx\n", step.level,
                    static_cast<unsigned long long>(step.ptbAddr));
        const auto view = mc.ptbView(step.ptbAddr);
        if (!view.compressed) {
            std::printf("    PTB not compressible (mixed status "
                        "bits)\n");
            continue;
        }
        std::printf("    PTB compressed; embedded CTEs:\n");
        for (unsigned i = 0; i < ptesPerPtb; ++i) {
            if (!view.present[i])
                continue;
            std::printf("      slot %u: ppn 0x%llx -> %s 0x%llx\n", i,
                        static_cast<unsigned long long>(view.ppns[i]),
                        view.hasCte[i] ? "cte" : "(no cte)",
                        static_cast<unsigned long long>(view.cte[i]));
            buffer.insert(view.ppns[i], view.hasCte[i], view.cte[i],
                          step.ptbAddr);
        }
    }

    std::printf("\nwalk resolved ppn 0x%llx (%s page)\n",
                static_cast<unsigned long long>(plan.ppn),
                plan.huge ? "2MB" : "4KB");

    // The data access: consult the CTE buffer as L2 would.
    McReadRequest req;
    req.paddr = (plan.ppn << pageShift) | (vaddr & (pageSize - 1));
    req.when = 1000000;
    if (const auto *e = buffer.lookup(plan.ppn);
        e != nullptr && e->hasCte) {
        req.hasEmbeddedCte = true;
        req.embeddedCte = e->cte;
        std::printf("CTE buffer hit: data access carries embedded CTE "
                    "0x%llx\n",
                    static_cast<unsigned long long>(e->cte));
    } else {
        std::printf("CTE buffer miss: data access has no embedded "
                    "CTE\n");
    }

    const McReadResponse resp = mc.read(req);
    std::printf("MC served the L3 miss in %.1fns: %s\n",
                ticksToNs(resp.complete - req.when),
                resp.cteCacheHit        ? "CTE-cache hit"
                : resp.parallelAccess   ? "parallel speculative access "
                                          "(embedded CTE verified)"
                : resp.embeddedMismatch ? "embedded CTE stale, "
                                          "re-accessed"
                                        : "serial CTE-then-data");
    return 0;
}
