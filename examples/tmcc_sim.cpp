/**
 * @file
 * tmcc_sim: the command-line front end to the simulator — run any
 * workload under any architecture/configuration without writing code.
 *
 * Usage: tmcc_sim [options]
 *   --workload NAME       benchmark name (default pageRank)
 *   --arch A              none|compresso|barebone|barebone+ml1|
 *                         barebone+ml2|tmcc (default tmcc)
 *   --scale F             footprint scale (default preset)
 *   --cores N             core count (default 4)
 *   --budget F            DRAM usage target as a fraction of the
 *                         footprint (default: match Compresso)
 *   --huge                use 2MB pages
 *   --no-prefetch         disable prefetchers
 *   --tlb N               TLB entries
 *   --cte-cache BYTES     TMCC/OS CTE cache size
 *   --measure N           measured accesses per core
 *   --seed N              RNG seed
 *   --fault-ml2 R         per-bit flip rate injected into ML2 images
 *   --fault-cte R         per-bit flip rate injected into embedded CTEs
 *   --fault-ptb R         per-bit flip rate injected into compressed PTBs
 *   --fault-seed N        fault-injection RNG seed
 *   --stats               dump every component counter
 *   --trace FILE          write a Chrome trace-event / Perfetto JSON
 *                         trace of the run (env: TMCC_TRACE)
 *   --stats-interval N    snapshot epoch statistics every N measured
 *                         accesses (env: TMCC_STATS_INTERVAL)
 *   --kernel MODE         measured-loop implementation: scalar|batch
 *                         (default batch; scalar is the bit-identical
 *                         reference oracle; env: TMCC_KERNEL)
 *   --sample K:W[:WARM]   SMARTS-style interval sampling: fast-forward
 *                         functionally between K evenly spaced detailed
 *                         windows of W accesses/core (each preceded by
 *                         WARM accesses/core of detailed warm-up,
 *                         default W); headline metrics are reported as
 *                         mean +/- 95% CI over the windows
 *                         (env: TMCC_SAMPLE)
 *   --stats-out FILE      write the epoch time series as JSON
 *   --record FILE N       record N accesses of the workload to FILE
 *                         (no simulation) and exit
 *   --tenants N           memcloud only: guest address spaces
 *                         multiplexed on the host (default 6, max 1024)
 *   --tenant-churn R      memcloud only: per-burst probability the
 *                         scheduled guest has been replaced (default
 *                         0.001)
 *   --tenant-zipf A       memcloud only: tenant popularity Zipf alpha
 *                         (default 1.1)
 *   --sweep SET           run every entry of SET (large|small|
 *                         bandwidth|all under the configured arch,
 *                         fig17 = large x {compresso,tmcc}, or
 *                         memcloud = memcloud x {barebone,compresso,
 *                         tmcc}), in parallel, one row per entry
 *   --jobs N              worker threads for --sweep (default:
 *                         TMCC_JOBS or all cores)
 *   --dispatch MODE       how --sweep executes (docs/SWEEP.md):
 *                           thread  in-process SimRunner (default)
 *                           fork    fault-tolerant forked worker
 *                                   processes (the --shards executor)
 *                           queue   enqueue on a lease-based work
 *                                   queue served by tmcc_simd daemons
 *   --shards N            shard count for fork/queue dispatch (env:
 *                         TMCC_SHARDS; unset/0 with --dispatch=fork|
 *                         queue defaults to hardware_concurrency
 *                         clamped to [1,64]; --shards N alone implies
 *                         --dispatch=fork for back-compat)
 *   --queue-dir DIR       queue directory for --dispatch=queue (env:
 *                         TMCC_QUEUE_DIR; default tmcc-queue); shared
 *                         with the tmcc_simd workers serving it
 *   --queue-poll SEC      result-poll interval (default 0.5)
 *   --queue-timeout SEC   give up waiting for workers after SEC
 *                         (default: wait forever)
 *   --sweep-dir DIR       sweep directory for the manifest and shard
 *                         files; reuse it to resume an interrupted
 *                         sweep (default: tmcc-sweep-<gridkey8>)
 *   --shard-timeout SEC   per-attempt wall-clock watchdog; a worker
 *                         exceeding it is SIGKILLed and the shard
 *                         retried (default: none)
 *   --shard-attempts N    attempt cap per shard before it is marked
 *                         failed in the manifest (default: 3)
 *   --shard-spec FILE     internal: run as a sweep shard worker
 *   --ckpt-dir DIR        persist setup checkpoints to DIR and restore
 *                         from them on later runs (env: TMCC_CKPT_DIR;
 *                         TMCC_CKPT=0 disables checkpointing entirely)
 *   --list                list known workloads and exit
 *
 * A recorded trace replays as a workload: --workload trace:FILE
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/json.hh"
#include "common/trace.hh"
#include "sim/checkpoint.hh"
#include "sim/runner.hh"
#include "sim/shard_runner.hh"
#include "sim/sweep_manifest.hh"
#include "sim/sweep_queue.hh"
#include "sim/system.hh"
#include "workloads/trace.hh"

#include <unistd.h>

using namespace tmcc;

namespace
{

Arch
archByName(const std::string &name)
{
    if (name == "none" || name == "nocomp")
        return Arch::NoCompression;
    if (name == "compresso")
        return Arch::Compresso;
    if (name == "barebone")
        return Arch::Barebone;
    if (name == "barebone+ml1")
        return Arch::BarebonePlusMl1;
    if (name == "barebone+ml2")
        return Arch::BarebonePlusMl2;
    if (name == "tmcc")
        return Arch::Tmcc;
    std::fprintf(stderr, "unknown arch '%s'\n", name.c_str());
    std::exit(1);
}

/** One row of a sweep: a workload, optionally pinned to an arch (the
 * cross-arch sets), and the label metrics are reported under. */
struct SweepEntry
{
    std::string label;
    std::string workload;
    bool hasArch = false;
    Arch arch = Arch::Tmcc;
};

std::vector<SweepEntry>
sweepSet(const std::string &set)
{
    std::vector<SweepEntry> entries;
    if (set == "large" || set == "all")
        for (const auto &n : largeWorkloadNames())
            entries.push_back({n, n});
    if (set == "small" || set == "all")
        for (const auto &n : smallWorkloadNames())
            entries.push_back({n, n});
    if (set == "bandwidth" || set == "all")
        for (const auto &n : bandwidthWorkloadNames())
            entries.push_back({n, n});
    if (set == "fig17")
        // The paper's headline comparison: every large/irregular
        // workload under Compresso and TMCC.  Labels carry the arch so
        // serial and distributed runs report identical metric keys.
        for (const auto &n : largeWorkloadNames())
            for (const Arch a : {Arch::Compresso, Arch::Tmcc})
                entries.push_back(
                    {n + ":" + archName(a), n, true, a});
    if (set == "memcloud")
        // The multi-tenant scenario under each interesting MC: how much
        // tenant-tail isolation each architecture preserves.
        for (const Arch a :
             {Arch::Barebone, Arch::Compresso, Arch::Tmcc})
            entries.push_back({std::string("memcloud:") + archName(a),
                               "memcloud", true, a});
    if (entries.empty()) {
        std::fprintf(stderr,
                     "--sweep wants large|small|bandwidth|all|fig17|"
                     "memcloud, got '%s'\n",
                     set.c_str());
        std::exit(1);
    }
    return entries;
}

std::uint64_t
parsePositiveCount(const char *s, const char *what)
{
    char *end = nullptr;
    const long long v = std::strtoll(s, &end, 10);
    if (s[0] == '\0' || *end != '\0' || v <= 0) {
        std::fprintf(stderr, "%s must be a positive integer, got "
                             "\"%s\"\n",
                     what, s);
        std::exit(1);
    }
    return static_cast<std::uint64_t>(v);
}

std::uint64_t
parseNonNegativeCount(const char *s, const char *what)
{
    char *end = nullptr;
    const long long v = std::strtoll(s, &end, 10);
    if (s[0] == '\0' || *end != '\0' || v < 0) {
        std::fprintf(stderr, "%s must be a non-negative integer, got "
                             "\"%s\"\n",
                     what, s);
        std::exit(1);
    }
    return static_cast<std::uint64_t>(v);
}

/** Strict [0, 1] rate for the --fault-* flags: std::atof would turn
 * garbage into a silent 0.0 (faults off), which is the worst possible
 * failure mode for a fault-injection campaign. */
double
parseRate(const char *s, const char *what)
{
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (s[0] == '\0' || *end != '\0' || !std::isfinite(v) || v < 0.0 ||
        v > 1.0) {
        std::fprintf(stderr, "%s must be a rate in [0, 1], got "
                             "\"%s\"\n",
                     what, s);
        std::exit(1);
    }
    return v;
}

/** Strict positive real for --tenant-zipf: a silently-zero alpha would
 * trip the workload's fatal check with a worse message. */
double
parsePositiveReal(const char *s, const char *what)
{
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (s[0] == '\0' || *end != '\0' || !std::isfinite(v) || v <= 0.0) {
        std::fprintf(stderr, "%s must be a positive number, got "
                             "\"%s\"\n",
                     what, s);
        std::exit(1);
    }
    return v;
}

double
parsePositiveSeconds(const char *s, const char *what)
{
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (s[0] == '\0' || *end != '\0' || !std::isfinite(v) || v <= 0.0) {
        std::fprintf(stderr, "%s must be a positive number of seconds, "
                             "got \"%s\"\n",
                     what, s);
        std::exit(1);
    }
    return v;
}

/** The path workers re-exec: /proc/self/exe when resolvable (robust
 * against a relative argv[0] + chdir), else argv[0]. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

/** Epoch time series as JSON: one entry per run, one row per epoch. */
void
writeEpochStats(const std::string &path,
                const std::vector<std::string> &names,
                const std::vector<const SimResult *> &results)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write epoch stats to %s\n",
                     path.c_str());
        std::exit(1);
    }
    std::fprintf(f, "{\"runs\":[");
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::fprintf(f, "%s\n{\"workload\":\"%s\",\"epochs\":[",
                     i ? "," : "", jsonEscape(names[i]).c_str());
        const auto &epochs = results[i]->epochs;
        for (std::size_t e = 0; e < epochs.size(); ++e) {
            const EpochStat &ep = epochs[e];
            std::fprintf(
                f,
                "%s\n{\"accesses\":%llu,\"delta_accesses\":%llu,"
                "\"end_ns\":%.4f,\"ml2_access_rate\":%.6g,"
                "\"cte_hit_rate\":%.6g,\"dram_used_mb\":%.6g}",
                e ? "," : "",
                static_cast<unsigned long long>(ep.accesses),
                static_cast<unsigned long long>(ep.deltaAccesses),
                ticksToNs(ep.endTick), ep.ml2AccessRate, ep.cteHitRate,
                ep.dramUsedBytes / (1 << 20));
        }
        std::fprintf(f, "\n]}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
}

void
listWorkloads()
{
    std::printf("large/irregular:");
    for (const auto &n : largeWorkloadNames())
        std::printf(" %s", n.c_str());
    std::printf("\nsmall/regular:  ");
    for (const auto &n : smallWorkloadNames())
        std::printf(" %s", n.c_str());
    std::printf("\nbandwidth:      ");
    for (const auto &n : bandwidthWorkloadNames())
        std::printf(" %s", n.c_str());
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig cfg = SimConfig::scaledDefault();
    // The CLI defaults to the batched kernel: it is bit-identical to
    // the scalar oracle (tests/sim/kernel_identity_test.cc) and much
    // faster.  The library default stays Scalar so programmatic users
    // opt in explicitly.
    cfg.kernel = KernelMode::Batch;
    bool dump_all = false;
    bool scale_set = false;
    std::string sweep;
    std::string tenant_flag; //!< last --tenant* flag seen (validation)
    unsigned jobs = 0;

    // Sharded-sweep supervisor knobs (docs/SWEEP.md).
    unsigned shards = 0;
    bool shards_flag = false; //!< --shards given on the command line
    std::string sweep_dir;
    double shard_timeout = 0.0;
    unsigned shard_attempts = 3;
    if (const char *env = std::getenv("TMCC_SHARDS"); env && *env)
        shards = static_cast<unsigned>(
            parseNonNegativeCount(env, "TMCC_SHARDS"));

    // Queue-dispatch knobs (docs/SWEEP.md phase 2).
    std::string dispatch;
    std::string queue_dir = "tmcc-queue";
    double queue_poll = 0.5;
    double queue_timeout = 0.0;
    if (const char *env = std::getenv("TMCC_QUEUE_DIR"); env && *env)
        queue_dir = env;

    // Observability knobs: environment supplies the defaults, the
    // command line overrides (validated identically either way).
    std::string trace_path;
    std::string stats_out;
    if (const char *env = std::getenv("TMCC_TRACE"); env && *env)
        trace_path = env;
    if (const char *env = std::getenv("TMCC_STATS_INTERVAL");
        env && *env)
        cfg.statsInterval =
            parsePositiveCount(env, "TMCC_STATS_INTERVAL");
    if (const char *env = std::getenv("TMCC_KERNEL"); env && *env)
        cfg.kernel = parseKernelMode("TMCC_KERNEL", env);
    if (const char *env = std::getenv("TMCC_SAMPLE"); env && *env)
        parseSampleSpec("TMCC_SAMPLE", env, cfg);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            cfg.workload = value();
        } else if (arg == "--arch") {
            cfg.arch = archByName(value());
        } else if (arg == "--scale") {
            cfg.scale = std::atof(value());
            scale_set = true;
        } else if (arg == "--cores") {
            cfg.cores = static_cast<unsigned>(std::atoi(value()));
        } else if (arg == "--budget") {
            cfg.dramBudgetFraction = std::atof(value());
        } else if (arg == "--huge") {
            cfg.hugePages = true;
        } else if (arg == "--no-prefetch") {
            cfg.hierarchy.prefetchers = false;
        } else if (arg == "--tlb") {
            cfg.tlbEntries = static_cast<unsigned>(std::atoi(value()));
        } else if (arg == "--cte-cache") {
            cfg.osMc.cteCacheBytes =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (arg == "--measure") {
            cfg.measureAccesses =
                static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--seed") {
            cfg.seed = static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--fault-ml2") {
            cfg.osMc.faults.ml2BitFlipRate =
                parseRate(value(), "--fault-ml2");
        } else if (arg == "--fault-cte") {
            cfg.osMc.faults.cteBitFlipRate =
                parseRate(value(), "--fault-cte");
        } else if (arg == "--fault-ptb") {
            cfg.osMc.faults.ptbBitFlipRate =
                parseRate(value(), "--fault-ptb");
        } else if (arg == "--fault-seed") {
            cfg.osMc.faults.seed =
                parseNonNegativeCount(value(), "--fault-seed");
        } else if (arg == "--stats") {
            dump_all = true;
        } else if (arg == "--trace") {
            trace_path = value();
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_path = arg.substr(std::strlen("--trace="));
        } else if (arg == "--stats-interval") {
            cfg.statsInterval =
                parsePositiveCount(value(), "--stats-interval");
        } else if (arg.rfind("--stats-interval=", 0) == 0) {
            cfg.statsInterval = parsePositiveCount(
                arg.c_str() + std::strlen("--stats-interval="),
                "--stats-interval");
        } else if (arg == "--kernel") {
            cfg.kernel = parseKernelMode("--kernel", value());
        } else if (arg.rfind("--kernel=", 0) == 0) {
            cfg.kernel = parseKernelMode(
                "--kernel", arg.substr(std::strlen("--kernel=")));
        } else if (arg == "--sample") {
            parseSampleSpec("--sample", value(), cfg);
        } else if (arg.rfind("--sample=", 0) == 0) {
            parseSampleSpec("--sample",
                            arg.substr(std::strlen("--sample=")), cfg);
        } else if (arg == "--stats-out") {
            stats_out = value();
        } else if (arg.rfind("--stats-out=", 0) == 0) {
            stats_out = arg.substr(std::strlen("--stats-out="));
        } else if (arg == "--record") {
            const std::string path = value();
            const auto n =
                static_cast<std::uint64_t>(std::atoll(value()));
            auto wl = makeWorkload(cfg.workload, 0, cfg.cores,
                                   cfg.scale, cfg.seed);
            TraceRecorder::record(*wl, path, n);
            std::printf("recorded %llu accesses of %s to %s\n",
                        static_cast<unsigned long long>(n),
                        cfg.workload.c_str(), path.c_str());
            return 0;
        } else if (arg == "--tenants") {
            const std::uint64_t v =
                parsePositiveCount(value(), "--tenants");
            if (v > 1024) {
                std::fprintf(stderr,
                             "--tenants caps at 1024, got %llu\n",
                             static_cast<unsigned long long>(v));
                return 1;
            }
            cfg.tenants = static_cast<unsigned>(v);
            tenant_flag = "--tenants";
        } else if (arg == "--tenant-churn") {
            cfg.tenantChurn = parseRate(value(), "--tenant-churn");
            tenant_flag = "--tenant-churn";
        } else if (arg == "--tenant-zipf") {
            cfg.tenantZipf =
                parsePositiveReal(value(), "--tenant-zipf");
            tenant_flag = "--tenant-zipf";
        } else if (arg == "--sweep") {
            sweep = value();
        } else if (arg == "--shards") {
            shards = static_cast<unsigned>(
                parseNonNegativeCount(value(), "--shards"));
            shards_flag = true;
        } else if (arg == "--dispatch") {
            dispatch = value();
        } else if (arg.rfind("--dispatch=", 0) == 0) {
            dispatch = arg.substr(std::strlen("--dispatch="));
        } else if (arg == "--queue-dir") {
            queue_dir = value();
        } else if (arg.rfind("--queue-dir=", 0) == 0) {
            queue_dir = arg.substr(std::strlen("--queue-dir="));
        } else if (arg == "--queue-poll") {
            queue_poll = parsePositiveSeconds(value(), "--queue-poll");
        } else if (arg == "--queue-timeout") {
            queue_timeout =
                parsePositiveSeconds(value(), "--queue-timeout");
        } else if (arg == "--sweep-dir") {
            sweep_dir = value();
        } else if (arg == "--shard-timeout") {
            shard_timeout =
                parsePositiveSeconds(value(), "--shard-timeout");
        } else if (arg == "--shard-attempts") {
            shard_attempts = static_cast<unsigned>(
                parsePositiveCount(value(), "--shard-attempts"));
        } else if (arg == "--shard-spec") {
            // Sweep worker mode: run the shard and publish its result
            // file; the supervisor interprets our exit status.
            return ShardRunner::workerMain(value());
        } else if (arg == "--ckpt-dir") {
            CheckpointStore::global().setDiskDir(value());
        } else if (arg.rfind("--ckpt-dir=", 0) == 0) {
            CheckpointStore::global().setDiskDir(
                arg.substr(std::strlen("--ckpt-dir=")));
        } else if (arg == "--jobs") {
            const int v = std::atoi(value());
            if (v <= 0) {
                std::fprintf(stderr,
                             "--jobs wants a positive integer\n");
                return 1;
            }
            jobs = static_cast<unsigned>(v);
        } else if (arg == "--list") {
            listWorkloads();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("see the header of examples/tmcc_sim.cpp\n");
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s (try --help)\n",
                         arg.c_str());
            return 1;
        }
    }

    // The tenant knobs only shape the memcloud engine; accepting them
    // elsewhere would silently do nothing.
    if (!tenant_flag.empty() && cfg.workload != "memcloud" &&
        sweep != "memcloud") {
        std::fprintf(stderr,
                     "%s only applies to --workload=memcloud or "
                     "--sweep=memcloud\n",
                     tenant_flag.c_str());
        return 1;
    }

    auto preset_scale = [&](SimConfig &c) {
        if (!scale_set &&
            (c.workload == "mcf" || c.workload == "omnetpp" ||
             c.workload == "canneal"))
            c.scale = 0.8;
    };

    std::unique_ptr<Tracer> tracer;
    if (!trace_path.empty()) {
        tracer = std::make_unique<Tracer>(trace_path);
        Tracer::setActive(tracer.get());
    }
    auto flush_trace = [&] {
        if (!tracer)
            return;
        Tracer::setActive(nullptr);
        tracer->finish();
        std::printf("trace               %s (%zu events%s)\n",
                    tracer->path().c_str(), tracer->eventCount(),
                    tracer->droppedEvents()
                        ? (", " +
                           std::to_string(tracer->droppedEvents()) +
                           " dropped")
                              .c_str()
                        : "");
    };

    // Resolve the dispatch mode up front so misuse fails fast.
    enum class Dispatch
    {
        Thread,
        Fork,
        Queue,
    };
    Dispatch dmode = Dispatch::Thread;
    if (dispatch.empty()) {
        // Back-compat: --shards N alone has always meant the forked
        // multi-process executor.
        dmode = shards > 0 ? Dispatch::Fork : Dispatch::Thread;
    } else if (dispatch == "thread") {
        if (shards_flag && shards > 0) {
            std::fprintf(stderr, "--dispatch=thread does not shard; "
                                 "drop --shards or pick fork|queue\n");
            return 1;
        }
        dmode = Dispatch::Thread;
    } else if (dispatch == "fork") {
        dmode = Dispatch::Fork;
    } else if (dispatch == "queue") {
        dmode = Dispatch::Queue;
    } else {
        std::fprintf(stderr,
                     "--dispatch wants thread|fork|queue, got '%s'\n",
                     dispatch.c_str());
        return 1;
    }
    if (!dispatch.empty() && sweep.empty()) {
        std::fprintf(stderr, "--dispatch only applies to --sweep\n");
        return 1;
    }
    if ((dmode == Dispatch::Fork || dmode == Dispatch::Queue) &&
        shards == 0)
        shards = defaultShardCount();

    if (!sweep.empty()) {
        const std::vector<SweepEntry> entries = sweepSet(sweep);
        std::vector<std::string> names;
        std::vector<SimConfig> configs;
        for (const auto &e : entries) {
            SimConfig c = cfg;
            c.workload = e.workload;
            if (e.hasArch)
                c.arch = e.arch;
            preset_scale(c);
            names.push_back(e.label);
            configs.push_back(c);
        }
        const char *arch_label = sweep == "fig17" || sweep == "memcloud"
                                     ? "per-entry"
                                     : archName(cfg.arch);

        // One merged BENCH_sweep_<set>.json whichever executor runs
        // the grid, so sharded and in-process sweeps are byte-for-byte
        // comparable (the sweep-smoke CI job diffs exactly this).
        bench::BenchReport report("sweep_" + sweep);
        std::vector<SimResult> results;
        std::vector<bool> valid(configs.size(), true);
        bool sweep_ok = true;

        if (dmode == Dispatch::Fork) {
            ShardOptions so;
            so.shards = shards;
            so.workerJobs = jobs ? jobs : 1;
            so.timeoutSeconds = shard_timeout;
            so.maxAttempts = shard_attempts;
            so.workerPath = selfExePath(argv[0]);
            so.sweepDir =
                !sweep_dir.empty()
                    ? sweep_dir
                    : "tmcc-sweep-" + sweepGridKey(configs).substr(0, 8);
            std::printf("sweeping %zu entries (%s) across %u worker "
                        "processes, arch %s, sweep dir %s\n",
                        configs.size(), sweep.c_str(), so.shards,
                        arch_label, so.sweepDir.c_str());
            ShardRunner runner(so);
            SweepOutcome outcome = runner.run(configs);
            results = std::move(outcome.results);
            valid = outcome.resultValid;
            sweep_ok = outcome.ok();
            std::printf("[sweep] %u/%zu shards done (%u resumed, %u "
                        "retries, %u failed)\n",
                        outcome.completedShards, outcome.shards.size(),
                        outcome.resumedShards, outcome.retries,
                        outcome.failedShards);
            for (const auto &shard : outcome.shards)
                if (shard.state == ShardState::Failed)
                    std::fprintf(stderr,
                                 "[sweep] shard %u FAILED after %u "
                                 "attempts: %s\n",
                                 shard.id, shard.attempts,
                                 shard.lastError.c_str());
        } else if (dmode == Dispatch::Queue) {
            QueueOptions qo;
            qo.queueDir = queue_dir;
            qo.sweepName = sweep_dir; // subdirectory name when set
            qo.shards = shards;
            qo.workerJobs = jobs ? jobs : 1;
            qo.pollSeconds = queue_poll;
            qo.timeoutSeconds = queue_timeout;
            std::printf("sweeping %zu entries (%s) via work queue %s "
                        "(%u shards), arch %s\n",
                        configs.size(), sweep.c_str(),
                        queue_dir.c_str(), shards, arch_label);
            QueueClient client(qo);
            SweepOutcome outcome = client.run(configs);
            results = std::move(outcome.results);
            valid = outcome.resultValid;
            sweep_ok = outcome.ok();
            std::printf("[sweep] %u/%zu shards merged (%u resumed, %u "
                        "reclaimed, %u unfinished)\n",
                        outcome.completedShards, outcome.shards.size(),
                        outcome.resumedShards, outcome.retries,
                        outcome.failedShards);
            for (const auto &shard : outcome.shards)
                if (shard.state != ShardState::Done)
                    std::fprintf(stderr,
                                 "[sweep] shard %u unfinished: %s\n",
                                 shard.id, shard.lastError.c_str());
        } else {
            SimRunner runner(jobs);
            std::printf("sweeping %zu entries (%s) on %u threads, "
                        "arch %s\n",
                        configs.size(), sweep.c_str(), runner.jobs(),
                        arch_label);
            try {
                results = runner.run(configs);
            } catch (const std::exception &e) {
                // A failed run must fail the sweep visibly: CI and the
                // sweep supervisor key off the exit status, not logs.
                std::fprintf(stderr, "sweep failed: %s\n", e.what());
                flush_trace();
                return 1;
            }
        }

        std::printf("%-14s %10s %10s %10s %10s\n", "workload",
                    "acc/us", "ratio", "l3lat_ns", "bus_util");
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (!valid[i]) {
                std::printf("%-14s %10s\n", names[i].c_str(),
                            "FAILED");
                continue;
            }
            const SimResult &r = results[i];
            std::printf("%-14s %10.1f %10.2f %10.1f %10.3f\n",
                        names[i].c_str(), r.accessesPerNs() * 1000.0,
                        r.compressionRatio(), r.avgL3MissLatencyNs,
                        r.readBusUtil + r.writeBusUtil);
            report.metric(names[i] + ".acc_per_us",
                          r.accessesPerNs() * 1000.0);
            report.metric(names[i] + ".ratio", r.compressionRatio());
            report.metric(names[i] + ".l3lat_ns", r.avgL3MissLatencyNs);
            report.metric(names[i] + ".bus_util",
                          r.readBusUtil + r.writeBusUtil);
            // Memcloud: the per-tenant fault-latency tail is the whole
            // point of the sweep — every dispatch mode must merge to
            // the same per-tenant keys (the bench-smoke CI diffs them).
            for (std::size_t t = 0; t < r.tenants.size(); ++t)
                report.metric(names[i] + ".tenant" + std::to_string(t) +
                                  ".ml2_fault_p99_ns",
                              r.tenants[t].ml2FaultLatency.percentile(
                                  0.99));
        }
        if (!stats_out.empty()) {
            std::vector<std::string> ok_names;
            std::vector<const SimResult *> ptrs;
            for (std::size_t i = 0; i < results.size(); ++i) {
                if (!valid[i])
                    continue;
                ok_names.push_back(names[i]);
                ptrs.push_back(&results[i]);
            }
            writeEpochStats(stats_out, ok_names, ptrs);
            std::printf("epoch stats written to %s\n",
                        stats_out.c_str());
        }
        flush_trace();
        if (!sweep_ok)
            std::fprintf(stderr,
                         "sweep finished with failed shards; partial "
                         "results merged, exiting nonzero\n");
        return sweep_ok ? 0 : 1;
    }

    preset_scale(cfg);

    // Through the runner so the setup phase goes via the checkpoint
    // store (a populated --ckpt-dir turns placement into a restore).
    const SimResult r = runConfigs({cfg}, 1).front();

    std::printf("workload            %s\n", cfg.workload.c_str());
    std::printf("architecture        %s\n", archName(cfg.arch));
    std::printf("footprint           %.1f MB\n",
                static_cast<double>(r.footprintBytes) / (1 << 20));
    std::printf("dram used           %.1f MB (ratio %.2fx)\n",
                static_cast<double>(r.dramUsedBytes) / (1 << 20),
                r.compressionRatio());
    std::printf("performance         %.1f accesses/us (%.4f stores/"
                "cycle)\n",
                r.accessesPerNs() * 1000.0, r.storesPerCycle());
    std::printf("avg L3 miss latency %.1f ns\n", r.avgL3MissLatencyNs);
    std::printf("TLB miss rate       %.4f\n",
                r.tlbHits + r.tlbMisses
                    ? static_cast<double>(r.tlbMisses) /
                          static_cast<double>(r.tlbHits + r.tlbMisses)
                    : 0.0);
    if (cfg.arch != Arch::NoCompression) {
        std::printf("CTE$ hit rate       %.4f\n",
                    r.cteHits + r.cteMisses
                        ? static_cast<double>(r.cteHits) /
                              static_cast<double>(r.cteHits +
                                                  r.cteMisses)
                        : 0.0);
        std::printf("ML1 access split    hit %.3f / parallel %.3f / "
                    "mismatch %.3f / serial %.3f\n",
                    r.llcMisses ? static_cast<double>(r.ml1CteHit) /
                                      r.llcMisses
                                : 0.0,
                    r.llcMisses ? static_cast<double>(r.ml1Parallel) /
                                      r.llcMisses
                                : 0.0,
                    r.llcMisses ? static_cast<double>(r.ml1Mismatch) /
                                      r.llcMisses
                                : 0.0,
                    r.llcMisses ? static_cast<double>(r.ml1Serial) /
                                      r.llcMisses
                                : 0.0);
        std::printf("ML2 accesses        %lu (%.4f per LLC miss)\n",
                    static_cast<unsigned long>(r.ml2Accesses),
                    r.llcMisses ? static_cast<double>(r.ml2Accesses) /
                                      r.llcMisses
                                : 0.0);
    }
    std::printf("bus utilization     read %.3f write %.3f\n",
                r.readBusUtil, r.writeBusUtil);
    std::printf("wall clock          setup %.2fs%s + measured %.2fs\n",
                r.setupSeconds,
                r.restoredFromCheckpoint ? " (checkpoint restore)" : "",
                r.measureSeconds);

    if (cfg.osMc.faults.enabled()) {
        const auto stat = [&](const char *name) {
            return static_cast<unsigned long>(r.stats.get(name));
        };
        std::printf("corruption          detected %lu (recovered %lu, "
                    "unrecoverable %lu)\n",
                    stat("mc.ml2.corruption_detected"),
                    stat("mc.ml2.corruption_recovered"),
                    stat("mc.ml2.corruption_unrecoverable"));
        std::printf("                    cte mismatches %lu, ptb decode "
                    "rejects %lu\n",
                    stat("mc.cte_mismatch"),
                    stat("mc.ptb_decode_rejects"));
    }

    if (r.sample.windows > 0) {
        std::printf("sampling            %llu windows x %llu accesses "
                    "(+%llu warm-up) per core, %llu fast-forwarded\n",
                    static_cast<unsigned long long>(r.sample.windows),
                    static_cast<unsigned long long>(
                        r.sample.windowAccesses),
                    static_cast<unsigned long long>(
                        r.sample.warmupAccesses),
                    static_cast<unsigned long long>(
                        r.sample.ffAccesses));
        for (const SampleMetric &m : r.sample.metrics)
            std::printf("  %-24s %12.5g +/- %.5g (95%% CI)\n",
                        m.name.c_str(), m.mean, m.ci95);
    }

    if (!r.tenants.empty()) {
        std::printf("tenants             %zu guest address spaces "
                    "(churn %.4g, zipf %.3g)\n",
                    r.tenants.size(), cfg.tenantChurn, cfg.tenantZipf);
        std::printf("  %-8s %12s %12s %10s %12s %12s\n", "tenant",
                    "accesses", "ml2_faults", "mb", "fault_p50", "fault_p99");
        for (std::size_t t = 0; t < r.tenants.size(); ++t) {
            const TenantStat &ts = r.tenants[t];
            std::printf(
                "  %-8zu %12llu %12llu %10.1f %10.1fns %10.1fns\n", t,
                static_cast<unsigned long long>(ts.accesses),
                static_cast<unsigned long long>(ts.ml2Faults),
                static_cast<double>(ts.footprintBytes) / (1 << 20),
                ts.ml2FaultLatency.percentile(0.50),
                ts.ml2FaultLatency.percentile(0.99));
        }
    }

    if (!r.epochs.empty()) {
        const EpochStat &last = r.epochs.back();
        std::printf("epochs              %zu snapshots (every %llu "
                    "accesses); last: ml2_rate %.4f cte_hit %.4f "
                    "dram %.1f MB\n",
                    r.epochs.size(),
                    static_cast<unsigned long long>(cfg.statsInterval),
                    last.ml2AccessRate, last.cteHitRate,
                    last.dramUsedBytes / (1 << 20));
    }
    if (!stats_out.empty()) {
        writeEpochStats(stats_out, {cfg.workload}, {&r});
        std::printf("epoch stats written to %s\n", stats_out.c_str());
    }
    flush_trace();

    if (dump_all) {
        std::printf("\n--- component counters ---\n");
        std::string out;
        for (const auto &[name, v] : r.stats.all())
            std::printf("%-48s %g\n", name.c_str(), v);
    }
    return 0;
}
