/**
 * @file
 * tmcc_simd: the long-running sweep worker daemon serving the
 * lease-based work queue (docs/SWEEP.md phase 2).
 *
 * Point any number of daemons — on any machines sharing the queue
 * directory's filesystem — at the same queue:
 *
 *   tmcc_simd --serve /shared/tmcc-queue
 *
 * and enqueue sweeps from anywhere with
 * `tmcc_sim --sweep ... --dispatch=queue --queue-dir /shared/tmcc-queue`.
 * Each daemon claims pending shards through the crash-safe lease
 * protocol (sim/sweep_queue.hh) and runs them in-process, so binary
 * startup, the memoized profile library, and warm setup checkpoints
 * are paid once per daemon rather than once per shard.
 *
 * Usage: tmcc_simd [options]
 *   --serve DIR       queue directory to serve (env: TMCC_QUEUE_DIR)
 *   --worker-id S     lease-holder identity (default: <hostname>:<pid>)
 *   --jobs N          SimRunner threads per shard (default: the
 *                     enqueuer's advisory value)
 *   --lease SEC       claim lease; a claim not renewed for SEC is
 *                     stale and reclaimable (default 15; must exceed
 *                     cross-host clock skew comfortably)
 *   --poll SEC        idle delay between queue scans (default 1)
 *   --once            exit once every visible sweep is fully served
 *                     (drain mode, for CI and scripts)
 *   --max-shards N    exit after serving N shards (tests)
 *   --ckpt-dir DIR    persist setup checkpoints to DIR (overrides the
 *                     per-sweep default; env: TMCC_CKPT_DIR)
 *   --no-sweep-ckpt   do not default the checkpoint dir to
 *                     <sweep-dir>/ckpt while serving a shard
 *   --quiet           suppress per-shard progress logging
 *
 * SIGINT/SIGTERM finish the current shard (its claim is released or
 * republished), then exit; SIGKILL mid-shard is recovered by any peer
 * through stale-lease reclaim.
 */

#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/checkpoint.hh"
#include "sim/sweep_daemon.hh"

using namespace tmcc;

namespace
{

SweepDaemon *g_daemon = nullptr;

void
onStopSignal(int)
{
    if (g_daemon)
        g_daemon->requestStop(); // async-signal-safe: one atomic store
}

std::uint64_t
parsePositiveCount(const char *s, const char *what)
{
    char *end = nullptr;
    const long long v = std::strtoll(s, &end, 10);
    if (s[0] == '\0' || *end != '\0' || v <= 0) {
        std::fprintf(stderr,
                     "%s must be a positive integer, got \"%s\"\n",
                     what, s);
        std::exit(1);
    }
    return static_cast<std::uint64_t>(v);
}

double
parsePositiveSeconds(const char *s, const char *what)
{
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (s[0] == '\0' || *end != '\0' || !std::isfinite(v) || v <= 0.0) {
        std::fprintf(stderr,
                     "%s must be a positive number of seconds, got "
                     "\"%s\"\n",
                     what, s);
        std::exit(1);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    DaemonOptions opts;
    if (const char *env = std::getenv("TMCC_QUEUE_DIR"); env && *env)
        opts.queueDir = env;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--serve") {
            opts.queueDir = value();
        } else if (arg.rfind("--serve=", 0) == 0) {
            opts.queueDir = arg.substr(std::strlen("--serve="));
        } else if (arg == "--worker-id") {
            opts.workerId = value();
        } else if (arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(
                parsePositiveCount(value(), "--jobs"));
        } else if (arg == "--lease") {
            opts.leaseSeconds = parsePositiveSeconds(value(), "--lease");
        } else if (arg == "--poll") {
            opts.pollSeconds = parsePositiveSeconds(value(), "--poll");
        } else if (arg == "--once") {
            opts.once = true;
        } else if (arg == "--max-shards") {
            opts.maxShards = parsePositiveCount(value(), "--max-shards");
        } else if (arg == "--ckpt-dir") {
            CheckpointStore::global().setDiskDir(value());
        } else if (arg.rfind("--ckpt-dir=", 0) == 0) {
            CheckpointStore::global().setDiskDir(
                arg.substr(std::strlen("--ckpt-dir=")));
        } else if (arg == "--no-sweep-ckpt") {
            opts.defaultCkptDir = false;
        } else if (arg == "--quiet") {
            opts.verbose = false;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("see the header of examples/tmcc_simd.cpp\n");
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s (try --help)\n",
                         arg.c_str());
            return 1;
        }
    }

    SweepDaemon daemon(opts); // fatal on out-of-contract options
    g_daemon = &daemon;
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);

    daemon.serve();
    return 0;
}
