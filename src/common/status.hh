/**
 * @file
 * Lightweight, exception-free error propagation for corruption-safe
 * decode paths.
 *
 * The decompressors are fed bitstreams that — under fault injection or
 * real DRAM corruption — may be arbitrary garbage.  panic()/fatal() are
 * reserved for internal invariant violations; *input* badness must flow
 * back to the caller so the memory controller can execute a recovery
 * policy (retry, re-fault, fall back to the uncompressed path) instead
 * of taking the simulator down.  Status/StatusOr<T> carry that outcome
 * without exceptions, in the spirit of absl::Status / gem5's Fault.
 */

#ifndef TMCC_COMMON_STATUS_HH
#define TMCC_COMMON_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "common/log.hh"

namespace tmcc
{

/** Coarse error taxonomy; Corruption/Truncated are the decode workhorses. */
enum class StatusCode : std::uint8_t
{
    Ok = 0,
    Corruption,      //!< bitstream violates the format's invariants
    Truncated,       //!< bitstream ended before the decode completed
    ChecksumMismatch, //!< payload decoded but failed its CRC
    InvalidArgument, //!< caller passed an out-of-contract value
    Internal,        //!< should-not-happen, kept recoverable
};

const char *statusCodeName(StatusCode code);

/** An outcome: Ok or an error code plus a human-readable message. */
class Status
{
  public:
    /** Default-constructed Status is Ok. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    static Status okStatus() { return Status{}; }

    static Status
    corruption(std::string msg)
    {
        return {StatusCode::Corruption, std::move(msg)};
    }

    static Status
    truncated(std::string msg)
    {
        return {StatusCode::Truncated, std::move(msg)};
    }

    static Status
    checksumMismatch(std::string msg)
    {
        return {StatusCode::ChecksumMismatch, std::move(msg)};
    }

    static Status
    invalidArgument(std::string msg)
    {
        return {StatusCode::InvalidArgument, std::move(msg)};
    }

    static Status
    internal(std::string msg)
    {
        return {StatusCode::Internal, std::move(msg)};
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    std::string
    toString() const
    {
        if (ok())
            return "OK";
        return std::string(statusCodeName(code_)) + ": " + message_;
    }

    bool operator==(const Status &o) const { return code_ == o.code_; }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "OK";
      case StatusCode::Corruption: return "CORRUPTION";
      case StatusCode::Truncated: return "TRUNCATED";
      case StatusCode::ChecksumMismatch: return "CHECKSUM_MISMATCH";
      case StatusCode::InvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::Internal: return "INTERNAL";
    }
    return "?";
}

/**
 * Either a value or the Status explaining why there is none.
 * value() panics on an error result — call sites that can recover must
 * check ok() first; call sites that trust their input (self-produced
 * bitstreams in tests and benches) may chain .value() directly.
 */
template <typename T>
class StatusOr
{
  public:
    /** Error result; `status` must not be Ok. */
    StatusOr(Status status) : status_(std::move(status)) // NOLINT implicit
    {
        panicIf(status_.ok(), "StatusOr built from an Ok status");
    }

    /** Success result. */
    StatusOr(T value) : value_(std::move(value)) {} // NOLINT implicit

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    const T &
    value() const &
    {
        panicIf(!ok(), "StatusOr::value() on error: " + status_.toString());
        return *value_;
    }

    T &
    value() &
    {
        panicIf(!ok(), "StatusOr::value() on error: " + status_.toString());
        return *value_;
    }

    T &&
    value() &&
    {
        panicIf(!ok(), "StatusOr::value() on error: " + status_.toString());
        return std::move(*value_);
    }

    const T *operator->() const { return &value(); }
    const T &operator*() const & { return value(); }

  private:
    Status status_;
    std::optional<T> value_;
};

// Early-return helpers in the style of absl's macros.
#define TMCC_STATUS_CONCAT_INNER(a, b) a##b
#define TMCC_STATUS_CONCAT(a, b) TMCC_STATUS_CONCAT_INNER(a, b)

/** Propagate a non-Ok Status to the caller. */
#define TMCC_RETURN_IF_ERROR(expr)                                        \
    do {                                                                  \
        ::tmcc::Status tmcc_status_tmp = (expr);                          \
        if (!tmcc_status_tmp.ok())                                        \
            return tmcc_status_tmp;                                       \
    } while (0)

/** Unwrap a StatusOr into `lhs`, propagating errors to the caller. */
#define TMCC_ASSIGN_OR_RETURN(lhs, expr)                                  \
    auto TMCC_STATUS_CONCAT(tmcc_sor_, __LINE__) = (expr);                \
    if (!TMCC_STATUS_CONCAT(tmcc_sor_, __LINE__).ok())                    \
        return TMCC_STATUS_CONCAT(tmcc_sor_, __LINE__).status();          \
    lhs = std::move(TMCC_STATUS_CONCAT(tmcc_sor_, __LINE__)).value()

} // namespace tmcc

#endif // TMCC_COMMON_STATUS_HH
