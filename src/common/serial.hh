/**
 * @file
 * Minimal little-endian byte serialization for checkpoint payloads.
 *
 * ByteWriter appends fixed-width integers / doubles / length-prefixed
 * blobs to a growable buffer; ByteReader consumes the same encoding with
 * bounds checking.  A reader never throws or aborts on malformed input:
 * overruns latch a failure flag, subsequent reads return zeros, and the
 * caller converts the flag into a Status (checkpoint files are
 * CRC-protected, but the decoder must stay safe on the 2^-32 escapes and
 * on hand-corrupted test inputs).
 */

#ifndef TMCC_COMMON_SERIAL_HH
#define TMCC_COMMON_SERIAL_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hh"

namespace tmcc
{

/** Append-only little-endian encoder. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }

    /** Length-prefixed raw bytes. */
    void
    bytes(const void *data, std::size_t n)
    {
        u64(n);
        raw(data, n);
    }

    /** Raw bytes without a length prefix (fixed-size records). */
    void
    raw(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    void str(const std::string &s) { bytes(s.data(), s.size()); }

    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Bounds-checked decoder over a borrowed buffer.  The buffer must
 * outlive the reader.  On the first overrun ok() turns false and every
 * later read returns a zero value.
 */
class ByteReader
{
  public:
    ByteReader(const void *data, std::size_t size)
        : data_(static_cast<const std::uint8_t *>(data)), size_(size)
    {}

    explicit ByteReader(const std::vector<std::uint8_t> &buf)
        : ByteReader(buf.data(), buf.size())
    {}

    std::uint8_t
    u8()
    {
        if (!take(1))
            return 0;
        return data_[pos_++];
    }

    std::uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::vector<std::uint8_t>
    bytes()
    {
        const std::uint64_t n = u64();
        if (!take(n))
            return {};
        std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + n);
        pos_ += n;
        return out;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (!take(n))
            return {};
        std::string out(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return out;
    }

    /** Raw copy of `n` bytes into `dst` (no length prefix). */
    void
    raw(void *dst, std::size_t n)
    {
        if (!take(n)) {
            std::memset(dst, 0, n);
            return;
        }
        std::memcpy(dst, data_ + pos_, n);
        pos_ += n;
    }

    /**
     * Read an element count that must be plausible: each element
     * occupies at least `minElemBytes` of remaining input.  Guards
     * vector reserves against absurd corrupt counts.
     */
    std::uint64_t
    count(std::size_t minElemBytes)
    {
        const std::uint64_t n = u64();
        if (minElemBytes > 0 && n > remaining() / minElemBytes) {
            fail_ = true;
            return 0;
        }
        return n;
    }

    bool ok() const { return !fail_; }
    std::size_t remaining() const { return size_ - pos_; }

    /** Failure flag plus "did we consume everything" as a Status. */
    Status
    finish(const std::string &what) const
    {
        if (fail_)
            return Status::truncated(what + ": payload too short");
        if (pos_ != size_)
            return Status::corruption(what + ": trailing bytes");
        return Status::okStatus();
    }

  private:
    bool
    take(std::size_t n)
    {
        if (fail_ || n > size_ - pos_) {
            fail_ = true;
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool fail_ = false;
};

} // namespace tmcc

#endif // TMCC_COMMON_SERIAL_HH
