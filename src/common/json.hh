/**
 * @file
 * Minimal JSON string escaping shared by every component that writes
 * JSON by hand (the trace writer, bench reports, epoch-stats dumps).
 * Escapes exactly what RFC 8259 requires: quote, backslash, and the
 * C0 control characters; everything else (including UTF-8 multibyte
 * sequences) passes through untouched.
 */

#ifndef TMCC_COMMON_JSON_HH
#define TMCC_COMMON_JSON_HH

#include <cstdio>
#include <string>
#include <string_view>

namespace tmcc
{

/** Escape `s` for embedding inside a JSON string literal. */
inline std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace tmcc

#endif // TMCC_COMMON_JSON_HH
