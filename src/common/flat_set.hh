/**
 * @file
 * Open-addressing hash set for hot-loop membership tracking.  The
 * measured kernel queries/updates per-block bookkeeping (e.g. "was
 * this block prefetched?") on every access; std::unordered_set's
 * node allocation and pointer chasing made exactly this bookkeeping
 * one of the top entries in the measured-loop profile.
 *
 * Linear probing with backward-shift deletion: no tombstones, so the
 * table never degrades under the insert/erase churn this use case
 * produces.  One key value is reserved as the empty-slot sentinel and
 * must never be inserted (asserted in debug builds).
 *
 * Only membership operations are exposed; iteration order would be
 * rehash-dependent, and nothing in the simulator may depend on it
 * (results must be independent of host-side container layout).
 */

#ifndef TMCC_COMMON_FLAT_SET_HH
#define TMCC_COMMON_FLAT_SET_HH

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tmcc
{

template <class Key, Key EmptySentinel>
class FlatHashSet
{
  public:
    explicit FlatHashSet(std::size_t initial_capacity = 1024)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.assign(cap, EmptySentinel);
        mask_ = cap - 1;
    }

    /** Insert `k`; returns true if it was not already present. */
    bool
    insert(Key k)
    {
        assert(k != EmptySentinel);
        if ((size_ + 1) * 10 > slots_.size() * 7)
            grow();
        std::size_t i = hash(k) & mask_;
        while (slots_[i] != EmptySentinel) {
            if (slots_[i] == k)
                return false;
            i = (i + 1) & mask_;
        }
        slots_[i] = k;
        ++size_;
        return true;
    }

    /** Erase `k`; returns true if it was present. */
    bool
    erase(Key k)
    {
        assert(k != EmptySentinel);
        std::size_t i = hash(k) & mask_;
        while (slots_[i] != k) {
            if (slots_[i] == EmptySentinel)
                return false;
            i = (i + 1) & mask_;
        }
        // Backward-shift deletion: pull displaced keys of the probe
        // chain back so lookups never need tombstones.
        std::size_t hole = i;
        std::size_t j = (i + 1) & mask_;
        while (slots_[j] != EmptySentinel) {
            const std::size_t home = hash(slots_[j]) & mask_;
            // Does slots_[j] probe through `hole`?  (Circular range
            // test: home..j wrapping.)
            const bool displaced =
                ((j - home) & mask_) >= ((j - hole) & mask_);
            if (displaced) {
                slots_[hole] = slots_[j];
                hole = j;
            }
            j = (j + 1) & mask_;
        }
        slots_[hole] = EmptySentinel;
        --size_;
        return true;
    }

    bool
    contains(Key k) const
    {
        std::size_t i = hash(k) & mask_;
        while (slots_[i] != EmptySentinel) {
            if (slots_[i] == k)
                return true;
            i = (i + 1) & mask_;
        }
        return false;
    }

    std::size_t size() const { return size_; }

    void
    clear()
    {
        std::fill(slots_.begin(), slots_.end(), EmptySentinel);
        size_ = 0;
    }

  private:
    static std::size_t
    hash(Key k)
    {
        // splitmix64 finalizer: full-avalanche, so linear probing sees
        // uniformly spread home slots even for block-aligned keys.
        auto x = static_cast<std::uint64_t>(k);
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ULL;
        x ^= x >> 33;
        return static_cast<std::size_t>(x);
    }

    void
    grow()
    {
        std::vector<Key> old = std::move(slots_);
        slots_.assign(old.size() * 2, EmptySentinel);
        mask_ = slots_.size() - 1;
        size_ = 0;
        for (Key k : old)
            if (k != EmptySentinel)
                insert(k);
    }

    std::vector<Key> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace tmcc

#endif // TMCC_COMMON_FLAT_SET_HH
