/**
 * @file
 * Minimal status/error reporting in the spirit of gem5's logging.hh:
 * panic() for internal invariant violations, fatal() for user/config
 * errors, warn()/inform() for status.
 */

#ifndef TMCC_COMMON_LOG_HH
#define TMCC_COMMON_LOG_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace tmcc
{

namespace log_detail
{

[[noreturn]] inline void
die(const char *kind, const std::string &msg, bool abortProcess)
{
    std::cerr << kind << ": " << msg << std::endl;
    if (abortProcess)
        std::abort();
    std::exit(1);
}

} // namespace log_detail

/** Internal simulator bug: abort (dump core / enter debugger). */
[[noreturn]] inline void
panic(const std::string &msg)
{
    log_detail::die("panic", msg, true);
}

/** Unrecoverable user/configuration error: clean exit(1). */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    log_detail::die("fatal", msg, false);
}

/** Non-fatal warning about approximated or suspicious behaviour. */
inline void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

/** Status message with no connotation of incorrect behaviour. */
inline void
inform(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

/** panic() unless `cond` holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/** fatal() unless `cond` holds. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

} // namespace tmcc

#endif // TMCC_COMMON_LOG_HH
