/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis and
 * sampled policies (e.g., the 1% Recency List update sampling of §IV-B).
 *
 * All randomness in the repository flows through Rng so that every
 * experiment is exactly reproducible from its seed.
 */

#ifndef TMCC_COMMON_RNG_HH
#define TMCC_COMMON_RNG_HH

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace tmcc
{

/**
 * SplitMix64-seeded xoshiro256** generator.  Small, fast, and good enough
 * statistically for workload synthesis; not for cryptography.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : s_) {
            // SplitMix64 step.
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound != 0);
        // Rejection-free multiply-shift (Lemire) is fine for simulation.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform in [lo, hi]; requires lo <= hi. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return real() < p; }

    /**
     * Zipf-distributed value in [0, n).  Used to synthesize the skewed
     * vertex-degree and page-hotness distributions of the paper's
     * large/irregular workloads (LDBC datagen graphs are heavy-tailed).
     *
     * Uses the rejection method of Gries/Jacobsen; alpha > 0.
     */
    std::uint64_t
    zipf(std::uint64_t n, double alpha)
    {
        assert(n > 0);
        if (n == 1)
            return 0;
        // Both paths draw a continuous x and return floor(x) - 1, so
        // rank k corresponds to x in [k+1, k+2): x must range over
        // [1, n+1) or rank n-1 would have measure zero and the last
        // item could never be drawn (glaring when n is small, e.g. the
        // memcloud tenant count).
        if (alpha <= 1.001) {
            // Near alpha=1 the rejection sampler degenerates; a
            // log-uniform draw has the same 1/x density shape.
            const double x =
                std::pow(static_cast<double>(n) + 1.0, real());
            const auto v = static_cast<std::uint64_t>(x) - 1;
            return v < n ? v : n - 1;
        }
        // Rejection-inversion sampling (W. Hormann) over [1, n+1).
        const double b = std::pow(2.0, alpha - 1.0);
        double x, t;
        do {
            x = std::pow(real(), -1.0 / (alpha - 1.0));
            t = std::pow(1.0 + 1.0 / x, alpha - 1.0);
        } while (real() * x * (t - 1.0) * b > t * (b - 1.0) ||
                 x >= static_cast<double>(n) + 1.0);
        return static_cast<std::uint64_t>(x) - 1;
    }

    /**
     * The full generator state, for checkpoint capture.  Restoring the
     * state with setState() resumes the stream exactly where it was.
     */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }

    void
    setState(const std::array<std::uint64_t, 4> &state)
    {
        for (int i = 0; i < 4; ++i)
            s_[i] = state[i];
    }

    /** Geometric think-time style value with mean `mean` (>= 0). */
    std::uint64_t
    geometric(double mean)
    {
        if (mean <= 0.0)
            return 0;
        const double u = real();
        return static_cast<std::uint64_t>(
            -std::log1p(-u) * mean);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace tmcc

#endif // TMCC_COMMON_RNG_HH
