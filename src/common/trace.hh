/**
 * @file
 * Chrome trace-event / Perfetto-compatible tracer.
 *
 * Components emit *complete* ("X"), *instant* ("i"), *counter* ("C")
 * and *metadata* ("M") events into a process-wide Tracer; on finish()
 * the buffered events are sorted by timestamp and written as one
 * `{"traceEvents": [...]}` JSON document that chrome://tracing and
 * ui.perfetto.dev load directly.
 *
 * Design constraints, in order:
 *
 *   1. Near-zero overhead when disabled.  Instrumentation sites guard
 *      on `Tracer::active()` -- a single relaxed atomic load -- and
 *      build no strings, take no locks and touch no memory when it
 *      returns nullptr.  Tracing never feeds back into simulated
 *      timing or statistics: it only *reads* state.
 *   2. Safe under the parallel SimRunner.  Event append takes a mutex;
 *      each System claims its own `pid` track via allocTrack() so
 *      concurrent simulations land on separate Perfetto process rows.
 *   3. Bounded memory.  The buffer caps at `maxEvents`; beyond it
 *      events are counted as dropped and reported in the trace
 *      metadata rather than silently lost.
 *
 * Timestamps are simulation nanoseconds for in-System events (the
 * current-pid track is set for the duration of System::run) and
 * wall-clock nanoseconds since tracer creation for host-side events
 * (SimRunner worker jobs, pid 0).  The two timebases share a file but
 * not a track, so Perfetto renders both coherently.
 */

#ifndef TMCC_COMMON_TRACE_HH
#define TMCC_COMMON_TRACE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tmcc
{

// tid conventions within a System's pid track: core events use the
// core number; DRAM channels use dramTidBase + flat channel index;
// background engines (the compress-side Deflate ASIC) use
// backgroundTid.  Keeping these disjoint gives each activity its own
// Perfetto thread row.
inline constexpr std::uint32_t dramTidBase = 64;
inline constexpr std::uint32_t backgroundTid = 255;

class Tracer
{
  public:
    /** Events buffered before new arrivals are dropped (counted). */
    static constexpr std::size_t defaultMaxEvents = 8'000'000;

    explicit Tracer(std::string path,
                    std::size_t max_events = defaultMaxEvents);

    /** Writes the file if finish() was not called explicitly. */
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    // --- global registration -------------------------------------

    /** The process-wide tracer, or nullptr when tracing is off. */
    static Tracer *active()
    {
        return activeTracer_.load(std::memory_order_relaxed);
    }

    static void setActive(Tracer *t)
    {
        activeTracer_.store(t, std::memory_order_release);
    }

    /** The pid (Perfetto process track) of the current thread's
     * enclosing System::run, 0 outside one. */
    static std::uint32_t currentPid() { return tlsPid_; }

    /** RAII: route this thread's events to `pid` while in scope. */
    class PidScope
    {
      public:
        explicit PidScope(std::uint32_t pid) : prev_(tlsPid_)
        {
            tlsPid_ = pid;
        }
        ~PidScope() { tlsPid_ = prev_; }
        PidScope(const PidScope &) = delete;
        PidScope &operator=(const PidScope &) = delete;

      private:
        std::uint32_t prev_;
    };

    /** Claim a fresh pid track (1, 2, ...; 0 is the host track). */
    std::uint32_t allocTrack()
    {
        return trackCounter_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    // --- event emission ------------------------------------------

    /**
     * A slice with a duration ("X").  `name` and `cat` must be string
     * literals (stored by pointer).  `args_json` is an optional
     * pre-escaped JSON object body, e.g. "\"fetches\":4".
     */
    void complete(const char *name, const char *cat, std::uint32_t tid,
                  double ts_ns, double dur_ns,
                  std::string args_json = std::string());

    /** A zero-duration marker ("i", thread scope). */
    void instant(const char *name, const char *cat, std::uint32_t tid,
                 double ts_ns, std::string args_json = std::string());

    /** A counter track sample ("C"). */
    void counter(const char *name, double ts_ns, double value);

    /** Name the process track `pid` (Perfetto row label). */
    void processName(std::uint32_t pid, const std::string &label);

    /** Wall-clock nanoseconds since tracer creation (host events). */
    double wallNs() const;

    // --- output --------------------------------------------------

    /**
     * Sort events by (timestamp, emission order) and write the JSON
     * document.  Returns false (after a warn) if the file cannot be
     * written.  Idempotent; the destructor calls it as a fallback.
     */
    bool finish();

    const std::string &path() const { return path_; }
    std::size_t eventCount() const;
    std::uint64_t droppedEvents() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    struct Event
    {
        const char *name;
        const char *cat;
        char ph;
        std::uint32_t pid, tid;
        double tsNs;
        double durNs;   //!< "X" only
        double value;   //!< "C" only
        std::uint64_t seq;
        std::string args; //!< pre-escaped JSON object body (or label)
    };

    void append(Event e);

    static std::atomic<Tracer *> activeTracer_;
    static thread_local std::uint32_t tlsPid_;

    std::string path_;
    std::size_t maxEvents_;
    std::atomic<std::uint32_t> trackCounter_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::uint64_t wallEpochNs_;
    bool finished_ = false;

    mutable std::mutex mutex_;
    std::vector<Event> events_;
    std::uint64_t seq_ = 0;
};

} // namespace tmcc

#endif // TMCC_COMMON_TRACE_HH
