#include "stats.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>

#include "common/log.hh"

namespace tmcc
{

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    fatalIf(buckets == 0, "Histogram needs at least one bucket");
    fatalIf(!(hi > lo), "Histogram range must satisfy lo < hi");
}

double
Histogram::percentile(double p) const
{
    std::uint64_t total = 0;
    for (const auto c : counts_)
        total += c;
    if (total == 0)
        return lo_;
    const double target = p * static_cast<double>(total);
    double seen = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double c = static_cast<double>(counts_[i]);
        if (seen + c >= target && c > 0.0) {
            const double frac = (target - seen) / c;
            const double width = (hi_ - lo_) /
                                 static_cast<double>(counts_.size());
            return bucketLow(i) + frac * width;
        }
        seen += c;
    }
    return hi_;
}

void
Histogram::restore(std::vector<std::uint64_t> counts,
                   std::uint64_t underflow, std::uint64_t overflow,
                   double sum, std::uint64_t count)
{
    panicIf(counts.size() != counts_.size(),
            "Histogram::restore bucket-count mismatch");
    counts_ = std::move(counts);
    underflow_ = underflow;
    overflow_ = overflow;
    avg_.restore(sum, count);
}

double
StatDump::getRequired(const std::string &name) const
{
    auto it = values_.find(name);
    fatalIf(it == values_.end(),
            "required stat \"" + name + "\" is missing from the dump");
    return it->second;
}

void
StatDump::print(std::ostream &os) const
{
    for (const auto &[name, value] : values_) {
        os << std::left << std::setw(48) << name << " "
           << std::setprecision(9) << value << "\n";
    }
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

void
dumpHistogram(StatDump &dump, const std::string &prefix,
              const Histogram &h)
{
    dump.set(prefix + ".mean", h.mean());
    dump.set(prefix + ".count", h.count());
    dump.set(prefix + ".underflow", h.underflow());
    dump.set(prefix + ".overflow", h.overflow());
    dump.set(prefix + ".lo", h.lo());
    dump.set(prefix + ".hi", h.hi());
    dump.set(prefix + ".num_buckets",
             static_cast<std::uint64_t>(h.buckets().size()));
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
        if (h.buckets()[i] == 0)
            continue;
        char key[16];
        std::snprintf(key, sizeof(key), ".bucket%03zu", i);
        dump.set(prefix + key, h.buckets()[i]);
    }
}

} // namespace tmcc
