#include "stats.hh"

#include <cmath>
#include <iomanip>

namespace tmcc
{

void
StatDump::print(std::ostream &os) const
{
    for (const auto &[name, value] : values_) {
        os << std::left << std::setw(48) << name << " "
           << std::setprecision(9) << value << "\n";
    }
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace tmcc
