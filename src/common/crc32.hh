/**
 * @file
 * CRC-32 (IEEE 802.3 reflected polynomial 0xEDB88320) for end-to-end
 * integrity of compressed images.
 *
 * Every compressor stamps the CRC of the *original* data into its
 * result; every decompressor recomputes it over its output and rejects
 * on mismatch.  The CRC models the side-band metadata protection real
 * compressed-memory hardware carries alongside each compressed page
 * (IBM MXT-lineage designs pair compression metadata with ECC/CRC); it
 * is deliberately *not* counted in any sizeBits/sizeBytes accounting,
 * exactly as DRAM ECC bits are not counted in data capacity.
 */

#ifndef TMCC_COMMON_CRC32_HH
#define TMCC_COMMON_CRC32_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace tmcc
{

namespace crc_detail
{

/**
 * Slicing-by-8 tables: table[0] is the classic byte-at-a-time table,
 * table[k] advances a byte through k additional zero bytes, letting the
 * runtime path fold 8 input bytes per iteration.  All slices compute
 * the same polynomial, so the result is bit-identical to the byte loop.
 */
constexpr std::array<std::array<std::uint32_t, 256>, 8>
makeCrc32Tables()
{
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        t[0][i] = c;
    }
    for (std::uint32_t k = 1; k < 8; ++k)
        for (std::uint32_t i = 0; i < 256; ++i)
            t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
    return t;
}

inline constexpr std::array<std::array<std::uint32_t, 256>, 8>
    crc32Tables = makeCrc32Tables();

inline constexpr const std::array<std::uint32_t, 256> &crc32Table =
    crc32Tables[0];

} // namespace crc_detail

/** CRC-32 of `size` bytes at `data`; chainable via `seed`. */
constexpr std::uint32_t
crc32(const std::uint8_t *data, std::size_t size, std::uint32_t seed = 0)
{
    const auto &t = crc_detail::crc32Tables;
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    std::size_t i = 0;
    // Slicing-by-8 fast path (memcpy loads are not constexpr and the
    // 32-bit folds below assume little-endian lane order).
    if (std::endian::native == std::endian::little &&
        !std::is_constant_evaluated()) {
        while (i + 8 <= size) {
            std::uint32_t lo, hi;
            std::memcpy(&lo, data + i, 4);
            std::memcpy(&hi, data + i + 4, 4);
            lo ^= c;
            c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
                t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
                t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
                t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
            i += 8;
        }
    }
    for (; i < size; ++i)
        c = t[0][(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

inline std::uint32_t
crc32(const std::vector<std::uint8_t> &data, std::uint32_t seed = 0)
{
    return crc32(data.data(), data.size(), seed);
}

} // namespace tmcc

#endif // TMCC_COMMON_CRC32_HH
