/**
 * @file
 * CRC-32 (IEEE 802.3 reflected polynomial 0xEDB88320) for end-to-end
 * integrity of compressed images.
 *
 * Every compressor stamps the CRC of the *original* data into its
 * result; every decompressor recomputes it over its output and rejects
 * on mismatch.  The CRC models the side-band metadata protection real
 * compressed-memory hardware carries alongside each compressed page
 * (IBM MXT-lineage designs pair compression metadata with ECC/CRC); it
 * is deliberately *not* counted in any sizeBits/sizeBytes accounting,
 * exactly as DRAM ECC bits are not counted in data capacity.
 */

#ifndef TMCC_COMMON_CRC32_HH
#define TMCC_COMMON_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tmcc
{

namespace crc_detail
{

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> crc32Table =
    makeCrc32Table();

} // namespace crc_detail

/** CRC-32 of `size` bytes at `data`; chainable via `seed`. */
constexpr std::uint32_t
crc32(const std::uint8_t *data, std::size_t size, std::uint32_t seed = 0)
{
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = crc_detail::crc32Table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

inline std::uint32_t
crc32(const std::vector<std::uint8_t> &data, std::uint32_t seed = 0)
{
    return crc32(data.data(), data.size(), seed);
}

} // namespace tmcc

#endif // TMCC_COMMON_CRC32_HH
