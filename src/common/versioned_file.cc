#include "common/versioned_file.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "common/crc32.hh"
#include "common/serial.hh"

namespace tmcc
{

namespace
{

/** Per-process temp-file sequence so concurrent threads stay unique. */
std::atomic<std::uint64_t> tmpSeq{0};

std::string
uniqueTmpPath(const std::string &path)
{
    return path + ".tmp." + std::to_string(::getpid()) + "." +
           std::to_string(tmpSeq.fetch_add(1));
}

/** Write header + payload to a unique temp file, synced to storage.
 * Returns the temp path, or an error (temp file removed). */
StatusOr<std::string>
writeSyncedTmp(const std::string &path, const char magic[8],
               std::uint32_t version,
               const std::vector<std::uint8_t> &payload)
{
    ByteWriter header;
    header.raw(magic, 8);
    header.u32(version);
    header.u32(crc32(payload.data(), payload.size()));
    header.u64(payload.size());

    const std::string tmp = uniqueTmpPath(path);
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return Status::internal("cannot create " + tmp);
    const bool wrote =
        std::fwrite(header.buffer().data(), 1, header.buffer().size(),
                    f) == header.buffer().size() &&
        std::fwrite(payload.data(), 1, payload.size(), f) ==
            payload.size();
    // Flush user-space buffers and push the bytes to storage before the
    // rename/link publishes them: a reader that sees the new name must
    // see the new content even if this process is killed right after.
    const bool synced =
        wrote && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !synced || !closed) {
        std::remove(tmp.c_str());
        return Status::internal("short write to " + tmp);
    }
    return tmp;
}

} // namespace

Status
writeVersionedFile(const std::string &path, const char magic[8],
                   std::uint32_t version,
                   const std::vector<std::uint8_t> &payload)
{
    TMCC_ASSIGN_OR_RETURN(const std::string tmp,
                          writeSyncedTmp(path, magic, version, payload));
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status::internal("cannot rename " + tmp);
    }
    return Status::okStatus();
}

Status
writeVersionedFileExclusive(const std::string &path, const char magic[8],
                            std::uint32_t version,
                            const std::vector<std::uint8_t> &payload)
{
    TMCC_ASSIGN_OR_RETURN(const std::string tmp,
                          writeSyncedTmp(path, magic, version, payload));
    // link(2) is atomic create-if-absent: it never replaces an existing
    // destination, and unlike open(O_EXCL) it is dependable over NFS.
    const int rc = ::link(tmp.c_str(), path.c_str());
    const int link_errno = errno;
    std::remove(tmp.c_str());
    if (rc == 0)
        return Status::okStatus();
    if (link_errno == EEXIST)
        return Status::invalidArgument(path + " already exists");
    return Status::internal("cannot link " + tmp + " to " + path + ": " +
                            std::strerror(link_errno));
}

StatusOr<std::vector<std::uint8_t>>
readVersionedFile(const std::string &path, const char magic[8],
                  std::uint32_t version)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return Status::internal("cannot open " + path);
    std::vector<std::uint8_t> data;
    std::uint8_t buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.insert(data.end(), buf, buf + n);
    std::fclose(f);

    if (data.size() < versionedFileHeaderBytes)
        return Status::truncated(path + ": shorter than the header");
    ByteReader header(data.data(), versionedFileHeaderBytes);
    char got_magic[8];
    header.raw(got_magic, sizeof(got_magic));
    if (std::memcmp(got_magic, magic, 8) != 0)
        return Status::corruption(path + ": bad magic");
    const std::uint32_t got_version = header.u32();
    if (got_version != version)
        return Status::corruption(
            path + ": format version mismatch (file v" +
            std::to_string(got_version) + ", expected v" +
            std::to_string(version) + ")");
    const std::uint32_t want_crc = header.u32();
    const std::uint64_t payload_size = header.u64();
    if (payload_size != data.size() - versionedFileHeaderBytes)
        return Status::truncated(path + ": payload size mismatch");
    const std::uint32_t got_crc =
        crc32(data.data() + versionedFileHeaderBytes, payload_size);
    if (got_crc != want_crc)
        return Status::checksumMismatch(path + ": payload CRC mismatch");
    data.erase(data.begin(),
               data.begin() +
                   static_cast<std::ptrdiff_t>(versionedFileHeaderBytes));
    return data;
}

} // namespace tmcc
