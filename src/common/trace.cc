#include "common/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/json.hh"
#include "common/log.hh"

namespace tmcc
{

std::atomic<Tracer *> Tracer::activeTracer_{nullptr};
thread_local std::uint32_t Tracer::tlsPid_ = 0;

namespace
{

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

Tracer::Tracer(std::string path, std::size_t max_events)
    : path_(std::move(path)), maxEvents_(max_events),
      wallEpochNs_(steadyNowNs())
{
    fatalIf(path_.empty(), "trace path must not be empty");
}

Tracer::~Tracer()
{
    finish();
}

double
Tracer::wallNs() const
{
    return static_cast<double>(steadyNowNs() - wallEpochNs_);
}

void
Tracer::append(Event e)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() >= maxEvents_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    e.seq = seq_++;
    events_.push_back(std::move(e));
}

void
Tracer::complete(const char *name, const char *cat, std::uint32_t tid,
                 double ts_ns, double dur_ns, std::string args_json)
{
    append(Event{name, cat, 'X', tlsPid_, tid, ts_ns, dur_ns, 0.0, 0,
                 std::move(args_json)});
}

void
Tracer::instant(const char *name, const char *cat, std::uint32_t tid,
                double ts_ns, std::string args_json)
{
    append(Event{name, cat, 'i', tlsPid_, tid, ts_ns, 0.0, 0.0, 0,
                 std::move(args_json)});
}

void
Tracer::counter(const char *name, double ts_ns, double value)
{
    append(Event{name, "counter", 'C', tlsPid_, 0, ts_ns, 0.0, value, 0,
                 std::string()});
}

void
Tracer::processName(std::uint32_t pid, const std::string &label)
{
    Event e{"process_name", "__metadata", 'M', pid, 0, 0.0, 0.0, 0.0, 0,
            jsonEscape(label)};
    append(std::move(e));
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

bool
Tracer::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_)
        return true;
    finished_ = true;

    // Stable total order: timestamp first, emission order as the tie
    // breaker, metadata events up front (they carry no timestamp).
    std::sort(events_.begin(), events_.end(),
              [](const Event &a, const Event &b) {
                  const bool am = a.ph == 'M', bm = b.ph == 'M';
                  if (am != bm)
                      return am;
                  if (a.tsNs != b.tsNs)
                      return a.tsNs < b.tsNs;
                  return a.seq < b.seq;
              });

    FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        warn("cannot write trace file " + path_);
        return false;
    }

    std::fprintf(f, "{\"traceEvents\":[");
    bool first = true;
    for (const Event &e : events_) {
        std::fprintf(f, "%s\n", first ? "" : ",");
        first = false;
        // ts/dur are microseconds in the trace-event format; %.4f
        // keeps sub-nanosecond (tick) resolution.
        if (e.ph == 'M') {
            std::fprintf(f,
                         "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u,"
                         "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                         e.name, e.pid, e.tid, e.args.c_str());
            continue;
        }
        std::fprintf(f,
                     "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                     "\"pid\":%u,\"tid\":%u,\"ts\":%.4f",
                     e.name, e.cat, e.ph, e.pid, e.tid, e.tsNs / 1000.0);
        if (e.ph == 'X')
            std::fprintf(f, ",\"dur\":%.4f", e.durNs / 1000.0);
        if (e.ph == 'i')
            std::fprintf(f, ",\"s\":\"t\"");
        if (e.ph == 'C')
            std::fprintf(f, ",\"args\":{\"value\":%.17g}", e.value);
        else if (!e.args.empty())
            std::fprintf(f, ",\"args\":{%s}", e.args.c_str());
        std::fprintf(f, "}");
    }
    const std::uint64_t dropped =
        dropped_.load(std::memory_order_relaxed);
    std::fprintf(f,
                 "\n],\"displayTimeUnit\":\"ns\","
                 "\"otherData\":{\"dropped_events\":%llu}}\n",
                 static_cast<unsigned long long>(dropped));
    std::fclose(f);
    if (dropped > 0)
        warn("trace " + path_ + " dropped " + std::to_string(dropped) +
             " events (buffer cap)");
    return true;
}

} // namespace tmcc
