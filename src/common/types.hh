/**
 * @file
 * Fundamental scalar types and address-space constants shared by every
 * subsystem of the TMCC reproduction.
 *
 * The simulator measures time in integer picoseconds ("ticks"), like gem5,
 * so that CPU (2.8 GHz), DRAM (DDR4-3200) and ASIC (2.5 GHz) clock domains
 * compose without rounding drift.
 */

#ifndef TMCC_COMMON_TYPES_HH
#define TMCC_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace tmcc
{

/** A (virtual, physical, or DRAM) byte address. */
using Addr = std::uint64_t;

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** One tick is one picosecond. */
constexpr Tick ticksPerSecond = 1'000'000'000'000ULL;

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * 1000.0 + 0.5);
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / 1000.0;
}

/** Size of a cache line / memory block in bytes, fixed at 64B (§II). */
constexpr std::size_t blockSize = 64;
constexpr unsigned blockShift = 6;

/** Size of a base page in bytes, fixed at 4 KB (§II). */
constexpr std::size_t pageSize = 4096;
constexpr unsigned pageShift = 12;

/** Size of a huge page in bytes, 2 MB (§VIII). */
constexpr std::size_t hugePageSize = 2 * 1024 * 1024;
constexpr unsigned hugePageShift = 21;

/** Memory blocks per 4KB page. */
constexpr std::size_t blocksPerPage = pageSize / blockSize;

/** PTEs per 64B page table block (PTB, §II). */
constexpr std::size_t ptesPerPtb = 8;

/** Bytes per page table entry. */
constexpr std::size_t pteSize = 8;

/** Bytes per page table block (one cache line of PTEs). */
constexpr std::size_t ptbBytes = ptesPerPtb * pteSize;

/** Extract the page-aligned base of an address. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~static_cast<Addr>(pageSize - 1);
}

/** Extract the block-aligned base of an address. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~static_cast<Addr>(blockSize - 1);
}

/** Virtual or physical page number of an address. */
constexpr Addr
pageNumber(Addr a)
{
    return a >> pageShift;
}

/** Block number (global, not within-page) of an address. */
constexpr Addr
blockNumber(Addr a)
{
    return a >> blockShift;
}

/** Index of the block within its page, in [0, 64). */
constexpr unsigned
blockInPage(Addr a)
{
    return static_cast<unsigned>((a >> blockShift) &
                                 (blocksPerPage - 1));
}

/** A physical page number. */
using Ppn = std::uint64_t;

/** A virtual page number. */
using Vpn = std::uint64_t;

/** A DRAM frame number (page-sized slot in DRAM address space). */
using DramFrame = std::uint64_t;

/** Sentinel for "no address". */
constexpr Addr invalidAddr = ~static_cast<Addr>(0);

} // namespace tmcc

#endif // TMCC_COMMON_TYPES_HH
