/**
 * @file
 * Shared container format for every on-disk artifact the simulator
 * persists (setup checkpoints, sweep shard specs/results, the sweep
 * manifest): an 8-byte magic, a little-endian format version, a CRC-32
 * of the payload, the payload length, then the payload.
 *
 * Writes are atomic against concurrent readers *and* concurrent
 * writers: the payload goes to a uniquely named temp file (pid +
 * sequence suffix, so two processes publishing the same path never
 * interleave writes) which is fsync'ed and then rename(2)'d over the
 * destination.  A reader observes either the old complete file or the
 * new complete file, never a torn one; a file left behind by a killed
 * writer is either a stale `.tmp.*` (ignored — readers only open the
 * final path) or a complete previous version.
 *
 * Reads reject malformed input via Status, never fatal(): bad magic and
 * version mismatches are Corruption, short files are Truncated, payload
 * damage is ChecksumMismatch.  Callers decide whether a rejected file
 * means "rebuild" (checkpoints) or "re-run the shard" (sweep results).
 */

#ifndef TMCC_COMMON_VERSIONED_FILE_HH
#define TMCC_COMMON_VERSIONED_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"

namespace tmcc
{

/** Bytes before the payload: magic + version + CRC + payload length. */
constexpr std::size_t versionedFileHeaderBytes = 8 + 4 + 4 + 8;

/**
 * Atomically publish `payload` to `path` under the given 8-byte magic
 * and format version (unique temp file + fsync + rename).
 */
Status writeVersionedFile(const std::string &path, const char magic[8],
                          std::uint32_t version,
                          const std::vector<std::uint8_t> &payload);

/**
 * Atomically publish `payload` to `path` ONLY if `path` does not exist
 * yet (create-if-absent): the payload is written to a unique temp file
 * and then link(2)'ed to the destination, which fails with EEXIST when
 * another writer got there first — even across hosts on a shared
 * filesystem, where O_EXCL alone is unreliable but link() is the
 * canonical lock primitive.  Returns InvalidArgument("already exists")
 * when the destination is present; the loser's temp file is removed.
 *
 * This is the claim primitive of the sweep work queue
 * (docs/SWEEP.md): N workers race to create `shard-NNN.claim` and
 * exactly one wins.
 */
Status writeVersionedFileExclusive(
    const std::string &path, const char magic[8], std::uint32_t version,
    const std::vector<std::uint8_t> &payload);

/**
 * Read and validate a versioned file; returns the payload bytes.
 * `what` names the artifact in error messages (e.g. "checkpoint").
 */
StatusOr<std::vector<std::uint8_t>>
readVersionedFile(const std::string &path, const char magic[8],
                  std::uint32_t version);

} // namespace tmcc

#endif // TMCC_COMMON_VERSIONED_FILE_HH
