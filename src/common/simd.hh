/**
 * @file
 * Portable SIMD set-probe primitives for the hot tag/LRU scans in
 * Cache, CteCache and Tlb.
 *
 * Every set-associative structure in the simulator keeps its way
 * metadata as structure-of-arrays u64 rows (tags or packed keys, LRU
 * stamps), padded per set to the vector width so one probe is a few
 * whole-vector compares that never straddle into the next set.  The
 * primitives here are the only code that makes *decisions* over those
 * rows:
 *
 *   - eqMask      which ways match a key (tag probe)
 *   - eqMask2     which ways match either of two keys, one load pass
 *                 (the insert path's fused resident + free-way probe)
 *   - eqMaskAnd   which ways match a key under a bit mask (validity)
 *   - minIndex    earliest way holding the minimum value (LRU victim)
 *   - victimIndex earliest way minimizing (invalid ? 0 : lru) — the
 *                 fused find-or-insert victim scan
 *
 * Each primitive is defined once per ISA as Ops<Isa> with *identical*
 * result contracts: callers get the same answer from every
 * instantiation, bit for bit, which is what keeps SIMD builds
 * metric-identical to the scalar fallback (property-tested in
 * tests/common/simd_test.cc and tests/cache/probe_property_test.cc,
 * cross-build-diffed by the simd-identity CI job).
 *
 * ISA selection is compile-time: AVX2 > SSE2 > NEON (aarch64) > scalar,
 * overridden to scalar by defining TMCC_SIMD_FORCE_SCALAR (the
 * -DTMCC_SIMD=OFF CMake option).  There is no runtime dispatch — the
 * probes sit inside the hottest loop of the simulator and a predictable
 * branch per probe is still a branch.
 */

#ifndef TMCC_COMMON_SIMD_HH
#define TMCC_COMMON_SIMD_HH

#include <cstdint>

#if !defined(TMCC_SIMD_FORCE_SCALAR)
#if defined(__AVX2__) || defined(__SSE2__) || defined(__x86_64__) || \
    defined(_M_X64)
#include <immintrin.h>
#define TMCC_SIMD_X86 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define TMCC_SIMD_NEON 1
#endif
#endif

namespace tmcc::simd
{

/**
 * Associativity ceiling of the probe engine: way masks are one u64 (one
 * bit per way), so sets wider than 64 ways are unsupported geometry and
 * rejected at construction by every structure built on these probes.
 */
constexpr unsigned maxWays = 64;

/** First set bit of a nonzero way mask = lowest matching way. */
inline unsigned
firstWay(std::uint64_t mask)
{
    return static_cast<unsigned>(__builtin_ctzll(mask));
}

/**
 * The scalar fallback — also the oracle every vector ISA is
 * property-tested against.  `n` is the padded way count; the contracts
 * below hold for any n in [1, maxWays].
 */
struct ScalarIsa
{
    static constexpr unsigned lanes = 1;
    static constexpr const char *name = "scalar";

    /** Bit i set iff p[i] == key. */
    static std::uint64_t
    eqMask(const std::uint64_t *p, unsigned n, std::uint64_t key)
    {
        std::uint64_t m = 0;
        for (unsigned i = 0; i < n; ++i)
            m |= static_cast<std::uint64_t>(p[i] == key) << i;
        return m;
    }

    /** eqMask for two keys over one pass: ma/mb get the way masks. */
    static void
    eqMask2(const std::uint64_t *p, unsigned n, std::uint64_t key_a,
            std::uint64_t key_b, std::uint64_t &ma, std::uint64_t &mb)
    {
        ma = mb = 0;
        for (unsigned i = 0; i < n; ++i) {
            ma |= static_cast<std::uint64_t>(p[i] == key_a) << i;
            mb |= static_cast<std::uint64_t>(p[i] == key_b) << i;
        }
    }

    /** Bit i set iff (p[i] & mask) == key. */
    static std::uint64_t
    eqMaskAnd(const std::uint64_t *p, unsigned n, std::uint64_t mask,
              std::uint64_t key)
    {
        std::uint64_t m = 0;
        for (unsigned i = 0; i < n; ++i)
            m |= static_cast<std::uint64_t>((p[i] & mask) == key) << i;
        return m;
    }

    /** Earliest index of the minimum of p[0..n). */
    static unsigned
    minIndex(const std::uint64_t *p, unsigned n)
    {
        unsigned best = 0;
        for (unsigned i = 1; i < n; ++i)
            if (p[i] < p[best])
                best = i;
        return best;
    }

    /**
     * Earliest index minimizing (tags[i] == invalid_tag ? 0 : lru[i])
     * — the replacement scan of the fused find-or-insert path, where
     * invalid ways outrank every valid way and ties go to the lowest
     * way.
     */
    static unsigned
    victimIndex(const std::uint64_t *tags, const std::uint64_t *lru,
                unsigned n, std::uint64_t invalid_tag)
    {
        unsigned best = 0;
        std::uint64_t best_score =
            tags[0] == invalid_tag ? 0 : lru[0];
        for (unsigned i = 1; i < n; ++i) {
            const std::uint64_t score =
                tags[i] == invalid_tag ? 0 : lru[i];
            if (score < best_score) {
                best_score = score;
                best = i;
            }
        }
        return best;
    }
};

#if defined(TMCC_SIMD_X86)

/** 128-bit SSE2 path: 2 u64 lanes, u64 compares synthesized from epi32
 * ops (baseline x86-64 has no 64-bit vector compare). */
struct Sse2Isa
{
    static constexpr unsigned lanes = 2;
    static constexpr const char *name = "sse2";

    static __m128i
    eq64(__m128i a, __m128i b)
    {
        const __m128i e = _mm_cmpeq_epi32(a, b);
        return _mm_and_si128(
            e, _mm_shuffle_epi32(e, _MM_SHUFFLE(2, 3, 0, 1)));
    }

    /** Signed 64-bit a > b from epi32 compares (classic SSE2 trick:
     * on equal high halves the borrow of the 64-bit subtract carries
     * the unsigned low-half comparison into the sign bit). */
    static __m128i
    gt64s(__m128i a, __m128i b)
    {
        __m128i r = _mm_and_si128(_mm_cmpeq_epi32(a, b),
                                  _mm_sub_epi64(b, a));
        r = _mm_or_si128(r, _mm_cmpgt_epi32(a, b));
        return _mm_shuffle_epi32(r, _MM_SHUFFLE(3, 3, 1, 1));
    }

    /** Unsigned 64-bit min via sign-bias + gt64s. */
    static __m128i
    minU64(__m128i a, __m128i b)
    {
        const __m128i bias = _mm_set1_epi64x(
            static_cast<long long>(0x8000000000000000ULL));
        const __m128i gt =
            gt64s(_mm_xor_si128(a, bias), _mm_xor_si128(b, bias));
        return _mm_or_si128(_mm_and_si128(gt, b),
                            _mm_andnot_si128(gt, a));
    }

    static std::uint64_t
    eqMask(const std::uint64_t *p, unsigned n, std::uint64_t key)
    {
        const __m128i k = _mm_set1_epi64x(static_cast<long long>(key));
        std::uint64_t m = 0;
        for (unsigned i = 0; i < n; i += 2) {
            const __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + i));
            m |= static_cast<std::uint64_t>(_mm_movemask_pd(
                     _mm_castsi128_pd(eq64(v, k))))
                 << i;
        }
        return m;
    }

    static void
    eqMask2(const std::uint64_t *p, unsigned n, std::uint64_t key_a,
            std::uint64_t key_b, std::uint64_t &ma, std::uint64_t &mb)
    {
        const __m128i ka =
            _mm_set1_epi64x(static_cast<long long>(key_a));
        const __m128i kb =
            _mm_set1_epi64x(static_cast<long long>(key_b));
        ma = mb = 0;
        for (unsigned i = 0; i < n; i += 2) {
            const __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + i));
            ma |= static_cast<std::uint64_t>(_mm_movemask_pd(
                      _mm_castsi128_pd(eq64(v, ka))))
                  << i;
            mb |= static_cast<std::uint64_t>(_mm_movemask_pd(
                      _mm_castsi128_pd(eq64(v, kb))))
                  << i;
        }
    }

    static std::uint64_t
    eqMaskAnd(const std::uint64_t *p, unsigned n, std::uint64_t mask,
              std::uint64_t key)
    {
        const __m128i k = _mm_set1_epi64x(static_cast<long long>(key));
        const __m128i am =
            _mm_set1_epi64x(static_cast<long long>(mask));
        std::uint64_t m = 0;
        for (unsigned i = 0; i < n; i += 2) {
            const __m128i v = _mm_and_si128(
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(p + i)),
                am);
            m |= static_cast<std::uint64_t>(_mm_movemask_pd(
                     _mm_castsi128_pd(eq64(v, k))))
                 << i;
        }
        return m;
    }

    static std::uint64_t
    hmin(__m128i v)
    {
        const std::uint64_t lo =
            static_cast<std::uint64_t>(_mm_cvtsi128_si64(v));
        const std::uint64_t hi = static_cast<std::uint64_t>(
            _mm_cvtsi128_si64(_mm_unpackhi_epi64(v, v)));
        return lo < hi ? lo : hi;
    }

    /**
     * Pick the earliest-index minimum from per-lane running (value,
     * index) pairs.  Within a lane, strict less-than updates kept the
     * earliest index; across lanes, equal values break toward the
     * smaller index — together exactly the oracle's scan order.
     */
    static unsigned
    pickLane(__m128i bestv, __m128i besti)
    {
        const std::uint64_t v0 =
            static_cast<std::uint64_t>(_mm_cvtsi128_si64(bestv));
        const std::uint64_t v1 = static_cast<std::uint64_t>(
            _mm_cvtsi128_si64(_mm_unpackhi_epi64(bestv, bestv)));
        const std::uint64_t i0 =
            static_cast<std::uint64_t>(_mm_cvtsi128_si64(besti));
        const std::uint64_t i1 = static_cast<std::uint64_t>(
            _mm_cvtsi128_si64(_mm_unpackhi_epi64(besti, besti)));
        return static_cast<unsigned>(
            (v1 < v0 || (v1 == v0 && i1 < i0)) ? i1 : i0);
    }

    /** Unsigned 64-bit a < b (lanewise mask). */
    static __m128i
    lt64u(__m128i a, __m128i b)
    {
        const __m128i bias = _mm_set1_epi64x(
            static_cast<long long>(0x8000000000000000ULL));
        return gt64s(_mm_xor_si128(b, bias), _mm_xor_si128(a, bias));
    }

    static __m128i
    blend(__m128i a, __m128i b, __m128i take_b)
    {
        return _mm_or_si128(_mm_and_si128(take_b, b),
                            _mm_andnot_si128(take_b, a));
    }

    static unsigned
    minIndex(const std::uint64_t *p, unsigned n)
    {
        __m128i bestv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(p));
        __m128i besti = _mm_set_epi64x(1, 0);
        __m128i idx = besti;
        const __m128i step = _mm_set1_epi64x(2);
        for (unsigned i = 2; i < n; i += 2) {
            idx = _mm_add_epi64(idx, step);
            const __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + i));
            const __m128i lt = lt64u(v, bestv);
            bestv = blend(bestv, v, lt);
            besti = blend(besti, idx, lt);
        }
        return pickLane(bestv, besti);
    }

    static unsigned
    victimIndex(const std::uint64_t *tags, const std::uint64_t *lru,
                unsigned n, std::uint64_t invalid_tag)
    {
        const __m128i inv =
            _mm_set1_epi64x(static_cast<long long>(invalid_tag));
        __m128i bestv = _mm_set1_epi64x(-1);
        __m128i besti = _mm_setzero_si128();
        __m128i idx = _mm_set_epi64x(1, 0);
        const __m128i step = _mm_set1_epi64x(2);
        for (unsigned i = 0; i < n; i += 2) {
            const __m128i t = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(tags + i));
            const __m128i l = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(lru + i));
            // invalid way -> score 0, else its LRU stamp.
            const __m128i score = _mm_andnot_si128(eq64(t, inv), l);
            const __m128i lt = lt64u(score, bestv);
            bestv = blend(bestv, score, lt);
            besti = blend(besti, idx, lt);
            idx = _mm_add_epi64(idx, step);
        }
        return pickLane(bestv, besti);
    }
};

#endif // TMCC_SIMD_X86

#if defined(TMCC_SIMD_X86) && defined(__AVX2__)

/** 256-bit AVX2 path: 4 u64 lanes with native 64-bit compares. */
struct Avx2Isa
{
    static constexpr unsigned lanes = 4;
    static constexpr const char *name = "avx2";

    static __m256i
    minU64(__m256i a, __m256i b)
    {
        const __m256i bias = _mm256_set1_epi64x(
            static_cast<long long>(0x8000000000000000ULL));
        const __m256i gt = _mm256_cmpgt_epi64(
            _mm256_xor_si256(a, bias), _mm256_xor_si256(b, bias));
        return _mm256_blendv_epi8(a, b, gt);
    }

    static std::uint64_t
    eqMask(const std::uint64_t *p, unsigned n, std::uint64_t key)
    {
        const __m256i k =
            _mm256_set1_epi64x(static_cast<long long>(key));
        std::uint64_t m = 0;
        for (unsigned i = 0; i < n; i += 4) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(p + i));
            m |= static_cast<std::uint64_t>(
                     _mm256_movemask_pd(_mm256_castsi256_pd(
                         _mm256_cmpeq_epi64(v, k))))
                 << i;
        }
        return m;
    }

    static void
    eqMask2(const std::uint64_t *p, unsigned n, std::uint64_t key_a,
            std::uint64_t key_b, std::uint64_t &ma, std::uint64_t &mb)
    {
        const __m256i ka =
            _mm256_set1_epi64x(static_cast<long long>(key_a));
        const __m256i kb =
            _mm256_set1_epi64x(static_cast<long long>(key_b));
        ma = mb = 0;
        for (unsigned i = 0; i < n; i += 4) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(p + i));
            ma |= static_cast<std::uint64_t>(
                      _mm256_movemask_pd(_mm256_castsi256_pd(
                          _mm256_cmpeq_epi64(v, ka))))
                  << i;
            mb |= static_cast<std::uint64_t>(
                      _mm256_movemask_pd(_mm256_castsi256_pd(
                          _mm256_cmpeq_epi64(v, kb))))
                  << i;
        }
    }

    static std::uint64_t
    eqMaskAnd(const std::uint64_t *p, unsigned n, std::uint64_t mask,
              std::uint64_t key)
    {
        const __m256i k =
            _mm256_set1_epi64x(static_cast<long long>(key));
        const __m256i am =
            _mm256_set1_epi64x(static_cast<long long>(mask));
        std::uint64_t m = 0;
        for (unsigned i = 0; i < n; i += 4) {
            const __m256i v = _mm256_and_si256(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(p + i)),
                am);
            m |= static_cast<std::uint64_t>(
                     _mm256_movemask_pd(_mm256_castsi256_pd(
                         _mm256_cmpeq_epi64(v, k))))
                 << i;
        }
        return m;
    }

    static std::uint64_t
    hmin(__m256i v)
    {
        const __m128i half =
            Sse2Isa::minU64(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
        return Sse2Isa::hmin(half);
    }

    /** Unsigned 64-bit a < b (lanewise mask). */
    static __m256i
    lt64u(__m256i a, __m256i b)
    {
        const __m256i bias = _mm256_set1_epi64x(
            static_cast<long long>(0x8000000000000000ULL));
        return _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias),
                                  _mm256_xor_si256(a, bias));
    }

    /** See Sse2Isa::pickLane: earliest-index minimum across lanes. */
    static unsigned
    pickLane(__m256i bestv, __m256i besti)
    {
        alignas(32) std::uint64_t v[4], id[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(v), bestv);
        _mm256_store_si256(reinterpret_cast<__m256i *>(id), besti);
        unsigned best = 0;
        for (unsigned l = 1; l < 4; ++l)
            if (v[l] < v[best] ||
                (v[l] == v[best] && id[l] < id[best]))
                best = l;
        return static_cast<unsigned>(id[best]);
    }

    static unsigned
    minIndex(const std::uint64_t *p, unsigned n)
    {
        __m256i bestv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p));
        __m256i besti = _mm256_setr_epi64x(0, 1, 2, 3);
        __m256i idx = besti;
        const __m256i step = _mm256_set1_epi64x(4);
        for (unsigned i = 4; i < n; i += 4) {
            idx = _mm256_add_epi64(idx, step);
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(p + i));
            const __m256i lt = lt64u(v, bestv);
            bestv = _mm256_blendv_epi8(bestv, v, lt);
            besti = _mm256_blendv_epi8(besti, idx, lt);
        }
        return pickLane(bestv, besti);
    }

    static unsigned
    victimIndex(const std::uint64_t *tags, const std::uint64_t *lru,
                unsigned n, std::uint64_t invalid_tag)
    {
        const __m256i inv =
            _mm256_set1_epi64x(static_cast<long long>(invalid_tag));
        __m256i bestv = _mm256_set1_epi64x(-1);
        __m256i besti = _mm256_setzero_si256();
        __m256i idx = _mm256_setr_epi64x(0, 1, 2, 3);
        const __m256i step = _mm256_set1_epi64x(4);
        for (unsigned i = 0; i < n; i += 4) {
            const __m256i t = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(tags + i));
            const __m256i l = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(lru + i));
            // invalid way -> score 0, else its LRU stamp.
            const __m256i score = _mm256_andnot_si256(
                _mm256_cmpeq_epi64(t, inv), l);
            const __m256i lt = lt64u(score, bestv);
            bestv = _mm256_blendv_epi8(bestv, score, lt);
            besti = _mm256_blendv_epi8(besti, idx, lt);
            idx = _mm256_add_epi64(idx, step);
        }
        return pickLane(bestv, besti);
    }
};

#endif // __AVX2__

#if defined(TMCC_SIMD_NEON)

/** 128-bit NEON path (aarch64: native 64-bit compares). */
struct NeonIsa
{
    static constexpr unsigned lanes = 2;
    static constexpr const char *name = "neon";

    static std::uint64_t
    pairMask(uint64x2_t m)
    {
        return (vgetq_lane_u64(m, 0) & 1) |
               ((vgetq_lane_u64(m, 1) & 1) << 1);
    }

    static uint64x2_t
    minU64(uint64x2_t a, uint64x2_t b)
    {
        return vbslq_u64(vcgtq_u64(a, b), b, a);
    }

    static std::uint64_t
    eqMask(const std::uint64_t *p, unsigned n, std::uint64_t key)
    {
        const uint64x2_t k = vdupq_n_u64(key);
        std::uint64_t m = 0;
        for (unsigned i = 0; i < n; i += 2)
            m |= pairMask(vceqq_u64(vld1q_u64(p + i), k)) << i;
        return m;
    }

    static void
    eqMask2(const std::uint64_t *p, unsigned n, std::uint64_t key_a,
            std::uint64_t key_b, std::uint64_t &ma, std::uint64_t &mb)
    {
        const uint64x2_t ka = vdupq_n_u64(key_a);
        const uint64x2_t kb = vdupq_n_u64(key_b);
        ma = mb = 0;
        for (unsigned i = 0; i < n; i += 2) {
            const uint64x2_t v = vld1q_u64(p + i);
            ma |= pairMask(vceqq_u64(v, ka)) << i;
            mb |= pairMask(vceqq_u64(v, kb)) << i;
        }
    }

    static std::uint64_t
    eqMaskAnd(const std::uint64_t *p, unsigned n, std::uint64_t mask,
              std::uint64_t key)
    {
        const uint64x2_t k = vdupq_n_u64(key);
        const uint64x2_t am = vdupq_n_u64(mask);
        std::uint64_t m = 0;
        for (unsigned i = 0; i < n; i += 2)
            m |= pairMask(vceqq_u64(
                     vandq_u64(vld1q_u64(p + i), am), k))
                 << i;
        return m;
    }

    static std::uint64_t
    hmin(uint64x2_t v)
    {
        const std::uint64_t lo = vgetq_lane_u64(v, 0);
        const std::uint64_t hi = vgetq_lane_u64(v, 1);
        return lo < hi ? lo : hi;
    }

    /** See Sse2Isa::pickLane: earliest-index minimum across lanes. */
    static unsigned
    pickLane(uint64x2_t bestv, uint64x2_t besti)
    {
        const std::uint64_t v0 = vgetq_lane_u64(bestv, 0);
        const std::uint64_t v1 = vgetq_lane_u64(bestv, 1);
        const std::uint64_t i0 = vgetq_lane_u64(besti, 0);
        const std::uint64_t i1 = vgetq_lane_u64(besti, 1);
        return static_cast<unsigned>(
            (v1 < v0 || (v1 == v0 && i1 < i0)) ? i1 : i0);
    }

    static unsigned
    minIndex(const std::uint64_t *p, unsigned n)
    {
        uint64x2_t bestv = vld1q_u64(p);
        const std::uint64_t init[2] = {0, 1};
        uint64x2_t besti = vld1q_u64(init);
        uint64x2_t idx = besti;
        const uint64x2_t step = vdupq_n_u64(2);
        for (unsigned i = 2; i < n; i += 2) {
            idx = vaddq_u64(idx, step);
            const uint64x2_t v = vld1q_u64(p + i);
            const uint64x2_t lt = vcltq_u64(v, bestv);
            bestv = vbslq_u64(lt, v, bestv);
            besti = vbslq_u64(lt, idx, besti);
        }
        return pickLane(bestv, besti);
    }

    static unsigned
    victimIndex(const std::uint64_t *tags, const std::uint64_t *lru,
                unsigned n, std::uint64_t invalid_tag)
    {
        const uint64x2_t inv = vdupq_n_u64(invalid_tag);
        uint64x2_t bestv = vdupq_n_u64(~0ULL);
        uint64x2_t besti = vdupq_n_u64(0);
        const std::uint64_t init[2] = {0, 1};
        uint64x2_t idx = vld1q_u64(init);
        const uint64x2_t step = vdupq_n_u64(2);
        for (unsigned i = 0; i < n; i += 2) {
            const uint64x2_t t = vld1q_u64(tags + i);
            const uint64x2_t l = vld1q_u64(lru + i);
            // invalid way -> score 0, else its LRU stamp.
            const uint64x2_t score = vbicq_u64(l, vceqq_u64(t, inv));
            const uint64x2_t lt = vcltq_u64(score, bestv);
            bestv = vbslq_u64(lt, score, bestv);
            besti = vbslq_u64(lt, idx, besti);
            idx = vaddq_u64(idx, step);
        }
        return pickLane(bestv, besti);
    }
};

#endif // TMCC_SIMD_NEON

// Compile-time ISA selection (widest available wins; see file header).
#if defined(TMCC_SIMD_X86) && defined(__AVX2__)
using Active = Avx2Isa;
#elif defined(TMCC_SIMD_X86)
using Active = Sse2Isa;
#elif defined(TMCC_SIMD_NEON)
using Active = NeonIsa;
#else
using Active = ScalarIsa;
#endif

/** Ways per set after padding to the active vector width. */
constexpr unsigned
padWays(unsigned assoc)
{
    return (assoc + Active::lanes - 1) / Active::lanes * Active::lanes;
}

/** Hint the prefetcher at the metadata row starting at `p`. */
inline void
prefetchRow(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0 /* read */, 3 /* high locality */);
#else
    (void)p;
#endif
}

} // namespace tmcc::simd

#endif // TMCC_COMMON_SIMD_HH
