/**
 * @file
 * Bit-manipulation helpers used by the compressors, the PTB encoder, and
 * the DRAM address mapper.
 */

#ifndef TMCC_COMMON_BITOPS_HH
#define TMCC_COMMON_BITOPS_HH

#include <cassert>
#include <cstdint>
#include <vector>

namespace tmcc
{

/** Extract bits [lo, lo+width) of v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned width)
{
    assert(width <= 64);
    if (width == 64)
        return v >> lo;
    return (v >> lo) & ((1ULL << width) - 1);
}

/** Insert `field` into bits [lo, lo+width) of v, returning the result. */
constexpr std::uint64_t
insertBits(std::uint64_t v, unsigned lo, unsigned width, std::uint64_t field)
{
    const std::uint64_t mask = (width >= 64 ? ~0ULL : ((1ULL << width) - 1))
                               << lo;
    return (v & ~mask) | ((field << lo) & mask);
}

/** Number of bits needed to represent values in [0, n). */
constexpr unsigned
bitsFor(std::uint64_t n)
{
    unsigned b = 0;
    std::uint64_t v = 1;
    while (v < n) {
        v <<= 1;
        ++b;
    }
    return b;
}

/** Population count. */
constexpr unsigned
popCount(std::uint64_t v)
{
    return static_cast<unsigned>(__builtin_popcountll(v));
}

/** Floor of log2; undefined for 0. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    return 63 - static_cast<unsigned>(__builtin_clzll(v));
}

/** True iff v is a power of two (and nonzero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** XOR-fold of all bits of v, used by XOR-based DRAM bank hashing. */
constexpr unsigned
xorFold(std::uint64_t v)
{
    v ^= v >> 32;
    v ^= v >> 16;
    v ^= v >> 8;
    v ^= v >> 4;
    v ^= v >> 2;
    v ^= v >> 1;
    return static_cast<unsigned>(v & 1);
}

/**
 * A growable little-endian bit stream writer.  The compressors emit
 * variable-width codes through this; the matching BitReader consumes them.
 */
class BitWriter
{
  public:
    /** Append the low `width` bits of `v` (width <= 57 per call). */
    void
    put(std::uint64_t v, unsigned width)
    {
        assert(width <= 57);
        cur_ |= (v & ((width >= 64 ? ~0ULL : (1ULL << width) - 1)))
                << curBits_;
        curBits_ += width;
        while (curBits_ >= 8) {
            bytes_.push_back(static_cast<std::uint8_t>(cur_ & 0xff));
            cur_ >>= 8;
            curBits_ -= 8;
        }
    }

    /** Pre-size the underlying byte buffer (capacity hint). */
    void reserve(std::size_t bytes) { bytes_.reserve(bytes); }

    /** Finish the stream, flushing any partial byte. */
    std::vector<std::uint8_t>
    finish()
    {
        if (curBits_ > 0) {
            bytes_.push_back(static_cast<std::uint8_t>(cur_ & 0xff));
            cur_ = 0;
            curBits_ = 0;
        }
        return std::move(bytes_);
    }

    /** Number of bits written so far. */
    std::size_t sizeBits() const { return bytes_.size() * 8 + curBits_; }

    /** Number of whole bytes the stream will occupy once finished. */
    std::size_t sizeBytes() const { return (sizeBits() + 7) / 8; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::uint64_t cur_ = 0;
    unsigned curBits_ = 0;
};

/** Little-endian bit stream reader matching BitWriter. */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    explicit BitReader(const std::vector<std::uint8_t> &v)
        : BitReader(v.data(), v.size())
    {}

    /**
     * Read `width` bits (width <= 57). Reads past the end return zeros
     * and latch the overrun() flag so corruption-safe decoders can tell
     * a truncated stream from one that legitimately ends in zeros.
     */
    std::uint64_t
    get(unsigned width)
    {
        assert(width <= 57);
        while (curBits_ < width && pos_ < size_) {
            cur_ |= static_cast<std::uint64_t>(data_[pos_++]) << curBits_;
            curBits_ += 8;
        }
        if (curBits_ < width)
            overrun_ = true;
        const std::uint64_t v =
            cur_ & (width >= 64 ? ~0ULL : (1ULL << width) - 1);
        cur_ >>= width;
        curBits_ = curBits_ >= width ? curBits_ - width : 0;
        bitsRead_ += width;
        return v;
    }

    /** Peek without consuming. */
    std::uint64_t
    peek(unsigned width)
    {
        while (curBits_ < width && pos_ < size_) {
            cur_ |= static_cast<std::uint64_t>(data_[pos_++]) << curBits_;
            curBits_ += 8;
        }
        return cur_ & (width >= 64 ? ~0ULL : (1ULL << width) - 1);
    }

    /** Discard `width` bits previously peeked. */
    void
    skip(unsigned width)
    {
        if (curBits_ < width) {
            // Only reachable on corrupt input: a decoded code claimed
            // more bits than the stream held.  Latch instead of assert.
            overrun_ = true;
            bitsRead_ += width;
            cur_ = 0;
            curBits_ = 0;
            return;
        }
        cur_ >>= width;
        curBits_ -= width;
        bitsRead_ += width;
    }

    /** Total bits consumed so far. */
    std::size_t bitsRead() const { return bitsRead_; }

    /** True when every payload bit has been consumed. */
    bool
    exhausted() const
    {
        return pos_ >= size_ && curBits_ == 0;
    }

    /** True once any read reached past the end of the stream. */
    bool overrun() const { return overrun_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::uint64_t cur_ = 0;
    unsigned curBits_ = 0;
    std::size_t bitsRead_ = 0;
    bool overrun_ = false;
};

} // namespace tmcc

#endif // TMCC_COMMON_BITOPS_HH
