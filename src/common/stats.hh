/**
 * @file
 * Lightweight statistics: scalar counters, averages, distributions and a
 * named registry so each simulated component can export its counters and a
 * bench harness can print a coherent table, loosely modelled on gem5's
 * stats package.
 */

#ifndef TMCC_COMMON_STATS_HH
#define TMCC_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace tmcc
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of a sampled quantity (e.g., L3 miss latency in ns). */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    /** Restore serialized state bit-exactly (sweep shard merging). */
    void
    restore(double sum, std::uint64_t count)
    {
        sum_ = sum;
        count_ = count;
    }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram for latency / size distributions. */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets);

    void
    sample(double v)
    {
        avg_.sample(v);
        if (v < lo_) {
            ++underflow_;
            return;
        }
        if (v >= hi_) {
            ++overflow_;
            return;
        }
        // (v - lo_) / (hi_ - lo_) can round to exactly 1.0 when v is
        // just below hi_ (e.g. the subtraction rounding up to the full
        // range), so the scaled index must be clamped to the top
        // bucket to avoid an out-of-bounds write.
        auto idx = static_cast<std::size_t>(
            (v - lo_) / (hi_ - lo_) * counts_.size());
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
    }

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    double mean() const { return avg_.mean(); }
    /** Exact running sum of all samples (serialization needs the sum,
     * not the derived mean, for bit-exact round trips). */
    double sampleSum() const { return avg_.sum(); }
    std::uint64_t count() const { return avg_.count(); }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    double bucketLow(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * static_cast<double>(i) /
               static_cast<double>(counts_.size());
    }

    /**
     * Approximate p-quantile (p in [0, 1]) of the in-range samples,
     * linearly interpolated within the containing bucket; lo()/hi()
     * when the histogram is empty or p falls off either end.
     */
    double percentile(double p) const;

    /**
     * Restore serialized state bit-exactly (sweep shard merging).  The
     * bucket count must match this histogram's geometry.
     */
    void restore(std::vector<std::uint64_t> counts,
                 std::uint64_t underflow, std::uint64_t overflow,
                 double sum, std::uint64_t count);

    void
    reset()
    {
        avg_.reset();
        underflow_ = overflow_ = 0;
        for (auto &c : counts_)
            c = 0;
    }

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0, overflow_ = 0;
    Average avg_;
};

/**
 * A flat name -> value map that components dump their counters into.
 * Names are dotted paths ("l3.misses", "mc.cte_cache.hits").
 */
class StatDump
{
  public:
    void set(const std::string &name, double v) { values_[name] = v; }
    void
    set(const std::string &name, std::uint64_t v)
    {
        values_[name] = static_cast<double>(v);
    }

    double
    get(const std::string &name) const
    {
        auto it = values_.find(name);
        return it == values_.end() ? 0.0 : it->second;
    }

    /**
     * Like get(), but a missing stat is fatal instead of a silent 0.0.
     * Headline metrics must use this: a typo'd name then fails loudly
     * rather than producing a plausible-looking zero in a report.
     */
    double getRequired(const std::string &name) const;

    bool has(const std::string &name) const
    {
        return values_.count(name) != 0;
    }

    const std::map<std::string, double> &all() const { return values_; }

    /** Print every stat, one per line, sorted by name. */
    void print(std::ostream &os) const;

  private:
    std::map<std::string, double> values_;
};

/** Interface for components that export statistics. */
class Stated
{
  public:
    virtual ~Stated() = default;

    /** Dump this component's counters under the given name prefix. */
    virtual void dumpStats(StatDump &dump,
                           const std::string &prefix) const = 0;
};

/** Geometric mean of a vector of positive values; 0 if empty. */
double geoMean(const std::vector<double> &values);

/**
 * Export a histogram into a StatDump under `prefix`: `.mean`,
 * `.count`, `.underflow`, `.overflow`, `.lo`, `.hi`, `.num_buckets`,
 * and one `.bucketNNN` entry per non-empty bucket (NNN zero-padded so
 * the dump sorts in bucket order; edges follow from lo/hi/num_buckets).
 */
void dumpHistogram(StatDump &dump, const std::string &prefix,
                   const Histogram &h);

} // namespace tmcc

#endif // TMCC_COMMON_STATS_HH
