/**
 * @file
 * The Compresso baseline (Choukse et al., MICRO 2018) as characterized
 * in §II/III of the TMCC paper: block-level best-of-four compression,
 * data packed into 512B chunks, a 64B metadata block (CTE) per 4KB page
 * holding per-block positions, a 128KB CTE cache (Table III), and
 * strictly *serial* CTE-then-data DRAM access on CTE-cache misses.
 *
 * Optional knobs reproduce the §III design alternatives: a larger CTE
 * cache (Fig. 2's "4X") and using the LLC as a victim cache for evicted
 * CTEs (with the ~20ns NoC round trip that makes it a wash).
 */

#ifndef TMCC_COMPRESSO_COMPRESSO_MC_HH
#define TMCC_COMPRESSO_COMPRESSO_MC_HH

#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "mc/cte_cache.hh"
#include "mc/free_list.hh"
#include "mc/mem_controller.hh"
#include "mc/page_profile.hh"

namespace tmcc
{

/** Compresso configuration. */
struct CompressoConfig
{
    std::size_t cteCacheBytes = 128 * 1024; //!< Table III
    std::size_t chunkBytes = 512;
    double mcProcNs = 1.0;          //!< metadata pipeline
    double blockDecompressNs = 3.0; //!< BDI/BPC/CPack-class latency
    double llcVictimLatNs = 20.0;   //!< LLC round trip (§III)
    bool cteVictimInLlc = false;    //!< Fig. 2 alternative
    std::size_t llcVictimBytes = 1 * 1024 * 1024; //!< LLC share modelled
    double repackBlockFraction = 0.25; //!< blocks rewritten per repack
};

/** The Compresso memory controller. */
class CompressoMc : public MemController
{
  public:
    CompressoMc(DramSystem &dram, const PageInfoProvider &info,
                const CompressoConfig &cfg = CompressoConfig{});

    /** Place and pack one physical page (done in bulk at warm-up). */
    void registerPage(Ppn ppn);

    McReadResponse read(const McReadRequest &req) override;
    void writeback(Addr paddr, Tick when, bool line_compressed) override;

    /** Fast-forward: keep CTE-cache residency warm, nothing else. */
    void
    functionalTouch(Ppn ppn, bool /*is_write*/, Tick /*now*/) override
    {
        if (!cteCache_.lookup(ppn))
            cteCache_.insert(ppn);
    }

    std::uint64_t dramUsedBytes() const override;

    CteCache &cteCache() { return cteCache_; }

    std::uint64_t cteDramFetches() const
    {
        return cteDramFetches_.value();
    }

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

  private:
    struct PageState
    {
        std::vector<Addr> chunks;
        std::uint32_t compressedBytes = 0;
    };

    PageState &pageState(Ppn ppn);

    /** DRAM address of block `paddr` inside its packed page. */
    Addr blockDramAddr(const PageState &ps, Addr paddr) const;

    /** DRAM address of the 64B CTE for `ppn`. */
    Addr cteDramAddr(Ppn ppn) const;

    const PageInfoProvider &info_;
    CompressoConfig cfg_;
    CteCache cteCache_;
    CteCache llcVictim_; //!< models CTEs spilled into the LLC
    ChunkFreeList freeChunks_;
    std::unordered_map<Ppn, PageState> pages_;
    std::uint64_t usedBytes_ = 0;
    std::uint64_t repackBytes_ = 0;
    Rng rng_;

    Counter reads_, writebacks_, repacks_, cteWrites_, cteDramFetches_;
    Counter llcVictimHits_, llcVictimMisses_;
};

} // namespace tmcc

#endif // TMCC_COMPRESSO_COMPRESSO_MC_HH
