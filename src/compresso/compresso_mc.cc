#include "compresso/compresso_mc.hh"

#include "mc/cte.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/trace.hh"

namespace tmcc
{

namespace
{

/** CTE table lives in a reserved region at the top of DRAM space. */
constexpr Addr cteTableBase = 1ULL << 46;

} // namespace

CompressoMc::CompressoMc(DramSystem &dram, const PageInfoProvider &info,
                         const CompressoConfig &cfg)
    : MemController(dram), info_(info), cfg_(cfg),
      cteCache_(cfg.cteCacheBytes, /*pages_per_block=*/1),
      llcVictim_(cfg.llcVictimBytes, 1),
      freeChunks_(cfg.chunkBytes), rng_(0xc0de)
{
    // Seed the chunk pool over the data region (everything below the
    // CTE table); sized generously, actual usage is what matters.
    freeChunks_.seed(0, dram.capacityBytes() / cfg.chunkBytes);
}

CompressoMc::PageState &
CompressoMc::pageState(Ppn ppn)
{
    auto it = pages_.find(ppn);
    if (it == pages_.end()) {
        registerPage(ppn);
        it = pages_.find(ppn);
    }
    return it->second;
}

void
CompressoMc::registerPage(Ppn ppn)
{
    if (pages_.count(ppn))
        return;
    const PageProfile &prof = info_.profile(ppn);
    PageState ps;
    ps.compressedBytes =
        std::min<std::uint32_t>(prof.blockBytes, pageSize);
    const auto chunks = std::max<std::uint32_t>(
        1, (ps.compressedBytes + cfg_.chunkBytes - 1) / cfg_.chunkBytes);
    for (std::uint32_t i = 0; i < chunks; ++i)
        ps.chunks.push_back(freeChunks_.pop());
    usedBytes_ += chunks * cfg_.chunkBytes;
    pages_.emplace(ppn, std::move(ps));
}

Addr
CompressoMc::blockDramAddr(const PageState &ps, Addr paddr) const
{
    // Blocks pack contiguously; block i starts at roughly its
    // proportional offset in the packed stream.  (Real Compresso tracks
    // exact per-block offsets in the CTE; proportional placement gives
    // the same chunk/bank behaviour without 64 offsets per page.)
    const unsigned blk = blockInPage(paddr);
    const std::uint64_t offset =
        static_cast<std::uint64_t>(blk) * ps.compressedBytes /
        blocksPerPage;
    const std::size_t chunk_idx = offset / cfg_.chunkBytes;
    return ps.chunks[std::min(chunk_idx, ps.chunks.size() - 1)] +
           (offset % cfg_.chunkBytes);
}

Addr
CompressoMc::cteDramAddr(Ppn ppn) const
{
    return cteTableBase + ppn * blockCteBytes;
}

McReadResponse
CompressoMc::read(const McReadRequest &req)
{
    reads_.inc();
    McReadResponse resp;
    const Ppn ppn = pageNumber(req.paddr);
    const PageState &ps = pageState(ppn);
    const Tick t0 = req.when + nsToTicks(cfg_.mcProcNs);

    if (req.background) {
        // Prefetch fill: exercises the CTE cache (prefetches need
        // translations like any request, §III) but rides idle DRAM
        // slots -- no contention charged at request level.
        resp.cteCacheHit = cteCache_.lookup(ppn);
        if (!resp.cteCacheHit)
            cteCache_.insert(ppn);
        resp.complete = req.when;
        return resp;
    }

    if (cteCache_.lookup(ppn)) {
        resp.cteCacheHit = true;
        resp.complete = dram_.read(blockDramAddr(ps, req.paddr), t0) +
                        nsToTicks(cfg_.blockDecompressNs);
        if (Tracer *tr = Tracer::active())
            tr->complete("compresso_read", "mc", req.core,
                         ticksToNs(req.when),
                         ticksToNs(resp.complete - req.when));
        return resp;
    }

    // CTE miss.  Optionally check the LLC victim path first (§III):
    // the CTE comes back ~20ns later than a dedicated-cache hit, and a
    // victim *miss* delays even the DRAM fetch by the LLC latency.
    Tick cte_ready;
    if (cfg_.cteVictimInLlc) {
        if (llcVictim_.lookup(ppn)) {
            llcVictimHits_.inc();
            cte_ready = t0 + nsToTicks(cfg_.llcVictimLatNs);
        } else {
            llcVictimMisses_.inc();
            cteDramFetches_.inc();
            cte_ready = dram_.read(cteDramAddr(ppn),
                                   t0 + nsToTicks(cfg_.llcVictimLatNs));
        }
    } else {
        cteDramFetches_.inc();
        cte_ready = dram_.read(cteDramAddr(ppn), t0);
    }
    // Dedicated cache refill may evict a CTE into the LLC victim path.
    cteCache_.insert(ppn);
    if (cfg_.cteVictimInLlc)
        llcVictim_.insert(ppn);

    resp.serializedNoCte = true;
    resp.complete = dram_.read(blockDramAddr(ps, req.paddr), cte_ready) +
                    nsToTicks(cfg_.blockDecompressNs);
    if (Tracer *tr = Tracer::active())
        tr->complete("compresso_read", "mc", req.core,
                     ticksToNs(req.when),
                     ticksToNs(resp.complete - req.when));
    return resp;
}

void
CompressoMc::writeback(Addr paddr, Tick when, bool /*line_compressed*/)
{
    writebacks_.inc();
    const Ppn ppn = pageNumber(paddr);
    PageState &ps = pageState(ppn);
    const PageProfile &prof = info_.profile(ppn);

    dram_.write(blockDramAddr(ps, paddr), when);

    // Compression-ratio churn: occasionally the block no longer fits
    // its slot and the page must repack / grow (§II).
    if (rng_.chance(prof.overflowP)) {
        repacks_.inc();
        // Repacking moves blocks in the background (prior works repack
        // lazily); charge bytes, not demand-path DRAM time.
        repackBytes_ += static_cast<std::size_t>(
            blocksPerPage * cfg_.repackBlockFraction) * blockSize;
        // Grow or shrink by one chunk with equal probability, keeping
        // long-run usage near the profile's packed size.
        const std::uint64_t target_chunks = std::max<std::uint64_t>(
            1, (prof.blockBytes + cfg_.chunkBytes - 1) / cfg_.chunkBytes);
        if (ps.chunks.size() <= target_chunks && !freeChunks_.empty()) {
            ps.chunks.push_back(freeChunks_.pop());
            usedBytes_ += cfg_.chunkBytes;
        } else if (ps.chunks.size() > target_chunks) {
            freeChunks_.push(ps.chunks.back());
            ps.chunks.pop_back();
            usedBytes_ -= cfg_.chunkBytes;
        }
        // Metadata update goes to DRAM (posted) and invalidates stale
        // cached copies.
        cteWrites_.inc();
        dram_.write(cteDramAddr(ppn), when);
        cteCache_.insert(ppn);
    }
}

std::uint64_t
CompressoMc::dramUsedBytes() const
{
    return usedBytes_;
}

void
CompressoMc::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".reads", reads_.value());
    dump.set(prefix + ".writebacks", writebacks_.value());
    dump.set(prefix + ".repacks", repacks_.value());
    dump.set(prefix + ".cte_writes", cteWrites_.value());
    dump.set(prefix + ".cte_dram_fetches", cteDramFetches_.value());
    dump.set(prefix + ".llc_victim_hits", llcVictimHits_.value());
    dump.set(prefix + ".llc_victim_misses", llcVictimMisses_.value());
    dump.set(prefix + ".dram_used_bytes", usedBytes_);
    dump.set(prefix + ".repack_bytes", repackBytes_);
    cteCache_.dumpStats(dump, prefix + ".cte_cache");
}

} // namespace tmcc
