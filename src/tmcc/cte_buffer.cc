#include "tmcc/cte_buffer.hh"

namespace tmcc
{

CteBuffer::CteBuffer(unsigned entries) : entries_(entries) {}

CteBuffer::Entry *
CteBuffer::find(Ppn ppn)
{
    for (auto &e : entries_)
        if (e.valid && e.ppn == ppn)
            return &e;
    return nullptr;
}

void
CteBuffer::insert(Ppn ppn, bool has_cte, std::uint64_t cte, Addr ptb_addr)
{
    inserts_.inc();
    Entry *slot = find(ppn);
    if (slot == nullptr) {
        slot = &entries_[0];
        for (auto &e : entries_) {
            if (!e.valid) {
                slot = &e;
                break;
            }
            if (e.lru < slot->lru)
                slot = &e;
        }
    }
    slot->ppn = ppn;
    slot->hasCte = has_cte;
    slot->cte = cte;
    slot->ptbAddr = ptb_addr;
    slot->valid = true;
    slot->lru = ++lruClock_;
}

const CteBuffer::Entry *
CteBuffer::lookup(Ppn ppn)
{
    Entry *e = find(ppn);
    if (e == nullptr) {
        misses_.inc();
        return nullptr;
    }
    hits_.inc();
    e->lru = ++lruClock_;
    return e;
}

Addr
CteBuffer::updateOnResponse(Ppn ppn, std::uint64_t correct_cte)
{
    Entry *e = find(ppn);
    if (e == nullptr)
        return invalidAddr;
    const bool stale = !e->hasCte || e->cte != correct_cte;
    e->hasCte = true;
    e->cte = correct_cte;
    if (stale) {
        staleUpdates_.inc();
        return e->ptbAddr;
    }
    return invalidAddr;
}

void
CteBuffer::flush()
{
    for (auto &e : entries_)
        e.valid = false;
}

void
CteBuffer::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".inserts", inserts_.value());
    dump.set(prefix + ".hits", hits_.value());
    dump.set(prefix + ".misses", misses_.value());
    dump.set(prefix + ".stale_updates", staleUpdates_.value());
}

} // namespace tmcc
