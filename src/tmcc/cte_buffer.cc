#include "tmcc/cte_buffer.hh"

namespace tmcc
{

CteBuffer::CteBuffer(unsigned entries)
    : ppns_(entries, invalidPpn),
      hasCte_(entries, 0),
      cte_(entries, 0),
      ptbAddr_(entries, invalidAddr),
      lru_(entries, 0)
{}

void
CteBuffer::flush()
{
    for (auto &p : ppns_)
        p = invalidPpn;
}

void
CteBuffer::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".inserts", inserts_.value());
    dump.set(prefix + ".hits", hits_.value());
    dump.set(prefix + ".misses", misses_.value());
    dump.set(prefix + ".stale_updates", staleUpdates_.value());
}

} // namespace tmcc
