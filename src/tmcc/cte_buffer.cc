#include "tmcc/cte_buffer.hh"

namespace tmcc
{

CteBuffer::CteBuffer(unsigned entries)
    : stride_(simd::padWays(entries)),
      ppns_(stride_, padPpn),
      hasCte_(stride_, 0),
      cte_(stride_, 0),
      ptbAddr_(stride_, invalidAddr),
      lru_(stride_, ~std::uint64_t{0}),
      entries_(entries)
{
    for (unsigned i = 0; i < entries; ++i) {
        ppns_[i] = invalidPpn;
        lru_[i] = 0;
    }
}

void
CteBuffer::flush()
{
    // Real slots only: padding slots must keep the pad sentinel.
    for (unsigned i = 0; i < entries_; ++i)
        ppns_[i] = invalidPpn;
}

void
CteBuffer::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".inserts", inserts_.value());
    dump.set(prefix + ".hits", hits_.value());
    dump.set(prefix + ".misses", misses_.value());
    dump.set(prefix + ".stale_updates", staleUpdates_.value());
}

} // namespace tmcc
