/**
 * @file
 * Hardware PTB compression (Fig. 7, §V-A2/5).
 *
 * A 64B page table block holds eight 8B PTEs.  TMCC compresses a PTB
 * only when the 24 status bits are identical across all eight PTEs
 * (Fig. 6 shows this holds for ~99.9% of L1 PTBs): the status bits are
 * stored once and the leading identical PPN bits are truncated according
 * to installed physical memory.  The freed bits hold truncated CTEs —
 * log2(managedDram/4KB) bits each (§V-A5) — for the pages the PTEs
 * point at.
 *
 * With 1TB managed DRAM and 4x OS physical memory this yields exactly
 * 8 embeddable CTEs; 4TB -> 7; 16TB -> 6, reproducing §V-A5.
 */

#ifndef TMCC_TMCC_PTB_CODEC_HH
#define TMCC_TMCC_PTB_CODEC_HH

#include <array>
#include <cstdint>

#include "common/status.hh"
#include "common/types.hh"
#include "vm/pte.hh"

namespace tmcc
{

/** Geometry inputs for the PTB compression math. */
struct PtbCodecConfig
{
    /** DRAM managed by one MC (determines truncated-CTE width). */
    std::uint64_t managedDramBytes = 1ULL << 40; // 1TB

    /** OS physical pages (determines PPN width after truncation). */
    std::uint64_t physPages = 4 * ((1ULL << 40) / pageSize); // 4x DRAM
};

/** Result of analyzing one PTB for compression. */
struct PtbAnalysis
{
    bool compressible = false;
    unsigned cteSlots = 0;     //!< embeddable CTEs (up to 8)
    unsigned freedBits = 0;    //!< space freed by compression
    std::uint32_t statusBits = 0;
};

/** Contents recovered from a serialized compressed-PTB image. */
struct DecodedPtb
{
    std::uint32_t statusBits = 0;
    std::array<Ppn, ptesPerPtb> ppns{};
    std::array<bool, ptesPerPtb> hasCte{};
    std::array<std::uint64_t, ptesPerPtb> cte{};
};

/** The PTB compression rules. */
class PtbCodec
{
  public:
    explicit PtbCodec(const PtbCodecConfig &cfg = PtbCodecConfig{});

    /** Bits of one truncated CTE: log2(managedDram / 4KB). */
    unsigned truncatedCteBits() const { return cteBits_; }

    /** Bits a PPN needs given installed physical memory. */
    unsigned ppnBits() const { return ppnBits_; }

    /** CTE slots a compressible PTB can hold (§V-A5 formula). */
    unsigned maxSlots() const { return maxSlots_; }

    /**
     * Analyze the eight PTEs of a PTB.  Compressible iff the status
     * bits are identical across all eight entries (present or not).
     */
    PtbAnalysis analyze(const std::uint64_t *ptes) const;

    /**
     * Serialize a compressible PTB (Fig. 7c layout: shared status once,
     * eight truncated PPNs, then the freed bits holding embedded CTE
     * slots) into a 64B image.  The last byte is an 8-bit CRC over the
     * rest — the integrity budget a real PTB format could afford, so a
     * corrupt image is *usually* rejected at decode and occasionally
     * slips through to exercise the §V-A verify-then-reaccess path.
     * The PTB must have analyzed compressible.
     */
    std::array<std::uint8_t, ptbBytes>
    encode(const std::uint64_t *ptes,
           const std::array<bool, ptesPerPtb> &has_cte,
           const std::array<std::uint64_t, ptesPerPtb> &cte) const;

    /**
     * Recover PTB contents from a 64B image, rejecting bad CRCs and
     * out-of-range PPN/CTE fields.  On error the caller falls back to
     * uncompressed PTB semantics.
     */
    StatusOr<DecodedPtb>
    decode(const std::array<std::uint8_t, ptbBytes> &image) const;

    const PtbCodecConfig &config() const { return cfg_; }

  private:
    PtbCodecConfig cfg_;
    unsigned cteBits_;
    unsigned ppnBits_;
    unsigned maxSlots_;
};

} // namespace tmcc

#endif // TMCC_TMCC_PTB_CODEC_HH
