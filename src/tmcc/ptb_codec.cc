#include "tmcc/ptb_codec.hh"

#include <algorithm>
#include <cstring>

#include "common/bitops.hh"
#include "common/crc32.hh"
#include "common/log.hh"

namespace tmcc
{

PtbCodec::PtbCodec(const PtbCodecConfig &cfg) : cfg_(cfg)
{
    cteBits_ = bitsFor(cfg.managedDramBytes / pageSize);
    ppnBits_ = bitsFor(cfg.physPages);

    // Freed space when a PTB compresses (Fig. 7c): seven copies of the
    // 24 status bits plus eight truncated PPN prefixes.
    const unsigned status_saved = 24 * (ptesPerPtb - 1);
    const unsigned ppn_saved =
        (40 - std::min(40u, ppnBits_)) * ptesPerPtb;
    maxSlots_ = std::min<unsigned>(
        ptesPerPtb, (status_saved + ppn_saved) / cteBits_);

    // The serialized image spends 1 marker + 24 status + 8 x ppnBits +
    // an 8-bit CTE mask before any CTE, and reserves one byte for the
    // CRC.  Clamp the slot count so every encodable PTB fits.
    const unsigned fixed = 1 + 24 + ptesPerPtb * ppnBits_ + 8;
    const unsigned payload = (ptbBytes - 1) * 8;
    fatalIf(fixed > payload, "PPNs too wide for a 64B compressed PTB");
    maxSlots_ = std::min(maxSlots_, (payload - fixed) / cteBits_);
}

PtbAnalysis
PtbCodec::analyze(const std::uint64_t *ptes) const
{
    PtbAnalysis a;
    a.statusBits = pteStatusBits(ptes[0]);
    for (unsigned i = 1; i < ptesPerPtb; ++i) {
        if (pteStatusBits(ptes[i]) != a.statusBits)
            return a; // not compressible
    }
    a.compressible = true;
    const unsigned status_saved = 24 * (ptesPerPtb - 1);
    const unsigned ppn_saved =
        (40 - std::min(40u, ppnBits_)) * ptesPerPtb;
    a.freedBits = status_saved + ppn_saved;
    a.cteSlots = maxSlots_;
    return a;
}

/*
 * Wire format of a compressed-PTB image (little-endian bit stream over
 * bytes [0, 62], 8-bit CRC in byte 63):
 *
 *   1 bit              compressible marker (always 1)
 *   24 bits            shared status bits
 *   8 x ppnBits        truncated PPNs
 *   8 bits             CTE presence mask, one bit per PTE
 *   popcount x cteBits embedded truncated CTEs, in PTE order
 *
 * Worst case across the paper's configs (§V-A5) is 499 bits, inside the
 * 504-bit payload budget.
 */

std::array<std::uint8_t, ptbBytes>
PtbCodec::encode(const std::uint64_t *ptes,
                 const std::array<bool, ptesPerPtb> &has_cte,
                 const std::array<std::uint64_t, ptesPerPtb> &cte) const
{
    const PtbAnalysis a = analyze(ptes);
    panicIf(!a.compressible, "encode() on an incompressible PTB");

    BitWriter bw;
    bw.put(1, 1);
    bw.put(a.statusBits, 24);
    for (unsigned i = 0; i < ptesPerPtb; ++i)
        bw.put(ptePpn(ptes[i]), ppnBits_);

    unsigned mask = 0, slots = 0;
    for (unsigned i = 0; i < ptesPerPtb; ++i)
        if (has_cte[i] && slots < maxSlots_) {
            mask |= 1u << i;
            ++slots;
        }
    bw.put(mask, 8);
    for (unsigned i = 0; i < ptesPerPtb; ++i)
        if (mask & (1u << i))
            bw.put(cte[i], cteBits_);
    panicIf(bw.sizeBits() > (ptbBytes - 1) * 8,
            "compressed PTB overflows its 63-byte payload");

    std::array<std::uint8_t, ptbBytes> image{};
    const auto payload = bw.finish();
    std::memcpy(image.data(), payload.data(), payload.size());
    image[ptbBytes - 1] =
        static_cast<std::uint8_t>(crc32(image.data(), ptbBytes - 1));
    return image;
}

StatusOr<DecodedPtb>
PtbCodec::decode(const std::array<std::uint8_t, ptbBytes> &image) const
{
    const auto crc =
        static_cast<std::uint8_t>(crc32(image.data(), ptbBytes - 1));
    if (image[ptbBytes - 1] != crc)
        return Status::checksumMismatch("compressed PTB CRC mismatch");

    BitReader br(image.data(), ptbBytes - 1);
    if (br.get(1) != 1)
        return Status::corruption("image lacks the compressed-PTB marker");

    DecodedPtb d;
    d.statusBits = static_cast<std::uint32_t>(br.get(24));
    for (unsigned i = 0; i < ptesPerPtb; ++i) {
        d.ppns[i] = br.get(ppnBits_);
        if (d.ppns[i] >= cfg_.physPages)
            return Status::corruption("embedded PPN out of range");
    }

    const unsigned mask = static_cast<unsigned>(br.get(8));
    if (popCount(mask) > maxSlots_)
        return Status::corruption("CTE presence mask exceeds slot budget");
    const std::uint64_t cte_limit = cfg_.managedDramBytes / pageSize;
    for (unsigned i = 0; i < ptesPerPtb; ++i) {
        if (!(mask & (1u << i)))
            continue;
        d.hasCte[i] = true;
        d.cte[i] = br.get(cteBits_);
        if (d.cte[i] >= cte_limit)
            return Status::corruption("embedded CTE out of range");
    }
    if (br.overrun())
        return Status::truncated("compressed PTB payload too short");
    return d;
}

} // namespace tmcc
