#include "tmcc/ptb_codec.hh"

#include <algorithm>

#include "common/bitops.hh"

namespace tmcc
{

PtbCodec::PtbCodec(const PtbCodecConfig &cfg) : cfg_(cfg)
{
    cteBits_ = bitsFor(cfg.managedDramBytes / pageSize);
    ppnBits_ = bitsFor(cfg.physPages);

    // Freed space when a PTB compresses (Fig. 7c): seven copies of the
    // 24 status bits plus eight truncated PPN prefixes.
    const unsigned status_saved = 24 * (ptesPerPtb - 1);
    const unsigned ppn_saved =
        (40 - std::min(40u, ppnBits_)) * ptesPerPtb;
    maxSlots_ = std::min<unsigned>(
        ptesPerPtb, (status_saved + ppn_saved) / cteBits_);
}

PtbAnalysis
PtbCodec::analyze(const std::uint64_t *ptes) const
{
    PtbAnalysis a;
    a.statusBits = pteStatusBits(ptes[0]);
    for (unsigned i = 1; i < ptesPerPtb; ++i) {
        if (pteStatusBits(ptes[i]) != a.statusBits)
            return a; // not compressible
    }
    a.compressible = true;
    const unsigned status_saved = 24 * (ptesPerPtb - 1);
    const unsigned ppn_saved =
        (40 - std::min(40u, ppnBits_)) * ptesPerPtb;
    a.freedBits = status_saved + ppn_saved;
    a.cteSlots = maxSlots_;
    return a;
}

} // namespace tmcc
