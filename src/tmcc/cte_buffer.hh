/**
 * @file
 * The per-core CTE Buffer of §V-A3 / Fig. 10: a 64-entry table in L2,
 * keyed by PPN, filled with the CTEs embedded in every compressed PTB
 * the page walker fetches.  When L2 later sees an access whose PPN hits
 * the buffer, the embedded CTE is piggybacked toward the MC so the MC
 * can fetch data and the real CTE from DRAM in parallel.  Responses
 * carry the correct CTE back; a mismatch triggers the lazy PTB update
 * at the recorded PTB physical address.
 */

#ifndef TMCC_TMCC_CTE_BUFFER_HH
#define TMCC_TMCC_CTE_BUFFER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace tmcc
{

/** One CTE Buffer (64 entries, ~1KB total; §V-A6). */
class CteBuffer : public Stated
{
  public:
    explicit CteBuffer(unsigned entries = 64);

    struct Entry
    {
        Ppn ppn = 0;
        bool hasCte = false;        //!< some PTB slots carry no CTE
        std::uint64_t cte = 0;      //!< truncated embedded CTE
        Addr ptbAddr = invalidAddr; //!< PTB holding the (stale?) CTE
        bool valid = false;
        std::uint64_t lru = 0;
    };

    /** Insert one key-value pair from a fetched compressed PTB. */
    void insert(Ppn ppn, bool has_cte, std::uint64_t cte, Addr ptb_addr);

    /** Look up by PPN; nullptr on miss. */
    const Entry *lookup(Ppn ppn);

    /**
     * Response handling (§V-A3): store the correct CTE into the entry;
     * returns the PTB address to lazily update if the entry existed and
     * its CTE was missing or mismatched, else invalidAddr.
     */
    Addr updateOnResponse(Ppn ppn, std::uint64_t correct_cte);

    void flush();

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

  private:
    Entry *find(Ppn ppn);

    std::vector<Entry> entries_;
    std::uint64_t lruClock_ = 0;
    Counter inserts_, hits_, misses_, staleUpdates_;
};

} // namespace tmcc

#endif // TMCC_TMCC_CTE_BUFFER_HH
