/**
 * @file
 * The per-core CTE Buffer of §V-A3 / Fig. 10: a 64-entry table in L2,
 * keyed by PPN, filled with the CTEs embedded in every compressed PTB
 * the page walker fetches.  When L2 later sees an access whose PPN hits
 * the buffer, the embedded CTE is piggybacked toward the MC so the MC
 * can fetch data and the real CTE from DRAM in parallel.  Responses
 * carry the correct CTE back; a mismatch triggers the lazy PTB update
 * at the recorded PTB physical address.
 *
 * The table is fully associative and searched on every LLC-bound
 * access, so the key scan is the measured loop's hottest loop: keys
 * live in one contiguous PPN array (invalid entries hold a sentinel no
 * real PPN can take) with payload arrays alongside, and the hot
 * methods are defined inline here.  The scan itself runs through the
 * common/simd.hh probe primitives in chunks of up to simd::maxWays
 * entries (one chunk for the default 64-entry buffer), so a full-table
 * search is a handful of whole-vector compares; the primitives'
 * scalar fallback is the oracle, keeping SIMD builds bit-identical.
 */

#ifndef TMCC_TMCC_CTE_BUFFER_HH
#define TMCC_TMCC_CTE_BUFFER_HH

#include <cstdint>
#include <vector>

#include "common/simd.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace tmcc
{

/** One CTE Buffer (64 entries, ~1KB total; §V-A6). */
class CteBuffer : public Stated
{
  public:
    explicit CteBuffer(unsigned entries = 64);

    struct Entry
    {
        Ppn ppn = 0;
        bool hasCte = false;        //!< some PTB slots carry no CTE
        std::uint64_t cte = 0;      //!< truncated embedded CTE
        Addr ptbAddr = invalidAddr; //!< PTB holding the (stale?) CTE
        bool valid = false;
        std::uint64_t lru = 0;
    };

    /** Insert one key-value pair from a fetched compressed PTB. */
    void
    insert(Ppn ppn, bool has_cte, std::uint64_t cte, Addr ptb_addr)
    {
        inserts_.inc();
        // One fused pass per chunk: resident match (refresh in place)
        // and first free slot.  A match anywhere supersedes free
        // slots, so recording the first free slot while scanning for
        // the match preserves the split-scan order exactly.
        std::size_t slot = npos, free_slot = npos;
        for (std::size_t c = 0; c < stride_; c += chunk) {
            std::uint64_t ma, mb;
            Probe::eqMask2(&ppns_[c], chunkLen(c), ppn, invalidPpn,
                           ma, mb);
            if (ma) {
                slot = c + simd::firstWay(ma);
                break;
            }
            if (mb && free_slot == npos)
                free_slot = c + simd::firstWay(mb);
        }
        if (slot == npos)
            slot = free_slot;
        if (slot == npos) {
            // No free slot: evict the LRU entry (stamps unique, so the
            // argmin is unique); chunk minima keep the earliest index
            // on ties, matching the historical strict-< running min.
            std::size_t best = 0;
            std::uint64_t best_val = ~std::uint64_t{0};
            for (std::size_t c = 0; c < stride_; c += chunk) {
                const unsigned n = chunkLen(c);
                const std::size_t i = c + Probe::minIndex(&lru_[c], n);
                if (lru_[i] < best_val) {
                    best_val = lru_[i];
                    best = i;
                }
            }
            slot = best;
        }
        ppns_[slot] = ppn;
        hasCte_[slot] = has_cte;
        cte_[slot] = cte;
        ptbAddr_[slot] = ptb_addr;
        lru_[slot] = ++lruClock_;
    }

    /**
     * Look up by PPN; nullptr on miss.  The returned pointer aliases a
     * scratch entry refreshed by the next lookup — read it immediately
     * (exactly how the pipeline and tests use it).
     */
    const Entry *
    lookup(Ppn ppn)
    {
        const std::size_t e = find(ppn);
        if (e == npos) {
            misses_.inc();
            return nullptr;
        }
        hits_.inc();
        lru_[e] = ++lruClock_;
        scratch_.ppn = ppns_[e];
        scratch_.hasCte = hasCte_[e] != 0;
        scratch_.cte = cte_[e];
        scratch_.ptbAddr = ptbAddr_[e];
        scratch_.valid = true;
        scratch_.lru = lru_[e];
        return &scratch_;
    }

    /**
     * Response handling (§V-A3): store the correct CTE into the entry;
     * returns the PTB address to lazily update if the entry existed and
     * its CTE was missing or mismatched, else invalidAddr.
     */
    Addr
    updateOnResponse(Ppn ppn, std::uint64_t correct_cte)
    {
        const std::size_t e = find(ppn);
        if (e == npos)
            return invalidAddr;
        const bool stale = !hasCte_[e] || cte_[e] != correct_cte;
        hasCte_[e] = 1;
        cte_[e] = correct_cte;
        if (stale) {
            staleUpdates_.inc();
            return ptbAddr_[e];
        }
        return invalidAddr;
    }

    void flush();

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

  private:
    static constexpr std::size_t npos = ~static_cast<std::size_t>(0);

    /** No real PPN is all-ones; marks an invalid slot in ppns_. */
    static constexpr Ppn invalidPpn = ~static_cast<Ppn>(0);

    /** Padding-slot key: matches neither a real PPN nor invalidPpn. */
    static constexpr Ppn padPpn = invalidPpn ^ 1;

    using Probe = simd::Active;

    /** Probe chunk: one way mask's worth of entries per vector scan. */
    static constexpr std::size_t chunk = simd::maxWays;

    unsigned
    chunkLen(std::size_t base) const
    {
        return static_cast<unsigned>(
            stride_ - base < chunk ? stride_ - base : chunk);
    }

    /** First slot whose key equals `key`, or npos (vector scan). */
    std::size_t
    findSlot(Ppn key) const
    {
        for (std::size_t c = 0; c < stride_; c += chunk)
            if (const std::uint64_t m =
                    Probe::eqMask(&ppns_[c], chunkLen(c), key))
                return c + simd::firstWay(m);
        return npos;
    }

    /**
     * Index of the valid entry keyed by `ppn`, or npos.  Keys are
     * unique (insert refreshes in place), so "first match" is "the
     * match" — this scan runs on every LLC-bound access and eight
     * times per page walk.
     */
    std::size_t find(Ppn ppn) const { return findSlot(ppn); }

    // Structure-of-arrays entries, padded to the vector width (padding
    // slots hold padPpn / all-ones LRU and are never chosen): the key
    // scan touches only ppns_.
    std::size_t stride_; //!< entry count padded to the vector width
    std::vector<Ppn> ppns_;
    std::vector<std::uint8_t> hasCte_;
    std::vector<std::uint64_t> cte_;
    std::vector<Addr> ptbAddr_;
    std::vector<std::uint64_t> lru_;
    unsigned entries_; //!< real (unpadded) capacity
    Entry scratch_; //!< backing storage for lookup()'s return

    std::uint64_t lruClock_ = 0;
    Counter inserts_, hits_, misses_, staleUpdates_;
};

} // namespace tmcc

#endif // TMCC_TMCC_CTE_BUFFER_HH
