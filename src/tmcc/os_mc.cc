#include "tmcc/os_mc.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/trace.hh"

namespace tmcc
{

namespace
{

/** The linear page-level CTE table sits above the data region. */
constexpr Addr cteTableBase = 1ULL << 46;

} // namespace

OsInspiredMc::OsInspiredMc(DramSystem &dram, const PageInfoProvider &info,
                           const PhysMem &phys_mem, const OsMcConfig &cfg)
    : MemController(dram), info_(info), physMem_(phys_mem), cfg_(cfg),
      codec_(cfg.ptb), injector_(cfg.faults),
      cteCache_(cfg.cteCacheBytes,
                /*pages_per_block=*/blockSize / pageCteBytes),
      ml2Free_(ml1Free_), recency_(cfg.recencySampleP),
      migrationSlots_(cfg.migrationBufferEntries, 0)
{
    // Seed ML1 with the DRAM budget worth of 4KB frames.
    ml1Free_.seed(0, cfg.dramBudgetBytes / pageSize);
    nextExtraFrame_ = cfg.dramBudgetBytes / pageSize;

    // Size the dense per-page tables for the whole physical pool up
    // front so the hot path never resizes.
    cteTable_.resize(phys_mem.totalPages());
    ml2Location_.resize(phys_mem.totalPages());
}

PageCte &
OsInspiredMc::cte(Ppn ppn)
{
    ensureTables(ppn);
    if (!cteTable_[ppn].valid)
        placePage(ppn);
    return cteTable_[ppn];
}

Addr
OsInspiredMc::cteDramAddr(Ppn ppn) const
{
    return cteTableBase + ppn * pageCteBytes;
}

Addr
OsInspiredMc::ml1BlockAddr(const PageCte &c, Addr paddr) const
{
    return (c.dramFrame << pageShift) + (paddr & (pageSize - 1));
}

void
OsInspiredMc::placePage(Ppn ppn)
{
    ensureTables(ppn);
    if (cteTable_[ppn].valid)
        return;

    PageCte c;
    c.valid = true;
    const PageProfile &prof = info_.profile(ppn);

    // Hottest-first placement: go to ML1 while under the placement
    // target and frames remain above the low watermark; afterwards
    // compress straight into ML2.
    const bool ml1_has_room = ml1Pages_ < cfg_.ml1TargetPages &&
                              ml1Free_.size() > cfg_.freeListLow;
    if (ml1_has_room || prof.deflateIncompressible()) {
        c.level = PageLevel::ML1;
        c.dramFrame = popMl1Frame(0);
        c.isIncompressible = prof.deflateIncompressible();
        ++ml1Pages_;
        if (!c.isIncompressible)
            recency_.insertHot(ppn);
        else
            incompressibleRetained_.inc();
    } else {
        // Keep the free-list floor intact while ML2 carves chunks out
        // of it: evict ahead of demand (§VI watermarks).
        maintainFreeList(0);
        SubChunk sc;
        const unsigned cls = Ml2FreeLists::classFor(prof.deflateBytes);
        if (cls < subChunkClasses.size() && ml2Free_.alloc(cls, sc)) {
            c.level = PageLevel::ML2;
            c.ml2Addr = sc.dramAddr;
            c.dramFrame = sc.dramAddr >> pageShift;
            ml2Location_[ppn] = {sc, true};
        } else {
            // No class fits (or DRAM exhausted): keep uncompressed,
            // evicting already-placed cold pages if ML1 ran dry.
            c.level = PageLevel::ML1;
            c.dramFrame = popMl1Frame(0);
            c.isIncompressible = true;
            ++ml1Pages_;
            incompressibleRetained_.inc();
        }
    }
    cteTable_[ppn] = c;
}

McReadResponse
OsInspiredMc::read(const McReadRequest &req)
{
    reads_.inc();
    const Ppn ppn = pageNumber(req.paddr);
    PageCte &c = cte(ppn);

    if (req.background) {
        // Prefetch fill: CTE-cache pressure without DRAM contention.
        McReadResponse resp;
        resp.cteCacheHit = cteCache_.lookup(ppn);
        if (!resp.cteCacheHit)
            cteCache_.insert(ppn);
        resp.hitMl2 = c.level == PageLevel::ML2;
        resp.complete = req.when;
        resp.hasCorrectCte = true;
        resp.correctCte = c.truncated(codec_.truncatedCteBits());
        return resp;
    }

    if (c.level == PageLevel::ML1) {
        ml1Reads_.inc();
        recency_.touch(ppn);
        return readMl1(req, c);
    }
    ml2Reads_.inc();
    return readMl2(req, ppn, c);
}

void
OsInspiredMc::functionalTouch(Ppn ppn, bool /*is_write*/, Tick now)
{
    // Fast-forward analogue of read(): keep the translation and
    // placement state hot -- CTE-cache residency, ML1 recency, and the
    // demand-triggered ML2->ML1 migration -- without DRAM timing,
    // demand counters or migration-slot stall bookkeeping.
    PageCte &c = cte(ppn);
    if (!cteCache_.lookup(ppn))
        cteCache_.insert(ppn);
    if (c.level == PageLevel::ML1)
        recency_.touch(ppn);
    else
        migrateToMl1(ppn, c, std::max(now, migCursor_));
}

McReadResponse
OsInspiredMc::readMl1(const McReadRequest &req, PageCte &c)
{
    McReadResponse resp;
    const Ppn ppn = pageNumber(req.paddr);
    const Tick t0 = req.when + nsToTicks(cfg_.mcProcNs);
    const Addr data_addr = ml1BlockAddr(c, req.paddr);
    resp.hasCorrectCte = true;
    resp.correctCte = c.truncated(codec_.truncatedCteBits());

    if (cteCache_.lookup(ppn)) {
        resp.cteCacheHit = true;
        resp.complete = dram_.read(data_addr, t0);
        return resp;
    }

    // CTE cache miss.
    if (cfg_.embedCtes && req.hasEmbeddedCte) {
        // Speculative parallel access (Fig. 11): use the embedded CTE
        // to fetch data while the real CTE is verified from DRAM.  A
        // bit flip in the embedded field is indistinguishable from a
        // stale CTE: the verification fetch catches either and the
        // mismatch path re-accesses serially, so corruption here costs
        // latency, never correctness.
        const Addr spec_frame = injector_.corruptCte(
            req.embeddedCte, codec_.truncatedCteBits());
        const Addr spec_addr =
            (spec_frame << pageShift) + (req.paddr & (pageSize - 1));
        cteDramFetches_.inc();
        const Tick cte_ready = dram_.read(cteDramAddr(ppn), t0);
        const Tick spec_done = dram_.read(spec_addr, t0);
        cteCache_.insert(ppn);

        if (spec_frame == resp.correctCte) {
            parallelAccesses_.inc();
            resp.parallelAccess = true;
            resp.complete = std::max(cte_ready, spec_done);
        } else {
            // Fig. 8c: verification failed; re-access with the correct
            // CTE after both DRAM accesses complete.
            mismatches_.inc();
            resp.embeddedMismatch = true;
            resp.complete = dram_.read(
                data_addr, std::max(cte_ready, spec_done));
        }
        return resp;
    }

    // No embedded CTE: the baseline serial fetch (Fig. 8a).
    serialFetches_.inc();
    resp.serializedNoCte = true;
    cteDramFetches_.inc();
    const Tick cte_ready = dram_.read(cteDramAddr(ppn), t0);
    cteCache_.insert(ppn);
    resp.complete = dram_.read(data_addr, cte_ready);
    return resp;
}

Tick
OsInspiredMc::deflateDecompressToOffset(const PageProfile &prof,
                                        std::size_t offset) const
{
    if (cfg_.fastDeflate) {
        CompressedPage page;
        page.originalSize = pageSize;
        page.sizeBits = static_cast<std::size_t>(prof.deflateBytes) * 8;
        page.lzTokens = prof.lzTokens;
        page.huffmanUsed = prof.huffmanUsed;
        return fastTiming_.decompressLatencyToOffset(page, offset);
    }
    return ibmTiming_.decompressLatencyToOffset(pageSize, offset);
}

Tick
OsInspiredMc::deflateCompressLatency(const PageProfile &prof) const
{
    if (cfg_.fastDeflate) {
        CompressedPage page;
        page.originalSize = pageSize;
        page.sizeBits = static_cast<std::size_t>(prof.deflateBytes) * 8;
        page.lzTokens = prof.lzTokens;
        page.huffmanUsed = prof.huffmanUsed;
        return fastTiming_.timing(page).compressLatency;
    }
    return ibmTiming_.compressLatency(pageSize);
}

McReadResponse
OsInspiredMc::readMl2(const McReadRequest &req, Ppn ppn, PageCte &c)
{
    McReadResponse resp;
    resp.hitMl2 = true;
    Tick t = req.when + nsToTicks(cfg_.mcProcNs);

    // The sub-chunk address comes from the CTE; resolve it first.
    if (cteCache_.lookup(ppn)) {
        resp.cteCacheHit = true;
    } else {
        cteDramFetches_.inc();
        resp.serializedNoCte = true;
        t = dram_.read(cteDramAddr(ppn), t);
        cteCache_.insert(ppn);
    }

    // Migration buffer full => the ML2 access stalls (§VI).
    auto slot = std::min_element(migrationSlots_.begin(),
                                 migrationSlots_.end());
    if (*slot > t) {
        migrationStalls_.inc();
        t = *slot;
    }

    const PageProfile &prof = info_.profile(ppn);

    // Stream the compressed payload from DRAM; the first beat gates the
    // decompressor, the rest overlap with decompression (its pipeline
    // consumes faster than one DDR4 channel supplies) and ride the
    // background-bandwidth share.
    Tick first_beat = dram_.read(c.ml2Addr, t);
    backgroundBytes_ += prof.deflateBytes;

    const std::size_t offset = req.paddr & (pageSize - 1);
    bool zero_refault = false;
    if (injector_.enabled() &&
        injector_.ml2ImageCorrupted(
            static_cast<std::uint64_t>(prof.deflateBytes) * 8)) {
        // The page CRC flags the damage once the streamed decode
        // finishes.  Retry the image read once: transient upsets clear,
        // a damaged stored image does not.
        corruptionDetected_.inc();
        const Tick detected =
            first_beat +
            deflateDecompressToOffset(prof, pageSize - blockSize);
        first_beat = dram_.read(c.ml2Addr, detected);
        backgroundBytes_ += prof.deflateBytes;
        if (injector_.ml2CorruptionTransient()) {
            corruptionRecovered_.inc();
        } else {
            // No retry can help: degrade gracefully by re-faulting the
            // page as zero-filled.  The migration below re-homes it in
            // a fresh ML1 frame, so the corrupt ML2 image is discarded.
            corruptionUnrecoverable_.inc();
            zero_refault = true;
        }
    }

    resp.complete =
        first_beat + deflateDecompressToOffset(
                         prof, zero_refault ? pageSize - blockSize
                                            : offset);

    // Background migration to ML1 (§VI): occupy a buffer slot until the
    // full page has decompressed and written back to a fresh frame.
    const Tick full_page_done = std::max(
        first_beat +
            deflateDecompressToOffset(prof, pageSize - blockSize),
        migCursor_);
    migrateToMl1(ppn, c, full_page_done);
    *slot = std::max(full_page_done, migCursor_);

    if (Tracer *tr = Tracer::active()) {
        tr->complete("ml2_fault", "mc", req.core, ticksToNs(req.when),
                     ticksToNs(resp.complete - req.when));
        tr->complete("deflate_decompress", "compress", req.core,
                     ticksToNs(first_beat),
                     ticksToNs(resp.complete - first_beat));
    }

    resp.hasCorrectCte = true;
    resp.correctCte = c.truncated(codec_.truncatedCteBits());
    return resp;
}

void
OsInspiredMc::migrateToMl1(Ppn ppn, PageCte &c, Tick start)
{
    migrationsIn_.inc();

    // Free the ML2 sub-chunk and take a fresh ML1 frame.
    panicIf(ppn >= ml2Location_.size() || !ml2Location_[ppn].valid,
            "ML2 page without a sub-chunk");
    ml2Free_.free(ml2Location_[ppn].sc);
    ml2Location_[ppn].valid = false;

    const DramFrame frame = popMl1Frame(start);
    c.level = PageLevel::ML1;
    c.dramFrame = frame;
    ++ml1Pages_;

    // The 4KB of block writes go out at background priority through
    // the migration bandwidth share (§VI: capped queue slots, rank-
    // targeted write mode), so they delay migrations, not demand.
    migCursor_ = std::max(migCursor_, start) +
                 nsToTicks(pageSize / cfg_.migrationGBs);
    backgroundBytes_ += pageSize;
    dram_.write(cteDramAddr(ppn), start); // CTE update (posted)
    cteCache_.insert(ppn);
    recency_.insertHot(ppn);
}

DramFrame
OsInspiredMc::popMl1Frame(Tick when)
{
    maintainFreeList(when);
    if (ml1Free_.empty()) {
        // The usage target cannot be met (e.g., incompressible data
        // exceeds it).  Physical DRAM still backs every page, so the
        // design simply saves less than targeted: extend the pool and
        // account the overrun (visible in dramUsedBytes()).
        budgetOverruns_.inc();
        ml1Free_.seed(nextExtraFrame_, 64);
        nextExtraFrame_ += 64;
    }
    return ml1Free_.pop();
}

void
OsInspiredMc::maintainFreeList(Tick when)
{
    if (ml1Free_.size() >= cfg_.freeListLow)
        return;
    std::size_t evicted = 0;
    while (ml1Free_.size() < cfg_.freeListLow &&
           evicted < cfg_.evictBatch && recency_.size() > 0) {
        const Ppn victim = recency_.popColdest();
        switch (evictToMl2(victim, when)) {
          case EvictOutcome::Evicted:
            ++evicted;
            break;
          case EvictOutcome::Incompressible:
            break; // retained in ML1, off the list; try the next page
          case EvictOutcome::NoSpace:
            // ML2 cannot grow right now; put the victim back and stop.
            recency_.insertCold(victim);
            return;
        }
    }
}

OsInspiredMc::EvictOutcome
OsInspiredMc::evictToMl2(Ppn ppn, Tick when)
{
    panicIf(ppn >= cteTable_.size() || !cteTable_[ppn].valid,
            "evicting unplaced page");
    PageCte &c = cteTable_[ppn];
    panicIf(c.level != PageLevel::ML1, "evicting non-ML1 page");

    const PageProfile &prof = info_.profile(ppn);
    const unsigned cls = Ml2FreeLists::classFor(prof.deflateBytes);
    if (prof.deflateIncompressible() || cls >= subChunkClasses.size()) {
        // Retain in ML1, mark incompressible, drop from the Recency
        // List so it is not repeatedly retried (§IV-B).
        c.isIncompressible = true;
        incompressibleRetained_.inc();
        return EvictOutcome::Incompressible;
    }

    SubChunk sc;
    if (!ml2Free_.alloc(cls, sc))
        return EvictOutcome::NoSpace; // DRAM fully committed

    migrationsOut_.inc();

    // Page read + compressed write ride the background share; the
    // read of the victim overlaps the write of the compressed output
    // (different banks/ranks), so only the larger leg serializes.
    migCursor_ = std::max(migCursor_, when) +
                 nsToTicks(pageSize / cfg_.migrationGBs);
    backgroundBytes_ += pageSize + prof.deflateBytes;
    const Tick done = std::max(migCursor_,
                               when + deflateCompressLatency(prof));

    if (Tracer *tr = Tracer::active())
        tr->complete("deflate_compress", "compress",
                     backgroundTid, ticksToNs(when),
                     ticksToNs(done - when));

    ml1Free_.push(c.dramFrame);
    --ml1Pages_;
    c.level = PageLevel::ML2;
    c.ml2Addr = sc.dramAddr;
    c.dramFrame = sc.dramAddr >> pageShift;
    ml2Location_[ppn] = {sc, true};
    dram_.write(cteDramAddr(ppn), done);
    cteCache_.insert(ppn);
    return EvictOutcome::Evicted;
}

void
OsInspiredMc::writeback(Addr paddr, Tick when, bool line_compressed)
{
    writebacks_.inc();
    const Ppn ppn = pageNumber(paddr);
    PageCte &c = cte(ppn);

    // Maintain the compressed-PTB pair bit vector (§V-A4): bit i tracks
    // whether blocks 2i and 2i+1 both use the compressed PTB encoding.
    const unsigned pair = blockInPage(paddr) / 2;
    if (line_compressed)
        c.ptbPairVector |= 1u << pair;
    else
        c.ptbPairVector &= ~(1u << pair);

    if (c.level == PageLevel::ML1) {
        dram_.write(ml1BlockAddr(c, paddr), when);
        if (c.isIncompressible && recency_.maybeReadmit(ppn))
            c.isIncompressible = false;
        return;
    }

    // Rare race: the dirty line outlived its page's eviction to ML2.
    // Bring the page back to ML1 (a store to it is imminent anyway).
    const PageProfile &prof = info_.profile(ppn);
    const Tick back = when + deflateDecompressToOffset(prof, pageSize - 1);
    migrateToMl1(ppn, c, back);
    dram_.write(ml1BlockAddr(c, paddr), back);
}

OsInspiredMc::PtbView
OsInspiredMc::ptbView(Addr ptb_addr)
{
    PtbView view;
    const Ppn ptb_page = pageNumber(ptb_addr);
    if (!physMem_.isPageTablePage(ptb_page))
        return view; // data block fetched by the walker path; no PTEs

    const PtPage &page = physMem_.ptPage(ptb_page);
    const std::size_t first =
        (ptb_addr & (pageSize - 1)) / pteSize;
    const std::uint64_t *ptes = &page[first];

    const PtbAnalysis analysis = codec_.analyze(ptes);
    if (!analysis.compressible) {
        ptbIncompressibleFetches_.inc();
        return view;
    }
    ptbCompressedFetches_.inc();
    view.compressed = true;

    auto [it, fresh] = ptbShadow_.try_emplace(ptb_addr);
    PtbShadow &shadow = it->second;

    for (unsigned i = 0; i < ptesPerPtb; ++i) {
        view.present[i] = ptePresent(ptes[i]);
        view.ppns[i] = ptePpn(ptes[i]);
        if (!view.present[i] || i >= analysis.cteSlots)
            continue;
        if (fresh) {
            // First compression of this PTB: embed current CTEs.
            const Ppn data_ppn = view.ppns[i];
            if (data_ppn < cteTable_.size() &&
                cteTable_[data_ppn].valid) {
                shadow.hasCte[i] = true;
                shadow.cte[i] = cteTable_[data_ppn].truncated(
                    codec_.truncatedCteBits());
            }
        }
        view.hasCte[i] = shadow.hasCte[i];
        view.cte[i] = shadow.cte[i];
    }

    if (injector_.enabled() && injector_.config().ptbBitFlipRate > 0.0) {
        // Round-trip the PTB through its real 64B wire image with bit
        // flips injected.  A rejected decode falls back to uncompressed
        // PTB semantics (no embedded CTEs, a full serial walk); the
        // rare CRC escape serves possibly-wrong embedded CTEs, which
        // the §V-A verification fetch catches downstream.
        auto image = codec_.encode(ptes, shadow.hasCte, shadow.cte);
        injector_.corruptPtbImage(image.data(), image.size());
        const auto decoded = codec_.decode(image);
        if (!decoded.ok()) {
            ptbDecodeRejects_.inc();
            return PtbView{};
        }
        for (unsigned i = 0; i < ptesPerPtb; ++i) {
            if (!view.present[i])
                continue;
            view.hasCte[i] = decoded.value().hasCte[i];
            view.cte[i] = decoded.value().cte[i];
        }
    }
    return view;
}

void
OsInspiredMc::lazyUpdatePtb(Addr ptb_addr, Ppn ppn, std::uint64_t new_cte)
{
    auto it = ptbShadow_.find(ptb_addr);
    if (it == ptbShadow_.end())
        return;
    const Ppn ptb_page = pageNumber(ptb_addr);
    if (!physMem_.isPageTablePage(ptb_page))
        return;
    const PtPage &page = physMem_.ptPage(ptb_page);
    const std::size_t first = (ptb_addr & (pageSize - 1)) / pteSize;
    for (unsigned i = 0; i < ptesPerPtb; ++i) {
        if (ptePpn(page[first + i]) == ppn &&
            ptePresent(page[first + i])) {
            it->second.hasCte[i] = true;
            it->second.cte[i] = new_cte;
            lazyPtbUpdates_.inc();
        }
    }
}

std::uint64_t
OsInspiredMc::truncatedCte(Ppn ppn)
{
    return cte(ppn).truncated(codec_.truncatedCteBits());
}

bool
OsInspiredMc::inMl2(Ppn ppn)
{
    return cte(ppn).level == PageLevel::ML2;
}

std::uint64_t
OsInspiredMc::dramUsedBytes() const
{
    return ml1Pages_ * pageSize + ml2Free_.heldChunks() * pageSize +
           recency_.overheadBytes();
}

void
OsInspiredMc::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".reads", reads_.value());
    dump.set(prefix + ".writebacks", writebacks_.value());
    dump.set(prefix + ".ml1_reads", ml1Reads_.value());
    dump.set(prefix + ".ml2_reads", ml2Reads_.value());
    dump.set(prefix + ".parallel_accesses", parallelAccesses_.value());
    dump.set(prefix + ".mismatches", mismatches_.value());
    dump.set(prefix + ".serial_fetches", serialFetches_.value());
    dump.set(prefix + ".migrations_in", migrationsIn_.value());
    dump.set(prefix + ".migrations_out", migrationsOut_.value());
    dump.set(prefix + ".migration_stalls", migrationStalls_.value());
    dump.set(prefix + ".incompressible_retained",
             incompressibleRetained_.value());
    dump.set(prefix + ".cte_dram_fetches", cteDramFetches_.value());
    dump.set(prefix + ".ptb_compressed_fetches",
             ptbCompressedFetches_.value());
    dump.set(prefix + ".ptb_incompressible_fetches",
             ptbIncompressibleFetches_.value());
    dump.set(prefix + ".lazy_ptb_updates", lazyPtbUpdates_.value());
    dump.set(prefix + ".ml1_pages", ml1Pages_);
    dump.set(prefix + ".background_bytes", backgroundBytes_);
    dump.set(prefix + ".budget_overruns", budgetOverruns_.value());
    dump.set(prefix + ".dram_used_bytes", dramUsedBytes());
    dump.set(prefix + ".ml2.corruption_detected",
             corruptionDetected_.value());
    dump.set(prefix + ".ml2.corruption_recovered",
             corruptionRecovered_.value());
    dump.set(prefix + ".ml2.corruption_unrecoverable",
             corruptionUnrecoverable_.value());
    dump.set(prefix + ".cte_mismatch", mismatches_.value());
    dump.set(prefix + ".ptb_decode_rejects", ptbDecodeRejects_.value());
    injector_.dumpStats(dump, prefix + ".faults");
    cteCache_.dumpStats(dump, prefix + ".cte_cache");
    recency_.dumpStats(dump, prefix + ".recency");
    ml1Free_.dumpStats(dump, prefix + ".ml1_free");
    ml2Free_.dumpStats(dump, prefix + ".ml2_free");
}

} // namespace tmcc
