/**
 * @file
 * The OS-inspired hardware memory compression architecture of §IV, with
 * TMCC's two optimizations of §V layered on as configuration:
 *
 *   - ML1: hot pages in full 4KB DRAM frames, tracked by a sampled
 *     Recency List; page-level 8B CTEs; 64KB CTE cache (32KB reach per
 *     64B CTE block, Table III).
 *   - ML2: cold pages Deflate-compressed into best-fit sub-chunks
 *     carved from super-chunks (Fig. 3c); graceful grow/shrink against
 *     the ML1 free list; background ML2->ML1 migration through an
 *     8-entry 32KB buffer (§VI).
 *
 *   TMCC optimization A (embedCtes): compressed PTBs carry truncated
 *   CTEs; requests arriving with an embedded CTE trigger a speculative
 *   DRAM data access in parallel with the CTE verification fetch
 *   (Fig. 8/11); mismatches re-access serially and PTBs are lazily
 *   updated.
 *
 *   TMCC optimization B (fastDeflate): ML2 uses the memory-specialized
 *   ASIC Deflate timing; the barebone design pays IBM-class latency.
 */

#ifndef TMCC_TMCC_OS_MC_HH
#define TMCC_TMCC_OS_MC_HH

#include <array>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "compress/deflate_timing.hh"
#include "fault/fault_injector.hh"
#include "mc/cte.hh"
#include "mc/cte_cache.hh"
#include "mc/free_list.hh"
#include "mc/mem_controller.hh"
#include "mc/page_profile.hh"
#include "mc/recency_list.hh"
#include "tmcc/ptb_codec.hh"
#include "vm/phys_mem.hh"

namespace tmcc
{

/** Configuration of the OS-inspired MC (barebone or full TMCC). */
struct OsMcConfig
{
    std::size_t cteCacheBytes = 64 * 1024; //!< Table III
    double mcProcNs = 1.0;

    bool embedCtes = true;   //!< TMCC ML1 optimization (§V-A)
    bool fastDeflate = true; //!< TMCC ML2 optimization (§V-B)

    /** Target DRAM usage for data (Table IV columns B/C). */
    std::uint64_t dramBudgetBytes = 512ULL << 20;

    /** Initial-placement cap on ML1 pages (the iso-usage solve);
     * defaults to unbounded (fill until the free-list floor). */
    std::uint64_t ml1TargetPages = ~0ULL;

    /** ML1 free list watermarks (§VI). */
    std::size_t freeListLow = 4000;
    std::size_t freeListCritical = 3000;
    std::size_t evictBatch = 32; //!< max evictions per maintenance pass

    unsigned migrationBufferEntries = 8; //!< 32KB buffer (§VI)

    /**
     * Bandwidth share available to background page migrations (GB/s).
     * §VI: migrations are lower priority than demand, use at most 10
     * read/write queue slots, and put only the written rank into write
     * mode -- so they consume a bounded slice of channel bandwidth
     * without blocking demand reads.
     */
    double migrationGBs = 20.0;

    double recencySampleP = 0.01;

    PtbCodecConfig ptb; //!< truncation geometry (§V-A5)

    FaultConfig faults; //!< bit-flip injection (off by default)
};

/** The OS-inspired / TMCC memory controller. */
class OsInspiredMc : public MemController
{
  public:
    OsInspiredMc(DramSystem &dram, const PageInfoProvider &info,
                 const PhysMem &phys_mem, const OsMcConfig &cfg);

    /**
     * Initial placement (§VI warm-up): pages are presented hottest
     * first; ML1 fills until the free list would hit its low watermark,
     * the rest compress into ML2.
     */
    void placePage(Ppn ppn);

    McReadResponse read(const McReadRequest &req) override;
    void writeback(Addr paddr, Tick when, bool line_compressed) override;
    void functionalTouch(Ppn ppn, bool is_write, Tick now) override;

    std::uint64_t dramUsedBytes() const override;

    // --- PTB / embedded-CTE interface used by the pipeline ---

    /** Embedded-CTE view of one PTB fetched by the walker. */
    struct PtbView
    {
        bool compressed = false;
        std::array<Ppn, ptesPerPtb> ppns{};
        std::array<bool, ptesPerPtb> present{};
        std::array<bool, ptesPerPtb> hasCte{};
        std::array<std::uint64_t, ptesPerPtb> cte{};
    };

    /**
     * What the compressed PTB at `ptb_addr` currently carries.  The
     * first fetch compresses the PTB fresh (current CTEs); afterwards
     * the stored values only change via lazy updates, so they go stale
     * when pages migrate (§V-A3).
     */
    PtbView ptbView(Addr ptb_addr);

    /** Lazy PTB CTE update at response time (§V-A3). */
    void lazyUpdatePtb(Addr ptb_addr, Ppn ppn, std::uint64_t cte);

    /** Current truncated CTE of a page (for verification in tests). */
    std::uint64_t truncatedCte(Ppn ppn);

    /** Whether a page currently sits in ML2. */
    bool inMl2(Ppn ppn);

    CteCache &cteCache() { return cteCache_; }
    RecencyList &recency() { return recency_; }
    const Ml1FreeList &ml1FreeList() const { return ml1Free_; }
    const PtbCodec &ptbCodec() const { return codec_; }

    std::uint64_t ml2Accesses() const { return ml2Reads_.value(); }

    /** Bytes moved by background migrations/evictions. */
    std::uint64_t backgroundBytes() const { return backgroundBytes_; }

    /** Times the usage target had to be overrun (incompressible data
     * exceeding the budget; the design then simply saves less). */
    std::uint64_t budgetOverruns() const
    {
        return budgetOverruns_.value();
    }

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

  private:
    PageCte &cte(Ppn ppn);

    Addr cteDramAddr(Ppn ppn) const;
    Addr ml1BlockAddr(const PageCte &c, Addr paddr) const;

    /** Serve a read that hits ML1. */
    McReadResponse readMl1(const McReadRequest &req, PageCte &c);

    /** Serve a read that hits ML2: decompress + background migration. */
    McReadResponse readMl2(const McReadRequest &req, Ppn ppn, PageCte &c);

    /** Pop an ML1 frame, running eviction maintenance as needed. */
    DramFrame popMl1Frame(Tick when);

    /** Evict cold ML1 pages into ML2 until the list recovers. */
    void maintainFreeList(Tick when);

    /** Outcome of trying to push one page into ML2. */
    enum class EvictOutcome
    {
        Evicted,
        Incompressible,
        NoSpace,
    };

    /** Move one page to ML2. */
    EvictOutcome evictToMl2(Ppn ppn, Tick when);

    /** Migrate an ML2 page into ML1 (background). */
    void migrateToMl1(Ppn ppn, PageCte &c, Tick start);

    Tick deflateDecompressToOffset(const PageProfile &prof,
                                   std::size_t offset) const;
    Tick deflateCompressLatency(const PageProfile &prof) const;

    const PageInfoProvider &info_;
    const PhysMem &physMem_;
    OsMcConfig cfg_;
    PtbCodec codec_;
    FaultInjector injector_;
    CteCache cteCache_;
    Ml1FreeList ml1Free_;
    Ml2FreeLists ml2Free_;
    RecencyList recency_;

    /** Grow the Ppn-indexed tables to cover `ppn`. */
    void ensureTables(Ppn ppn)
    {
        if (ppn >= cteTable_.size()) {
            cteTable_.resize(ppn + 1);
            ml2Location_.resize(ppn + 1);
        }
    }

    // Dense Ppn-indexed page metadata.  Physical page numbers are
    // compact (PhysMem hands out frames from a bounded pool), so the
    // measured-loop lookups on every read/writeback are a direct index
    // instead of a hash probe.  Presence lives in PageCte::valid /
    // Ml2Slot::valid.
    std::vector<PageCte> cteTable_;
    struct Ml2Slot
    {
        SubChunk sc;
        bool valid = false;
    };
    std::vector<Ml2Slot> ml2Location_;

    /** Shadow of embedded CTE values stored in compressed PTBs. */
    struct PtbShadow
    {
        std::array<bool, ptesPerPtb> hasCte{};
        std::array<std::uint64_t, ptesPerPtb> cte{};
    };
    std::unordered_map<Addr, PtbShadow> ptbShadow_;

    /** Migration buffer: completion time of each in-flight transfer. */
    std::vector<Tick> migrationSlots_;

    MemDeflateTiming fastTiming_;
    IbmDeflateTiming ibmTiming_;

    std::uint64_t ml1Pages_ = 0;

    /** Background-migration bandwidth cursor (token bucket in time). */
    Tick migCursor_ = 0;
    std::uint64_t backgroundBytes_ = 0;

    /** Next frame id used when the budget must be overrun. */
    DramFrame nextExtraFrame_ = 0;

    Counter reads_, writebacks_, ml1Reads_, ml2Reads_;
    Counter parallelAccesses_, mismatches_, serialFetches_;
    Counter migrationsIn_, migrationsOut_, incompressibleRetained_;
    Counter migrationStalls_, cteDramFetches_;
    Counter ptbCompressedFetches_, ptbIncompressibleFetches_;
    Counter lazyPtbUpdates_, budgetOverruns_;
    Counter corruptionDetected_, corruptionRecovered_;
    Counter corruptionUnrecoverable_, ptbDecodeRejects_;
};

} // namespace tmcc

#endif // TMCC_TMCC_OS_MC_HH
