#include "workloads/trace.hh"

#include <cstdio>
#include <cstring>

#include "common/log.hh"

namespace tmcc
{

namespace
{

constexpr char traceMagic[8] = {'T', 'M', 'C', 'C',
                                'T', 'R', 'C', '1'};

void
putU16(std::FILE *f, std::uint16_t v)
{
    std::fwrite(&v, sizeof(v), 1, f);
}

void
putU32(std::FILE *f, std::uint32_t v)
{
    std::fwrite(&v, sizeof(v), 1, f);
}

void
putU64(std::FILE *f, std::uint64_t v)
{
    std::fwrite(&v, sizeof(v), 1, f);
}

void
putF64(std::FILE *f, double v)
{
    std::fwrite(&v, sizeof(v), 1, f);
}

template <typename T>
T
get(std::FILE *f)
{
    T v{};
    fatalIf(std::fread(&v, sizeof(v), 1, f) != 1,
            "trace file truncated");
    return v;
}

} // namespace

void
TraceRecorder::record(Workload &source, const std::string &path,
                      std::uint64_t count)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    fatalIf(f == nullptr, "cannot open trace file for writing: " + path);

    std::fwrite(traceMagic, sizeof(traceMagic), 1, f);
    const auto &regions = source.regions();
    putU32(f, static_cast<std::uint32_t>(regions.size()));
    for (const auto &r : regions) {
        putU64(f, r.base);
        putU64(f, r.bytes);
        putU32(f, static_cast<std::uint32_t>(r.content.family));
        putF64(f, r.content.structure);
        putF64(f, r.content.repetition);
        putU16(f, static_cast<std::uint16_t>(r.name.size()));
        std::fwrite(r.name.data(), 1, r.name.size(), f);
    }
    putU64(f, count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const MemAccess a = source.next();
        putU64(f, a.vaddr);
        const std::uint8_t w = a.isWrite ? 1 : 0;
        std::fwrite(&w, 1, 1, f);
        const std::uint8_t think = static_cast<std::uint8_t>(
            a.thinkCycles > 255 ? 255 : a.thinkCycles);
        std::fwrite(&think, 1, 1, f);
    }
    std::fclose(f);
}

TraceWorkload::TraceWorkload(const std::string &path)
    : name_("trace:" + path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    fatalIf(f == nullptr, "cannot open trace file: " + path);

    char magic[8];
    fatalIf(std::fread(magic, sizeof(magic), 1, f) != 1 ||
                std::memcmp(magic, traceMagic, sizeof(magic)) != 0,
            "not a TMCC trace file: " + path);

    const auto region_count = get<std::uint32_t>(f);
    fatalIf(region_count == 0 || region_count > 1024,
            "trace file has an implausible region count");
    for (std::uint32_t i = 0; i < region_count; ++i) {
        WlRegion r;
        r.base = get<std::uint64_t>(f);
        r.bytes = get<std::uint64_t>(f);
        r.content.family =
            static_cast<ContentFamily>(get<std::uint32_t>(f));
        r.content.structure = get<double>(f);
        r.content.repetition = get<double>(f);
        const auto name_len = get<std::uint16_t>(f);
        r.name.resize(name_len);
        fatalIf(name_len > 0 &&
                    std::fread(r.name.data(), 1, name_len, f) !=
                        name_len,
                "trace file truncated in region name");
        regions_.push_back(std::move(r));
    }

    const auto count = get<std::uint64_t>(f);
    fatalIf(count == 0, "trace file holds no accesses");
    accesses_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        MemAccess a;
        a.vaddr = get<std::uint64_t>(f);
        a.isWrite = get<std::uint8_t>(f) != 0;
        a.thinkCycles = get<std::uint8_t>(f);
        accesses_.push_back(a);
    }
    std::fclose(f);
}

MemAccess
TraceWorkload::next()
{
    const MemAccess a = accesses_[cursor_];
    cursor_ = (cursor_ + 1) % accesses_.size();
    return a;
}

} // namespace tmcc
