/**
 * @file
 * Workload engines: the interface between the benchmark analogues and
 * the simulation driver.
 *
 * An engine emits a stream of virtual-memory accesses with think times;
 * it also declares its virtual regions, each with a content family so
 * the driver can attach compressibility profiles to the pages (§VI's
 * "fetch all of the benchmark's memory values to place, compress, and
 * pack them").
 */

#ifndef TMCC_WORKLOADS_WORKLOAD_HH
#define TMCC_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "common/serial.hh"
#include "common/types.hh"
#include "workloads/content.hh"

namespace tmcc
{

/** One memory reference from a core. */
struct MemAccess
{
    Addr vaddr = 0;
    bool isWrite = false;
    /** Guest address space this access belongs to (multi-tenant
     * workloads; 0 for single-tenant engines).  Sits in the padding
     * after isWrite, so adding it does not grow the struct. */
    std::uint16_t tenant = 0;
    unsigned thinkCycles = 4; //!< CPU work before this access issues
};

/** A virtual region of a workload's address space. */
struct WlRegion
{
    std::string name;
    Addr base = 0;
    std::uint64_t bytes = 0;
    ContentSpec content;
};

/** Abstract workload engine (one per core). */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const std::string &name() const = 0;

    /** The regions this engine touches (shared engines report all). */
    virtual const std::vector<WlRegion> &regions() const = 0;

    /** Produce the next access. */
    virtual MemAccess next() = 0;

    /**
     * Produce the next `n` accesses into `out` (the batched kernel's
     * ring refill).  The default simply drains next(), so every engine
     * keeps one canonical stream; engines may override with a fused
     * generator as long as the stream stays identical.
     */
    virtual void
    nextBatch(MemAccess *out, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next();
    }

    /**
     * Serialize the engine's mutable position — RNG streams, cursors,
     * pending queues — for setup-phase checkpoints.  Region layout and
     * other constructor-derived state is not saved: loadState() must be
     * applied to an engine built with identical constructor arguments,
     * after which its access stream continues bit-identically.
     */
    virtual void saveState(ByteWriter &w) const = 0;

    /** Restore a saveState() snapshot; fails on malformed input. */
    virtual Status loadState(ByteReader &r) = 0;

    std::uint64_t
    footprintBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &r : regions())
            total += r.bytes;
        return total;
    }
};

/** Names of the paper's large/irregular workload set (Fig. 1/17). */
const std::vector<std::string> &largeWorkloadNames();

/** Names of the small/regular set (§VII sensitivity). */
const std::vector<std::string> &smallWorkloadNames();

/** Names of the bandwidth-intensive set (Fig. 22). */
const std::vector<std::string> &bandwidthWorkloadNames();

/**
 * Knobs of the multi-tenant "memcloud" workload; every other engine
 * ignores them.  Defaults match SimConfig's tenant knob defaults.
 */
struct TenantKnobs
{
    unsigned tenants = 6; //!< guest address spaces multiplexed
    double churn = 0.001; //!< per-burst guest respawn probability
    double zipf = 1.1;    //!< tenant popularity skew (Zipf alpha)
};

/**
 * Instantiate the engine for `name` on core `core` of `cores`.
 * `scale` scales the footprint (1.0 = this repo's default scaled-down
 * footprints; the paper's full footprints would be ~100-200x).
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       unsigned core, unsigned cores,
                                       double scale = 1.0,
                                       std::uint64_t seed = 1,
                                       const TenantKnobs &tenancy = {});

} // namespace tmcc

#endif // TMCC_WORKLOADS_WORKLOAD_HH
