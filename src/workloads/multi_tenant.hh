/**
 * @file
 * Multi-tenant "memcloud" workload: one host multiplexing N guest
 * address spaces, the deployment model §V-A3 motivates (memory-cloud
 * hosts oversubscribing DRAM with hardware compression).
 *
 * Each tenant owns one region at a gap-separated base (so a sequential
 * run that escaped its region would land in unmapped space — the bug
 * class the SyntheticWorkload wrap fix closed).  The engine schedules
 * tenants in bursts with Zipf-skewed popularity, models tenant churn
 * (a guest exits and a replacement spawns into the slot, rewriting part
 * of its image and moving the hot set, which fragments and recycles
 * ML1/ML2 free lists), and drives periodic global-pressure storms that
 * spray accesses across every tenant's cold pages to force ML2
 * demotion/promotion storms.
 *
 * All cores share the tenant address spaces (like host CPUs serving
 * the same guests); each core runs its own burst schedule from its own
 * RNG stream.  Region `t` of regions() is tenant `t`'s space, in
 * order — System relies on this to attribute per-tenant footprints.
 */

#ifndef TMCC_WORKLOADS_MULTI_TENANT_HH
#define TMCC_WORKLOADS_MULTI_TENANT_HH

#include "common/rng.hh"
#include "workloads/workload.hh"

namespace tmcc
{

/** Knobs of the memcloud engine. */
struct MultiTenantParams
{
    std::string name = "memcloud";

    unsigned tenants = 6;                    //!< guest count
    std::uint64_t tenantBytes = 32ULL << 20; //!< footprint per guest

    /** Tenant popularity skew: bursts pick tenant zipf(N, alpha). */
    double zipfAlpha = 1.1;

    /**
     * Per-burst probability that the scheduled slot's guest has been
     * replaced since its last burst: the generation bumps, the hot set
     * moves, and the new guest rewrites 1/16 of the slot sequentially
     * before serving traffic.
     */
    double churn = 0.001;

    /** Mean accesses per tenant burst (geometric). */
    double burstMean = 64.0;

    /** Probability an access starts a sequential run vs a jump. */
    double sequentialFraction = 0.25;

    /** Length of sequential runs in 64B blocks. */
    unsigned runBlocks = 16;

    /** Hot working-set fraction of each tenant's region. */
    double hotFraction = 0.12;

    /** Probability a jump leaves the hot window for the cold rest. */
    double coldP = 0.03;

    /** Fraction of accesses that are writes. */
    double writeFraction = 0.25;

    /** Mean think cycles between accesses. */
    double thinkMean = 4.0;

    /**
     * Global-pressure storms: the last `stormAccesses` of every
     * `stormPeriod` accesses spray uniformly across all tenants' full
     * regions (cold pages included).  Deterministic in the access
     * index, so the phase boundary checkpoints/restores exactly.
     * stormPeriod = 0 disables storms.
     */
    std::uint64_t stormPeriod = 250'000;
    std::uint64_t stormAccesses = 25'000;
};

/** The multi-tenant engine. */
class MultiTenantWorkload : public Workload
{
  public:
    MultiTenantWorkload(const MultiTenantParams &params, unsigned core,
                        unsigned cores, std::uint64_t seed);

    const std::string &name() const override { return p_.name; }
    const std::vector<WlRegion> &regions() const override
    {
        return regions_;
    }
    MemAccess next() override;

    void saveState(ByteWriter &w) const override;
    Status loadState(ByteReader &r) override;

    /** Guest generation of a slot (tests: observe churn). */
    std::uint32_t generation(unsigned tenant) const
    {
        return tenants_[tenant].generation;
    }

  private:
    /** Per-slot guest state. */
    struct TenantState
    {
        std::uint32_t generation = 0;
        /** Blocks the freshly spawned guest still has to rewrite. */
        std::uint64_t recolonizeLeft = 0;
        Addr recolonizeCursor = 0;
    };

    void respawn(unsigned tenant);
    Addr jumpTarget(unsigned tenant);

    MultiTenantParams p_;
    std::vector<WlRegion> regions_;
    Rng rng_;
    std::uint64_t blocksPerTenant_ = 0;

    std::uint64_t accessIndex_ = 0;
    std::uint16_t curTenant_ = 0;
    std::uint32_t burstLeft_ = 0;
    Addr seqCursor_ = 0;
    std::uint32_t seqLeft_ = 0;
    std::vector<TenantState> tenants_;
};

} // namespace tmcc

#endif // TMCC_WORKLOADS_MULTI_TENANT_HH
