#include "workloads/profile_library.hh"

#include "common/log.hh"
#include "compress/block_compressor.hh"
#include "compress/mem_deflate.hh"
#include "compress/rfc_deflate.hh"

namespace tmcc
{

ProfileLibrary::ProfileLibrary(unsigned samples_per_part,
                               std::uint64_t seed)
    : samplesPerPart_(samples_per_part), seed_(seed)
{
    // Reasonable default for pages never assigned (e.g., page-table
    // pages): moderately compressible pointer-like data.
    defaultProfile_.blockBytes = pageSize * 6 / 10;
    defaultProfile_.deflateBytes = pageSize * 3 / 10;
    defaultProfile_.rfcBytes = pageSize * 28 / 100;
    defaultProfile_.lzTokens = 2000;
    defaultProfile_.huffmanUsed = true;
}

unsigned
ProfileLibrary::registerMix(const ContentMix &mix)
{
    fatalIf(mix.parts.empty(), "content mix needs at least one part");

    BlockCompressor block;
    MemDeflate deflate;
    MemDeflateConfig no_skip_cfg;
    no_skip_cfg.dynamicHuffmanSkip = false;
    MemDeflate deflate_no_skip(no_skip_cfg);
    RfcDeflate rfc;

    MeasuredMix measured;
    Rng rng(seed_ + mixes_.size() * 7919);

    for (const auto &part : mix.parts) {
        std::uint64_t block_total = 0, deflate_total = 0;
        std::uint64_t no_skip_total = 0, rfc_total = 0;
        std::uint64_t tokens_total = 0;
        unsigned huff_used = 0;
        for (unsigned s = 0; s < samplesPerPart_; ++s) {
            const auto page = generateContent(part.spec, rng);
            block_total += block.compressPage(page.data());
            const CompressedPage dp =
                deflate.compress(page.data(), page.size());
            deflate_total += dp.sizeBytes();
            tokens_total += dp.lzTokens;
            huff_used += dp.huffmanUsed;
            no_skip_total +=
                deflate_no_skip.compress(page.data(), page.size())
                    .sizeBytes();
            rfc_total += rfc.compress(page.data(), page.size())
                             .sizeBytes();
        }
        PageProfile prof;
        prof.blockBytes = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(pageSize,
                                    block_total / samplesPerPart_));
        prof.deflateBytes = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(pageSize,
                                    deflate_total / samplesPerPart_));
        prof.rfcBytes = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(pageSize,
                                    rfc_total / samplesPerPart_));
        prof.lzTokens =
            static_cast<std::uint32_t>(tokens_total / samplesPerPart_);
        prof.huffmanUsed = huff_used * 2 >= samplesPerPart_;
        measured.profiles.push_back(prof);
        measured.weights.push_back(part.weight);
        measured.deflateNoSkipBytes.push_back(
            static_cast<std::uint32_t>(std::min<std::uint64_t>(
                pageSize, no_skip_total / samplesPerPart_)));
    }

    mixes_.push_back(std::move(measured));
    return static_cast<unsigned>(mixes_.size() - 1);
}

void
ProfileLibrary::assignPage(Ppn ppn, unsigned mix_id)
{
    panicIf(mix_id >= mixes_.size(), "unknown mix");
    const MeasuredMix &m = mixes_[mix_id];

    // Deterministic weighted part pick from the PPN.
    double total = 0;
    for (double w : m.weights)
        total += w;
    std::uint64_t h = ppn * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    double roll = static_cast<double>(h % 1000003) / 1000003.0 * total;
    unsigned part = 0;
    for (; part + 1 < m.weights.size(); ++part) {
        if (roll < m.weights[part])
            break;
        roll -= m.weights[part];
    }
    pageAssign_[ppn] = {mix_id, part};
}

void
ProfileLibrary::assignRange(Ppn first, std::uint64_t count,
                            unsigned mix_id)
{
    for (std::uint64_t i = 0; i < count; ++i)
        assignPage(first + i, mix_id);
}

const PageProfile &
ProfileLibrary::profile(Ppn ppn) const
{
    auto it = pageAssign_.find(ppn);
    if (it == pageAssign_.end())
        return defaultProfile_;
    const auto [mix, part] = it->second;
    return mixes_[mix].profiles[part];
}

ProfileLibrary::MixSummary
ProfileLibrary::summarize(unsigned mix_id) const
{
    panicIf(mix_id >= mixes_.size(), "unknown mix");
    const MeasuredMix &m = mixes_[mix_id];
    double total_w = 0, block = 0, deflate = 0, no_skip = 0, rfc = 0;
    for (std::size_t i = 0; i < m.profiles.size(); ++i) {
        const double w = m.weights[i];
        total_w += w;
        block += w * m.profiles[i].blockBytes;
        deflate += w * m.profiles[i].deflateBytes;
        no_skip += w * m.deflateNoSkipBytes[i];
        rfc += w * m.profiles[i].rfcBytes;
    }
    MixSummary s;
    s.blockRatio = pageSize * total_w / block;
    s.deflateRatio = pageSize * total_w / deflate;
    s.deflateNoSkipRatio = pageSize * total_w / no_skip;
    s.rfcRatio = pageSize * total_w / rfc;
    return s;
}

const std::vector<PageProfile> &
ProfileLibrary::partProfiles(unsigned mix_id) const
{
    panicIf(mix_id >= mixes_.size(), "unknown mix");
    return mixes_[mix_id].profiles;
}

} // namespace tmcc
