#include "workloads/profile_library.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/log.hh"
#include "compress/block_compressor.hh"
#include "compress/mem_deflate.hh"
#include "compress/rfc_deflate.hh"

namespace tmcc
{

namespace
{

/**
 * Process-wide memoization of per-part measurements.
 *
 * A part's measurement depends only on (spec, samples, seed): each part
 * draws from its own RNG stream seeded by a hash of its ContentSpec, so
 * the result is independent of registration order and of what else the
 * owning library has measured.  Experiment grids construct hundreds of
 * Systems over the same handful of workload mixes; the cache collapses
 * all repeat measurements into lookups.
 */

struct PartMeasurement
{
    PageProfile profile;
    std::uint32_t noSkipBytes = 0;
};

struct PartKey
{
    ContentSpec spec;
    unsigned samples = 0;
    std::uint64_t seed = 0;

    bool
    operator==(const PartKey &o) const
    {
        return spec == o.spec && samples == o.samples && seed == o.seed;
    }
};

constexpr std::uint64_t
mixBits(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
    return h ^ (h >> 33);
}

std::uint64_t
doubleBits(double d)
{
    std::uint64_t b;
    std::memcpy(&b, &d, sizeof(b));
    return b;
}

std::uint64_t
specHash(const ContentSpec &spec)
{
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    h = mixBits(h, static_cast<std::uint64_t>(spec.family));
    h = mixBits(h, doubleBits(spec.structure));
    h = mixBits(h, doubleBits(spec.repetition));
    return h;
}

struct PartKeyHash
{
    std::size_t
    operator()(const PartKey &k) const
    {
        std::uint64_t h = specHash(k.spec);
        h = mixBits(h, k.samples);
        h = mixBits(h, k.seed);
        return static_cast<std::size_t>(h);
    }
};

std::mutex cacheMutex;
std::atomic<std::uint64_t> cacheHits{0};
std::atomic<std::uint64_t> cacheMisses{0};
std::atomic<std::uint64_t> cachePages{0};

std::unordered_map<PartKey, PartMeasurement, PartKeyHash> &
partCache()
{
    static std::unordered_map<PartKey, PartMeasurement, PartKeyHash> c;
    return c;
}

/** Run the real codecs over `key.samples` sample pages of the part. */
PartMeasurement
measurePart(const PartKey &key)
{
    BlockCompressor block;
    MemDeflate deflate;
    MemDeflateConfig no_skip_cfg;
    no_skip_cfg.dynamicHuffmanSkip = false;
    MemDeflate deflate_no_skip(no_skip_cfg);
    RfcDeflate rfc;

    // The part's own stream: a pure function of (spec, seed), so the
    // measurement cannot depend on registration order.
    Rng rng(key.seed ^ specHash(key.spec));

    std::uint64_t block_total = 0, deflate_total = 0;
    std::uint64_t no_skip_total = 0, rfc_total = 0;
    std::uint64_t tokens_total = 0;
    unsigned huff_used = 0;
    for (unsigned s = 0; s < key.samples; ++s) {
        const auto page = generateContent(key.spec, rng);
        block_total += block.compressPage(page.data());
        const CompressedPage dp = deflate.compress(page.data(), page.size());
        deflate_total += dp.sizeBytes();
        tokens_total += dp.lzTokens;
        huff_used += dp.huffmanUsed;
        no_skip_total +=
            deflate_no_skip.compress(page.data(), page.size()).sizeBytes();
        rfc_total += rfc.compress(page.data(), page.size()).sizeBytes();
    }
    cachePages.fetch_add(key.samples, std::memory_order_relaxed);

    PartMeasurement m;
    m.profile.blockBytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(pageSize, block_total / key.samples));
    m.profile.deflateBytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(pageSize, deflate_total / key.samples));
    m.profile.rfcBytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(pageSize, rfc_total / key.samples));
    m.profile.lzTokens =
        static_cast<std::uint32_t>(tokens_total / key.samples);
    m.profile.huffmanUsed = huff_used * 2 >= key.samples;
    m.noSkipBytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(pageSize, no_skip_total / key.samples));
    return m;
}

} // namespace

ProfileLibrary::ProfileLibrary(unsigned samples_per_part,
                               std::uint64_t seed)
    : samplesPerPart_(samples_per_part), seed_(seed)
{
    // Reasonable default for pages never assigned (e.g., page-table
    // pages): moderately compressible pointer-like data.
    defaultProfile_.blockBytes = pageSize * 6 / 10;
    defaultProfile_.deflateBytes = pageSize * 3 / 10;
    defaultProfile_.rfcBytes = pageSize * 28 / 100;
    defaultProfile_.lzTokens = 2000;
    defaultProfile_.huffmanUsed = true;
}

unsigned
ProfileLibrary::registerMix(const ContentMix &mix)
{
    fatalIf(mix.parts.empty(), "content mix needs at least one part");
    fatalIf(samplesPerPart_ == 0, "samples per part must be positive");

    std::vector<PartKey> keys;
    keys.reserve(mix.parts.size());
    for (const auto &part : mix.parts)
        keys.push_back({part.spec, samplesPerPart_, seed_});

    // Find which parts are cold, deduplicating within the mix.
    std::vector<PartKey> missing;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        const auto &c = partCache();
        for (const auto &key : keys) {
            bool queued = false;
            for (const auto &m : missing)
                queued = queued || m == key;
            if (c.count(key) || queued) {
                // Repeats within one mix ride the first part's
                // measurement, so they count as hits too: misses ==
                // unique cold measurements.
                cacheHits.fetch_add(1, std::memory_order_relaxed);
            } else {
                cacheMisses.fetch_add(1, std::memory_order_relaxed);
                missing.push_back(key);
            }
        }
    }

    // Measure cold parts, in parallel when there are several (each
    // worker builds its own codecs; parts are independent).
    if (!missing.empty()) {
        std::vector<PartMeasurement> results(missing.size());
        const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
            missing.size(),
            std::max(1u, std::thread::hardware_concurrency())));
        if (workers <= 1) {
            for (std::size_t i = 0; i < missing.size(); ++i)
                results[i] = measurePart(missing[i]);
        } else {
            std::atomic<std::size_t> next{0};
            auto work = [&] {
                for (std::size_t i = next.fetch_add(1);
                     i < missing.size(); i = next.fetch_add(1))
                    results[i] = measurePart(missing[i]);
            };
            std::vector<std::thread> pool;
            pool.reserve(workers - 1);
            for (unsigned w = 0; w + 1 < workers; ++w)
                pool.emplace_back(work);
            work();
            for (auto &t : pool)
                t.join();
        }
        std::lock_guard<std::mutex> lock(cacheMutex);
        for (std::size_t i = 0; i < missing.size(); ++i)
            partCache().emplace(missing[i], results[i]);
    }

    MeasuredMix measured;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        const auto &c = partCache();
        for (std::size_t i = 0; i < mix.parts.size(); ++i) {
            const PartMeasurement &m = c.at(keys[i]);
            measured.profiles.push_back(m.profile);
            measured.weights.push_back(mix.parts[i].weight);
            measured.deflateNoSkipBytes.push_back(m.noSkipBytes);
        }
    }

    mixes_.push_back(std::move(measured));
    return static_cast<unsigned>(mixes_.size() - 1);
}

ProfileLibrary::CacheStats
ProfileLibrary::cacheStats()
{
    CacheStats s;
    s.hits = cacheHits.load(std::memory_order_relaxed);
    s.misses = cacheMisses.load(std::memory_order_relaxed);
    s.pagesCompressed = cachePages.load(std::memory_order_relaxed);
    return s;
}

void
ProfileLibrary::clearCache()
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    partCache().clear();
    cacheHits.store(0, std::memory_order_relaxed);
    cacheMisses.store(0, std::memory_order_relaxed);
    cachePages.store(0, std::memory_order_relaxed);
}

void
ProfileLibrary::assignPage(Ppn ppn, unsigned mix_id)
{
    panicIf(mix_id >= mixes_.size(), "unknown mix");
    const MeasuredMix &m = mixes_[mix_id];

    // Deterministic weighted part pick from the PPN.
    double total = 0;
    for (double w : m.weights)
        total += w;
    std::uint64_t h = ppn * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    double roll = static_cast<double>(h % 1000003) / 1000003.0 * total;
    unsigned part = 0;
    for (; part + 1 < m.weights.size(); ++part) {
        if (roll < m.weights[part])
            break;
        roll -= m.weights[part];
    }
    pageAssign_[ppn] = {mix_id, part};
}

void
ProfileLibrary::assignRange(Ppn first, std::uint64_t count,
                            unsigned mix_id)
{
    for (std::uint64_t i = 0; i < count; ++i)
        assignPage(first + i, mix_id);
}

const PageProfile &
ProfileLibrary::profile(Ppn ppn) const
{
    auto it = pageAssign_.find(ppn);
    if (it == pageAssign_.end())
        return defaultProfile_;
    const auto [mix, part] = it->second;
    return mixes_[mix].profiles[part];
}

ProfileLibrary::MixSummary
ProfileLibrary::summarize(unsigned mix_id) const
{
    panicIf(mix_id >= mixes_.size(), "unknown mix");
    const MeasuredMix &m = mixes_[mix_id];
    double total_w = 0, block = 0, deflate = 0, no_skip = 0, rfc = 0;
    for (std::size_t i = 0; i < m.profiles.size(); ++i) {
        const double w = m.weights[i];
        total_w += w;
        block += w * m.profiles[i].blockBytes;
        deflate += w * m.profiles[i].deflateBytes;
        no_skip += w * m.deflateNoSkipBytes[i];
        rfc += w * m.profiles[i].rfcBytes;
    }
    MixSummary s;
    s.blockRatio = pageSize * total_w / block;
    s.deflateRatio = pageSize * total_w / deflate;
    s.deflateNoSkipRatio = pageSize * total_w / no_skip;
    s.rfcRatio = pageSize * total_w / rfc;
    return s;
}

const std::vector<PageProfile> &
ProfileLibrary::partProfiles(unsigned mix_id) const
{
    panicIf(mix_id >= mixes_.size(), "unknown mix");
    return mixes_[mix_id].profiles;
}

ProfileLibraryState
ProfileLibrary::snapshot() const
{
    ProfileLibraryState st;
    st.mixes.reserve(mixes_.size());
    for (const MeasuredMix &m : mixes_)
        st.mixes.push_back({m.profiles, m.weights, m.deflateNoSkipBytes});
    st.assigns.assign(pageAssign_.begin(), pageAssign_.end());
    std::sort(st.assigns.begin(), st.assigns.end());
    return st;
}

void
ProfileLibrary::restore(const ProfileLibraryState &state)
{
    mixes_.clear();
    mixes_.reserve(state.mixes.size());
    for (const auto &m : state.mixes) {
        panicIf(m.weights.size() != m.profiles.size() ||
                    m.deflateNoSkipBytes.size() != m.profiles.size(),
                "ProfileLibraryState mix vectors disagree");
        mixes_.push_back({m.profiles, m.weights, m.deflateNoSkipBytes});
    }
    pageAssign_.clear();
    pageAssign_.reserve(state.assigns.size());
    for (const auto &[ppn, assign] : state.assigns) {
        panicIf(assign.first >= mixes_.size() ||
                    assign.second >= mixes_[assign.first].profiles.size(),
                "ProfileLibraryState assignment out of range");
        pageAssign_.emplace(ppn, assign);
    }
}

} // namespace tmcc
