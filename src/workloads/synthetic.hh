/**
 * @file
 * Non-graph workload analogues: SPEC's mcf/omnetpp, PARSEC's canneal
 * (the remaining large/irregular set of Fig. 1), the small/regular
 * PARSEC + RocksDB set of §VII, and the bandwidth-intensive set used
 * for the interleaving study (Fig. 22).
 *
 * Each analogue is a parameterized access-pattern engine whose knobs
 * (footprint, hot-set skew, pointer-chase depth, sequential run length,
 * read/write mix, think time) are set to mimic the published behaviour
 * of its namesake; region content families mimic its data.
 */

#ifndef TMCC_WORKLOADS_SYNTHETIC_HH
#define TMCC_WORKLOADS_SYNTHETIC_HH

#include "common/rng.hh"
#include "workloads/workload.hh"

namespace tmcc
{

/** Knobs of the synthetic engine. */
struct SyntheticParams
{
    std::string name = "synthetic";

    /** Regions (content + size); region 0 is the "main" array. */
    std::vector<WlRegion> regions;

    /** Probability an access starts a sequential run vs a random jump. */
    double sequentialFraction = 0.2;

    /** Length of sequential runs in 64B blocks. */
    unsigned runBlocks = 8;

    /** Zipf skew of random jumps (0 = uniform). */
    double zipfAlpha = 0.0;

    /**
     * Alternative hot/cold model (used when hotFraction > 0): random
     * jumps land uniformly in the first `hotFraction` of the footprint
     * (the working set) except with probability `coldP`, when they
     * touch the cold remainder.  This gives the three-scale structure
     * large workloads have: TLB reach << working set <= ML1 << footprint.
     */
    double hotFraction = 0.0;
    double coldP = 0.02;

    /** Fraction of accesses that are writes. */
    double writeFraction = 0.2;

    /** Pointer-chase: each random jump is followed by this many
     * dependent jumps (mcf-style). */
    unsigned chaseDepth = 0;

    /** Mean think cycles between accesses. */
    double thinkMean = 4.0;
};

/** The configurable pattern engine. */
class SyntheticWorkload : public Workload
{
  public:
    SyntheticWorkload(const SyntheticParams &params, unsigned core,
                      unsigned cores, std::uint64_t seed);

    const std::string &name() const override { return p_.name; }
    const std::vector<WlRegion> &regions() const override
    {
        return p_.regions;
    }
    MemAccess next() override;

    void saveState(ByteWriter &w) const override;
    Status loadState(ByteReader &r) override;

  private:
    Addr randomTarget();
    const WlRegion &regionOf(Addr a) const;

    SyntheticParams p_;
    Rng rng_;
    std::uint64_t totalBlocks_ = 0;

    Addr seqCursor_ = 0;
    unsigned seqLeft_ = 0;
    unsigned chaseLeft_ = 0;
    Addr chaseCursor_ = 0;
    /** Bounds of the region the current sequential run started in.
     * Derived from seqCursor_, so not serialized. */
    Addr seqBase_ = 0;
    Addr seqLimit_ = 0;
};

} // namespace tmcc

#endif // TMCC_WORKLOADS_SYNTHETIC_HH
