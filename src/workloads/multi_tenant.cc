#include "workloads/multi_tenant.hh"

#include <algorithm>

#include "common/log.hh"

namespace tmcc
{

namespace
{

/** Tenant regions sit at widely separated bases: the gaps make any
 * access that escapes its region an unmapped-page fault, not a silent
 * hit on a neighbour. */
constexpr Addr tenantBase = 1ULL << 30;
constexpr Addr tenantStride = 1ULL << 32;
constexpr Addr tenantAlign = 1ULL << 21; // huge-page alignment

/** Heterogeneous guest images: cycle content families across slots so
 * tenants compress differently (a database guest next to a numeric
 * one), exercising every ML2 sub-chunk class at once. */
const ContentSpec &
tenantContent(unsigned tenant)
{
    static const ContentSpec specs[] = {
        {ContentFamily::KeyValue, 0.5, 2.5},
        {ContentFamily::IntArray, 0.6, 1.5},
        {ContentFamily::FloatArray, 0.4, 2.0},
        {ContentFamily::Text, 0.5, 2.0},
        {ContentFamily::PointerHeap, 0.5, 2.0},
        {ContentFamily::GraphCsr, 0.4, 1.0},
    };
    return specs[tenant % (sizeof(specs) / sizeof(specs[0]))];
}

} // namespace

MultiTenantWorkload::MultiTenantWorkload(const MultiTenantParams &params,
                                         unsigned core, unsigned cores,
                                         std::uint64_t seed)
    : p_(params), rng_(seed * 9176 + core * 131 + 17)
{
    (void)cores;
    fatalIf(p_.tenants < 1 || p_.tenants > 1024,
            "memcloud wants 1..1024 tenants, got " +
                std::to_string(p_.tenants));
    fatalIf(p_.churn < 0.0 || p_.churn > 1.0,
            "memcloud tenant churn must be a rate in [0, 1]");
    fatalIf(p_.zipfAlpha <= 0.0,
            "memcloud tenant zipf alpha must be positive");
    fatalIf(p_.stormPeriod > 0 && p_.stormAccesses >= p_.stormPeriod,
            "memcloud storm window must be shorter than its period");

    const std::uint64_t bytes =
        (std::max<std::uint64_t>(p_.tenantBytes, tenantAlign) +
         tenantAlign - 1) &
        ~(tenantAlign - 1);
    blocksPerTenant_ = bytes / blockSize;
    regions_.reserve(p_.tenants);
    for (unsigned t = 0; t < p_.tenants; ++t) {
        WlRegion r;
        r.name = "tenant" + std::to_string(t);
        r.base = tenantBase + static_cast<Addr>(t) * tenantStride;
        r.bytes = bytes;
        r.content = tenantContent(t);
        regions_.push_back(std::move(r));
    }
    tenants_.resize(p_.tenants);
    seqCursor_ = regions_[0].base;
}

void
MultiTenantWorkload::respawn(unsigned tenant)
{
    TenantState &ts = tenants_[tenant];
    ++ts.generation;
    // The replacement guest writes a fresh image over 1/16 of its slot
    // before serving traffic; the sweep starts at a generation-rotated
    // offset so successive guests dirty different pages.
    ts.recolonizeLeft = std::max<std::uint64_t>(blocksPerTenant_ / 16, 1);
    const std::uint64_t start_blk =
        (static_cast<std::uint64_t>(ts.generation) *
         (blocksPerTenant_ / 4 + 1)) %
        blocksPerTenant_;
    ts.recolonizeCursor =
        regions_[tenant].base + start_blk * blockSize;
}

Addr
MultiTenantWorkload::jumpTarget(unsigned tenant)
{
    const WlRegion &r = regions_[tenant];
    std::uint64_t blk;
    if (rng_.chance(p_.coldP)) {
        blk = rng_.below(blocksPerTenant_);
    } else {
        // The hot window rotates with the guest generation: a respawn
        // turns the previous guest's hot pages cold (ML2 demotion
        // fodder) and faults a fresh window up from ML2.
        const std::uint64_t hot_blocks = std::max<std::uint64_t>(
            static_cast<std::uint64_t>(
                p_.hotFraction * static_cast<double>(blocksPerTenant_)),
            1);
        const std::uint64_t start =
            (static_cast<std::uint64_t>(tenants_[tenant].generation) *
             hot_blocks * 7) %
            blocksPerTenant_;
        blk = (start + rng_.below(hot_blocks)) % blocksPerTenant_;
    }
    return r.base + blk * blockSize;
}

MemAccess
MultiTenantWorkload::next()
{
    MemAccess a;
    a.thinkCycles =
        static_cast<unsigned>(rng_.geometric(p_.thinkMean));
    ++accessIndex_;

    // Global-pressure storm: every tenant is active at once and the
    // reference stream loses its per-tenant locality, uniformly
    // touching cold pages host-wide.  Aborts any in-progress burst.
    if (p_.stormPeriod > 0 &&
        accessIndex_ % p_.stormPeriod >=
            p_.stormPeriod - p_.stormAccesses) {
        const auto t =
            static_cast<std::uint16_t>(rng_.below(p_.tenants));
        a.tenant = t;
        a.isWrite = rng_.chance(p_.writeFraction);
        a.vaddr = regions_[t].base +
                  rng_.below(blocksPerTenant_) * blockSize;
        burstLeft_ = 0;
        seqLeft_ = 0;
        return a;
    }

    if (burstLeft_ == 0) {
        // New burst: popular tenants get scheduled most often.  A run
        // in progress dies with its burst — sequential runs never span
        // tenants (the cross-region streaming bug this workload
        // stresses).
        curTenant_ = static_cast<std::uint16_t>(
            rng_.zipf(p_.tenants, p_.zipfAlpha));
        burstLeft_ =
            1 + static_cast<std::uint32_t>(rng_.geometric(p_.burstMean));
        seqLeft_ = 0;
        if (rng_.chance(p_.churn))
            respawn(curTenant_);
    }
    --burstLeft_;

    a.tenant = curTenant_;
    const WlRegion &r = regions_[curTenant_];
    TenantState &ts = tenants_[curTenant_];

    if (ts.recolonizeLeft > 0) {
        // The freshly spawned guest streams its image in: sequential
        // writes that recompress pages and churn ML2 sub-chunk
        // allocations.  Progresses only while this tenant is scheduled.
        a.isWrite = true;
        a.vaddr = ts.recolonizeCursor;
        ts.recolonizeCursor += blockSize;
        if (ts.recolonizeCursor >= r.base + r.bytes)
            ts.recolonizeCursor = r.base;
        --ts.recolonizeLeft;
        return a;
    }

    a.isWrite = rng_.chance(p_.writeFraction);

    if (seqLeft_ > 0) {
        --seqLeft_;
        seqCursor_ += blockSize;
        // Wrap within this tenant's region; the cursor can only be
        // here because the run started in it (runs die at burst ends).
        if (seqCursor_ >= r.base + r.bytes)
            seqCursor_ = r.base;
        a.vaddr = seqCursor_;
        return a;
    }

    if (rng_.chance(p_.sequentialFraction)) {
        seqLeft_ = p_.runBlocks;
        seqCursor_ = jumpTarget(curTenant_);
        a.vaddr = seqCursor_;
        return a;
    }

    a.vaddr = jumpTarget(curTenant_);
    return a;
}

void
MultiTenantWorkload::saveState(ByteWriter &w) const
{
    for (std::uint64_t word : rng_.state())
        w.u64(word);
    w.u64(accessIndex_);
    w.u32(curTenant_);
    w.u32(burstLeft_);
    w.u64(seqCursor_);
    w.u32(seqLeft_);
    for (const TenantState &ts : tenants_) {
        w.u32(ts.generation);
        w.u64(ts.recolonizeLeft);
        w.u64(ts.recolonizeCursor);
    }
}

Status
MultiTenantWorkload::loadState(ByteReader &r)
{
    std::array<std::uint64_t, 4> s;
    for (auto &word : s)
        word = r.u64();
    const std::uint64_t accessIndex = r.u64();
    const std::uint32_t curTenant = r.u32();
    const std::uint32_t burstLeft = r.u32();
    const std::uint64_t seqCursor = r.u64();
    const std::uint32_t seqLeft = r.u32();
    std::vector<TenantState> slots(tenants_.size());
    for (TenantState &ts : slots) {
        ts.generation = r.u32();
        ts.recolonizeLeft = r.u64();
        ts.recolonizeCursor = r.u64();
    }
    TMCC_RETURN_IF_ERROR(r.finish("MultiTenantWorkload state"));
    if (curTenant >= tenants_.size())
        return Status::corruption(
            "MultiTenantWorkload state tenant out of range");
    rng_.setState(s);
    accessIndex_ = accessIndex;
    curTenant_ = static_cast<std::uint16_t>(curTenant);
    burstLeft_ = burstLeft;
    seqCursor_ = seqCursor;
    seqLeft_ = seqLeft;
    tenants_ = std::move(slots);
    return Status::okStatus();
}

} // namespace tmcc
