#include "workloads/synthetic.hh"

#include "common/log.hh"

namespace tmcc
{

namespace
{

std::uint64_t
mix(std::uint64_t a)
{
    std::uint64_t x = a + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

SyntheticWorkload::SyntheticWorkload(const SyntheticParams &params,
                                     unsigned core, unsigned cores,
                                     std::uint64_t seed)
    : p_(params), rng_(seed * 7919 + core * 31 + 5)
{
    fatalIf(p_.regions.empty(), "synthetic workload needs regions");
    (void)cores;
    for (const auto &r : p_.regions)
        totalBlocks_ += r.bytes / blockSize;
    seqCursor_ = p_.regions[0].base;
    seqBase_ = p_.regions[0].base;
    seqLimit_ = p_.regions[0].base + p_.regions[0].bytes;
    chaseCursor_ = p_.regions[0].base;
}

const WlRegion &
SyntheticWorkload::regionOf(Addr a) const
{
    for (const auto &r : p_.regions)
        if (a >= r.base && a < r.base + r.bytes)
            return r;
    return p_.regions[0];
}

Addr
SyntheticWorkload::randomTarget()
{
    // Pick a block index across all regions, optionally Zipf-skewed so
    // a hot subset dominates (heap allocators and caches cluster hot
    // objects; Zipf models that).
    std::uint64_t blk;
    if (p_.hotFraction > 0.0) {
        const auto hot_blocks = static_cast<std::uint64_t>(
            p_.hotFraction * static_cast<double>(totalBlocks_));
        if (rng_.chance(p_.coldP) && hot_blocks < totalBlocks_)
            blk = hot_blocks + rng_.below(totalBlocks_ - hot_blocks);
        else
            blk = rng_.below(std::max<std::uint64_t>(hot_blocks, 1));
    } else if (p_.zipfAlpha > 0.0) {
        // Zipf rank maps directly to block position: hot objects
        // cluster (allocators place hot structures together), giving
        // the page-level hotness skew ML1/ML2 separation relies on.
        blk = rng_.zipf(totalBlocks_, p_.zipfAlpha);
    } else {
        blk = rng_.below(totalBlocks_);
    }

    for (const auto &r : p_.regions) {
        const std::uint64_t n = r.bytes / blockSize;
        if (blk < n)
            return r.base + blk * blockSize;
        blk -= n;
    }
    return p_.regions[0].base;
}

MemAccess
SyntheticWorkload::next()
{
    MemAccess a;
    a.thinkCycles =
        static_cast<unsigned>(rng_.geometric(p_.thinkMean));
    a.isWrite = rng_.chance(p_.writeFraction);

    if (chaseLeft_ > 0) {
        // Dependent pointer chase: the next address derives from the
        // current one (serialized misses, mcf-style).  Chases stay
        // within the hot working set when the hot/cold model is on.
        --chaseLeft_;
        std::uint64_t span = p_.regions[0].bytes / blockSize;
        if (p_.hotFraction > 0.0)
            span = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       p_.hotFraction * static_cast<double>(span)));
        chaseCursor_ = p_.regions[0].base +
                       (mix(chaseCursor_) % span) * blockSize;
        a.vaddr = chaseCursor_;
        a.thinkCycles += 2;
        return a;
    }

    if (seqLeft_ > 0) {
        --seqLeft_;
        seqCursor_ += blockSize;
        // Wrap within the region the run started in, not region 0:
        // runs started in other regions would otherwise stream off the
        // region end into unmapped gap addresses.
        if (seqCursor_ >= seqLimit_)
            seqCursor_ = seqBase_;
        a.vaddr = seqCursor_;
        return a;
    }

    if (rng_.chance(p_.sequentialFraction)) {
        // Sequential runs start where the (possibly skewed) reference
        // stream points: scans revisit hot structures, they do not
        // sweep the whole footprint uniformly.
        seqLeft_ = p_.runBlocks;
        seqCursor_ = blockAlign(randomTarget());
        const WlRegion &r = regionOf(seqCursor_);
        seqBase_ = r.base;
        seqLimit_ = r.base + r.bytes;
        a.vaddr = seqCursor_;
        return a;
    }

    a.vaddr = randomTarget();
    if (p_.chaseDepth > 0) {
        chaseLeft_ = p_.chaseDepth;
        chaseCursor_ = a.vaddr;
    }
    return a;
}

void
SyntheticWorkload::saveState(ByteWriter &w) const
{
    for (std::uint64_t word : rng_.state())
        w.u64(word);
    w.u64(seqCursor_);
    w.u32(seqLeft_);
    w.u32(chaseLeft_);
    w.u64(chaseCursor_);
}

Status
SyntheticWorkload::loadState(ByteReader &r)
{
    std::array<std::uint64_t, 4> s;
    for (auto &word : s)
        word = r.u64();
    const std::uint64_t seqCursor = r.u64();
    const std::uint32_t seqLeft = r.u32();
    const std::uint32_t chaseLeft = r.u32();
    const std::uint64_t chaseCursor = r.u64();
    TMCC_RETURN_IF_ERROR(r.finish("SyntheticWorkload state"));
    rng_.setState(s);
    seqCursor_ = seqCursor;
    seqLeft_ = seqLeft;
    chaseLeft_ = chaseLeft;
    chaseCursor_ = chaseCursor;
    // The run bounds are derived state: the saved cursor always sits
    // inside the region its run started in.
    const WlRegion &seqRegion = regionOf(seqCursor_);
    seqBase_ = seqRegion.base;
    seqLimit_ = seqRegion.base + seqRegion.bytes;
    return Status::okStatus();
}

} // namespace tmcc
