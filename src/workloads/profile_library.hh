/**
 * @file
 * ProfileLibrary: measures PageProfile records by running the real
 * compressors over sampled pages of each content mix, then hands them
 * out per physical page.
 */

#ifndef TMCC_WORKLOADS_PROFILE_LIBRARY_HH
#define TMCC_WORKLOADS_PROFILE_LIBRARY_HH

#include <unordered_map>
#include <vector>

#include "mc/page_profile.hh"
#include "workloads/content.hh"

namespace tmcc
{

/**
 * Checkpointable ProfileLibrary instance state: the measured mixes plus
 * the page→mix assignment, sorted by PPN for a stable byte encoding.
 */
struct ProfileLibraryState
{
    struct Mix
    {
        std::vector<PageProfile> profiles;
        std::vector<double> weights;
        std::vector<std::uint32_t> deflateNoSkipBytes;
    };
    std::vector<Mix> mixes;
    /** (ppn, (mix id, part index)) sorted by ppn. */
    std::vector<std::pair<Ppn, std::pair<unsigned, unsigned>>> assigns;
};

/** A weighted mix of content families (one workload's memory image). */
struct ContentMix
{
    struct Part
    {
        ContentSpec spec;
        double weight = 1.0;
    };
    std::vector<Part> parts;
};

/**
 * Measures and serves per-page compressibility profiles.
 *
 * registerMix() samples `samplesPerPart` pages per family with the real
 * BlockCompressor / MemDeflate / RfcDeflate codecs and averages the
 * results into one PageProfile per part; pages are then assigned to
 * parts by weight (deterministic per PPN).
 *
 * Measurements are memoized process-wide, keyed by (content spec,
 * samples, seed): a part's profile is a pure function of that key (each
 * part gets its own RNG stream derived from the key), so repeated
 * System constructions across an experiment grid stop re-compressing
 * identical sample pages.  The cache is thread-safe; cold parts of one
 * mix are measured in parallel.
 */
class ProfileLibrary : public PageInfoProvider
{
  public:
    explicit ProfileLibrary(unsigned samples_per_part = 12,
                            std::uint64_t seed = 0xfeed);

    /** Measure a mix; returns its id. */
    unsigned registerMix(const ContentMix &mix);

    /** Counters for the process-wide measurement cache (stats hook for
     * tests and benches). `pagesCompressed` counts every sample page
     * run through the codecs; cache hits add none. */
    struct CacheStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t pagesCompressed = 0;
    };
    static CacheStats cacheStats();

    /** Drop all memoized measurements (tests). */
    static void clearCache();

    /** Assign a physical page to a mix (profile picked by PPN hash). */
    void assignPage(Ppn ppn, unsigned mix_id);

    /** Assign a contiguous PPN range to a mix. */
    void assignRange(Ppn first, std::uint64_t count, unsigned mix_id);

    const PageProfile &profile(Ppn ppn) const override;

    /** Aggregate ratios of a mix (weight-averaged; for Fig. 15). */
    struct MixSummary
    {
        double blockRatio = 1.0;
        double deflateRatio = 1.0;
        double deflateNoSkipRatio = 1.0;
        double rfcRatio = 1.0;
    };
    MixSummary summarize(unsigned mix_id) const;

    /** The measured per-part profiles of a mix. */
    const std::vector<PageProfile> &partProfiles(unsigned mix_id) const;

    /** Capture mixes + page assignments for a setup checkpoint. */
    ProfileLibraryState snapshot() const;

    /** Replace this library's state with a snapshot() capture. */
    void restore(const ProfileLibraryState &state);

  private:
    struct MeasuredMix
    {
        std::vector<PageProfile> profiles; //!< one per part
        std::vector<double> weights;
        std::vector<std::uint32_t> deflateNoSkipBytes;
    };

    unsigned samplesPerPart_;
    std::uint64_t seed_;
    std::vector<MeasuredMix> mixes_;
    std::unordered_map<Ppn, std::pair<unsigned, unsigned>> pageAssign_;
    PageProfile defaultProfile_;
};

} // namespace tmcc

#endif // TMCC_WORKLOADS_PROFILE_LIBRARY_HH
