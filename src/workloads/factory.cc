/**
 * @file
 * Workload registry: the paper's benchmark names mapped onto engines
 * with footprints scaled ~1/200 of the published Table IV column A
 * (keeping every "large" footprint far above the 8MB TLB reach so the
 * translation behaviour §III depends on is preserved).
 */

#include "workloads/workload.hh"

#include "common/log.hh"
#include "workloads/graph.hh"
#include "workloads/multi_tenant.hh"
#include "workloads/synthetic.hh"
#include "workloads/trace.hh"

namespace tmcc
{

namespace
{

constexpr Addr regionStart = 1ULL << 30;
constexpr Addr regionAlign = 1ULL << 21;

Addr
alignUp(Addr a)
{
    return (a + regionAlign - 1) & ~(regionAlign - 1);
}

/** Build a region list at standard bases. */
std::vector<WlRegion>
makeRegions(std::initializer_list<
            std::tuple<const char *, std::uint64_t, ContentSpec>> parts)
{
    std::vector<WlRegion> out;
    Addr base = regionStart;
    for (const auto &[name, bytes, spec] : parts) {
        WlRegion r;
        r.name = name;
        r.base = base;
        r.bytes = alignUp(bytes);
        r.content = spec;
        out.push_back(r);
        base = alignUp(base + r.bytes);
    }
    return out;
}

constexpr std::uint64_t MiB = 1ULL << 20;

} // namespace

const std::vector<std::string> &
largeWorkloadNames()
{
    static const std::vector<std::string> names = {
        "pageRank", "graphCol", "connComp", "degCentr", "shortestPath",
        "bfs",      "dfs",      "kcore",    "triCount", "mcf",
        "omnetpp",  "canneal",
    };
    return names;
}

const std::vector<std::string> &
smallWorkloadNames()
{
    static const std::vector<std::string> names = {
        "blackscholes", "freqmine", "swaptions", "streamcluster",
        "rocksdb",
    };
    return names;
}

const std::vector<std::string> &
bandwidthWorkloadNames()
{
    static const std::vector<std::string> names = {
        "stream", "hpcg", "spmv", "gups", "spD",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, unsigned core, unsigned cores,
             double scale, std::uint64_t seed,
             const TenantKnobs &tenancy)
{
    // ---- recorded traces: "trace:<path>" (every core replays) ----
    if (name.rfind("trace:", 0) == 0)
        return std::make_unique<TraceWorkload>(name.substr(6));

    // ---- GraphBIG kernels (shared address space, partitioned) ----
    static const std::vector<std::string> graph_kernels = {
        "pageRank", "graphCol", "connComp", "degCentr", "shortestPath",
        "bfs",      "dfs",      "kcore",    "triCount",
    };
    for (const auto &k : graph_kernels) {
        if (name == k) {
            GraphParams gp;
            gp.vertices = static_cast<std::uint64_t>(
                (8.0 * scale) * (1 << 20));
            return std::make_unique<GraphWorkload>(
                graphKernelByName(name), gp, core, cores, seed);
        }
    }

    const auto scaled = [scale](double mib) {
        return static_cast<std::uint64_t>(mib * scale * MiB);
    };

    // ---- multi-tenant memory cloud (shared address spaces) ----
    if (name == "memcloud") {
        MultiTenantParams mp;
        mp.tenants = tenancy.tenants;
        mp.churn = tenancy.churn;
        mp.zipfAlpha = tenancy.zipf;
        mp.tenantBytes = scaled(32.0);
        return std::make_unique<MultiTenantWorkload>(mp, core, cores,
                                                     seed);
    }

    SyntheticParams p;
    p.name = name;

    if (name == "mcf") {
        // Network simplex: dependent pointer chasing over node/arc
        // arrays; single-threaded in the paper -> four instances, so
        // each core gets its own address-space slice via the seed.
        p.regions = makeRegions({
            {"nodes", scaled(40), {ContentFamily::FloatArray, 0.3, 3.0}},
            {"arcs", scaled(56), {ContentFamily::KeyValue, 0.35, 2.5}},
        });
        p.sequentialFraction = 0.1;
        p.runBlocks = 4;
        p.chaseDepth = 4;
        p.hotFraction = 0.06; // the active spanning tree + hot arcs
        p.coldP = 0.04;
        p.writeFraction = 0.15;
        p.thinkMean = 3.0;
        // Distinct instances: shift each core's region bases.
        for (auto &r : p.regions)
            r.base += static_cast<Addr>(core) * (1ULL << 36);
    } else if (name == "omnetpp") {
        // Discrete event simulation: heap of event objects, skewed
        // reuse, frequent small writes.
        p.regions = makeRegions({
            {"heap", scaled(56), {ContentFamily::IntArray, 0.6, 1.5}},
            {"queues", scaled(8), {ContentFamily::IntArray, 0.7, 2.0}},
        });
        p.sequentialFraction = 0.12;
        p.runBlocks = 3;
        p.hotFraction = 0.08; // live event/message objects
        p.coldP = 0.03;
        p.writeFraction = 0.3;
        p.thinkMean = 5.0;
        for (auto &r : p.regions)
            r.base += static_cast<Addr>(core) * (1ULL << 36);
    } else if (name == "canneal") {
        // Simulated annealing over a netlist: uniformly random element
        // pairs, read-mostly with swap writes; very irregular.
        p.regions = makeRegions({
            {"netlist", scaled(64),
             {ContentFamily::FloatArray, 0.5, 1.4}},
            {"elements", scaled(16), {ContentFamily::GraphCsr, 0.4, 1.0}},
        });
        p.sequentialFraction = 0.05;
        p.runBlocks = 2;
        p.hotFraction = 0.20; // active netlist neighbourhood
        p.coldP = 0.02;
        p.writeFraction = 0.25;
        p.thinkMean = 2.5;
    } else if (name == "blackscholes") {
        // Dense option arrays, fully streaming: small and regular.
        p.regions = makeRegions({
            {"options", scaled(24), {ContentFamily::FloatArray, 0.6, 3.5}},
            {"results", scaled(8), {ContentFamily::FloatArray, 0.7, 3.5}},
        });
        p.sequentialFraction = 0.9;
        p.runBlocks = 16;
        p.hotFraction = 0.12; // in-flight option batch re-read often
        p.coldP = 0.004;      // options outside the batch barely move
        p.writeFraction = 0.25;
        p.thinkMean = 12.0;
    } else if (name == "freqmine") {
        // FP-growth: tree walk with high reuse of upper nodes.
        p.regions = makeRegions({
            {"fptree", scaled(24), {ContentFamily::PointerHeap, 0.5, 2.0}},
            {"counts", scaled(8), {ContentFamily::IntArray, 0.6, 2.0}},
        });
        p.sequentialFraction = 0.2;
        p.runBlocks = 4;
        p.zipfAlpha = 1.6; // fp-tree walks are root-heavy
        p.writeFraction = 0.2;
        p.thinkMean = 8.0;
    } else if (name == "swaptions") {
        // Small hot arrays, compute-bound.
        p.regions = makeRegions({
            {"paths", scaled(12), {ContentFamily::FloatArray, 0.6, 2.5}},
        });
        p.sequentialFraction = 0.6;
        p.runBlocks = 8;
        p.zipfAlpha = 1.5; // a few hot simulation paths dominate
        p.writeFraction = 0.3;
        p.thinkMean = 16.0;
    } else if (name == "streamcluster") {
        // Streaming points with a small hot centroid set.
        p.regions = makeRegions({
            {"points", scaled(32), {ContentFamily::FloatArray, 0.5, 2.2}},
            {"centroids", scaled(2), {ContentFamily::FloatArray, 0.7, 2.2}},
        });
        p.sequentialFraction = 0.75;
        p.runBlocks = 12;
        p.hotFraction = 0.15; // current chunk + centroids
        p.coldP = 0.015;
        p.writeFraction = 0.1;
        p.thinkMean = 6.0;
    } else if (name == "rocksdb") {
        // Point lookups over a block cache, Zipf keys (Twitter-like),
        // memtable writes.
        p.regions = makeRegions({
            {"blockcache", scaled(48), {ContentFamily::KeyValue, 0.5, 2.5}},
            {"memtable", scaled(8), {ContentFamily::KeyValue, 0.6, 2.5}},
            {"index", scaled(4), {ContentFamily::PointerHeap, 0.6, 2.0}},
        });
        p.sequentialFraction = 0.25;
        p.runBlocks = 6;
        p.zipfAlpha = 0.99;
        p.writeFraction = 0.15;
        p.thinkMean = 7.0;
    } else if (name == "stream") {
        p.regions = makeRegions({
            {"a", scaled(48), {ContentFamily::FloatArray, 0.5, 2.0}},
        });
        p.sequentialFraction = 1.0;
        p.runBlocks = 64;
        p.writeFraction = 0.33;
        p.thinkMean = 1.0;
    } else if (name == "hpcg") {
        // Stencil + sparse matvec: long sequential runs with irregular
        // gather reads.
        p.regions = makeRegions({
            {"matrix", scaled(48), {ContentFamily::FloatArray, 0.4, 2.0}},
            {"vectors", scaled(16), {ContentFamily::FloatArray, 0.5, 2.0}},
        });
        p.sequentialFraction = 0.7;
        p.runBlocks = 24;
        p.writeFraction = 0.2;
        p.thinkMean = 2.0;
    } else if (name == "spmv" || name == "spD") {
        p.regions = makeRegions({
            {"vals", scaled(40), {ContentFamily::FloatArray, 0.4, 2.0}},
            {"cols", scaled(20), {ContentFamily::GraphCsr, 0.4, 2.0}},
            {"x", scaled(8), {ContentFamily::FloatArray, 0.5, 2.0}},
        });
        p.sequentialFraction = 0.6;
        p.runBlocks = 16;
        p.writeFraction = 0.12;
        p.thinkMean = 2.0;
    } else if (name == "gups") {
        p.regions = makeRegions({
            {"table", scaled(64), {ContentFamily::IntArray, 0.3, 1.5}},
        });
        p.sequentialFraction = 0.0;
        p.writeFraction = 0.5;
        p.thinkMean = 1.5;
    } else {
        fatal("unknown workload: " + name);
    }

    return std::make_unique<SyntheticWorkload>(p, core, cores, seed);
}

} // namespace tmcc
