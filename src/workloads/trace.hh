/**
 * @file
 * Access-trace capture and replay.
 *
 * Any workload engine can be wrapped in a TraceRecorder to capture its
 * reference stream to a compact binary file (regions + accesses), and a
 * TraceWorkload replays such a file as a first-class engine — useful
 * for sharing reproducible inputs, diffing architectures on an
 * identical stream, or importing externally generated traces.
 *
 * File layout (little-endian):
 *   magic "TMCCTRC1"
 *   u32 region_count
 *   per region: u64 base, u64 bytes,
 *               u32 family, f64 structure, f64 repetition,
 *               u16 name_len, name bytes
 *   u64 access_count
 *   per access: u64 vaddr, u8 isWrite, u8 thinkCycles (saturated)
 */

#ifndef TMCC_WORKLOADS_TRACE_HH
#define TMCC_WORKLOADS_TRACE_HH

#include <memory>
#include <string>

#include "workloads/workload.hh"

namespace tmcc
{

/** Record a finite window of another engine's stream to a file. */
class TraceRecorder
{
  public:
    /** Capture `count` accesses of `source` into `path`. */
    static void record(Workload &source, const std::string &path,
                       std::uint64_t count);
};

/** Replay a recorded trace; loops when the stream is exhausted. */
class TraceWorkload : public Workload
{
  public:
    explicit TraceWorkload(const std::string &path);

    const std::string &name() const override { return name_; }
    const std::vector<WlRegion> &regions() const override
    {
        return regions_;
    }
    MemAccess next() override;

    void
    saveState(ByteWriter &w) const override
    {
        w.u64(cursor_);
    }

    Status
    loadState(ByteReader &r) override
    {
        const std::uint64_t cursor = r.u64();
        TMCC_RETURN_IF_ERROR(r.finish("TraceWorkload state"));
        if (!accesses_.empty() && cursor >= accesses_.size())
            return Status::corruption("trace cursor out of range");
        cursor_ = cursor;
        return Status::okStatus();
    }

    std::uint64_t accessCount() const { return accesses_.size(); }

  private:
    std::string name_;
    std::vector<WlRegion> regions_;
    std::vector<MemAccess> accesses_;
    std::size_t cursor_ = 0;
};

} // namespace tmcc

#endif // TMCC_WORKLOADS_TRACE_HH
