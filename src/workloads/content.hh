/**
 * @file
 * Synthetic page-content families.
 *
 * The paper measures compression over real memory dumps (Fig. 15); we
 * have none, so each workload's pages draw from content families whose
 * byte-level structure mimics the dominant data of that workload class
 * (CSR adjacency data, pointer-dense heaps, text/key-value, floating
 * point arrays, ...).  Families are parameterized by a `structure`
 * knob in [0,1]: 1 = highly regular (compresses hard), 0 = max entropy.
 *
 * The ProfileLibrary runs the repository's real compressors over
 * sampled pages of each family to produce PageProfile records.
 */

#ifndef TMCC_WORKLOADS_CONTENT_HH
#define TMCC_WORKLOADS_CONTENT_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace tmcc
{

/** Content family of a page. */
enum class ContentFamily
{
    Zero,        //!< untouched / zeroed
    Text,        //!< log/text-like byte streams
    PointerHeap, //!< 8B pointers sharing high bits
    IntArray,    //!< 4B integers of bounded magnitude
    FloatArray,  //!< doubles with shared exponents
    GraphCsr,    //!< adjacency lists: skewed vertex ids, sorted runs
    KeyValue,    //!< mixed keys + values (RocksDB-like blocks)
    Random,      //!< incompressible
};

/** A content family with its structure knobs. */
struct ContentSpec
{
    ContentFamily family = ContentFamily::IntArray;
    double structure = 0.5; //!< 1 = very regular, 0 = max entropy

    /**
     * Page-scale repetition factor (>= 1): the page is assembled from
     * slices of a pool 1/repetition the page size.  Repetition at
     * 64B..1KB distances is visible to an LZ window but not to per-64B
     * block compressors -- the structural reason Deflate reaches ~3.4x
     * where block-level compression stalls at ~1.5x (Fig. 15).
     */
    double repetition = 1.0;

    bool
    operator==(const ContentSpec &o) const
    {
        return family == o.family && structure == o.structure &&
               repetition == o.repetition;
    }
};

/** Generate one 4KB page of the given family. */
std::vector<std::uint8_t> generateContent(const ContentSpec &spec,
                                          Rng &rng);

/** Printable family name. */
const char *contentFamilyName(ContentFamily family);

} // namespace tmcc

#endif // TMCC_WORKLOADS_CONTENT_HH
