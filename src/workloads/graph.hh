/**
 * @file
 * GraphBIG-style graph kernel engines over a hash-defined CSR graph.
 *
 * The paper evaluates IBM GraphBIG on an LDBC datagen social graph
 * (heavy-tailed degrees).  Rebuilding a multi-GB CSR in host memory is
 * unnecessary for address-stream fidelity: the graph here is *functional*
 * — degree(u) and neighbor(u, i) are deterministic hash functions with
 * a heavy-tailed hub set — so the engines emit the same kinds of
 * sequential CSR scans and irregular property-array dereferences as the
 * real kernels, at any scale, with O(1) memory.
 */

#ifndef TMCC_WORKLOADS_GRAPH_HH
#define TMCC_WORKLOADS_GRAPH_HH

#include <deque>

#include "common/rng.hh"
#include "workloads/workload.hh"

namespace tmcc
{

/** The nine GraphBIG kernels of Fig. 1/16/17. */
enum class GraphKernel
{
    PageRank,
    GraphColoring,
    ConnectedComponents,
    DegreeCentrality,
    ShortestPath,
    Bfs,
    Dfs,
    KCore,
    TriangleCount,
};

/** Graph shape parameters. */
struct GraphParams
{
    std::uint64_t vertices = 8ULL << 20; //!< 8M vertices
    double avgDegree = 8.0;
    std::uint64_t hubs = 1ULL << 16;     //!< hot high-degree vertex set
    double hubFraction = 0.15;           //!< neighbor refs hitting hubs
    double nearFraction = 0.25;          //!< neighbor refs near u
};

/** One core's engine for one kernel. */
class GraphWorkload : public Workload
{
  public:
    GraphWorkload(GraphKernel kernel, const GraphParams &params,
                  unsigned core, unsigned cores, std::uint64_t seed);

    const std::string &name() const override { return name_; }
    const std::vector<WlRegion> &regions() const override
    {
        return regions_;
    }
    MemAccess next() override;

    void saveState(ByteWriter &w) const override;
    Status loadState(ByteReader &r) override;

    /** Functional graph: degree of u (heavy-tailed, capped at 64). */
    unsigned degree(std::uint64_t u) const;

    /** Functional graph: i-th neighbor of u. */
    std::uint64_t neighbor(std::uint64_t u, unsigned i) const;

  private:
    void visitVertex(std::uint64_t u);
    std::uint64_t nextVertex();

    GraphKernel kernel_;
    GraphParams p_;
    std::string name_;
    std::vector<WlRegion> regions_;
    Rng rng_;

    Addr offsetsBase_, edgesBase_, propABase_, propBBase_, visitedBase_;
    std::uint64_t edgeBytesPerVertex_;

    std::uint64_t cursor_;       //!< sequential kernels
    std::uint64_t cursorStart_;
    std::uint64_t cursorEnd_;
    std::deque<std::uint64_t> frontier_; //!< BFS/SSSP queue, DFS stack
    std::deque<MemAccess> pending_;
};

/** Kernel from its benchmark name ("pageRank", "bfs", ...). */
GraphKernel graphKernelByName(const std::string &name);

} // namespace tmcc

#endif // TMCC_WORKLOADS_GRAPH_HH
