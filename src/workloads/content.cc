#include "workloads/content.hh"

#include <cstring>

#include "common/log.hh"

namespace tmcc
{

namespace
{

void
putQword(std::vector<std::uint8_t> &p, std::size_t at, std::uint64_t v)
{
    std::memcpy(p.data() + at, &v, 8);
}

void
putDword(std::vector<std::uint8_t> &p, std::size_t at, std::uint32_t v)
{
    std::memcpy(p.data() + at, &v, 4);
}

std::vector<std::uint8_t>
textPage(double structure, Rng &rng)
{
    // Words drawn from a vocabulary whose size shrinks with structure:
    // more structure = more repetition = better LZ matches.
    static const char *const vocab[] = {
        "the ",     "query ",   "key=",     "value:",   "GET ",
        "200 OK ",  "user_",    "session ", "index ",   "node ",
        "edge ",    "time=",    "count=",   "error ",   "warn ",
        "info ",    "request ", "response ", "cache ",  "miss ",
        "hit ",     "page ",    "alloc ",   "free ",    "lock ",
        "thread ",  "vertex ",  "weight ",  "rank ",    "batch ",
        "shard ",   "token ",
    };
    const std::size_t vocab_n = sizeof(vocab) / sizeof(vocab[0]);
    const auto effective = static_cast<std::size_t>(
        2 + (1.0 - structure) * (vocab_n - 2));

    std::vector<std::uint8_t> p;
    p.reserve(pageSize);
    while (p.size() < pageSize) {
        const char *w = vocab[rng.below(effective)];
        for (const char *c = w; *c != '\0' && p.size() < pageSize; ++c)
            p.push_back(static_cast<std::uint8_t>(*c));
        if (rng.chance(0.08) && p.size() + 12 < pageSize) {
            // Sprinkle numbers (semi-random digits).
            for (int d = 0; d < 6; ++d)
                p.push_back(
                    static_cast<std::uint8_t>('0' + rng.below(10)));
        }
    }
    p.resize(pageSize);
    return p;
}

std::vector<std::uint8_t>
pointerHeapPage(double structure, Rng &rng)
{
    std::vector<std::uint8_t> p(pageSize, 0);
    const std::uint64_t heap_base = 0x00005612'34000000ULL;
    // Structure controls the spread of the pointed-to arena and the
    // fraction of null/small-int slots.
    const unsigned spread_bits =
        static_cast<unsigned>(12 + (1.0 - structure) * 20);
    for (std::size_t at = 0; at + 8 <= pageSize; at += 8) {
        const double roll = rng.real();
        std::uint64_t v;
        if (roll < 0.15 * structure) {
            v = 0; // null pointer / empty slot
        } else if (roll < 0.3) {
            v = rng.below(4096); // small integer field
        } else {
            v = heap_base + ((rng.next() & ((1ULL << spread_bits) - 1))
                             << 4);
        }
        putQword(p, at, v);
    }
    return p;
}

std::vector<std::uint8_t>
intArrayPage(double structure, Rng &rng)
{
    std::vector<std::uint8_t> p(pageSize, 0);
    // Bounded-magnitude ints with occasional runs; structure controls
    // the magnitude bound.
    const unsigned mag_bits =
        static_cast<unsigned>(6 + (1.0 - structure) * 24);
    std::uint32_t run_val = 0;
    unsigned run_left = 0;
    for (std::size_t at = 0; at + 4 <= pageSize; at += 4) {
        if (run_left > 0) {
            --run_left;
        } else if (rng.chance(0.1 * structure)) {
            run_left = 4 + static_cast<unsigned>(rng.below(28));
            run_val = static_cast<std::uint32_t>(
                rng.next() & ((1u << mag_bits) - 1));
        } else {
            run_val = static_cast<std::uint32_t>(
                rng.next() & ((1u << mag_bits) - 1));
        }
        putDword(p, at, run_val);
    }
    return p;
}

std::vector<std::uint8_t>
floatArrayPage(double structure, Rng &rng)
{
    std::vector<std::uint8_t> p(pageSize, 0);
    // Doubles near a common magnitude: exponents and top mantissa bits
    // repeat; low mantissa bits are noise whose width tracks structure.
    const unsigned noise_bits =
        static_cast<unsigned>(12 + (1.0 - structure) * 40);
    const std::uint64_t base = 0x3fe8000000000000ULL; // ~0.75
    for (std::size_t at = 0; at + 8 <= pageSize; at += 8) {
        const std::uint64_t v =
            base | (rng.next() & ((1ULL << noise_bits) - 1));
        putQword(p, at, v);
    }
    return p;
}

std::vector<std::uint8_t>
graphCsrPage(double structure, Rng &rng)
{
    std::vector<std::uint8_t> p(pageSize, 0);
    // Adjacency data: sorted runs of vertex ids.  Hubs (a small hot set
    // of ids) recur constantly -- that repetition is what Deflate mines
    // and block-level compressors cannot (ids look random per-block).
    const std::uint32_t hub_count = 1u << 10;
    const std::uint32_t vertex_space = 1u << 24;
    std::size_t at = 0;
    while (at + 4 <= pageSize) {
        // One adjacency run: ascending ids with small gaps.
        std::uint32_t cur = static_cast<std::uint32_t>(
            rng.below(vertex_space / 2));
        const unsigned run = 4 + static_cast<unsigned>(rng.below(24));
        for (unsigned i = 0; i < run && at + 4 <= pageSize; ++i) {
            if (rng.chance(0.35 * structure + 0.1)) {
                // Hub reference: drawn from the small hot set.
                putDword(p, at,
                         static_cast<std::uint32_t>(
                             rng.zipf(hub_count, 1.4)));
            } else {
                cur += 1 + static_cast<std::uint32_t>(
                               rng.below(1u << static_cast<unsigned>(
                                             4 + (1.0 - structure) * 10)));
                putDword(p, at, cur);
            }
            at += 4;
        }
    }
    return p;
}

std::vector<std::uint8_t>
keyValuePage(double structure, Rng &rng)
{
    std::vector<std::uint8_t> p;
    p.reserve(pageSize);
    // Records: short shared-prefix key + mixed-entropy value.
    while (p.size() + 32 <= pageSize) {
        const char *prefix = "user:2026:";
        for (const char *c = prefix; *c; ++c)
            p.push_back(static_cast<std::uint8_t>(*c));
        for (int d = 0; d < 8; ++d)
            p.push_back(static_cast<std::uint8_t>('0' + rng.below(10)));
        p.push_back('=');
        const unsigned value_len = 8 + static_cast<unsigned>(
                                           rng.below(16));
        for (unsigned i = 0; i < value_len; ++i) {
            if (rng.chance(structure))
                p.push_back(static_cast<std::uint8_t>(
                    'a' + rng.below(16)));
            else
                p.push_back(static_cast<std::uint8_t>(rng.below(256)));
        }
    }
    p.resize(pageSize, 0);
    return p;
}

std::vector<std::uint8_t>
randomPage(Rng &rng)
{
    std::vector<std::uint8_t> p(pageSize);
    for (auto &b : p)
        b = static_cast<std::uint8_t>(rng.below(256));
    return p;
}

} // namespace

namespace
{

std::vector<std::uint8_t>
generateBase(const ContentSpec &spec, Rng &rng)
{
    switch (spec.family) {
      case ContentFamily::Zero:
        return std::vector<std::uint8_t>(pageSize, 0);
      case ContentFamily::Text:
        return textPage(spec.structure, rng);
      case ContentFamily::PointerHeap:
        return pointerHeapPage(spec.structure, rng);
      case ContentFamily::IntArray:
        return intArrayPage(spec.structure, rng);
      case ContentFamily::FloatArray:
        return floatArrayPage(spec.structure, rng);
      case ContentFamily::GraphCsr:
        return graphCsrPage(spec.structure, rng);
      case ContentFamily::KeyValue:
        return keyValuePage(spec.structure, rng);
      case ContentFamily::Random:
        return randomPage(rng);
    }
    panic("unknown content family");
}

} // namespace

std::vector<std::uint8_t>
generateContent(const ContentSpec &spec, Rng &rng)
{
    std::vector<std::uint8_t> base = generateBase(spec, rng);
    if (spec.repetition <= 1.0)
        return base;

    // Interleave fresh bytes with copies of *recent* output: data
    // structures repeat at short distances (record/object granularity),
    // which a 1KB LZ CAM can mine but per-64B block compressors cannot
    // (see ContentSpec::repetition).  Keeping copy distances below 1KB
    // matches the paper's observation that a small CAM costs little.
    const double fresh_p = 1.0 / spec.repetition;
    std::vector<std::uint8_t> page;
    page.reserve(base.size());
    std::size_t cursor = 0;
    // Seed with fresh content so copies have a source.
    const std::size_t seed_bytes = 192;
    page.insert(page.end(), base.begin(),
                base.begin() + std::min(seed_bytes, base.size()));
    cursor = page.size();
    while (page.size() < base.size()) {
        const std::size_t remaining = base.size() - page.size();
        if (rng.chance(fresh_p)) {
            std::size_t len = std::min<std::size_t>(
                48 + rng.below(144), remaining);
            len = std::min(len, base.size() - cursor);
            if (len == 0) {
                cursor = 0;
                continue;
            }
            page.insert(page.end(), base.begin() + cursor,
                        base.begin() + cursor + len);
            cursor += len;
        } else {
            const std::size_t reach =
                std::min<std::size_t>(page.size(), 900);
            const std::size_t len = std::min<std::size_t>(
                32 + rng.below(128), remaining);
            const std::size_t start =
                page.size() - reach + rng.below(reach);
            for (std::size_t i = 0; i < len; ++i)
                page.push_back(page[start + i]);
        }
    }
    return page;
}

const char *
contentFamilyName(ContentFamily family)
{
    switch (family) {
      case ContentFamily::Zero: return "zero";
      case ContentFamily::Text: return "text";
      case ContentFamily::PointerHeap: return "pointer-heap";
      case ContentFamily::IntArray: return "int-array";
      case ContentFamily::FloatArray: return "float-array";
      case ContentFamily::GraphCsr: return "graph-csr";
      case ContentFamily::KeyValue: return "key-value";
      case ContentFamily::Random: return "random";
    }
    return "?";
}

} // namespace tmcc
