#include "workloads/graph.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace tmcc
{

namespace
{

/** Mixing hash for the functional graph. */
std::uint64_t
mix(std::uint64_t a, std::uint64_t b = 0x9e3779b97f4a7c15ULL)
{
    std::uint64_t x = a + b;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

constexpr Addr regionAlign = 1ULL << 21; // 2MB region alignment

Addr
alignUp(Addr a)
{
    return (a + regionAlign - 1) & ~(regionAlign - 1);
}

} // namespace

GraphKernel
graphKernelByName(const std::string &name)
{
    if (name == "pageRank") return GraphKernel::PageRank;
    if (name == "graphCol") return GraphKernel::GraphColoring;
    if (name == "connComp") return GraphKernel::ConnectedComponents;
    if (name == "degCentr") return GraphKernel::DegreeCentrality;
    if (name == "shortestPath") return GraphKernel::ShortestPath;
    if (name == "bfs") return GraphKernel::Bfs;
    if (name == "dfs") return GraphKernel::Dfs;
    if (name == "kcore") return GraphKernel::KCore;
    if (name == "triCount") return GraphKernel::TriangleCount;
    fatal("unknown graph kernel: " + name);
}

GraphWorkload::GraphWorkload(GraphKernel kernel, const GraphParams &params,
                             unsigned core, unsigned cores,
                             std::uint64_t seed)
    : kernel_(kernel), p_(params), rng_(seed * 1000003 + core)
{
    switch (kernel) {
      case GraphKernel::PageRank: name_ = "pageRank"; break;
      case GraphKernel::GraphColoring: name_ = "graphCol"; break;
      case GraphKernel::ConnectedComponents: name_ = "connComp"; break;
      case GraphKernel::DegreeCentrality: name_ = "degCentr"; break;
      case GraphKernel::ShortestPath: name_ = "shortestPath"; break;
      case GraphKernel::Bfs: name_ = "bfs"; break;
      case GraphKernel::Dfs: name_ = "dfs"; break;
      case GraphKernel::KCore: name_ = "kcore"; break;
      case GraphKernel::TriangleCount: name_ = "triCount"; break;
    }

    const std::uint64_t v = p_.vertices;
    edgeBytesPerVertex_ = static_cast<std::uint64_t>(p_.avgDegree * 4.0);

    Addr base = 1ULL << 30; // regions start at 1GB
    auto add_region = [&](const std::string &rname, std::uint64_t bytes,
                          ContentSpec spec) {
        WlRegion r;
        r.name = rname;
        r.base = base;
        r.bytes = alignUp(bytes);
        r.content = spec;
        regions_.push_back(r);
        base = alignUp(base + r.bytes);
        return r.base;
    };

    // Content tuned to Table IV: block-level (Compresso) ~1.27x,
    // page-level Deflate ~3.0x for the GraphBIG set.
    offsetsBase_ = add_region("offsets", 8 * (v + 1),
                              {ContentFamily::IntArray, 0.5, 3.0});
    edgesBase_ = add_region("edges", edgeBytesPerVertex_ * v,
                            {ContentFamily::GraphCsr, 0.7, 4.0});
    propABase_ = add_region("propA", 8 * v,
                            {ContentFamily::FloatArray, 0.6, 3.5});
    propBBase_ = add_region("propB", 8 * v,
                            {ContentFamily::FloatArray, 0.6, 3.5});
    visitedBase_ = add_region("visited", std::max<std::uint64_t>(
                                             v / 8, pageSize),
                              {ContentFamily::IntArray, 0.7, 3.0});

    // Partition the vertex range across cores (multi-threaded kernels).
    cursorStart_ = core * (v / cores);
    cursor_ = cursorStart_;
    cursorEnd_ = (core + 1) * (v / cores);
    if (cursorEnd_ > v || core + 1 == cores)
        cursorEnd_ = v;
}

unsigned
GraphWorkload::degree(std::uint64_t u) const
{
    const std::uint64_t h = mix(u, 0x5bd1e995);
    // Heavy tail: ~2% of vertices are high-degree hubs.
    if (h % 50 == 0)
        return 48 + static_cast<unsigned>(h % 17);
    return 1 + static_cast<unsigned>(
                   h % static_cast<std::uint64_t>(2 * p_.avgDegree));
}

std::uint64_t
GraphWorkload::neighbor(std::uint64_t u, unsigned i) const
{
    const std::uint64_t h = mix(u * 131 + i, 0xabcdef123);
    const double roll =
        static_cast<double>(h % 1000003) / 1000003.0;
    if (roll < p_.hubFraction)
        return mix(h, 17) % p_.hubs; // hot hub set
    if (roll < p_.hubFraction + p_.nearFraction) {
        // Community-local neighbor.
        const std::int64_t delta =
            static_cast<std::int64_t>(h % 8192) - 4096;
        const std::int64_t cand =
            static_cast<std::int64_t>(u) + delta;
        if (cand >= 0 &&
            cand < static_cast<std::int64_t>(p_.vertices))
            return static_cast<std::uint64_t>(cand);
    }
    // Power-law destination: real social-graph edge endpoints follow
    // the degree distribution, so low-id (high-degree) vertices absorb
    // most references -- that page-level skew is what lets ML1 capture
    // the hot mass (§IV).
    const double frac =
        static_cast<double>(h >> 11) * 0x1.0p-53;
    const double skewed = frac * frac * frac * frac;
    return static_cast<std::uint64_t>(
        static_cast<double>(p_.vertices - 1) * skewed);
}

std::uint64_t
GraphWorkload::nextVertex()
{
    switch (kernel_) {
      case GraphKernel::Bfs:
      case GraphKernel::ShortestPath:
        if (!frontier_.empty()) {
            const std::uint64_t u = frontier_.front();
            frontier_.pop_front();
            return u;
        }
        // Restart from a new source; sources follow the same skewed
        // endpoint distribution (traversals start from queried, i.e.
        // popular, vertices).
        return neighbor(rng_.next(), 0);
      case GraphKernel::Dfs:
        if (!frontier_.empty()) {
            const std::uint64_t u = frontier_.back(); // stack
            frontier_.pop_back();
            return u;
        }
        return neighbor(rng_.next(), 0);
      default: {
        const std::uint64_t u = cursor_++;
        if (cursor_ >= cursorEnd_)
            cursor_ = cursorStart_; // next sweep over the partition
        return u;
      }
    }
}

void
GraphWorkload::visitVertex(std::uint64_t u)
{
    // CSR offset lookup (two adjacent 8B entries; one block usually).
    pending_.push_back({offsetsBase_ + 8 * u, false, 3});

    const unsigned d = degree(u);
    const Addr edge_base = edgesBase_ + u * edgeBytesPerVertex_;

    for (unsigned i = 0; i < d; ++i) {
        if (i % 16 == 0) // sequential scan of the adjacency list
            pending_.push_back({edge_base + i * 4, false, 1});

        const std::uint64_t v = neighbor(u, i);
        switch (kernel_) {
          case GraphKernel::PageRank:
            pending_.push_back({propABase_ + 8 * v, false, 2});
            break;
          case GraphKernel::ConnectedComponents:
          case GraphKernel::GraphColoring:
            pending_.push_back({propABase_ + 8 * v, false, 2});
            // Label/color updates happen only when the propagation
            // actually changes the value.
            if (rng_.chance(0.1))
                pending_.push_back({propBBase_ + 8 * v, true, 1});
            break;
          case GraphKernel::DegreeCentrality:
            break; // pure CSR scan: regular
          case GraphKernel::Bfs:
          case GraphKernel::Dfs:
            pending_.push_back({visitedBase_ + v / 8, false, 2});
            if (rng_.chance(0.35)) {
                pending_.push_back({visitedBase_ + v / 8, true, 1});
                if (frontier_.size() < 4096)
                    frontier_.push_back(v);
            }
            break;
          case GraphKernel::ShortestPath:
            pending_.push_back({propABase_ + 8 * v, false, 2});
            if (rng_.chance(0.3)) {
                pending_.push_back({propABase_ + 8 * v, true, 1});
                if (frontier_.size() < 4096)
                    frontier_.push_back(v);
            }
            break;
          case GraphKernel::KCore:
            // Degree decrements only when a neighbor was just removed.
            if (rng_.chance(0.12))
                pending_.push_back({propABase_ + 4 * v, true, 1});
            break;
          case GraphKernel::TriangleCount: {
            // Intersect adj(u) with adj(v).  Triangle counting walks
            // vertices in sorted order and triangles live inside
            // communities, so the intersected lists cluster near u's
            // in id space: high locality, low CTE/TLB miss (Fig. 2).
            const std::uint64_t w =
                std::min<std::uint64_t>(u + 1 + (v % 512),
                                        p_.vertices - 1);
            const unsigned dv = std::min(degree(w), 32u);
            const Addr v_base = edgesBase_ + w * edgeBytesPerVertex_;
            for (unsigned b = 0; b * 16 < dv; ++b)
                pending_.push_back({v_base + b * blockSize, false, 2});
            break;
          }
        }
    }

    // Per-vertex result write.
    switch (kernel_) {
      case GraphKernel::PageRank:
      case GraphKernel::DegreeCentrality:
      case GraphKernel::GraphColoring:
      case GraphKernel::ConnectedComponents:
        pending_.push_back({propBBase_ + 8 * u, true, 2});
        break;
      case GraphKernel::KCore:
        pending_.push_back({propABase_ + 4 * u, false, 1});
        break;
      default:
        break;
    }
}

MemAccess
GraphWorkload::next()
{
    while (pending_.empty())
        visitVertex(nextVertex());
    const MemAccess a = pending_.front();
    pending_.pop_front();
    return a;
}

void
GraphWorkload::saveState(ByteWriter &w) const
{
    for (std::uint64_t word : rng_.state())
        w.u64(word);
    w.u64(cursor_);
    w.u64(frontier_.size());
    for (std::uint64_t v : frontier_)
        w.u64(v);
    w.u64(pending_.size());
    for (const MemAccess &a : pending_) {
        w.u64(a.vaddr);
        w.u8(a.isWrite ? 1 : 0);
        w.u32(a.thinkCycles);
    }
}

Status
GraphWorkload::loadState(ByteReader &r)
{
    std::array<std::uint64_t, 4> s;
    for (auto &word : s)
        word = r.u64();
    const std::uint64_t cursor = r.u64();
    std::deque<std::uint64_t> frontier;
    const std::uint64_t frontierCount = r.count(8);
    for (std::uint64_t i = 0; i < frontierCount && r.ok(); ++i)
        frontier.push_back(r.u64());
    std::deque<MemAccess> pending;
    const std::uint64_t pendingCount = r.count(13);
    for (std::uint64_t i = 0; i < pendingCount && r.ok(); ++i) {
        MemAccess a;
        a.vaddr = r.u64();
        a.isWrite = r.u8() != 0;
        a.thinkCycles = r.u32();
        pending.push_back(a);
    }
    TMCC_RETURN_IF_ERROR(r.finish("GraphWorkload state"));
    if (cursor < cursorStart_ || cursor > cursorEnd_)
        return Status::corruption("graph cursor out of range");
    rng_.setState(s);
    cursor_ = cursor;
    frontier_ = std::move(frontier);
    pending_ = std::move(pending);
    return Status::okStatus();
}

} // namespace tmcc
