/**
 * @file
 * The assembled simulated system (§VI): cores with TLBs and page
 * walkers, the cache hierarchy, one of the MC architectures, and the
 * DRAM back end, driven by workload engines.
 *
 * The run proceeds in the paper's phases: map the address space, warm
 * placement (touch-count ordering stands in for the KVM fast-forward),
 * ML1/ML2 + cache/TLB warm-up, then a measured window.
 */

#ifndef TMCC_SIM_SYSTEM_HH
#define TMCC_SIM_SYSTEM_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hh"
#include "compresso/compresso_mc.hh"
#include "dram/dram_system.hh"
#include "mc/mem_controller.hh"
#include "sim/checkpoint.hh"
#include "sim/sim_config.hh"
#include "sim/sim_result.hh"
#include "tmcc/cte_buffer.hh"
#include "tmcc/os_mc.hh"
#include "vm/page_table.hh"
#include "vm/phys_mem.hh"
#include "vm/tlb.hh"
#include "vm/walker.hh"
#include "workloads/profile_library.hh"
#include "workloads/workload.hh"

namespace tmcc
{

template <class Traits> struct AccessEngine;
struct SystemKernel;

/** One simulated machine + workload. */
class System
{
  public:
    /**
     * Build a system cold, or — when `restore` is non-null — rebuild
     * the setup phase from a SetupCheckpoint captured for the same
     * invariant config subset (SetupCheckpoint::keyFor must match).
     */
    explicit System(
        const SimConfig &cfg,
        std::shared_ptr<const SetupCheckpoint> restore = nullptr);

    /** Run all phases; returns the measured-window results. */
    SimResult run();

    /**
     * Phase 1: the fast-forward stand-in (touch-count placement) or,
     * on a restoring System, the checkpoint replay.  With `capture`
     * the arch-invariant state at the phase boundary is recorded for
     * captureCheckpoint(); capturing does not perturb the run.
     */
    void setup(bool capture = false);

    /** The checkpoint recorded by setup(capture=true). */
    std::shared_ptr<const SetupCheckpoint> captureCheckpoint() const;

    /** Phase 2: warm window + measured window (runs setup if needed). */
    SimResult measure();

    bool restoredFromCheckpoint() const { return restore_ != nullptr; }

    // Component access for tests and benches.
    PhysMem &physMem() { return *physMem_; }
    PageTable &pageTable() { return *pageTable_; }
    Hierarchy &hierarchy() { return *hierarchy_; }
    DramSystem &dram() { return *dram_; }
    MemController &mc() { return *mc_; }
    OsInspiredMc *osMc() { return osMc_; }
    CompressoMc *compressoMc() { return compressoMc_; }
    ProfileLibrary &profiles() { return profiles_; }
    Tlb &tlb(unsigned core) { return *tlbs_[core]; }
    const SimConfig &config() const { return cfg_; }
    std::uint64_t footprintBytes() const { return footprintBytes_; }

  private:
    struct CoreState
    {
        Tick now = 0;
        std::uint64_t accesses = 0;
        /** Store-buffer slots: completion times of in-flight stores. */
        std::vector<Tick> storeSlots = std::vector<Tick>(16, 0);
    };

    /** The arch-invariant Compresso-usage estimate (drives MC sizing). */
    struct SetupEstimates
    {
        std::uint64_t compressoUsage = 0;
        std::uint64_t ml2CostTotal = 0;
        std::uint64_t incompressiblePages = 0;
        std::uint64_t compressiblePages = 0;
    };

    /** Scratch recorded by warmPlacement for checkpoint capture. */
    struct CaptureScratch
    {
        std::vector<Ppn> touchedFrames;
        std::vector<Ppn> regionFrames;
        std::vector<std::vector<std::uint8_t>> workloadStates;
    };

    void buildWorkloads();
    /** Cold setup: size memories, build tables, estimate usage. */
    void coldConstruct();
    /** Restoring setup: rebuild memories/tables from the checkpoint. */
    void restoreConstruct();
    /** Arch-specific MC + per-core structures (both paths). */
    void buildMcAndCores();
    void mapAddressSpace();
    void warmPlacement(CaptureScratch *capture);
    /** Re-seed the MC metadata layers from the recorded orderings. */
    void replayPlacement();

    /** Workload regions deduped by base address. */
    std::unordered_map<Addr, const WlRegion *> regionMap() const;

    /** Host frame backing a (possibly guest) page number. */
    Ppn dataFrame(Ppn ppn) const;

    // The per-access pipeline lives in AccessEngine<Traits>
    // (sim/access_path.hh), instantiated once with scalar mechanics
    // (the oracle) and once with batched mechanics; SystemKernel
    // (sim/kernel_batch.cc) holds the batched drivers.  Both need the
    // private state.
    template <class Traits> friend struct AccessEngine;
    friend struct SystemKernel;

    /** Reject invalid --sample / --stats-interval combinations. */
    void validateRunConfig() const;

    /** Run `per_core` detailed warm-up accesses on every core. */
    void runWarm(std::uint64_t per_core);

    /**
     * The measured loop: interleave cores by local time until every
     * core has retired `quota` measured accesses, snapshotting epochs
     * when configured.  `use_ring` lets the batched kernel refill its
     * access ring in blocks; sampled windows pass false so no access
     * beyond the window is prefetched from the workload stream.
     */
    void runMeasuredLoop(std::uint64_t quota, bool use_ring);

    /** Functionally fast-forward `per_core` accesses per core. */
    void fastForward(std::uint64_t per_core);

    /** One functional access (defined in sim/access_path.hh). */
    void ffStep(unsigned core, const MemAccess &a);

    /**
     * Per-core MRU block filter for the fast-forward path: a run of
     * consecutive accesses to one block is an L1-hit run in the
     * detailed model, where it touches no state below L1 and leaves
     * L1's relative LRU order unchanged — so fast-forward can skip
     * everything but the first access (and the first write, which
     * must dirty the L1 copy).  Reset at every fast-forward leg:
     * detailed windows in between may have evicted the cached block.
     */
    struct FfFilter
    {
        Addr vblock = invalidAddr; //!< virtual block of the last access
        Addr pblock = invalidAddr; //!< its physical block
        bool dirty = false;        //!< L1 copy already marked dirty
    };

    /** The exact (non-sampled) measurement: warm + full window. */
    SimResult measureExact();

    /** SMARTS-style interval sampling: k detailed windows + CI. */
    SimResult measureSampled();

    void collectPtbCtes(unsigned core, Addr ptb_addr);

    /**
     * Dump every component's counters plus the measured-window
     * pipeline counters ("sys.*") and latency histograms.  Used for
     * the end-of-run StatDump and for each epoch snapshot.
     */
    void dumpAllStats(StatDump &dump) const;

    /** Record one epoch: per-key deltas vs. the previous snapshot. */
    void snapshotEpoch(Tick now);

    SimConfig cfg_;
    Tick cpuPeriod_;
    std::shared_ptr<const SetupCheckpoint> restore_;
    std::shared_ptr<const SetupCheckpoint> captured_;
    SetupEstimates estimates_;
    bool setupDone_ = false;
    double setupSeconds_ = 0.0;
    std::uint64_t tracePid_ = 0;

    std::unique_ptr<PhysMem> physMem_;
    std::unique_ptr<PageTable> pageTable_;

    // Nested paging (§V-A3): the workload table above becomes the
    // guest table (built in guestPhysMem_); hostTable_ lives in
    // physMem_ and maps guest-physical frames to host frames.
    std::unique_ptr<PhysMem> guestPhysMem_;
    std::unique_ptr<PageTable> hostTable_;
    std::vector<std::unique_ptr<Walker>> hostWalkers_;
    std::unique_ptr<Hierarchy> hierarchy_;
    std::unique_ptr<DramSystem> dram_;
    ProfileLibrary profiles_;

    std::unique_ptr<MemController> mc_;
    OsInspiredMc *osMc_ = nullptr;       //!< set when arch is OS-based
    CompressoMc *compressoMc_ = nullptr; //!< set when arch is Compresso

    std::vector<std::unique_ptr<Workload>> workloads_;
    std::vector<std::unique_ptr<Tlb>> tlbs_;
    std::vector<std::unique_ptr<Walker>> walkers_;
    std::vector<std::unique_ptr<CteBuffer>> cteBuffers_;
    std::vector<CoreState> cores_;
    std::vector<FfFilter> ffFilter_;

    std::uint64_t footprintBytes_ = 0;
    std::unordered_map<Addr, unsigned> regionMix_; //!< base -> mix id

    // Measured-window accumulators.
    SimResult result_;
    /** Tenant of the access in flight (set by AccessEngine::step so
     * memoryAccess can attribute ML2 faults; 0 outside memcloud). */
    std::uint16_t curTenant_ = 0;
    Average l3MissLatency_;
    Tick measureStart_ = 0;
    Tick busReadsAtStart_ = 0, busWritesAtStart_ = 0;

    // Epoch-snapshot state (active only when cfg_.statsInterval > 0).
    StatDump prevEpoch_;
    std::uint64_t prevEpochAccesses_ = 0;
    std::uint64_t nextEpochAt_ = 0;
};

/**
 * Drivers of the batched kernel (`--kernel=batch`): ring-buffered
 * workload fetch feeding AccessEngine<BatchTraits>.  Defined in
 * sim/kernel_batch.cc; System dispatches here when configured.
 */
struct SystemKernel
{
    static void warm(System &sys, std::uint64_t per_core);
    static void measured(System &sys, std::uint64_t quota,
                         bool use_ring);
    static void fastForward(System &sys, std::uint64_t per_core);

  private:
    template <bool Tracing>
    static void warmImpl(System &sys, std::uint64_t per_core);
    template <bool Tracing, bool Epochs>
    static void measuredImpl(System &sys, std::uint64_t quota,
                             std::size_t refill);
};

} // namespace tmcc

#endif // TMCC_SIM_SYSTEM_HH
