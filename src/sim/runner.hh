/**
 * @file
 * SimRunner: runs a batch of independent simulations on a worker-thread
 * pool.
 *
 * Every experiment harness in bench/ sweeps a grid of SimConfigs whose
 * runs share nothing (each System owns its DRAM, caches, workloads and
 * RNG streams), so the grid is embarrassingly parallel.  SimRunner
 * dispatches the batch over N threads and returns results in submission
 * order; with the same configs the results are bit-identical to running
 * the batch serially.
 *
 * The worker count comes from the TMCC_JOBS environment variable when
 * set (a positive integer), else from std::thread::hardware_concurrency.
 */

#ifndef TMCC_SIM_RUNNER_HH
#define TMCC_SIM_RUNNER_HH

#include <vector>

#include "sim/sim_config.hh"
#include "sim/sim_result.hh"

namespace tmcc
{

class SimRunner
{
  public:
    /** `jobs` = worker threads; 0 = defaultJobs(). */
    explicit SimRunner(unsigned jobs = 0);

    /**
     * Process-wide setup/measured wall-clock totals across every run
     * dispatched through SimRunner (the BenchReport phase split).
     */
    struct PhaseTotals
    {
        double setupSeconds = 0.0;
        double measureSeconds = 0.0;
        std::uint64_t runs = 0;
        std::uint64_t restoredRuns = 0;
    };
    static PhaseTotals phaseTotals();
    static void resetPhaseTotals(); //!< tests

    /**
     * Fold a run executed in another process (a sweep shard worker)
     * into this process's phase totals, so sharded sweeps report the
     * same setup/measure split and run counts as in-process ones.
     */
    static void recordExternalRun(const SimResult &result);

    /**
     * TMCC_JOBS if set (rejects non-numeric or nonpositive values with
     * a clear fatal error), else hardware_concurrency, else 1.
     */
    static unsigned defaultJobs();

    unsigned jobs() const { return jobs_; }

    /**
     * Run every config and return the results in submission order.
     * Batches of one (or jobs() == 1) run inline on the caller's
     * thread.  Exceptions from a worker are rethrown on the caller,
     * earliest-submitted first.
     */
    std::vector<SimResult> run(const std::vector<SimConfig> &configs) const;

  private:
    unsigned jobs_;
};

/** One-shot convenience: SimRunner(jobs).run(configs). */
std::vector<SimResult> runConfigs(const std::vector<SimConfig> &configs,
                                  unsigned jobs = 0);

} // namespace tmcc

#endif // TMCC_SIM_RUNNER_HH
