#include "sim/sweep_daemon.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/log.hh"
#include "sim/checkpoint.hh"
#include "sim/runner.hh"
#include "sim/sweep_manifest.hh"

namespace tmcc
{

namespace
{

namespace fs = std::filesystem;

std::string
defaultWorkerId()
{
    char host[256] = "unknown-host";
    if (::gethostname(host, sizeof(host) - 1) != 0)
        std::snprintf(host, sizeof(host), "unknown-host");
    host[sizeof(host) - 1] = '\0';
    return std::string(host) + ":" + std::to_string(::getpid());
}

/** Sleep `seconds` in small slices, returning early when `stop` set. */
void
interruptibleSleep(double seconds, const std::atomic<bool> &stop)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(seconds);
    while (!stop.load() &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

/** A CRC-clean result for this grid already exists. */
bool
shardResultValid(const std::string &dir, const std::string &gridKey,
                 std::uint32_t shardId)
{
    std::error_code ec;
    const std::string path = sweepShardFile(dir, shardId, "result");
    if (!fs::exists(path, ec))
        return false;
    auto loaded = ShardResultFile::load(path);
    return loaded.ok() && loaded.value().gridKey == gridKey;
}

} // namespace

void
DaemonOptions::validate() const
{
    fatalIf(queueDir.empty(),
            "tmcc_simd needs a queue directory (--serve DIR)");
    fatalIf(!std::isfinite(leaseSeconds) || leaseSeconds <= 0.0,
            "daemon lease must be a positive number of seconds");
    fatalIf(!std::isfinite(pollSeconds) || pollSeconds <= 0.0,
            "daemon poll interval must be a positive number of seconds");
}

SweepDaemon::SweepDaemon(DaemonOptions opts) : opts_(std::move(opts))
{
    opts_.validate();
    if (opts_.workerId.empty())
        opts_.workerId = defaultWorkerId();
}

SweepDaemon::Stats
SweepDaemon::stats() const
{
    Stats s;
    s.scans = scans_.load();
    s.sweepsSeen = sweepsSeen_.load();
    s.shardsServed = shardsServed_.load();
    s.configsRun = configsRun_.load();
    s.reclaims = reclaims_.load();
    s.claimsLost = claimsLost_.load();
    s.leasesLost = leasesLost_.load();
    return s;
}

std::uint64_t
SweepDaemon::serve()
{
    if (opts_.verbose)
        std::printf("[simd %s] serving %s (lease %.1fs, poll %.1fs%s)\n",
                    opts_.workerId.c_str(), opts_.queueDir.c_str(),
                    opts_.leaseSeconds, opts_.pollSeconds,
                    opts_.once ? ", drain-once" : "");
    while (!stop_.load()) {
        bool idle = true;
        const bool served = scanOnce(idle);
        if (opts_.maxShards != 0 &&
            shardsServed_.load() >= opts_.maxShards)
            break;
        if (opts_.once && idle)
            break;
        if (!served)
            interruptibleSleep(opts_.pollSeconds, stop_);
    }
    if (opts_.verbose) {
        const Stats s = stats();
        std::printf("[simd %s] exiting: %llu shards (%llu configs) "
                    "served, %llu reclaims, %llu claim races lost, "
                    "%llu leases lost\n",
                    opts_.workerId.c_str(),
                    static_cast<unsigned long long>(s.shardsServed),
                    static_cast<unsigned long long>(s.configsRun),
                    static_cast<unsigned long long>(s.reclaims),
                    static_cast<unsigned long long>(s.claimsLost),
                    static_cast<unsigned long long>(s.leasesLost));
    }
    return shardsServed_.load();
}

bool
SweepDaemon::scanOnce(bool &idle)
{
    scans_.fetch_add(1);
    idle = true;

    // Enqueued sweeps, in stable (name) order so a fleet of daemons
    // converges on the same sweep instead of spreading thin.
    std::vector<std::string> sweeps;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(
             opts_.queueDir, fs::directory_options::skip_permission_denied,
             ec)) {
        if (!entry.is_directory(ec))
            continue;
        const std::string dir = entry.path().string();
        if (fs::exists(sweepRequestPath(dir), ec))
            sweeps.push_back(dir);
    }
    std::sort(sweeps.begin(), sweeps.end());

    bool served = false;
    for (const std::string &dir : sweeps) {
        auto req_or = QueueRequest::load(sweepRequestPath(dir));
        if (!req_or.ok()) {
            warn("queue request rejected in " + dir + ": " +
                 req_or.status().toString());
            continue;
        }
        const QueueRequest &req = req_or.value();
        if (sweepsSeenNames_.insert(dir).second)
            sweepsSeen_.fetch_add(1);

        for (std::uint32_t shard = 0; shard < req.shardCount;
             ++shard) {
            if (stop_.load())
                return served;
            if (opts_.maxShards != 0 &&
                shardsServed_.load() >= opts_.maxShards)
                return served;
            if (shardResultValid(dir, req.gridKey, shard))
                continue;
            idle = false; // work exists, even if someone else holds it
            served |= serveShard(dir, req, shard);
        }
    }
    return served;
}

bool
SweepDaemon::serveShard(const std::string &sweepDir,
                        const QueueRequest &req, std::uint32_t shardId)
{
    ClaimAttempt ca = tryClaimShard(sweepDir, req.gridKey, shardId,
                                    opts_.workerId, opts_.leaseSeconds);
    if (!ca.claimed) {
        if (ca.reason.rfind("lost claim race", 0) == 0)
            claimsLost_.fetch_add(1);
        return false;
    }
    if (ca.reclaimed) {
        reclaims_.fetch_add(1);
        if (opts_.verbose)
            std::printf("[simd %s] reclaimed stale lease on shard %u "
                        "of %s (attempt %u)\n",
                        opts_.workerId.c_str(), shardId,
                        sweepDir.c_str(), ca.claim.attempt);
    }
    ShardClaim claim = ca.claim;

    // Publication/release race: the previous owner may have published
    // between our result check and our claim.
    if (shardResultValid(sweepDir, req.gridKey, shardId)) {
        releaseShardClaim(sweepDir, claim);
        return false;
    }

    auto spec_or =
        ShardSpec::load(sweepShardFile(sweepDir, shardId, "spec"));
    if (!spec_or.ok() || spec_or.value().gridKey != req.gridKey) {
        warn("shard " + std::to_string(shardId) + " spec unusable in " +
             sweepDir + (spec_or.ok() ? " (grid key mismatch)"
                                      : ": " +
                                            spec_or.status().toString()));
        releaseShardClaim(sweepDir, claim);
        return false;
    }
    const ShardSpec &spec = spec_or.value();

    if (opts_.verbose)
        std::printf("[simd %s] shard %u of %s: %zu configs, attempt "
                    "%u\n",
                    opts_.workerId.c_str(), shardId, sweepDir.c_str(),
                    spec.configs.size(), claim.attempt);

    // Share warm setup checkpoints across every worker of this sweep
    // unless the operator configured a checkpoint dir explicitly.
    CheckpointStore &store = CheckpointStore::global();
    if (opts_.defaultCkptDir && store.enabled() &&
        store.diskDir().empty())
        store.setDiskDir(sweepDir + "/ckpt");
    const CheckpointStore::Stats ck_before = store.stats();

    // Heartbeat: renew the lease every lease/3 while the shard runs.
    // Renewal failure means the lease was reclaimed out from under us
    // (we stalled past it); the shard must then be abandoned without
    // publishing.  `claim` is owned by this thread until the join.
    std::atomic<bool> hb_stop{false};
    std::atomic<bool> lease_lost{false};
    std::thread heartbeat([&] {
        const double period = std::max(opts_.leaseSeconds / 3.0, 0.05);
        for (;;) {
            interruptibleSleep(period, hb_stop);
            if (hb_stop.load())
                return;
            const Status st = renewShardClaim(sweepDir, claim);
            if (!st.ok()) {
                warn("shard " + std::to_string(shardId) +
                     " heartbeat failed: " + st.toString());
                lease_lost.store(true);
                return;
            }
        }
    });

    const unsigned jobs =
        opts_.jobs ? opts_.jobs
                   : (spec.workerJobs ? spec.workerJobs : 1);
    SimRunner runner(jobs);

    ShardResultFile file;
    file.gridKey = spec.gridKey;
    file.shardId = spec.shardId;
    file.attempt = claim.attempt;
    file.configIndices = spec.configIndices;

    ShardProgress prog;
    prog.gridKey = spec.gridKey;
    prog.shardId = spec.shardId;
    prog.attempt = claim.attempt;
    prog.owner = opts_.workerId;
    prog.configsTotal = spec.configs.size();

    bool abandoned = false;
    for (std::size_t i = 0; i < spec.configs.size(); ++i) {
        if (lease_lost.load() || stop_.load()) {
            abandoned = true;
            break;
        }
        file.results.push_back(runner.run({spec.configs[i]}).front());
        configsRun_.fetch_add(1);

        if (i == 0 &&
            sweepTestHookFires("TMCC_QUEUE_TEST_KILL", shardId,
                               claim.attempt)) {
            // Simulate a crashed/OOM-killed daemon: die mid-shard
            // without publishing, leaving the claim to go stale.
            ::raise(SIGKILL);
        }

        const SimResult &last = file.results.back();
        prog.configsDone = i + 1;
        prog.accessesDone += last.accesses;
        prog.epochsSeen += last.epochs.size();
        if (!last.epochs.empty()) {
            const EpochStat &e = last.epochs.back();
            prog.lastMl2AccessRate = e.ml2AccessRate;
            prog.lastCteHitRate = e.cteHitRate;
            prog.lastDramUsedBytes = e.dramUsedBytes;
        }
        // Progress is advisory: a failed write never fails the shard.
        (void)prog.save(
            sweepShardFile(sweepDir, shardId, "progress"));
    }

    hb_stop.store(true);
    heartbeat.join();

    if (abandoned || lease_lost.load()) {
        leasesLost_.fetch_add(lease_lost.load() ? 1 : 0);
        if (opts_.verbose)
            std::printf("[simd %s] abandoning shard %u (%s)\n",
                        opts_.workerId.c_str(), shardId,
                        lease_lost.load() ? "lease lost" : "stopping");
        if (!lease_lost.load())
            releaseShardClaim(sweepDir, claim);
        return false;
    }

    const CheckpointStore::Stats ck_after = store.stats();
    file.ckptMemoryHits = ck_after.memoryHits - ck_before.memoryHits;
    file.ckptDiskHits = ck_after.diskHits - ck_before.diskHits;
    file.ckptMisses = ck_after.misses - ck_before.misses;
    file.ckptRejected =
        ck_after.rejectedFiles - ck_before.rejectedFiles;

    const Status st =
        file.save(sweepShardFile(sweepDir, shardId, "result"));
    if (!st.ok()) {
        warn("shard " + std::to_string(shardId) +
             " result publication failed: " + st.toString());
        releaseShardClaim(sweepDir, claim);
        return false;
    }
    releaseShardClaim(sweepDir, claim);
    shardsServed_.fetch_add(1);
    if (opts_.verbose)
        std::printf("[simd %s] shard %u of %s published (%zu "
                    "configs)\n",
                    opts_.workerId.c_str(), shardId, sweepDir.c_str(),
                    spec.configs.size());
    return true;
}

} // namespace tmcc
