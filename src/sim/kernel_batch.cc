/**
 * @file
 * Drivers of the batched kernel (`--kernel=batch`).
 *
 * The pipeline itself is AccessEngine<BatchTraits> (sim/access_path.hh)
 * — the same statements as the scalar oracle, instantiated with inline
 * hierarchy templates and fixed-capacity sinks.  What this file adds is
 * the access *supply*: per-core rings refilled in blocks through
 * Workload::nextBatch, so the measured loop touches the workload
 * engine's virtual dispatch once per 64 accesses instead of once per
 * access.
 *
 * Stream-position discipline (what keeps batch runs bit-identical to
 * scalar runs):
 *   - warm / fast-forward: the per-core access count is known up
 *     front, so rings refill with exactly min(64, remaining) — never a
 *     single access beyond what the phase consumes.
 *   - exact-mode measured loop: the run ends with the loop, so a ring
 *     may fetch ahead harmlessly (those accesses are simply the ones
 *     the scalar loop would fetch next if it kept going).
 *   - sampled windows: accesses beyond the window belong to the next
 *     fast-forward stretch, so System passes use_ring=false and the
 *     ring degenerates to refill=1 (fetch exactly one per step).
 *
 * Processing always interleaves cores exactly like the scalar driver
 * (round-robin in warm/FF, min-local-time in the measured loop); the
 * rings only move the *fetch* earlier within each core's own stream,
 * which is invisible because workload engines are per-core.
 */

#include <array>
#include <vector>

#include "common/trace.hh"
#include "sim/access_path.hh"
#include "sim/system.hh"

namespace tmcc
{

namespace
{
constexpr std::size_t ringCap = 64;

/**
 * How many ring slots ahead of the consuming step the metadata
 * prefetches run.  Far enough for the loads to land before the probe,
 * near enough that the lines are still resident when it does.
 */
constexpr std::size_t lookahead = 8;

/**
 * Hint the prefetcher at the set metadata an upcoming ring slot will
 * probe.  Only structures whose set index is computable from the
 * virtual address qualify: the TLB set directly, and the L1 set up to
 * the one physical index bit (bit 12 for the 128-set default) that
 * translation decides — so both page-parity candidates are hinted.
 * Prefetches touch no simulator state, so the batch kernel stays
 * bit-identical to the scalar oracle.
 */
inline void
prefetchAccess(System &sys, unsigned core, const MemAccess &a)
{
    sys.tlb(core).prefetchSet(a.vaddr);
    Cache &l1 = sys.hierarchy().l1(core);
    const Addr off = a.vaddr & (pageSize - 1);
    l1.prefetchSet(off);
    l1.prefetchSet(off | pageSize);
}
} // namespace

template <bool Tracing>
void
SystemKernel::warmImpl(System &sys, std::uint64_t per_core)
{
    const unsigned cores = sys.cfg_.cores;
    std::vector<std::array<MemAccess, ringCap>> ring(cores);
    std::uint64_t issued = 0;
    while (issued < per_core) {
        const auto n = static_cast<std::size_t>(
            std::min<std::uint64_t>(ringCap, per_core - issued));
        for (unsigned c = 0; c < cores; ++c)
            sys.workloads_[c]->nextBatch(ring[c].data(), n);
        for (std::size_t i = 0; i < n; ++i)
            for (unsigned c = 0; c < cores; ++c)
                AccessEngine<BatchTraits<Tracing>>::step(
                    sys, c, ring[c][i], false);
        issued += n;
    }
}

template <bool Tracing, bool Epochs>
void
SystemKernel::measuredImpl(System &sys, std::uint64_t quota,
                           std::size_t refill)
{
    const unsigned cores = sys.cfg_.cores;
    struct Ring
    {
        std::array<MemAccess, ringCap> buf;
        std::size_t head = 0, count = 0;
    };
    std::vector<Ring> rings(cores);

    // Interleave cores by local time (same policy as the scalar
    // driver; the interleave depends only on simulated clocks, which
    // both kernels advance identically).
    bool running = true;
    while (running) {
        unsigned next = 0;
        for (unsigned c = 1; c < cores; ++c)
            if (sys.cores_[c].now < sys.cores_[next].now)
                next = c;
        Ring &r = rings[next];
        if (r.head == r.count) {
            sys.workloads_[next]->nextBatch(r.buf.data(), refill);
            r.head = 0;
            r.count = refill;
            const std::size_t pn = std::min(lookahead, r.count);
            for (std::size_t i = 0; i < pn; ++i)
                prefetchAccess(sys, next, r.buf[i]);
        }
        if (r.head + lookahead < r.count)
            prefetchAccess(sys, next, r.buf[r.head + lookahead]);
        AccessEngine<BatchTraits<Tracing>>::step(sys, next,
                                                 r.buf[r.head++], true);
        if constexpr (Epochs) {
            if (sys.result_.accesses >= sys.nextEpochAt_) {
                sys.snapshotEpoch(sys.cores_[next].now);
                sys.nextEpochAt_ += sys.cfg_.statsInterval;
            }
        }
        running = false;
        for (unsigned c = 0; c < cores; ++c)
            if (sys.cores_[c].accesses < quota)
                running = true;
    }
}

void
SystemKernel::warm(System &sys, std::uint64_t per_core)
{
    if (Tracer::active() != nullptr)
        warmImpl<true>(sys, per_core);
    else
        warmImpl<false>(sys, per_core);
}

void
SystemKernel::measured(System &sys, std::uint64_t quota, bool use_ring)
{
    const std::size_t refill = use_ring ? ringCap : 1;
    const bool tracing = Tracer::active() != nullptr;
    const bool epochs = sys.cfg_.statsInterval > 0;
    if (tracing) {
        if (epochs)
            measuredImpl<true, true>(sys, quota, refill);
        else
            measuredImpl<true, false>(sys, quota, refill);
    } else {
        if (epochs)
            measuredImpl<false, true>(sys, quota, refill);
        else
            measuredImpl<false, false>(sys, quota, refill);
    }
}

void
SystemKernel::fastForward(System &sys, std::uint64_t per_core)
{
    const unsigned cores = sys.cfg_.cores;
    std::vector<std::array<MemAccess, ringCap>> ring(cores);
    std::uint64_t issued = 0;
    while (issued < per_core) {
        const auto n = static_cast<std::size_t>(
            std::min<std::uint64_t>(ringCap, per_core - issued));
        for (unsigned c = 0; c < cores; ++c)
            sys.workloads_[c]->nextBatch(ring[c].data(), n);
        for (std::size_t i = 0; i < n; ++i)
            for (unsigned c = 0; c < cores; ++c)
                sys.ffStep(c, ring[c][i]);
        issued += n;
    }
}

} // namespace tmcc
