/**
 * @file
 * Setup-phase checkpoints: capture everything System builds before the
 * architecture-dependent warm-up — workload region layout + content-mix
 * assignment, guest/host page tables, the touch-count placement
 * ordering from the fast-forward stand-in, and the workload RNG stream
 * states at the phase boundary — so a sweep grid builds each distinct
 * setup once and every other config restores from it bit-identically.
 *
 * This mirrors the paper artifact's gem5+Ramulator methodology: one KVM
 * fast-forward checkpoint per workload, restored by every architecture
 * configuration (see docs/EXPERIMENTS.md).
 *
 * Checkpoints are keyed by the architecture-invariant config subset
 * (workload, scale, cores, seed, hugePages, nestedPaging,
 * placementAccesses).  The arch-DEPENDENT part of setup — seeding the
 * OS-inspired/Compresso metadata layers from the touch ordering — is
 * replayed per restore from the recorded frame sequences, so restored
 * MC state matches a cold build exactly.
 *
 * CheckpointStore memoizes checkpoints process-wide (the ProfileLibrary
 * measurement-cache pattern) and optionally persists them to
 * TMCC_CKPT_DIR / --ckpt-dir as versioned, CRC-checked binary files;
 * corrupt or mismatched files are rejected via Status and the build
 * falls back to a cold run.
 */

#ifndef TMCC_SIM_CHECKPOINT_HH
#define TMCC_SIM_CHECKPOINT_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/serial.hh"
#include "common/status.hh"
#include "sim/sim_config.hh"
#include "vm/page_table.hh"
#include "vm/phys_mem.hh"
#include "workloads/profile_library.hh"

namespace tmcc
{

/** The architecture-invariant setup state of one System. */
struct SetupCheckpoint
{
    /** On-disk format version; bump on any payload layout change.
     * v2: keyFor() gained the multi-tenant knobs, so v1 keys (which
     * collapse all tenant configurations) can no longer be trusted. */
    static constexpr std::uint32_t formatVersion = 2;

    /** Invariant-config key this checkpoint was built for. */
    std::string key;

    std::uint64_t footprintBytes = 0;
    bool nested = false;

    PhysMemState physMem;      //!< host space (the only space, flat)
    PhysMemState guestPhysMem; //!< guest space (meaningful iff nested)
    PageTableState pageTable;  //!< workload/guest table
    PageTableState hostTable;  //!< meaningful iff nested

    ProfileLibraryState profiles;

    // The constructor's Compresso-usage estimate (drives the OS-MC
    // iso-savings budget); page-order-independent sums, captured so a
    // restore skips the full-footprint walk.
    std::uint64_t compressoUsage = 0;
    std::uint64_t ml2CostTotal = 0;
    std::uint64_t incompressiblePages = 0;
    std::uint64_t compressiblePages = 0;

    /**
     * Resolved host data frames in placement order: the touch-count
     * ordering (hottest first), then the full region scan (coldest
     * last).  Duplicates are preserved — placePage()/registerPage()
     * dedupe exactly as the cold path does.  PT pages are not recorded;
     * they replay from PhysMem's allocation-ordered PT page list.
     */
    std::vector<Ppn> touchedFrames;
    std::vector<Ppn> regionFrames;

    /** Per-core Workload::saveState blobs at the phase boundary. */
    std::vector<std::vector<std::uint8_t>> workloadStates;

    /**
     * The invariant-subset key of `cfg`.  Configs differing only in
     * Arch / MC knobs / phase lengths beyond placement share a key.
     */
    static std::string keyFor(const SimConfig &cfg);

    void serialize(ByteWriter &w) const;
    Status deserialize(ByteReader &r);

    /** Atomic (write-temp-then-rename), CRC-checked file round trip. */
    Status saveFile(const std::string &path) const;
    static StatusOr<std::shared_ptr<const SetupCheckpoint>>
    loadFile(const std::string &path);

    /** File name (within a checkpoint dir) for a key. */
    static std::string fileNameFor(const std::string &key);
};

/**
 * Process-wide checkpoint memoization + optional disk layer.
 *
 * acquire() returns either a ready checkpoint (memory or disk hit) or a
 * build lease: the caller runs the cold setup, captures, and publishes.
 * Concurrent acquires of the same key block until the builder publishes
 * (or abandons, in which case the next waiter becomes the builder), so
 * a K-config grid builds each distinct setup exactly once.
 */
class CheckpointStore
{
  public:
    static CheckpointStore &global();

    /** Hit/miss counters since process start (or clear()). */
    struct Stats
    {
        std::uint64_t memoryHits = 0;
        std::uint64_t diskHits = 0;
        std::uint64_t misses = 0;
        std::uint64_t rejectedFiles = 0; //!< corrupt/mismatched files
    };
    Stats stats() const;

    /**
     * Fold checkpoint traffic observed in another process (a sweep
     * shard worker, reported through its ShardResultFile) into this
     * process's counters, so merged sweep BENCH reports carry
     * sweep-wide checkpoint hit counts.
     */
    void recordExternal(const Stats &s);

    /** Drop every entry and reset counters (tests). */
    void clear();

    /** Override the disk directory (CLI flag beats TMCC_CKPT_DIR). */
    void setDiskDir(std::string dir);
    const std::string &diskDir() const { return diskDir_; }

    /** TMCC_CKPT=0 disables the store entirely (cold A/B runs). */
    bool enabled() const { return enabled_; }

    class Lease
    {
      public:
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        Lease(Lease &&o) noexcept;
        ~Lease();

        /** Non-null on a memory/disk hit. */
        const std::shared_ptr<const SetupCheckpoint> &
        checkpoint() const
        {
            return ckpt_;
        }

        /** True when the caller must build + publish the checkpoint. */
        bool shouldCapture() const { return building_; }

      private:
        friend class CheckpointStore;
        Lease(CheckpointStore *store, std::string key,
              std::shared_ptr<const SetupCheckpoint> ckpt, bool building)
            : store_(store), key_(std::move(key)),
              ckpt_(std::move(ckpt)), building_(building)
        {}

        CheckpointStore *store_ = nullptr;
        std::string key_;
        std::shared_ptr<const SetupCheckpoint> ckpt_;
        bool building_ = false;
    };

    /**
     * Look up (or claim the build of) the checkpoint for `cfg`.  When
     * the store is disabled the lease is empty and nothing is recorded.
     */
    Lease acquire(const SimConfig &cfg);

    /** Publish a freshly built checkpoint under a build lease. */
    void publish(Lease &lease,
                 std::shared_ptr<const SetupCheckpoint> ckpt);

  private:
    CheckpointStore();

    void abandon(const std::string &key);
    std::shared_ptr<const SetupCheckpoint>
    tryDisk(const std::string &key);

    struct Entry
    {
        std::shared_ptr<const SetupCheckpoint> ckpt;
        bool building = false;
    };

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<std::string, Entry> entries_;
    bool enabled_ = true;
    std::string diskDir_;

    std::atomic<std::uint64_t> memoryHits_{0};
    std::atomic<std::uint64_t> diskHits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> rejectedFiles_{0};
};

} // namespace tmcc

#endif // TMCC_SIM_CHECKPOINT_HH
