/**
 * @file
 * Experiment configuration: Table III defaults plus the architecture
 * selector and workload/scale knobs.
 */

#ifndef TMCC_SIM_SIM_CONFIG_HH
#define TMCC_SIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache/hierarchy.hh"
#include "common/log.hh"
#include "compresso/compresso_mc.hh"
#include "dram/dram_config.hh"
#include "tmcc/os_mc.hh"

namespace tmcc
{

/** Which MC architecture to simulate. */
enum class Arch
{
    NoCompression,
    Compresso,
    Barebone, //!< OS-inspired without TMCC's two optimizations
    BarebonePlusMl1, //!< barebone + CTE embedding only (Fig. 20 split)
    BarebonePlusMl2, //!< barebone + fast Deflate only (Fig. 20 split)
    Tmcc,     //!< OS-inspired + CTE embedding + fast Deflate
};

const char *archName(Arch arch);

/**
 * Which measured-loop implementation runs the accesses.  Both produce
 * bit-identical SimResults; `Scalar` is the one-access-at-a-time
 * oracle, `Batch` runs batch-of-accesses kernels over SoA state with
 * tracing/epoch hooks compiled out when off.
 */
enum class KernelMode : std::uint8_t
{
    Scalar = 0,
    Batch = 1,
};

/** Full experiment description. */
struct SimConfig
{
    std::string workload = "pageRank";
    double scale = 0.5; //!< workload footprint scale (see factory.cc)
    unsigned cores = 4;
    std::uint64_t seed = 1;

    Arch arch = Arch::Tmcc;

    // CPU (Table III): 2.8GHz; cache latencies in CPU cycles.
    double cpuGhz = 2.8;
    unsigned l1Cycles = 3;
    unsigned l2Cycles = 11; //!< additional
    unsigned l3Cycles = 50; //!< additional
    double nocToMcNs = 18.0;

    unsigned tlbEntries = 2048;
    unsigned cteBufferEntries = 64; //!< per-core CTE Buffer (§V-A6)
    bool hugePages = false;

    /**
     * 2D (nested) paging for virtual machines (§V-A3, Fig. 12b): the
     * workload's table becomes a *guest* table in guest-physical
     * space, and every guest PTB fetch plus the final data access is
     * translated through a *host* page table.  TMCC's CTE embedding
     * applies to the host PTBs of every constituent host walk.
     */
    bool nestedPaging = false;

    /**
     * Out-of-order latency overlap: the fraction of a load's
     * beyond-L1 latency the 4-wide OoO core hides via MLP.  1.0 = fully
     * blocking in-order.  Applied uniformly, so it compresses relative
     * gaps the way an OoO core does.
     */
    double memOverlapFactor = 2.0;

    HierarchyConfig hierarchy;
    DramConfig dram;
    InterleaveConfig interleave;

    CompressoConfig compresso;
    OsMcConfig osMc;

    /**
     * DRAM budget for the OS-inspired architectures as a fraction of
     * the workload footprint (Table IV columns); 0 = match Compresso's
     * usage (iso-savings, Fig. 17).
     */
    double dramBudgetFraction = 0.0;

    // Phase lengths (accesses per core).
    std::uint64_t placementAccesses = 400'000;
    std::uint64_t warmAccesses = 300'000;
    std::uint64_t measureAccesses = 500'000;

    /**
     * Epoch statistics: snapshot a delta StatDump every N measured
     * accesses (across all cores) so time-series curves -- ML2 access
     * rate (Fig. 21), CTE hit rate, live DRAM bytes -- can be plotted
     * over the measured window.  0 disables snapshots entirely; the
     * run is then bit-identical to a build without the feature.
     */
    std::uint64_t statsInterval = 0;

    /** Measured-loop implementation (`--kernel` / TMCC_KERNEL). */
    KernelMode kernel = KernelMode::Scalar;

    /**
     * SMARTS-style interval sampling (`--sample k:w[:warm]`): instead
     * of simulating every measured access in detail, run
     * `sampleWindows` detailed windows of `sampleWindowAccesses`
     * accesses per core, each preceded by `sampleWarmAccesses` of
     * detailed warm-up, and functionally fast-forward (translation +
     * ML1/ML2 state updated, no timing) in between.  Headline metrics
     * are then reported as per-window mean + 95% CI in
     * SimResult::sample.  sampleWindows == 0 (default) disables
     * sampling: the run is exact and bit-identical to a build without
     * the feature.
     */
    std::uint64_t sampleWindows = 0;
    std::uint64_t sampleWindowAccesses = 0;
    std::uint64_t sampleWarmAccesses = 0;

    /**
     * Multi-tenant knobs (`--tenants` / `--tenant-churn` /
     * `--tenant-zipf`): only the "memcloud" workload reads them; every
     * other engine ignores them entirely.  Defaults mirror TenantKnobs.
     */
    unsigned tenants = 6;       //!< guest address spaces multiplexed
    double tenantChurn = 0.001; //!< per-burst guest respawn probability
    double tenantZipf = 1.1;    //!< tenant popularity skew (Zipf alpha)

    /**
     * The reach-scaled preset used by the benches: workload footprints
     * are ~1/400 of the paper's, so every capacity-like structure
     * (TLB reach, CTE-cache reach, LLC, free-list watermarks) scales by
     * a similar factor to preserve the reach ratios §III/IV build on:
     *
     *   footprint >> TMCC CTE reach = 4x Compresso CTE reach
     *   Compresso CTE reach ~ TLB reach ~ LLC
     *
     * Timing parameters (latencies, DRAM, Deflate ASICs) stay at the
     * paper's full-scale values: latencies do not scale with capacity.
     */
    static SimConfig scaledDefault();
};

/**
 * Strictly parse a `--kernel` / TMCC_KERNEL value.  `flag` names the
 * source ("--kernel" or "TMCC_KERNEL") for the error message.
 */
inline KernelMode
parseKernelMode(const std::string &flag, const std::string &s)
{
    if (s == "scalar")
        return KernelMode::Scalar;
    if (s == "batch")
        return KernelMode::Batch;
    fatal(flag + " must be \"scalar\" or \"batch\", got \"" + s + "\"");
}

/**
 * Strictly parse a `--sample` / TMCC_SAMPLE spec `k:w[:warm]` (all
 * positive integers; warm defaults to w) into cfg.sampleWindows /
 * sampleWindowAccesses / sampleWarmAccesses.
 */
inline void
parseSampleSpec(const std::string &flag, const std::string &s,
                SimConfig &cfg)
{
    const std::string usage =
        flag + " must be k:w[:warm] with positive integers, got \"" + s +
        "\"";
    std::uint64_t parts[3] = {0, 0, 0};
    std::size_t nparts = 0;
    std::size_t pos = 0;
    while (true) {
        fatalIf(nparts == 3, usage);
        const std::size_t colon = s.find(':', pos);
        const std::string tok = s.substr(
            pos, colon == std::string::npos ? std::string::npos
                                            : colon - pos);
        fatalIf(tok.empty() ||
                    tok.find_first_not_of("0123456789") !=
                        std::string::npos ||
                    tok.size() > 19,
                usage);
        parts[nparts++] = std::stoull(tok);
        fatalIf(parts[nparts - 1] == 0, usage);
        if (colon == std::string::npos)
            break;
        pos = colon + 1;
    }
    fatalIf(nparts < 2, usage);
    cfg.sampleWindows = parts[0];
    cfg.sampleWindowAccesses = parts[1];
    cfg.sampleWarmAccesses = nparts == 3 ? parts[2] : parts[1];
}

} // namespace tmcc

#endif // TMCC_SIM_SIM_CONFIG_HH
