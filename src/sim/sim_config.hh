/**
 * @file
 * Experiment configuration: Table III defaults plus the architecture
 * selector and workload/scale knobs.
 */

#ifndef TMCC_SIM_SIM_CONFIG_HH
#define TMCC_SIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache/hierarchy.hh"
#include "compresso/compresso_mc.hh"
#include "dram/dram_config.hh"
#include "tmcc/os_mc.hh"

namespace tmcc
{

/** Which MC architecture to simulate. */
enum class Arch
{
    NoCompression,
    Compresso,
    Barebone, //!< OS-inspired without TMCC's two optimizations
    BarebonePlusMl1, //!< barebone + CTE embedding only (Fig. 20 split)
    BarebonePlusMl2, //!< barebone + fast Deflate only (Fig. 20 split)
    Tmcc,     //!< OS-inspired + CTE embedding + fast Deflate
};

const char *archName(Arch arch);

/** Full experiment description. */
struct SimConfig
{
    std::string workload = "pageRank";
    double scale = 0.5; //!< workload footprint scale (see factory.cc)
    unsigned cores = 4;
    std::uint64_t seed = 1;

    Arch arch = Arch::Tmcc;

    // CPU (Table III): 2.8GHz; cache latencies in CPU cycles.
    double cpuGhz = 2.8;
    unsigned l1Cycles = 3;
    unsigned l2Cycles = 11; //!< additional
    unsigned l3Cycles = 50; //!< additional
    double nocToMcNs = 18.0;

    unsigned tlbEntries = 2048;
    unsigned cteBufferEntries = 64; //!< per-core CTE Buffer (§V-A6)
    bool hugePages = false;

    /**
     * 2D (nested) paging for virtual machines (§V-A3, Fig. 12b): the
     * workload's table becomes a *guest* table in guest-physical
     * space, and every guest PTB fetch plus the final data access is
     * translated through a *host* page table.  TMCC's CTE embedding
     * applies to the host PTBs of every constituent host walk.
     */
    bool nestedPaging = false;

    /**
     * Out-of-order latency overlap: the fraction of a load's
     * beyond-L1 latency the 4-wide OoO core hides via MLP.  1.0 = fully
     * blocking in-order.  Applied uniformly, so it compresses relative
     * gaps the way an OoO core does.
     */
    double memOverlapFactor = 2.0;

    HierarchyConfig hierarchy;
    DramConfig dram;
    InterleaveConfig interleave;

    CompressoConfig compresso;
    OsMcConfig osMc;

    /**
     * DRAM budget for the OS-inspired architectures as a fraction of
     * the workload footprint (Table IV columns); 0 = match Compresso's
     * usage (iso-savings, Fig. 17).
     */
    double dramBudgetFraction = 0.0;

    // Phase lengths (accesses per core).
    std::uint64_t placementAccesses = 400'000;
    std::uint64_t warmAccesses = 300'000;
    std::uint64_t measureAccesses = 500'000;

    /**
     * Epoch statistics: snapshot a delta StatDump every N measured
     * accesses (across all cores) so time-series curves -- ML2 access
     * rate (Fig. 21), CTE hit rate, live DRAM bytes -- can be plotted
     * over the measured window.  0 disables snapshots entirely; the
     * run is then bit-identical to a build without the feature.
     */
    std::uint64_t statsInterval = 0;

    /**
     * The reach-scaled preset used by the benches: workload footprints
     * are ~1/400 of the paper's, so every capacity-like structure
     * (TLB reach, CTE-cache reach, LLC, free-list watermarks) scales by
     * a similar factor to preserve the reach ratios §III/IV build on:
     *
     *   footprint >> TMCC CTE reach = 4x Compresso CTE reach
     *   Compresso CTE reach ~ TLB reach ~ LLC
     *
     * Timing parameters (latencies, DRAM, Deflate ASICs) stay at the
     * paper's full-scale values: latencies do not scale with capacity.
     */
    static SimConfig scaledDefault();
};

} // namespace tmcc

#endif // TMCC_SIM_SIM_CONFIG_HH
