#include "sim/sweep_manifest.hh"

#include <utility>

#include "common/log.hh"
#include "common/versioned_file.hh"

namespace tmcc
{

namespace
{

constexpr char specMagic[8] = {'T', 'M', 'C', 'C', 'S', 'P', 'E', 'C'};
constexpr char resultMagic[8] = {'T', 'M', 'C', 'C', 'S', 'H', 'R', 'D'};
constexpr char manifestMagic[8] = {'T', 'M', 'C', 'C', 'S', 'W', 'P', 'M'};

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
serializeIndices(ByteWriter &w, const std::vector<std::uint64_t> &idx)
{
    w.u64(idx.size());
    for (std::uint64_t i : idx)
        w.u64(i);
}

Status
deserializeIndices(ByteReader &r, std::vector<std::uint64_t> &idx,
                   const char *what)
{
    const std::uint64_t n = r.count(8);
    idx.clear();
    idx.reserve(n);
    for (std::uint64_t i = 0; i < n && r.ok(); ++i)
        idx.push_back(r.u64());
    if (!r.ok())
        return Status::truncated(std::string(what) + " too short");
    return Status::okStatus();
}

void
serializeStatDump(ByteWriter &w, const StatDump &dump)
{
    w.u64(dump.all().size());
    for (const auto &[name, value] : dump.all()) {
        w.str(name);
        w.f64(value);
    }
}

Status
deserializeStatDump(ByteReader &r, StatDump &dump)
{
    dump = StatDump{};
    const std::uint64_t n = r.count(8 + 8); // length prefix + value
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        const std::string name = r.str();
        dump.set(name, r.f64());
    }
    if (!r.ok())
        return Status::truncated("StatDump payload too short");
    return Status::okStatus();
}

void
serializeHistogram(ByteWriter &w, const Histogram &h)
{
    w.f64(h.lo());
    w.f64(h.hi());
    w.u32(static_cast<std::uint32_t>(h.buckets().size()));
    for (std::uint64_t c : h.buckets())
        w.u64(c);
    w.u64(h.underflow());
    w.u64(h.overflow());
    // mean() divides; the exact running sum round-trips bit-exactly.
    w.f64(h.sampleSum());
    w.u64(h.count());
}

Status
deserializeHistogram(ByteReader &r, Histogram &h)
{
    const double lo = r.f64();
    const double hi = r.f64();
    const std::uint32_t nbuckets = r.u32();
    if (!r.ok() || nbuckets == 0 || !(hi > lo) ||
        nbuckets != h.buckets().size() || lo != h.lo() || hi != h.hi())
        return Status::corruption("histogram geometry mismatch");
    std::vector<std::uint64_t> counts;
    counts.reserve(nbuckets);
    for (std::uint32_t i = 0; i < nbuckets && r.ok(); ++i)
        counts.push_back(r.u64());
    const std::uint64_t underflow = r.u64();
    const std::uint64_t overflow = r.u64();
    const double sum = r.f64();
    const std::uint64_t count = r.u64();
    if (!r.ok())
        return Status::truncated("histogram payload too short");
    h.restore(std::move(counts), underflow, overflow, sum, count);
    return Status::okStatus();
}

void
serializeEpoch(ByteWriter &w, const EpochStat &e)
{
    w.u64(e.accesses);
    w.u64(e.deltaAccesses);
    w.u64(e.endTick);
    w.f64(e.ml2AccessRate);
    w.f64(e.cteHitRate);
    w.f64(e.dramUsedBytes);
    serializeStatDump(w, e.delta);
}

Status
deserializeEpoch(ByteReader &r, EpochStat &e)
{
    e.accesses = r.u64();
    e.deltaAccesses = r.u64();
    e.endTick = r.u64();
    e.ml2AccessRate = r.f64();
    e.cteHitRate = r.f64();
    e.dramUsedBytes = r.f64();
    return deserializeStatDump(r, e.delta);
}

} // namespace

void
serializeSimConfig(ByteWriter &w, const SimConfig &cfg)
{
    w.str(cfg.workload);
    w.f64(cfg.scale);
    w.u32(cfg.cores);
    w.u64(cfg.seed);
    w.u8(static_cast<std::uint8_t>(cfg.arch));

    w.f64(cfg.cpuGhz);
    w.u32(cfg.l1Cycles);
    w.u32(cfg.l2Cycles);
    w.u32(cfg.l3Cycles);
    w.f64(cfg.nocToMcNs);
    w.u32(cfg.tlbEntries);
    w.u32(cfg.cteBufferEntries);
    w.u8(cfg.hugePages ? 1 : 0);
    w.u8(cfg.nestedPaging ? 1 : 0);
    w.f64(cfg.memOverlapFactor);

    const HierarchyConfig &h = cfg.hierarchy;
    w.u64(h.l1Bytes);
    w.u32(h.l1Assoc);
    w.u64(h.l2Bytes);
    w.u32(h.l2Assoc);
    w.u64(h.l3Bytes);
    w.u32(h.l3Assoc);
    w.u8(h.prefetchers ? 1 : 0);
    w.u32(h.strideDegreeL1);
    w.u32(h.strideDegreeL2);

    const DramConfig &d = cfg.dram;
    w.u32(d.ranks);
    w.u32(d.bankGroups);
    w.u32(d.banksPerGroup);
    w.u64(d.rowBytes);
    w.u64(d.channelBytes);
    w.f64(d.tCkNs);
    w.f64(d.tClNs);
    w.f64(d.tRcdNs);
    w.f64(d.tRpNs);
    w.f64(d.tBurstNs);
    w.f64(d.tWrNs);
    w.f64(d.tRtwNs);
    w.f64(d.tWtrNs);
    w.u32(d.rowAccessCap);
    w.u32(d.writeQueueDepth);
    w.u32(d.writeDrainHigh);
    w.u32(d.writeDrainLow);

    const InterleaveConfig &il = cfg.interleave;
    w.u32(il.numMcs);
    w.u32(il.channelsPerMc);
    w.u64(il.mcGranularity);
    w.u64(il.channelGranularity);

    const CompressoConfig &c = cfg.compresso;
    w.u64(c.cteCacheBytes);
    w.u64(c.chunkBytes);
    w.f64(c.mcProcNs);
    w.f64(c.blockDecompressNs);
    w.f64(c.llcVictimLatNs);
    w.u8(c.cteVictimInLlc ? 1 : 0);
    w.u64(c.llcVictimBytes);
    w.f64(c.repackBlockFraction);

    const OsMcConfig &o = cfg.osMc;
    w.u64(o.cteCacheBytes);
    w.f64(o.mcProcNs);
    w.u8(o.embedCtes ? 1 : 0);
    w.u8(o.fastDeflate ? 1 : 0);
    w.u64(o.dramBudgetBytes);
    w.u64(o.ml1TargetPages);
    w.u64(o.freeListLow);
    w.u64(o.freeListCritical);
    w.u64(o.evictBatch);
    w.u32(o.migrationBufferEntries);
    w.f64(o.migrationGBs);
    w.f64(o.recencySampleP);
    w.u64(o.ptb.managedDramBytes);
    w.u64(o.ptb.physPages);
    w.f64(o.faults.ml2BitFlipRate);
    w.f64(o.faults.cteBitFlipRate);
    w.f64(o.faults.ptbBitFlipRate);
    w.f64(o.faults.transientFraction);
    w.u64(o.faults.seed);

    w.f64(cfg.dramBudgetFraction);
    w.u64(cfg.placementAccesses);
    w.u64(cfg.warmAccesses);
    w.u64(cfg.measureAccesses);
    w.u64(cfg.statsInterval);

    // v2: execution kernel + interval-sampling geometry.
    w.u8(static_cast<std::uint8_t>(cfg.kernel));
    w.u64(cfg.sampleWindows);
    w.u64(cfg.sampleWindowAccesses);
    w.u64(cfg.sampleWarmAccesses);

    // v3: multi-tenant knobs.
    w.u32(cfg.tenants);
    w.f64(cfg.tenantChurn);
    w.f64(cfg.tenantZipf);
}

Status
deserializeSimConfig(ByteReader &r, SimConfig &cfg)
{
    cfg.workload = r.str();
    cfg.scale = r.f64();
    cfg.cores = r.u32();
    cfg.seed = r.u64();
    const std::uint8_t arch = r.u8();
    if (arch > static_cast<std::uint8_t>(Arch::Tmcc))
        return Status::corruption("SimConfig arch out of range");
    cfg.arch = static_cast<Arch>(arch);

    cfg.cpuGhz = r.f64();
    cfg.l1Cycles = r.u32();
    cfg.l2Cycles = r.u32();
    cfg.l3Cycles = r.u32();
    cfg.nocToMcNs = r.f64();
    cfg.tlbEntries = r.u32();
    cfg.cteBufferEntries = r.u32();
    cfg.hugePages = r.u8() != 0;
    cfg.nestedPaging = r.u8() != 0;
    cfg.memOverlapFactor = r.f64();

    HierarchyConfig &h = cfg.hierarchy;
    h.l1Bytes = r.u64();
    h.l1Assoc = r.u32();
    h.l2Bytes = r.u64();
    h.l2Assoc = r.u32();
    h.l3Bytes = r.u64();
    h.l3Assoc = r.u32();
    h.prefetchers = r.u8() != 0;
    h.strideDegreeL1 = r.u32();
    h.strideDegreeL2 = r.u32();

    DramConfig &d = cfg.dram;
    d.ranks = r.u32();
    d.bankGroups = r.u32();
    d.banksPerGroup = r.u32();
    d.rowBytes = r.u64();
    d.channelBytes = r.u64();
    d.tCkNs = r.f64();
    d.tClNs = r.f64();
    d.tRcdNs = r.f64();
    d.tRpNs = r.f64();
    d.tBurstNs = r.f64();
    d.tWrNs = r.f64();
    d.tRtwNs = r.f64();
    d.tWtrNs = r.f64();
    d.rowAccessCap = r.u32();
    d.writeQueueDepth = r.u32();
    d.writeDrainHigh = r.u32();
    d.writeDrainLow = r.u32();

    InterleaveConfig &il = cfg.interleave;
    il.numMcs = r.u32();
    il.channelsPerMc = r.u32();
    il.mcGranularity = r.u64();
    il.channelGranularity = r.u64();

    CompressoConfig &c = cfg.compresso;
    c.cteCacheBytes = r.u64();
    c.chunkBytes = r.u64();
    c.mcProcNs = r.f64();
    c.blockDecompressNs = r.f64();
    c.llcVictimLatNs = r.f64();
    c.cteVictimInLlc = r.u8() != 0;
    c.llcVictimBytes = r.u64();
    c.repackBlockFraction = r.f64();

    OsMcConfig &o = cfg.osMc;
    o.cteCacheBytes = r.u64();
    o.mcProcNs = r.f64();
    o.embedCtes = r.u8() != 0;
    o.fastDeflate = r.u8() != 0;
    o.dramBudgetBytes = r.u64();
    o.ml1TargetPages = r.u64();
    o.freeListLow = r.u64();
    o.freeListCritical = r.u64();
    o.evictBatch = r.u64();
    o.migrationBufferEntries = r.u32();
    o.migrationGBs = r.f64();
    o.recencySampleP = r.f64();
    o.ptb.managedDramBytes = r.u64();
    o.ptb.physPages = r.u64();
    o.faults.ml2BitFlipRate = r.f64();
    o.faults.cteBitFlipRate = r.f64();
    o.faults.ptbBitFlipRate = r.f64();
    o.faults.transientFraction = r.f64();
    o.faults.seed = r.u64();

    cfg.dramBudgetFraction = r.f64();
    cfg.placementAccesses = r.u64();
    cfg.warmAccesses = r.u64();
    cfg.measureAccesses = r.u64();
    cfg.statsInterval = r.u64();

    const std::uint8_t kernel = r.u8();
    if (kernel > static_cast<std::uint8_t>(KernelMode::Batch))
        return Status::corruption("SimConfig kernel mode out of range");
    cfg.kernel = static_cast<KernelMode>(kernel);
    cfg.sampleWindows = r.u64();
    cfg.sampleWindowAccesses = r.u64();
    cfg.sampleWarmAccesses = r.u64();

    cfg.tenants = r.u32();
    cfg.tenantChurn = r.f64();
    cfg.tenantZipf = r.f64();

    if (!r.ok())
        return Status::truncated("SimConfig payload too short");
    return Status::okStatus();
}

void
serializeSimResult(ByteWriter &w, const SimResult &res)
{
    w.u64(res.accesses);
    w.u64(res.storeAccesses);
    w.u64(res.elapsed);
    w.u64(res.tlbMisses);
    w.u64(res.tlbHits);
    w.u64(res.llcMisses);
    w.u64(res.llcWritebacks);
    w.u64(res.cteHits);
    w.u64(res.cteMisses);
    w.u64(res.cteMissesAfterTlbMiss);
    w.u64(res.ml1CteHit);
    w.u64(res.ml1Parallel);
    w.u64(res.ml1Mismatch);
    w.u64(res.ml1Serial);
    w.u64(res.ml2Accesses);
    w.f64(res.avgL3MissLatencyNs);
    serializeHistogram(w, res.l3MissLatency);
    serializeHistogram(w, res.pageWalkLatency);
    serializeHistogram(w, res.ml2FaultLatency);
    w.f64(res.readBusUtil);
    w.f64(res.writeBusUtil);
    w.u64(res.footprintBytes);
    w.u64(res.dramUsedBytes);
    w.f64(res.setupSeconds);
    w.f64(res.measureSeconds);
    w.u8(res.restoredFromCheckpoint ? 1 : 0);
    serializeStatDump(w, res.stats);
    w.u64(res.epochs.size());
    for (const EpochStat &e : res.epochs)
        serializeEpoch(w, e);

    // v2: interval-sampling summary.
    w.u64(res.sample.windows);
    w.u64(res.sample.windowAccesses);
    w.u64(res.sample.warmupAccesses);
    w.u64(res.sample.ffAccesses);
    w.u64(res.sample.metrics.size());
    for (const SampleMetric &m : res.sample.metrics) {
        w.str(m.name);
        w.f64(m.mean);
        w.f64(m.ci95);
    }

    // v4 (ShardResultFile): per-tenant isolation stats.
    w.u64(res.tenants.size());
    for (const TenantStat &t : res.tenants) {
        w.u64(t.accesses);
        w.u64(t.ml2Faults);
        w.u64(t.footprintBytes);
        serializeHistogram(w, t.ml2FaultLatency);
    }
}

Status
deserializeSimResult(ByteReader &r, SimResult &res)
{
    res = SimResult{};
    res.accesses = r.u64();
    res.storeAccesses = r.u64();
    res.elapsed = r.u64();
    res.tlbMisses = r.u64();
    res.tlbHits = r.u64();
    res.llcMisses = r.u64();
    res.llcWritebacks = r.u64();
    res.cteHits = r.u64();
    res.cteMisses = r.u64();
    res.cteMissesAfterTlbMiss = r.u64();
    res.ml1CteHit = r.u64();
    res.ml1Parallel = r.u64();
    res.ml1Mismatch = r.u64();
    res.ml1Serial = r.u64();
    res.ml2Accesses = r.u64();
    res.avgL3MissLatencyNs = r.f64();
    TMCC_RETURN_IF_ERROR(deserializeHistogram(r, res.l3MissLatency));
    TMCC_RETURN_IF_ERROR(deserializeHistogram(r, res.pageWalkLatency));
    TMCC_RETURN_IF_ERROR(deserializeHistogram(r, res.ml2FaultLatency));
    res.readBusUtil = r.f64();
    res.writeBusUtil = r.f64();
    res.footprintBytes = r.u64();
    res.dramUsedBytes = r.u64();
    res.setupSeconds = r.f64();
    res.measureSeconds = r.f64();
    res.restoredFromCheckpoint = r.u8() != 0;
    TMCC_RETURN_IF_ERROR(deserializeStatDump(r, res.stats));
    const std::uint64_t n_epochs = r.count(8 * 6 + 8);
    res.epochs.clear();
    res.epochs.reserve(n_epochs);
    for (std::uint64_t i = 0; i < n_epochs && r.ok(); ++i) {
        EpochStat e;
        TMCC_RETURN_IF_ERROR(deserializeEpoch(r, e));
        res.epochs.push_back(std::move(e));
    }

    res.sample.windows = r.u64();
    res.sample.windowAccesses = r.u64();
    res.sample.warmupAccesses = r.u64();
    res.sample.ffAccesses = r.u64();
    const std::uint64_t n_metrics = r.count(8 + 8 + 8);
    res.sample.metrics.clear();
    res.sample.metrics.reserve(n_metrics);
    for (std::uint64_t i = 0; i < n_metrics && r.ok(); ++i) {
        SampleMetric m;
        m.name = r.str();
        m.mean = r.f64();
        m.ci95 = r.f64();
        res.sample.metrics.push_back(std::move(m));
    }

    const std::uint64_t n_tenants = r.count(8 * 3);
    res.tenants.clear();
    res.tenants.reserve(n_tenants);
    for (std::uint64_t i = 0; i < n_tenants && r.ok(); ++i) {
        TenantStat t;
        t.accesses = r.u64();
        t.ml2Faults = r.u64();
        t.footprintBytes = r.u64();
        TMCC_RETURN_IF_ERROR(
            deserializeHistogram(r, t.ml2FaultLatency));
        res.tenants.push_back(std::move(t));
    }

    if (!r.ok())
        return Status::truncated("SimResult payload too short");
    return Status::okStatus();
}

std::string
sweepGridKey(const std::vector<SimConfig> &grid)
{
    ByteWriter w;
    w.u64(grid.size());
    for (const SimConfig &cfg : grid)
        serializeSimConfig(w, cfg);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a(w.buffer().data(), w.buffer().size())));
    return buf;
}

Status
ShardSpec::save(const std::string &path) const
{
    ByteWriter w;
    w.str(gridKey);
    w.u32(shardId);
    w.u32(attempt);
    w.u32(workerJobs);
    w.str(resultPath);
    serializeIndices(w, configIndices);
    w.u64(configs.size());
    for (const SimConfig &cfg : configs)
        serializeSimConfig(w, cfg);
    return writeVersionedFile(path, specMagic, formatVersion,
                              w.buffer());
}

StatusOr<ShardSpec>
ShardSpec::load(const std::string &path)
{
    TMCC_ASSIGN_OR_RETURN(
        const std::vector<std::uint8_t> payload,
        readVersionedFile(path, specMagic, formatVersion));
    ByteReader r(payload);
    ShardSpec spec;
    spec.gridKey = r.str();
    spec.shardId = r.u32();
    spec.attempt = r.u32();
    spec.workerJobs = r.u32();
    spec.resultPath = r.str();
    TMCC_RETURN_IF_ERROR(
        deserializeIndices(r, spec.configIndices, "ShardSpec indices"));
    const std::uint64_t n = r.count(1);
    spec.configs.reserve(n);
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        SimConfig cfg;
        TMCC_RETURN_IF_ERROR(deserializeSimConfig(r, cfg));
        spec.configs.push_back(std::move(cfg));
    }
    TMCC_RETURN_IF_ERROR(r.finish("ShardSpec"));
    if (spec.configs.size() != spec.configIndices.size())
        return Status::corruption(
            "ShardSpec config/index count mismatch");
    return spec;
}

Status
ShardResultFile::save(const std::string &path) const
{
    ByteWriter w;
    w.str(gridKey);
    w.u32(shardId);
    w.u32(attempt);
    w.u64(ckptMemoryHits);
    w.u64(ckptDiskHits);
    w.u64(ckptMisses);
    w.u64(ckptRejected);
    serializeIndices(w, configIndices);
    w.u64(results.size());
    for (const SimResult &res : results)
        serializeSimResult(w, res);
    return writeVersionedFile(path, resultMagic, formatVersion,
                              w.buffer());
}

StatusOr<ShardResultFile>
ShardResultFile::load(const std::string &path)
{
    TMCC_ASSIGN_OR_RETURN(
        const std::vector<std::uint8_t> payload,
        readVersionedFile(path, resultMagic, formatVersion));
    ByteReader r(payload);
    ShardResultFile file;
    file.gridKey = r.str();
    file.shardId = r.u32();
    file.attempt = r.u32();
    file.ckptMemoryHits = r.u64();
    file.ckptDiskHits = r.u64();
    file.ckptMisses = r.u64();
    file.ckptRejected = r.u64();
    if (file.attempt == 0)
        return Status::corruption("ShardResultFile attempt must be "
                                  "positive");
    TMCC_RETURN_IF_ERROR(deserializeIndices(r, file.configIndices,
                                            "ShardResultFile indices"));
    const std::uint64_t n = r.count(1);
    file.results.reserve(n);
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        SimResult res;
        TMCC_RETURN_IF_ERROR(deserializeSimResult(r, res));
        file.results.push_back(std::move(res));
    }
    TMCC_RETURN_IF_ERROR(r.finish("ShardResultFile"));
    if (file.results.size() != file.configIndices.size())
        return Status::corruption(
            "ShardResultFile result/index count mismatch");
    return file;
}

const char *
shardStateName(ShardState s)
{
    switch (s) {
      case ShardState::Pending: return "pending";
      case ShardState::Done: return "done";
      case ShardState::Failed: return "failed";
    }
    return "?";
}

Status
SweepManifest::save(const std::string &path) const
{
    ByteWriter w;
    w.str(gridKey);
    w.u64(totalConfigs);
    w.u64(shards.size());
    for (const Shard &s : shards) {
        w.u32(s.id);
        w.u8(static_cast<std::uint8_t>(s.state));
        w.u32(s.attempts);
        w.str(s.lastError);
        serializeIndices(w, s.configIndices);
    }
    return writeVersionedFile(path, manifestMagic, formatVersion,
                              w.buffer());
}

StatusOr<SweepManifest>
SweepManifest::load(const std::string &path)
{
    TMCC_ASSIGN_OR_RETURN(
        const std::vector<std::uint8_t> payload,
        readVersionedFile(path, manifestMagic, formatVersion));
    ByteReader r(payload);
    SweepManifest m;
    m.gridKey = r.str();
    m.totalConfigs = r.u64();
    const std::uint64_t n = r.count(4 + 1 + 4 + 8 + 8);
    m.shards.reserve(n);
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        Shard s;
        s.id = r.u32();
        const std::uint8_t state = r.u8();
        if (state > static_cast<std::uint8_t>(ShardState::Failed))
            return Status::corruption("manifest shard state out of range");
        s.state = static_cast<ShardState>(state);
        s.attempts = r.u32();
        s.lastError = r.str();
        TMCC_RETURN_IF_ERROR(
            deserializeIndices(r, s.configIndices, "manifest indices"));
        m.shards.push_back(std::move(s));
    }
    TMCC_RETURN_IF_ERROR(r.finish("SweepManifest"));
    return m;
}

} // namespace tmcc
