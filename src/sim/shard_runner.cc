#include "sim/shard_runner.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/log.hh"
#include "sim/checkpoint.hh"
#include "sim/runner.hh"
#include "sim/sweep_queue.hh"

namespace tmcc
{

namespace
{

std::atomic<std::uint64_t> sweepsTotal{0};
std::atomic<std::uint64_t> shardRunsTotal{0};
std::atomic<std::uint64_t> retriesTotal{0};
std::atomic<std::uint64_t> failedShardsTotal{0};
std::atomic<std::uint64_t> resumedShardsTotal{0};

std::string
shardFile(const std::string &dir, std::uint32_t id, const char *ext)
{
    return sweepShardFile(dir, id, ext);
}

std::string
manifestPath(const std::string &dir)
{
    return dir + "/MANIFEST.tmccsweep";
}

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Describe how a waitpid status ended. */
std::string
exitDescription(int status)
{
    if (WIFEXITED(status))
        return "exit status " + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status))
        return std::string("killed by signal ") +
               std::to_string(WTERMSIG(status)) + " (" +
               strsignal(WTERMSIG(status)) + ")";
    return "unknown wait status " + std::to_string(status);
}

/** The supervisor's in-memory view of one shard. */
struct ShardTask
{
    SweepManifest::Shard *manifest = nullptr;
    bool done = false;
    bool failed = false;
    pid_t pid = -1;          //!< running worker, -1 when idle
    double readyAt = 0.0;    //!< backoff gate for the next launch
    double deadline = 0.0;   //!< watchdog deadline (0 = none)
    bool timedOut = false;   //!< this attempt was killed by the watchdog
};

} // namespace

ShardRunner::ShardRunner(ShardOptions opts) : opts_(std::move(opts))
{
    fatalIf(opts_.shards == 0, "ShardOptions::shards must be positive");
    fatalIf(opts_.maxAttempts == 0,
            "ShardOptions::maxAttempts must be positive");
    fatalIf(opts_.workerPath.empty(),
            "ShardOptions::workerPath must name the worker binary");
    fatalIf(opts_.sweepDir.empty(),
            "ShardOptions::sweepDir must name the sweep directory");
}

ShardRunner::Totals
ShardRunner::totals()
{
    Totals t;
    t.sweeps = sweepsTotal.load();
    t.shardRuns = shardRunsTotal.load();
    t.retries = retriesTotal.load();
    t.failedShards = failedShardsTotal.load();
    t.resumedShards = resumedShardsTotal.load();
    return t;
}

void
ShardRunner::resetTotals()
{
    sweepsTotal = 0;
    shardRunsTotal = 0;
    retriesTotal = 0;
    failedShardsTotal = 0;
    resumedShardsTotal = 0;
}

SweepOutcome
ShardRunner::run(const std::vector<SimConfig> &grid)
{
    fatalIf(grid.empty(), "sharded sweep needs a non-empty grid");
    sweepsTotal.fetch_add(1);

    std::error_code ec;
    std::filesystem::create_directories(opts_.sweepDir, ec);
    fatalIf(!std::filesystem::is_directory(opts_.sweepDir, ec),
            "cannot create sweep directory " + opts_.sweepDir);

    const std::string key = sweepGridKey(grid);
    const std::string mpath = manifestPath(opts_.sweepDir);

    // Load or create the manifest.  A manifest for a different grid
    // means the directory belongs to another sweep — refuse rather than
    // silently mixing result sets; a corrupt manifest restarts the
    // sweep from the (still CRC-verified) shard result files.
    SweepManifest manifest;
    bool have_manifest = false;
    if (std::filesystem::exists(mpath, ec)) {
        auto loaded = SweepManifest::load(mpath);
        if (loaded.ok()) {
            manifest = std::move(loaded).value();
            fatalIf(manifest.gridKey != key,
                    "sweep directory " + opts_.sweepDir +
                        " holds a different sweep (manifest grid " +
                        manifest.gridKey + ", this grid " + key +
                        "); use a fresh --sweep-dir");
            fatalIf(manifest.totalConfigs != grid.size(),
                    "sweep manifest config count mismatch");
            have_manifest = true;
        } else {
            warn("sweep manifest rejected, starting over: " +
                 loaded.status().toString());
        }
    }
    if (!have_manifest) {
        manifest.gridKey = key;
        manifest.totalConfigs = grid.size();
        const unsigned n_shards = static_cast<unsigned>(
            std::min<std::size_t>(opts_.shards, grid.size()));
        manifest.shards.assign(n_shards, SweepManifest::Shard{});
        for (unsigned s = 0; s < n_shards; ++s)
            manifest.shards[s].id = s;
        // Round-robin partition: adjacent grid entries land on
        // different shards, balancing heterogeneous-cost grids.
        for (std::size_t i = 0; i < grid.size(); ++i)
            manifest.shards[i % n_shards].configIndices.push_back(i);
    }

    SweepOutcome out;
    out.results.resize(grid.size());
    out.resultValid.assign(grid.size(), false);

    const auto save_manifest = [&] {
        const Status st = manifest.save(mpath);
        if (!st.ok())
            warn("cannot save sweep manifest: " + st.toString());
    };

    const auto merge = [&](const ShardResultFile &file) {
        for (std::size_t i = 0; i < file.configIndices.size(); ++i) {
            const std::uint64_t idx = file.configIndices[i];
            fatalIf(idx >= grid.size(),
                    "shard result index beyond the grid");
            out.results[idx] = file.results[i];
            out.resultValid[idx] = true;
            SimRunner::recordExternalRun(file.results[i]);
        }
        // Fold the worker's checkpoint traffic into this process's
        // counters (merged BENCH reports carry sweep-wide hit counts).
        CheckpointStore::Stats ck;
        ck.memoryHits = file.ckptMemoryHits;
        ck.diskHits = file.ckptDiskHits;
        ck.misses = file.ckptMisses;
        ck.rejectedFiles = file.ckptRejected;
        CheckpointStore::global().recordExternal(ck);
    };

    /**
     * A shard marked Done must still have a valid result file whose
     * key and indices match the manifest; anything else re-runs it.
     */
    const auto try_resume = [&](SweepManifest::Shard &shard) -> bool {
        auto loaded =
            ShardResultFile::load(shardFile(opts_.sweepDir, shard.id,
                                            "result"));
        if (!loaded.ok()) {
            warn("shard " + std::to_string(shard.id) +
                 " result rejected on resume, re-running: " +
                 loaded.status().toString());
            return false;
        }
        const ShardResultFile &file = loaded.value();
        if (file.gridKey != key ||
            file.configIndices != shard.configIndices) {
            warn("shard " + std::to_string(shard.id) +
                 " result does not match the manifest, re-running");
            return false;
        }
        merge(file);
        return true;
    };

    std::vector<ShardTask> tasks(manifest.shards.size());
    unsigned unfinished = 0;
    for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
        tasks[s].manifest = &manifest.shards[s];
        SweepManifest::Shard &shard = manifest.shards[s];
        if (shard.state == ShardState::Done && try_resume(shard)) {
            tasks[s].done = true;
            ++out.resumedShards;
            resumedShardsTotal.fetch_add(1);
            ++out.completedShards;
            continue;
        }
        // Missing/invalid results, interrupted (Pending) and Failed
        // shards all re-run with a fresh attempt budget.
        shard.state = ShardState::Pending;
        shard.attempts = 0;
        shard.lastError.clear();
        ++unfinished;
    }
    save_manifest();

    if (opts_.verbose && out.resumedShards > 0)
        std::printf("[sweep] resumed %u/%zu shards from %s\n",
                    out.resumedShards, tasks.size(),
                    opts_.sweepDir.c_str());

    const auto launch = [&](std::size_t s) {
        ShardTask &task = tasks[s];
        SweepManifest::Shard &shard = *task.manifest;
        ++shard.attempts;

        ShardSpec spec;
        spec.gridKey = key;
        spec.shardId = shard.id;
        spec.attempt = shard.attempts;
        spec.workerJobs = opts_.workerJobs;
        spec.resultPath = shardFile(opts_.sweepDir, shard.id, "result");
        spec.configIndices = shard.configIndices;
        for (std::uint64_t idx : shard.configIndices)
            spec.configs.push_back(grid[idx]);
        const std::string spath =
            shardFile(opts_.sweepDir, shard.id, "spec");
        fatalIf(!spec.save(spath).ok(),
                "cannot write shard spec " + spath);

        const pid_t pid = ::fork();
        fatalIf(pid < 0, "fork() failed for shard " +
                             std::to_string(shard.id));
        if (pid == 0) {
            ::execl(opts_.workerPath.c_str(), opts_.workerPath.c_str(),
                    "--shard-spec", spath.c_str(),
                    static_cast<char *>(nullptr));
            // Exec failure: report via a recognizable exit code; the
            // supervisor will retry and eventually mark the shard
            // failed with this status in the manifest.
            std::fprintf(stderr, "exec %s failed: %s\n",
                         opts_.workerPath.c_str(),
                         std::strerror(errno));
            ::_exit(127);
        }
        task.pid = pid;
        task.timedOut = false;
        task.deadline = opts_.timeoutSeconds > 0.0
                            ? monotonicSeconds() + opts_.timeoutSeconds
                            : 0.0;
        shardRunsTotal.fetch_add(1);
        if (opts_.verbose)
            std::printf("[sweep] shard %u attempt %u/%u: worker pid %d "
                        "(%zu configs)\n",
                        shard.id, shard.attempts, opts_.maxAttempts,
                        static_cast<int>(pid),
                        shard.configIndices.size());
    };

    const auto fail_attempt = [&](std::size_t s,
                                  const std::string &why) {
        ShardTask &task = tasks[s];
        SweepManifest::Shard &shard = *task.manifest;
        task.pid = -1;
        shard.lastError = why;
        if (shard.attempts >= opts_.maxAttempts) {
            shard.state = ShardState::Failed;
            task.failed = true;
            --unfinished;
            ++out.failedShards;
            failedShardsTotal.fetch_add(1);
            warn("shard " + std::to_string(shard.id) +
                 " failed permanently after " +
                 std::to_string(shard.attempts) + " attempts: " + why);
        } else {
            const double delay = std::min(
                opts_.backoffSeconds *
                    std::pow(2.0, static_cast<double>(shard.attempts) -
                                      1.0),
                opts_.backoffCapSeconds);
            task.readyAt = monotonicSeconds() + delay;
            ++out.retries;
            retriesTotal.fetch_add(1);
            if (opts_.verbose)
                std::printf("[sweep] shard %u attempt %u failed (%s), "
                            "retrying in %.2fs\n",
                            shard.id, shard.attempts, why.c_str(),
                            delay);
        }
        save_manifest();
    };

    const auto complete_attempt = [&](std::size_t s) {
        ShardTask &task = tasks[s];
        SweepManifest::Shard &shard = *task.manifest;
        auto loaded = ShardResultFile::load(
            shardFile(opts_.sweepDir, shard.id, "result"));
        if (!loaded.ok()) {
            fail_attempt(s, "result file rejected: " +
                                loaded.status().toString());
            return;
        }
        const ShardResultFile &file = loaded.value();
        if (file.gridKey != key ||
            file.configIndices != shard.configIndices) {
            fail_attempt(s, "result file does not match the shard");
            return;
        }
        merge(file);
        task.pid = -1;
        task.done = true;
        shard.state = ShardState::Done;
        shard.lastError.clear();
        --unfinished;
        ++out.completedShards;
        save_manifest();
        if (opts_.verbose)
            std::printf("[sweep] shard %u done (%zu configs)\n",
                        shard.id, shard.configIndices.size());
    };

    // Supervision loop: launch ready shards up to the concurrency cap,
    // reap exits, and enforce the watchdog.
    while (unfinished > 0) {
        const double now = monotonicSeconds();
        unsigned running = 0;
        for (const ShardTask &t : tasks)
            running += t.pid >= 0 ? 1 : 0;

        for (std::size_t s = 0;
             s < tasks.size() && running < opts_.shards; ++s) {
            ShardTask &t = tasks[s];
            if (t.done || t.failed || t.pid >= 0 || t.readyAt > now)
                continue;
            launch(s);
            ++running;
        }

        bool progressed = false;
        for (std::size_t s = 0; s < tasks.size(); ++s) {
            ShardTask &t = tasks[s];
            if (t.pid < 0)
                continue;

            int status = 0;
            const pid_t r = ::waitpid(t.pid, &status, WNOHANG);
            if (r == t.pid) {
                progressed = true;
                if (t.timedOut)
                    fail_attempt(s, "timed out after " +
                                        std::to_string(
                                            opts_.timeoutSeconds) +
                                        "s (killed)");
                else if (WIFEXITED(status) && WEXITSTATUS(status) == 0)
                    complete_attempt(s);
                else
                    fail_attempt(s, exitDescription(status));
                continue;
            }
            fatalIf(r < 0, "waitpid failed for shard " +
                               std::to_string(t.manifest->id));

            if (t.deadline > 0.0 && monotonicSeconds() > t.deadline &&
                !t.timedOut) {
                // Watchdog: SIGKILL the worker; the exit is reaped on a
                // later iteration and recorded as a timeout.
                t.timedOut = true;
                ::kill(t.pid, SIGKILL);
                if (opts_.verbose)
                    std::printf("[sweep] shard %u exceeded %.1fs, "
                                "killing worker %d\n",
                                t.manifest->id, opts_.timeoutSeconds,
                                static_cast<int>(t.pid));
            }
        }

        if (!progressed && unfinished > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }

    out.shards = manifest.shards;
    return out;
}

int
ShardRunner::workerMain(const std::string &specPath)
{
    auto loaded = ShardSpec::load(specPath);
    if (!loaded.ok()) {
        std::fprintf(stderr, "shard worker: %s\n",
                     loaded.status().toString().c_str());
        return 3;
    }
    const ShardSpec &spec = loaded.value();

    // Sweep workers share one disk checkpoint directory per sweep
    // (<sweep-dir>/ckpt) unless the caller configured one explicitly
    // (TMCC_CKPT_DIR / --ckpt-dir), so all shards of a sweep restore
    // each distinct setup from the first worker that built it instead
    // of every worker rebuilding cold.
    CheckpointStore &store = CheckpointStore::global();
    if (store.enabled() && store.diskDir().empty()) {
        const std::string sweep_dir =
            std::filesystem::path(specPath).parent_path().string();
        store.setDiskDir((sweep_dir.empty() ? "." : sweep_dir) +
                         "/ckpt");
    }
    const CheckpointStore::Stats ck_before = store.stats();

    const bool kill_hook =
        sweepTestHookFires("TMCC_SHARD_TEST_KILL", spec.shardId,
                           spec.attempt);
    const bool hang_hook =
        sweepTestHookFires("TMCC_SHARD_TEST_HANG", spec.shardId,
                           spec.attempt);
    const bool corrupt_hook =
        sweepTestHookFires("TMCC_SHARD_TEST_CORRUPT", spec.shardId,
                           spec.attempt);

    SimRunner runner(spec.workerJobs ? spec.workerJobs : 1);
    ShardResultFile file;
    file.gridKey = spec.gridKey;
    file.shardId = spec.shardId;
    file.attempt = spec.attempt;
    file.configIndices = spec.configIndices;
    if (kill_hook || hang_hook) {
        // Config-at-a-time so the fault lands mid-shard: after real
        // work has been done but before anything is published.
        file.results.reserve(spec.configs.size());
        for (std::size_t i = 0; i < spec.configs.size(); ++i) {
            file.results.push_back(
                runner.run({spec.configs[i]}).front());
            if (i == 0 && kill_hook) {
                // Simulate a crash/OOM-kill: die without publishing,
                // exactly like an external SIGKILL.
                ::raise(SIGKILL);
            }
            if (i == 0 && hang_hook) {
                // Simulate a wedged worker for the watchdog to reap.
                for (;;)
                    std::this_thread::sleep_for(
                        std::chrono::seconds(3600));
            }
        }
    } else {
        file.results = runner.run(spec.configs);
    }

    const CheckpointStore::Stats ck_after = store.stats();
    file.ckptMemoryHits = ck_after.memoryHits - ck_before.memoryHits;
    file.ckptDiskHits = ck_after.diskHits - ck_before.diskHits;
    file.ckptMisses = ck_after.misses - ck_before.misses;
    file.ckptRejected = ck_after.rejectedFiles - ck_before.rejectedFiles;

    const Status st = file.save(spec.resultPath);
    if (!st.ok()) {
        std::fprintf(stderr, "shard worker: cannot publish %s: %s\n",
                     spec.resultPath.c_str(), st.toString().c_str());
        return 4;
    }

    if (corrupt_hook) {
        // Flip one payload byte in place: the file keeps its size but
        // fails its CRC, exercising the supervisor's rejection path.
        FILE *f = std::fopen(spec.resultPath.c_str(), "r+b");
        if (f != nullptr) {
            std::fseek(f, -1, SEEK_END);
            const int c = std::fgetc(f);
            std::fseek(f, -1, SEEK_END);
            std::fputc(c ^ 0xff, f);
            std::fclose(f);
        }
    }
    return 0;
}

} // namespace tmcc
