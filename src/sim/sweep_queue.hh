/**
 * @file
 * Lease-based sweep work queue (docs/SWEEP.md, phase 2): the on-disk
 * protocol that lets N long-running workers on any machines sharing a
 * filesystem serve one sweep, with crash recovery and no coordinator.
 *
 * A *queue directory* holds one subdirectory per enqueued sweep, each
 * an ordinary sweep directory (manifest + shard specs + CRC'd shard
 * result files, exactly the PR-5 artifacts) plus two new file kinds:
 *
 *  - REQUEST.tmccq (QueueRequest): the enqueue marker workers scan
 *    for, written last so a request is only visible once its specs are
 *    complete.
 *  - shard-NNN.claim (ShardClaim): the lease.  Workers claim a shard
 *    by atomically creating its claim file (versioned-file
 *    create-if-absent via link(2) — exactly one creator wins, even
 *    over NFS), renew it by rewriting it (heartbeat; the file's mtime
 *    is the lease clock), and release it after publishing the result.
 *    A claim whose mtime is older than its recorded lease is *stale*
 *    (the worker crashed, was SIGKILLed, or got partitioned): any
 *    worker may reclaim it — delete, then race to re-create.
 *  - shard-NNN.progress (ShardProgress): per-shard progress the worker
 *    streams while it runs (configs done, accesses simulated, the
 *    latest epoch snapshot) for the enqueuing client to display.
 *
 * Safety: results are deterministic, so the worst consequence of the
 * unavoidable distributed races (a slow owner publishing after its
 * lease was reclaimed) is duplicate work — both workers publish
 * bit-identical deterministic results via atomic rename, and merged
 * metrics stay byte-identical to a serial run.  Clocks: staleness
 * compares the claim's mtime (stamped by the filesystem server) with
 * the observer's wall clock, so leases must comfortably exceed
 * cross-host clock skew; the default (15s) does.
 *
 * QueueClient is the enqueuing side (`tmcc_sim --sweep ...
 * --dispatch=queue`): partition the grid, write the artifacts, poll
 * for results, merge exactly as the fork supervisor does.
 * SweepDaemon (sweep_daemon.hh, `tmcc_simd`) is the serving side.
 */

#ifndef TMCC_SIM_SWEEP_QUEUE_HH
#define TMCC_SIM_SWEEP_QUEUE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"
#include "sim/shard_runner.hh"
#include "sim/sim_config.hh"
#include "sim/sim_result.hh"

namespace tmcc
{

/** `shard-NNN.<ext>` within a sweep directory (shared by the fork
 * supervisor and the queue protocol). */
std::string sweepShardFile(const std::string &dir, std::uint32_t id,
                           const char *ext);

/** REQUEST.tmccq within a sweep directory. */
std::string sweepRequestPath(const std::string &sweepDir);

/**
 * Whether a "<shard>@<attempt|*>" failure-injection hook env var (see
 * shard_runner.hh / sweep_daemon.hh) fires for this shard attempt.
 */
bool sweepTestHookFires(const char *envName, std::uint32_t shard,
                        std::uint32_t attempt);

/** Default shard/worker count when a sharded dispatch mode is chosen
 * without an explicit --shards/TMCC_SHARDS: hardware_concurrency
 * clamped to [1, 64] (0 when unknown maps to 1). */
unsigned defaultShardCount();

/** The enqueue marker (REQUEST.tmccq) workers scan for. */
struct QueueRequest
{
    static constexpr std::uint32_t formatVersion = 1;

    std::string gridKey;
    std::uint64_t totalConfigs = 0;
    std::uint32_t shardCount = 0;
    std::uint32_t workerJobs = 1; //!< advisory SimRunner threads

    Status save(const std::string &path) const;
    static StatusOr<QueueRequest> load(const std::string &path);
};

/** The lease record (shard-NNN.claim). */
struct ShardClaim
{
    static constexpr std::uint32_t formatVersion = 1;

    std::string gridKey;
    std::uint32_t shardId = 0;
    std::uint32_t attempt = 1; //!< 1 + completed prior claims
    std::string owner;         //!< worker id, e.g. "host:pid"
    std::uint64_t heartbeatSeq = 0; //!< bumped on every renewal
    double leaseSeconds = 15.0;     //!< staleness threshold

    Status saveExclusive(const std::string &path) const;
    Status saveRenew(const std::string &path) const;
    static StatusOr<ShardClaim> load(const std::string &path);
};

/** Worker progress (shard-NNN.progress), streamed for the client. */
struct ShardProgress
{
    static constexpr std::uint32_t formatVersion = 1;

    std::string gridKey;
    std::uint32_t shardId = 0;
    std::uint32_t attempt = 1;
    std::string owner;
    std::uint64_t configsDone = 0;
    std::uint64_t configsTotal = 0;
    std::uint64_t accessesDone = 0; //!< simulated accesses so far
    std::uint64_t epochsSeen = 0;   //!< epoch snapshots so far
    // Latest epoch snapshot of the most recently finished config.
    double lastMl2AccessRate = 0.0;
    double lastCteHitRate = 0.0;
    double lastDramUsedBytes = 0.0;

    Status save(const std::string &path) const;
    static StatusOr<ShardProgress> load(const std::string &path);
};

/** Seconds since the claim file's last write (its renewal heartbeat),
 * measured against the local wall clock; < 0 when it cannot be
 * stat'ed (e.g. already released). */
double shardClaimAgeSeconds(const std::string &path);

/** Outcome of one claim attempt. */
struct ClaimAttempt
{
    bool claimed = false;
    bool reclaimed = false; //!< a stale/corrupt claim was displaced
    ShardClaim claim;       //!< valid iff claimed
    std::string reason;     //!< why not, when !claimed
};

/**
 * Try to acquire the lease on shard `shardId` of the sweep in `dir`:
 *  - no claim file        -> exclusive-create (attempt 1)
 *  - live claim           -> not claimed ("held by <owner>")
 *  - stale claim          -> delete it, race to re-create
 *                            (attempt = stale attempt + 1)
 *  - corrupt claim        -> never trusted: treated as stale
 * Losing the create race (another worker linked first) is a normal
 * "not claimed" outcome, not an error.
 */
ClaimAttempt tryClaimShard(const std::string &dir,
                           const std::string &gridKey,
                           std::uint32_t shardId,
                           const std::string &owner,
                           double leaseSeconds);

/**
 * Renew the lease: verify the on-disk claim is still ours (it may have
 * been reclaimed if we stalled past the lease), bump the heartbeat
 * sequence and rewrite the file (refreshing its mtime).  An error
 * means the lease was lost — the worker must abandon the shard.
 */
Status renewShardClaim(const std::string &dir, ShardClaim &claim);

/** Drop the lease after publishing (best effort; only if still ours). */
void releaseShardClaim(const std::string &dir, const ShardClaim &claim);

/** Policy knobs for the enqueuing client. */
struct QueueOptions
{
    /** Queue directory shared with the workers (required). */
    std::string queueDir;

    /** Sweep subdirectory name; empty = "sweep-<gridkey8>". */
    std::string sweepName;

    /** Shard count for a fresh enqueue; 0 = defaultShardCount().  A
     * re-enqueued sweep keeps its recorded partition. */
    unsigned shards = 0;

    /** Advisory SimRunner threads per worker (workers may override). */
    unsigned workerJobs = 1;

    /** Result-poll interval. */
    double pollSeconds = 0.5;

    /** Give up after this long without completion; 0 = wait forever.
     * Unfinished shards surface as failed in the outcome. */
    double timeoutSeconds = 0.0;

    bool verbose = true;

    /** fatal() on out-of-contract values (strict CLI validation). */
    void validate() const;
};

/**
 * The enqueuing side of the queue: write the sweep artifacts under the
 * queue directory, wait for workers to publish every shard, and merge
 * with exactly the fork supervisor's validation (grid key + config
 * indices + CRC), so the merged outcome is indistinguishable from a
 * `--dispatch=fork` or serial run.
 */
class QueueClient
{
  public:
    explicit QueueClient(QueueOptions opts); //!< validates opts

    /**
     * Write (or re-validate, when resuming) the sweep directory for
     * `grid` and return its path.  Fatal on caller errors: empty grid,
     * unusable queue dir, a sweep dir recorded for a different grid.
     */
    std::string enqueue(const std::vector<SimConfig> &grid);

    /** enqueue() + poll until every shard is merged or the timeout
     * expires.  Worker-side failures only ever delay completion (the
     * lease protocol retries them), so failedShards > 0 means the
     * timeout fired first. */
    SweepOutcome run(const std::vector<SimConfig> &grid);

    /** Process-wide queue-dispatch totals (BenchReport fields). */
    struct Totals
    {
        std::uint64_t sweeps = 0;          //!< enqueued
        std::uint64_t mergedShards = 0;    //!< results merged
        std::uint64_t reclaimedShards = 0; //!< merged with attempt > 1
        std::uint64_t resumedShards = 0;   //!< satisfied on enqueue
    };
    static Totals totals();
    static void resetTotals(); //!< tests

  private:
    QueueOptions opts_;
};

} // namespace tmcc

#endif // TMCC_SIM_SWEEP_QUEUE_HH
