/**
 * @file
 * On-disk artifacts of a sharded sweep (see docs/SWEEP.md):
 *
 *  - ShardSpec: the work order the supervisor hands a worker process —
 *    the full SimConfigs of one shard plus their indices in the
 *    original grid, the sweep's grid key, and the attempt number.
 *  - ShardResultFile: what a worker publishes back — the SimResults of
 *    its configs, bit-exact (doubles travel as raw bit patterns), so a
 *    merged sweep is indistinguishable from a serial SimRunner run.
 *  - SweepManifest: the supervisor's durable record of the sweep — the
 *    grid key, the shard partition, and each shard's state/attempts —
 *    rewritten atomically after every transition so an interrupted
 *    sweep resumes by re-running only missing/failed shards.
 *
 * All three use the common versioned-file container (magic + format
 * version + CRC-32 + atomic temp-file+rename publication); corrupt or
 * truncated files are rejected with a Status and treated as "re-run",
 * never trusted and never fatal.
 */

#ifndef TMCC_SIM_SWEEP_MANIFEST_HH
#define TMCC_SIM_SWEEP_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.hh"
#include "common/status.hh"
#include "sim/sim_config.hh"
#include "sim/sim_result.hh"

namespace tmcc
{

// Full-fidelity SimConfig/SimResult serialization.  Every field
// travels; doubles are encoded as their exact bit patterns so a
// round trip reproduces the value bit-identically.
void serializeSimConfig(ByteWriter &w, const SimConfig &cfg);
Status deserializeSimConfig(ByteReader &r, SimConfig &cfg);
void serializeSimResult(ByteWriter &w, const SimResult &res);
Status deserializeSimResult(ByteReader &r, SimResult &res);

/**
 * Deterministic fingerprint of a config grid (FNV-1a over the
 * serialized configs).  A sweep directory belongs to exactly one grid:
 * resume validates the stored key against the requested grid.
 */
std::string sweepGridKey(const std::vector<SimConfig> &grid);

/** One worker's work order (shard-NNN.spec). */
struct ShardSpec
{
    // v2: SimConfig gained the kernel mode + sampling geometry.
    // v3: SimConfig gained the multi-tenant knobs.
    static constexpr std::uint32_t formatVersion = 3;

    std::string gridKey;
    std::uint32_t shardId = 0;
    std::uint32_t attempt = 1;   //!< 1-based; rewritten per retry
    std::uint32_t workerJobs = 1;
    std::string resultPath;      //!< where the worker publishes results
    std::vector<std::uint64_t> configIndices; //!< into the full grid
    std::vector<SimConfig> configs;

    Status save(const std::string &path) const;
    static StatusOr<ShardSpec> load(const std::string &path);
};

/** One worker's published results (shard-NNN.result). */
struct ShardResultFile
{
    // v2: SimResult gained the interval-sampling summary.
    // v3: attempt + the worker's checkpoint-store traffic while
    //     running the shard, so merged BENCH reports carry sweep-wide
    //     checkpoint hit counts and lease reclaims are observable.
    // v4: SimResult gained the per-tenant isolation stats.
    static constexpr std::uint32_t formatVersion = 4;

    std::string gridKey;
    std::uint32_t shardId = 0;
    std::uint32_t attempt = 1; //!< the attempt/claim that published
    std::vector<std::uint64_t> configIndices;
    std::vector<SimResult> results; //!< parallel to configIndices

    // CheckpointStore delta while this shard ran in the worker.
    std::uint64_t ckptMemoryHits = 0;
    std::uint64_t ckptDiskHits = 0;
    std::uint64_t ckptMisses = 0;
    std::uint64_t ckptRejected = 0;

    Status save(const std::string &path) const;
    static StatusOr<ShardResultFile> load(const std::string &path);
};

/** A shard's lifecycle state as recorded in the manifest. */
enum class ShardState : std::uint8_t
{
    Pending = 0, //!< not yet (successfully) run
    Done = 1,    //!< result file published and CRC-verified
    Failed = 2,  //!< exhausted its attempt budget
};

const char *shardStateName(ShardState s);

/** The supervisor's durable sweep record (MANIFEST.tmccsweep). */
struct SweepManifest
{
    static constexpr std::uint32_t formatVersion = 1;

    struct Shard
    {
        std::uint32_t id = 0;
        ShardState state = ShardState::Pending;
        std::uint32_t attempts = 0; //!< attempts consumed so far
        std::string lastError;      //!< last failure description
        std::vector<std::uint64_t> configIndices;
    };

    std::string gridKey;
    std::uint64_t totalConfigs = 0;
    std::vector<Shard> shards;

    Status save(const std::string &path) const;
    static StatusOr<SweepManifest> load(const std::string &path);
};

} // namespace tmcc

#endif // TMCC_SIM_SWEEP_MANIFEST_HH
