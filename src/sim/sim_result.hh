/**
 * @file
 * Aggregated results of one simulation run: everything the paper's
 * tables and figures consume.
 */

#ifndef TMCC_SIM_SIM_RESULT_HH
#define TMCC_SIM_SIM_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace tmcc
{

/** One sampled headline metric: per-window mean and 95% CI radius. */
struct SampleMetric
{
    std::string name;
    double mean = 0.0;
    double ci95 = 0.0; //!< half-width; 0 when only one window ran
};

/**
 * Interval-sampling summary (SimConfig::sampleWindows > 0): the
 * per-window mean and Student-t 95% confidence interval of every
 * headline metric, plus the sampling geometry that produced them.
 * Empty (windows == 0) for exact runs.
 */
struct SampleSummary
{
    std::uint64_t windows = 0;         //!< detailed windows measured
    std::uint64_t windowAccesses = 0;  //!< per-core accesses per window
    std::uint64_t warmupAccesses = 0;  //!< detailed warm-up per window
    std::uint64_t ffAccesses = 0;      //!< fast-forwarded accesses/core
    std::vector<SampleMetric> metrics;
};

/**
 * One epoch of the measured window (SimConfig::statsInterval > 0):
 * headline gauges plus the per-key counter deltas since the previous
 * snapshot.  Summing `delta` across epochs reproduces the end-of-run
 * totals for every monotonic counter.
 */
struct EpochStat
{
    std::uint64_t accesses = 0;      //!< cumulative measured accesses
    std::uint64_t deltaAccesses = 0; //!< accesses in this epoch
    Tick endTick = 0;                //!< relative to measurement start

    double ml2AccessRate = 0.0; //!< ML2 / (LLC misses + writebacks)
    double cteHitRate = 0.0;    //!< CTE-cache hit rate in this epoch
    double dramUsedBytes = 0.0; //!< live bytes (absolute gauge)

    StatDump delta; //!< counter deltas vs. the previous epoch
};

/**
 * Per-tenant isolation stats (memcloud runs): what each guest address
 * space experienced during the measured window.  Empty for
 * single-tenant workloads.
 */
struct TenantStat
{
    std::uint64_t accesses = 0;       //!< measured accesses by tenant
    std::uint64_t ml2Faults = 0;      //!< demand ML2 faults by tenant
    std::uint64_t footprintBytes = 0; //!< tenant region size
    Histogram ml2FaultLatency{0.0, 20000.0, 100};
};

/** Measured outcomes of one run. */
struct SimResult
{
    // Throughput.
    std::uint64_t accesses = 0;
    std::uint64_t storeAccesses = 0;
    Tick elapsed = 0;

    /** Performance: accesses per nanosecond across all cores. */
    double
    accessesPerNs() const
    {
        return elapsed ? static_cast<double>(accesses) /
                             ticksToNs(elapsed)
                       : 0.0;
    }

    /** The paper's metric shape: stores per CPU cycle (2.8GHz). */
    double
    storesPerCycle() const
    {
        return elapsed ? static_cast<double>(storeAccesses) /
                             (ticksToNs(elapsed) * 2.8)
                       : 0.0;
    }

    // Translation behaviour (Figs. 1, 5).
    std::uint64_t tlbMisses = 0;
    std::uint64_t tlbHits = 0;
    std::uint64_t llcMisses = 0;        //!< demand L3 misses
    std::uint64_t llcWritebacks = 0;
    std::uint64_t cteHits = 0;
    std::uint64_t cteMisses = 0;
    std::uint64_t cteMissesAfterTlbMiss = 0;

    // ML1 access split (Fig. 19).
    std::uint64_t ml1CteHit = 0;
    std::uint64_t ml1Parallel = 0;
    std::uint64_t ml1Mismatch = 0;
    std::uint64_t ml1Serial = 0;

    // ML2 (Fig. 21).
    std::uint64_t ml2Accesses = 0;

    // Latency (Fig. 18).
    double avgL3MissLatencyNs = 0.0;

    // Latency distributions over the measured window (Fig. 18's
    // distribution-level claims).  Ranges cover the interesting span
    // at full timing scale; the overflow bucket catches the tail.
    Histogram l3MissLatency{0.0, 1000.0, 100};
    Histogram pageWalkLatency{0.0, 2000.0, 100};
    Histogram ml2FaultLatency{0.0, 20000.0, 100};

    // Bandwidth (Fig. 16 / 22).
    double readBusUtil = 0.0;
    double writeBusUtil = 0.0;

    // Capacity.
    std::uint64_t footprintBytes = 0;
    std::uint64_t dramUsedBytes = 0;

    double
    compressionRatio() const
    {
        return dramUsedBytes
                   ? static_cast<double>(footprintBytes) /
                         static_cast<double>(dramUsedBytes)
                   : 1.0;
    }

    // Phase bookkeeping: wall-clock split between the setup phase
    // (construction + fast-forward placement or checkpoint restore)
    // and the measured phase.  Host-side metadata only — never part of
    // `stats`, so bit-identity comparisons ignore it.
    double setupSeconds = 0.0;
    double measureSeconds = 0.0;
    bool restoredFromCheckpoint = false;

    /** Every component's raw counters. */
    StatDump stats;

    /** Per-epoch time series (empty unless statsInterval > 0). */
    std::vector<EpochStat> epochs;

    /** Interval-sampling CI summary (empty unless sampleWindows > 0). */
    SampleSummary sample;

    /** Per-tenant isolation stats (empty unless workload=memcloud). */
    std::vector<TenantStat> tenants;
};

} // namespace tmcc

#endif // TMCC_SIM_SIM_RESULT_HH
