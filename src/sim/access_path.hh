/**
 * @file
 * The simulated access path, written once and instantiated for both
 * execution kernels.
 *
 * AccessEngine<Traits> contains the full per-access pipeline — TLB,
 * page walk (native or 2D nested), cache hierarchy, MC architecture,
 * prefetch issue, CTE-buffer maintenance — transliterated from the
 * original scalar System methods.  The traits select mechanics only,
 * never semantics:
 *
 *   - ScalarTraits: the oracle.  Out-of-line hierarchy calls through
 *     the public vector-based API and runtime Tracer checks, exactly
 *     like the historical one-access-at-a-time loop.
 *   - BatchTraits<Tracing>: the fast kernel.  Hierarchy member
 *     templates inline with fixed-capacity SmallVec sinks, and the
 *     tracing hooks compile away entirely when Tracing is false.
 *
 * Both instantiations execute the same statements against the same
 * state in the same order, which is what makes `--kernel=batch`
 * bit-identical to `--kernel=scalar` by construction (enforced by
 * tests/sim/kernel_identity_test.cc across all six architectures).
 *
 * System::ffStep — the functional fast-forward step used between
 * sampled windows — also lives here: it is traits-independent and
 * shared verbatim by both kernels.
 */

#ifndef TMCC_SIM_ACCESS_PATH_HH
#define TMCC_SIM_ACCESS_PATH_HH

#include <algorithm>
#include <vector>

#include "common/trace.hh"
#include "sim/system.hh"

namespace tmcc
{

/** The oracle kernel: historical scalar mechanics. */
struct ScalarTraits
{
    static constexpr bool inlineHierarchy = false;
    static constexpr bool tracing = true;
    using Outcome = AccessOutcome;
    using WbSink = std::vector<CacheLine>;
};

/** The batched kernel: inline hierarchy, fixed sinks. */
template <bool TracingOn>
struct BatchTraits
{
    static constexpr bool inlineHierarchy = true;
    static constexpr bool tracing = TracingOn;
    using Outcome = SmallOutcome;
    using WbSink = SmallVec<CacheLine, 4>;
};

template <class Traits>
struct AccessEngine
{
    using Outcome = typename Traits::Outcome;
    using WbSink = typename Traits::WbSink;

    static void
    handleMcResponse(System &sys, unsigned core, Addr paddr,
                     const McReadResponse &resp, bool from_walker,
                     bool after_tlb_miss, bool measuring)
    {
        // Piggybacked correct CTE: refresh the CTE buffer and lazily
        // patch the PTB in L2 when the stored embedded CTE was stale
        // (§V-A3).
        if (resp.hasCorrectCte && sys.osMc_ != nullptr) {
            const Addr stale_ptb =
                sys.cteBuffers_[core]->updateOnResponse(
                    pageNumber(paddr), resp.correctCte);
            if (stale_ptb != invalidAddr) {
                sys.osMc_->lazyUpdatePtb(stale_ptb, pageNumber(paddr),
                                         resp.correctCte);
                sys.hierarchy_->touchL2Dirty(core, stale_ptb);
            }
        }

        if constexpr (Traits::tracing) {
            if (sys.cfg_.arch != Arch::NoCompression &&
                !resp.cteCacheHit) {
                if (Tracer *tr = Tracer::active())
                    tr->instant("cte_miss", "mc", core,
                                ticksToNs(resp.complete));
            }
        }

        if (!measuring)
            return;
        ++sys.result_.llcMisses;
        if (sys.cfg_.arch != Arch::NoCompression) {
            if (resp.cteCacheHit)
                ++sys.result_.cteHits;
            else
                ++sys.result_.cteMisses;
            if (!resp.cteCacheHit && after_tlb_miss)
                ++sys.result_.cteMissesAfterTlbMiss;
        }
        if (resp.hitMl2) {
            ++sys.result_.ml2Accesses;
        } else {
            if (resp.cteCacheHit)
                ++sys.result_.ml1CteHit;
            else if (resp.parallelAccess)
                ++sys.result_.ml1Parallel;
            else if (resp.embeddedMismatch)
                ++sys.result_.ml1Mismatch;
            else
                ++sys.result_.ml1Serial;
        }
        (void)from_walker;
    }

    static Tick
    memoryAccess(System &sys, unsigned core, Addr paddr, bool is_write,
                 bool from_walker, Tick start, bool after_tlb_miss,
                 bool measuring)
    {
        Outcome out;
        if constexpr (Traits::inlineHierarchy)
            out = sys.hierarchy_->template accessT<Outcome>(
                core, paddr, is_write, from_walker);
        else
            out = sys.hierarchy_->access(core, paddr, is_write,
                                         from_walker);

        const Tick l1 = sys.cfg_.l1Cycles * sys.cpuPeriod_;
        const Tick l2 = sys.cfg_.l2Cycles * sys.cpuPeriod_;
        const Tick l3 = sys.cfg_.l3Cycles * sys.cpuPeriod_;
        const Tick noc = nsToTicks(sys.cfg_.nocToMcNs);

        Tick done = start;
        switch (out.level) {
          case HitLevel::L1:
            done = start + l1;
            break;
          case HitLevel::L2:
            done = start + l1 + l2;
            break;
          case HitLevel::L3:
            done = start + l1 + l2 + l3;
            break;
          case HitLevel::Memory: {
            McReadRequest req;
            req.core = core;
            req.paddr = paddr;
            req.when = start + l1 + l2 + l3 + noc;
            req.fromWalker = from_walker;
            if (sys.osMc_ != nullptr &&
                (sys.cfg_.arch == Arch::Tmcc ||
                 sys.cfg_.arch == Arch::BarebonePlusMl1)) {
                const CteBuffer::Entry *e =
                    sys.cteBuffers_[core]->lookup(pageNumber(paddr));
                if (e != nullptr && e->hasCte) {
                    req.hasEmbeddedCte = true;
                    req.embeddedCte = e->cte;
                }
            }
            const McReadResponse resp = sys.mc_->read(req);
            // Fig. 18 convention: the 53ns no-compression miss latency
            // is one NoC traversal plus the DRAM access; the return
            // path is folded into the DRAM/NoC figure.
            done = resp.complete;
            const Tick miss_start = start + l1 + l2 + l3;
            if (measuring) {
                const double lat_ns = ticksToNs(done - miss_start);
                sys.l3MissLatency_.sample(lat_ns);
                sys.result_.l3MissLatency.sample(lat_ns);
                if (resp.hitMl2) {
                    sys.result_.ml2FaultLatency.sample(lat_ns);
                    // Attribute the fault to the guest whose access is
                    // in flight (memcloud; the vector is empty and the
                    // guard never fires for single-tenant workloads).
                    if (sys.curTenant_ < sys.result_.tenants.size()) {
                        TenantStat &ts =
                            sys.result_.tenants[sys.curTenant_];
                        ++ts.ml2Faults;
                        ts.ml2FaultLatency.sample(lat_ns);
                    }
                }
            }
            if constexpr (Traits::tracing) {
                if (Tracer *tr = Tracer::active())
                    tr->complete("llc_miss", "mem", core,
                                 ticksToNs(miss_start),
                                 ticksToNs(done - miss_start));
            }

            handleMcResponse(sys, core, paddr, resp, from_walker,
                             after_tlb_miss, measuring);

            Outcome fill;
            if constexpr (Traits::inlineHierarchy)
                fill = sys.hierarchy_->template fillT<Outcome>(
                    core, paddr, is_write, resp.fillCompressedPtb,
                    from_walker);
            else
                fill = sys.hierarchy_->fill(core, paddr, is_write,
                                            resp.fillCompressedPtb,
                                            from_walker);
            for (const CacheLine &wb : fill.memWritebacks) {
                sys.mc_->writeback(wb.addr, done, wb.compressed);
                if (measuring)
                    ++sys.result_.llcWritebacks;
            }
            break;
          }
        }

        // Writebacks surfaced by promotions/evictions on the hit path.
        for (const CacheLine &wb : out.memWritebacks) {
            sys.mc_->writeback(wb.addr, done, wb.compressed);
            if (measuring)
                ++sys.result_.llcWritebacks;
        }

        // Walker fetch of a (possibly compressed) PTB: harvest embedded
        // CTEs into this core's CTE buffer.
        if (from_walker)
            sys.collectPtbCtes(core, blockAlign(paddr));

        // Prefetch proposals: background fills that stay in the page.
        for (Addr pf : out.prefetches) {
            if (pageNumber(pf) != pageNumber(paddr))
                continue;
            WbSink wbs;
            bool fetch;
            if constexpr (Traits::inlineHierarchy)
                fetch = sys.hierarchy_->prefetchLookupT(core, pf, wbs);
            else
                fetch = sys.hierarchy_->prefetchLookup(core, pf, wbs);
            if (fetch) {
                McReadRequest req;
                req.core = core;
                req.paddr = pf;
                req.when = start + l1 + l2 + l3 + noc;
                req.background = true;
                const McReadResponse resp = sys.mc_->read(req);
                handleMcResponse(sys, core, pf, resp, false, false,
                                 false);
                Outcome fill;
                if constexpr (Traits::inlineHierarchy)
                    fill = sys.hierarchy_->template fillT<Outcome>(
                        core, pf, false, false, false);
                else
                    fill = sys.hierarchy_->fill(core, pf, false, false,
                                                false);
                for (const CacheLine &wb : fill.memWritebacks)
                    sys.mc_->writeback(wb.addr, resp.complete,
                                       wb.compressed);
            }
            for (const CacheLine &wb : wbs)
                sys.mc_->writeback(wb.addr, done, wb.compressed);
        }

        return done;
    }

    static Addr
    hostTranslate(System &sys, unsigned core, Addr gpa, Tick &t,
                  bool measuring)
    {
        // A constituent host walk of the 2D walk (Fig. 12b): fetch the
        // host PTBs through the hierarchy; host PTBs are real PT pages,
        // so TMCC's embedded CTEs accelerate these fetches like any
        // walk.
        const WalkPlan plan = sys.hostWalkers_[core]->plan(gpa);
        panicIf(!plan.valid, "host page fault in nested walk");
        for (const WalkStep &step : plan.fetches)
            t = memoryAccess(sys, core, step.ptbAddr, false, true, t,
                             true, measuring);
        return (plan.ppn << pageShift) | (gpa & (pageSize - 1));
    }

    static Tick
    pageWalk(System &sys, unsigned core, Addr vaddr, Tick start,
             Ppn &ppn, bool measuring)
    {
        const WalkPlan plan = sys.walkers_[core]->plan(vaddr);
        panicIf(!plan.valid,
                "page fault: unmapped address in workload");

        Tick t = start + sys.cpuPeriod_; // walker dispatch
        if (sys.cfg_.nestedPaging) {
            // 2D walk: every guest PTB address is guest-physical and
            // must itself be host-translated before the fetch.
            for (const WalkStep &step : plan.fetches) {
                const Addr host_ptb = hostTranslate(
                    sys, core, step.ptbAddr, t, measuring);
                t = memoryAccess(sys, core, host_ptb, false, true, t,
                                 true, measuring);
            }
            // Final guest ppn -> host frame for the data access.
            const Addr host_data = hostTranslate(
                sys, core, plan.ppn << pageShift, t, measuring);
            ppn = pageNumber(host_data);
            sys.tlbs_[core]->insert(pageNumber(vaddr), ppn);
            return t;
        }
        for (const WalkStep &step : plan.fetches)
            t = memoryAccess(sys, core, step.ptbAddr, false, true, t,
                             true, measuring);

        ppn = plan.ppn;
        if (plan.huge) {
            const Ppn base =
                plan.ppn & ~((hugePageSize / pageSize) - 1);
            sys.tlbs_[core]->insertHuge(
                pageNumber(vaddr) & ~((hugePageSize / pageSize) - 1),
                base);
        } else {
            sys.tlbs_[core]->insert(pageNumber(vaddr), plan.ppn);
        }
        return t;
    }

    static void
    step(System &sys, unsigned core, const MemAccess &a, bool measuring)
    {
        System::CoreState &cs = sys.cores_[core];
        // memoryAccess only sees physical addresses, so the tenant of
        // the access in flight travels via the System (both kernels
        // funnel through here, keeping scalar/batch bit-identical).
        sys.curTenant_ = a.tenant;
        Tick t = cs.now + a.thinkCycles * sys.cpuPeriod_;

        Ppn ppn = 0;
        bool tlb_miss = false;
        if (!sys.tlbs_[core]->lookup(a.vaddr, ppn)) {
            tlb_miss = true;
            if (measuring)
                ++sys.result_.tlbMisses;
            const Tick walk_start = t;
            t = pageWalk(sys, core, a.vaddr, t, ppn, measuring);
            if (measuring)
                sys.result_.pageWalkLatency.sample(
                    ticksToNs(t - walk_start));
            if constexpr (Traits::tracing) {
                if (Tracer *tr = Tracer::active())
                    tr->complete("page_walk", "vm", core,
                                 ticksToNs(walk_start),
                                 ticksToNs(t - walk_start));
            }
            sys.pageTable_->setAccessedDirty(a.vaddr, a.isWrite);
        } else if (measuring) {
            ++sys.result_.tlbHits;
        }

        const Addr paddr =
            (ppn << pageShift) | (a.vaddr & (pageSize - 1));
        const Tick done = memoryAccess(sys, core, paddr, a.isWrite,
                                       false, t, tlb_miss, measuring);

        // Stores retire through a finite store buffer: the core does
        // not wait for the fill unless every buffer slot is still in
        // flight (which throttles open-loop write streams to what the
        // memory system can absorb).  Loads block (in-order core
        // model).
        const Tick l1 = sys.cfg_.l1Cycles * sys.cpuPeriod_;
        if (a.isWrite) {
            auto slot = std::min_element(cs.storeSlots.begin(),
                                         cs.storeSlots.end());
            const Tick issue = std::max(t, *slot);
            *slot = std::max(done, issue);
            cs.now = issue + l1;
        } else if (done > t + l1) {
            // OoO overlap: part of the beyond-L1 stall is hidden by
            // MLP.
            cs.now = t + l1 +
                     static_cast<Tick>(
                         static_cast<double>(done - t - l1) /
                         sys.cfg_.memOverlapFactor);
        } else {
            cs.now = done;
        }
        ++cs.accesses;
        if (measuring) {
            ++sys.result_.accesses;
            if (a.isWrite)
                ++sys.result_.storeAccesses;
            if (a.tenant < sys.result_.tenants.size())
                ++sys.result_.tenants[a.tenant].accesses;
        }
    }
};

/**
 * One functional fast-forward access: translation state (TLB, PWC,
 * accessed/dirty bits), cache residency and the MC's placement /
 * CTE-cache state advance; no timing, no latency histograms, no
 * demand counters, no prefetch issue.  Shared by both kernels so a
 * sampled run's between-window state is kernel-independent.
 */
inline void
System::ffStep(unsigned core, const MemAccess &a)
{
    // MRU block filter: a consecutive same-block run is an L1-hit run
    // in the detailed model — no state below L1 changes and L1's
    // relative LRU order is already correct, so only the first access
    // (and the first write) of the run does any work.  Same block
    // implies same page, so the TLB's relative LRU order is unchanged
    // too.
    FfFilter &filt = ffFilter_[core];
    const Addr vblock = blockAlign(a.vaddr);
    if (vblock == filt.vblock) {
        if (a.isWrite && !filt.dirty) {
            hierarchy_->l1(core).markDirty(filt.pblock);
            filt.dirty = true;
        }
        return;
    }

    Ppn ppn = 0;
    if (!tlbs_[core]->lookup(a.vaddr, ppn)) {
        const WalkPlan plan = walkers_[core]->plan(a.vaddr);
        panicIf(!plan.valid,
                "page fault: unmapped address in workload");
        // Touch the walk's PTB fetches through the hierarchy (walker
        // path: enters at L2) so the page-table working set stays
        // resident across fast-forward, exactly as the detailed walk
        // keeps it.  Nested mode warms the host-translated addresses
        // below instead.
        if (!cfg_.nestedPaging)
            for (const WalkStep &step : plan.fetches)
                hierarchy_->functionalAccess(core, step.ptbAddr,
                                             false, true);
        if (cfg_.nestedPaging) {
            // Keep the host PWC and the PTB working set in the caches
            // as warm as the detailed 2D walk would: plan the host
            // walk of each guest PTB fetch (touching the host PTBs
            // and the host-translated guest PTB line), then of the
            // final guest frame.
            for (const WalkStep &step : plan.fetches) {
                const WalkPlan host =
                    hostWalkers_[core]->plan(step.ptbAddr);
                panicIf(!host.valid, "host page fault in nested walk");
                for (const WalkStep &hs : host.fetches)
                    hierarchy_->functionalAccess(core, hs.ptbAddr,
                                                 false, true);
                const Addr host_ptb =
                    (host.ppn << pageShift) |
                    (step.ptbAddr & (pageSize - 1));
                hierarchy_->functionalAccess(core, host_ptb, false,
                                             true);
            }
            const WalkPlan host =
                hostWalkers_[core]->plan(plan.ppn << pageShift);
            panicIf(!host.valid, "host page fault in nested walk");
            for (const WalkStep &hs : host.fetches)
                hierarchy_->functionalAccess(core, hs.ptbAddr, false,
                                             true);
            ppn = host.ppn;
            tlbs_[core]->insert(pageNumber(a.vaddr), ppn);
        } else if (plan.huge) {
            const Ppn base =
                plan.ppn & ~((hugePageSize / pageSize) - 1);
            tlbs_[core]->insertHuge(
                pageNumber(a.vaddr) & ~((hugePageSize / pageSize) - 1),
                base);
            ppn = plan.ppn;
        } else {
            ppn = plan.ppn;
            tlbs_[core]->insert(pageNumber(a.vaddr), plan.ppn);
        }
        pageTable_->setAccessedDirty(a.vaddr, a.isWrite);
    }
    const Addr paddr = (ppn << pageShift) | (a.vaddr & (pageSize - 1));
    filt.vblock = vblock;
    filt.pblock = blockAlign(paddr);
    filt.dirty = a.isWrite;
    if (hierarchy_->functionalAccess(core, paddr, a.isWrite))
        mc_->functionalTouch(pageNumber(paddr), a.isWrite,
                             cores_[core].now);
}

} // namespace tmcc

#endif // TMCC_SIM_ACCESS_PATH_HH
