#include "sim/runner.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

#include "common/log.hh"
#include "common/trace.hh"
#include "sim/checkpoint.hh"
#include "sim/system.hh"

namespace tmcc
{

namespace
{

// Process-wide phase-split accumulators (nanoseconds as integers so
// plain atomics suffice).
std::atomic<std::uint64_t> setupNsTotal{0};
std::atomic<std::uint64_t> measureNsTotal{0};
std::atomic<std::uint64_t> runsTotal{0};
std::atomic<std::uint64_t> restoredRunsTotal{0};

} // namespace

SimRunner::PhaseTotals
SimRunner::phaseTotals()
{
    PhaseTotals t;
    t.setupSeconds = static_cast<double>(setupNsTotal.load()) * 1e-9;
    t.measureSeconds =
        static_cast<double>(measureNsTotal.load()) * 1e-9;
    t.runs = runsTotal.load();
    t.restoredRuns = restoredRunsTotal.load();
    return t;
}

void
SimRunner::resetPhaseTotals()
{
    setupNsTotal = 0;
    measureNsTotal = 0;
    runsTotal = 0;
    restoredRunsTotal = 0;
}

void
SimRunner::recordExternalRun(const SimResult &result)
{
    setupNsTotal.fetch_add(
        static_cast<std::uint64_t>(result.setupSeconds * 1e9));
    measureNsTotal.fetch_add(
        static_cast<std::uint64_t>(result.measureSeconds * 1e9));
    runsTotal.fetch_add(1);
    if (result.restoredFromCheckpoint)
        restoredRunsTotal.fetch_add(1);
}

SimRunner::SimRunner(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{}

unsigned
SimRunner::defaultJobs()
{
    const char *env = std::getenv("TMCC_JOBS");
    if (env && *env) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        fatalIf(*end != '\0' || v <= 0,
                std::string("TMCC_JOBS must be a positive integer, got \"") +
                    env + "\"");
        return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::vector<SimResult>
SimRunner::run(const std::vector<SimConfig> &configs) const
{
    std::vector<SimResult> results(configs.size());
    if (configs.empty())
        return results;

    auto run_one = [&](std::size_t i) {
        Tracer *tr = Tracer::active();
        const double t0 = tr ? tr->wallNs() : 0.0;
        // Setup-phase checkpointing: the first config with a given
        // invariant key builds (and publishes) the checkpoint; every
        // other config restores from it.  Results are bit-identical
        // either way.
        CheckpointStore::Lease lease =
            CheckpointStore::global().acquire(configs[i]);
        System sys(configs[i], lease.checkpoint());
        sys.setup(lease.shouldCapture());
        if (lease.shouldCapture())
            CheckpointStore::global().publish(lease,
                                              sys.captureCheckpoint());
        results[i] = sys.measure();
        setupNsTotal.fetch_add(static_cast<std::uint64_t>(
            results[i].setupSeconds * 1e9));
        measureNsTotal.fetch_add(static_cast<std::uint64_t>(
            results[i].measureSeconds * 1e9));
        runsTotal.fetch_add(1);
        if (results[i].restoredFromCheckpoint)
            restoredRunsTotal.fetch_add(1);
        if (tr != nullptr) {
            // Host track (pid 0), wall-clock timebase: one slice per
            // worker job, labelled with the config it ran.
            Tracer::PidScope host_scope(0);
            tr->complete("sim_job", "runner",
                         static_cast<std::uint32_t>(i), t0,
                         tr->wallNs() - t0,
                         "\"workload\":\"" + configs[i].workload +
                             "\",\"arch\":\"" +
                             archName(configs[i].arch) +
                             "\",\"index\":" + std::to_string(i));
        }
    };

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, configs.size()));
    if (workers <= 1) {
        for (std::size_t i = 0; i < configs.size(); ++i)
            run_one(i);
        return results;
    }

    // Atomic-index dispatch: each worker claims the next unstarted
    // config.  Results land by submission index, so the output order
    // (and content -- every System is self-contained and seeded from
    // its config alone) is identical to the serial loop.
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(configs.size());
    auto work = [&] {
        for (std::size_t i = next.fetch_add(1); i < configs.size();
             i = next.fetch_add(1)) {
            try {
                run_one(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 0; w + 1 < workers; ++w)
        pool.emplace_back(work);
    work();
    for (auto &t : pool)
        t.join();

    for (const auto &err : errors)
        if (err)
            std::rethrow_exception(err);
    return results;
}

std::vector<SimResult>
runConfigs(const std::vector<SimConfig> &configs, unsigned jobs)
{
    return SimRunner(jobs).run(configs);
}

} // namespace tmcc
