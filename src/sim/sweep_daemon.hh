/**
 * @file
 * SweepDaemon: the serving side of the lease-based sweep work queue
 * (sweep_queue.hh, docs/SWEEP.md phase 2), wrapped by the `tmcc_simd`
 * binary.
 *
 * One long-running daemon process scans a queue directory for enqueued
 * sweeps (REQUEST.tmccq markers), claims pending shards through the
 * lease protocol, and runs them *in-process* through SimRunner.  That
 * is the whole point versus `--dispatch=fork`: one process serves many
 * shards and many sweeps, so binary startup, the memoized profile
 * library, and warm setup checkpoints are paid once per daemon instead
 * of once per shard.
 *
 * While a shard runs, a heartbeat thread renews its claim every
 * leaseSeconds/3; if renewal discovers the lease was reclaimed (the
 * daemon stalled past its lease), the shard is abandoned without
 * publishing.  Configs run one at a time, and after each the daemon
 * streams a ShardProgress file for the enqueuing client.
 *
 * Failure-injection hook for tests/CI (format as in shard_runner.hh):
 *   TMCC_QUEUE_TEST_KILL=<shard>@<attempt|*>   raise(SIGKILL)
 *     mid-shard — after the first config, before publishing — leaving
 *     a live claim behind for another daemon to reclaim after expiry.
 */

#ifndef TMCC_SIM_SWEEP_DAEMON_HH
#define TMCC_SIM_SWEEP_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <set>
#include <string>

#include "sim/sweep_queue.hh"

namespace tmcc
{

struct DaemonOptions
{
    /** Queue directory to serve (required). */
    std::string queueDir;

    /** Lease holder identity; empty = "<hostname>:<pid>". */
    std::string workerId;

    /** SimRunner threads per shard; 0 = honour the enqueuer's
     * advisory workerJobs from the request. */
    unsigned jobs = 0;

    /** Claim lease; a claim older than this is stale and reclaimable.
     * Must comfortably exceed heartbeat latency + clock skew. */
    double leaseSeconds = 15.0;

    /** Idle delay between queue scans. */
    double pollSeconds = 1.0;

    /** Drain mode: exit once every visible sweep is fully served
     * instead of idling for new requests. */
    bool once = false;

    /** Stop after serving this many shards (0 = unlimited; tests). */
    std::uint64_t maxShards = 0;

    /** Default the disk checkpoint dir to <sweep-dir>/ckpt while
     * serving a shard, unless one was configured explicitly. */
    bool defaultCkptDir = true;

    bool verbose = true;

    /** fatal() on out-of-contract values (strict CLI validation). */
    void validate() const;
};

class SweepDaemon
{
  public:
    explicit SweepDaemon(DaemonOptions opts); //!< validates opts

    /** Serving counters (exposed for tests and exit logging). */
    struct Stats
    {
        std::uint64_t scans = 0;         //!< queue scan passes
        std::uint64_t sweepsSeen = 0;    //!< distinct requests seen
        std::uint64_t shardsServed = 0;  //!< results published
        std::uint64_t configsRun = 0;
        std::uint64_t reclaims = 0;      //!< stale leases displaced
        std::uint64_t claimsLost = 0;    //!< races lost to peers
        std::uint64_t leasesLost = 0;    //!< own lease stolen mid-run
    };
    Stats stats() const;

    /**
     * Serve the queue until requestStop(), maxShards, or (with
     * opts.once) the queue drains.  Returns the number of shards
     * served.  Safe to call from a worker thread while another thread
     * calls requestStop() (in-process tests).
     */
    std::uint64_t serve();

    /** Ask a running serve() to return after the current shard. */
    void requestStop() { stop_.store(true); }

    const DaemonOptions &options() const { return opts_; }

  private:
    /** One scan pass; returns true when any shard was served.  Sets
     * `idle` when nothing is left to claim anywhere (drain test). */
    bool scanOnce(bool &idle);

    bool serveShard(const std::string &sweepDir,
                    const QueueRequest &req, std::uint32_t shardId);

    DaemonOptions opts_;
    std::atomic<bool> stop_{false};
    std::set<std::string> sweepsSeenNames_; //!< only touched by serve()

    std::atomic<std::uint64_t> scans_{0};
    std::atomic<std::uint64_t> sweepsSeen_{0};
    std::atomic<std::uint64_t> shardsServed_{0};
    std::atomic<std::uint64_t> configsRun_{0};
    std::atomic<std::uint64_t> reclaims_{0};
    std::atomic<std::uint64_t> claimsLost_{0};
    std::atomic<std::uint64_t> leasesLost_{0};
};

} // namespace tmcc

#endif // TMCC_SIM_SWEEP_DAEMON_HH
