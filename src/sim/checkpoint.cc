#include "sim/checkpoint.hh"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/log.hh"
#include "common/versioned_file.hh"

namespace tmcc
{

namespace
{

// "TMCCCKPT": setup-checkpoint container magic.
constexpr char fileMagic[8] = {'T', 'M', 'C', 'C', 'C', 'K', 'P', 'T'};

/** FNV-1a, for stable checkpoint file names (key verified inside). */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
serializePhysMem(ByteWriter &w, const PhysMemState &st)
{
    w.u64(st.totalPages);
    w.u64(st.nextFrame);
    w.u64(st.freeList.size());
    for (Ppn p : st.freeList)
        w.u64(p);
    w.u64(st.ptOrder.size());
    for (Ppn p : st.ptOrder)
        w.u64(p);
    for (const PtPage &page : st.ptPages)
        w.raw(page.data(), sizeof(PtPage));
    w.u64(st.allocated);
    w.u64(st.freed);
}

Status
deserializePhysMem(ByteReader &r, PhysMemState &st)
{
    st.totalPages = r.u64();
    st.nextFrame = r.u64();
    const std::uint64_t free_count = r.count(8);
    st.freeList.clear();
    st.freeList.reserve(free_count);
    for (std::uint64_t i = 0; i < free_count && r.ok(); ++i)
        st.freeList.push_back(r.u64());
    const std::uint64_t pt_count = r.count(8 + sizeof(PtPage));
    st.ptOrder.clear();
    st.ptOrder.reserve(pt_count);
    for (std::uint64_t i = 0; i < pt_count && r.ok(); ++i)
        st.ptOrder.push_back(r.u64());
    st.ptPages.assign(r.ok() ? pt_count : 0, PtPage{});
    for (PtPage &page : st.ptPages)
        r.raw(page.data(), sizeof(PtPage));
    st.allocated = r.u64();
    st.freed = r.u64();
    if (!r.ok())
        return Status::truncated("PhysMemState payload too short");
    for (Ppn p : st.ptOrder)
        if (p >= st.totalPages)
            return Status::corruption("PT page beyond totalPages");
    return Status::okStatus();
}

void
serializePageTable(ByteWriter &w, const PageTableState &st)
{
    w.u64(st.root);
    w.u64(st.mapped);
    w.u64(st.unmapped);
    w.u64(st.tablesAllocated);
}

void
deserializePageTable(ByteReader &r, PageTableState &st)
{
    st.root = r.u64();
    st.mapped = r.u64();
    st.unmapped = r.u64();
    st.tablesAllocated = r.u64();
}

void
serializeProfiles(ByteWriter &w, const ProfileLibraryState &st)
{
    w.u64(st.mixes.size());
    for (const auto &m : st.mixes) {
        w.u64(m.profiles.size());
        for (const PageProfile &p : m.profiles) {
            w.u32(p.blockBytes);
            w.u32(p.deflateBytes);
            w.u32(p.rfcBytes);
            w.u32(p.lzTokens);
            w.u8(p.huffmanUsed ? 1 : 0);
            w.f64(p.overflowP);
        }
        for (double weight : m.weights)
            w.f64(weight);
        for (std::uint32_t bytes : m.deflateNoSkipBytes)
            w.u32(bytes);
    }
    w.u64(st.assigns.size());
    for (const auto &[ppn, assign] : st.assigns) {
        w.u64(ppn);
        w.u32(assign.first);
        w.u32(assign.second);
    }
}

Status
deserializeProfiles(ByteReader &r, ProfileLibraryState &st)
{
    const std::uint64_t mix_count = r.count(8);
    st.mixes.clear();
    for (std::uint64_t m = 0; m < mix_count && r.ok(); ++m) {
        ProfileLibraryState::Mix mix;
        const std::uint64_t parts = r.count(25 + 8 + 4);
        mix.profiles.reserve(parts);
        for (std::uint64_t i = 0; i < parts && r.ok(); ++i) {
            PageProfile p;
            p.blockBytes = r.u32();
            p.deflateBytes = r.u32();
            p.rfcBytes = r.u32();
            p.lzTokens = r.u32();
            p.huffmanUsed = r.u8() != 0;
            p.overflowP = r.f64();
            mix.profiles.push_back(p);
        }
        mix.weights.reserve(parts);
        for (std::uint64_t i = 0; i < parts && r.ok(); ++i)
            mix.weights.push_back(r.f64());
        mix.deflateNoSkipBytes.reserve(parts);
        for (std::uint64_t i = 0; i < parts && r.ok(); ++i)
            mix.deflateNoSkipBytes.push_back(r.u32());
        st.mixes.push_back(std::move(mix));
    }
    const std::uint64_t assign_count = r.count(16);
    st.assigns.clear();
    st.assigns.reserve(assign_count);
    for (std::uint64_t i = 0; i < assign_count && r.ok(); ++i) {
        const Ppn ppn = r.u64();
        const unsigned mix = r.u32();
        const unsigned part = r.u32();
        st.assigns.emplace_back(ppn, std::make_pair(mix, part));
    }
    if (!r.ok())
        return Status::truncated("ProfileLibraryState too short");
    for (const auto &[ppn, assign] : st.assigns)
        if (assign.first >= st.mixes.size() ||
            assign.second >= st.mixes[assign.first].profiles.size())
            return Status::corruption("profile assignment out of range");
    return Status::okStatus();
}

void
serializeFrames(ByteWriter &w, const std::vector<Ppn> &frames)
{
    w.u64(frames.size());
    for (Ppn f : frames)
        w.u64(f);
}

Status
deserializeFrames(ByteReader &r, std::vector<Ppn> &frames,
                  const char *what)
{
    const std::uint64_t n = r.count(8);
    frames.clear();
    frames.reserve(n);
    for (std::uint64_t i = 0; i < n && r.ok(); ++i)
        frames.push_back(r.u64());
    if (!r.ok())
        return Status::truncated(std::string(what) + " too short");
    return Status::okStatus();
}

} // namespace

std::string
SetupCheckpoint::keyFor(const SimConfig &cfg)
{
    // Exactly the config fields the setup phase reads; scale keeps its
    // full bit pattern so no two distinct values collide via printf
    // rounding.  Arch / MC knobs / warm+measure lengths are absent by
    // design: those runs share the checkpoint.
    std::string key = "wl=" + cfg.workload;
    char buf[64];
    std::snprintf(buf, sizeof(buf), ";scale=%016llx",
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(cfg.scale)));
    key += buf;
    key += ";cores=" + std::to_string(cfg.cores);
    key += ";seed=" + std::to_string(cfg.seed);
    key += std::string(";huge=") + (cfg.hugePages ? "1" : "0");
    key += std::string(";nested=") + (cfg.nestedPaging ? "1" : "0");
    key += ";place=" + std::to_string(cfg.placementAccesses);
    // Tenant knobs shape the memcloud access stream (and are harmless
    // noise in the key for every other workload, which ignores them).
    key += ";tenants=" + std::to_string(cfg.tenants);
    std::snprintf(buf, sizeof(buf), ";tchurn=%016llx",
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(cfg.tenantChurn)));
    key += buf;
    std::snprintf(buf, sizeof(buf), ";tzipf=%016llx",
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(cfg.tenantZipf)));
    key += buf;
    return key;
}

std::string
SetupCheckpoint::fileNameFor(const std::string &key)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "tmcc-%016llx.ckpt",
                  static_cast<unsigned long long>(fnv1a(key)));
    return buf;
}

void
SetupCheckpoint::serialize(ByteWriter &w) const
{
    w.str(key);
    w.u64(footprintBytes);
    w.u8(nested ? 1 : 0);
    serializePhysMem(w, physMem);
    if (nested)
        serializePhysMem(w, guestPhysMem);
    serializePageTable(w, pageTable);
    if (nested)
        serializePageTable(w, hostTable);
    serializeProfiles(w, profiles);
    w.u64(compressoUsage);
    w.u64(ml2CostTotal);
    w.u64(incompressiblePages);
    w.u64(compressiblePages);
    serializeFrames(w, touchedFrames);
    serializeFrames(w, regionFrames);
    w.u64(workloadStates.size());
    for (const auto &blob : workloadStates)
        w.bytes(blob.data(), blob.size());
}

Status
SetupCheckpoint::deserialize(ByteReader &r)
{
    key = r.str();
    footprintBytes = r.u64();
    nested = r.u8() != 0;
    TMCC_RETURN_IF_ERROR(deserializePhysMem(r, physMem));
    if (nested)
        TMCC_RETURN_IF_ERROR(deserializePhysMem(r, guestPhysMem));
    deserializePageTable(r, pageTable);
    if (nested)
        deserializePageTable(r, hostTable);
    TMCC_RETURN_IF_ERROR(deserializeProfiles(r, profiles));
    compressoUsage = r.u64();
    ml2CostTotal = r.u64();
    incompressiblePages = r.u64();
    compressiblePages = r.u64();
    TMCC_RETURN_IF_ERROR(
        deserializeFrames(r, touchedFrames, "touchedFrames"));
    TMCC_RETURN_IF_ERROR(
        deserializeFrames(r, regionFrames, "regionFrames"));
    const std::uint64_t wl_count = r.count(8);
    workloadStates.clear();
    workloadStates.reserve(wl_count);
    for (std::uint64_t i = 0; i < wl_count && r.ok(); ++i)
        workloadStates.push_back(r.bytes());
    return r.finish("SetupCheckpoint");
}

Status
SetupCheckpoint::saveFile(const std::string &path) const
{
    ByteWriter payload;
    serialize(payload);
    // The shared versioned-file writer publishes via a uniquely named
    // temp file + fsync + rename, so concurrent writers from multiple
    // sweep worker processes never interleave into a torn file.
    return writeVersionedFile(path, fileMagic, formatVersion,
                              payload.buffer());
}

StatusOr<std::shared_ptr<const SetupCheckpoint>>
SetupCheckpoint::loadFile(const std::string &path)
{
    TMCC_ASSIGN_OR_RETURN(
        const std::vector<std::uint8_t> payload,
        readVersionedFile(path, fileMagic, formatVersion));
    auto ckpt = std::make_shared<SetupCheckpoint>();
    ByteReader reader(payload.data(), payload.size());
    TMCC_RETURN_IF_ERROR(ckpt->deserialize(reader));
    return std::shared_ptr<const SetupCheckpoint>(std::move(ckpt));
}

CheckpointStore &
CheckpointStore::global()
{
    static CheckpointStore store;
    return store;
}

CheckpointStore::CheckpointStore()
{
    // TMCC_CKPT: unset/empty or 1 = on, 0 = off; anything else fatal.
    if (const char *s = std::getenv("TMCC_CKPT"); s && *s) {
        char *end = nullptr;
        const long v = std::strtol(s, &end, 10);
        fatalIf(end == s || *end != '\0' || (v != 0 && v != 1),
                std::string("TMCC_CKPT must be 0 or 1, got \"") + s +
                    "\"");
        enabled_ = v == 1;
    }
    // TMCC_CKPT_DIR: when set it must be a non-empty path; the
    // directory is created on first save.
    if (const char *d = std::getenv("TMCC_CKPT_DIR")) {
        fatalIf(*d == '\0', "TMCC_CKPT_DIR must be a non-empty path");
        diskDir_ = d;
    }
}

CheckpointStore::Stats
CheckpointStore::stats() const
{
    Stats s;
    s.memoryHits = memoryHits_.load();
    s.diskHits = diskHits_.load();
    s.misses = misses_.load();
    s.rejectedFiles = rejectedFiles_.load();
    return s;
}

void
CheckpointStore::recordExternal(const Stats &s)
{
    memoryHits_.fetch_add(s.memoryHits);
    diskHits_.fetch_add(s.diskHits);
    misses_.fetch_add(s.misses);
    rejectedFiles_.fetch_add(s.rejectedFiles);
}

void
CheckpointStore::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    entries_.clear();
    memoryHits_ = 0;
    diskHits_ = 0;
    misses_ = 0;
    rejectedFiles_ = 0;
}

void
CheckpointStore::setDiskDir(std::string dir)
{
    std::lock_guard<std::mutex> lk(mu_);
    diskDir_ = std::move(dir);
}

CheckpointStore::Lease::Lease(Lease &&o) noexcept
    : store_(o.store_), key_(std::move(o.key_)),
      ckpt_(std::move(o.ckpt_)), building_(o.building_)
{
    o.store_ = nullptr;
    o.building_ = false;
}

CheckpointStore::Lease::~Lease()
{
    // A build lease destroyed without publish() (exception, fatal
    // unwinding in tests): hand the build to the next waiter.
    if (store_ != nullptr && building_)
        store_->abandon(key_);
}

std::shared_ptr<const SetupCheckpoint>
CheckpointStore::tryDisk(const std::string &key)
{
    std::string dir;
    {
        std::lock_guard<std::mutex> lk(mu_);
        dir = diskDir_;
    }
    if (dir.empty())
        return nullptr;
    const std::string path =
        dir + "/" + SetupCheckpoint::fileNameFor(key);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec))
        return nullptr;
    auto loaded = SetupCheckpoint::loadFile(path);
    if (!loaded.ok()) {
        rejectedFiles_.fetch_add(1);
        warn("checkpoint rejected, building cold: " +
             loaded.status().toString());
        return nullptr;
    }
    if (loaded.value()->key != key) {
        // File-name hash collision with another key; treat as a miss.
        rejectedFiles_.fetch_add(1);
        warn("checkpoint key mismatch in " + path + ", building cold");
        return nullptr;
    }
    return std::move(loaded).value();
}

CheckpointStore::Lease
CheckpointStore::acquire(const SimConfig &cfg)
{
    if (!enabled_)
        return Lease(nullptr, "", nullptr, false);
    const std::string key = SetupCheckpoint::keyFor(cfg);

    {
        std::unique_lock<std::mutex> lk(mu_);
        for (;;) {
            Entry &e = entries_[key];
            if (e.ckpt != nullptr) {
                memoryHits_.fetch_add(1);
                return Lease(this, key, e.ckpt, false);
            }
            if (!e.building) {
                e.building = true;
                break;
            }
            cv_.wait(lk);
        }
    }

    // We hold the build claim; try the disk layer outside the lock.
    if (auto from_disk = tryDisk(key)) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            entries_[key] = Entry{from_disk, false};
        }
        cv_.notify_all();
        diskHits_.fetch_add(1);
        return Lease(this, key, std::move(from_disk), false);
    }

    misses_.fetch_add(1);
    return Lease(this, key, nullptr, true);
}

void
CheckpointStore::publish(Lease &lease,
                         std::shared_ptr<const SetupCheckpoint> ckpt)
{
    panicIf(!lease.building_, "publish() without a build lease");
    panicIf(ckpt == nullptr || ckpt->key != lease.key_,
            "published checkpoint does not match its lease");
    std::string dir;
    {
        std::lock_guard<std::mutex> lk(mu_);
        entries_[lease.key_] = Entry{ckpt, false};
        dir = diskDir_;
    }
    cv_.notify_all();
    lease.building_ = false;
    lease.ckpt_ = ckpt;

    if (dir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("cannot create checkpoint dir " + dir + ": " +
             ec.message());
        return;
    }
    const std::string path =
        dir + "/" + SetupCheckpoint::fileNameFor(lease.key_);
    const Status st = ckpt->saveFile(path);
    if (!st.ok())
        warn("cannot persist checkpoint: " + st.toString());
}

void
CheckpointStore::abandon(const std::string &key)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second.ckpt == nullptr)
            it->second.building = false;
    }
    cv_.notify_all();
}

} // namespace tmcc
