#include "sim/system.hh"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>

#include "common/log.hh"
#include "common/trace.hh"

namespace tmcc
{

SimConfig
SimConfig::scaledDefault()
{
    SimConfig cfg;
    cfg.scale = 0.25;           // graph footprints ~115MB
    cfg.tlbEntries = 1024;      // reach 4MB
    cfg.hierarchy.l3Bytes = 2 * 1024 * 1024;
    // CTE caches keep their Table III sizes; only footprints shrink,
    // so the reach hierarchy (TMCC 32MB = 4x Compresso 8MB ~ TLB 4MB)
    // is preserved at a gentler footprint/reach ratio.
    cfg.compresso.cteCacheBytes = 128 * 1024; // reach 8MB
    cfg.compresso.llcVictimBytes = 256 * 1024;
    cfg.osMc.cteCacheBytes = 32 * 1024;       // reach 16MB
    cfg.osMc.freeListLow = 1000;
    cfg.osMc.freeListCritical = 750;
    // The 1% Recency List sampling of §IV-B assumes ML1 >> hot set so
    // stale ordering is harmless; with reaches scaled down ~400x the
    // sampling rate scales up to keep the ordering quality comparable.
    cfg.osMc.recencySampleP = 0.10;
    cfg.placementAccesses = 300'000;
    cfg.warmAccesses = 200'000;
    cfg.measureAccesses = 300'000;
    return cfg;
}

Ppn
System::dataFrame(Ppn ppn) const
{
    if (!cfg_.nestedPaging)
        return ppn;
    const WalkResult w = hostTable_->walk(ppn << pageShift);
    panicIf(!w.valid, "unmapped guest frame in nested mode");
    return w.ppn;
}

const char *
archName(Arch arch)
{
    switch (arch) {
      case Arch::NoCompression: return "no-compression";
      case Arch::Compresso: return "compresso";
      case Arch::Barebone: return "os-inspired-barebone";
      case Arch::BarebonePlusMl1: return "barebone+ml1opt";
      case Arch::BarebonePlusMl2: return "barebone+ml2opt";
      case Arch::Tmcc: return "tmcc";
    }
    return "?";
}

System::System(const SimConfig &cfg,
               std::shared_ptr<const SetupCheckpoint> restore)
    : cfg_(cfg), restore_(std::move(restore))
{
    cpuPeriod_ = nsToTicks(1.0 / cfg.cpuGhz);

    buildWorkloads();
    hierarchy_ = std::make_unique<Hierarchy>(cfg.hierarchy, cfg.cores);
    dram_ = std::make_unique<DramSystem>(cfg.dram, cfg.interleave);
    if (restore_ != nullptr)
        restoreConstruct();
    else
        coldConstruct();
    buildMcAndCores();
}

std::unordered_map<Addr, const WlRegion *>
System::regionMap() const
{
    // Regions may be shared across cores; dedupe by base address.
    std::unordered_map<Addr, const WlRegion *> regions;
    for (const auto &wl : workloads_)
        for (const auto &r : wl->regions())
            regions.emplace(r.base, &r);
    return regions;
}

void
System::coldConstruct()
{
    // Physical memory: footprint + page tables + allocator slack.  With
    // hardware compression the OS may boot with more physical pages
    // than DRAM (§V-A5); the MC maps them onto DRAM.
    std::uint64_t footprint_pages = 0;
    const auto regions = regionMap();
    for (const auto &[base, r] : regions)
        footprint_pages += r->bytes / pageSize;
    footprintBytes_ = footprint_pages * pageSize;

    if (cfg_.nestedPaging) {
        // Guest table lives in its own guest-physical space; the host
        // table (and every host frame) lives in physMem_.
        guestPhysMem_ =
            std::make_unique<PhysMem>(footprint_pages * 5 / 4 + 8192);
        physMem_ =
            std::make_unique<PhysMem>(footprint_pages * 3 / 2 + 16384);
        pageTable_ = std::make_unique<PageTable>(*guestPhysMem_);
        hostTable_ = std::make_unique<PageTable>(*physMem_);
    } else {
        physMem_ =
            std::make_unique<PhysMem>(footprint_pages * 5 / 4 + 8192);
        pageTable_ = std::make_unique<PageTable>(*physMem_);
    }

    mapAddressSpace();

    if (cfg_.nestedPaging) {
        // Host-map every guest frame (guest PT pages included), then
        // attach content profiles to the *host* frames, which are what
        // the MC architectures see.
        PteFlags hf;
        hf.accessed = true;
        hf.dirty = true;
        // Bound by the bump-allocator high-water mark, not the
        // allocation count: huge-page alignment leaves holes below it.
        for (Ppn gppn = 1; gppn < guestPhysMem_->highWaterFrame();
             ++gppn) {
            const Ppn hppn = physMem_->allocFrame();
            hostTable_->map(gppn, hppn, hf);
        }
        for (const auto &[base, r] : regions) {
            const unsigned mix_id = regionMix_.at(base);
            for (std::uint64_t i = 0; i < r->bytes / pageSize; ++i) {
                const WalkResult w =
                    pageTable_->walk(r->base + i * pageSize);
                if (w.valid)
                    profiles_.assignPage(dataFrame(w.ppn), mix_id);
            }
        }
    }

    // Estimate Compresso's DRAM usage from the profiles to support the
    // iso-savings configuration (Fig. 17).  All four sums are
    // page-order independent, so they checkpoint as plain totals.
    for (const auto &[base, r] : regions) {
        const std::uint64_t pages = r->bytes / pageSize;
        for (std::uint64_t i = 0; i < pages; ++i) {
            const Vpn vpn = pageNumber(r->base) + i;
            const WalkResult w = pageTable_->walk(vpn << pageShift);
            if (!w.valid)
                continue;
            const Ppn frame = dataFrame(w.ppn);
            const PageProfile &prof = profiles_.profile(frame);
            const std::uint64_t chunks =
                std::max<std::uint64_t>(1, (prof.blockBytes + 511) / 512);
            estimates_.compressoUsage += chunks * 512;
            // ML2 cost of this page: its sub-chunk class size, or a
            // full frame if it cannot compress at all.
            const unsigned cls =
                Ml2FreeLists::classFor(prof.deflateBytes);
            if (prof.deflateIncompressible() ||
                cls >= subChunkClasses.size()) {
                ++estimates_.incompressiblePages;
            } else {
                estimates_.ml2CostTotal += subChunkClasses[cls].bytes;
                ++estimates_.compressiblePages;
            }
        }
    }
}

void
System::restoreConstruct()
{
    const SetupCheckpoint &ck = *restore_;
    panicIf(ck.key != SetupCheckpoint::keyFor(cfg_),
            "setup checkpoint key does not match this config");
    footprintBytes_ = ck.footprintBytes;
    if (cfg_.nestedPaging) {
        guestPhysMem_ = std::make_unique<PhysMem>(ck.guestPhysMem);
        physMem_ = std::make_unique<PhysMem>(ck.physMem);
        pageTable_ =
            std::make_unique<PageTable>(*guestPhysMem_, ck.pageTable);
        hostTable_ =
            std::make_unique<PageTable>(*physMem_, ck.hostTable);
    } else {
        physMem_ = std::make_unique<PhysMem>(ck.physMem);
        pageTable_ =
            std::make_unique<PageTable>(*physMem_, ck.pageTable);
    }
    profiles_.restore(ck.profiles);
    estimates_.compressoUsage = ck.compressoUsage;
    estimates_.ml2CostTotal = ck.ml2CostTotal;
    estimates_.incompressiblePages = ck.incompressiblePages;
    estimates_.compressiblePages = ck.compressiblePages;
}

void
System::buildMcAndCores()
{
    // Build the selected MC architecture.
    switch (cfg_.arch) {
      case Arch::NoCompression: {
        auto mc = std::make_unique<NoCompressionMc>(*dram_);
        mc->setUsedBytes(footprintBytes_);
        mc_ = std::move(mc);
        break;
      }
      case Arch::Compresso: {
        auto mc = std::make_unique<CompressoMc>(*dram_, profiles_,
                                                cfg_.compresso);
        compressoMc_ = mc.get();
        mc_ = std::move(mc);
        break;
      }
      default: {
        OsMcConfig oc = cfg_.osMc;
        oc.embedCtes = cfg_.arch == Arch::Tmcc ||
                       cfg_.arch == Arch::BarebonePlusMl1;
        oc.fastDeflate = cfg_.arch == Arch::Tmcc ||
                         cfg_.arch == Arch::BarebonePlusMl2;
        // Target total usage: either an explicit fraction of the
        // footprint (Table IV sweeps) or Compresso's usage (Fig. 17's
        // iso-savings comparison).
        const std::uint64_t target_usage =
            cfg_.dramBudgetFraction > 0.0
                ? static_cast<std::uint64_t>(cfg_.dramBudgetFraction *
                                             footprintBytes_)
                : estimates_.compressoUsage;
        // Usage decomposes as (I + ml1)*4K + (Fc - ml1)*avgMl2Cost,
        // where I pages are incompressible (pinned to ML1) and Fc are
        // compressible; solve for the compressible ML1 share.
        const double avg_ml2 =
            estimates_.compressiblePages
                ? static_cast<double>(estimates_.ml2CostTotal) /
                      static_cast<double>(estimates_.compressiblePages)
                : static_cast<double>(pageSize);
        double ml1_pages =
            (static_cast<double>(target_usage) -
             static_cast<double>(estimates_.incompressiblePages) *
                 pageSize -
             static_cast<double>(estimates_.compressiblePages) *
                 avg_ml2) /
            (static_cast<double>(pageSize) - avg_ml2);
        ml1_pages = std::clamp(
            ml1_pages, 0.0,
            static_cast<double>(estimates_.compressiblePages));
        // The seeded frame pool must fund ML1 pages AND the chunks ML2
        // carves out of the ML1 free list, i.e. the whole target usage,
        // plus page tables and the free-list floor (kept free).
        oc.ml1TargetPages = static_cast<std::uint64_t>(ml1_pages) +
                            estimates_.incompressiblePages +
                            physMem_->pageTablePages();
        oc.dramBudgetBytes = target_usage +
                             physMem_->pageTablePages() * pageSize +
                             (oc.freeListLow + 512) * pageSize;
        auto mc = std::make_unique<OsInspiredMc>(*dram_, profiles_,
                                                 *physMem_, oc);
        osMc_ = mc.get();
        mc_ = std::move(mc);
        break;
      }
    }

    tlbs_.clear();
    walkers_.clear();
    cteBuffers_.clear();
    cores_.assign(cfg_.cores, CoreState{});
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        tlbs_.push_back(std::make_unique<Tlb>(cfg_.tlbEntries));
        walkers_.push_back(std::make_unique<Walker>(*pageTable_));
        cteBuffers_.push_back(
            std::make_unique<CteBuffer>(cfg_.cteBufferEntries));
        if (cfg_.nestedPaging)
            hostWalkers_.push_back(
                std::make_unique<Walker>(*hostTable_));
    }
}

void
System::buildWorkloads()
{
    for (unsigned c = 0; c < cfg_.cores; ++c)
        workloads_.push_back(makeWorkload(cfg_.workload, c, cfg_.cores,
                                          cfg_.scale, cfg_.seed));
}

void
System::mapAddressSpace()
{
    // One mix per distinct content spec.
    std::vector<std::pair<ContentSpec, unsigned>> mixes;
    auto mix_for = [&](const ContentSpec &spec) {
        for (const auto &[s, id] : mixes)
            if (s == spec)
                return id;
        ContentMix mix;
        mix.parts.push_back({spec, 1.0});
        const unsigned id = profiles_.registerMix(mix);
        mixes.emplace_back(spec, id);
        return id;
    };

    Rng rng(cfg_.seed ^ 0xabcd);
    for (const auto &[base, r] : regionMap()) {
        const unsigned mix_id = mix_for(r->content);
        regionMix_[base] = mix_id;
        const std::uint64_t pages = r->bytes / pageSize;
        if (cfg_.hugePages) {
            const std::uint64_t huge_pages =
                (r->bytes + hugePageSize - 1) / hugePageSize;
            for (std::uint64_t h = 0; h < huge_pages; ++h) {
                const Vpn vpn_base = pageNumber(r->base) +
                                     h * (hugePageSize / pageSize);
                PhysMem &pm =
                    cfg_.nestedPaging ? *guestPhysMem_ : *physMem_;
                const Ppn ppn_base = pm.allocHugeFrame();
                PteFlags f;
                f.accessed = true;
                f.dirty = true;
                pageTable_->mapHuge(vpn_base, ppn_base, f);
                // Nested mode: host frames do not exist yet; profiles
                // attach to host frames after the host mapping.
                if (!cfg_.nestedPaging)
                    for (std::uint64_t i = 0;
                         i < hugePageSize / pageSize; ++i)
                        profiles_.assignPage(ppn_base + i, mix_id);
            }
            continue;
        }
        for (std::uint64_t i = 0; i < pages; ++i) {
            const Vpn vpn = pageNumber(r->base) + i;
            PhysMem &pm =
                cfg_.nestedPaging ? *guestPhysMem_ : *physMem_;
            const Ppn ppn = pm.allocFrame();
            PteFlags f;
            f.accessed = true;
            // After the fast-forward phase nearly every data page has
            // been written; a tiny fraction of stragglers makes the
            // Fig. 6 status-bit uniformity realistic rather than exact.
            f.dirty = !rng.chance(0.0006);
            pageTable_->map(vpn, ppn, f);
            if (!cfg_.nestedPaging)
                profiles_.assignPage(ppn, mix_id);
            // Nested mode: host frames do not exist yet; profiles are
            // attached after the host mapping (see the constructor).
        }
    }
}

void
System::warmPlacement(CaptureScratch *capture)
{
    // Touch-count run: the stand-in for gem5's KVM fast forward.  The
    // counts order pages hottest-first for initial ML1/ML2 placement.
    std::unordered_map<Vpn, std::uint32_t> touches;
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        for (std::uint64_t i = 0; i < cfg_.placementAccesses; ++i) {
            const MemAccess a = workloads_[c]->next();
            ++touches[pageNumber(a.vaddr)];
        }
    }

    // This is the checkpoint boundary: the workload streams have played
    // their placement window and everything after is arch-dependent.
    if (capture != nullptr) {
        capture->workloadStates.reserve(workloads_.size());
        for (const auto &wl : workloads_) {
            ByteWriter w;
            wl->saveState(w);
            capture->workloadStates.push_back(w.take());
        }
    }

    if (osMc_ == nullptr && compressoMc_ == nullptr &&
        capture == nullptr)
        return;

    // Page-table pages are the hottest of all (every walk touches
    // them): place first.
    std::vector<Ppn> pt_pages;
    physMem_->forEachPtPage(
        [&](Ppn ppn, const PtPage &) { pt_pages.push_back(ppn); });

    std::vector<std::pair<std::uint32_t, Vpn>> order;
    order.reserve(touches.size());
    for (const auto &[vpn, count] : touches)
        order.emplace_back(count, vpn);
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });

    // Resolve the placement sequences up front (walks are read-only,
    // so this reorders nothing): the touched pages hottest-first, then
    // the full region scan — remaining (untouched) pages are the
    // coldest.  These resolved sequences are exactly what a checkpoint
    // restore replays.
    std::vector<Ppn> touched_frames;
    touched_frames.reserve(order.size());
    for (const auto &[count, vpn] : order) {
        const WalkResult w = pageTable_->walk(vpn << pageShift);
        if (w.valid)
            touched_frames.push_back(dataFrame(w.ppn));
    }
    std::vector<Ppn> region_frames;
    for (const auto &[base, r] : regionMap()) {
        for (std::uint64_t i = 0; i < r->bytes / pageSize; ++i) {
            const WalkResult w =
                pageTable_->walk(r->base + i * pageSize);
            if (w.valid)
                region_frames.push_back(dataFrame(w.ppn));
        }
    }

    if (osMc_ != nullptr) {
        for (Ppn pt : pt_pages)
            osMc_->placePage(pt);
        for (Ppn f : touched_frames)
            osMc_->placePage(f);
        for (Ppn f : region_frames)
            osMc_->placePage(f);
    }
    if (compressoMc_ != nullptr) {
        for (Ppn pt : pt_pages)
            compressoMc_->registerPage(pt);
        for (Ppn f : region_frames)
            compressoMc_->registerPage(f);
    }

    if (capture != nullptr) {
        capture->touchedFrames = std::move(touched_frames);
        capture->regionFrames = std::move(region_frames);
    }
}

void
System::replayPlacement()
{
    const SetupCheckpoint &ck = *restore_;
    panicIf(ck.workloadStates.size() != workloads_.size(),
            "checkpoint core count does not match this config");
    for (std::size_t c = 0; c < workloads_.size(); ++c) {
        ByteReader r(ck.workloadStates[c]);
        const Status st = workloads_[c]->loadState(r);
        panicIf(!st.ok(), "checkpoint workload state rejected: " +
                              st.toString());
    }
    // Same placement sequence as the cold path: PT pages (allocation
    // order, preserved by PhysMemState), touched pages hottest-first,
    // then the region scan.  placePage/registerPage dedupe repeats
    // exactly as they did when the sequences were recorded.
    if (osMc_ != nullptr) {
        physMem_->forEachPtPage(
            [&](Ppn ppn, const PtPage &) { osMc_->placePage(ppn); });
        for (Ppn f : ck.touchedFrames)
            osMc_->placePage(f);
        for (Ppn f : ck.regionFrames)
            osMc_->placePage(f);
    }
    if (compressoMc_ != nullptr) {
        physMem_->forEachPtPage([&](Ppn ppn, const PtPage &) {
            compressoMc_->registerPage(ppn);
        });
        for (Ppn f : ck.regionFrames)
            compressoMc_->registerPage(f);
    }
}

void
System::collectPtbCtes(unsigned core, Addr ptb_addr)
{
    if (osMc_ == nullptr || !cfg_.osMc.embedCtes)
        return;
    if (cfg_.arch != Arch::Tmcc && cfg_.arch != Arch::BarebonePlusMl1)
        return;
    const OsInspiredMc::PtbView view = osMc_->ptbView(ptb_addr);
    if (!view.compressed)
        return;
    hierarchy_->l2(core).setCompressed(ptb_addr, true);
    for (unsigned i = 0; i < ptesPerPtb; ++i) {
        if (!view.present[i])
            continue;
        cteBuffers_[core]->insert(view.ppns[i], view.hasCte[i],
                                  view.cte[i], ptb_addr);
    }
}

void
System::handleMcResponse(unsigned core, Addr paddr,
                         const McReadResponse &resp, bool from_walker,
                         bool after_tlb_miss, bool measuring)
{
    // Piggybacked correct CTE: refresh the CTE buffer and lazily patch
    // the PTB in L2 when the stored embedded CTE was stale (§V-A3).
    if (resp.hasCorrectCte && osMc_ != nullptr) {
        const Addr stale_ptb = cteBuffers_[core]->updateOnResponse(
            pageNumber(paddr), resp.correctCte);
        if (stale_ptb != invalidAddr) {
            osMc_->lazyUpdatePtb(stale_ptb, pageNumber(paddr),
                                 resp.correctCte);
            hierarchy_->touchL2Dirty(core, stale_ptb);
        }
    }

    if (cfg_.arch != Arch::NoCompression && !resp.cteCacheHit) {
        if (Tracer *tr = Tracer::active())
            tr->instant("cte_miss", "mc", core,
                        ticksToNs(resp.complete));
    }

    if (!measuring)
        return;
    ++result_.llcMisses;
    if (cfg_.arch != Arch::NoCompression) {
        if (resp.cteCacheHit)
            ++result_.cteHits;
        else
            ++result_.cteMisses;
        if (!resp.cteCacheHit && after_tlb_miss)
            ++result_.cteMissesAfterTlbMiss;
    }
    if (resp.hitMl2) {
        ++result_.ml2Accesses;
    } else {
        if (resp.cteCacheHit)
            ++result_.ml1CteHit;
        else if (resp.parallelAccess)
            ++result_.ml1Parallel;
        else if (resp.embeddedMismatch)
            ++result_.ml1Mismatch;
        else
            ++result_.ml1Serial;
    }
    (void)from_walker;
}

Tick
System::memoryAccess(unsigned core, Addr paddr, bool is_write,
                     bool from_walker, Tick start, bool after_tlb_miss,
                     bool measuring)
{
    AccessOutcome out =
        hierarchy_->access(core, paddr, is_write, from_walker);

    const Tick l1 = cfg_.l1Cycles * cpuPeriod_;
    const Tick l2 = cfg_.l2Cycles * cpuPeriod_;
    const Tick l3 = cfg_.l3Cycles * cpuPeriod_;
    const Tick noc = nsToTicks(cfg_.nocToMcNs);

    Tick done = start;
    switch (out.level) {
      case HitLevel::L1:
        done = start + l1;
        break;
      case HitLevel::L2:
        done = start + l1 + l2;
        break;
      case HitLevel::L3:
        done = start + l1 + l2 + l3;
        break;
      case HitLevel::Memory: {
        McReadRequest req;
        req.core = core;
        req.paddr = paddr;
        req.when = start + l1 + l2 + l3 + noc;
        req.fromWalker = from_walker;
        if (osMc_ != nullptr &&
            (cfg_.arch == Arch::Tmcc ||
             cfg_.arch == Arch::BarebonePlusMl1)) {
            const CteBuffer::Entry *e =
                cteBuffers_[core]->lookup(pageNumber(paddr));
            if (e != nullptr && e->hasCte) {
                req.hasEmbeddedCte = true;
                req.embeddedCte = e->cte;
            }
        }
        const McReadResponse resp = mc_->read(req);
        // Fig. 18 convention: the 53ns no-compression miss latency is
        // one NoC traversal plus the DRAM access; the return path is
        // folded into the DRAM/NoC figure.
        done = resp.complete;
        const Tick miss_start = start + l1 + l2 + l3;
        if (measuring) {
            const double lat_ns = ticksToNs(done - miss_start);
            l3MissLatency_.sample(lat_ns);
            result_.l3MissLatency.sample(lat_ns);
            if (resp.hitMl2)
                result_.ml2FaultLatency.sample(lat_ns);
        }
        if (Tracer *tr = Tracer::active())
            tr->complete("llc_miss", "mem", core,
                         ticksToNs(miss_start),
                         ticksToNs(done - miss_start));

        handleMcResponse(core, paddr, resp, from_walker,
                         after_tlb_miss, measuring);

        const AccessOutcome fill = hierarchy_->fill(
            core, paddr, is_write, resp.fillCompressedPtb, from_walker);
        for (const CacheLine &wb : fill.memWritebacks) {
            mc_->writeback(wb.addr, done, wb.compressed);
            if (measuring)
                ++result_.llcWritebacks;
        }
        break;
      }
    }

    // Writebacks surfaced by promotions/evictions on the hit path.
    for (const CacheLine &wb : out.memWritebacks) {
        mc_->writeback(wb.addr, done, wb.compressed);
        if (measuring)
            ++result_.llcWritebacks;
    }

    // Walker fetch of a (possibly compressed) PTB: harvest embedded
    // CTEs into this core's CTE buffer.
    if (from_walker)
        collectPtbCtes(core, blockAlign(paddr));

    // Prefetch proposals: background fills that stay within the page.
    for (Addr pf : out.prefetches) {
        if (pageNumber(pf) != pageNumber(paddr))
            continue;
        std::vector<CacheLine> wbs;
        if (hierarchy_->prefetchLookup(core, pf, wbs)) {
            McReadRequest req;
            req.core = core;
            req.paddr = pf;
            req.when = start + l1 + l2 + l3 + noc;
            req.background = true;
            const McReadResponse resp = mc_->read(req);
            handleMcResponse(core, pf, resp, false, false, false);
            const AccessOutcome fill =
                hierarchy_->fill(core, pf, false, false, false);
            for (const CacheLine &wb : fill.memWritebacks)
                mc_->writeback(wb.addr, resp.complete, wb.compressed);
        }
        for (const CacheLine &wb : wbs)
            mc_->writeback(wb.addr, done, wb.compressed);
    }

    return done;
}

Addr
System::hostTranslate(unsigned core, Addr gpa, Tick &t, bool measuring)
{
    // A constituent host walk of the 2D walk (Fig. 12b): fetch the
    // host PTBs through the hierarchy; host PTBs are real PT pages, so
    // TMCC's embedded CTEs accelerate these fetches like any walk.
    const WalkPlan plan = hostWalkers_[core]->plan(gpa);
    panicIf(!plan.valid, "host page fault in nested walk");
    for (const WalkStep &step : plan.fetches)
        t = memoryAccess(core, step.ptbAddr, false, true, t, true,
                         measuring);
    return (plan.ppn << pageShift) | (gpa & (pageSize - 1));
}

Tick
System::pageWalk(unsigned core, Addr vaddr, Tick start, Ppn &ppn,
                 bool measuring)
{
    const WalkPlan plan = walkers_[core]->plan(vaddr);
    panicIf(!plan.valid, "page fault: unmapped address in workload");

    Tick t = start + cpuPeriod_; // walker dispatch
    if (cfg_.nestedPaging) {
        // 2D walk: every guest PTB address is guest-physical and must
        // itself be host-translated before the fetch.
        for (const WalkStep &step : plan.fetches) {
            const Addr host_ptb =
                hostTranslate(core, step.ptbAddr, t, measuring);
            t = memoryAccess(core, host_ptb, false, true, t, true,
                             measuring);
        }
        // Final guest ppn -> host frame for the data access.
        const Addr host_data =
            hostTranslate(core, plan.ppn << pageShift, t, measuring);
        ppn = pageNumber(host_data);
        tlbs_[core]->insert(pageNumber(vaddr), ppn);
        return t;
    }
    for (const WalkStep &step : plan.fetches)
        t = memoryAccess(core, step.ptbAddr, false, true, t, true,
                         measuring);

    ppn = plan.ppn;
    if (plan.huge) {
        const Ppn base = plan.ppn & ~((hugePageSize / pageSize) - 1);
        tlbs_[core]->insertHuge(
            pageNumber(vaddr) & ~((hugePageSize / pageSize) - 1), base);
    } else {
        tlbs_[core]->insert(pageNumber(vaddr), plan.ppn);
    }
    return t;
}

void
System::step(unsigned core, bool measuring)
{
    CoreState &cs = cores_[core];
    const MemAccess a = workloads_[core]->next();
    Tick t = cs.now + a.thinkCycles * cpuPeriod_;

    Ppn ppn = 0;
    bool tlb_miss = false;
    if (!tlbs_[core]->lookup(a.vaddr, ppn)) {
        tlb_miss = true;
        if (measuring)
            ++result_.tlbMisses;
        const Tick walk_start = t;
        t = pageWalk(core, a.vaddr, t, ppn, measuring);
        if (measuring)
            result_.pageWalkLatency.sample(ticksToNs(t - walk_start));
        if (Tracer *tr = Tracer::active())
            tr->complete("page_walk", "vm", core,
                         ticksToNs(walk_start),
                         ticksToNs(t - walk_start));
        pageTable_->setAccessedDirty(a.vaddr, a.isWrite);
    } else if (measuring) {
        ++result_.tlbHits;
    }

    const Addr paddr = (ppn << pageShift) | (a.vaddr & (pageSize - 1));
    const Tick done = memoryAccess(core, paddr, a.isWrite, false, t,
                                   tlb_miss, measuring);

    // Stores retire through a finite store buffer: the core does not
    // wait for the fill unless every buffer slot is still in flight
    // (which throttles open-loop write streams to what the memory
    // system can absorb).  Loads block (in-order core model).
    const Tick l1 = cfg_.l1Cycles * cpuPeriod_;
    if (a.isWrite) {
        auto slot = std::min_element(cs.storeSlots.begin(),
                                     cs.storeSlots.end());
        const Tick issue = std::max(t, *slot);
        *slot = std::max(done, issue);
        cs.now = issue + l1;
    } else if (done > t + l1) {
        // OoO overlap: part of the beyond-L1 stall is hidden by MLP.
        cs.now = t + l1 +
                 static_cast<Tick>(
                     static_cast<double>(done - t - l1) /
                     cfg_.memOverlapFactor);
    } else {
        cs.now = done;
    }
    ++cs.accesses;
    if (measuring) {
        ++result_.accesses;
        if (a.isWrite)
            ++result_.storeAccesses;
    }
}

void
System::dumpAllStats(StatDump &dump) const
{
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        tlbs_[c]->dumpStats(dump,
                            "core" + std::to_string(c) + ".tlb");
        walkers_[c]->dumpStats(dump,
                               "core" + std::to_string(c) + ".walker");
        cteBuffers_[c]->dumpStats(
            dump, "core" + std::to_string(c) + ".cte_buffer");
    }
    hierarchy_->dumpStats(dump, "hier");
    dram_->dumpStats(dump, "dram");
    mc_->dumpStats(dump, "mc");

    // Measured-window pipeline counters, exported by name so epoch
    // deltas and bench harnesses can address them like any component
    // stat (via StatDump::getRequired).
    dump.set("sys.accesses", result_.accesses);
    dump.set("sys.store_accesses", result_.storeAccesses);
    dump.set("sys.tlb_hits", result_.tlbHits);
    dump.set("sys.tlb_misses", result_.tlbMisses);
    dump.set("sys.llc_misses", result_.llcMisses);
    dump.set("sys.llc_writebacks", result_.llcWritebacks);
    dump.set("sys.cte_hits", result_.cteHits);
    dump.set("sys.cte_misses", result_.cteMisses);
    dump.set("sys.cte_misses_after_tlb_miss",
             result_.cteMissesAfterTlbMiss);
    dump.set("sys.ml1_cte_hit", result_.ml1CteHit);
    dump.set("sys.ml1_parallel", result_.ml1Parallel);
    dump.set("sys.ml1_mismatch", result_.ml1Mismatch);
    dump.set("sys.ml1_serial", result_.ml1Serial);
    dump.set("sys.ml2_accesses", result_.ml2Accesses);
    dump.set("sys.dram_used_bytes", mc_->dramUsedBytes());
    dumpHistogram(dump, "sys.l3_miss_latency", result_.l3MissLatency);
    dumpHistogram(dump, "sys.page_walk_latency",
                  result_.pageWalkLatency);
    dumpHistogram(dump, "sys.ml2_fault_latency",
                  result_.ml2FaultLatency);
}

void
System::snapshotEpoch(Tick now)
{
    StatDump cur;
    dumpAllStats(cur);

    EpochStat e;
    e.accesses = result_.accesses;
    e.deltaAccesses = result_.accesses - prevEpochAccesses_;
    e.endTick = now > measureStart_ ? now - measureStart_ : 0;
    for (const auto &[name, v] : cur.all())
        e.delta.set(name, v - prevEpoch_.get(name));

    const double d_ml2 = e.delta.get("sys.ml2_accesses");
    const double d_denom = e.delta.get("sys.llc_misses") +
                           e.delta.get("sys.llc_writebacks");
    e.ml2AccessRate = d_denom > 0.0 ? d_ml2 / d_denom : 0.0;
    const double d_hits = e.delta.get("sys.cte_hits");
    const double d_total = d_hits + e.delta.get("sys.cte_misses");
    e.cteHitRate = d_total > 0.0 ? d_hits / d_total : 0.0;
    e.dramUsedBytes = cur.get("sys.dram_used_bytes");

    if (Tracer *tr = Tracer::active()) {
        const double ts = ticksToNs(now);
        tr->counter("ml2_access_rate", ts, e.ml2AccessRate);
        tr->counter("cte_hit_rate", ts, e.cteHitRate);
        tr->counter("dram_used_mb", ts,
                    e.dramUsedBytes / (1 << 20));
    }

    result_.epochs.push_back(std::move(e));
    prevEpoch_ = std::move(cur);
    prevEpochAccesses_ = result_.accesses;
}

void
System::setup(bool capture)
{
    panicIf(setupDone_, "System::setup() ran twice");
    panicIf(capture && restore_ != nullptr,
            "cannot capture a checkpoint from a restored System");
    setupDone_ = true;
    const auto wall0 = std::chrono::steady_clock::now();

    Tracer *tracer = Tracer::active();
    if (tracer != nullptr && tracePid_ == 0) {
        tracePid_ = tracer->allocTrack();
        tracer->processName(tracePid_,
                            std::string(archName(cfg_.arch)) + ":" +
                                cfg_.workload);
    }
    Tracer::PidScope pid_scope(tracePid_);

    if (restore_ != nullptr) {
        replayPlacement();
    } else {
        CaptureScratch scratch;
        warmPlacement(capture ? &scratch : nullptr);
        if (capture) {
            auto ck = std::make_shared<SetupCheckpoint>();
            ck->key = SetupCheckpoint::keyFor(cfg_);
            ck->footprintBytes = footprintBytes_;
            ck->nested = cfg_.nestedPaging;
            ck->physMem = physMem_->snapshot();
            ck->pageTable = pageTable_->snapshot();
            if (cfg_.nestedPaging) {
                ck->guestPhysMem = guestPhysMem_->snapshot();
                ck->hostTable = hostTable_->snapshot();
            }
            ck->profiles = profiles_.snapshot();
            ck->compressoUsage = estimates_.compressoUsage;
            ck->ml2CostTotal = estimates_.ml2CostTotal;
            ck->incompressiblePages = estimates_.incompressiblePages;
            ck->compressiblePages = estimates_.compressiblePages;
            ck->touchedFrames = std::move(scratch.touchedFrames);
            ck->regionFrames = std::move(scratch.regionFrames);
            ck->workloadStates = std::move(scratch.workloadStates);
            captured_ = std::move(ck);
        }
    }

    setupSeconds_ = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall0)
                        .count();
}

std::shared_ptr<const SetupCheckpoint>
System::captureCheckpoint() const
{
    panicIf(captured_ == nullptr,
            "captureCheckpoint() without setup(capture=true)");
    return captured_;
}

SimResult
System::run()
{
    if (!setupDone_)
        setup();
    return measure();
}

SimResult
System::measure()
{
    if (!setupDone_)
        setup();
    const auto wall0 = std::chrono::steady_clock::now();
    Tracer::PidScope pid_scope(tracePid_);

    // Cache/TLB/ML warm-up window.
    for (unsigned c = 0; c < cfg_.cores; ++c)
        cores_[c] = CoreState{};
    std::uint64_t warm_target = cfg_.warmAccesses;
    for (std::uint64_t i = 0; i < warm_target; ++i)
        for (unsigned c = 0; c < cfg_.cores; ++c)
            step(c, false);

    // Measured window.
    measureStart_ = 0;
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        measureStart_ = std::max(measureStart_, cores_[c].now);
        cores_[c].accesses = 0;
    }
    for (unsigned c = 0; c < cfg_.cores; ++c)
        cores_[c].now = measureStart_;
    busReadsAtStart_ = dram_->busBusyReads();
    busWritesAtStart_ = dram_->busBusyWrites();

    // Epoch snapshots diff against the measure-start baseline so the
    // first epoch's deltas exclude warm-up activity.
    if (cfg_.statsInterval > 0) {
        prevEpoch_ = StatDump{};
        dumpAllStats(prevEpoch_);
        prevEpochAccesses_ = 0;
        nextEpochAt_ = cfg_.statsInterval;
    }

    // Interleave cores by local time.
    bool running = true;
    while (running) {
        unsigned next = 0;
        for (unsigned c = 1; c < cfg_.cores; ++c)
            if (cores_[c].now < cores_[next].now)
                next = c;
        step(next, true);
        if (cfg_.statsInterval > 0 &&
            result_.accesses >= nextEpochAt_) {
            snapshotEpoch(cores_[next].now);
            nextEpochAt_ += cfg_.statsInterval;
        }
        running = false;
        for (unsigned c = 0; c < cfg_.cores; ++c)
            if (cores_[c].accesses < cfg_.measureAccesses)
                running = true;
    }

    Tick end = 0;
    for (unsigned c = 0; c < cfg_.cores; ++c)
        end = std::max(end, cores_[c].now);
    mc_->drain(end);

    // Flush the final (possibly partial) epoch after the drain so the
    // epoch deltas sum exactly to the end-of-run totals.
    if (cfg_.statsInterval > 0 &&
        result_.accesses > prevEpochAccesses_)
        snapshotEpoch(end);

    result_.elapsed = end - measureStart_;
    result_.footprintBytes = footprintBytes_;
    result_.dramUsedBytes = mc_->dramUsedBytes();
    result_.avgL3MissLatencyNs = l3MissLatency_.mean();
    const Tick window = result_.elapsed * cfg_.cores > 0
                            ? result_.elapsed
                            : Tick{1};
    result_.readBusUtil =
        static_cast<double>(dram_->busBusyReads() - busReadsAtStart_) /
        static_cast<double>(window);
    result_.writeBusUtil =
        static_cast<double>(dram_->busBusyWrites() - busWritesAtStart_) /
        static_cast<double>(window);

    // Raw component counters plus sys.* pipeline counters.
    dumpAllStats(result_.stats);

    // Phase bookkeeping (wall-clock only; never part of the StatDump,
    // so bit-identity comparisons are unaffected).
    result_.setupSeconds = setupSeconds_;
    result_.measureSeconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 wall0)
                                 .count();
    result_.restoredFromCheckpoint = restore_ != nullptr;

    return result_;
}

} // namespace tmcc
