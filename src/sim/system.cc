#include "sim/system.hh"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>

#include <cmath>

#include "common/log.hh"
#include "common/trace.hh"
#include "sim/access_path.hh"

namespace tmcc
{

SimConfig
SimConfig::scaledDefault()
{
    SimConfig cfg;
    cfg.scale = 0.25;           // graph footprints ~115MB
    cfg.tlbEntries = 1024;      // reach 4MB
    cfg.hierarchy.l3Bytes = 2 * 1024 * 1024;
    // CTE caches keep their Table III sizes; only footprints shrink,
    // so the reach hierarchy (TMCC 32MB = 4x Compresso 8MB ~ TLB 4MB)
    // is preserved at a gentler footprint/reach ratio.
    cfg.compresso.cteCacheBytes = 128 * 1024; // reach 8MB
    cfg.compresso.llcVictimBytes = 256 * 1024;
    cfg.osMc.cteCacheBytes = 32 * 1024;       // reach 16MB
    cfg.osMc.freeListLow = 1000;
    cfg.osMc.freeListCritical = 750;
    // The 1% Recency List sampling of §IV-B assumes ML1 >> hot set so
    // stale ordering is harmless; with reaches scaled down ~400x the
    // sampling rate scales up to keep the ordering quality comparable.
    cfg.osMc.recencySampleP = 0.10;
    cfg.placementAccesses = 300'000;
    cfg.warmAccesses = 200'000;
    cfg.measureAccesses = 300'000;
    return cfg;
}

Ppn
System::dataFrame(Ppn ppn) const
{
    if (!cfg_.nestedPaging)
        return ppn;
    const WalkResult w = hostTable_->walk(ppn << pageShift);
    panicIf(!w.valid, "unmapped guest frame in nested mode");
    return w.ppn;
}

const char *
archName(Arch arch)
{
    switch (arch) {
      case Arch::NoCompression: return "no-compression";
      case Arch::Compresso: return "compresso";
      case Arch::Barebone: return "os-inspired-barebone";
      case Arch::BarebonePlusMl1: return "barebone+ml1opt";
      case Arch::BarebonePlusMl2: return "barebone+ml2opt";
      case Arch::Tmcc: return "tmcc";
    }
    return "?";
}

System::System(const SimConfig &cfg,
               std::shared_ptr<const SetupCheckpoint> restore)
    : cfg_(cfg), restore_(std::move(restore))
{
    cpuPeriod_ = nsToTicks(1.0 / cfg.cpuGhz);

    buildWorkloads();
    hierarchy_ = std::make_unique<Hierarchy>(cfg.hierarchy, cfg.cores);
    dram_ = std::make_unique<DramSystem>(cfg.dram, cfg.interleave);
    if (restore_ != nullptr)
        restoreConstruct();
    else
        coldConstruct();
    buildMcAndCores();
}

std::unordered_map<Addr, const WlRegion *>
System::regionMap() const
{
    // Regions may be shared across cores; dedupe by base address.
    std::unordered_map<Addr, const WlRegion *> regions;
    for (const auto &wl : workloads_)
        for (const auto &r : wl->regions())
            regions.emplace(r.base, &r);
    return regions;
}

void
System::coldConstruct()
{
    // Physical memory: footprint + page tables + allocator slack.  With
    // hardware compression the OS may boot with more physical pages
    // than DRAM (§V-A5); the MC maps them onto DRAM.
    std::uint64_t footprint_pages = 0;
    const auto regions = regionMap();
    for (const auto &[base, r] : regions)
        footprint_pages += r->bytes / pageSize;
    footprintBytes_ = footprint_pages * pageSize;

    if (cfg_.nestedPaging) {
        // Guest table lives in its own guest-physical space; the host
        // table (and every host frame) lives in physMem_.
        guestPhysMem_ =
            std::make_unique<PhysMem>(footprint_pages * 5 / 4 + 8192);
        physMem_ =
            std::make_unique<PhysMem>(footprint_pages * 3 / 2 + 16384);
        pageTable_ = std::make_unique<PageTable>(*guestPhysMem_);
        hostTable_ = std::make_unique<PageTable>(*physMem_);
    } else {
        physMem_ =
            std::make_unique<PhysMem>(footprint_pages * 5 / 4 + 8192);
        pageTable_ = std::make_unique<PageTable>(*physMem_);
    }

    mapAddressSpace();

    if (cfg_.nestedPaging) {
        // Host-map every guest frame (guest PT pages included), then
        // attach content profiles to the *host* frames, which are what
        // the MC architectures see.
        PteFlags hf;
        hf.accessed = true;
        hf.dirty = true;
        // Bound by the bump-allocator high-water mark, not the
        // allocation count: huge-page alignment leaves holes below it.
        for (Ppn gppn = 1; gppn < guestPhysMem_->highWaterFrame();
             ++gppn) {
            const Ppn hppn = physMem_->allocFrame();
            hostTable_->map(gppn, hppn, hf);
        }
        for (const auto &[base, r] : regions) {
            const unsigned mix_id = regionMix_.at(base);
            for (std::uint64_t i = 0; i < r->bytes / pageSize; ++i) {
                const WalkResult w =
                    pageTable_->walk(r->base + i * pageSize);
                if (w.valid)
                    profiles_.assignPage(dataFrame(w.ppn), mix_id);
            }
        }
    }

    // Estimate Compresso's DRAM usage from the profiles to support the
    // iso-savings configuration (Fig. 17).  All four sums are
    // page-order independent, so they checkpoint as plain totals.
    for (const auto &[base, r] : regions) {
        const std::uint64_t pages = r->bytes / pageSize;
        for (std::uint64_t i = 0; i < pages; ++i) {
            const Vpn vpn = pageNumber(r->base) + i;
            const WalkResult w = pageTable_->walk(vpn << pageShift);
            if (!w.valid)
                continue;
            const Ppn frame = dataFrame(w.ppn);
            const PageProfile &prof = profiles_.profile(frame);
            const std::uint64_t chunks =
                std::max<std::uint64_t>(1, (prof.blockBytes + 511) / 512);
            estimates_.compressoUsage += chunks * 512;
            // ML2 cost of this page: its sub-chunk class size, or a
            // full frame if it cannot compress at all.
            const unsigned cls =
                Ml2FreeLists::classFor(prof.deflateBytes);
            if (prof.deflateIncompressible() ||
                cls >= subChunkClasses.size()) {
                ++estimates_.incompressiblePages;
            } else {
                estimates_.ml2CostTotal += subChunkClasses[cls].bytes;
                ++estimates_.compressiblePages;
            }
        }
    }
}

void
System::restoreConstruct()
{
    const SetupCheckpoint &ck = *restore_;
    panicIf(ck.key != SetupCheckpoint::keyFor(cfg_),
            "setup checkpoint key does not match this config");
    footprintBytes_ = ck.footprintBytes;
    if (cfg_.nestedPaging) {
        guestPhysMem_ = std::make_unique<PhysMem>(ck.guestPhysMem);
        physMem_ = std::make_unique<PhysMem>(ck.physMem);
        pageTable_ =
            std::make_unique<PageTable>(*guestPhysMem_, ck.pageTable);
        hostTable_ =
            std::make_unique<PageTable>(*physMem_, ck.hostTable);
    } else {
        physMem_ = std::make_unique<PhysMem>(ck.physMem);
        pageTable_ =
            std::make_unique<PageTable>(*physMem_, ck.pageTable);
    }
    profiles_.restore(ck.profiles);
    estimates_.compressoUsage = ck.compressoUsage;
    estimates_.ml2CostTotal = ck.ml2CostTotal;
    estimates_.incompressiblePages = ck.incompressiblePages;
    estimates_.compressiblePages = ck.compressiblePages;
}

void
System::buildMcAndCores()
{
    // Build the selected MC architecture.
    switch (cfg_.arch) {
      case Arch::NoCompression: {
        auto mc = std::make_unique<NoCompressionMc>(*dram_);
        mc->setUsedBytes(footprintBytes_);
        mc_ = std::move(mc);
        break;
      }
      case Arch::Compresso: {
        auto mc = std::make_unique<CompressoMc>(*dram_, profiles_,
                                                cfg_.compresso);
        compressoMc_ = mc.get();
        mc_ = std::move(mc);
        break;
      }
      default: {
        OsMcConfig oc = cfg_.osMc;
        oc.embedCtes = cfg_.arch == Arch::Tmcc ||
                       cfg_.arch == Arch::BarebonePlusMl1;
        oc.fastDeflate = cfg_.arch == Arch::Tmcc ||
                         cfg_.arch == Arch::BarebonePlusMl2;
        // Target total usage: either an explicit fraction of the
        // footprint (Table IV sweeps) or Compresso's usage (Fig. 17's
        // iso-savings comparison).
        const std::uint64_t target_usage =
            cfg_.dramBudgetFraction > 0.0
                ? static_cast<std::uint64_t>(cfg_.dramBudgetFraction *
                                             footprintBytes_)
                : estimates_.compressoUsage;
        // Usage decomposes as (I + ml1)*4K + (Fc - ml1)*avgMl2Cost,
        // where I pages are incompressible (pinned to ML1) and Fc are
        // compressible; solve for the compressible ML1 share.
        const double avg_ml2 =
            estimates_.compressiblePages
                ? static_cast<double>(estimates_.ml2CostTotal) /
                      static_cast<double>(estimates_.compressiblePages)
                : static_cast<double>(pageSize);
        double ml1_pages =
            (static_cast<double>(target_usage) -
             static_cast<double>(estimates_.incompressiblePages) *
                 pageSize -
             static_cast<double>(estimates_.compressiblePages) *
                 avg_ml2) /
            (static_cast<double>(pageSize) - avg_ml2);
        ml1_pages = std::clamp(
            ml1_pages, 0.0,
            static_cast<double>(estimates_.compressiblePages));
        // The seeded frame pool must fund ML1 pages AND the chunks ML2
        // carves out of the ML1 free list, i.e. the whole target usage,
        // plus page tables and the free-list floor (kept free).
        oc.ml1TargetPages = static_cast<std::uint64_t>(ml1_pages) +
                            estimates_.incompressiblePages +
                            physMem_->pageTablePages();
        oc.dramBudgetBytes = target_usage +
                             physMem_->pageTablePages() * pageSize +
                             (oc.freeListLow + 512) * pageSize;
        auto mc = std::make_unique<OsInspiredMc>(*dram_, profiles_,
                                                 *physMem_, oc);
        osMc_ = mc.get();
        mc_ = std::move(mc);
        break;
      }
    }

    tlbs_.clear();
    walkers_.clear();
    cteBuffers_.clear();
    cores_.assign(cfg_.cores, CoreState{});
    ffFilter_.assign(cfg_.cores, FfFilter{});
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        tlbs_.push_back(std::make_unique<Tlb>(cfg_.tlbEntries));
        walkers_.push_back(std::make_unique<Walker>(*pageTable_));
        cteBuffers_.push_back(
            std::make_unique<CteBuffer>(cfg_.cteBufferEntries));
        if (cfg_.nestedPaging)
            hostWalkers_.push_back(
                std::make_unique<Walker>(*hostTable_));
    }
}

void
System::buildWorkloads()
{
    const TenantKnobs tenancy{cfg_.tenants, cfg_.tenantChurn,
                              cfg_.tenantZipf};
    for (unsigned c = 0; c < cfg_.cores; ++c)
        workloads_.push_back(makeWorkload(cfg_.workload, c, cfg_.cores,
                                          cfg_.scale, cfg_.seed,
                                          tenancy));

    // Memcloud: region t of the (shared) region list is tenant t's
    // address space, so per-tenant footprints come straight off it.
    if (cfg_.workload == "memcloud") {
        result_.tenants.resize(cfg_.tenants);
        const auto &regions = workloads_[0]->regions();
        for (unsigned t = 0; t < cfg_.tenants; ++t)
            result_.tenants[t].footprintBytes = regions[t].bytes;
    }
}

void
System::mapAddressSpace()
{
    // One mix per distinct content spec.
    std::vector<std::pair<ContentSpec, unsigned>> mixes;
    auto mix_for = [&](const ContentSpec &spec) {
        for (const auto &[s, id] : mixes)
            if (s == spec)
                return id;
        ContentMix mix;
        mix.parts.push_back({spec, 1.0});
        const unsigned id = profiles_.registerMix(mix);
        mixes.emplace_back(spec, id);
        return id;
    };

    Rng rng(cfg_.seed ^ 0xabcd);
    for (const auto &[base, r] : regionMap()) {
        const unsigned mix_id = mix_for(r->content);
        regionMix_[base] = mix_id;
        const std::uint64_t pages = r->bytes / pageSize;
        if (cfg_.hugePages) {
            const std::uint64_t huge_pages =
                (r->bytes + hugePageSize - 1) / hugePageSize;
            for (std::uint64_t h = 0; h < huge_pages; ++h) {
                const Vpn vpn_base = pageNumber(r->base) +
                                     h * (hugePageSize / pageSize);
                PhysMem &pm =
                    cfg_.nestedPaging ? *guestPhysMem_ : *physMem_;
                const Ppn ppn_base = pm.allocHugeFrame();
                PteFlags f;
                f.accessed = true;
                f.dirty = true;
                pageTable_->mapHuge(vpn_base, ppn_base, f);
                // Nested mode: host frames do not exist yet; profiles
                // attach to host frames after the host mapping.
                if (!cfg_.nestedPaging)
                    for (std::uint64_t i = 0;
                         i < hugePageSize / pageSize; ++i)
                        profiles_.assignPage(ppn_base + i, mix_id);
            }
            continue;
        }
        for (std::uint64_t i = 0; i < pages; ++i) {
            const Vpn vpn = pageNumber(r->base) + i;
            PhysMem &pm =
                cfg_.nestedPaging ? *guestPhysMem_ : *physMem_;
            const Ppn ppn = pm.allocFrame();
            PteFlags f;
            f.accessed = true;
            // After the fast-forward phase nearly every data page has
            // been written; a tiny fraction of stragglers makes the
            // Fig. 6 status-bit uniformity realistic rather than exact.
            f.dirty = !rng.chance(0.0006);
            pageTable_->map(vpn, ppn, f);
            if (!cfg_.nestedPaging)
                profiles_.assignPage(ppn, mix_id);
            // Nested mode: host frames do not exist yet; profiles are
            // attached after the host mapping (see the constructor).
        }
    }
}

void
System::warmPlacement(CaptureScratch *capture)
{
    // Touch-count run: the stand-in for gem5's KVM fast forward.  The
    // counts order pages hottest-first for initial ML1/ML2 placement.
    std::unordered_map<Vpn, std::uint32_t> touches;
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        for (std::uint64_t i = 0; i < cfg_.placementAccesses; ++i) {
            const MemAccess a = workloads_[c]->next();
            ++touches[pageNumber(a.vaddr)];
        }
    }

    // This is the checkpoint boundary: the workload streams have played
    // their placement window and everything after is arch-dependent.
    if (capture != nullptr) {
        capture->workloadStates.reserve(workloads_.size());
        for (const auto &wl : workloads_) {
            ByteWriter w;
            wl->saveState(w);
            capture->workloadStates.push_back(w.take());
        }
    }

    if (osMc_ == nullptr && compressoMc_ == nullptr &&
        capture == nullptr)
        return;

    // Page-table pages are the hottest of all (every walk touches
    // them): place first.
    std::vector<Ppn> pt_pages;
    physMem_->forEachPtPage(
        [&](Ppn ppn, const PtPage &) { pt_pages.push_back(ppn); });

    std::vector<std::pair<std::uint32_t, Vpn>> order;
    order.reserve(touches.size());
    for (const auto &[vpn, count] : touches)
        order.emplace_back(count, vpn);
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });

    // Resolve the placement sequences up front (walks are read-only,
    // so this reorders nothing): the touched pages hottest-first, then
    // the full region scan — remaining (untouched) pages are the
    // coldest.  These resolved sequences are exactly what a checkpoint
    // restore replays.
    std::vector<Ppn> touched_frames;
    touched_frames.reserve(order.size());
    for (const auto &[count, vpn] : order) {
        const WalkResult w = pageTable_->walk(vpn << pageShift);
        if (w.valid)
            touched_frames.push_back(dataFrame(w.ppn));
    }
    std::vector<Ppn> region_frames;
    for (const auto &[base, r] : regionMap()) {
        for (std::uint64_t i = 0; i < r->bytes / pageSize; ++i) {
            const WalkResult w =
                pageTable_->walk(r->base + i * pageSize);
            if (w.valid)
                region_frames.push_back(dataFrame(w.ppn));
        }
    }

    if (osMc_ != nullptr) {
        for (Ppn pt : pt_pages)
            osMc_->placePage(pt);
        for (Ppn f : touched_frames)
            osMc_->placePage(f);
        for (Ppn f : region_frames)
            osMc_->placePage(f);
    }
    if (compressoMc_ != nullptr) {
        for (Ppn pt : pt_pages)
            compressoMc_->registerPage(pt);
        for (Ppn f : region_frames)
            compressoMc_->registerPage(f);
    }

    if (capture != nullptr) {
        capture->touchedFrames = std::move(touched_frames);
        capture->regionFrames = std::move(region_frames);
    }
}

void
System::replayPlacement()
{
    const SetupCheckpoint &ck = *restore_;
    panicIf(ck.workloadStates.size() != workloads_.size(),
            "checkpoint core count does not match this config");
    for (std::size_t c = 0; c < workloads_.size(); ++c) {
        ByteReader r(ck.workloadStates[c]);
        const Status st = workloads_[c]->loadState(r);
        panicIf(!st.ok(), "checkpoint workload state rejected: " +
                              st.toString());
    }
    // Same placement sequence as the cold path: PT pages (allocation
    // order, preserved by PhysMemState), touched pages hottest-first,
    // then the region scan.  placePage/registerPage dedupe repeats
    // exactly as they did when the sequences were recorded.
    if (osMc_ != nullptr) {
        physMem_->forEachPtPage(
            [&](Ppn ppn, const PtPage &) { osMc_->placePage(ppn); });
        for (Ppn f : ck.touchedFrames)
            osMc_->placePage(f);
        for (Ppn f : ck.regionFrames)
            osMc_->placePage(f);
    }
    if (compressoMc_ != nullptr) {
        physMem_->forEachPtPage([&](Ppn ppn, const PtPage &) {
            compressoMc_->registerPage(ppn);
        });
        for (Ppn f : ck.regionFrames)
            compressoMc_->registerPage(f);
    }
}

void
System::collectPtbCtes(unsigned core, Addr ptb_addr)
{
    if (osMc_ == nullptr || !cfg_.osMc.embedCtes)
        return;
    if (cfg_.arch != Arch::Tmcc && cfg_.arch != Arch::BarebonePlusMl1)
        return;
    const OsInspiredMc::PtbView view = osMc_->ptbView(ptb_addr);
    if (!view.compressed)
        return;
    hierarchy_->l2(core).setCompressed(ptb_addr, true);
    for (unsigned i = 0; i < ptesPerPtb; ++i) {
        if (!view.present[i])
            continue;
        cteBuffers_[core]->insert(view.ppns[i], view.hasCte[i],
                                  view.cte[i], ptb_addr);
    }
}

void
System::runWarm(std::uint64_t per_core)
{
    if (cfg_.kernel == KernelMode::Batch) {
        SystemKernel::warm(*this, per_core);
        return;
    }
    for (std::uint64_t i = 0; i < per_core; ++i) {
        for (unsigned c = 0; c < cfg_.cores; ++c) {
            const MemAccess a = workloads_[c]->next();
            AccessEngine<ScalarTraits>::step(*this, c, a, false);
        }
    }
}

void
System::runMeasuredLoop(std::uint64_t quota, bool use_ring)
{
    if (cfg_.kernel == KernelMode::Batch) {
        SystemKernel::measured(*this, quota, use_ring);
        return;
    }
    // Interleave cores by local time.
    bool running = true;
    while (running) {
        unsigned next = 0;
        for (unsigned c = 1; c < cfg_.cores; ++c)
            if (cores_[c].now < cores_[next].now)
                next = c;
        const MemAccess a = workloads_[next]->next();
        AccessEngine<ScalarTraits>::step(*this, next, a, true);
        if (cfg_.statsInterval > 0 &&
            result_.accesses >= nextEpochAt_) {
            snapshotEpoch(cores_[next].now);
            nextEpochAt_ += cfg_.statsInterval;
        }
        running = false;
        for (unsigned c = 0; c < cfg_.cores; ++c)
            if (cores_[c].accesses < quota)
                running = true;
    }
}

void
System::fastForward(std::uint64_t per_core)
{
    if (per_core == 0)
        return;
    // Detailed windows between fast-forward legs may have evicted the
    // blocks the MRU filters cache; start every leg cold.
    ffFilter_.assign(cfg_.cores, FfFilter{});
    if (cfg_.kernel == KernelMode::Batch) {
        SystemKernel::fastForward(*this, per_core);
        return;
    }
    for (std::uint64_t i = 0; i < per_core; ++i) {
        for (unsigned c = 0; c < cfg_.cores; ++c) {
            const MemAccess a = workloads_[c]->next();
            ffStep(c, a);
        }
    }
}

void
System::dumpAllStats(StatDump &dump) const
{
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        tlbs_[c]->dumpStats(dump,
                            "core" + std::to_string(c) + ".tlb");
        walkers_[c]->dumpStats(dump,
                               "core" + std::to_string(c) + ".walker");
        cteBuffers_[c]->dumpStats(
            dump, "core" + std::to_string(c) + ".cte_buffer");
    }
    hierarchy_->dumpStats(dump, "hier");
    dram_->dumpStats(dump, "dram");
    mc_->dumpStats(dump, "mc");

    // Measured-window pipeline counters, exported by name so epoch
    // deltas and bench harnesses can address them like any component
    // stat (via StatDump::getRequired).
    dump.set("sys.accesses", result_.accesses);
    dump.set("sys.store_accesses", result_.storeAccesses);
    dump.set("sys.tlb_hits", result_.tlbHits);
    dump.set("sys.tlb_misses", result_.tlbMisses);
    dump.set("sys.llc_misses", result_.llcMisses);
    dump.set("sys.llc_writebacks", result_.llcWritebacks);
    dump.set("sys.cte_hits", result_.cteHits);
    dump.set("sys.cte_misses", result_.cteMisses);
    dump.set("sys.cte_misses_after_tlb_miss",
             result_.cteMissesAfterTlbMiss);
    dump.set("sys.ml1_cte_hit", result_.ml1CteHit);
    dump.set("sys.ml1_parallel", result_.ml1Parallel);
    dump.set("sys.ml1_mismatch", result_.ml1Mismatch);
    dump.set("sys.ml1_serial", result_.ml1Serial);
    dump.set("sys.ml2_accesses", result_.ml2Accesses);
    dump.set("sys.dram_used_bytes", mc_->dramUsedBytes());
    dumpHistogram(dump, "sys.l3_miss_latency", result_.l3MissLatency);
    dumpHistogram(dump, "sys.page_walk_latency",
                  result_.pageWalkLatency);
    dumpHistogram(dump, "sys.ml2_fault_latency",
                  result_.ml2FaultLatency);

    // Per-tenant isolation stats (memcloud runs only): footprint,
    // demand counts, and the fault-latency tail each guest saw.
    for (std::size_t t = 0; t < result_.tenants.size(); ++t) {
        const TenantStat &ts = result_.tenants[t];
        const std::string prefix = "sys.tenant" + std::to_string(t);
        dump.set(prefix + ".accesses", ts.accesses);
        dump.set(prefix + ".ml2_faults", ts.ml2Faults);
        dump.set(prefix + ".footprint_bytes", ts.footprintBytes);
        dump.set(prefix + ".ml2_fault_p50_ns",
                 ts.ml2FaultLatency.percentile(0.50));
        dump.set(prefix + ".ml2_fault_p99_ns",
                 ts.ml2FaultLatency.percentile(0.99));
    }
}

void
System::snapshotEpoch(Tick now)
{
    StatDump cur;
    dumpAllStats(cur);

    EpochStat e;
    e.accesses = result_.accesses;
    e.deltaAccesses = result_.accesses - prevEpochAccesses_;
    e.endTick = now > measureStart_ ? now - measureStart_ : 0;
    for (const auto &[name, v] : cur.all())
        e.delta.set(name, v - prevEpoch_.get(name));

    const double d_ml2 = e.delta.get("sys.ml2_accesses");
    const double d_denom = e.delta.get("sys.llc_misses") +
                           e.delta.get("sys.llc_writebacks");
    e.ml2AccessRate = d_denom > 0.0 ? d_ml2 / d_denom : 0.0;
    const double d_hits = e.delta.get("sys.cte_hits");
    const double d_total = d_hits + e.delta.get("sys.cte_misses");
    e.cteHitRate = d_total > 0.0 ? d_hits / d_total : 0.0;
    e.dramUsedBytes = cur.get("sys.dram_used_bytes");

    if (Tracer *tr = Tracer::active()) {
        const double ts = ticksToNs(now);
        tr->counter("ml2_access_rate", ts, e.ml2AccessRate);
        tr->counter("cte_hit_rate", ts, e.cteHitRate);
        tr->counter("dram_used_mb", ts,
                    e.dramUsedBytes / (1 << 20));
    }

    result_.epochs.push_back(std::move(e));
    prevEpoch_ = std::move(cur);
    prevEpochAccesses_ = result_.accesses;
}

void
System::setup(bool capture)
{
    panicIf(setupDone_, "System::setup() ran twice");
    panicIf(capture && restore_ != nullptr,
            "cannot capture a checkpoint from a restored System");
    setupDone_ = true;
    const auto wall0 = std::chrono::steady_clock::now();

    Tracer *tracer = Tracer::active();
    if (tracer != nullptr && tracePid_ == 0) {
        tracePid_ = tracer->allocTrack();
        tracer->processName(tracePid_,
                            std::string(archName(cfg_.arch)) + ":" +
                                cfg_.workload);
    }
    Tracer::PidScope pid_scope(tracePid_);

    if (restore_ != nullptr) {
        replayPlacement();
    } else {
        CaptureScratch scratch;
        warmPlacement(capture ? &scratch : nullptr);
        if (capture) {
            auto ck = std::make_shared<SetupCheckpoint>();
            ck->key = SetupCheckpoint::keyFor(cfg_);
            ck->footprintBytes = footprintBytes_;
            ck->nested = cfg_.nestedPaging;
            ck->physMem = physMem_->snapshot();
            ck->pageTable = pageTable_->snapshot();
            if (cfg_.nestedPaging) {
                ck->guestPhysMem = guestPhysMem_->snapshot();
                ck->hostTable = hostTable_->snapshot();
            }
            ck->profiles = profiles_.snapshot();
            ck->compressoUsage = estimates_.compressoUsage;
            ck->ml2CostTotal = estimates_.ml2CostTotal;
            ck->incompressiblePages = estimates_.incompressiblePages;
            ck->compressiblePages = estimates_.compressiblePages;
            ck->touchedFrames = std::move(scratch.touchedFrames);
            ck->regionFrames = std::move(scratch.regionFrames);
            ck->workloadStates = std::move(scratch.workloadStates);
            captured_ = std::move(ck);
        }
    }

    setupSeconds_ = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall0)
                        .count();
}

std::shared_ptr<const SetupCheckpoint>
System::captureCheckpoint() const
{
    panicIf(captured_ == nullptr,
            "captureCheckpoint() without setup(capture=true)");
    return captured_;
}

SimResult
System::run()
{
    if (!setupDone_)
        setup();
    return measure();
}

SimResult
System::measure()
{
    validateRunConfig();
    if (!setupDone_)
        setup();
    if (cfg_.sampleWindows > 0)
        return measureSampled();
    return measureExact();
}

void
System::validateRunConfig() const
{
    fatalIf(cfg_.sampleWindows == 0 &&
                (cfg_.sampleWindowAccesses != 0 ||
                 cfg_.sampleWarmAccesses != 0),
            "sample window/warm-up sizes set but the sample window "
            "count is zero");
    if (cfg_.sampleWindows == 0)
        return;
    fatalIf(cfg_.sampleWindowAccesses == 0,
            "sample window size must be positive");
    const std::uint64_t per_window =
        cfg_.sampleWindowAccesses + cfg_.sampleWarmAccesses;
    fatalIf(cfg_.sampleWindows > cfg_.measureAccesses / per_window,
            "sampling needs windows x (window + warm-up) accesses <= "
            "measure accesses (" +
                std::to_string(cfg_.sampleWindows) + " x " +
                std::to_string(per_window) + " > " +
                std::to_string(cfg_.measureAccesses) + ")");
    fatalIf(cfg_.statsInterval > 0 &&
                cfg_.statsInterval < cfg_.sampleWindowAccesses,
            "--stats-interval must be at least the sample window size "
            "(epochs cannot be finer than the detailed windows)");
}

SimResult
System::measureExact()
{
    const auto wall0 = std::chrono::steady_clock::now();
    Tracer::PidScope pid_scope(tracePid_);

    // Cache/TLB/ML warm-up window.
    for (unsigned c = 0; c < cfg_.cores; ++c)
        cores_[c] = CoreState{};
    runWarm(cfg_.warmAccesses);

    // Measured window.
    measureStart_ = 0;
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        measureStart_ = std::max(measureStart_, cores_[c].now);
        cores_[c].accesses = 0;
    }
    for (unsigned c = 0; c < cfg_.cores; ++c)
        cores_[c].now = measureStart_;
    busReadsAtStart_ = dram_->busBusyReads();
    busWritesAtStart_ = dram_->busBusyWrites();

    // Epoch snapshots diff against the measure-start baseline so the
    // first epoch's deltas exclude warm-up activity.
    if (cfg_.statsInterval > 0) {
        prevEpoch_ = StatDump{};
        dumpAllStats(prevEpoch_);
        prevEpochAccesses_ = 0;
        nextEpochAt_ = cfg_.statsInterval;
    }

    runMeasuredLoop(cfg_.measureAccesses, true);

    Tick end = 0;
    for (unsigned c = 0; c < cfg_.cores; ++c)
        end = std::max(end, cores_[c].now);
    mc_->drain(end);

    // Flush the final (possibly partial) epoch after the drain so the
    // epoch deltas sum exactly to the end-of-run totals.
    if (cfg_.statsInterval > 0 &&
        result_.accesses > prevEpochAccesses_)
        snapshotEpoch(end);

    result_.elapsed = end - measureStart_;
    result_.footprintBytes = footprintBytes_;
    result_.dramUsedBytes = mc_->dramUsedBytes();
    result_.avgL3MissLatencyNs = l3MissLatency_.mean();
    const Tick window = result_.elapsed * cfg_.cores > 0
                            ? result_.elapsed
                            : Tick{1};
    result_.readBusUtil =
        static_cast<double>(dram_->busBusyReads() - busReadsAtStart_) /
        static_cast<double>(window);
    result_.writeBusUtil =
        static_cast<double>(dram_->busBusyWrites() - busWritesAtStart_) /
        static_cast<double>(window);

    // Raw component counters plus sys.* pipeline counters.
    dumpAllStats(result_.stats);

    // Phase bookkeeping (wall-clock only; never part of the StatDump,
    // so bit-identity comparisons are unaffected).
    result_.setupSeconds = setupSeconds_;
    result_.measureSeconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 wall0)
                                 .count();
    result_.restoredFromCheckpoint = restore_ != nullptr;

    return result_;
}

namespace
{

/** Raw counter/timing state captured around one detailed window. */
struct WindowSnap
{
    std::uint64_t accesses = 0;
    std::uint64_t tlbHits = 0, tlbMisses = 0;
    std::uint64_t llcMisses = 0, llcWritebacks = 0;
    std::uint64_t cteHits = 0, cteMisses = 0;
    std::uint64_t ml2Accesses = 0;
    double l3LatSum = 0.0;
    std::uint64_t l3LatCount = 0;
    double walkLatSum = 0.0;
    std::uint64_t walkLatCount = 0;
    Tick busReads = 0, busWrites = 0;
};

/**
 * Two-sided Student-t critical value at 95% confidence.  Exact table
 * for small df (the interesting regime: df = windows - 1), the normal
 * limit beyond 30.
 */
double
tCrit95(std::uint64_t df)
{
    static const double table[] = {
        0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df == 0)
        return 0.0;
    if (df <= 30)
        return table[df];
    return 1.960;
}

/** Mean and 95% CI half-width of the per-window observations. */
SampleMetric
summarize(const std::string &name, const std::vector<double> &xs)
{
    SampleMetric m;
    m.name = name;
    const auto n = static_cast<double>(xs.size());
    if (xs.empty())
        return m;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    m.mean = sum / n;
    if (xs.size() < 2)
        return m;
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m.mean) * (x - m.mean);
    const double var = ss / (n - 1.0);
    m.ci95 = tCrit95(xs.size() - 1) * std::sqrt(var / n);
    return m;
}

} // namespace

SimResult
System::measureSampled()
{
    const auto wall0 = std::chrono::steady_clock::now();
    Tracer::PidScope pid_scope(tracePid_);

    const std::uint64_t k = cfg_.sampleWindows;
    const std::uint64_t w = cfg_.sampleWindowAccesses;
    const std::uint64_t dw = cfg_.sampleWarmAccesses;
    // Stratified intervals: each of the k windows owns an equal slice
    // of the measure-phase access budget and is measured at its end,
    // after a functional fast-forward and a short detailed warm-up
    // re-primes timing state (SMARTS-style detailed warming).
    const std::uint64_t stratum = cfg_.measureAccesses / k;

    for (unsigned c = 0; c < cfg_.cores; ++c)
        cores_[c] = CoreState{};

    // Warm-up phase: functional except for the last dw accesses.
    const std::uint64_t warm_detail = std::min(cfg_.warmAccesses, dw);
    std::uint64_t ff_total = cfg_.warmAccesses - warm_detail;
    fastForward(cfg_.warmAccesses - warm_detail);
    runWarm(warm_detail);

    if (cfg_.statsInterval > 0) {
        prevEpoch_ = StatDump{};
        dumpAllStats(prevEpoch_);
        prevEpochAccesses_ = 0;
        nextEpochAt_ = cfg_.statsInterval;
    }

    const auto snap = [this]() {
        WindowSnap s;
        s.accesses = result_.accesses;
        s.tlbHits = result_.tlbHits;
        s.tlbMisses = result_.tlbMisses;
        s.llcMisses = result_.llcMisses;
        s.llcWritebacks = result_.llcWritebacks;
        s.cteHits = result_.cteHits;
        s.cteMisses = result_.cteMisses;
        s.ml2Accesses = result_.ml2Accesses;
        s.l3LatSum = result_.l3MissLatency.sampleSum();
        s.l3LatCount = result_.l3MissLatency.count();
        s.walkLatSum = result_.pageWalkLatency.sampleSum();
        s.walkLatCount = result_.pageWalkLatency.count();
        s.busReads = dram_->busBusyReads();
        s.busWrites = dram_->busBusyWrites();
        return s;
    };
    const auto frac = [](double num, double den) {
        return den > 0.0 ? num / den : 0.0;
    };

    std::vector<std::vector<double>> obs(10);
    Tick elapsed_total = 0;
    double bus_reads_total = 0.0, bus_writes_total = 0.0;
    measureStart_ = 0;

    for (std::uint64_t win = 0; win < k; ++win) {
        const std::uint64_t ff_n = stratum - w - dw;
        fastForward(ff_n);
        ff_total += ff_n;
        runWarm(dw);

        // Align clocks at the window start (as measureExact does for
        // its single window) so the interleave is well-defined.
        Tick wstart = 0;
        for (unsigned c = 0; c < cfg_.cores; ++c)
            wstart = std::max(wstart, cores_[c].now);
        for (unsigned c = 0; c < cfg_.cores; ++c) {
            cores_[c].now = wstart;
            cores_[c].accesses = 0;
        }
        if (win == 0)
            measureStart_ = wstart;

        const WindowSnap before = snap();
        runMeasuredLoop(w, false);

        Tick wend = 0;
        for (unsigned c = 0; c < cfg_.cores; ++c)
            wend = std::max(wend, cores_[c].now);
        mc_->drain(wend);
        const WindowSnap after = snap();

        const Tick welapsed = wend - wstart;
        elapsed_total += welapsed;
        const double d_acc =
            static_cast<double>(after.accesses - before.accesses);
        const double d_elapsed_ns = ticksToNs(welapsed);
        const double d_tlb_miss =
            static_cast<double>(after.tlbMisses - before.tlbMisses);
        const double d_tlb_hit =
            static_cast<double>(after.tlbHits - before.tlbHits);
        const double d_llc_miss =
            static_cast<double>(after.llcMisses - before.llcMisses);
        const double d_llc_wb = static_cast<double>(
            after.llcWritebacks - before.llcWritebacks);
        const double d_cte_hit =
            static_cast<double>(after.cteHits - before.cteHits);
        const double d_cte_miss =
            static_cast<double>(after.cteMisses - before.cteMisses);
        const double d_ml2 = static_cast<double>(after.ml2Accesses -
                                                 before.ml2Accesses);
        const double d_bus_r =
            static_cast<double>(after.busReads - before.busReads);
        const double d_bus_w =
            static_cast<double>(after.busWrites - before.busWrites);
        bus_reads_total += d_bus_r;
        bus_writes_total += d_bus_w;

        obs[0].push_back(frac(d_acc, d_elapsed_ns));
        obs[1].push_back(frac(d_tlb_miss, d_tlb_hit + d_tlb_miss));
        obs[2].push_back(frac(1000.0 * d_llc_miss, d_acc));
        obs[3].push_back(frac(1000.0 * d_llc_wb, d_acc));
        obs[4].push_back(frac(d_cte_hit, d_cte_hit + d_cte_miss));
        obs[5].push_back(frac(d_ml2, d_llc_miss + d_llc_wb));
        obs[6].push_back(
            frac(after.l3LatSum - before.l3LatSum,
                 static_cast<double>(after.l3LatCount -
                                     before.l3LatCount)));
        obs[7].push_back(
            frac(after.walkLatSum - before.walkLatSum,
                 static_cast<double>(after.walkLatCount -
                                     before.walkLatCount)));
        obs[8].push_back(
            frac(d_bus_r, static_cast<double>(welapsed)));
        obs[9].push_back(
            frac(d_bus_w, static_cast<double>(welapsed)));

        // Final epoch flush per the exact-mode convention: deltas sum
        // to the totals over all measured windows.
        if (win + 1 == k && cfg_.statsInterval > 0 &&
            result_.accesses > prevEpochAccesses_)
            snapshotEpoch(wend);
    }

    result_.elapsed = elapsed_total;
    result_.footprintBytes = footprintBytes_;
    result_.dramUsedBytes = mc_->dramUsedBytes();
    result_.avgL3MissLatencyNs = l3MissLatency_.mean();
    const Tick window = result_.elapsed * cfg_.cores > 0
                            ? result_.elapsed
                            : Tick{1};
    result_.readBusUtil =
        bus_reads_total / static_cast<double>(window);
    result_.writeBusUtil =
        bus_writes_total / static_cast<double>(window);

    dumpAllStats(result_.stats);

    // CI summary over the k windows for every headline metric.
    static const char *const names[10] = {
        "accesses_per_ns",       "tlb_miss_rate",
        "llc_misses_per_kacc",   "llc_writebacks_per_kacc",
        "cte_hit_rate",          "ml2_access_rate",
        "l3_miss_latency_ns",    "page_walk_latency_ns",
        "read_bus_util",         "write_bus_util",
    };
    result_.sample.windows = k;
    result_.sample.windowAccesses = w;
    result_.sample.warmupAccesses = dw;
    result_.sample.ffAccesses = ff_total;
    result_.sample.metrics.clear();
    for (unsigned i = 0; i < 10; ++i)
        result_.sample.metrics.push_back(summarize(names[i], obs[i]));

    // Exported here (not in dumpAllStats, which epochs also call) so
    // the summary appears once, at end of run.
    result_.stats.set("sys.sample.windows", k);
    result_.stats.set("sys.sample.window_accesses", w);
    for (const SampleMetric &m : result_.sample.metrics) {
        result_.stats.set("sys.sample." + m.name + ".mean", m.mean);
        result_.stats.set("sys.sample." + m.name + ".ci95", m.ci95);
    }

    result_.setupSeconds = setupSeconds_;
    result_.measureSeconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 wall0)
                                 .count();
    result_.restoredFromCheckpoint = restore_ != nullptr;

    return result_;
}

} // namespace tmcc
