#include "sim/sweep_queue.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include <sys/stat.h>
#include <time.h>

#include "common/log.hh"
#include "common/versioned_file.hh"
#include "sim/checkpoint.hh"
#include "sim/runner.hh"
#include "sim/sweep_manifest.hh"

namespace tmcc
{

namespace
{

namespace fs = std::filesystem;

constexpr char requestMagic[8] = {'T', 'M', 'C', 'C', 'Q', 'R', 'E', 'Q'};
constexpr char claimMagic[8] = {'T', 'M', 'C', 'C', 'C', 'L', 'A', 'M'};
constexpr char progressMagic[8] = {'T', 'M', 'C', 'C', 'P', 'R', 'O', 'G'};

std::atomic<std::uint64_t> queueSweepsTotal{0};
std::atomic<std::uint64_t> queueMergedTotal{0};
std::atomic<std::uint64_t> queueReclaimedTotal{0};
std::atomic<std::uint64_t> queueResumedTotal{0};

double
wallSeconds()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

void
serializeClaim(ByteWriter &w, const ShardClaim &c)
{
    w.str(c.gridKey);
    w.u32(c.shardId);
    w.u32(c.attempt);
    w.str(c.owner);
    w.u64(c.heartbeatSeq);
    w.f64(c.leaseSeconds);
}

} // namespace

std::string
sweepShardFile(const std::string &dir, std::uint32_t id, const char *ext)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/shard-%03u.%s", id, ext);
    return dir + buf;
}

std::string
sweepRequestPath(const std::string &sweepDir)
{
    return sweepDir + "/REQUEST.tmccq";
}

bool
sweepTestHookFires(const char *envName, std::uint32_t shard,
                   std::uint32_t attempt)
{
    const char *v = std::getenv(envName);
    if (!v || !*v)
        return false;
    const char *at = std::strchr(v, '@');
    fatalIf(at == nullptr,
            std::string(envName) + " wants <shard>@<attempt|*>, got \"" +
                v + "\"");
    char *end = nullptr;
    const unsigned long s = std::strtoul(v, &end, 10);
    fatalIf(end != at, std::string(envName) + " has a bad shard id");
    if (s != shard)
        return false;
    if (std::strcmp(at + 1, "*") == 0)
        return true;
    const unsigned long a = std::strtoul(at + 1, &end, 10);
    fatalIf(*end != '\0' || end == at + 1,
            std::string(envName) + " has a bad attempt number");
    return a == attempt;
}

unsigned
defaultShardCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return std::clamp(hw, 1u, 64u);
}

Status
QueueRequest::save(const std::string &path) const
{
    ByteWriter w;
    w.str(gridKey);
    w.u64(totalConfigs);
    w.u32(shardCount);
    w.u32(workerJobs);
    return writeVersionedFile(path, requestMagic, formatVersion,
                              w.buffer());
}

StatusOr<QueueRequest>
QueueRequest::load(const std::string &path)
{
    TMCC_ASSIGN_OR_RETURN(
        const std::vector<std::uint8_t> payload,
        readVersionedFile(path, requestMagic, formatVersion));
    ByteReader r(payload);
    QueueRequest req;
    req.gridKey = r.str();
    req.totalConfigs = r.u64();
    req.shardCount = r.u32();
    req.workerJobs = r.u32();
    TMCC_RETURN_IF_ERROR(r.finish("QueueRequest"));
    if (req.shardCount == 0)
        return Status::corruption("QueueRequest with zero shards");
    return req;
}

Status
ShardClaim::saveExclusive(const std::string &path) const
{
    ByteWriter w;
    serializeClaim(w, *this);
    return writeVersionedFileExclusive(path, claimMagic, formatVersion,
                                       w.buffer());
}

Status
ShardClaim::saveRenew(const std::string &path) const
{
    ByteWriter w;
    serializeClaim(w, *this);
    return writeVersionedFile(path, claimMagic, formatVersion,
                              w.buffer());
}

StatusOr<ShardClaim>
ShardClaim::load(const std::string &path)
{
    TMCC_ASSIGN_OR_RETURN(
        const std::vector<std::uint8_t> payload,
        readVersionedFile(path, claimMagic, formatVersion));
    ByteReader r(payload);
    ShardClaim c;
    c.gridKey = r.str();
    c.shardId = r.u32();
    c.attempt = r.u32();
    c.owner = r.str();
    c.heartbeatSeq = r.u64();
    c.leaseSeconds = r.f64();
    TMCC_RETURN_IF_ERROR(r.finish("ShardClaim"));
    if (c.owner.empty() || c.attempt == 0 ||
        !std::isfinite(c.leaseSeconds) || c.leaseSeconds <= 0.0)
        return Status::corruption(path + ": implausible claim record");
    return c;
}

Status
ShardProgress::save(const std::string &path) const
{
    ByteWriter w;
    w.str(gridKey);
    w.u32(shardId);
    w.u32(attempt);
    w.str(owner);
    w.u64(configsDone);
    w.u64(configsTotal);
    w.u64(accessesDone);
    w.u64(epochsSeen);
    w.f64(lastMl2AccessRate);
    w.f64(lastCteHitRate);
    w.f64(lastDramUsedBytes);
    return writeVersionedFile(path, progressMagic, formatVersion,
                              w.buffer());
}

StatusOr<ShardProgress>
ShardProgress::load(const std::string &path)
{
    TMCC_ASSIGN_OR_RETURN(
        const std::vector<std::uint8_t> payload,
        readVersionedFile(path, progressMagic, formatVersion));
    ByteReader r(payload);
    ShardProgress p;
    p.gridKey = r.str();
    p.shardId = r.u32();
    p.attempt = r.u32();
    p.owner = r.str();
    p.configsDone = r.u64();
    p.configsTotal = r.u64();
    p.accessesDone = r.u64();
    p.epochsSeen = r.u64();
    p.lastMl2AccessRate = r.f64();
    p.lastCteHitRate = r.f64();
    p.lastDramUsedBytes = r.f64();
    TMCC_RETURN_IF_ERROR(r.finish("ShardProgress"));
    return p;
}

double
shardClaimAgeSeconds(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1.0;
    const double mtime = static_cast<double>(st.st_mtim.tv_sec) +
                         static_cast<double>(st.st_mtim.tv_nsec) * 1e-9;
    return wallSeconds() - mtime;
}

ClaimAttempt
tryClaimShard(const std::string &dir, const std::string &gridKey,
              std::uint32_t shardId, const std::string &owner,
              double leaseSeconds)
{
    const std::string path = sweepShardFile(dir, shardId, "claim");
    ClaimAttempt out;
    out.claim.gridKey = gridKey;
    out.claim.shardId = shardId;
    out.claim.owner = owner;
    out.claim.heartbeatSeq = 0;
    out.claim.leaseSeconds = leaseSeconds;
    out.claim.attempt = 1;

    std::error_code ec;
    if (fs::exists(path, ec)) {
        auto existing = ShardClaim::load(path);
        if (existing.ok()) {
            const double age = shardClaimAgeSeconds(path);
            if (age >= 0.0 && age <= existing.value().leaseSeconds) {
                out.reason = "held by " + existing.value().owner +
                             " (age " + std::to_string(age) + "s of " +
                             std::to_string(
                                 existing.value().leaseSeconds) +
                             "s lease)";
                return out;
            }
            // Stale: the owner died or stalled past its lease.  The
            // next claimant inherits the attempt count (failure hooks
            // and reclaim accounting key off it).
            out.claim.attempt = existing.value().attempt + 1;
        }
        // Corrupt/truncated claims are never trusted: reclaim now.
        fs::remove(path, ec); // ENOENT = another reclaimer was faster
        out.reclaimed = true;
    }

    const Status st = out.claim.saveExclusive(path);
    if (st.ok()) {
        out.claimed = true;
        return out;
    }
    // EEXIST = lost the create race to a concurrent claimant; any
    // other error (unwritable dir, ...) also reads as "not ours".
    out.reclaimed = false;
    out.reason = "lost claim race: " + st.toString();
    return out;
}

Status
renewShardClaim(const std::string &dir, ShardClaim &claim)
{
    const std::string path =
        sweepShardFile(dir, claim.shardId, "claim");
    auto current = ShardClaim::load(path);
    if (!current.ok())
        return Status::internal("lease lost (claim unreadable): " +
                                current.status().toString());
    const ShardClaim &cur = current.value();
    if (cur.owner != claim.owner || cur.attempt != claim.attempt ||
        cur.gridKey != claim.gridKey)
        return Status::internal("lease stolen by " + cur.owner +
                                " (attempt " +
                                std::to_string(cur.attempt) + ")");
    ++claim.heartbeatSeq;
    return claim.saveRenew(path);
}

void
releaseShardClaim(const std::string &dir, const ShardClaim &claim)
{
    const std::string path =
        sweepShardFile(dir, claim.shardId, "claim");
    auto current = ShardClaim::load(path);
    if (!current.ok() || current.value().owner != claim.owner ||
        current.value().attempt != claim.attempt)
        return; // not ours any more; leave it alone
    std::error_code ec;
    fs::remove(path, ec);
}

void
QueueOptions::validate() const
{
    fatalIf(queueDir.empty(),
            "queue dispatch needs a queue directory (--queue-dir)");
    fatalIf(!std::isfinite(pollSeconds) || pollSeconds <= 0.0,
            "queue poll interval must be a positive number of seconds");
    fatalIf(!std::isfinite(timeoutSeconds) || timeoutSeconds < 0.0,
            "queue timeout must be >= 0 seconds (0 = wait forever)");
    fatalIf(workerJobs == 0,
            "queue worker jobs must be a positive integer");
}

QueueClient::QueueClient(QueueOptions opts) : opts_(std::move(opts))
{
    opts_.validate();
}

QueueClient::Totals
QueueClient::totals()
{
    Totals t;
    t.sweeps = queueSweepsTotal.load();
    t.mergedShards = queueMergedTotal.load();
    t.reclaimedShards = queueReclaimedTotal.load();
    t.resumedShards = queueResumedTotal.load();
    return t;
}

void
QueueClient::resetTotals()
{
    queueSweepsTotal = 0;
    queueMergedTotal = 0;
    queueReclaimedTotal = 0;
    queueResumedTotal = 0;
}

std::string
QueueClient::enqueue(const std::vector<SimConfig> &grid)
{
    fatalIf(grid.empty(), "queue sweep needs a non-empty grid");

    const std::string key = sweepGridKey(grid);
    const std::string name = !opts_.sweepName.empty()
                                 ? opts_.sweepName
                                 : "sweep-" + key.substr(0, 8);
    const std::string dir = opts_.queueDir + "/" + name;
    std::error_code ec;
    fs::create_directories(dir, ec);
    fatalIf(!fs::is_directory(dir, ec),
            "cannot create sweep directory " + dir);

    // Load or create the manifest; the partition must be stable across
    // re-enqueues so workers and client agree on config indices.
    const std::string mpath = dir + "/MANIFEST.tmccsweep";
    SweepManifest manifest;
    bool have_manifest = false;
    if (fs::exists(mpath, ec)) {
        auto loaded = SweepManifest::load(mpath);
        if (loaded.ok()) {
            manifest = std::move(loaded).value();
            fatalIf(manifest.gridKey != key,
                    "queue sweep directory " + dir +
                        " holds a different sweep (manifest grid " +
                        manifest.gridKey + ", this grid " + key +
                        "); use a fresh sweep name");
            fatalIf(manifest.totalConfigs != grid.size(),
                    "queue sweep manifest config count mismatch");
            have_manifest = true;
        } else {
            warn("queue sweep manifest rejected, re-partitioning: " +
                 loaded.status().toString());
        }
    }
    if (!have_manifest) {
        const unsigned want =
            opts_.shards ? opts_.shards : defaultShardCount();
        const unsigned n_shards = static_cast<unsigned>(
            std::min<std::size_t>(want, grid.size()));
        manifest.gridKey = key;
        manifest.totalConfigs = grid.size();
        manifest.shards.assign(n_shards, SweepManifest::Shard{});
        for (unsigned s = 0; s < n_shards; ++s)
            manifest.shards[s].id = s;
        for (std::size_t i = 0; i < grid.size(); ++i)
            manifest.shards[i % n_shards].configIndices.push_back(i);
        fatalIf(!manifest.save(mpath).ok(),
                "cannot write sweep manifest " + mpath);
    }

    // Shard specs: the work orders the daemons execute.  Written (or
    // refreshed) before the request marker so a visible request always
    // has complete specs.
    for (const SweepManifest::Shard &shard : manifest.shards) {
        ShardSpec spec;
        spec.gridKey = key;
        spec.shardId = shard.id;
        spec.attempt = 1;
        spec.workerJobs = opts_.workerJobs;
        spec.resultPath = sweepShardFile(dir, shard.id, "result");
        spec.configIndices = shard.configIndices;
        for (std::uint64_t idx : shard.configIndices)
            spec.configs.push_back(grid[idx]);
        const std::string spath = sweepShardFile(dir, shard.id, "spec");
        fatalIf(!spec.save(spath).ok(),
                "cannot write shard spec " + spath);
    }

    QueueRequest req;
    req.gridKey = key;
    req.totalConfigs = grid.size();
    req.shardCount = static_cast<std::uint32_t>(manifest.shards.size());
    req.workerJobs = opts_.workerJobs;
    fatalIf(!req.save(sweepRequestPath(dir)).ok(),
            "cannot write queue request in " + dir);
    queueSweepsTotal.fetch_add(1);
    return dir;
}

SweepOutcome
QueueClient::run(const std::vector<SimConfig> &grid)
{
    const std::string key = sweepGridKey(grid);
    const std::string dir = enqueue(grid);
    const std::string mpath = dir + "/MANIFEST.tmccsweep";
    auto manifest_or = SweepManifest::load(mpath);
    fatalIf(!manifest_or.ok(), "queue sweep manifest unreadable after "
                               "enqueue: " +
                                   manifest_or.status().toString());
    SweepManifest manifest = std::move(manifest_or).value();

    SweepOutcome out;
    out.results.resize(grid.size());
    out.resultValid.assign(grid.size(), false);

    std::vector<bool> merged(manifest.shards.size(), false);
    unsigned unmerged = static_cast<unsigned>(manifest.shards.size());

    const auto try_merge = [&](std::size_t s, bool resume) -> bool {
        SweepManifest::Shard &shard = manifest.shards[s];
        const std::string rpath =
            sweepShardFile(dir, shard.id, "result");
        std::error_code ec;
        if (!fs::exists(rpath, ec))
            return false;
        auto loaded = ShardResultFile::load(rpath);
        if (!loaded.ok()) {
            // Torn/corrupt publications never merge; the lease
            // protocol will have the shard re-run.
            if (!resume)
                warn("shard " + std::to_string(shard.id) +
                     " result rejected: " + loaded.status().toString());
            return false;
        }
        const ShardResultFile &file = loaded.value();
        if (file.gridKey != key ||
            file.configIndices != shard.configIndices)
            return false;
        for (std::size_t i = 0; i < file.configIndices.size(); ++i) {
            const std::uint64_t idx = file.configIndices[i];
            fatalIf(idx >= grid.size(),
                    "shard result index beyond the grid");
            out.results[idx] = file.results[i];
            out.resultValid[idx] = true;
            SimRunner::recordExternalRun(file.results[i]);
        }
        // Fold the worker's checkpoint traffic into this process's
        // counters so the merged BENCH report carries sweep-wide
        // checkpoint hit counts.
        CheckpointStore::Stats ck;
        ck.memoryHits = file.ckptMemoryHits;
        ck.diskHits = file.ckptDiskHits;
        ck.misses = file.ckptMisses;
        ck.rejectedFiles = file.ckptRejected;
        CheckpointStore::global().recordExternal(ck);

        merged[s] = true;
        --unmerged;
        ++out.completedShards;
        queueMergedTotal.fetch_add(1);
        if (resume) {
            ++out.resumedShards;
            queueResumedTotal.fetch_add(1);
        }
        if (file.attempt > 1) {
            queueReclaimedTotal.fetch_add(1);
            ++out.retries; // the shard needed more than one claim
        }
        shard.state = ShardState::Done;
        shard.attempts = file.attempt;
        shard.lastError.clear();
        if (opts_.verbose)
            std::printf("[queue] shard %u merged (%zu configs, "
                        "attempt %u%s)\n",
                        shard.id, shard.configIndices.size(),
                        file.attempt, resume ? ", resumed" : "");
        return true;
    };

    for (std::size_t s = 0; s < manifest.shards.size(); ++s)
        try_merge(s, /*resume=*/true);
    if (!manifest.save(mpath).ok())
        warn("cannot save queue sweep manifest " + mpath);

    const double deadline =
        opts_.timeoutSeconds > 0.0
            ? wallSeconds() + opts_.timeoutSeconds
            : 0.0;
    double next_progress = wallSeconds() + 5.0;
    if (opts_.verbose && unmerged > 0)
        std::printf("[queue] waiting for %u/%zu shards in %s "
                    "(serve with: tmcc_simd --serve %s)\n",
                    unmerged, manifest.shards.size(), dir.c_str(),
                    opts_.queueDir.c_str());

    while (unmerged > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opts_.pollSeconds));
        bool progressed = false;
        for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
            if (merged[s])
                continue;
            progressed |= try_merge(s, /*resume=*/false);
        }
        if (progressed && !manifest.save(mpath).ok())
            warn("cannot save queue sweep manifest " + mpath);

        const double now = wallSeconds();
        if (opts_.verbose && now >= next_progress) {
            next_progress = now + 5.0;
            for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
                if (merged[s])
                    continue;
                const std::uint32_t id = manifest.shards[s].id;
                auto prog = ShardProgress::load(
                    sweepShardFile(dir, id, "progress"));
                auto cl = ShardClaim::load(
                    sweepShardFile(dir, id, "claim"));
                if (prog.ok() && cl.ok())
                    std::printf("[queue] shard %u: %llu/%llu configs "
                                "by %s (attempt %u)\n",
                                id,
                                static_cast<unsigned long long>(
                                    prog.value().configsDone),
                                static_cast<unsigned long long>(
                                    prog.value().configsTotal),
                                cl.value().owner.c_str(),
                                cl.value().attempt);
                else if (cl.ok())
                    std::printf("[queue] shard %u: claimed by %s\n", id,
                                cl.value().owner.c_str());
                else
                    std::printf("[queue] shard %u: unclaimed\n", id);
            }
        }
        if (deadline > 0.0 && now > deadline)
            break;
    }

    if (unmerged == 0) {
        // Retire the request so daemons stop rescanning this sweep;
        // the results stay for resume.
        std::error_code ec;
        fs::remove(sweepRequestPath(dir), ec);
    } else {
        for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
            if (merged[s])
                continue;
            manifest.shards[s].lastError =
                "queue timeout after " +
                std::to_string(opts_.timeoutSeconds) + "s";
            ++out.failedShards;
            warn("shard " + std::to_string(manifest.shards[s].id) +
                 " not served before the queue timeout");
        }
    }
    out.shards = manifest.shards;
    return out;
}

} // namespace tmcc
