/**
 * @file
 * Process-isolated sweep executor (docs/SWEEP.md): the parent
 * partitions a SimConfig grid into shards, forks one worker subprocess
 * per shard (each re-execing the host binary with `--shard-spec FILE`),
 * and supervises them — per-shard wall-clock timeouts (kill on
 * timeout), crash detection via exit status/signal, bounded retry with
 * exponential backoff, and CRC-verified result files merged back into
 * one result set in original grid order.
 *
 * A crashed, hung, or OOM-killed run costs one shard attempt, not the
 * sweep: finished shards persist on disk, and an interrupted or killed
 * sweep resumes from its manifest by re-running only missing/failed
 * shards.  The invariant (enforced by tests/sim/shard_runner_test.cc):
 * merged aggregate stats are bit-identical to the same grid run
 * serially through SimRunner, including after an injected worker
 * SIGKILL mid-sweep.
 */

#ifndef TMCC_SIM_SHARD_RUNNER_HH
#define TMCC_SIM_SHARD_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sim_config.hh"
#include "sim/sim_result.hh"
#include "sim/sweep_manifest.hh"

namespace tmcc
{

/** Supervisor policy for one sharded sweep. */
struct ShardOptions
{
    /**
     * Shard count for a fresh sweep, and the maximum number of worker
     * processes alive at once.  A resumed sweep keeps the partition
     * recorded in its manifest and uses this only as the concurrency
     * cap.
     */
    unsigned shards = 2;

    /** SimRunner threads inside each worker (shards are the primary
     * parallelism axis, so workers default to serial). */
    unsigned workerJobs = 1;

    /** Per-attempt wall-clock budget; the supervisor SIGKILLs a worker
     * that exceeds it.  0 disables the watchdog. */
    double timeoutSeconds = 0.0;

    /** Attempt cap per shard (first run + retries). */
    unsigned maxAttempts = 3;

    /** Retry delay: backoffSeconds * 2^(attempt-1), capped below. */
    double backoffSeconds = 0.25;
    double backoffCapSeconds = 8.0;

    /** Sweep directory: manifest, shard specs, shard result files. */
    std::string sweepDir;

    /** Binary to exec for workers; must handle `--shard-spec FILE`
     * (tmcc_sim does; tests pass their own re-entrant binary). */
    std::string workerPath;

    /** Progress lines on stdout. */
    bool verbose = true;
};

/** Merged outcome of a sharded sweep. */
struct SweepOutcome
{
    /** Results in original grid order; entries of failed shards are
     * default-constructed (check `resultValid`). */
    std::vector<SimResult> results;
    std::vector<bool> resultValid;

    /** Final manifest state of every shard. */
    std::vector<SweepManifest::Shard> shards;

    unsigned completedShards = 0;
    unsigned failedShards = 0;  //!< shards that exhausted retries
    unsigned retries = 0;       //!< failed attempts that were retried
    unsigned resumedShards = 0; //!< satisfied from a previous sweep

    /** Every shard completed and every result merged. */
    bool ok() const { return failedShards == 0; }
};

class ShardRunner
{
  public:
    explicit ShardRunner(ShardOptions opts);

    /**
     * Run `grid` sharded across worker processes and merge the shard
     * results.  Creates (or resumes) the sweep directory.  Fatal only
     * on caller errors (empty grid, unusable sweep dir, a manifest
     * recorded for a different grid); worker failures degrade into
     * `failedShards` + manifest records instead.
     */
    SweepOutcome run(const std::vector<SimConfig> &grid);

    /**
     * Worker entry point for `--shard-spec FILE`: load the spec, run
     * its configs through SimRunner, publish the CRC'd result file
     * atomically.  Returns the process exit code (0 = published).
     *
     * Failure-injection hooks for tests/CI, matched against the spec's
     * shard id and attempt (value format "<shard>@<attempt>" or
     * "<shard>@*"):
     *   TMCC_SHARD_TEST_KILL     raise(SIGKILL) mid-shard
     *   TMCC_SHARD_TEST_HANG     hang mid-shard until the watchdog
     *   TMCC_SHARD_TEST_CORRUPT  publish a result file with a bad CRC
     */
    static int workerMain(const std::string &specPath);

    /** Process-wide sweep totals (BenchReport's shard-aware fields). */
    struct Totals
    {
        std::uint64_t sweeps = 0;
        std::uint64_t shardRuns = 0; //!< worker attempts launched
        std::uint64_t retries = 0;
        std::uint64_t failedShards = 0;
        std::uint64_t resumedShards = 0;
    };
    static Totals totals();
    static void resetTotals(); //!< tests

  private:
    ShardOptions opts_;
};

} // namespace tmcc

#endif // TMCC_SIM_SHARD_RUNNER_HH
