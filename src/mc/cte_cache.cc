#include "mc/cte_cache.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace tmcc
{

CteCache::CteCache(std::size_t size_bytes, unsigned pages_per_block,
                   unsigned assoc)
    : pagesPerBlock_(pages_per_block), assoc_(assoc)
{
    fatalIf(pages_per_block == 0, "CTE block must cover >= 1 page");
    fatalIf(assoc == 0, "CTE cache associativity must be >= 1");
    fatalIf(assoc > simd::maxWays,
            "CTE cache associativity " + std::to_string(assoc) +
                " exceeds the probe engine's " +
                std::to_string(simd::maxWays) + "-way set limit");
    const std::size_t blocks = size_bytes / blockSize;
    fatalIf(blocks < assoc,
            "CTE cache of " + std::to_string(size_bytes) +
                " bytes holds " + std::to_string(blocks) + " " +
                std::to_string(blockSize) +
                "B blocks, too few for even one " +
                std::to_string(assoc) + "-way set");
    fatalIf(blocks % assoc != 0,
            "CTE cache associativity (" + std::to_string(assoc) +
                ") must divide the block count (" +
                std::to_string(blocks) + ")");
    sets_ = blocks / assoc;
    blockPow2_ = isPowerOf2(pages_per_block);
    blockShift_ = blockPow2_ ? floorLog2(pages_per_block) : 0;
    setsPow2_ = isPowerOf2(sets_);
    setMask_ = setsPow2_ ? sets_ - 1 : 0;
    // Pad each set's metadata row to the vector width; invalid ways
    // hold the invalidTag sentinel, padding ways a distinct sentinel
    // plus an all-ones LRU stamp so no scan can pick them.
    wstride_ = simd::padWays(assoc_);
    tags_.assign(sets_ * wstride_, padTag);
    lru_.assign(sets_ * wstride_, ~std::uint64_t{0});
    for (std::size_t s = 0; s < sets_; ++s)
        for (unsigned w = 0; w < assoc_; ++w) {
            tags_[s * wstride_ + w] = invalidTag;
            lru_[s * wstride_ + w] = 0;
        }
}

void
CteCache::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".hits", hits_.value());
    dump.set(prefix + ".misses", misses_.value());
    const auto total = hits_.value() + misses_.value();
    dump.set(prefix + ".hit_rate",
             total ? static_cast<double>(hits_.value()) /
                         static_cast<double>(total)
                   : 0.0);
}

} // namespace tmcc
