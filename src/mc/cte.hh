/**
 * @file
 * Compression Translation Entries — the hardware-managed physical→DRAM
 * translations at the heart of the paper (§II, Fig. 13).
 *
 * TMCC's page-level CTE is 8 bytes:
 *   - the DRAM frame (or sub-chunk) the page currently occupies,
 *   - location level (ML1 / ML2),
 *   - isIncompressible (§IV-B),
 *   - the 32-bit vector tracking which adjacent-block pairs of the page
 *     use the compressed-PTB encoding (§V-A4).
 *
 * Compresso-style block-level metadata costs a full 64B per 4KB page
 * (per-block positions); it is modelled by BlockCte.
 */

#ifndef TMCC_MC_CTE_HH
#define TMCC_MC_CTE_HH

#include <cstdint>

#include "common/types.hh"

namespace tmcc
{

/** Which memory level a page currently lives in. */
enum class PageLevel : std::uint8_t
{
    ML1 = 0, //!< uncompressed 4KB DRAM frame
    ML2 = 1, //!< Deflate-compressed sub-chunk
};

/** TMCC page-level CTE (8 bytes in DRAM). */
struct PageCte
{
    std::uint64_t dramFrame = 0;  //!< 4KB DRAM frame (ML1) or sub-chunk
                                  //!< byte address >> 12 stand-in (ML2)
    Addr ml2Addr = 0;             //!< exact sub-chunk byte address (ML2)
    PageLevel level = PageLevel::ML1;
    bool valid = false;
    bool isIncompressible = false;
    std::uint32_t ptbPairVector = 0; //!< compressed-PTB pair tracking

    /** The truncated CTE embedded into PTBs (§V-A5): frame bits only. */
    std::uint64_t
    truncated(unsigned bits_available) const
    {
        const std::uint64_t mask =
            bits_available >= 64 ? ~0ULL
                                 : ((1ULL << bits_available) - 1);
        return dramFrame & mask;
    }
};

/** Compresso-style block-level metadata for one 4KB page (64B). */
struct BlockCte
{
    bool valid = false;
    std::uint32_t chunks = 0;        //!< 512B chunks allocated
    Addr firstChunkAddr = 0;         //!< DRAM address of chunk 0
    std::uint16_t compressedBytes = 0; //!< current packed size
};

/** Size of the two CTE formats in DRAM, for reach computations. */
constexpr std::size_t pageCteBytes = 8;   //!< TMCC (§V-A6)
constexpr std::size_t blockCteBytes = 64; //!< Compresso (§III)

} // namespace tmcc

#endif // TMCC_MC_CTE_HH
