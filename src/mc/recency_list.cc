#include "mc/recency_list.hh"

#include "common/log.hh"

namespace tmcc
{

RecencyList::RecencyList(double sample_probability, std::uint64_t seed)
    : sampleP_(sample_probability), rng_(seed)
{}

void
RecencyList::insertHot(Ppn ppn)
{
    auto it = index_.find(ppn);
    if (it != index_.end()) {
        list_.erase(it->second);
        index_.erase(it);
    }
    list_.push_front(ppn);
    index_[ppn] = list_.begin();
}

void
RecencyList::insertCold(Ppn ppn)
{
    auto it = index_.find(ppn);
    if (it != index_.end()) {
        list_.erase(it->second);
        index_.erase(it);
    }
    list_.push_back(ppn);
    index_[ppn] = std::prev(list_.end());
}

void
RecencyList::touch(Ppn ppn)
{
    touches_.inc();
    if (!rng_.chance(sampleP_))
        return;
    auto it = index_.find(ppn);
    if (it == index_.end())
        return; // not tracked (e.g., incompressible)
    promotions_.inc();
    list_.erase(it->second);
    list_.push_front(ppn);
    it->second = list_.begin();
}

Ppn
RecencyList::coldest() const
{
    return list_.empty() ? invalidAddr : list_.back();
}

Ppn
RecencyList::popColdest()
{
    panicIf(list_.empty(), "recency list underflow");
    evictions_.inc();
    const Ppn ppn = list_.back();
    list_.pop_back();
    index_.erase(ppn);
    return ppn;
}

void
RecencyList::remove(Ppn ppn)
{
    auto it = index_.find(ppn);
    if (it == index_.end())
        return;
    list_.erase(it->second);
    index_.erase(it);
}

bool
RecencyList::maybeReadmit(Ppn ppn)
{
    if (contains(ppn) || !rng_.chance(sampleP_))
        return false;
    readmissions_.inc();
    insertHot(ppn);
    return true;
}

void
RecencyList::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".size", list_.size());
    dump.set(prefix + ".touches", touches_.value());
    dump.set(prefix + ".promotions", promotions_.value());
    dump.set(prefix + ".evictions", evictions_.value());
    dump.set(prefix + ".readmissions", readmissions_.value());
    dump.set(prefix + ".overhead_bytes", overheadBytes());
}

} // namespace tmcc
