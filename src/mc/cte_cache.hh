/**
 * @file
 * The MC's dedicated CTE cache (§II/III).  It caches 64B CTE *blocks*:
 * under TMCC each block holds eight 8B page-level CTEs (32KB reach per
 * block, Table III); under Compresso one block is a single page's
 * metadata (4KB reach).
 *
 * The cache is indexed by CTE block number = PPN / entriesPerBlock, so
 * page-level translation gets its 8x reach (and the spatial-locality
 * benefit of §IV) purely from the format, exactly as in the paper.
 *
 * Way metadata is structure-of-arrays (contiguous tag / LRU / valid
 * arrays) with hot methods defined inline so the MC-side lookup in the
 * measured kernels is a tight set scan.
 */

#ifndef TMCC_MC_CTE_CACHE_HH
#define TMCC_MC_CTE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace tmcc
{

/** Set-associative cache of CTE blocks. */
class CteCache : public Stated
{
  public:
    /**
     * @param size_bytes      total capacity (64KB TMCC, 128KB Compresso)
     * @param pages_per_block CTEs covered by one 64B block (8 or 1)
     */
    CteCache(std::size_t size_bytes, unsigned pages_per_block,
             unsigned assoc = 8);

    /** Look up the CTE covering `ppn`; updates LRU. */
    bool
    lookup(Ppn ppn)
    {
        const std::uint64_t tag = blockOf(ppn);
        const std::size_t base = setIndexOf(tag) * assoc_;
        for (unsigned w = 0; w < assoc_; ++w) {
            if (valid_[base + w] && tags_[base + w] == tag) {
                lru_[base + w] = ++lruClock_;
                hits_.inc();
                return true;
            }
        }
        misses_.inc();
        return false;
    }

    /** Probe without side effects. */
    bool
    probe(Ppn ppn) const
    {
        const std::uint64_t tag = blockOf(ppn);
        const std::size_t base = setIndexOf(tag) * assoc_;
        for (unsigned w = 0; w < assoc_; ++w)
            if (valid_[base + w] && tags_[base + w] == tag)
                return true;
        return false;
    }

    /** Install the block covering `ppn` (after a DRAM CTE fetch). */
    void
    insert(Ppn ppn)
    {
        const std::uint64_t tag = blockOf(ppn);
        const std::size_t base = setIndexOf(tag) * assoc_;
        std::size_t victim = base;
        for (unsigned w = 0; w < assoc_; ++w) {
            if (valid_[base + w] && tags_[base + w] == tag) {
                lru_[base + w] = ++lruClock_;
                return; // already present
            }
            if (!valid_[base + w]) {
                victim = base + w;
                break;
            }
            if (lru_[base + w] < lru_[victim])
                victim = base + w;
        }
        tags_[victim] = tag;
        valid_[victim] = 1;
        lru_[victim] = ++lruClock_;
    }

    /** Invalidate the block covering `ppn` (CTE rewritten in DRAM). */
    void
    invalidate(Ppn ppn)
    {
        const std::uint64_t tag = blockOf(ppn);
        const std::size_t base = setIndexOf(tag) * assoc_;
        for (unsigned w = 0; w < assoc_; ++w)
            if (valid_[base + w] && tags_[base + w] == tag)
                valid_[base + w] = 0;
    }

    unsigned pagesPerBlock() const { return pagesPerBlock_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

  private:
    /** CTE block covering `ppn` (shift when the geometry allows). */
    std::uint64_t
    blockOf(Ppn ppn) const
    {
        return blockPow2_ ? (ppn >> blockShift_) : (ppn / pagesPerBlock_);
    }

    /** Set holding `block` (mask for power-of-two set counts). */
    std::size_t
    setIndexOf(std::uint64_t block) const
    {
        return static_cast<std::size_t>(
            setsPow2_ ? (block & setMask_) : (block % sets_));
    }

    unsigned pagesPerBlock_;
    bool blockPow2_ = true;
    unsigned blockShift_ = 0;
    std::size_t sets_;
    bool setsPow2_ = true;
    std::uint64_t setMask_ = 0;
    unsigned assoc_;

    // Structure-of-arrays way metadata, sets_ x assoc_ flattened.
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint64_t> lru_;
    std::uint64_t lruClock_ = 0;
    Counter hits_, misses_;
};

} // namespace tmcc

#endif // TMCC_MC_CTE_CACHE_HH
