/**
 * @file
 * The MC's dedicated CTE cache (§II/III).  It caches 64B CTE *blocks*:
 * under TMCC each block holds eight 8B page-level CTEs (32KB reach per
 * block, Table III); under Compresso one block is a single page's
 * metadata (4KB reach).
 *
 * The cache is indexed by CTE block number = PPN / entriesPerBlock, so
 * page-level translation gets its 8x reach (and the spatial-locality
 * benefit of §IV) purely from the format, exactly as in the paper.
 *
 * Way metadata is structure-of-arrays (contiguous tag / LRU arrays,
 * sets padded to the SIMD vector width; invalid ways carry a sentinel
 * tag no real CTE block number can take) with hot methods defined
 * inline, so the MC-side lookup in the measured kernels is a whole-set
 * vector compare through the common/simd.hh probe primitives — same
 * engine, and same bit-identical-to-scalar contract, as Cache and Tlb.
 */

#ifndef TMCC_MC_CTE_CACHE_HH
#define TMCC_MC_CTE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/simd.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace tmcc
{

/** Set-associative cache of CTE blocks. */
class CteCache : public Stated
{
  public:
    /**
     * @param size_bytes      total capacity (64KB TMCC, 128KB Compresso)
     * @param pages_per_block CTEs covered by one 64B block (8 or 1)
     */
    CteCache(std::size_t size_bytes, unsigned pages_per_block,
             unsigned assoc = 8);

    /** Look up the CTE covering `ppn`; updates LRU. */
    bool
    lookup(Ppn ppn)
    {
        const std::uint64_t tag = blockOf(ppn);
        const std::size_t base = setIndexOf(tag) * wstride_;
        const std::uint64_t m =
            Probe::eqMask(&tags_[base], wstride_, tag);
        if (m) {
            lru_[base + simd::firstWay(m)] = ++lruClock_;
            hits_.inc();
            return true;
        }
        misses_.inc();
        return false;
    }

    /** Probe without side effects. */
    bool
    probe(Ppn ppn) const
    {
        const std::uint64_t tag = blockOf(ppn);
        const std::size_t base = setIndexOf(tag) * wstride_;
        return Probe::eqMask(&tags_[base], wstride_, tag) != 0;
    }

    /** Install the block covering `ppn` (after a DRAM CTE fetch). */
    void
    insert(Ppn ppn)
    {
        const std::uint64_t tag = blockOf(ppn);
        const std::size_t base = setIndexOf(tag) * wstride_;
        // The historical scalar scan stopped at the first way that
        // matched (refresh) or was invalid (victim), else took the
        // running LRU min; the mask math preserves that order.
        std::uint64_t match, inv;
        Probe::eqMask2(&tags_[base], wstride_, tag, invalidTag,
                       match, inv);
        std::size_t victim;
        if (match | inv) {
            const unsigned w = simd::firstWay(match | inv);
            if (match & (std::uint64_t{1} << w)) {
                lru_[base + w] = ++lruClock_;
                return; // already present
            }
            victim = base + w;
        } else {
            victim = base + Probe::minIndex(&lru_[base], wstride_);
        }
        tags_[victim] = tag;
        lru_[victim] = ++lruClock_;
    }

    /** Invalidate the block covering `ppn` (CTE rewritten in DRAM). */
    void
    invalidate(Ppn ppn)
    {
        const std::uint64_t tag = blockOf(ppn);
        const std::size_t base = setIndexOf(tag) * wstride_;
        std::uint64_t m = Probe::eqMask(&tags_[base], wstride_, tag);
        while (m) {
            tags_[base + simd::firstWay(m)] = invalidTag;
            m &= m - 1;
        }
    }

    /** Test-only view of one way's metadata (way < associativity). */
    struct WayView
    {
        std::uint64_t tag;
        std::uint64_t lru;
        bool valid;
    };

    WayView
    wayView(std::size_t set, unsigned way) const
    {
        const std::size_t w = set * wstride_ + way;
        return WayView{tags_[w], lru_[w], tags_[w] != invalidTag};
    }

    std::size_t numSets() const { return sets_; }
    unsigned associativity() const { return assoc_; }
    unsigned pagesPerBlock() const { return pagesPerBlock_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

  private:
    /** CTE block covering `ppn` (shift when the geometry allows). */
    std::uint64_t
    blockOf(Ppn ppn) const
    {
        return blockPow2_ ? (ppn >> blockShift_) : (ppn / pagesPerBlock_);
    }

    /** Set holding `block` (mask for power-of-two set counts). */
    std::size_t
    setIndexOf(std::uint64_t block) const
    {
        return static_cast<std::size_t>(
            setsPow2_ ? (block & setMask_) : (block % sets_));
    }

    using Probe = simd::Active;

    /**
     * Sentinel tags.  Real tags are CTE block numbers (PPN divided by
     * pages-per-block), bounded far below 2^63 by the simulated DRAM
     * size, so neither sentinel can collide with a probe key.
     */
    static constexpr std::uint64_t invalidTag = ~std::uint64_t{0};
    static constexpr std::uint64_t padTag = invalidTag ^ 1;

    unsigned pagesPerBlock_;
    bool blockPow2_ = true;
    unsigned blockShift_ = 0;
    std::size_t sets_;
    bool setsPow2_ = true;
    std::uint64_t setMask_ = 0;
    unsigned assoc_;
    unsigned wstride_; //!< assoc_ padded to the vector width

    // Structure-of-arrays way metadata, sets_ x wstride_ flattened
    // (invalid ways hold invalidTag, padding ways padTag + all-ones
    // LRU so no probe or victim scan can pick them).
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint64_t> lru_;
    std::uint64_t lruClock_ = 0;
    Counter hits_, misses_;
};

} // namespace tmcc

#endif // TMCC_MC_CTE_CACHE_HH
