#include "mc/free_list.hh"

#include <tuple>

#include "common/log.hh"

namespace tmcc
{

// ---------------------------------------------------------------------
// Ml1FreeList
// ---------------------------------------------------------------------

void
Ml1FreeList::seed(DramFrame first, std::uint64_t count)
{
    frames_.reserve(frames_.size() + count);
    // Push in reverse so pops come out in ascending order.
    for (std::uint64_t i = count; i-- > 0;)
        frames_.push_back(first + i);
}

DramFrame
Ml1FreeList::pop()
{
    panicIf(frames_.empty(), "ML1 free list underflow");
    pops_.inc();
    const DramFrame f = frames_.back();
    frames_.pop_back();
    return f;
}

void
Ml1FreeList::push(DramFrame frame)
{
    pushes_.inc();
    frames_.push_back(frame);
}

void
Ml1FreeList::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".size", frames_.size());
    dump.set(prefix + ".pops", pops_.value());
    dump.set(prefix + ".pushes", pushes_.value());
}

// ---------------------------------------------------------------------
// Ml2FreeLists
// ---------------------------------------------------------------------

Ml2FreeLists::Ml2FreeLists(Ml1FreeList &ml1)
    : Ml2FreeLists(ml1, std::vector<SubChunkClass>(subChunkClasses.begin(),
                                                   subChunkClasses.end()))
{}

Ml2FreeLists::Ml2FreeLists(Ml1FreeList &ml1,
                           std::vector<SubChunkClass> classes)
    : ml1_(ml1), classes_(std::move(classes))
{
    fatalIf(classes_.empty(), "ML2 needs at least one sub-chunk class");
    for (const SubChunkClass &c : classes_)
        fatalIf(c.subChunksN < 1 || c.subChunksN > 64,
                "sub-chunk class N=" + std::to_string(c.subChunksN) +
                    " exceeds the 64-bit slot mask");
    freeSlots_.resize(classes_.size());
}

unsigned
Ml2FreeLists::classFor(std::size_t bytes)
{
    for (unsigned c = 0; c < subChunkClasses.size(); ++c)
        if (bytes <= subChunkClasses[c].bytes)
            return c;
    return static_cast<unsigned>(subChunkClasses.size());
}

bool
Ml2FreeLists::alloc(unsigned cls, SubChunk &out)
{
    panicIf(cls >= classes_.size(), "bad sub-chunk class");
    ClassList &list = freeSlots_[cls];

    if (list.live == 0) {
        // Grow ML2: take M chunks from ML1 and carve a super-chunk.
        list.slots.clear(); // only tombstones remain, if anything
        const SubChunkClass &c = classes_[cls];
        if (ml1_.size() < c.chunksM)
            return false;
        SuperChunk sc;
        sc.sizeClass = cls;
        for (unsigned i = 0; i < c.chunksM; ++i)
            sc.frames.push_back(ml1_.pop());
        heldChunks_ += c.chunksM;
        const std::uint64_t id = nextSuperId_++;
        superChunks_.emplace(id, std::move(sc));
        superChunksCreated_.inc();
        // Newly carved slots go on top of the list (§IV-B).
        for (unsigned slot = c.subChunksN; slot-- > 0;)
            list.slots.emplace_back(id, slot);
        list.live += c.subChunksN;
    }

    // Pop the top live entry, discarding tombstones of returned
    // super-chunks on the way (ids are never reused).
    std::uint64_t id;
    unsigned slot;
    std::unordered_map<std::uint64_t, SuperChunk>::iterator sc_it;
    do {
        std::tie(id, slot) = list.slots.back();
        list.slots.pop_back();
        sc_it = superChunks_.find(id);
    } while (sc_it == superChunks_.end());
    --list.live;
    SuperChunk &sc = sc_it->second;
    sc.usedMask |= 1ULL << slot;
    ++sc.used;

    const SubChunkClass &c = classes_[cls];
    out.superChunk = id;
    out.slot = slot;
    out.sizeClass = cls;
    // Sub-chunk `slot` occupies bytes [slot*size, (slot+1)*size) of the
    // concatenated M chunks.
    const std::uint64_t byte_off =
        static_cast<std::uint64_t>(slot) * c.bytes;
    const unsigned frame_idx = static_cast<unsigned>(byte_off / pageSize);
    out.dramAddr = (sc.frames[frame_idx] << pageShift) +
                   (byte_off & (pageSize - 1));
    liveBytes_ += c.bytes;
    allocs_.inc();
    return true;
}

void
Ml2FreeLists::free(const SubChunk &sub)
{
    frees_.inc();
    auto it = superChunks_.find(sub.superChunk);
    panicIf(it == superChunks_.end(), "free of unknown super-chunk");
    SuperChunk &sc = it->second;
    panicIf((sc.usedMask & (1ULL << sub.slot)) == 0,
            "double free of sub-chunk");
    sc.usedMask &= ~(1ULL << sub.slot);
    --sc.used;
    const SubChunkClass &c = classes_[sc.sizeClass];
    liveBytes_ -= c.bytes;

    if (sc.used == 0) {
        // Whole super-chunk free: return chunks to ML1 (§IV-B).  Its
        // N-1 slots still in the class list become tombstones that
        // alloc() discards lazily; eagerly erasing them here scanned
        // the whole list and went quadratic under churn.
        freeSlots_[sc.sizeClass].live -= c.subChunksN - 1;
        for (DramFrame f : sc.frames)
            ml1_.push(f);
        heldChunks_ -= c.chunksM;
        superChunks_.erase(it);
        superChunksReturned_.inc();
    } else {
        // Transitioning to having a free sub-chunk tracks at the top.
        ClassList &list = freeSlots_[sc.sizeClass];
        list.slots.emplace_back(sub.superChunk, sub.slot);
        ++list.live;
    }
}

std::uint64_t
Ml2FreeLists::freeSlotCount(unsigned cls) const
{
    panicIf(cls >= classes_.size(), "bad sub-chunk class");
    return freeSlots_[cls].live;
}

void
Ml2FreeLists::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".allocs", allocs_.value());
    dump.set(prefix + ".frees", frees_.value());
    dump.set(prefix + ".super_chunks", superChunks_.size());
    dump.set(prefix + ".super_chunks_created",
             superChunksCreated_.value());
    dump.set(prefix + ".super_chunks_returned",
             superChunksReturned_.value());
    dump.set(prefix + ".live_bytes", liveBytes_);
    dump.set(prefix + ".held_chunks", heldChunks_);
}

// ---------------------------------------------------------------------
// ChunkFreeList
// ---------------------------------------------------------------------

ChunkFreeList::ChunkFreeList(std::size_t chunk_bytes)
    : chunkBytes_(chunk_bytes)
{}

void
ChunkFreeList::seed(Addr base, std::uint64_t chunk_count)
{
    chunks_.reserve(chunks_.size() + chunk_count);
    for (std::uint64_t i = chunk_count; i-- > 0;)
        chunks_.push_back(base + i * chunkBytes_);
}

Addr
ChunkFreeList::pop()
{
    panicIf(chunks_.empty(), "chunk free list underflow");
    pops_.inc();
    const Addr a = chunks_.back();
    chunks_.pop_back();
    return a;
}

void
ChunkFreeList::push(Addr chunk_addr)
{
    pushes_.inc();
    chunks_.push_back(chunk_addr);
}

void
ChunkFreeList::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".size", chunks_.size());
    dump.set(prefix + ".pops", pops_.value());
    dump.set(prefix + ".pushes", pushes_.value());
}

} // namespace tmcc
