#include "mc/free_list.hh"

#include "common/log.hh"

namespace tmcc
{

// ---------------------------------------------------------------------
// Ml1FreeList
// ---------------------------------------------------------------------

void
Ml1FreeList::seed(DramFrame first, std::uint64_t count)
{
    frames_.reserve(frames_.size() + count);
    // Push in reverse so pops come out in ascending order.
    for (std::uint64_t i = count; i-- > 0;)
        frames_.push_back(first + i);
}

DramFrame
Ml1FreeList::pop()
{
    panicIf(frames_.empty(), "ML1 free list underflow");
    pops_.inc();
    const DramFrame f = frames_.back();
    frames_.pop_back();
    return f;
}

void
Ml1FreeList::push(DramFrame frame)
{
    pushes_.inc();
    frames_.push_back(frame);
}

void
Ml1FreeList::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".size", frames_.size());
    dump.set(prefix + ".pops", pops_.value());
    dump.set(prefix + ".pushes", pushes_.value());
}

// ---------------------------------------------------------------------
// Ml2FreeLists
// ---------------------------------------------------------------------

Ml2FreeLists::Ml2FreeLists(Ml1FreeList &ml1) : ml1_(ml1) {}

unsigned
Ml2FreeLists::classFor(std::size_t bytes)
{
    for (unsigned c = 0; c < subChunkClasses.size(); ++c)
        if (bytes <= subChunkClasses[c].bytes)
            return c;
    return static_cast<unsigned>(subChunkClasses.size());
}

bool
Ml2FreeLists::alloc(unsigned cls, SubChunk &out)
{
    panicIf(cls >= subChunkClasses.size(), "bad sub-chunk class");
    auto &slots = freeSlots_[cls];

    if (slots.empty()) {
        // Grow ML2: take M chunks from ML1 and carve a super-chunk.
        const SubChunkClass &c = subChunkClasses[cls];
        if (ml1_.size() < c.chunksM)
            return false;
        SuperChunk sc;
        sc.sizeClass = cls;
        for (unsigned i = 0; i < c.chunksM; ++i)
            sc.frames.push_back(ml1_.pop());
        heldChunks_ += c.chunksM;
        const std::uint64_t id = nextSuperId_++;
        superChunks_.emplace(id, std::move(sc));
        superChunksCreated_.inc();
        // Newly carved slots go on top of the list (§IV-B).
        for (unsigned slot = c.subChunksN; slot-- > 0;)
            slots.emplace_back(id, slot);
    }

    const auto [id, slot] = slots.back();
    slots.pop_back();
    SuperChunk &sc = superChunks_.at(id);
    sc.usedMask |= 1u << slot;
    ++sc.used;

    const SubChunkClass &c = subChunkClasses[cls];
    out.superChunk = id;
    out.slot = slot;
    out.sizeClass = cls;
    // Sub-chunk `slot` occupies bytes [slot*size, (slot+1)*size) of the
    // concatenated M chunks.
    const std::uint64_t byte_off =
        static_cast<std::uint64_t>(slot) * c.bytes;
    const unsigned frame_idx = static_cast<unsigned>(byte_off / pageSize);
    out.dramAddr = (sc.frames[frame_idx] << pageShift) +
                   (byte_off & (pageSize - 1));
    liveBytes_ += c.bytes;
    allocs_.inc();
    return true;
}

void
Ml2FreeLists::free(const SubChunk &sub)
{
    frees_.inc();
    auto it = superChunks_.find(sub.superChunk);
    panicIf(it == superChunks_.end(), "free of unknown super-chunk");
    SuperChunk &sc = it->second;
    panicIf((sc.usedMask & (1u << sub.slot)) == 0,
            "double free of sub-chunk");
    sc.usedMask &= ~(1u << sub.slot);
    --sc.used;
    const SubChunkClass &c = subChunkClasses[sc.sizeClass];
    liveBytes_ -= c.bytes;

    if (sc.used == 0) {
        // Whole super-chunk free: return chunks to ML1 (§IV-B) and drop
        // its remaining slots from the class list.
        auto &slots = freeSlots_[sc.sizeClass];
        std::erase_if(slots, [&](const auto &p) {
            return p.first == sub.superChunk;
        });
        for (DramFrame f : sc.frames)
            ml1_.push(f);
        heldChunks_ -= c.chunksM;
        superChunks_.erase(it);
        superChunksReturned_.inc();
    } else {
        // Transitioning to having a free sub-chunk tracks at the top.
        freeSlots_[sc.sizeClass].emplace_back(sub.superChunk, sub.slot);
    }
}

void
Ml2FreeLists::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".allocs", allocs_.value());
    dump.set(prefix + ".frees", frees_.value());
    dump.set(prefix + ".super_chunks", superChunks_.size());
    dump.set(prefix + ".super_chunks_created",
             superChunksCreated_.value());
    dump.set(prefix + ".super_chunks_returned",
             superChunksReturned_.value());
    dump.set(prefix + ".live_bytes", liveBytes_);
    dump.set(prefix + ".held_chunks", heldChunks_);
}

// ---------------------------------------------------------------------
// ChunkFreeList
// ---------------------------------------------------------------------

ChunkFreeList::ChunkFreeList(std::size_t chunk_bytes)
    : chunkBytes_(chunk_bytes)
{}

void
ChunkFreeList::seed(Addr base, std::uint64_t chunk_count)
{
    chunks_.reserve(chunks_.size() + chunk_count);
    for (std::uint64_t i = chunk_count; i-- > 0;)
        chunks_.push_back(base + i * chunkBytes_);
}

Addr
ChunkFreeList::pop()
{
    panicIf(chunks_.empty(), "chunk free list underflow");
    pops_.inc();
    const Addr a = chunks_.back();
    chunks_.pop_back();
    return a;
}

void
ChunkFreeList::push(Addr chunk_addr)
{
    pushes_.inc();
    chunks_.push_back(chunk_addr);
}

void
ChunkFreeList::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".size", chunks_.size());
    dump.set(prefix + ".pops", pops_.value());
    dump.set(prefix + ".pushes", pushes_.value());
}

} // namespace tmcc
