/**
 * @file
 * The memory-controller architecture interface: what the simulation
 * pipeline sees of "no compression" vs Compresso vs the OS-inspired
 * designs (barebone and TMCC).
 */

#ifndef TMCC_MC_MEM_CONTROLLER_HH
#define TMCC_MC_MEM_CONTROLLER_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram_system.hh"

namespace tmcc
{

/** One LLC-miss read reaching the MC. */
struct McReadRequest
{
    unsigned core = 0;
    Addr paddr = 0;
    Tick when = 0;
    bool fromWalker = false; //!< request originated from a page walk
    bool background = false; //!< prefetch (does not block the core)

    /** TMCC: truncated CTE piggybacked from a compressed PTB (§V-A3). */
    bool hasEmbeddedCte = false;
    std::uint64_t embeddedCte = 0;
};

/** What the MC returns to the LLC. */
struct McReadResponse
{
    Tick complete = 0;

    // Classification for Fig. 19 / Fig. 2 / Fig. 18.
    bool cteCacheHit = false;
    bool parallelAccess = false;    //!< embedded-CTE speculative fetch
    bool embeddedMismatch = false;  //!< speculation failed, re-accessed
    bool serializedNoCte = false;   //!< CTE fetched serially from DRAM
    bool hitMl2 = false;            //!< page was compressed (Deflate)

    /** Walker fills should be cached PTB-compressed in L2 (§V-A4). */
    bool fillCompressedPtb = false;

    /** The correct CTE piggybacked back toward L2 (§V-A3). */
    bool hasCorrectCte = false;
    std::uint64_t correctCte = 0;
};

/** Abstract MC architecture. */
class MemController : public Stated
{
  public:
    explicit MemController(DramSystem &dram) : dram_(dram) {}
    ~MemController() override = default;

    /** Service an LLC read miss. */
    virtual McReadResponse read(const McReadRequest &req) = 0;

    /**
     * Accept a dirty line leaving L3.  `line_compressed` is the on-chip
     * PTB-encoding bit (TMCC uses it to maintain the CTE bit vector).
     */
    virtual void writeback(Addr paddr, Tick when,
                           bool line_compressed) = 0;

    /** Settle background work (migrations, write drains). */
    virtual void drain(Tick when) { dram_.drainAll(when); }

    /**
     * Timing-free touch for functional fast-forward (interval
     * sampling): a demand block in page `ppn` missed the LLC while no
     * timing is simulated.  Architectures with translation/placement
     * state keep it warm here — CTE-cache residency, recency, ML2→ML1
     * migration — without DRAM timing, demand counters or stall
     * bookkeeping.  Default: stateless architectures need nothing.
     */
    virtual void functionalTouch(Ppn /*ppn*/, bool /*is_write*/,
                                 Tick /*now*/)
    {}

    /** Total DRAM bytes this architecture currently uses for data. */
    virtual std::uint64_t dramUsedBytes() const = 0;

    DramSystem &dram() { return dram_; }

  protected:
    DramSystem &dram_;
};

/** The trivial architecture: physical address == DRAM address. */
class NoCompressionMc : public MemController
{
  public:
    explicit NoCompressionMc(DramSystem &dram) : MemController(dram) {}

    McReadResponse
    read(const McReadRequest &req) override
    {
        McReadResponse resp;
        // Background (prefetch) fills ride idle DRAM slots; the
        // request-level model charges no contention for them.
        resp.complete = req.background
                            ? req.when
                            : dram_.read(req.paddr, req.when);
        reads_.inc();
        return resp;
    }

    void
    writeback(Addr paddr, Tick when, bool /*line_compressed*/) override
    {
        dram_.write(paddr, when);
        writebacks_.inc();
    }

    std::uint64_t
    dramUsedBytes() const override
    {
        return usedBytes_;
    }

    /** The driver reports how much physical memory the workload maps. */
    void setUsedBytes(std::uint64_t bytes) { usedBytes_ = bytes; }

    void
    dumpStats(StatDump &dump, const std::string &prefix) const override
    {
        dump.set(prefix + ".reads", reads_.value());
        dump.set(prefix + ".writebacks", writebacks_.value());
    }

  private:
    Counter reads_, writebacks_;
    std::uint64_t usedBytes_ = 0;
};

} // namespace tmcc

#endif // TMCC_MC_MEM_CONTROLLER_HH
