/**
 * @file
 * The hardware Free Lists of §IV-B / Fig. 3.
 *
 * - Ml1FreeList tracks free 4KB DRAM chunks (Fig. 3b).  Like the
 *   original design, pointers live inside the free chunks themselves so
 *   the structure costs no extra DRAM; the model tracks frame ids.
 *
 * - Ml2FreeLists keeps one list per sub-chunk size class (Fig. 3c).
 *   Equal-size sub-chunks are carved fragmentation-free out of
 *   super-chunks of M interlinked 4KB chunks split N ways, with (M, N)
 *   chosen so (4KB*M) mod N is minimal.  Allocation pops from the top;
 *   super-chunks whose sub-chunks all free return their chunks to ML1.
 *
 * - ChunkFreeList is the Compresso-style fine-grain (512B) chunk list.
 */

#ifndef TMCC_MC_FREE_LIST_HH
#define TMCC_MC_FREE_LIST_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace tmcc
{

/** ML1 free list: free 4KB DRAM frames (LIFO). */
class Ml1FreeList : public Stated
{
  public:
    /** Seed with frames [first, first+count). */
    void seed(DramFrame first, std::uint64_t count);

    bool empty() const { return frames_.empty(); }
    std::size_t size() const { return frames_.size(); }

    DramFrame pop();
    void push(DramFrame frame);

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

  private:
    std::vector<DramFrame> frames_;
    Counter pops_, pushes_;
};

/** Sub-chunk size classes used by ML2. */
struct SubChunkClass
{
    std::size_t bytes;   //!< sub-chunk size
    unsigned chunksM;    //!< chunks per super-chunk
    unsigned subChunksN; //!< sub-chunks per super-chunk
};

/** The classes: (4KB*M) mod N == 0 for every entry (fragment-free). */
constexpr std::array<SubChunkClass, 7> subChunkClasses = {{
    {256, 1, 16},
    {512, 1, 8},
    {768, 3, 16},
    {1024, 1, 4},
    {1536, 3, 8},
    {2048, 1, 2},
    {3072, 3, 4},
}};

/** Location of one allocated ML2 sub-chunk. */
struct SubChunk
{
    std::uint64_t superChunk = 0; //!< id
    unsigned slot = 0;
    unsigned sizeClass = 0;
    Addr dramAddr = 0; //!< byte address of the sub-chunk in DRAM
};

/** All ML2 free lists plus the super-chunk registry. */
class Ml2FreeLists : public Stated
{
  public:
    explicit Ml2FreeLists(Ml1FreeList &ml1);

    /** As above, with a custom class table (tests, future geometries).
     * Fatal if any class has subChunksN outside [1, 64]: slot
     * occupancy is tracked in a 64-bit mask per super-chunk. */
    Ml2FreeLists(Ml1FreeList &ml1, std::vector<SubChunkClass> classes);

    /** Smallest class that fits `bytes`; classes.size() if none. */
    static unsigned classFor(std::size_t bytes);

    /**
     * Allocate a sub-chunk of class `cls`, growing from ML1 if the
     * class list is empty.  Returns false if ML1 is also empty.
     */
    bool alloc(unsigned cls, SubChunk &out);

    /** Free a sub-chunk; empty super-chunks return chunks to ML1. */
    void free(const SubChunk &sc);

    /** Total bytes currently allocated to live sub-chunks. */
    std::uint64_t liveBytes() const { return liveBytes_; }

    /** Chunks (4KB) currently held by ML2 (live + free sub-chunks). */
    std::uint64_t heldChunks() const { return heldChunks_; }

    /** Live super-chunks currently registered. */
    std::size_t superChunkCount() const { return superChunks_.size(); }

    /** Free sub-chunks of class `cls` available for allocation.
     * (Counts live entries only; returned super-chunks leave dead
     * entries behind that allocation skips lazily.) */
    std::uint64_t freeSlotCount(unsigned cls) const;

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

  private:
    struct SuperChunk
    {
        unsigned sizeClass = 0;
        std::vector<DramFrame> frames; //!< M interlinked chunks
        std::uint64_t usedMask = 0;
        unsigned used = 0;
    };

    /**
     * One per-class LIFO of (superChunk, slot) free sub-chunks.
     * Returning an empty super-chunk to ML1 leaves its entries in
     * place as tombstones (its id is never reused); alloc discards
     * them as it pops.  `live` counts the non-tombstone entries, so
     * growth triggers exactly when no real free slot remains.  This
     * keeps super-chunk return O(1) instead of an O(list) erase —
     * tenant-exit storms made that scan quadratic — while preserving
     * the exact §IV-B LIFO pop order.
     */
    struct ClassList
    {
        std::vector<std::pair<std::uint64_t, unsigned>> slots;
        std::uint64_t live = 0;
    };

    Ml1FreeList &ml1_;
    std::vector<SubChunkClass> classes_;
    std::unordered_map<std::uint64_t, SuperChunk> superChunks_;
    std::uint64_t nextSuperId_ = 1;
    std::vector<ClassList> freeSlots_;
    std::uint64_t liveBytes_ = 0;
    std::uint64_t heldChunks_ = 0;

    Counter allocs_, frees_, superChunksCreated_, superChunksReturned_;
};

/** Compresso-style free list of 512B chunks. */
class ChunkFreeList : public Stated
{
  public:
    explicit ChunkFreeList(std::size_t chunk_bytes = 512);

    void seed(Addr base, std::uint64_t chunk_count);

    bool empty() const { return chunks_.empty(); }
    std::size_t size() const { return chunks_.size(); }
    std::size_t chunkBytes() const { return chunkBytes_; }

    Addr pop();
    void push(Addr chunk_addr);

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

  private:
    std::size_t chunkBytes_;
    std::vector<Addr> chunks_;
    Counter pops_, pushes_;
};

} // namespace tmcc

#endif // TMCC_MC_FREE_LIST_HH
