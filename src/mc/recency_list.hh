/**
 * @file
 * The Recency List of §IV-B: a doubly linked list over the pages in ML1
 * whose head is the hottest and tail the coldest page.  ML1 updates it
 * for ~1% of randomly chosen accesses; eviction victims come from the
 * tail.  Incompressible pages are removed so they are not uselessly
 * recompressed, and re-enter with 1% probability after a writeback.
 *
 * The real structure stores PPN + two pointers per element; that DRAM
 * overhead ("Recency List uses 0.4% of DRAM", §V-A6) is reported by
 * overheadBytes().
 */

#ifndef TMCC_MC_RECENCY_LIST_HH
#define TMCC_MC_RECENCY_LIST_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace tmcc
{

/** Sampled-LRU list of ML1 pages. */
class RecencyList : public Stated
{
  public:
    explicit RecencyList(double sample_probability = 0.01,
                         std::uint64_t seed = 0x5eed);

    /** Add a page at the hot end (new arrivals in ML1). */
    void insertHot(Ppn ppn);

    /** Add a page at the cold end (deferred eviction victims). */
    void insertCold(Ppn ppn);

    /**
     * Observe an access to `ppn`; with the sampling probability the
     * page's element moves to the hot end.
     */
    void touch(Ppn ppn);

    /** Coldest page, or invalidAddr if empty. */
    Ppn coldest() const;

    /** Remove and return the coldest page. */
    Ppn popColdest();

    /** Remove a page (migrated to ML2 or marked incompressible). */
    void remove(Ppn ppn);

    bool contains(Ppn ppn) const { return index_.count(ppn) != 0; }
    std::size_t size() const { return list_.size(); }

    /**
     * Called on a writeback to an incompressible ML1 page: with 1%
     * probability re-admit it to the list (its compressibility may have
     * changed).  Returns true if re-admitted.
     */
    bool maybeReadmit(Ppn ppn);

    /** DRAM the list costs: PPN + 2 pointers per tracked page. */
    std::uint64_t
    overheadBytes() const
    {
        return list_.size() * 3 * 8;
    }

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

  private:
    double sampleP_;
    Rng rng_;
    std::list<Ppn> list_; //!< front = hottest, back = coldest
    std::unordered_map<Ppn, std::list<Ppn>::iterator> index_;
    Counter touches_, promotions_, evictions_, readmissions_;
};

} // namespace tmcc

#endif // TMCC_MC_RECENCY_LIST_HH
