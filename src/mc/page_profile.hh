/**
 * @file
 * Per-page compressibility profiles.
 *
 * The timing simulation tracks hundreds of thousands of pages; holding
 * 4KB of content per page is wasteful and unnecessary for timing, so
 * each data page carries a profile measured by running the *real*
 * compressors (src/compress) over representative generated content.
 * The profile stores everything the MC architectures need: packed sizes
 * under block-level compression and both Deflates, plus the token
 * statistics the ASIC timing model consumes.
 */

#ifndef TMCC_MC_PAGE_PROFILE_HH
#define TMCC_MC_PAGE_PROFILE_HH

#include <cstdint>

#include "common/types.hh"

namespace tmcc
{

/** Compressibility facts about one 4KB data page. */
struct PageProfile
{
    /** Best-of-4 block-level total (whole bytes per block), Compresso. */
    std::uint32_t blockBytes = pageSize;

    /** Memory-specialized Deflate size (bytes). */
    std::uint32_t deflateBytes = pageSize;

    /** RFC/gzip reference size (bytes). */
    std::uint32_t rfcBytes = pageSize;

    /** Timing-model inputs for Deflate. */
    std::uint32_t lzTokens = pageSize;
    bool huffmanUsed = true;

    /** Writeback volatility: probability a dirty eviction changes the
     * page's packed size enough to overflow its allocation. */
    double overflowP = 0.02;

    bool deflateIncompressible() const { return deflateBytes >= pageSize; }
    bool blockIncompressible() const { return blockBytes >= pageSize; }

    double
    deflateRatio() const
    {
        return static_cast<double>(pageSize) /
               static_cast<double>(deflateBytes);
    }

    double
    blockRatio() const
    {
        return static_cast<double>(pageSize) /
               static_cast<double>(blockBytes);
    }
};

/** Supplies the profile of any physical data page. */
class PageInfoProvider
{
  public:
    virtual ~PageInfoProvider() = default;
    virtual const PageProfile &profile(Ppn ppn) const = 0;
};

} // namespace tmcc

#endif // TMCC_MC_PAGE_PROFILE_HH
