#include "fault/fault_injector.hh"

#include <cmath>

namespace tmcc
{

FaultInjector::FaultInjector(const FaultConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{}

double
FaultInjector::anyFlipProbability(double rate, std::uint64_t bits) const
{
    if (rate <= 0.0 || bits == 0)
        return 0.0;
    if (rate >= 1.0)
        return 1.0;
    // 1 - (1-r)^n, computed in log space to stay stable for tiny rates.
    return -std::expm1(static_cast<double>(bits) * std::log1p(-rate));
}

bool
FaultInjector::ml2ImageCorrupted(std::uint64_t bits)
{
    const bool hit =
        rng_.chance(anyFlipProbability(cfg_.ml2BitFlipRate, bits));
    if (hit)
        ml2Injected_.inc();
    return hit;
}

bool
FaultInjector::ml2CorruptionTransient()
{
    return rng_.chance(cfg_.transientFraction);
}

std::uint64_t
FaultInjector::corruptCte(std::uint64_t v, unsigned width)
{
    if (width == 0 ||
        !rng_.chance(anyFlipProbability(cfg_.cteBitFlipRate, width)))
        return v;
    cteInjected_.inc();
    return v ^ (1ULL << rng_.below(width));
}

void
FaultInjector::corruptPtbImage(std::uint8_t *bytes, std::size_t size)
{
    const std::uint64_t bits = static_cast<std::uint64_t>(size) * 8;
    if (!rng_.chance(anyFlipProbability(cfg_.ptbBitFlipRate, bits)))
        return;
    ptbInjected_.inc();
    // Conditioned on "image corrupted", flip one bit, then keep going
    // with the same any-flip draw over the remaining bits so heavier
    // rates produce multi-bit damage.  Capped at `bits` flips so a
    // rate of 1.0 terminates.
    std::uint64_t flips = 0;
    do {
        const std::uint64_t bit = rng_.below(bits);
        bytes[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
        ptbBitsFlipped_.inc();
    } while (++flips < bits &&
             rng_.chance(anyFlipProbability(cfg_.ptbBitFlipRate,
                                            bits - 1)));
}

void
FaultInjector::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".ml2_injected", ml2Injected_.value());
    dump.set(prefix + ".cte_injected", cteInjected_.value());
    dump.set(prefix + ".ptb_injected", ptbInjected_.value());
    dump.set(prefix + ".ptb_bits_flipped", ptbBitsFlipped_.value());
}

} // namespace tmcc
