/**
 * @file
 * Deterministic fault injection for the corruption-safe decode paths.
 *
 * The simulator is timing-only: ML2 page images and CTE arrays are not
 * materialized, so bit flips there are modelled statistically — a seeded
 * Bernoulli draw over the image size decides whether a given read
 * observes corruption.  Compressed PTB images *are* real 64B byte
 * strings (PtbCodec::encode), so those get literal bit flips and must
 * survive PtbCodec::decode.
 *
 * All draws flow through one seeded Rng, making every injected fault
 * reproducible from the config seed.
 */

#ifndef TMCC_FAULT_FAULT_INJECTOR_HH
#define TMCC_FAULT_FAULT_INJECTOR_HH

#include <cstddef>
#include <cstdint>

#include "common/rng.hh"
#include "common/stats.hh"

namespace tmcc
{

/** Per-site bit-flip rates; all zero (the default) disables injection. */
struct FaultConfig
{
    /** Per-bit flip probability for each ML2 compressed-image read. */
    double ml2BitFlipRate = 0.0;

    /** Per-bit flip probability for each embedded-CTE field read. */
    double cteBitFlipRate = 0.0;

    /** Per-bit flip probability for each compressed-PTB image fetch. */
    double ptbBitFlipRate = 0.0;

    /**
     * Fraction of detected ML2 corruptions that a retried read clears
     * (transient bus/cell upsets vs. corrupted stored images).
     */
    double transientFraction = 0.5;

    std::uint64_t seed = 1;

    bool
    enabled() const
    {
        return ml2BitFlipRate > 0.0 || cteBitFlipRate > 0.0 ||
               ptbBitFlipRate > 0.0;
    }
};

/** Seeded source of injected faults; one per memory controller. */
class FaultInjector : public Stated
{
  public:
    explicit FaultInjector(const FaultConfig &cfg = FaultConfig{});

    bool enabled() const { return cfg_.enabled(); }
    const FaultConfig &config() const { return cfg_; }

    /**
     * Whether a read of an ML2 image of `bits` bits observes at least
     * one flipped bit: Bernoulli(1 - (1-rate)^bits).
     */
    bool ml2ImageCorrupted(std::uint64_t bits);

    /** Whether a detected ML2 corruption clears on the retry read. */
    bool ml2CorruptionTransient();

    /**
     * Return `v` with an injected single-bit flip in its low `width`
     * bits when the per-field draw fires (rates are small enough that
     * multi-bit flips within one field are negligible).
     */
    std::uint64_t corruptCte(std::uint64_t v, unsigned width);

    /** Flip bits of a PTB image in place at the configured rate. */
    void corruptPtbImage(std::uint8_t *bytes, std::size_t size);

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

  private:
    /** P(at least one of `bits` independent per-bit draws fires). */
    double anyFlipProbability(double rate, std::uint64_t bits) const;

    FaultConfig cfg_;
    Rng rng_;

    Counter ml2Injected_, cteInjected_, ptbInjected_, ptbBitsFlipped_;
};

} // namespace tmcc

#endif // TMCC_FAULT_FAULT_INJECTOR_HH
