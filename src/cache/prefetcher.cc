#include "cache/prefetcher.hh"

#include <algorithm>

namespace tmcc
{

NextLinePrefetcher::NextLinePrefetcher(unsigned check_window,
                                       double min_accuracy)
    : checkWindow_(check_window), minAccuracy_(min_accuracy)
{}

void
NextLinePrefetcher::observe(Addr addr, bool was_miss,
                            std::vector<Addr> &out)
{
    ++observeCount_;

    // Re-enable after a cool-down window of observations.
    if (!enabled_) {
        if (observeCount_ >= offUntilIssueCount_) {
            enabled_ = true;
            issuedAtCheck_ = issued_.value();
            usefulAtCheck_ = useful_.value();
        } else {
            return;
        }
    }

    if (!was_miss)
        return;
    out.push_back(blockAlign(addr) + blockSize);
    issued_.inc();

    // Periodic accuracy check (automatic turn-off, Table III).
    const std::uint64_t window_issued = issued_.value() - issuedAtCheck_;
    if (window_issued >= checkWindow_) {
        const std::uint64_t window_useful =
            useful_.value() - usefulAtCheck_;
        const double accuracy =
            static_cast<double>(window_useful) /
            static_cast<double>(window_issued);
        if (accuracy < minAccuracy_) {
            enabled_ = false;
            offUntilIssueCount_ = observeCount_ + 4 * checkWindow_;
        }
        issuedAtCheck_ = issued_.value();
        usefulAtCheck_ = useful_.value();
    }
}

StridePrefetcher::StridePrefetcher(unsigned degree, unsigned streams)
    : degree_(degree), maxStreams_(streams)
{}

void
StridePrefetcher::observe(Addr addr, bool was_miss,
                          std::vector<Addr> &out)
{
    const Addr page = pageNumber(addr);
    const Addr block = blockAlign(addr);

    auto it = streams_.find(page);
    if (it == streams_.end()) {
        // Evict the least recently used stream if at capacity.
        if (streams_.size() >= maxStreams_) {
            auto lru = streams_.begin();
            for (auto s = streams_.begin(); s != streams_.end(); ++s)
                if (s->second.lastUse < lru->second.lastUse)
                    lru = s;
            streams_.erase(lru);
        }
        Stream s;
        s.lastAddr = block;
        s.lastUse = ++useClock_;
        streams_.emplace(page, s);
        return;
    }

    Stream &s = it->second;
    s.lastUse = ++useClock_;
    const std::int64_t stride = static_cast<std::int64_t>(block) -
                                static_cast<std::int64_t>(s.lastAddr);
    if (stride == 0)
        return;
    if (stride == s.stride) {
        s.confidence = std::min(s.confidence + 1, 4u);
    } else {
        s.stride = stride;
        s.confidence = 1;
    }
    s.lastAddr = block;

    // Issue only when the stream advances past the cached frontier
    // (a demand miss); hits mean the prefetcher is already ahead.
    if (s.confidence >= 2 && was_miss) {
        for (unsigned d = 1; d <= degree_; ++d) {
            const std::int64_t target =
                static_cast<std::int64_t>(block) +
                stride * static_cast<std::int64_t>(d);
            if (target < 0)
                break;
            out.push_back(static_cast<Addr>(target));
            issued_.inc();
        }
    }
}

} // namespace tmcc
