#include "cache/prefetcher.hh"

#include "common/log.hh"

namespace tmcc
{

NextLinePrefetcher::NextLinePrefetcher(unsigned check_window,
                                       double min_accuracy)
    : checkWindow_(check_window), minAccuracy_(min_accuracy)
{}

StridePrefetcher::StridePrefetcher(unsigned degree, unsigned streams)
    : degree_(degree),
      wstride_(simd::padWays(streams)),
      pages_(wstride_, padPage),
      lastAddr_(wstride_, invalidAddr),
      stride_(wstride_, 0),
      confidence_(wstride_, 0),
      lastUse_(wstride_, ~std::uint64_t{0})
{
    fatalIf(streams == 0 || streams > simd::maxWays,
            "stride prefetcher stream count must be in [1, " +
                std::to_string(simd::maxWays) + "]");
    for (unsigned i = 0; i < streams; ++i) {
        pages_[i] = invalidAddr;
        lastUse_[i] = 0;
    }
}

} // namespace tmcc
