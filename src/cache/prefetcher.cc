#include "cache/prefetcher.hh"

namespace tmcc
{

NextLinePrefetcher::NextLinePrefetcher(unsigned check_window,
                                       double min_accuracy)
    : checkWindow_(check_window), minAccuracy_(min_accuracy)
{}

StridePrefetcher::StridePrefetcher(unsigned degree, unsigned streams)
    : degree_(degree),
      pages_(streams, invalidAddr),
      lastAddr_(streams, invalidAddr),
      stride_(streams, 0),
      confidence_(streams, 0),
      lastUse_(streams, 0)
{}

} // namespace tmcc
