/**
 * @file
 * The two prefetchers of Table III: next-line with automatic turn-off
 * (L1, L2) and a stride prefetcher (L1 degree 2, L2 degree 4).
 *
 * Prefetchers observe demand accesses and propose block addresses to
 * fill.  Usefulness tracking drives the next-line auto turn-off: when
 * too few prefetched lines are referenced before eviction, the
 * prefetcher disables itself for a window.
 */

#ifndef TMCC_CACHE_PREFETCHER_HH
#define TMCC_CACHE_PREFETCHER_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace tmcc
{

/** Interface: observe accesses, propose prefetch addresses. */
class Prefetcher : public Stated
{
  public:
    ~Prefetcher() override = default;

    /**
     * Observe a demand access (hit or miss) and append proposed block
     * addresses to `out`.
     */
    virtual void observe(Addr addr, bool was_miss,
                         std::vector<Addr> &out) = 0;

    /** Credit: a previously prefetched block was actually used. */
    void
    markUseful()
    {
        useful_.inc();
    }

    std::uint64_t issued() const { return issued_.value(); }
    std::uint64_t useful() const { return useful_.value(); }

    void
    dumpStats(StatDump &dump, const std::string &prefix) const override
    {
        dump.set(prefix + ".issued", issued_.value());
        dump.set(prefix + ".useful", useful_.value());
    }

  protected:
    Counter issued_, useful_;
};

/** Next-line prefetcher with automatic turn-off. */
class NextLinePrefetcher : public Prefetcher
{
  public:
    /**
     * @param check_window accuracy is evaluated every this many issues
     * @param min_accuracy below this the prefetcher turns off
     */
    NextLinePrefetcher(unsigned check_window = 256,
                       double min_accuracy = 0.20);

    void observe(Addr addr, bool was_miss,
                 std::vector<Addr> &out) override;

    bool enabled() const { return enabled_; }

  private:
    unsigned checkWindow_;
    double minAccuracy_;
    bool enabled_ = true;
    std::uint64_t issuedAtCheck_ = 0;
    std::uint64_t usefulAtCheck_ = 0;
    std::uint64_t offUntilIssueCount_ = 0;
    std::uint64_t observeCount_ = 0;
};

/** Per-stream stride prefetcher keyed by 4KB region. */
class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(unsigned degree, unsigned streams = 16);

    void observe(Addr addr, bool was_miss,
                 std::vector<Addr> &out) override;

  private:
    struct Stream
    {
        Addr lastAddr = invalidAddr;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned degree_;
    unsigned maxStreams_;
    std::uint64_t useClock_ = 0;
    std::unordered_map<Addr, Stream> streams_; //!< keyed by page number
};

} // namespace tmcc

#endif // TMCC_CACHE_PREFETCHER_HH
