/**
 * @file
 * The two prefetchers of Table III: next-line with automatic turn-off
 * (L1, L2) and a stride prefetcher (L1 degree 2, L2 degree 4).
 *
 * Prefetchers observe demand accesses and propose block addresses to
 * fill.  Usefulness tracking drives the next-line auto turn-off: when
 * too few prefetched lines are referenced before eviction, the
 * prefetcher disables itself for a window.
 *
 * The observe paths are `observeT<Sink>` member templates defined
 * inline so the measured-loop kernels can append into fixed-capacity
 * sinks without virtual dispatch; the virtual observe() is a thin
 * wrapper kept for generic callers.  The stride streams live in flat
 * arrays (no hashing) — with unique lastUse stamps the LRU victim is
 * unique, so eviction is bit-identical to the old map-based scan.
 */

#ifndef TMCC_CACHE_PREFETCHER_HH
#define TMCC_CACHE_PREFETCHER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/simd.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace tmcc
{

/** Interface: observe accesses, propose prefetch addresses. */
class Prefetcher : public Stated
{
  public:
    ~Prefetcher() override = default;

    /**
     * Observe a demand access (hit or miss) and append proposed block
     * addresses to `out`.
     */
    virtual void observe(Addr addr, bool was_miss,
                         std::vector<Addr> &out) = 0;

    /** Credit: a previously prefetched block was actually used. */
    void
    markUseful()
    {
        useful_.inc();
    }

    std::uint64_t issued() const { return issued_.value(); }
    std::uint64_t useful() const { return useful_.value(); }

    void
    dumpStats(StatDump &dump, const std::string &prefix) const override
    {
        dump.set(prefix + ".issued", issued_.value());
        dump.set(prefix + ".useful", useful_.value());
    }

  protected:
    Counter issued_, useful_;
};

/** Next-line prefetcher with automatic turn-off. */
class NextLinePrefetcher : public Prefetcher
{
  public:
    /**
     * @param check_window accuracy is evaluated every this many issues
     * @param min_accuracy below this the prefetcher turns off
     */
    NextLinePrefetcher(unsigned check_window = 256,
                       double min_accuracy = 0.20);

    template <class Sink>
    void
    observeT(Addr addr, bool was_miss, Sink &out)
    {
        ++observeCount_;

        // Re-enable after a cool-down window of observations.
        if (!enabled_) {
            if (observeCount_ >= offUntilIssueCount_) {
                enabled_ = true;
                issuedAtCheck_ = issued_.value();
                usefulAtCheck_ = useful_.value();
            } else {
                return;
            }
        }

        if (!was_miss)
            return;
        out.push_back(blockAlign(addr) + blockSize);
        issued_.inc();

        // Periodic accuracy check (automatic turn-off, Table III).
        const std::uint64_t window_issued =
            issued_.value() - issuedAtCheck_;
        if (window_issued >= checkWindow_) {
            const std::uint64_t window_useful =
                useful_.value() - usefulAtCheck_;
            const double accuracy =
                static_cast<double>(window_useful) /
                static_cast<double>(window_issued);
            if (accuracy < minAccuracy_) {
                enabled_ = false;
                offUntilIssueCount_ = observeCount_ + 4 * checkWindow_;
            }
            issuedAtCheck_ = issued_.value();
            usefulAtCheck_ = useful_.value();
        }
    }

    void
    observe(Addr addr, bool was_miss, std::vector<Addr> &out) override
    {
        observeT(addr, was_miss, out);
    }

    bool enabled() const { return enabled_; }

  private:
    unsigned checkWindow_;
    double minAccuracy_;
    bool enabled_ = true;
    std::uint64_t issuedAtCheck_ = 0;
    std::uint64_t usefulAtCheck_ = 0;
    std::uint64_t offUntilIssueCount_ = 0;
    std::uint64_t observeCount_ = 0;
};

/** Per-stream stride prefetcher keyed by 4KB region. */
class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(unsigned degree, unsigned streams = 16);

    template <class Sink>
    void
    observeT(Addr addr, bool was_miss, Sink &out)
    {
        const Addr page = pageNumber(addr);
        const Addr block = blockAlign(addr);

        // One fused vector pass: find the stream for `page` and the
        // first free slot in case it is missing (only consulted on a
        // miss, so fusing matches the old early-exit scan exactly).
        std::uint64_t match, inv;
        Probe::eqMask2(pages_.data(), wstride_, page, invalidAddr,
                       match, inv);
        const std::size_t hit =
            match ? simd::firstWay(match) : npos;
        const std::size_t free_slot =
            inv ? simd::firstWay(inv) : npos;

        if (hit == npos) {
            // Evict the least recently used stream if at capacity.
            const std::size_t slot =
                free_slot != npos ? free_slot : lruSlot();
            pages_[slot] = page;
            lastAddr_[slot] = block;
            stride_[slot] = 0;
            confidence_[slot] = 0;
            lastUse_[slot] = ++useClock_;
            return;
        }

        const std::size_t s = hit;
        lastUse_[s] = ++useClock_;
        const std::int64_t stride =
            static_cast<std::int64_t>(block) -
            static_cast<std::int64_t>(lastAddr_[s]);
        if (stride == 0)
            return;
        if (stride == stride_[s]) {
            confidence_[s] = std::min(confidence_[s] + 1, 4u);
        } else {
            stride_[s] = stride;
            confidence_[s] = 1;
        }
        lastAddr_[s] = block;

        // Issue only when the stream advances past the cached frontier
        // (a demand miss); hits mean the prefetcher is already ahead.
        if (confidence_[s] >= 2 && was_miss) {
            for (unsigned d = 1; d <= degree_; ++d) {
                const std::int64_t target =
                    static_cast<std::int64_t>(block) +
                    stride * static_cast<std::int64_t>(d);
                if (target < 0)
                    break;
                out.push_back(static_cast<Addr>(target));
                issued_.inc();
            }
        }
    }

    void
    observe(Addr addr, bool was_miss, std::vector<Addr> &out) override
    {
        observeT(addr, was_miss, out);
    }

  private:
    static constexpr std::size_t npos = ~static_cast<std::size_t>(0);

    /** Occupied slot with the smallest lastUse (stamps are unique). */
    std::size_t
    lruSlot() const
    {
        return Probe::minIndex(lastUse_.data(), wstride_);
    }

    using Probe = simd::Active;

    /** Padding-slot page key: matches no page, never looks free. */
    static constexpr Addr padPage = invalidAddr ^ 1;

    unsigned degree_;
    unsigned wstride_; //!< stream count padded to the vector width
    std::uint64_t useClock_ = 0;

    // Structure-of-arrays streams, padded to the vector width (padding
    // slots hold padPage / all-ones lastUse and are never chosen);
    // pages_ == invalidAddr marks a free slot (page numbers are small,
    // never all-ones).
    std::vector<Addr> pages_;
    std::vector<Addr> lastAddr_;
    std::vector<std::int64_t> stride_;
    std::vector<unsigned> confidence_;
    std::vector<std::uint64_t> lastUse_;
};

} // namespace tmcc

#endif // TMCC_CACHE_PREFETCHER_HH
