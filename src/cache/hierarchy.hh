/**
 * @file
 * The three-level cache hierarchy of Table III: per-core 64KB L1 and
 * 256KB inclusive L2, shared 8MB exclusive L3, with next-line and stride
 * prefetchers at L1/L2.
 *
 * Functional model: the pipeline layers timing on top of the returned
 * hit level.  The hierarchy tracks the per-line compressed bit so the
 * TMCC architecture can keep PTBs compressed on chip (§V-A4), and
 * reports every line that leaves L3 toward memory so the MC architecture
 * can recompress / update metadata.
 *
 * Page-walker accesses enter at L2 (walkers do not allocate into L1;
 * §V-A3/4), and the caller may request that walker fills be stored
 * compressed ("when receiving an uncompressed block from L3, if the
 * requester is the page walker, L2 compresses the block before caching
 * it").
 *
 * The access/fill/prefetch paths are member templates parameterized on
 * the outcome/sink type: the public vector-based API (used by the
 * scalar oracle kernel) instantiates them with AccessOutcome, while the
 * batched kernel instantiates them with fixed-capacity SmallVec sinks
 * so the whole path inlines without allocation.  Both instantiations
 * execute the same statements in the same order, which is what makes
 * the two kernels bit-identical.
 */

#ifndef TMCC_CACHE_HIERARCHY_HH
#define TMCC_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/prefetcher.hh"
#include "common/flat_set.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace tmcc
{

/** Where an access was satisfied. */
enum class HitLevel
{
    L1,
    L2,
    L3,
    Memory,
};

/** Hierarchy geometry (Table III defaults). */
struct HierarchyConfig
{
    std::size_t l1Bytes = 64 * 1024;
    unsigned l1Assoc = 8;
    std::size_t l2Bytes = 256 * 1024;
    unsigned l2Assoc = 8;
    std::size_t l3Bytes = 8 * 1024 * 1024;
    unsigned l3Assoc = 16;
    bool prefetchers = true;
    unsigned strideDegreeL1 = 2;
    unsigned strideDegreeL2 = 4;
};

/**
 * Fixed-capacity inline vector for the batched kernel's outcome sinks:
 * no heap traffic on the hot path, and overflowing the static bound is
 * a simulator bug (the bounds are derived from the maximum writeback /
 * prefetch fan-out of one access).
 */
template <class T, std::size_t N>
class SmallVec
{
  public:
    void
    push_back(const T &v)
    {
        panicIf(count_ == N, "SmallVec overflow");
        items_[count_++] = v;
    }

    void clear() { count_ = 0; }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    const T *begin() const { return items_; }
    const T *end() const { return items_ + count_; }
    const T &operator[](std::size_t i) const { return items_[i]; }

  private:
    T items_[N];
    std::size_t count_ = 0;
};

/** Result of one access or fill. */
struct AccessOutcome
{
    HitLevel level = HitLevel::Memory;

    /** Compressed bit of the L2/L3 copy that satisfied the access. */
    bool compressedCopy = false;

    /** Dirty lines evicted from L3 that must be written to memory. */
    std::vector<CacheLine> memWritebacks;

    /** Prefetch proposals raised by this access (demand path only). */
    std::vector<Addr> prefetches;
};

/**
 * AccessOutcome shape with inline storage for the batched kernel.  One
 * access spills at most one L3 victim per fill plus the prefetch-fill
 * spills (bounded well under 4); prefetch proposals are bounded by
 * next-line (1) + stride degree 2 at L1 and next-line (1) + stride
 * degree 4 at L2 = 8.
 */
struct SmallOutcome
{
    HitLevel level = HitLevel::Memory;
    bool compressedCopy = false;
    SmallVec<CacheLine, 4> memWritebacks;
    SmallVec<Addr, 8> prefetches;
};

/** Writeback sink that drops the lines (functional fast-forward). */
struct DiscardWb
{
    void push_back(const CacheLine &) {}
};

/** The full multi-core cache hierarchy. */
class Hierarchy : public Stated
{
  public:
    Hierarchy(const HierarchyConfig &cfg, unsigned cores);

    /**
     * Demand access from `core`.  If the outcome level is Memory, the
     * caller must obtain the block from the MC and then call fill().
     * `from_walker` starts the access at L2.
     */
    AccessOutcome access(unsigned core, Addr addr, bool is_write,
                         bool from_walker = false);

    /**
     * Install a block fetched from memory.  `compressed` is the on-chip
     * encoding flag (PTB-compressed lines under TMCC).  Exclusive L3 is
     * bypassed on fills.
     */
    AccessOutcome fill(unsigned core, Addr addr, bool is_write,
                       bool compressed, bool from_walker = false);

    /**
     * Handle one prefetch proposal: looks up L2/L3 and fills L1/L2.
     * Returns true when the block must be fetched from memory (the
     * caller then issues a background MC read and calls fill()).
     * Writebacks caused by prefetch fills land in `out`.
     */
    bool prefetchLookup(unsigned core, Addr addr,
                        std::vector<CacheLine> &out);

    /** access() over any outcome shape (see file header). */
    template <class Out>
    Out
    accessT(unsigned core, Addr addr, bool is_write, bool from_walker)
    {
        Out out;
        const Addr block = blockAlign(addr);

        if (from_walker)
            walkerAccesses_.inc();
        else
            demandAccesses_.inc();

        if (consumePrefetched(block)) {
            nextLineL1_[core]->markUseful();
            nextLineL2_[core]->markUseful();
        }

        // L1 (skipped by the page walker).
        if (!from_walker) {
            const bool l1_hit = l1_[core]->access(block, is_write);
            if (cfg_.prefetchers) {
                nextLineL1_[core]->observeT(block, !l1_hit,
                                            out.prefetches);
                strideL1_[core]->observeT(block, !l1_hit,
                                          out.prefetches);
            }
            if (l1_hit) {
                out.level = HitLevel::L1;
                return out;
            }
        }

        // L2.
        const bool l2_hit =
            l2_[core]->access(block, is_write && from_walker);
        if (cfg_.prefetchers && !from_walker) {
            nextLineL2_[core]->observeT(block, !l2_hit, out.prefetches);
            strideL2_[core]->observeT(block, !l2_hit, out.prefetches);
        }
        if (l2_hit) {
            out.level = HitLevel::L2;
            out.compressedCopy = l2_[core]->isCompressed(block);
            if (!from_walker)
                fillL1(core, CacheLine{block, is_write, false});
            return out;
        }

        // L3 (exclusive: hits are extracted and promoted to L2/L1).
        if (auto line = l3_->extract(block); line.has_value()) {
            out.level = HitLevel::L3;
            out.compressedCopy = line->compressed;
            CacheLine promoted = *line;
            promoted.dirty |= is_write && from_walker;
            fillL2T(core, promoted, out.memWritebacks);
            if (!from_walker)
                fillL1(core, CacheLine{block, is_write, false});
            return out;
        }

        l3Misses_.inc();
        out.level = HitLevel::Memory;
        return out;
    }

    /** fill() over any outcome shape. */
    template <class Out>
    Out
    fillT(unsigned core, Addr addr, bool is_write, bool compressed,
          bool from_walker)
    {
        Out out;
        out.level = HitLevel::Memory;
        const Addr block = blockAlign(addr);

        CacheLine line{block, is_write && from_walker, compressed};
        fillL2T(core, line, out.memWritebacks);
        if (!from_walker)
            fillL1(core, CacheLine{block, is_write, false});
        return out;
    }

    /** prefetchLookup() over any writeback sink. */
    template <class Sink>
    bool
    prefetchLookupT(unsigned core, Addr addr, Sink &out)
    {
        const Addr block = blockAlign(addr);
        if (l1_[core]->probe(block) || l2_[core]->probe(block))
            return false;

        notePrefetched(block);
        if (auto line = l3_->extract(block); line.has_value()) {
            fillL2T(core, *line, out);
            return false;
        }
        return true; // caller fetches from memory, then calls fill()
    }

    /**
     * Timing-free demand probe + fill for functional fast-forward
     * (interval sampling): updates residency/LRU/dirty state exactly
     * like a demand access but skips the prefetchers and drops any
     * writeback (no MC timing to bill it to).  Returns true when the
     * block had to come from memory, so the caller can functionally
     * touch the MC's translation/placement state.
     */
    bool
    functionalAccess(unsigned core, Addr addr, bool is_write,
                     bool from_walker = false)
    {
        // SMARTS-style functional warming, mirroring accessT's state
        // updates level by level (L1 probe + prefetcher observation,
        // L2 find-or-fill, L3 promotion/spill with back-invalidation
        // and snooping, L1 fill, then same-page prefetch fills) minus
        // timing and writeback traffic.  Warming L1 keeps the L2
        // access stream faithful — L1 hits must not refresh L2 LRU;
        // warming prefetch fills keeps the L2/L3 replacement pressure
        // and dirty-line density honest.  Walker fetches enter at L2,
        // like accessT: keeping PTB/PTE lines resident across
        // fast-forward is what keeps in-window page-walk latencies
        // honest.  Returns true when the block (or one of its
        // prefetch fills) had to come from memory, so the caller can
        // functionally touch the MC state of the page.
        const Addr block = blockAlign(addr);
        if (from_walker)
            walkerAccesses_.inc();
        else
            demandAccesses_.inc();

        if (consumePrefetched(block)) {
            nextLineL1_[core]->markUseful();
            nextLineL2_[core]->markUseful();
        }

        SmallVec<Addr, 8> proposals;
        bool l1_hit = false;
        if (!from_walker) {
            // Probe and fill L1 in one pass (accessT probes first and
            // fills after the L2/L3 work; fusing reorders only the
            // fill, which no later step of this access observes).
            CacheLine l1_evicted;
            l1_hit = l1_[core]->touch(CacheLine{block, is_write, false},
                                      l1_evicted);
            if (l1_evicted.addr != invalidAddr && l1_evicted.dirty)
                l2_[core]->markDirty(l1_evicted.addr);
            if (cfg_.prefetchers) {
                nextLineL1_[core]->observeT(block, !l1_hit, proposals);
                strideL1_[core]->observeT(block, !l1_hit, proposals);
            }
        }

        bool mem_miss = false;
        if (from_walker || !l1_hit) {
            CacheLine l2_evicted;
            // Demand L2 copies gain dirtiness only via L1 victim
            // fold-down (accessT dirties L2 only for walker writes).
            const bool l2_hit = l2_[core]->touch(
                CacheLine{block, is_write && from_walker, false},
                l2_evicted);
            if (cfg_.prefetchers && !from_walker) {
                nextLineL2_[core]->observeT(block, !l2_hit, proposals);
                strideL2_[core]->observeT(block, !l2_hit, proposals);
            }
            if (!l2_hit) {
                // The L2 fill above doubles as the promotion of any
                // L3 copy; exclusivity means the L3 copy is
                // extracted.  Do this before spilling the L2 victim,
                // which could land in (and evict from) the very same
                // L3 set.
                const auto l3_line = l3_->extract(block);
                if (l3_line) {
                    // The promoted copy keeps its bits.
                    if (l3_line->dirty)
                        l2_[core]->markDirty(block);
                    if (l3_line->compressed)
                        l2_[core]->setCompressed(block, true);
                } else {
                    l3Misses_.inc();
                    mem_miss = true;
                }
                spillL2VictimF(core, l2_evicted);
            }
        }

        // Prefetch proposals: same-page background fills, mirroring
        // the detailed path's page filter and fill order.
        for (const Addr pf : proposals) {
            if (pageNumber(pf) != pageNumber(addr))
                continue;
            if (functionalPrefetch(core, pf))
                mem_miss = true;
        }
        return mem_miss;
    }

    /** Probe the compressed bit of the L2 copy (walker fast path). */
    bool l2CompressedCopy(unsigned core, Addr addr) const;

    /** Mark the resident L2 copy dirty (lazy PTB CTE update, §V-A3). */
    void touchL2Dirty(unsigned core, Addr addr);

    Cache &l1(unsigned core) { return *l1_[core]; }
    Cache &l2(unsigned core) { return *l2_[core]; }
    Cache &l3() { return *l3_; }
    const Cache &l3() const { return *l3_; }
    unsigned cores() const { return static_cast<unsigned>(l1_.size()); }

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

  private:
    /**
     * Functional-warming half of fillL2T's victim handling: L1
     * back-invalidation with dirty fold-down, the snoop filter, and
     * the spill into the exclusive L3.  L3 victims leave silently —
     * functional warming does not model writeback traffic.
     */
    void
    spillL2VictimF(unsigned core, CacheLine &victim)
    {
        if (victim.addr == invalidAddr)
            return;
        const auto l1_copy = l1_[core]->extract(victim.addr);
        if (l1_copy && l1_copy->dirty)
            victim.dirty = true;
        for (unsigned other = 0; other < l2_.size(); ++other) {
            if (other == core || !l2_[other]->probe(victim.addr))
                continue;
            if (victim.dirty)
                l2_[other]->markDirty(victim.addr);
            return;
        }
        CacheLine spill_evicted;
        l3_->touch(victim, spill_evicted);
    }

    /**
     * Functional-warming mirror of prefetchLookupT plus the detailed
     * path's memory-fill: already-resident proposals are dropped, L3
     * hits promote into L2 only, memory fetches fill L2 and L1.
     * Returns true when the block had to come from memory.
     */
    bool
    functionalPrefetch(unsigned core, Addr addr)
    {
        const Addr block = blockAlign(addr);
        if (l1_[core]->probe(block) || l2_[core]->probe(block))
            return false;
        notePrefetched(block);
        const auto l3_line = l3_->extract(block);
        CacheLine l2_evicted;
        l2_[core]->touch(l3_line ? *l3_line
                                 : CacheLine{block, false, false},
                         l2_evicted);
        spillL2VictimF(core, l2_evicted);
        if (l3_line)
            return false;
        fillL1(core, CacheLine{block, false, false});
        return true;
    }

    /** Insert into L1, folding the victim's dirtiness into L2. */
    void
    fillL1(unsigned core, const CacheLine &line)
    {
        // Software-visible L1 copies are always decompressed (§V-A4).
        CacheLine l1_line = line;
        l1_line.compressed = false;
        const auto victim = l1_[core]->insert(l1_line);
        if (victim && victim->dirty) {
            // L2 is inclusive of L1: the victim's data lives in L2;
            // fold the dirtiness down.
            l2_[core]->markDirty(victim->addr);
        }
    }

    /** Insert into L2; victims spill into L3; L3 victims to memory. */
    template <class Sink>
    void
    fillL2T(unsigned core, const CacheLine &line, Sink &writebacks)
    {
        auto victim = l2_[core]->insert(line);
        if (!victim)
            return;

        // Inclusive L2: back-invalidate the L1 copy, folding its
        // dirtiness into the departing line.
        const auto l1_copy = l1_[core]->extract(victim->addr);
        if (l1_copy && l1_copy->dirty)
            victim->dirty = true;

        // Snoop filter: if another core's L2 still holds the line, the
        // exclusive L3 must not take a second copy; fold the dirtiness
        // into the surviving copy instead.
        for (unsigned other = 0; other < l2_.size(); ++other) {
            if (other == core)
                continue;
            if (l2_[other]->probe(victim->addr)) {
                if (victim->dirty)
                    l2_[other]->markDirty(victim->addr);
                return;
            }
        }

        // Exclusive L3 receives L2 victims.
        const auto l3_victim = l3_->insert(*victim);
        if (l3_victim && l3_victim->dirty)
            writebacks.push_back(*l3_victim);
    }

    void notePrefetched(Addr addr);
    bool consumePrefetched(Addr addr);

    HierarchyConfig cfg_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> l3_;

    std::vector<std::unique_ptr<NextLinePrefetcher>> nextLineL1_;
    std::vector<std::unique_ptr<StridePrefetcher>> strideL1_;
    std::vector<std::unique_ptr<NextLinePrefetcher>> nextLineL2_;
    std::vector<std::unique_ptr<StridePrefetcher>> strideL2_;

    /** Outstanding prefetched blocks awaiting first demand use. */
    // Block-aligned sentinel keys only; invalidAddr is never
    // block-aligned, so it is safe as the empty-slot marker.
    FlatHashSet<Addr, invalidAddr> prefetched_;

    Counter demandAccesses_, walkerAccesses_, l3Misses_;
};

} // namespace tmcc

#endif // TMCC_CACHE_HIERARCHY_HH
