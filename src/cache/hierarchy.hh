/**
 * @file
 * The three-level cache hierarchy of Table III: per-core 64KB L1 and
 * 256KB inclusive L2, shared 8MB exclusive L3, with next-line and stride
 * prefetchers at L1/L2.
 *
 * Functional model: the pipeline layers timing on top of the returned
 * hit level.  The hierarchy tracks the per-line compressed bit so the
 * TMCC architecture can keep PTBs compressed on chip (§V-A4), and
 * reports every line that leaves L3 toward memory so the MC architecture
 * can recompress / update metadata.
 *
 * Page-walker accesses enter at L2 (walkers do not allocate into L1;
 * §V-A3/4), and the caller may request that walker fills be stored
 * compressed ("when receiving an uncompressed block from L3, if the
 * requester is the page walker, L2 compresses the block before caching
 * it").
 */

#ifndef TMCC_CACHE_HIERARCHY_HH
#define TMCC_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/prefetcher.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace tmcc
{

/** Where an access was satisfied. */
enum class HitLevel
{
    L1,
    L2,
    L3,
    Memory,
};

/** Hierarchy geometry (Table III defaults). */
struct HierarchyConfig
{
    std::size_t l1Bytes = 64 * 1024;
    unsigned l1Assoc = 8;
    std::size_t l2Bytes = 256 * 1024;
    unsigned l2Assoc = 8;
    std::size_t l3Bytes = 8 * 1024 * 1024;
    unsigned l3Assoc = 16;
    bool prefetchers = true;
    unsigned strideDegreeL1 = 2;
    unsigned strideDegreeL2 = 4;
};

/** Result of one access or fill. */
struct AccessOutcome
{
    HitLevel level = HitLevel::Memory;

    /** Compressed bit of the L2/L3 copy that satisfied the access. */
    bool compressedCopy = false;

    /** Dirty lines evicted from L3 that must be written to memory. */
    std::vector<CacheLine> memWritebacks;

    /** Prefetch proposals raised by this access (demand path only). */
    std::vector<Addr> prefetches;
};

/** The full multi-core cache hierarchy. */
class Hierarchy : public Stated
{
  public:
    Hierarchy(const HierarchyConfig &cfg, unsigned cores);

    /**
     * Demand access from `core`.  If the outcome level is Memory, the
     * caller must obtain the block from the MC and then call fill().
     * `from_walker` starts the access at L2.
     */
    AccessOutcome access(unsigned core, Addr addr, bool is_write,
                         bool from_walker = false);

    /**
     * Install a block fetched from memory.  `compressed` is the on-chip
     * encoding flag (PTB-compressed lines under TMCC).  Exclusive L3 is
     * bypassed on fills.
     */
    AccessOutcome fill(unsigned core, Addr addr, bool is_write,
                       bool compressed, bool from_walker = false);

    /**
     * Handle one prefetch proposal: looks up L2/L3 and fills L1/L2.
     * Returns true when the block must be fetched from memory (the
     * caller then issues a background MC read and calls fill()).
     * Writebacks caused by prefetch fills land in `out`.
     */
    bool prefetchLookup(unsigned core, Addr addr,
                        std::vector<CacheLine> &out);

    /** Probe the compressed bit of the L2 copy (walker fast path). */
    bool l2CompressedCopy(unsigned core, Addr addr) const;

    /** Mark the resident L2 copy dirty (lazy PTB CTE update, §V-A3). */
    void touchL2Dirty(unsigned core, Addr addr);

    Cache &l1(unsigned core) { return *l1_[core]; }
    Cache &l2(unsigned core) { return *l2_[core]; }
    Cache &l3() { return *l3_; }
    const Cache &l3() const { return *l3_; }
    unsigned cores() const { return static_cast<unsigned>(l1_.size()); }

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

  private:
    /** Insert into L1, folding the victim's dirtiness into L2. */
    void fillL1(unsigned core, const CacheLine &line);

    /** Insert into L2; victims spill into L3; L3 victims to memory. */
    void fillL2(unsigned core, const CacheLine &line,
                std::vector<CacheLine> &writebacks);

    void notePrefetched(Addr addr);
    bool consumePrefetched(Addr addr);

    HierarchyConfig cfg_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> l3_;

    std::vector<std::unique_ptr<NextLinePrefetcher>> nextLineL1_;
    std::vector<std::unique_ptr<StridePrefetcher>> strideL1_;
    std::vector<std::unique_ptr<NextLinePrefetcher>> nextLineL2_;
    std::vector<std::unique_ptr<StridePrefetcher>> strideL2_;

    /** Outstanding prefetched blocks awaiting first demand use. */
    std::unordered_set<Addr> prefetched_;

    Counter demandAccesses_, walkerAccesses_, l3Misses_;
};

} // namespace tmcc

#endif // TMCC_CACHE_HIERARCHY_HH
