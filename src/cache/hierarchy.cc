#include "cache/hierarchy.hh"

#include "common/log.hh"

namespace tmcc
{

Hierarchy::Hierarchy(const HierarchyConfig &cfg, unsigned cores)
    : cfg_(cfg)
{
    fatalIf(cores == 0, "hierarchy needs at least one core");
    for (unsigned c = 0; c < cores; ++c) {
        l1_.push_back(std::make_unique<Cache>(
            "l1." + std::to_string(c), cfg.l1Bytes, cfg.l1Assoc));
        l2_.push_back(std::make_unique<Cache>(
            "l2." + std::to_string(c), cfg.l2Bytes, cfg.l2Assoc));
        nextLineL1_.push_back(std::make_unique<NextLinePrefetcher>());
        strideL1_.push_back(
            std::make_unique<StridePrefetcher>(cfg.strideDegreeL1));
        nextLineL2_.push_back(std::make_unique<NextLinePrefetcher>());
        strideL2_.push_back(
            std::make_unique<StridePrefetcher>(cfg.strideDegreeL2));
    }
    l3_ = std::make_unique<Cache>("l3", cfg.l3Bytes, cfg.l3Assoc);
}

void
Hierarchy::notePrefetched(Addr addr)
{
    if (prefetched_.size() > 64 * 1024)
        prefetched_.clear(); // bounded bookkeeping
    prefetched_.insert(blockAlign(addr));
}

bool
Hierarchy::consumePrefetched(Addr addr)
{
    return prefetched_.erase(blockAlign(addr)) != 0;
}

AccessOutcome
Hierarchy::access(unsigned core, Addr addr, bool is_write,
                  bool from_walker)
{
    return accessT<AccessOutcome>(core, addr, is_write, from_walker);
}

AccessOutcome
Hierarchy::fill(unsigned core, Addr addr, bool is_write, bool compressed,
                bool from_walker)
{
    return fillT<AccessOutcome>(core, addr, is_write, compressed,
                                from_walker);
}

bool
Hierarchy::prefetchLookup(unsigned core, Addr addr,
                          std::vector<CacheLine> &out)
{
    return prefetchLookupT(core, addr, out);
}

bool
Hierarchy::l2CompressedCopy(unsigned core, Addr addr) const
{
    return l2_[core]->isCompressed(blockAlign(addr));
}

void
Hierarchy::touchL2Dirty(unsigned core, Addr addr)
{
    l2_[core]->markDirty(blockAlign(addr));
}

void
Hierarchy::dumpStats(StatDump &dump, const std::string &prefix) const
{
    for (unsigned c = 0; c < cores(); ++c) {
        l1_[c]->dumpStats(dump, prefix + ".l1." + std::to_string(c));
        l2_[c]->dumpStats(dump, prefix + ".l2." + std::to_string(c));
        nextLineL1_[c]->dumpStats(
            dump, prefix + ".pf.nl1." + std::to_string(c));
        strideL1_[c]->dumpStats(
            dump, prefix + ".pf.st1." + std::to_string(c));
    }
    l3_->dumpStats(dump, prefix + ".l3");
    dump.set(prefix + ".demand_accesses", demandAccesses_.value());
    dump.set(prefix + ".walker_accesses", walkerAccesses_.value());
    dump.set(prefix + ".l3_misses", l3Misses_.value());
}

} // namespace tmcc
