#include "cache/hierarchy.hh"

#include "common/log.hh"

namespace tmcc
{

Hierarchy::Hierarchy(const HierarchyConfig &cfg, unsigned cores)
    : cfg_(cfg)
{
    fatalIf(cores == 0, "hierarchy needs at least one core");
    for (unsigned c = 0; c < cores; ++c) {
        l1_.push_back(std::make_unique<Cache>(
            "l1." + std::to_string(c), cfg.l1Bytes, cfg.l1Assoc));
        l2_.push_back(std::make_unique<Cache>(
            "l2." + std::to_string(c), cfg.l2Bytes, cfg.l2Assoc));
        nextLineL1_.push_back(std::make_unique<NextLinePrefetcher>());
        strideL1_.push_back(
            std::make_unique<StridePrefetcher>(cfg.strideDegreeL1));
        nextLineL2_.push_back(std::make_unique<NextLinePrefetcher>());
        strideL2_.push_back(
            std::make_unique<StridePrefetcher>(cfg.strideDegreeL2));
    }
    l3_ = std::make_unique<Cache>("l3", cfg.l3Bytes, cfg.l3Assoc);
}

void
Hierarchy::notePrefetched(Addr addr)
{
    if (prefetched_.size() > 64 * 1024)
        prefetched_.clear(); // bounded bookkeeping
    prefetched_.insert(blockAlign(addr));
}

bool
Hierarchy::consumePrefetched(Addr addr)
{
    return prefetched_.erase(blockAlign(addr)) != 0;
}

void
Hierarchy::fillL1(unsigned core, const CacheLine &line)
{
    // Software-visible L1 copies are always decompressed (§V-A4).
    CacheLine l1_line = line;
    l1_line.compressed = false;
    const auto victim = l1_[core]->insert(l1_line);
    if (victim && victim->dirty) {
        // L2 is inclusive of L1: the victim's data lives in L2; fold
        // the dirtiness down.
        l2_[core]->markDirty(victim->addr);
    }
}

void
Hierarchy::fillL2(unsigned core, const CacheLine &line,
                  std::vector<CacheLine> &writebacks)
{
    auto victim = l2_[core]->insert(line);
    if (!victim)
        return;

    // Inclusive L2: back-invalidate the L1 copy, folding its dirtiness
    // into the departing line.
    const auto l1_copy = l1_[core]->extract(victim->addr);
    if (l1_copy && l1_copy->dirty)
        victim->dirty = true;

    // Snoop filter: if another core's L2 still holds the line, the
    // exclusive L3 must not take a second copy; fold the dirtiness
    // into the surviving copy instead.
    for (unsigned other = 0; other < l2_.size(); ++other) {
        if (other == core)
            continue;
        if (l2_[other]->probe(victim->addr)) {
            if (victim->dirty)
                l2_[other]->markDirty(victim->addr);
            return;
        }
    }

    // Exclusive L3 receives L2 victims.
    const auto l3_victim = l3_->insert(*victim);
    if (l3_victim && l3_victim->dirty)
        writebacks.push_back(*l3_victim);
}

AccessOutcome
Hierarchy::access(unsigned core, Addr addr, bool is_write,
                  bool from_walker)
{
    AccessOutcome out;
    const Addr block = blockAlign(addr);

    if (from_walker)
        walkerAccesses_.inc();
    else
        demandAccesses_.inc();

    if (consumePrefetched(block)) {
        nextLineL1_[core]->markUseful();
        nextLineL2_[core]->markUseful();
    }

    // L1 (skipped by the page walker).
    if (!from_walker) {
        const bool l1_hit = l1_[core]->access(block, is_write);
        if (cfg_.prefetchers) {
            nextLineL1_[core]->observe(block, !l1_hit, out.prefetches);
            strideL1_[core]->observe(block, !l1_hit, out.prefetches);
        }
        if (l1_hit) {
            out.level = HitLevel::L1;
            return out;
        }
    }

    // L2.
    const bool l2_hit = l2_[core]->access(block, is_write && from_walker);
    if (cfg_.prefetchers && !from_walker) {
        nextLineL2_[core]->observe(block, !l2_hit, out.prefetches);
        strideL2_[core]->observe(block, !l2_hit, out.prefetches);
    }
    if (l2_hit) {
        out.level = HitLevel::L2;
        out.compressedCopy = l2_[core]->isCompressed(block);
        if (!from_walker)
            fillL1(core, CacheLine{block, is_write, false});
        return out;
    }

    // L3 (exclusive: hits are extracted and promoted to L2/L1).
    if (auto line = l3_->extract(block); line.has_value()) {
        out.level = HitLevel::L3;
        out.compressedCopy = line->compressed;
        CacheLine promoted = *line;
        promoted.dirty |= is_write && from_walker;
        fillL2(core, promoted, out.memWritebacks);
        if (!from_walker)
            fillL1(core, CacheLine{block, is_write, false});
        return out;
    }

    l3Misses_.inc();
    out.level = HitLevel::Memory;
    return out;
}

AccessOutcome
Hierarchy::fill(unsigned core, Addr addr, bool is_write, bool compressed,
                bool from_walker)
{
    AccessOutcome out;
    out.level = HitLevel::Memory;
    const Addr block = blockAlign(addr);

    CacheLine line{block, is_write && from_walker, compressed};
    fillL2(core, line, out.memWritebacks);
    if (!from_walker)
        fillL1(core, CacheLine{block, is_write, false});
    return out;
}

bool
Hierarchy::prefetchLookup(unsigned core, Addr addr,
                          std::vector<CacheLine> &out)
{
    const Addr block = blockAlign(addr);
    if (l1_[core]->probe(block) || l2_[core]->probe(block))
        return false;

    notePrefetched(block);
    if (auto line = l3_->extract(block); line.has_value()) {
        fillL2(core, *line, out);
        return false;
    }
    return true; // caller fetches from memory, then calls fill()
}

bool
Hierarchy::l2CompressedCopy(unsigned core, Addr addr) const
{
    return l2_[core]->isCompressed(blockAlign(addr));
}

void
Hierarchy::touchL2Dirty(unsigned core, Addr addr)
{
    l2_[core]->markDirty(blockAlign(addr));
}

void
Hierarchy::dumpStats(StatDump &dump, const std::string &prefix) const
{
    for (unsigned c = 0; c < cores(); ++c) {
        l1_[c]->dumpStats(dump, prefix + ".l1." + std::to_string(c));
        l2_[c]->dumpStats(dump, prefix + ".l2." + std::to_string(c));
        nextLineL1_[c]->dumpStats(
            dump, prefix + ".pf.nl1." + std::to_string(c));
        strideL1_[c]->dumpStats(
            dump, prefix + ".pf.st1." + std::to_string(c));
    }
    l3_->dumpStats(dump, prefix + ".l3");
    dump.set(prefix + ".demand_accesses", demandAccesses_.value());
    dump.set(prefix + ".walker_accesses", walkerAccesses_.value());
    dump.set(prefix + ".l3_misses", l3Misses_.value());
}

} // namespace tmcc
