#include "cache/cache.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace tmcc
{

Cache::Cache(std::string name, std::size_t size_bytes, unsigned assoc)
    : name_(std::move(name)), assoc_(assoc)
{
    fatalIf(assoc == 0, name_ + ": associativity must be nonzero");
    fatalIf(size_bytes % (blockSize * assoc) != 0,
            name_ + ": size must be a multiple of assoc x 64B");
    sets_ = size_bytes / (blockSize * assoc);
    setsPow2_ = isPowerOf2(sets_);
    setMask_ = setsPow2_ ? sets_ - 1 : 0;
    ways_.resize(sets_ * assoc_);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    // Power-of-two set counts (every standard geometry) index with a
    // mask; odd geometries take the general modulo path.
    const auto blk = static_cast<std::size_t>(blockNumber(addr));
    return setsPow2_ ? (blk & setMask_) : (blk % sets_);
}

Cache::Way *
Cache::find(Addr addr)
{
    const Addr tag = blockAlign(addr);
    Way *base = &ways_[setIndex(addr) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    return nullptr;
}

const Cache::Way *
Cache::find(Addr addr) const
{
    return const_cast<Cache *>(this)->find(addr);
}

bool
Cache::access(Addr addr, bool is_write)
{
    Way *w = find(addr);
    if (w == nullptr) {
        misses_.inc();
        return false;
    }
    hits_.inc();
    w->lru = ++lruClock_;
    w->dirty |= is_write;
    return true;
}

bool
Cache::probe(Addr addr) const
{
    return find(addr) != nullptr;
}

std::optional<CacheLine>
Cache::insert(const CacheLine &line)
{
    const Addr tag = blockAlign(line.addr);

    // Refresh in place if already resident.
    if (Way *w = find(tag); w != nullptr) {
        w->lru = ++lruClock_;
        w->dirty |= line.dirty;
        w->compressed = line.compressed;
        return std::nullopt;
    }

    Way *base = &ways_[setIndex(tag) * assoc_];
    Way *victim = &base[0];
    for (unsigned i = 1; i < assoc_; ++i) {
        if (!base[i].valid) {
            victim = &base[i];
            break;
        }
        if (base[i].lru < victim->lru && victim->valid)
            victim = &base[i];
    }

    std::optional<CacheLine> evicted;
    if (victim->valid) {
        evictions_.inc();
        if (victim->dirty)
            dirtyEvictions_.inc();
        evicted = CacheLine{victim->tag, victim->dirty,
                            victim->compressed};
    }
    victim->tag = tag;
    victim->valid = true;
    victim->dirty = line.dirty;
    victim->compressed = line.compressed;
    victim->lru = ++lruClock_;
    return evicted;
}

std::optional<CacheLine>
Cache::extract(Addr addr)
{
    Way *w = find(addr);
    if (w == nullptr)
        return std::nullopt;
    CacheLine line{w->tag, w->dirty, w->compressed};
    w->valid = false;
    w->dirty = false;
    return line;
}

void
Cache::invalidate(Addr addr)
{
    if (Way *w = find(addr); w != nullptr) {
        w->valid = false;
        w->dirty = false;
    }
}

bool
Cache::isCompressed(Addr addr) const
{
    const Way *w = find(addr);
    return w != nullptr && w->compressed;
}

void
Cache::setCompressed(Addr addr, bool compressed)
{
    if (Way *w = find(addr); w != nullptr)
        w->compressed = compressed;
}

void
Cache::markDirty(Addr addr)
{
    if (Way *w = find(addr); w != nullptr)
        w->dirty = true;
}

void
Cache::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".hits", hits_.value());
    dump.set(prefix + ".misses", misses_.value());
    dump.set(prefix + ".evictions", evictions_.value());
    dump.set(prefix + ".dirty_evictions", dirtyEvictions_.value());
    const auto total = hits_.value() + misses_.value();
    dump.set(prefix + ".miss_rate",
             total ? static_cast<double>(misses_.value()) /
                         static_cast<double>(total)
                   : 0.0);
}

} // namespace tmcc
