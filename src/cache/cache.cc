#include "cache/cache.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace tmcc
{

Cache::Cache(std::string name, std::size_t size_bytes, unsigned assoc)
    : name_(std::move(name)), assoc_(assoc)
{
    fatalIf(assoc == 0, name_ + ": associativity must be nonzero");
    fatalIf(assoc > simd::maxWays,
            name_ + ": associativity " + std::to_string(assoc) +
                " exceeds the probe engine's " +
                std::to_string(simd::maxWays) + "-way set limit");
    fatalIf(size_bytes % (blockSize * assoc) != 0,
            name_ + ": size must be a multiple of assoc x 64B");
    sets_ = size_bytes / (blockSize * assoc);
    setsPow2_ = isPowerOf2(sets_);
    setMask_ = setsPow2_ ? sets_ - 1 : 0;

    // Pad each set's metadata row to the vector width; padding ways
    // hold a tag no probe can match and an all-ones LRU stamp no
    // victim scan can pick.
    wstride_ = simd::padWays(assoc_);
    tags_.assign(sets_ * wstride_, padTag);
    lru_.assign(sets_ * wstride_, ~std::uint64_t{0});
    flags_.assign(sets_ * wstride_, 0);
    for (std::size_t s = 0; s < sets_; ++s)
        for (unsigned w = 0; w < assoc_; ++w) {
            tags_[s * wstride_ + w] = invalidAddr;
            lru_[s * wstride_ + w] = 0;
        }
}

void
Cache::dumpStats(StatDump &dump, const std::string &prefix) const
{
    dump.set(prefix + ".hits", hits_.value());
    dump.set(prefix + ".misses", misses_.value());
    dump.set(prefix + ".evictions", evictions_.value());
    dump.set(prefix + ".dirty_evictions", dirtyEvictions_.value());
    const auto total = hits_.value() + misses_.value();
    dump.set(prefix + ".miss_rate",
             total ? static_cast<double>(misses_.value()) /
                         static_cast<double>(total)
                   : 0.0);
}

} // namespace tmcc
