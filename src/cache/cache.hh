/**
 * @file
 * A set-associative cache model with LRU replacement, dirty tracking and
 * the per-line "compressed" data bit TMCC adds for PTB-encoded lines
 * (§V-A4: "Every L2 and L3 cacheline has a new data bit to record
 * whether the cacheline is compressed").
 *
 * The model is functional (hits/misses/evictions); latency composition
 * is the pipeline's job.
 */

#ifndef TMCC_CACHE_CACHE_HH
#define TMCC_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace tmcc
{

/** State of one line leaving or probed in a cache. */
struct CacheLine
{
    Addr addr = invalidAddr; //!< block-aligned address
    bool dirty = false;
    bool compressed = false; //!< PTB-encoded payload (TMCC data bit)
};

/** Set-associative, LRU, write-back cache. */
class Cache : public Stated
{
  public:
    Cache(std::string name, std::size_t size_bytes, unsigned assoc);

    /**
     * Look up `addr` (any address; aligned internally).  On hit the LRU
     * state updates and `is_write` sets the dirty bit.  Returns hit.
     */
    bool access(Addr addr, bool is_write);

    /** Hit check without LRU/dirty side effects. */
    bool probe(Addr addr) const;

    /**
     * Insert a line, returning the evicted victim if any.  The victim
     * is returned regardless of dirtiness; the caller decides whether a
     * clean eviction matters (exclusive hierarchies need it).
     */
    std::optional<CacheLine> insert(const CacheLine &line);

    /** Remove a line (for exclusive-hierarchy promotion); returns it. */
    std::optional<CacheLine> extract(Addr addr);

    /** Invalidate without returning (back-invalidation). */
    void invalidate(Addr addr);

    /** Read the compressed bit of a resident line. */
    bool isCompressed(Addr addr) const;

    /** Set the compressed bit of a resident line. */
    void setCompressed(Addr addr, bool compressed);

    /** Mark a resident line dirty (e.g., lazily updated PTB). */
    void markDirty(Addr addr);

    std::size_t sizeBytes() const { return sets_ * assoc_ * blockSize; }
    unsigned associativity() const { return assoc_; }
    std::size_t numSets() const { return sets_; }
    const std::string &name() const { return name_; }

    void dumpStats(StatDump &dump,
                   const std::string &prefix) const override;

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    struct Way
    {
        Addr tag = invalidAddr;
        bool valid = false;
        bool dirty = false;
        bool compressed = false;
        std::uint64_t lru = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Way *find(Addr addr);
    const Way *find(Addr addr) const;

    std::string name_;
    std::size_t sets_;
    bool setsPow2_ = true;   //!< shift-mask indexing fast path
    std::size_t setMask_ = 0; //!< sets_ - 1 when setsPow2_
    unsigned assoc_;
    std::vector<Way> ways_; //!< sets_ x assoc_ flattened
    std::uint64_t lruClock_ = 0;

    Counter hits_, misses_, evictions_, dirtyEvictions_;
};

} // namespace tmcc

#endif // TMCC_CACHE_CACHE_HH
